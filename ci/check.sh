#!/usr/bin/env bash
# Tier-1 verification: build and run the test suite, plain and sanitized.
#
#   ci/check.sh            # plain + ASan/UBSan + TSan
#   ci/check.sh plain      # plain RelWithDebInfo only
#   ci/check.sh sanitize   # ASan+UBSan only
#   ci/check.sh tsan       # ThreadSanitizer only
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

mode="${1:-all}"

case "$mode" in
  plain)
    run_suite build
    ;;
  sanitize)
    run_suite build-asan -DCPE_SANITIZE=address
    ;;
  tsan)
    run_suite build-tsan -DCPE_SANITIZE=thread
    ;;
  all)
    run_suite build
    run_suite build-asan -DCPE_SANITIZE=address
    run_suite build-tsan -DCPE_SANITIZE=thread
    ;;
  *)
    echo "usage: $0 [plain|sanitize|tsan|all]" >&2
    exit 2
    ;;
esac

echo "check.sh: all requested suites passed"
