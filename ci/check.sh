#!/usr/bin/env bash
# Tier-1 verification: build and run the test suite, plain and sanitized.
#
#   ci/check.sh            # both configurations
#   ci/check.sh plain      # plain RelWithDebInfo only
#   ci/check.sh sanitize   # ASan+UBSan only
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

mode="${1:-all}"

case "$mode" in
  plain)
    run_suite build
    ;;
  sanitize)
    run_suite build-asan -DCPE_SANITIZE=ON
    ;;
  all)
    run_suite build
    run_suite build-asan -DCPE_SANITIZE=ON
    ;;
  *)
    echo "usage: $0 [plain|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "check.sh: all requested suites passed"
