#!/usr/bin/env bash
# Tier-1 verification: build and run the test suite, plain and sanitized.
#
#   ci/check.sh            # plain + ASan/UBSan + TSan + bench smoke + audit
#   ci/check.sh plain      # plain RelWithDebInfo only
#   ci/check.sh sanitize   # ASan+UBSan only
#   ci/check.sh tsan       # ThreadSanitizer only
#   ci/check.sh bench      # bench smoke: run one table bench, validate the
#                          # BENCH_metrics.json and BENCH_trace.json it
#                          # exports (DESIGN.md §9, §10), then the load
#                          # scale bench + its BENCH_load.json (§11.5), the
#                          # drain-a-host bench + BENCH_drain.json (§12),
#                          # the adversarial-network bench +
#                          # BENCH_adversarial.json (§7), the sim-core
#                          # throughput bench + BENCH_sim.json (§13), and
#                          # the service tail-latency bench +
#                          # BENCH_service.json (§15)
#   ci/check.sh sweeps     # property sweeps only (ctest -L sweep) with a
#                          # generous timeout: migration x fault, load
#                          # placement, adversarial-network, and
#                          # service-tail cells
#   ci/check.sh audit      # trace audit: prove the TraceAuditor flags the
#                          # deliberately-broken fixtures (missing flush
#                          # stage etc.), then audit a real migration trace
#   ci/check.sh slo        # SLO drill: run bench_load_scale --slo (a
#                          # deliberately-violated rule with the flight
#                          # recorder armed), assert exactly one
#                          # flight_*.json landed, and replay the embedded
#                          # span tail offline (DESIGN.md §14)
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

# Build and run one table bench, then validate the metrics export: the file
# must be line-delimited strict JSON, every mpvm migration stage must have a
# non-empty histogram, and no value may be NaN/Inf.  This is the check that
# would have caught the wire-byte undercount: an instrumented quantity that
# is silently zero or absent fails here, not three PRs later.
run_bench_smoke() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target bench_table2_mpvm_migration
  ( cd build && ./bench/bench_table2_mpvm_migration )
  validate_bench_json build/BENCH_analytics.json
  python3 - build/BENCH_metrics.json <<'EOF'
import json, math, sys

path = sys.argv[1]
stages = {f"mpvm.stage.{s}" for s in ("freeze", "flush", "transfer", "restart")}
seen = {}

def finite(x):
    return isinstance(x, (int, float)) and math.isfinite(x)

with open(path) as f:
    lines = [ln for ln in f if ln.strip()]
if not lines:
    sys.exit(f"{path}: empty metrics export")
for i, ln in enumerate(lines, 1):
    try:
        # json accepts NaN/Infinity by default; parse_constant makes it strict.
        rec = json.loads(ln, parse_constant=lambda c: float("nan"))
    except json.JSONDecodeError as e:
        sys.exit(f"{path}:{i}: not valid JSON: {e}")
    for key in ("t", "value", "sum", "min", "max", "mean", "p50", "p90", "p99"):
        if key in rec and not finite(rec[key]):
            sys.exit(f"{path}:{i}: non-finite {key} in {rec.get('name')}")
    if rec.get("type") == "histogram":
        for b in rec.get("buckets", []):
            if b["le"] is not None and not finite(b["le"]):
                sys.exit(f"{path}:{i}: non-finite bucket bound")
        if rec["name"] in stages:
            seen[rec["name"]] = seen.get(rec["name"], 0) + rec["count"]
            if rec["count"] == 0 or not rec.get("buckets"):
                sys.exit(f"{path}:{i}: empty histogram for {rec['name']}")

missing = stages - set(seen)
if missing:
    sys.exit(f"{path}: no histogram exported for: {', '.join(sorted(missing))}")
print(f"bench smoke: {len(lines)} metric lines, per-stage samples: "
      + ", ".join(f"{k.split('.')[-1]}={v}" for k, v in sorted(seen.items())))
EOF
  validate_trace build/BENCH_trace.json
  run_bench_load
}

# One reusable validator for every per-bench JSON artifact.  Each bench
# stamps a "bench" key into its export; the validator parses strictly
# (NaN/Infinity rejected) and dispatches to the matching schema + gate
# check.  Adding a bench means adding one check_* function here — the
# strict-parse plumbing, finiteness helpers, and failure reporting are
# shared, not copy-pasted per bench.
validate_bench_json() {
  python3 - "$1" <<'EOF'
import json, math, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f, parse_constant=lambda c: float("nan"))

def finite(x):
    return isinstance(x, (int, float)) and math.isfinite(x)

def fail(msg):
    sys.exit(f"{path}: {msg}")

def require(*keys):
    for key in keys:
        if key not in doc:
            fail(f"missing key {key!r}")

def check_gate_ratio(gates, ratio_key, limit_key, at_most):
    if gates.get("pass") is not True:
        fail(f"gate failure: {gates}")
    ratio, limit = gates.get(ratio_key), gates.get(limit_key)
    if not (finite(ratio) and finite(limit)):
        fail(f"non-finite {ratio_key}/{limit_key} in gates")
    if (ratio > limit) if at_most else (ratio < limit):
        fail(f"{ratio_key} {ratio!r} breaks limit {limit!r}")

# BENCH_load.json: one entry per policy including the no-balancing
# baseline, every real policy below the baseline CV with zero hysteresis
# violations (DESIGN.md §11.5).
def check_load_scale():
    require("hosts", "tasks", "horizon", "steady_window", "policies")
    policies = doc["policies"]
    want = {"none", "threshold", "best_fit", "destination_swap", "work_steal"}
    got = {p.get("policy") for p in policies}
    if got != want:
        fail(f"policies {sorted(got)} != expected {sorted(want)}")
    baseline = next(p for p in policies if p["policy"] == "none")
    if not finite(baseline["cv"]) or baseline["cv"] <= 0:
        fail(f"baseline cv {baseline['cv']!r} not a positive float")
    for p in policies:
        for key in ("cv", "migrations", "thrash", "residency_rejections",
                    "decisions", "convergence_s"):
            if not finite(p.get(key)):
                fail(f"{p['policy']}: non-finite {key}")
        if p["policy"] == "none":
            continue
        if p["cv"] >= baseline["cv"]:
            fail(f"{p['policy']}: cv {p['cv']} not below baseline "
                 f"{baseline['cv']}")
        if p["thrash"] != 0:
            fail(f"{p['policy']}: {p['thrash']} hysteresis violations")
        if p["migrations"] == 0:
            fail(f"{p['policy']}: balanced without migrating?")
        if p["convergence_s"] < 0:
            fail(f"{p['policy']}: ewma(gs.load.cv) never converged")
    print("load bench: baseline cv %.4f; " % baseline["cv"]
          + ", ".join(f"{p['policy']}={p['cv']:.4f}" for p in policies
                      if p["policy"] != "none"))

# BENCH_drain.json: one run per k plus the pre-copy run, and the two §12
# acceptance gates — k=4 evacuation at most 0.45x serial, pre-copy median
# freeze at most 0.25x stop-and-copy.
def check_drain_host():
    require("tasks", "dests", "image_bytes", "runs", "gates")
    runs = doc["runs"]
    want = {(1, False), (2, False), (4, False), (8, False), (4, True)}
    got = {(r.get("k"), r.get("precopy")) for r in runs}
    if got != want:
        fail(f"runs {sorted(got)} != expected {sorted(want)}")
    for r in runs:
        for key in ("evacuation_s", "freeze_p50_ms", "freeze_p90_ms",
                    "freeze_max_ms", "freeze_p99_ms", "precopy_bytes",
                    "residue_bytes", "admission_waits", "slo_violations"):
            if not finite(r.get(key)):
                fail(f"k={r['k']}: non-finite {key}")
        if r["migrated"] != doc["tasks"]:
            fail(f"k={r['k']} precopy={r['precopy']}: drained "
                 f"{r['migrated']}/{doc['tasks']} tasks")
        if r["precopy"] and r["precopy_bytes"] == 0:
            fail("pre-copy run streamed zero bytes before freeze")
        if r["slo_violations"] != 0:
            fail(f"k={r['k']}: inflight-cap SLO fired "
                 f"{r['slo_violations']} times")
    check_gate_ratio(doc["gates"], "speedup_ratio", "speedup_limit",
                     at_most=True)
    check_gate_ratio(doc["gates"], "freeze_ratio", "freeze_limit",
                     at_most=True)
    check_gate_ratio(doc["gates"], "freeze_p99_ratio", "freeze_p99_limit",
                     at_most=True)
    gates = doc["gates"]
    print("drain bench: evac k=4/k=1 %.3f <= %.2f, precopy freeze %.3f <= "
          "%.2f, p99 %.3f <= %.2f"
          % (gates["speedup_ratio"], gates["speedup_limit"],
             gates["freeze_ratio"], gates["freeze_limit"],
             gates["freeze_p99_ratio"], gates["freeze_p99_limit"]))

# BENCH_adversarial.json: one run per fabric scenario, exactly-once and
# unscathed streams everywhere, the injectors provably fired, and the §7
# gate — goodput under 1% corruption + duplication at least 0.6x clean.
def check_adversarial_net():
    require("seed", "horizon", "pairs", "messages_per_pair",
            "payload_bytes", "runs", "gates")
    runs = doc["runs"]
    want = {"clean", "corrupt1pct", "duplicate", "corrupt+duplicate"}
    got = {r.get("scenario") for r in runs}
    if got != want:
        fail(f"scenarios {sorted(got)} != expected {sorted(want)}")
    expect = doc["pairs"] * doc["messages_per_pair"]
    for r in runs:
        s = r["scenario"]
        for key in ("goodput_bps", "elapsed_s", "messages", "garbled",
                    "duplicates_injected", "corrupt_injected",
                    "corrupt_dropped", "retransmits"):
            if not finite(r.get(key)):
                fail(f"{s}: non-finite {key}")
        if r["messages"] != expect:
            fail(f"{s}: delivered {r['messages']}/{expect} messages")
        if r["garbled"] != 0:
            fail(f"{s}: {r['garbled']} garbled payloads reached the app")
        if r["goodput_bps"] <= 0:
            fail(f"{s}: goodput {r['goodput_bps']!r} not positive")
        if "corrupt" in s and r["corrupt_injected"] == 0:
            fail(f"{s}: corruption armed but never injected")
        if "duplicate" in s and r["duplicates_injected"] == 0:
            fail(f"{s}: duplication armed but never injected")
        if s == "clean" and (r["duplicates_injected"] or
                             r["corrupt_injected"]):
            fail("clean run saw injections")
    check_gate_ratio(doc["gates"], "goodput_ratio", "goodput_limit",
                     at_most=False)
    gates = doc["gates"]
    print("adversarial bench: goodput corrupt+dup/clean %.3f >= %.2f"
          % (gates["goodput_ratio"], gates["goodput_limit"]))

# BENCH_sim.json: calendar-queue engine vs the pinned legacy heap engine
# (DESIGN.md §13).  Every workload must post finite positive event rates and
# clear its own speedup floor; the headline gate is timer_churn's >= 5x.
def check_sim_throughput():
    require("mode", "workloads", "gates")
    workloads = doc["workloads"]
    want = {"hold", "timer_churn"}
    got = {w.get("name") for w in workloads}
    if got != want:
        fail(f"workloads {sorted(got)} != expected {sorted(want)}")
    for w in workloads:
        for key in ("events", "baseline_eps", "calendar_eps", "speedup",
                    "limit"):
            if not finite(w.get(key)):
                fail(f"{w['name']}: non-finite {key}")
        if w["baseline_eps"] <= 0 or w["calendar_eps"] <= 0:
            fail(f"{w['name']}: non-positive event rate")
        if w["speedup"] < w["limit"]:
            fail(f"{w['name']}: speedup {w['speedup']:.2f} below floor "
                 f"{w['limit']}")
    check_gate_ratio(doc["gates"], "speedup_ratio", "speedup_limit",
                     at_most=False)
    an = doc.get("analytics")
    if not isinstance(an, dict):
        fail("missing analytics overhead block")
    for key in ("plain_eps", "metered_eps", "overhead", "overhead_limit"):
        if not finite(an.get(key)):
            fail(f"analytics: non-finite {key}")
    check_gate_ratio(doc["gates"], "analytics_overhead",
                     "analytics_overhead_limit", at_most=True)
    print("sim bench (%s): " % doc["mode"]
          + ", ".join(f"{w['name']}={w['speedup']:.2f}x" for w in workloads)
          + ", analytics overhead %.2f%% <= %.0f%%"
          % (an["overhead"] * 100, an["overhead_limit"] * 100))

# BENCH_analytics.json: the critical-path attribution document (DESIGN.md
# §14).  Percentiles must be finite and ordered, dominant-stage counts must
# partition the migrations exactly, coverage must clear the 95% floor, and
# the producing bench's own analytics gates must have passed.
def check_analytics():
    require("source", "quantile_growth", "migrations", "traces_skipped",
            "coverage_min", "coverage_mean", "stages", "gates")
    if doc["source"] not in ("table2", "drain_host", "load_scale",
                             "service_tail"):
        fail(f"unknown analytics source {doc['source']!r}")
    if not finite(doc["migrations"]) or doc["migrations"] <= 0:
        fail(f"migrations {doc['migrations']!r} not positive")
    gates = doc["gates"]
    if gates.get("pass") is not True:
        fail(f"analytics gate failure: {gates}")
    limit = gates.get("coverage_limit")
    if not (finite(doc["coverage_min"]) and finite(limit)):
        fail("non-finite coverage_min/coverage_limit")
    if doc["coverage_min"] < limit:
        fail(f"coverage_min {doc['coverage_min']} below {limit}")
    stages = doc["stages"]
    if not stages:
        fail("empty stage table")
    dominant = 0
    for s in stages:
        for key in ("count", "dominant", "p50", "p95", "p99", "mean",
                    "max", "total"):
            if not finite(s.get(key)):
                fail(f"{s.get('stage')}: non-finite {key}")
        if not (s["p50"] <= s["p95"] <= s["p99"]):
            fail(f"{s['stage']}: percentiles out of order")
        dominant += s["dominant"]
    if dominant != doc["migrations"]:
        fail(f"dominant counts sum to {dominant}, migrations "
             f"{doc['migrations']} (attribution must partition)")
    print("analytics (%s): %d migrations, coverage min %.3f, dominated by "
          % (doc["source"], doc["migrations"], doc["coverage_min"])
          + ", ".join(f"{s['stage'].split('.')[-1]}:{s['dominant']}"
                      for s in stages if s["dominant"]))

# BENCH_service.json: the service-workload tail-latency document (DESIGN.md
# §15).  The open-loop day profile must clear the 1M requests/virtual-day
# floor with exactly-once accounting and a clean trace audit; the storm
# matrix must cover every policy (plus the pre-copy variant), at least one
# adaptive policy must beat "none" on p99, and pre-copy must not lose to
# stop-and-copy on either p99 or mean freeze.
def check_service():
    require("mode", "day", "storm", "gates")
    day = doc["day"]
    for key in ("rate_rps", "horizon", "requests", "requests_per_vday",
                "p50", "p95", "p99"):
        if not finite(day.get(key)):
            fail(f"day: non-finite {key}")
    if not (day["p50"] <= day["p95"] <= day["p99"]):
        fail("day: latency percentiles out of order")
    if day.get("exactly_once") is not True:
        fail("day: exactly-once accounting failed")
    if day.get("audit_violations") != 0:
        fail(f"day: {day.get('audit_violations')} trace-audit violations")
    runs = doc["storm"].get("runs")
    if not isinstance(runs, list) or not runs:
        fail("storm: missing runs")
    want = {"none", "threshold", "best_fit", "destination_swap",
            "work_steal"}
    got = {r.get("policy") for r in runs}
    if got != want:
        fail(f"storm policies {sorted(got)} != expected {sorted(want)}")
    if not any(r.get("precopy") for r in runs):
        fail("storm: no pre-copy run in the matrix")
    for r in runs:
        tag = f"{r.get('policy')}{'+precopy' if r.get('precopy') else ''}"
        if r.get("exactly_once") is not True:
            fail(f"storm {tag}: exactly-once accounting failed")
        if r.get("audit_violations") != 0:
            fail(f"storm {tag}: trace-audit violations")
        for key in ("p50", "p95", "p99", "queue_wait_p99", "mean_freeze_s"):
            if not finite(r.get(key)):
                fail(f"storm {tag}: non-finite {key}")
        if r["policy"] != "none" and r.get("migrations", 0) <= 0:
            fail(f"storm {tag}: adaptive policy never migrated")
    gates = doc["gates"]
    if gates.get("pass") is not True:
        fail(f"gate failure: {gates}")
    check_gate_ratio(gates, "vday_floor", "requests_per_vday", at_most=True)
    check_gate_ratio(gates, "best_adaptive_p99", "none_p99", at_most=True)
    check_gate_ratio(gates, "precopy_p99", "stopcopy_p99", at_most=True)
    check_gate_ratio(gates, "precopy_mean_freeze_s", "stopcopy_mean_freeze_s",
                     at_most=True)
    print("service bench (%s): %.2fM req/vday, day p99 %.3fs; storm none p99 "
          "%.3fs -> %s %.3fs; freeze stopcopy %.3fs -> precopy %.3fs"
          % (doc["mode"], day["requests_per_vday"] / 1e6, day["p99"],
             gates["none_p99"], gates["best_adaptive"],
             gates["best_adaptive_p99"], gates["stopcopy_mean_freeze_s"],
             gates["precopy_mean_freeze_s"]))

checks = {
    "load_scale": check_load_scale,
    "drain_host": check_drain_host,
    "adversarial_net": check_adversarial_net,
    "sim_throughput": check_sim_throughput,
    "service": check_service,
    "analytics": check_analytics,
}
kind = doc.get("bench")
if kind not in checks:
    fail(f"unknown bench kind {kind!r} (validators: {sorted(checks)})")
checks[kind]()
EOF
}

# Build and run the load-balancing scale bench (1024 hosts, 16384 tasks)
# and
# validate BENCH_load.json.  The bench binary itself exits nonzero when its
# span audit or shape gate fails, so a pass here means the whole decide ->
# migrate -> trace chain held at scale.
run_bench_load() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target bench_load_scale
  ( cd build && ./bench/bench_load_scale )
  validate_bench_json build/BENCH_load.json
  validate_bench_json build/BENCH_analytics.json
  validate_trace build/BENCH_load_trace.json
  run_bench_drain
}

# Build and run the drain-a-host bench (32 tasks evacuated by k concurrent
# migration streams) and validate BENCH_drain.json.  The binary itself
# exits nonzero when a gate or its span audit fails, so a pass here means
# concurrent drains stayed deadlock-free.
run_bench_drain() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target bench_drain_host
  ( cd build && ./bench/bench_drain_host )
  validate_bench_json build/BENCH_drain.json
  validate_bench_json build/BENCH_analytics.json
  validate_trace build/BENCH_drain_trace.json
  run_bench_adversarial
}

# Build and run the adversarial-network goodput bench (streams under
# duplication + 1% corruption) and validate BENCH_adversarial.json.  The
# binary exits nonzero when a stream loses or garbles a message or the
# goodput gate fails, so a pass here means the exactly-once defenses
# degrade gracefully under fire.
run_bench_adversarial() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target bench_adversarial_net
  ( cd build && ./bench/bench_adversarial_net )
  validate_bench_json build/BENCH_adversarial.json
  run_bench_sim
}

# Build and run the sim-core throughput bench in full (acceptance) mode —
# calendar queue + pooled events vs the pinned legacy heap+std::function
# engine — and validate BENCH_sim.json.  The binary exits nonzero when a
# workload misses its speedup floor, so a pass here re-proves the >= 5x
# timer_churn bar, not just the smoke floor the per-commit ctest label runs.
run_bench_sim() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target bench_sim_throughput
  ( cd build && ./bench/bench_sim_throughput )
  validate_bench_json build/BENCH_sim.json
  run_bench_service
}

# Build and run the service-workload tail-latency bench in smoke mode (the
# storm matrix is full-size either way; only the diurnal day profile is
# shortened) and validate BENCH_service.json + the analytics and trace
# exports.  The binary exits nonzero when a gate fails — per-vday floor,
# adaptive-beats-none on p99, pre-copy <= stop-and-copy — so a pass here
# means the whole arrival -> route -> serve -> migrate -> histogram chain
# held under an owner-reclamation storm.
run_bench_service() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target bench_service_tail
  ( cd build && ./bench/bench_service_tail --smoke )
  validate_bench_json build/BENCH_service.json
  validate_bench_json build/BENCH_analytics.json
  validate_trace build/BENCH_service_trace.json
}

# The Chrome trace export must be strict JSON with a non-empty traceEvents
# array, one complete ("X") span per protocol stage of every migration, and
# finite non-negative timestamps throughout — Perfetto silently drops what
# it cannot parse, so CI parses first.
validate_trace() {
  python3 - "$1" <<'EOF'
import json, math, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f, parse_constant=lambda c: float("nan"))
evs = doc.get("traceEvents")
if not isinstance(evs, list) or not evs:
    sys.exit(f"{path}: empty or missing traceEvents")

def finite(x):
    return isinstance(x, (int, float)) and math.isfinite(x) and x >= 0

names = set()
spans = 0
for i, e in enumerate(evs):
    ph = e.get("ph")
    if ph == "M":
        continue
    if ph not in ("X", "i"):
        sys.exit(f"{path}: traceEvents[{i}]: unexpected phase {ph!r}")
    if not finite(e.get("ts")) or (ph == "X" and not finite(e.get("dur"))):
        sys.exit(f"{path}: traceEvents[{i}]: non-finite ts/dur")
    args = e.get("args", {})
    for key in ("trace_id", "span_id", "status"):
        if key not in args:
            sys.exit(f"{path}: traceEvents[{i}]: missing args.{key}")
    names.add(e.get("name"))
    spans += 1

want = {f"mpvm.{s}" for s in ("migrate", "freeze", "flush", "transfer", "restart")}
missing = want - names
if missing:
    sys.exit(f"{path}: no span exported for: {', '.join(sorted(missing))}")
print(f"trace check: {spans} spans, stages all present")
EOF
}

# Prove the auditor still audits: the synthetic broken fixtures (a migration
# missing its flush stage, an abort without rollback, a regressing epoch)
# must be flagged, and a real migration's trace must pass.  The bench binary
# exits nonzero when its own audit fails, so this doubles as an end-to-end
# protocol check.
run_audit() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target test_obs bench_table2_mpvm_migration
  ctest --test-dir build --output-on-failure -R 'TraceAuditor|SpanTracer'
  ( cd build && ./bench/bench_table2_mpvm_migration )
  validate_trace build/BENCH_trace.json
}

# The property sweeps (migration x fault, load placement, adversarial
# network) carry a ctest `sweep` label and simulate minutes of virtual time
# per cell; run them on their own with a generous per-test timeout so a
# loaded CI box cannot turn a slow-but-correct cell into a flake.
run_sweeps() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" \
    --target test_migration_property test_load_property \
             test_adversarial_property test_service_property
  ctest --test-dir build --output-on-failure -j "$(nproc)" \
    -L sweep --timeout 300
}

# SLO drill: arm a deliberately-impossible rule next to one that must hold,
# run the small fleet, and assert the flight recorder produced EXACTLY one
# dump.  The dump must be self-contained: the embedded span tail is
# replayed offline here (critical path recomputed from nothing but the
# file) — the §14 "replayable" acceptance criterion.
run_bench_slo() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target bench_load_scale
  ( cd build && rm -f flight_*.json && ./bench/bench_load_scale --slo )
  local flights=(build/flight_*.json)
  if [ "${#flights[@]}" -ne 1 ] || [ ! -f "${flights[0]}" ]; then
    echo "slo drill: expected exactly one flight dump, got: ${flights[*]}" >&2
    exit 1
  fi
  python3 - "${flights[0]}" <<'EOF'
import json, math, sys
from collections import defaultdict

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f, parse_constant=lambda c: float("nan"))

def fail(msg):
    sys.exit(f"{path}: {msg}")

for key in ("flight", "t", "reason", "violation", "rules", "series", "spans"):
    if key not in doc:
        fail(f"missing key {key!r}")
if doc["reason"] != "slo":
    fail(f"reason {doc['reason']!r}, expected 'slo'")
v = doc["violation"]
if not isinstance(v, dict) or "p99(mpvm.freeze_window)" not in v.get("rule", ""):
    fail(f"violation does not carry the armed rule: {v!r}")
if not any("mpvm.freeze_window" in s.get("name", "") and s.get("windows")
           for s in doc["series"]):
    fail("no retained windows for the violated series")

# Offline replay: recompute each migration's critical path from nothing but
# the embedded span tail.
children = defaultdict(list)
spans = doc["spans"]
for s in spans:
    if s["parent"]:
        children[(s["trace"], s["parent"])].append(s)
replayed = []
for s in spans:
    if s["name"] != "mpvm.migrate" or s["status"] != "ok":
        continue
    kids = [k for k in children[(s["trace"], s["span"])]
            if k["name"].startswith("mpvm.") and not k.get("instant")]
    if not kids or any(k["status"] == "open" for k in kids):
        continue
    per_stage = defaultdict(float)
    for k in kids:
        per_stage[k["name"]] += k["end"] - k["start"]
    dominant = max(sorted(per_stage), key=lambda n: per_stage[n])
    wall = s["end"] - s["start"]
    cov = sum(per_stage.values()) / wall if wall > 0 else 1.0
    if not math.isfinite(cov):
        fail(f"trace {s['trace']}: non-finite coverage")
    replayed.append((s["trace"], dominant, cov))
if not replayed:
    fail("span tail contains no completed migration to replay")
print(f"slo drill: flight dump replayed offline — {len(replayed)} "
      "migration(s), dominant stages: "
      + ", ".join(f"{t}:{d.split('.')[-1]}({c:.2f})" for t, d, c in replayed))
EOF
}

mode="${1:-all}"

case "$mode" in
  plain)
    run_suite build
    ;;
  sanitize)
    run_suite build-asan -DCPE_SANITIZE=address
    ;;
  tsan)
    run_suite build-tsan -DCPE_SANITIZE=thread
    ;;
  bench)
    run_bench_smoke
    ;;
  sweeps)
    run_sweeps
    ;;
  audit)
    run_audit
    ;;
  slo)
    run_bench_slo
    ;;
  all)
    run_suite build
    run_suite build-asan -DCPE_SANITIZE=address
    run_suite build-tsan -DCPE_SANITIZE=thread
    run_bench_smoke
    run_audit
    run_bench_slo
    ;;
  *)
    echo "usage: $0 [plain|sanitize|tsan|bench|sweeps|audit|slo|all]" >&2
    exit 2
    ;;
esac

echo "check.sh: all requested suites passed"
