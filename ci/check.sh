#!/usr/bin/env bash
# Tier-1 verification: build and run the test suite, plain and sanitized.
#
#   ci/check.sh            # plain + ASan/UBSan + TSan + bench smoke + audit
#   ci/check.sh plain      # plain RelWithDebInfo only
#   ci/check.sh sanitize   # ASan+UBSan only
#   ci/check.sh tsan       # ThreadSanitizer only
#   ci/check.sh bench      # bench smoke: run one table bench, validate the
#                          # BENCH_metrics.json and BENCH_trace.json it
#                          # exports (DESIGN.md §9, §10), then the load
#                          # scale bench + its BENCH_load.json (§11.5) and
#                          # the drain-a-host bench + BENCH_drain.json (§12)
#   ci/check.sh audit      # trace audit: prove the TraceAuditor flags the
#                          # deliberately-broken fixtures (missing flush
#                          # stage etc.), then audit a real migration trace
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

# Build and run one table bench, then validate the metrics export: the file
# must be line-delimited strict JSON, every mpvm migration stage must have a
# non-empty histogram, and no value may be NaN/Inf.  This is the check that
# would have caught the wire-byte undercount: an instrumented quantity that
# is silently zero or absent fails here, not three PRs later.
run_bench_smoke() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target bench_table2_mpvm_migration
  ( cd build && ./bench/bench_table2_mpvm_migration )
  python3 - build/BENCH_metrics.json <<'EOF'
import json, math, sys

path = sys.argv[1]
stages = {f"mpvm.stage.{s}" for s in ("freeze", "flush", "transfer", "restart")}
seen = {}

def finite(x):
    return isinstance(x, (int, float)) and math.isfinite(x)

with open(path) as f:
    lines = [ln for ln in f if ln.strip()]
if not lines:
    sys.exit(f"{path}: empty metrics export")
for i, ln in enumerate(lines, 1):
    try:
        # json accepts NaN/Infinity by default; parse_constant makes it strict.
        rec = json.loads(ln, parse_constant=lambda c: float("nan"))
    except json.JSONDecodeError as e:
        sys.exit(f"{path}:{i}: not valid JSON: {e}")
    for key in ("t", "value", "sum", "min", "max", "mean", "p50", "p90", "p99"):
        if key in rec and not finite(rec[key]):
            sys.exit(f"{path}:{i}: non-finite {key} in {rec.get('name')}")
    if rec.get("type") == "histogram":
        for b in rec.get("buckets", []):
            if b["le"] is not None and not finite(b["le"]):
                sys.exit(f"{path}:{i}: non-finite bucket bound")
        if rec["name"] in stages:
            seen[rec["name"]] = seen.get(rec["name"], 0) + rec["count"]
            if rec["count"] == 0 or not rec.get("buckets"):
                sys.exit(f"{path}:{i}: empty histogram for {rec['name']}")

missing = stages - set(seen)
if missing:
    sys.exit(f"{path}: no histogram exported for: {', '.join(sorted(missing))}")
print(f"bench smoke: {len(lines)} metric lines, per-stage samples: "
      + ", ".join(f"{k.split('.')[-1]}={v}" for k, v in sorted(seen.items())))
EOF
  validate_trace build/BENCH_trace.json
  run_bench_load
}

# Build and run the load-balancing scale bench (64 hosts, 512 tasks) and
# validate BENCH_load.json: strict JSON, one entry per policy including the
# no-balancing baseline, finite values, every real policy below the baseline
# CV with zero hysteresis violations.  The bench binary itself exits nonzero
# when its span audit or shape gate fails, so a pass here means the whole
# decide -> migrate -> trace chain held at scale.
run_bench_load() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target bench_load_scale
  ( cd build && ./bench/bench_load_scale )
  python3 - build/BENCH_load.json <<'EOF'
import json, math, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f, parse_constant=lambda c: float("nan"))

def finite(x):
    return isinstance(x, (int, float)) and math.isfinite(x)

for key in ("bench", "hosts", "tasks", "horizon", "steady_window", "policies"):
    if key not in doc:
        sys.exit(f"{path}: missing key {key!r}")
policies = doc["policies"]
want = {"none", "threshold", "best_fit", "destination_swap", "work_steal"}
got = {p.get("policy") for p in policies}
if got != want:
    sys.exit(f"{path}: policies {sorted(got)} != expected {sorted(want)}")
baseline = next(p for p in policies if p["policy"] == "none")
if not finite(baseline["cv"]) or baseline["cv"] <= 0:
    sys.exit(f"{path}: baseline cv {baseline['cv']!r} not a positive float")
for p in policies:
    for key in ("cv", "migrations", "thrash", "residency_rejections",
                "decisions"):
        if not finite(p.get(key)):
            sys.exit(f"{path}: {p['policy']}: non-finite {key}")
    if p["policy"] == "none":
        continue
    if p["cv"] >= baseline["cv"]:
        sys.exit(f"{path}: {p['policy']}: cv {p['cv']} not below baseline "
                 f"{baseline['cv']}")
    if p["thrash"] != 0:
        sys.exit(f"{path}: {p['policy']}: {p['thrash']} hysteresis violations")
    if p["migrations"] == 0:
        sys.exit(f"{path}: {p['policy']}: balanced without migrating?")
print("load bench: baseline cv %.4f; " % baseline["cv"]
      + ", ".join(f"{p['policy']}={p['cv']:.4f}" for p in policies
                  if p["policy"] != "none"))
EOF
  validate_trace build/BENCH_load_trace.json
  run_bench_drain
}

# Build and run the drain-a-host bench (32 tasks evacuated by k concurrent
# migration streams) and validate BENCH_drain.json: strict JSON, one run per
# k plus the pre-copy run, finite values, and the two §12 acceptance gates —
# k=4 evacuation at most 0.45x serial, pre-copy median freeze at most 0.25x
# stop-and-copy.  The binary itself exits nonzero when a gate or its span
# audit fails, so a pass here means concurrent drains stayed deadlock-free.
run_bench_drain() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target bench_drain_host
  ( cd build && ./bench/bench_drain_host )
  python3 - build/BENCH_drain.json <<'EOF'
import json, math, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f, parse_constant=lambda c: float("nan"))

def finite(x):
    return isinstance(x, (int, float)) and math.isfinite(x)

for key in ("bench", "tasks", "dests", "image_bytes", "runs", "gates"):
    if key not in doc:
        sys.exit(f"{path}: missing key {key!r}")
runs = doc["runs"]
want = {(1, False), (2, False), (4, False), (8, False), (4, True)}
got = {(r.get("k"), r.get("precopy")) for r in runs}
if got != want:
    sys.exit(f"{path}: runs {sorted(got)} != expected {sorted(want)}")
for r in runs:
    for key in ("evacuation_s", "freeze_p50_ms", "freeze_p90_ms",
                "freeze_max_ms", "precopy_bytes", "residue_bytes",
                "admission_waits"):
        if not finite(r.get(key)):
            sys.exit(f"{path}: k={r['k']}: non-finite {key}")
    if r["migrated"] != doc["tasks"]:
        sys.exit(f"{path}: k={r['k']} precopy={r['precopy']}: drained "
                 f"{r['migrated']}/{doc['tasks']} tasks")
    if r["precopy"] and r["precopy_bytes"] == 0:
        sys.exit(f"{path}: pre-copy run streamed zero bytes before freeze")
gates = doc["gates"]
if gates.get("pass") is not True:
    sys.exit(f"{path}: gate failure: {gates}")
if not (finite(gates.get("speedup_ratio"))
        and gates["speedup_ratio"] <= gates["speedup_limit"]):
    sys.exit(f"{path}: evacuation speedup ratio {gates.get('speedup_ratio')!r} "
             f"over limit {gates.get('speedup_limit')!r}")
if not (finite(gates.get("freeze_ratio"))
        and gates["freeze_ratio"] <= gates["freeze_limit"]):
    sys.exit(f"{path}: freeze-window ratio {gates.get('freeze_ratio')!r} "
             f"over limit {gates.get('freeze_limit')!r}")
print("drain bench: evac k=4/k=1 %.3f <= %.2f, precopy freeze %.3f <= %.2f"
      % (gates["speedup_ratio"], gates["speedup_limit"],
         gates["freeze_ratio"], gates["freeze_limit"]))
EOF
  validate_trace build/BENCH_drain_trace.json
}

# The Chrome trace export must be strict JSON with a non-empty traceEvents
# array, one complete ("X") span per protocol stage of every migration, and
# finite non-negative timestamps throughout — Perfetto silently drops what
# it cannot parse, so CI parses first.
validate_trace() {
  python3 - "$1" <<'EOF'
import json, math, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f, parse_constant=lambda c: float("nan"))
evs = doc.get("traceEvents")
if not isinstance(evs, list) or not evs:
    sys.exit(f"{path}: empty or missing traceEvents")

def finite(x):
    return isinstance(x, (int, float)) and math.isfinite(x) and x >= 0

names = set()
spans = 0
for i, e in enumerate(evs):
    ph = e.get("ph")
    if ph == "M":
        continue
    if ph not in ("X", "i"):
        sys.exit(f"{path}: traceEvents[{i}]: unexpected phase {ph!r}")
    if not finite(e.get("ts")) or (ph == "X" and not finite(e.get("dur"))):
        sys.exit(f"{path}: traceEvents[{i}]: non-finite ts/dur")
    args = e.get("args", {})
    for key in ("trace_id", "span_id", "status"):
        if key not in args:
            sys.exit(f"{path}: traceEvents[{i}]: missing args.{key}")
    names.add(e.get("name"))
    spans += 1

want = {f"mpvm.{s}" for s in ("migrate", "freeze", "flush", "transfer", "restart")}
missing = want - names
if missing:
    sys.exit(f"{path}: no span exported for: {', '.join(sorted(missing))}")
print(f"trace check: {spans} spans, stages all present")
EOF
}

# Prove the auditor still audits: the synthetic broken fixtures (a migration
# missing its flush stage, an abort without rollback, a regressing epoch)
# must be flagged, and a real migration's trace must pass.  The bench binary
# exits nonzero when its own audit fails, so this doubles as an end-to-end
# protocol check.
run_audit() {
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target test_obs bench_table2_mpvm_migration
  ctest --test-dir build --output-on-failure -R 'TraceAuditor|SpanTracer'
  ( cd build && ./bench/bench_table2_mpvm_migration )
  validate_trace build/BENCH_trace.json
}

mode="${1:-all}"

case "$mode" in
  plain)
    run_suite build
    ;;
  sanitize)
    run_suite build-asan -DCPE_SANITIZE=address
    ;;
  tsan)
    run_suite build-tsan -DCPE_SANITIZE=thread
    ;;
  bench)
    run_bench_smoke
    ;;
  audit)
    run_audit
    ;;
  all)
    run_suite build
    run_suite build-asan -DCPE_SANITIZE=address
    run_suite build-tsan -DCPE_SANITIZE=thread
    run_bench_smoke
    run_audit
    ;;
  *)
    echo "usage: $0 [plain|sanitize|tsan|bench|audit|all]" >&2
    exit 2
    ;;
esac

echo "check.sh: all requested suites passed"
