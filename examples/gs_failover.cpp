// The global scheduler itself is a process on somebody's workstation — on
// the paper's worknet it can disappear just like the machines it manages.
// This example runs the Opt trainer (4.2 MB set) under MPVM with the
// *replicated* global scheduler: three GS replicas on their own machines,
// leader election, journal replication, and a fencing epoch on every
// migration command.
//
// The owner of host2 reclaims it at t=40; one second later — while the
// vacate's state transfer is still on the wire — the leader's host crashes.
// Watch the leadership log and the journal: a follower wins the election
// within a few heartbeats, picks up the replicated open vacate, rides out
// the in-flight migration, and the training run finishes untouched.
#include <cstdio>
#include <fstream>

#include "apps/opt/opt_app.hpp"
#include "gs/ha.hpp"
#include "obs/span.hpp"

using namespace cpe;

int main() {
  sim::Engine eng;
  net::Network net(eng);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  os::Host host3(eng, net, os::HostConfig("host3", "HPPA", 1.0));
  os::Host gs1(eng, net, os::HostConfig("gs1", "HPPA", 1.0));
  os::Host gs2(eng, net, os::HostConfig("gs2", "HPPA", 1.0));
  os::Host gs3(eng, net, os::HostConfig("gs3", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);
  vm.add_host(host3);

  mpvm::Mpvm mpvm(vm);
  gs::HaScheduler sched(vm, {&gs1, &gs2, &gs3});
  sched.attach(mpvm);
  sched.start(/*until=*/600.0);

  opt::OptConfig cfg;
  cfg.data_bytes = 4'200'000;
  cfg.nslaves = 2;
  cfg.iterations = 20;
  cfg.master_host = "host1";
  cfg.slave_hosts = {"host1", "host2"};
  opt::PvmOpt app(vm, cfg);

  // The owner of host2 reclaims it at t=40...
  os::ScriptedOwner owner(
      eng, {os::OwnerEvent(40.0, host2, os::OwnerAction::kReclaim, 2)});
  owner.set_observer([&](const os::OwnerEvent& ev) {
    std::printf("[t=%6.1f] owner %s on %s\n", ev.t, os::to_string(ev.action),
                ev.host->name().c_str());
    sched.on_owner_event(ev);
  });
  owner.start();
  // ...and the leader's machine dies one second later, mid-migration.
  eng.schedule_at(41.0, [&] {
    std::printf("[t=%6.1f] leader host %s crashes\n", eng.now(),
                gs1.name().c_str());
    gs1.crash();
  });

  opt::OptResult result;
  auto driver = [&]() -> sim::Proc { result = co_await app.run(); };
  sim::spawn(eng, driver());
  eng.run();

  std::printf("\nOpt finished: %d iterations in %.1f virtual seconds\n",
              result.iterations_done, result.runtime());
  std::printf("\nLeadership:\n");
  for (const auto& c : sched.leadership_changes())
    std::printf("  [t=%6.1f] replica %d leads, term %llu\n", c.t, c.replica,
                static_cast<unsigned long long>(c.term));
  std::printf("\nScheduler journal (the new leader's, replicated):\n");
  for (const auto& d : sched.journal())
    std::printf("  [t=%6.1f] %s%s\n", d.t, d.what.c_str(),
                d.ok ? "" : " (failed)");
  std::printf("\nMigrations performed:\n");
  for (const auto& m : mpvm.history())
    std::printf("  %s: %s -> %s, %zu bytes, total %.2f s\n",
                m.task.str().c_str(), m.from_host.c_str(), m.to_host.c_str(),
                m.state_bytes, m.migration_time());
  std::printf("\nFence: floor %llu, %llu admitted, %llu rejected\n",
              static_cast<unsigned long long>(sched.fence()->floor()),
              static_cast<unsigned long long>(sched.fence()->admitted()),
              static_cast<unsigned long long>(sched.fence()->rejected()));

  // The failover is easiest to read as a span timeline: the deposed
  // leader's fenced attempts sit next to the new leader's completed vacate.
  std::printf("\nMigration span timeline:\n");
  for (const auto& s : vm.spans().spans()) {
    if (s.instant) continue;
    std::printf("  trace %llu %-16s %-6s [%7.2f .. %7.2f] %s\n",
                static_cast<unsigned long long>(s.trace_id), s.name.c_str(),
                s.host.c_str(), s.start, s.end, obs::to_string(s.status));
  }
  std::ofstream trace("BENCH_trace.json", std::ios::trunc);
  obs::write_chrome_trace(vm.spans(), trace);
  std::printf(
      "\nTrace dumped to BENCH_trace.json (%zu spans) — load it in Perfetto "
      "or chrome://tracing (README: \"visualize a migration\")\n",
      vm.spans().size());
  return 0;
}
