// Service workload: open-loop request serving under an owner-reclamation
// storm (DESIGN.md §15).
//
// A frontend issues Poisson arrivals against a pool of request-serving
// workers; at t=15 the owner of two worker hosts comes back and floods
// them with interactive jobs.  The same scenario runs three times:
//
//  * policy "none"       — requests queue behind the owner's jobs and the
//    tail latency is censored at the timeout;
//  * "best_fit" stop-and-copy — workers migrate off the reclaimed hosts,
//    paying a freeze window per move;
//  * "best_fit" pre-copy  — the same placement decisions, but the image
//    streams while the worker keeps serving, so the freeze (and the tail
//    it inflicts) shrinks.
//
// Each run is one declarative ScenarioRow; run_scenario() wires the
// frontend, load exchange, scheduler, analytics, and fault plan, then
// returns tallies + tail quantiles.  The same mechanism drives
// bench_service_tail, which writes BENCH_service.json.
#include <cstdio>

#include "svc/scenario.hpp"

using namespace cpe;

int main() {
  svc::ScenarioRow base;
  base.name = "example";
  base.hosts = 8;
  base.frontends = 1;
  base.workers = 10;
  base.arrival = svc::ArrivalKind::kPoisson;
  base.rate = 120.0;
  base.route = svc::RouteKind::kLeastOutstanding;
  base.service_demand = 20e-3;
  base.timeout = 5.0;
  base.worker_image_bytes = 8 << 20;
  base.load_threshold = 4.0;
  base.queue_weight = 0.05;
  base.poll_interval = 1.0;
  base.min_residency = 8.0;
  base.fault = svc::FaultKind::kStorm;
  base.storm_hosts = 2;
  base.storm_jobs = 6;
  base.storm_period = 200.0;  // > horizon: one persistent reclamation
  base.fault_start = 15.0;
  base.seed = 7;
  base.horizon = 60.0;

  struct Variant {
    const char* name;
    load::PolicyKind policy;
    bool precopy;
  };
  const Variant variants[] = {
      {"none", load::PolicyKind::kNone, false},
      {"best_fit", load::PolicyKind::kBestFit, false},
      {"best_fit+precopy", load::PolicyKind::kBestFit, true},
  };

  std::printf("%-22s %10s %10s %8s %8s %9s %9s\n", "policy", "completed",
              "timeouts", "migr", "p50", "p99", "freeze");
  for (const Variant& v : variants) {
    svc::ScenarioRow row = base;
    row.name = v.name;
    row.policy = v.policy;
    row.precopy = v.precopy;
    const svc::ScenarioResult r = svc::run_scenario(row);
    std::printf("%-22s %10llu %10llu %8zu %7.3fs %8.3fs %8.3fs%s\n",
                row.name.c_str(),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.timeouts), r.migrations,
                r.latency_p50, r.latency_p99, r.mean_freeze,
                r.exactly_once && r.audit_violations == 0 ? "" : "  [DIRTY]");
  }
  return 0;
}
