// Fine-grained load redistribution with UPVM (§2.2, §3.4.2).
//
// A process is too coarse a unit to balance load accurately; UPVM's ULPs
// can be moved one at a time.  This example runs eight ULPs of a data-
// parallel kernel on two hosts, then a third (initially idle) host joins
// the pool and the scheduler shifts individual ULPs onto it — something
// MPVM could only approximate in whole-process lumps.
#include <cstdio>

#include "apps/opt/opt_app.hpp"
#include "upvm/upvm.hpp"

using namespace cpe;

int main() {
  sim::Engine eng;
  net::Network net(eng);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  os::Host host3(eng, net, os::HostConfig("host3", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);
  vm.add_host(host3);

  upvm::Upvm upvm(vm);
  sim::spawn(eng, upvm.start());
  eng.run();

  // Eight worker ULPs, each with 60 s of work.  Round-robin puts 3,3,2 on
  // the hosts; pretend host3 was busy at launch, so we start with ULPs only
  // on host1/host2 by migrating host3's pair away... actually simpler: we
  // just show per-ULP migration rebalancing a deliberately skewed layout.
  std::vector<double> done(8, -1);
  upvm.run_spmd(
      [&](upvm::Ulp& u) -> sim::Co<void> {
        u.set_data_bytes(250'000);
        co_await u.compute(60.0);
        done[static_cast<std::size_t>(u.inst())] = eng.now();
      },
      8);
  // Skew: move host3's ULPs (2, 5) onto host1 - it is now overloaded 5/3/0.
  auto skew = [&]() -> sim::Proc {
    co_await upvm.migrate_ulp(2, host1);
    co_await upvm.migrate_ulp(5, host1);
    std::printf("[t=%6.1f] skewed layout: host1 carries 5 ULPs, host3 none\n",
                eng.now());
    std::printf("%s\n", upvm.format_address_map().c_str());
    // The GS notices and rebalances at ULP granularity.
    co_await sim::Delay(eng, 5.0);
    co_await upvm.migrate_ulp(2, host3);
    co_await upvm.migrate_ulp(5, host3);
    co_await upvm.migrate_ulp(6, host3);
    std::printf("[t=%6.1f] rebalanced one ULP at a time: 2/3/3\n", eng.now());
    std::printf("%s\n", upvm.format_address_map().c_str());
  };
  sim::spawn(eng, skew());

  auto finisher = [&]() -> sim::Proc {
    co_await upvm.wait_all_ulps();
    upvm.shutdown();
  };
  sim::spawn(eng, finisher());
  eng.run();

  std::printf("per-ULP completion times:\n");
  for (std::size_t i = 0; i < done.size(); ++i)
    std::printf("  ULP%zu: %.1f s\n", i, done[i]);
  std::printf("\n%zu migrations performed:\n", upvm.history().size());
  for (const auto& m : upvm.history())
    std::printf("  ULP%d %s -> %s: obtrusive %.2f s, total %.2f s\n", m.ulp,
                m.from_host.c_str(), m.to_host.c_str(), m.obtrusiveness(),
                m.migration_time());
  return 0;
}
