// Heterogeneity is ADM's strength (§3.3.3): data moves across architectures
// with relative ease, while MPVM/UPVM can only migrate between
// "migration compatible" hosts.
//
// This example builds a mixed worknet — two HP-PA boxes and a slower SPARC —
// and shows: (1) MPVM refusing to migrate onto the SPARC; (2) ADMopt happily
// repartitioning its exemplars onto all three machines, weighted by their
// speed, after the scheduler posts a rebalance.
#include <cstdio>

#include "apps/opt/adm_opt.hpp"
#include "mpvm/mpvm.hpp"

using namespace cpe;

int main() {
  sim::Engine eng;
  net::Network net(eng);
  os::Host hp1(eng, net, os::HostConfig("hp1", "HPPA", 1.0));
  os::Host hp2(eng, net, os::HostConfig("hp2", "HPPA", 1.0));
  os::Host sparc(eng, net, os::HostConfig("sparc1", "SPARC", 0.6));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(hp1);
  vm.add_host(hp2);
  vm.add_host(sparc);

  // --- Part 1: MPVM cannot cross architectures. ---------------------------
  mpvm::Mpvm mpvm(vm);
  vm.register_program("hp_worker", [&](pvm::Task& t) -> sim::Co<void> {
    co_await t.compute(50.0);
  });
  auto part1 = [&]() -> sim::Proc {
    std::vector<pvm::Tid> w = co_await vm.spawn("hp_worker", 1, "hp1");
    co_await sim::Delay(eng, 1.0);
    try {
      co_await mpvm.migrate(w[0], sparc);
    } catch (const mpvm::MigrationError& e) {
      std::printf("[t=%5.1f] MPVM: %s\n", eng.now(), e.what());
    }
    // The HPPA pair works fine:
    mpvm::MigrationStats s = co_await mpvm.migrate(w[0], hp2);
    std::printf("[t=%5.1f] MPVM: hp1 -> hp2 ok (%.2f s)\n", eng.now(),
                s.migration_time());
  };
  sim::spawn(eng, part1());
  eng.run();

  // --- Part 2: ADM treats all three machines as one data pool. ------------
  std::printf("\nADMopt on all three machines (speeds 1.0 / 1.0 / 0.6):\n");
  opt::AdmOptConfig cfg;
  cfg.opt.data_bytes = 2'000'000;
  cfg.opt.nslaves = 3;
  cfg.opt.iterations = 10;
  cfg.opt.master_host = "hp1";
  cfg.opt.slave_hosts = {"hp1", "hp2", "sparc1"};
  cfg.partition_weights = {1.0, 1.0, 0.6};  // capacity-weighted shares
  opt::AdmOpt app(vm, cfg);

  opt::OptResult result;
  auto driver = [&]() -> sim::Proc { result = co_await app.run(); };
  sim::spawn(eng, driver());
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    std::printf("[t=%5.1f] GS: rebalance to speed-weighted shares\n",
                eng.now());
    app.post_event(0, adm::AdmEventKind::kRebalance);
  };
  sim::spawn(eng, gs());
  eng.run();

  std::printf(
      "[t=%5.1f] ADMopt done: %d iterations, %.1f s, data conserved: %s\n",
      eng.now(), result.iterations_done, result.runtime(),
      app.final_data_checksum() == result.data_checksum ? "yes" : "NO");
  for (const auto& r : app.redistributions())
    std::printf("  redistribution (slave %d, %s): %.2f s\n", r.slave,
                adm::to_string(r.kind), r.migration_time());
  return 0;
}
