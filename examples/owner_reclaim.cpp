// The paper's motivating scenario (§1): a parallel application sharing
// "owned" workstations must be unobtrusive — when the owner comes back, the
// work must leave, and when the machine is merely loaded, the work should
// move somewhere quieter.
//
// This example runs the Opt trainer (4.2 MB set) under MPVM with the global
// scheduler wired to a scripted owner: the owner of host2 reclaims the
// machine at t=40 and leaves again at t=120.  Watch the GS journal: the
// slave on host2 is migrated away, and the run finishes far sooner than it
// would have on a half-speed machine.
#include <cstdio>
#include <fstream>

#include "apps/opt/opt_app.hpp"
#include "gs/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

using namespace cpe;

int main() {
  sim::Engine eng;
  net::Network net(eng);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  os::Host host3(eng, net, os::HostConfig("host3", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);
  vm.add_host(host3);

  mpvm::Mpvm mpvm(vm);
  gs::GlobalScheduler sched(vm);
  sched.attach(mpvm);

  opt::OptConfig cfg;
  cfg.data_bytes = 4'200'000;
  cfg.nslaves = 2;
  cfg.iterations = 20;
  cfg.master_host = "host1";
  cfg.slave_hosts = {"host1", "host2"};
  opt::PvmOpt app(vm, cfg);

  // The owner of host2: reclaims at t=40, gone again at t=120.
  os::ScriptedOwner owner(
      eng, {os::OwnerEvent(40.0, host2, os::OwnerAction::kReclaim, 2),
            os::OwnerEvent(120.0, host2, os::OwnerAction::kDepart, 2)});
  owner.set_observer([&](const os::OwnerEvent& ev) {
    std::printf("[t=%6.1f] owner %s on %s\n", ev.t, os::to_string(ev.action),
                ev.host->name().c_str());
    sched.on_owner_event(ev);
  });
  owner.start();

  opt::OptResult result;
  auto driver = [&]() -> sim::Proc { result = co_await app.run(); };
  sim::spawn(eng, driver());
  eng.run();

  std::printf("\nOpt finished: %d iterations in %.1f virtual seconds\n",
              result.iterations_done, result.runtime());
  std::printf("\nGlobal scheduler journal:\n");
  for (const auto& d : sched.journal())
    std::printf("  [t=%6.1f] %s%s\n", d.t, d.what.c_str(),
                d.ok ? "" : " (failed)");
  std::printf("\nMigrations performed:\n");
  for (const auto& m : mpvm.history())
    std::printf(
        "  %s: %s -> %s, %zu bytes, obtrusive %.2f s, total %.2f s\n",
        m.task.str().c_str(), m.from_host.c_str(), m.to_host.c_str(),
        m.state_bytes, m.obtrusiveness(), m.migration_time());

  // Everything above came from ad-hoc printfs; the same story is in the
  // metrics registry, one JSON object per line (see DESIGN.md §9).
  std::ofstream metrics("BENCH_metrics.json", std::ios::trunc);
  vm.metrics().write_jsonl(metrics);
  std::printf("\nMetrics dumped to BENCH_metrics.json (%zu instruments)\n",
              vm.metrics().size());

  // Each GS decision rooted one causal trace; the span timeline shows the
  // same story stage by stage, across hosts.
  std::printf("\nMigration span timeline:\n");
  for (const auto& s : vm.spans().spans()) {
    if (s.instant) continue;
    std::printf("  trace %llu %-16s %-6s [%7.2f .. %7.2f] %s\n",
                static_cast<unsigned long long>(s.trace_id), s.name.c_str(),
                s.host.c_str(), s.start, s.end, obs::to_string(s.status));
  }
  std::ofstream trace("BENCH_trace.json", std::ios::trunc);
  obs::write_chrome_trace(vm.spans(), trace);
  std::printf(
      "\nTrace dumped to BENCH_trace.json (%zu spans) — load it in Perfetto "
      "or chrome://tracing (README: \"visualize a migration\")\n",
      vm.spans().size());
  return 0;
}
