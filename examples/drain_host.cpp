// Drain a host with concurrent migrations (DESIGN.md §12).
//
// The owner reclaims a workstation running eight chatting tasks.  The
// Global Scheduler's admission controller lets up to four migration streams
// run at once — pair-lane conflict detection fans them out across
// destinations, scoped flush keeps overlapping flushes from deadlocking
// each other, and residual forwarding catches any message that raced a
// move.  With pre-copy on, each task's image streams while it still runs
// and the freeze window shrinks to the dirty residue.
//
// Watch the output: migrations overlap in time (compare frozen/restart
// stamps), every task keeps its message stream intact, and the admission
// counters show streams waiting for a slot rather than piling up.
#include <cstdio>
#include <memory>
#include <vector>

#include "gs/scheduler.hpp"
#include "mpvm/mpvm.hpp"
#include "obs/audit.hpp"

using namespace cpe;

int main() {
  sim::Engine eng;
  net::Network net(eng, net::EthernetParams{.bandwidth_bps = 100e6});
  os::Host src(eng, net, os::HostConfig("src", "HPPA", 1.0));
  std::vector<std::unique_ptr<os::Host>> dests;
  for (int i = 1; i <= 4; ++i)
    dests.push_back(std::make_unique<os::Host>(
        eng, net, os::HostConfig("d" + std::to_string(i), "HPPA", 1.0)));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(src);
  for (auto& d : dests) vm.add_host(*d);

  mpvm::Mpvm mpvm(vm);
  mpvm::MpvmTuning tun;
  tun.precopy = true;  // freeze only for the dirty residue
  mpvm.set_tuning(tun);

  gs::GsPolicy policy;
  policy.max_concurrent_migrations = 4;
  gs::GlobalScheduler sched(vm, policy);
  sched.attach(mpvm);

  // Four ping-pong pairs: odd instances initiate, even instances echo.
  // They keep chatting through the whole drain — residual forwarding and
  // the flush protocol must not lose or reorder a single message.
  vm.register_program("chatter", [&eng](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 2'000'000;
    const std::uint32_t inst = t.tid().task_num();
    const bool initiator = (inst % 2) == 1;
    const pvm::Tid peer = pvm::Tid::make(0, initiator ? inst + 1 : inst - 1);
    co_await sim::Delay(eng, 5.0);  // let the whole worknet enroll first
    for (int i = 0; i < 20; ++i) {
      if (initiator) {
        t.initsend().pk_int(i);
        co_await t.send(peer, 11);
        co_await t.recv(pvm::kAny, 12);
      } else {
        co_await t.recv(pvm::kAny, 11);
        t.initsend().pk_int(t.rbuf().upk_int());
        co_await t.send(peer, 12);
      }
      co_await t.compute(0.5);
    }
  });

  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("chatter", 8, "src");
    co_await sim::Delay(eng, 5.0 - eng.now());
    std::printf("[t=%6.1f] owner reclaims src: drain begins\n", eng.now());
    os::OwnerEvent ev(eng.now(), src, os::OwnerAction::kReclaim, 1);
    sched.on_owner_event(ev);
  };
  sim::spawn(eng, driver());
  sched.start_heartbeat(60.0);
  eng.run_until(60.0);

  std::printf("\nMigrations (note the overlapping windows):\n");
  for (const auto& m : mpvm.history())
    std::printf(
        "  %s: %s -> %s  frozen %.2f..%.2f  freeze window %.0f ms  "
        "(precopied %zu of %zu bytes)\n",
        m.task.str().c_str(), m.from_host.c_str(), m.to_host.c_str(),
        m.frozen_time, m.restart_done, m.freeze_window() * 1e3,
        m.precopy_bytes, m.state_bytes);

  std::printf("\nAdmission control:\n");
  std::printf("  slot waits:      %llu\n",
              static_cast<unsigned long long>(
                  vm.metrics().counter("gs.migration.admission_waits").value()));
  std::printf("  refusals:        %llu\n",
              static_cast<unsigned long long>(sched.admission().refusals()));
  std::printf("  still in flight: %zu\n", sched.admission().active());

  const obs::TraceAuditor auditor(vm.spans());
  const auto violations = auditor.audit();
  std::printf("\nTrace audit over %zu spans: %s\n", vm.spans().size(),
              violations.empty() ? "clean"
                                 : obs::TraceAuditor::format(violations).c_str());
  return violations.empty() ? 0 : 1;
}
