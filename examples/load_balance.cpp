// Decentralized load balancing (DESIGN.md §11): instead of the paper's
// central GS poll, every host runs a LoadSensor (an age-decayed EWMA of its
// runnable queue) and a gossip agent that trades partial load maps with
// random peers.  The Global Scheduler reads only the map gossip delivered
// to *its* host and lets a pluggable placement policy decide who moves.
//
// This example starts all eight workers on host1, parks a busy owner on
// host2, and runs the BestFit policy: watch the gossip view converge, the
// journal fill with typed "rebalance" decisions, and the final per-host
// loads flatten — all without any component ever polling every host.
#include <cstdio>
#include <fstream>

#include "gs/scheduler.hpp"
#include "load/load.hpp"
#include "obs/metrics.hpp"

using namespace cpe;

int main() {
  sim::Engine eng;
  net::Network net(eng);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  os::Host host3(eng, net, os::HostConfig("host3", "HPPA", 1.0));
  os::Host host4(eng, net, os::HostConfig("host4", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  for (os::Host* h : {&host1, &host2, &host3, &host4}) vm.add_host(*h);
  mpvm::Mpvm mpvm(vm);

  gs::GsPolicy policy;
  policy.placement = load::PolicyKind::kBestFit;
  policy.load_threshold = 2.0;   // shed when the smoothed index tops this
  policy.poll_interval = 1.0;
  policy.min_residency = 5.0;    // anti-thrash: a moved task stays put 5 s
  gs::GlobalScheduler sched(vm, policy);
  sched.attach(mpvm);

  // The gossip fabric: every host samples itself twice a second and trades
  // map snippets with random peers.  The GS's knowledge of the worknet is
  // whatever gossip has delivered to host1 — nothing more.
  load::LoadExchange exchange(vm);
  sched.attach(exchange, host1);

  vm.register_program("worker", [](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 50'000;
    co_await t.compute(300.0);  // long-running: placement decides throughput
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 8, "host1");  // everything lands on host1
    host2.cpu().set_external_jobs(3);         // host2's owner is busy too
  };
  sim::spawn(eng, driver());

  exchange.start(60.0);
  sched.start_monitoring(60.0);
  eng.run_until(30.0);

  std::printf("Gossip view from %s at t=30:\n", host1.name().c_str());
  for (const load::LoadEntry& e : exchange.view(host1))
    std::printf("  %-6s index %5.2f (instant %4.1f, %d owner jobs, %s)\n",
                e.host.c_str(), e.index, e.instant, e.external_jobs,
                e.up ? "up" : "down");

  eng.run_until(75.0);  // let in-flight migrations finish past the horizon

  std::printf("\nGlobal scheduler journal:\n");
  for (const auto& d : sched.journal())
    std::printf("  [t=%5.1f] %-9s %s%s\n", d.t, gs::to_string(d.reason),
                d.what.c_str(), d.ok ? "" : " (failed)");
  std::printf("\nMigrations performed:\n");
  for (const auto& m : mpvm.history())
    std::printf("  %s: %s -> %s (%zu bytes, %.2f s)\n", m.task.str().c_str(),
                m.from_host.c_str(), m.to_host.c_str(), m.state_bytes,
                m.migration_time());
  std::printf("\nFinal runnable load (started as 8/0/0/0 + 3 owner jobs):\n");
  for (os::Host* h : {&host1, &host2, &host3, &host4})
    std::printf("  %-6s %.1f\n", h->name().c_str(), h->cpu().load());
  std::printf("\nAnti-thrash: %llu residency rejections, %llu violations\n",
              static_cast<unsigned long long>(
                  sched.placement().residency_rejections()),
              static_cast<unsigned long long>(
                  sched.placement().thrash_violations()));

  // The same story as instruments: per-host "load.index.<host>" gauges and
  // the typed "gs.decisions.reason.*" counters (DESIGN.md §9, §11.4).
  std::ofstream metrics("BENCH_metrics.json", std::ios::trunc);
  vm.metrics().write_jsonl(metrics);
  std::printf("\nMetrics dumped to BENCH_metrics.json (%zu instruments)\n",
              vm.metrics().size());
  return 0;
}
