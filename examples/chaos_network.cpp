// A migration on a hostile network (DESIGN.md §7).
//
// The fabric under this worknet duplicates frames, re-orders them within a
// bounded horizon, stalls some in delay bursts, and flips payload bits.
// Two conversations run across the wire — a ping-pong pair and a
// back-to-back streamer — while the ping task migrates mid-exchange, so
// application traffic, the flush round, the restart broadcast, and the
// state transfer all cross the adversarial fabric.
//
// Watch the output: every axis of the adversary fires (the injection
// counters), every defense answers (CRC-32 drops and retransmits corrupted
// frames, the per-sender sequence window swallows duplicates and holds
// overtaken frames until the gap fills), and the applications never
// notice — every stream arrives complete, exactly once, in order.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "mpvm/mpvm.hpp"
#include "obs/audit.hpp"

using namespace cpe;

int main() {
  sim::Engine eng;
  net::Network net(eng, net::EthernetParams{}, net::DatagramParams{},
                   /*seed=*/7);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  os::Host host3(eng, net, os::HostConfig("host3", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);
  vm.add_host(host3);
  mpvm::Mpvm mpvm(vm);

  std::map<std::string, std::vector<int>> got;
  constexpr int kRounds = 25;

  // Conversation 1: ping (host1) <-> pong (host2), one echo per round.
  vm.register_program("ping", [&](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 1'000'000;
    co_await sim::Delay(eng, 2.0);  // everyone enrolled, adversary armed
    for (int i = 0; i < kRounds; ++i) {
      t.initsend().pk_int(i);
      co_await t.send(pvm::Tid::make(1, 1), 11);
      co_await t.recv(pvm::kAny, 12);
      got["ping"].push_back(t.rbuf().upk_int());
      co_await t.compute(0.2);
    }
  });
  vm.register_program("pong", [&](pvm::Task& t) -> sim::Co<void> {
    for (int i = 0; i < kRounds; ++i) {
      co_await t.recv(pvm::kAny, 11);
      const int seq = t.rbuf().upk_int();
      got["pong"].push_back(seq);
      t.initsend().pk_int(seq);
      co_await t.send(pvm::Tid::make(0, 1), 12);
    }
  });

  // Conversation 2: tx (host1) streams 10 kB messages back to back at rx
  // (host2) — many frames in flight at once, so a re-ordered datagram is
  // overtaken by its successors and the receive-side sequence window must
  // hold the early arrivals until the gap fills.
  vm.register_program("tx", [&](pvm::Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 2.0);
    for (int i = 0; i < kRounds; ++i) {
      t.initsend().pk_double(std::vector<double>(1'250, double(i)));
      co_await t.send(pvm::Tid::make(1, 2), 9);
    }
  });
  vm.register_program("rx", [&](pvm::Task& t) -> sim::Co<void> {
    for (int i = 0; i < kRounds; ++i) {
      co_await t.recv(pvm::kAny, 9);
      std::vector<double> v(1'250);
      t.rbuf().upk_double(v);
      got["stream"].push_back(static_cast<int>(v.front()));
    }
  });

  // Arm every axis once the spawn RPCs are done: from here on, application
  // chatter AND migration control traffic run under fire.
  eng.schedule_at(1.8, [&net] {
    net.set_adversary({.duplicate_probability = 0.2,
                       .reorder_probability = 0.2,
                       .reorder_horizon = 0.05,
                       .corrupt_probability = 0.03,
                       .burst_probability = 0.05,
                       .burst_delay = 0.05});
    std::printf("[t=   1.8] adversary armed: dup 20%%, reorder 20%%, "
                "corrupt 3%%, bursts 5%%\n");
  });

  bool mig_ok = false;
  auto driver = [&]() -> sim::Proc {
    auto ping = co_await vm.spawn("ping", 1, "host1");
    co_await vm.spawn("pong", 1, "host2");
    co_await vm.spawn("tx", 1, "host1");
    co_await vm.spawn("rx", 1, "host2");
    co_await sim::Delay(eng, 5.0 - eng.now());
    std::printf("[t=%6.1f] migrating %s to host3 over the hostile fabric\n",
                eng.now(), ping[0].str().c_str());
    const mpvm::MigrationStats st = co_await mpvm.migrate(ping[0], host3);
    mig_ok = st.ok;
    std::printf("[t=%6.1f] migration %s\n", eng.now(),
                st.ok ? "completed" : ("FAILED: " + st.failure).c_str());
  };
  sim::spawn(eng, driver());
  eng.run();

  const auto& dg = net.datagrams();
  std::printf("\nAdversary (injected):\n");
  std::printf("  duplicates: %-6llu reorders: %-6llu bursts: %-6llu "
              "corrupt: %llu\n",
              static_cast<unsigned long long>(dg.duplicates_injected()),
              static_cast<unsigned long long>(dg.reorders_injected()),
              static_cast<unsigned long long>(dg.bursts_injected()),
              static_cast<unsigned long long>(dg.corrupt_injected()));

  const auto ctr = [&](const char* name) {
    return static_cast<unsigned long long>(vm.metrics().counter(name).value());
  };
  std::printf("\nDefenses (answered):\n");
  std::printf("  crc drops + retransmits:   %llu / %llu\n",
              static_cast<unsigned long long>(dg.corrupt_dropped()),
              static_cast<unsigned long long>(dg.fragments_retransmitted()));
  std::printf("  seq duplicates dropped:    %llu\n",
              ctr("pvm.seq.duplicates_dropped"));
  std::printf("  seq frames held, released: %llu (gaps skipped: %llu)\n",
              ctr("pvm.seq.reordered_held"), ctr("pvm.seq.gaps_skipped"));
  std::printf("  garbled frames delivered:  %llu\n",
              static_cast<unsigned long long>(dg.corrupt_delivered()));

  bool streams_ok = got.size() == 3;
  for (const auto& [name, seqs] : got) {
    bool in_order = seqs.size() == kRounds;
    for (std::size_t i = 0; in_order && i < seqs.size(); ++i)
      in_order = seqs[i] == static_cast<int>(i);
    streams_ok = streams_ok && in_order;
  }
  std::printf("\nStreams: %s\n",
              streams_ok ? "all 3 complete, exactly once, in order"
                         : "DAMAGED");

  const obs::TraceAuditor auditor(vm.spans());
  const auto violations = auditor.audit();
  std::printf("Trace audit over %zu spans: %s\n", vm.spans().size(),
              violations.empty()
                  ? "clean"
                  : obs::TraceAuditor::format(violations).c_str());
  return mig_ok && streams_ok && violations.empty() ? 0 : 1;
}
