// Quickstart: build a worknet, start a PVM virtual machine, run a small
// message-passing application, and transparently migrate one of its tasks
// with MPVM.
//
//   $ cmake -B build -G Ninja && cmake --build build
//   $ ./build/examples/quickstart
//
// Everything below runs in virtual time: the "seconds" printed are 1994
// HP-9000/720-and-10Mb-Ethernet seconds, computed in milliseconds of real
// time.
#include <cstdio>

#include "gs/scheduler.hpp"

using namespace cpe;

int main() {
  // --- 1. The worknet: two workstations on a shared 10 Mb/s Ethernet. -----
  sim::Engine eng;
  net::Network net(eng);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));

  // --- 2. The PVM virtual machine, plus MPVM for transparent migration. ---
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);
  mpvm::Mpvm mpvm(vm);  // just "re-link": task code below never mentions it

  // --- 3. Task programs, written against the PVM API. ---------------------
  vm.register_program("worker", [&](pvm::Task& t) -> sim::Co<void> {
    // Receive a work descriptor, crunch, reply.
    pvm::Message m = co_await t.recv(pvm::kAny, 1);
    const double work = t.rbuf().upk_double();
    std::printf("[t=%6.2f] %s: received %.1f s of work on %s\n", eng.now(),
                t.tid().str().c_str(), work, t.pvmd().host().name().c_str());
    co_await t.compute(work);
    t.initsend().pk_str("done");
    co_await t.send(m.src, 2);
    std::printf("[t=%6.2f] %s: finished on %s\n", eng.now(),
                t.tid().str().c_str(), t.pvmd().host().name().c_str());
  });

  vm.register_program("coordinator", [&](pvm::Task& t) -> sim::Co<void> {
    std::vector<pvm::Tid> kids = co_await t.spawn("worker", 2);
    for (pvm::Tid kid : kids) {
      t.initsend().pk_double(20.0);
      co_await t.send(kid, 1);
    }
    for (std::size_t i = 0; i < kids.size(); ++i) {
      pvm::Message m = co_await t.recv(pvm::kAny, 2);
      std::printf("[t=%6.2f] coordinator: %s says '%s'\n", eng.now(),
                  m.src.str().c_str(), t.rbuf().upk_str().c_str());
    }
  });

  // --- 4. Launch, and mid-run migrate the host1 worker to host2. ----------
  auto driver = [&]() -> sim::Proc { co_await vm.spawn("coordinator", 1); };
  sim::spawn(eng, driver());

  auto scheduler = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 8.0);  // workers are busy by now
    std::printf("[t=%6.2f] GS: owner wants host1 back - migrating t0.2\n",
                eng.now());
    mpvm::MigrationStats s =
        co_await mpvm.migrate(pvm::Tid::make(0, 2), host2);
    std::printf(
        "[t=%6.2f] GS: done. obtrusiveness %.2f s, migration cost %.2f s, "
        "%zu bytes moved\n",
        eng.now(), s.obtrusiveness(), s.migration_time(), s.state_bytes);
  };
  sim::spawn(eng, scheduler());

  eng.run();
  std::printf("\nSimulation complete at t=%.2f virtual seconds.\n",
              eng.now());
  return 0;
}
