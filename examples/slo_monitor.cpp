// SLO monitoring + flight recorder over a faulty drain (DESIGN.md §14).
//
// The owner reclaims a workstation running eight compute-bound tasks while
// a FaultPlan freezes one of the destination hosts mid-drain.  Two SLO
// rules are armed on the windowed analytics:
//
//  * "p95(mpvm.freeze_window) < 0.05"  — deliberately tight: stop-and-copy
//    of a 2 MB image takes ~0.16 s on this LAN, so the rule fires as soon
//    as the first window holding a freeze sample closes;
//  * "value(mpvm.migrations.inflight) <= 2" — the admission cap, which
//    must hold no matter what the fault plan does.
//
// The flight recorder is wired to both triggers the subsystem supports:
// SLO violations fire it automatically, and the fault plan fires it by
// hand when the destination freezes.  Each dump is a self-contained JSON
// file — last-N windows of every tracked series, the violation that fired
// it, and the span tail — replayable without the process that wrote it.
//
// Watch the output: the violation timeline shows the tight rule firing
// window after window while the cap rule stays quiet, and the critical-path
// table attributes every migration's wall time to the stage that dominated
// it (transfer, for images this size).
#include <cstdio>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "gs/scheduler.hpp"
#include "mpvm/mpvm.hpp"
#include "obs/analytics.hpp"
#include "obs/audit.hpp"
#include "obs/flight.hpp"
#include "obs/trace_analytics.hpp"

using namespace cpe;

int main() {
  sim::Engine eng;
  net::Network net(eng, net::EthernetParams{.bandwidth_bps = 100e6});
  os::Host src(eng, net, os::HostConfig("src", "HPPA", 1.0));
  std::vector<std::unique_ptr<os::Host>> dests;
  for (int i = 1; i <= 4; ++i)
    dests.push_back(std::make_unique<os::Host>(
        eng, net, os::HostConfig("d" + std::to_string(i), "HPPA", 1.0)));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(src);
  for (auto& d : dests) vm.add_host(*d);

  mpvm::Mpvm mpvm(vm);
  gs::GsPolicy policy;
  policy.max_concurrent_migrations = 2;
  gs::GlobalScheduler sched(vm, policy);
  sched.attach(mpvm);

  vm.register_program("worker", [](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 2'000'000;
    co_await t.compute(10'000.0);  // outlives the run: pure drain victim
  });

  // Windowed rollups + the two armed rules.
  obs::Analytics an(eng, vm.metrics());
  const obs::SloRule& tight = an.add_rule("p95(mpvm.freeze_window) < 0.05");
  const obs::SloRule& cap =
      an.add_rule("value(mpvm.migrations.inflight) <= 2");
  an.track_counter("gs.migration.admission_waits");

  // Flight recorder: one dump for the first SLO violation, one for the
  // fault-plan trigger.
  obs::FlightOptions fopt;
  fopt.max_dumps = 2;
  obs::FlightRecorder rec(an, &vm.spans(), fopt);

  // The fault: d1 hangs for five seconds right as the drain ramps up, and
  // the plan snapshots the telemetry at the moment it pulls the plug.
  fault::FaultPlan plan(eng);
  plan.freeze_at(*dests[0], 6.0, 5.0);
  plan.trigger_at(6.0, "flight dump on host freeze",
                  [&rec] { rec.trigger("fault:freeze-d1"); });

  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 8, "src");
    co_await sim::Delay(eng, 5.0 - eng.now());
    std::printf("[t=%6.1f] owner reclaims src: drain begins\n", eng.now());
    os::OwnerEvent ev(eng.now(), src, os::OwnerAction::kReclaim, 1);
    sched.on_owner_event(ev);
  };
  sim::spawn(eng, driver());
  an.start(60.0);
  sched.start_heartbeat(60.0);
  eng.run_until(60.0);

  std::printf("\nSLO rules armed:\n  %s   <- deliberately tight\n  %s\n",
              tight.text().c_str(), cap.text().c_str());

  std::printf("\nViolation timeline (%zu violations):\n",
              an.violations().size());
  std::size_t shown = 0;
  std::uint64_t cap_fires = 0;
  for (const obs::SloViolation& v : an.violations()) {
    if (v.rule == &cap) ++cap_fires;
    if (++shown <= 10)
      std::printf("  t=%5.1f  %-34s observed %.3f (streak %d)\n", v.t,
                  v.rule->text().c_str(), v.observed, v.streak);
  }
  if (shown > 10) std::printf("  ... %zu more\n", shown - 10);
  std::printf("  admission-cap rule fired %llu times (must be 0)\n",
              static_cast<unsigned long long>(cap_fires));

  std::printf("\nFlight dumps (%zu written, %zu suppressed):\n", rec.dumps(),
              rec.suppressed());
  for (const std::string& f : rec.files()) std::printf("  %s\n", f.c_str());

  // Critical-path analytics over the spans the run just produced.
  const std::vector<obs::SpanRecord> spans(vm.spans().spans().begin(),
                                           vm.spans().spans().end());
  obs::TraceAnalytics ta(spans);
  std::printf("\nPer-migration critical paths (%llu migrations, "
              "coverage min %.2f):\n",
              static_cast<unsigned long long>(ta.migrations()),
              ta.coverage_min());
  for (const obs::MigrationPath& p : ta.paths())
    std::printf("  trace %llu: wall %6.2f s, dominated by %-14s (%.2f s)\n",
                static_cast<unsigned long long>(p.trace_id), p.wall,
                p.dominant.c_str(), p.dominant_time);
  std::printf("\nPer-stage table (seconds):\n  %-16s %5s %8s %8s %8s %8s\n",
              "stage", "count", "dominant", "p50", "p95", "p99");
  for (const obs::StageStats& s : ta.stage_table())
    std::printf("  %-16s %5llu %8llu %8.3f %8.3f %8.3f\n", s.stage.c_str(),
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.dominant), s.p50, s.p95,
                s.p99);

  const obs::TraceAuditor auditor(vm.spans());
  const bool audit_ok = auditor.audit().empty();
  const bool ok = !an.violations().empty() && cap_fires == 0 &&
                  rec.dumps() == 2 && ta.migrations() > 0 && audit_ok;
  std::printf("\n%s: tight rule fired, cap held, two flight dumps, trace %s\n",
              ok ? "OK" : "FAIL", audit_ok ? "clean" : "violated");
  return ok ? 0 : 1;
}
