// Ablation A3 — what UPVM's intra-process buffer hand-off is worth
// (§4.2.1, the mechanism behind Table 3's UPVM win).
//
// SPMD_opt at 0.6 MB on a *single* workstation (one container, master and
// both slaves co-resident, every message intra-process), run twice: with
// the hand-off (UPVM's behaviour) and with it disabled so local messages
// pay the same sender-side copy + through-the-daemon delivery as stock PVM.
// The single-host setup exposes the full cost: on the paper's two-host
// testbed much of it hides behind the remote slave's critical path, which
// is why Table 3's delta is small.
#include "bench/bench_util.hpp"

namespace {
using namespace cpe;

double run(bool handoff) {
  sim::Engine eng;
  net::Network net(eng);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  upvm::UpvmOptions opts;
  opts.disable_local_handoff = !handoff;
  upvm::Upvm upvm(vm, opts);
  sim::spawn(eng, upvm.start());
  eng.run();
  opt::SpmdOpt app(upvm, bench::paper_opt_config(0.6));
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc {
    r = co_await app.run();
    upvm.shutdown();
  };
  sim::spawn(eng, driver());
  eng.run();
  return r.runtime();
}
}  // namespace

int main() {
  bench::print_header(
      "Ablation A3: UPVM local buffer hand-off on/off (SPMD_opt, 0.6 MB, single host)",
      "§4.2.1 — \"instead of copying the PVM message buffer ... the UPVM "
      "library ... directly hands-off the buffer to the destination ULP\"");

  const double with = run(true);
  const double without = run(false);
  std::printf("  %-40s %8.3f s\n", "hand-off enabled (UPVM)", with);
  std::printf("  %-40s %8.3f s\n", "hand-off disabled (PVM local route)",
              without);
  std::printf("\n  hand-off saves %.3f s (%.1f%%) on this run\n",
              without - with, (without - with) / without * 100.0);
  std::printf("  Shape check (hand-off strictly faster): %s\n",
              with < without ? "PASS" : "FAIL");
  return 0;
}
