// Ablation A9 — migrate-anywhere (UPVM) vs migration only at safe points
// (the Data Parallel C restriction the paper contrasts with in §5.0: "VP
// migration is possible only at the beginning or end of code segments").
//
// The cost of the restriction is *responsiveness*: a migration order that
// arrives mid-segment must wait for the segment to finish.  Measured with a
// ULP whose compute segments are seconds long — the response time (event to
// context captured) and total migration time stretch by the remaining
// segment length, while UPVM's asynchronous interrupt reacts in
// milliseconds regardless.
#include "bench/bench_util.hpp"

namespace {
using namespace cpe;

upvm::UlpMigrationStats run(bool safe_points, double segment_seconds) {
  bench::Testbed tb;
  upvm::UpvmOptions opts;
  opts.migrate_at_safe_points_only = safe_points;
  upvm::Upvm upvm(tb.vm, opts);
  sim::spawn(tb.eng, upvm.start());
  tb.eng.run();
  upvm.run_spmd(
      [segment_seconds](upvm::Ulp& u) -> sim::Co<void> {
        if (u.inst() != 0) co_return;
        u.set_data_bytes(300'000);
        for (int seg = 0; seg < 40; ++seg)
          co_await u.compute(segment_seconds);
      },
      2);
  upvm::UlpMigrationStats stats;
  auto gs = [&]() -> sim::Proc {
    // Arrive just after a segment starts: worst case for the restriction.
    co_await sim::Delay(tb.eng, 2.0 + segment_seconds * 0.1);
    stats = co_await upvm.migrate_ulp(0, tb.host2);
  };
  sim::spawn(tb.eng, gs());
  tb.eng.run_until(600.0);
  return stats;
}
}  // namespace

int main() {
  bench::print_header(
      "Ablation A9: asynchronous ULP migration vs DPC-style safe points",
      "§5.0 — in DPC, \"VP migration is possible only at the beginning or "
      "end of code segments\"");

  bool ok = true;
  for (double seg : {1.0, 4.0, 10.0}) {
    const auto any = run(false, seg);
    const auto safe = run(true, seg);
    const double resp_any = any.captured_time - any.event_time;
    const double resp_safe = safe.captured_time - safe.event_time;
    std::printf(
        "  segment %5.1f s:  response anytime %7.4f s   safe-points %7.3f s "
        "  (migration total %6.2f vs %6.2f s)\n",
        seg, resp_any, resp_safe, any.migration_time(),
        safe.migration_time());
    // The safe-point wait depends on where in the segment the order lands;
    // the invariant is orders-of-magnitude worse responsiveness.
    ok = ok && resp_any < 0.01 && resp_safe > 100 * resp_any &&
         resp_safe < seg + 0.1;
  }
  std::printf(
      "\n  Shape check (anytime responds in ms; safe-points wait out the "
      "segment): %s\n",
      ok ? "PASS" : "FAIL");
  return 0;
}
