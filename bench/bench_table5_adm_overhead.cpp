// Table 5 — quiet-case overhead, PVM_opt vs ADMopt at 9 MB (§4.3.1).
//
// ADM's adaptivity is paid for in the inner loop: the FSM switch dispatch,
// the migration-event flag check every chunk, and the processed-exemplar
// flag array.  The paper measured 188 s vs 232 s — ADMopt ~23% slower with
// migration effectively disabled (a quiet run).
#include "bench/bench_util.hpp"

namespace {
using namespace cpe;

double run_pvm(std::vector<obs::SpanRecord>& spans) {
  bench::Testbed tb;
  opt::PvmOpt app(tb.vm, bench::paper_opt_config(9.0));
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(tb.eng, driver());
  tb.eng.run();
  bench::collect_spans(tb.vm, spans);
  return r.runtime();
}

double run_adm(std::vector<obs::SpanRecord>& spans) {
  bench::Testbed tb;
  opt::AdmOptConfig cfg;
  cfg.opt = bench::paper_opt_config(9.0);
  opt::AdmOpt app(tb.vm, cfg);
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(tb.eng, driver());
  tb.eng.run();
  bench::collect_spans(tb.vm, spans);
  return r.runtime();
}
}  // namespace

int main() {
  bench::print_header(
      "Table 5: quiet-case overhead, PVM_opt vs ADMopt (9 MB)",
      "PVM_opt 188 s, ADMopt 232 s — \"PVM_opt is thus 23% faster than "
      "ADMopt\"");

  std::vector<obs::SpanRecord> spans;
  const double pvm = run_pvm(spans);
  const double adm = run_adm(spans);
  cpe::bench::print_row_check("PVM_opt", 188.0, pvm);
  cpe::bench::print_row_check("ADMopt", 232.0, adm);
  std::printf("\n  ADM slowdown: %.1f%% (paper: ~23%%)\n",
              (adm - pvm) / pvm * 100.0);
  const bool shape_ok = adm > pvm * 1.15 && adm < pvm * 1.30;
  std::printf("  Shape check (ADM 15-30%% slower): %s\n",
              shape_ok ? "PASS" : "FAIL");
  bench::write_trace_json(spans, "BENCH_trace.json");
  const bool audit_ok = bench::audit_spans(spans);
  return audit_ok && shape_ok ? 0 : 1;
}
