// Ablation A8 — migrate-current-state (MPVM) vs Condor-style
// checkpoint/restart, the design alternative weighed in the paper's §5.0.
//
// A 9 MB Opt run with one owner reclamation at t=90 s.  MPVM vacates by
// moving the live state (obtrusive for seconds, nothing lost).  The
// checkpointing system vacates instantly but (a) pays a periodic freeze +
// network write while running quietly, and (b) re-executes the work done
// since the last checkpoint.  The checkpoint-interval sweep exposes the
// trade-off the paper describes.
#include "bench/bench_util.hpp"

#include "mpvm/checkpoint.hpp"

namespace {
using namespace cpe;

struct Result {
  double runtime = 0;
  double obtrusiveness = 0;
  double overhead_time = 0;  ///< periodic checkpoint freezes
  double redo = 0;
};

Result run_mpvm() {
  bench::Testbed tb;
  os::Host server(tb.eng, tb.net, os::HostConfig("ckptsrv", "HPPA", 1.0));
  tb.vm.add_host(server);
  mpvm::Mpvm mpvm(tb.vm);
  opt::PvmOpt app(tb.vm, bench::paper_opt_config(9.0));
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(tb.eng, driver());
  Result out;
  auto gs = [&]() -> sim::Proc {
    co_await sim::Delay(tb.eng, 90.0);
    mpvm::MigrationStats s = co_await mpvm.migrate(app.slave_tid(0),
                                                   tb.host2);
    out.obtrusiveness = s.obtrusiveness();
  };
  sim::spawn(tb.eng, gs());
  tb.eng.run();
  out.runtime = r.runtime();
  return out;
}

Result run_checkpoint(double interval) {
  bench::Testbed tb;
  os::Host server(tb.eng, tb.net, os::HostConfig("ckptsrv", "HPPA", 1.0));
  tb.vm.add_host(server);
  mpvm::Mpvm mpvm(tb.vm);  // restart handlers
  mpvm::CheckpointOptions opts;
  opts.interval = interval;
  mpvm::Checkpointer ckpt(tb.vm, server, opts);
  opt::PvmOpt app(tb.vm, bench::paper_opt_config(9.0));
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(tb.eng, driver());
  Result out;
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    ckpt.watch(app.slave_tid(0));
    co_await sim::Delay(tb.eng, 90.0);
    mpvm::CkptVacateStats s =
        co_await ckpt.vacate_restart(app.slave_tid(0), tb.host2);
    out.obtrusiveness = s.obtrusiveness();
    out.redo = s.redo_work;
  };
  sim::spawn(tb.eng, gs());
  tb.eng.run();
  out.runtime = r.runtime();
  const mpvm::CheckpointStats* s = ckpt.stats_for(app.slave_tid(0));
  if (s != nullptr) out.overhead_time = s->total_checkpoint_time;
  return out;
}
}  // namespace

int main() {
  bench::print_header(
      "Ablation A8: MPVM migrate-current-state vs Condor-style "
      "checkpoint/restart",
      "§5.0 — \"the checkpoint approach makes migration less obtrusive, "
      "[but] there is a cost of taking periodic checkpoints\" and work may "
      "re-execute");

  const Result m = run_mpvm();
  std::printf(
      "  %-26s runtime %7.1f s   obtrusiveness %6.3f s   ckpt-overhead %5.1f "
      "s   redo %5.1f s\n",
      "MPVM (move live state)", m.runtime, m.obtrusiveness, 0.0, 0.0);
  bool shapes = true;
  for (double interval : {30.0, 60.0, 120.0}) {
    const Result c = run_checkpoint(interval);
    std::printf(
        "  ckpt every %5.0f s        runtime %7.1f s   obtrusiveness %6.3f s "
        "  ckpt-overhead %5.1f s   redo %5.1f s\n",
        interval, c.runtime, c.obtrusiveness, c.overhead_time, c.redo);
    shapes = shapes && c.obtrusiveness < m.obtrusiveness / 10 &&
             c.redo <= interval + 1.0;
  }
  std::printf(
      "\n  Shape check (checkpointing vacates orders of magnitude less "
      "obtrusively; lost work bounded by the interval; quiet overhead grows "
      "as the interval shrinks): %s\n",
      shapes ? "PASS" : "FAIL");
  return 0;
}
