// Ablation A5 — global scheduler policy comparison under a stochastic owner
// workload (§2.0's CPE "decision-making policies").
//
// PVM_opt (9 MB) under MPVM on two hosts whose owners come and go (renewal
// process, exponential idle/busy periods, sometimes reclaiming the whole
// machine).  Policies compared over several seeds:
//   * none            — no scheduler; the job rides out every owner period;
//   * reclaim-only    — vacate a machine when its owner reclaims it;
//   * reclaim + load  — additionally migrate off any host whose runnable
//                       load exceeds a threshold.
#include "bench/bench_util.hpp"

namespace {
using namespace cpe;

enum class Policy { kNone, kReclaim, kReclaimPlusLoad };

double run(Policy policy, std::uint64_t seed) {
  bench::Testbed tb;
  // A third, initially idle machine gives the scheduler somewhere to go.
  os::Host host3(tb.eng, tb.net, os::HostConfig("host3", "HPPA", 1.0));
  tb.vm.add_host(host3);

  mpvm::Mpvm mpvm(tb.vm);
  gs::GsPolicy p;
  p.vacate_on_reclaim = policy != Policy::kNone;
  if (policy == Policy::kReclaimPlusLoad) p.load_threshold = 1.9;
  gs::GlobalScheduler sched(tb.vm, p);
  sched.attach(mpvm);

  opt::PvmOpt app(tb.vm, bench::paper_opt_config(9.0));
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(tb.eng, driver());

  os::StochasticOwner::Params op;
  op.mean_idle = 80.0;
  op.mean_busy = 60.0;
  op.jobs = 2;
  op.reclaim_probability = 0.5;
  os::StochasticOwner owner(tb.eng, {&tb.host1, &tb.host2}, op,
                            sim::Rng(seed));
  if (policy != Policy::kNone)
    owner.set_observer(
        [&](const os::OwnerEvent& ev) { sched.on_owner_event(ev); });
  owner.start(/*until=*/2000.0);
  if (policy == Policy::kReclaimPlusLoad) sched.start_monitoring(2000.0);

  tb.eng.run();
  return r.runtime();
}

double average(Policy policy) {
  double sum = 0;
  constexpr int kSeeds = 5;
  for (std::uint64_t s = 1; s <= kSeeds; ++s) sum += run(policy, s);
  return sum / kSeeds;
}
}  // namespace

int main() {
  bench::print_header(
      "Ablation A5: global scheduler policies under a stochastic owner "
      "workload",
      "PVM_opt 9 MB under MPVM; 2 owned hosts + 1 idle pool host; mean over "
      "5 seeds");

  const double none = average(Policy::kNone);
  const double reclaim = average(Policy::kReclaim);
  const double both = average(Policy::kReclaimPlusLoad);
  std::printf("  %-36s %8.1f s\n", "no scheduling", none);
  std::printf("  %-36s %8.1f s\n", "vacate on reclaim", reclaim);
  std::printf("  %-36s %8.1f s\n", "reclaim + load threshold", both);
  std::printf(
      "\n  Shape check (adaptive policies beat none; load policy helps "
      "further or ties): %s\n",
      (reclaim < none && both <= reclaim * 1.05) ? "PASS" : "FAIL");
  return 0;
}
