// Load-balancing at scale: 1024 hosts, 16384 tasks, churning owners.
//
// The paper's GS (§2.0) polls every host centrally; src/load/ replaces that
// with decentralized MOSIX-style gossip and pluggable placement.  This bench
// measures what each policy actually buys on a worknet two orders larger
// than the paper's testbed:
//
//  * 1024 hosts, 16384 long-running tasks spawned with a deliberate skew
//    (the "hot half" starts with 3x the tasks of the cold half);
//  * owner churn: every 10 s a rotating window of 128 workstations gains an
//    owner running 6 local jobs, and the previous window's owners leave;
//  * one run per policy — none (baseline), threshold (legacy central),
//    best_fit, dest_swap, work_steal — same seed, same churn schedule.
//
// Reported per policy: the steady-state coefficient of variation of the
// true per-host runnable load (sampled every second over the second half of
// the run), migrations performed, and the anti-thrash counters.  The shape
// gate mirrors the acceptance criterion: every non-baseline policy must
// reduce the steady-state CV against no balancing at all, with zero
// hysteresis violations.  Everything lands in BENCH_load.json for CI.
//
// The analytics layer (DESIGN.md §14) adds the convergence view: each
// balancing run tracks the GS's own `gs.load.cv` gauge as a windowed time
// series, and "rebalance convergence" is the earliest window after which
// the EWMA of that CV stays under the limit for the rest of the run.
// Every balancing policy must converge; the per-stage critical-path table
// over all migrations lands in BENCH_analytics.json with the coverage
// gate.  `--slo` runs a small fleet with a deliberately-violated SLO rule
// armed and asserts the flight recorder produces exactly one dump — the
// CI `slo` mode consumes that.
#include "bench/bench_util.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "load/load.hpp"
#include "obs/analytics.hpp"
#include "obs/flight.hpp"
#include "obs/trace_analytics.hpp"

namespace {
using namespace cpe;

constexpr int kHosts = 1024;
constexpr int kTasks = 16384;
constexpr int kChurnWindow = 128;  ///< hosts gaining/losing an owner per beat
constexpr double kHorizon = 120.0;
constexpr double kSteadyFrom = 60.0;  ///< CV window: [kSteadyFrom, kHorizon]
// Rebalance-convergence SLO: the EWMA of the GS's view-based load CV must
// drop under this and stay there.  Measured trajectory: the churn beats
// push the EWMA to a ~0.53 peak near t=60 and every balancing policy pulls
// it back under 0.50 by t~=81 for good; 0.50 sits between that peak and
// the ~0.43 steady state, so the gate measures real convergence rather
// than being satisfied from the first window.
constexpr double kCvEwmaLimit = 0.50;
constexpr double kConvergeBy = 90.0;  ///< s; convergence deadline for gate

struct RunResult {
  double cv = 0;  ///< mean coefficient of variation of true host load
  std::uint64_t migrations = 0;
  std::uint64_t thrash = 0;
  std::uint64_t rejections = 0;
  std::uint64_t decisions = 0;
  double convergence = -1;  ///< s; earliest window after which the EWMA of
                            ///< gs.load.cv stays <= kCvEwmaLimit (-1: never)
};

RunResult run_one(load::PolicyKind kind, std::vector<obs::SpanRecord>& spans) {
  sim::Engine eng;
  net::Network net(eng);
  std::vector<std::unique_ptr<os::Host>> hosts;
  hosts.reserve(kHosts);
  for (int i = 0; i < kHosts; ++i)
    hosts.push_back(std::make_unique<os::Host>(
        eng, net, os::HostConfig("h" + std::to_string(i), "HPPA", 1.0)));
  pvm::PvmSystem vm(eng, net);
  for (auto& h : hosts) vm.add_host(*h);
  mpvm::Mpvm mpvm(vm);

  gs::GsPolicy pol;
  pol.placement = kind;
  pol.poll_interval = 1.0;
  pol.min_residency = 5.0;
  pol.max_rebalance_actions = kHosts / 4;  // action budget scales with fleet
  // At 1024 hosts the fleet has hundreds of disjoint (from, to) lanes; the
  // default 4-stream admission budget (sized for the 64-host testbed) would
  // cap the whole run at ~230 migrations and mute every policy's effect.
  // kHosts/64 = 16 streams: enough parallelism to matter, but not so much
  // that the legacy threshold policy (no pending-shift overlay) herds tasks
  // onto momentarily-cold hosts and ping-pongs.
  pol.max_concurrent_migrations = kHosts / 64;
  pol.placement_seed = 42;
  if (kind == load::PolicyKind::kThreshold ||
      kind == load::PolicyKind::kBestFit)
    pol.load_threshold = 20.0;  // mean is 16: only genuinely hot hosts shed
  gs::GlobalScheduler gs(vm, pol);
  gs.attach(mpvm);
  load::ExchangePolicy xp;
  xp.seed = 42;
  load::LoadExchange exchange(vm, xp);
  gs.attach(exchange, *hosts[0]);

  // Windowed rollups of the GS's own balance view.  The baseline run is
  // deliberately untracked: with placement off the GS never publishes
  // gs.load.cv, and a flat-zero series would fake instant convergence.
  obs::AnalyticsOptions aopt;
  aopt.window = 1.0;
  aopt.ring_windows = 256;  // retains the whole run including the grace
  obs::Analytics an(eng, vm.metrics(), aopt);
  if (kind != load::PolicyKind::kNone) an.track_gauge("gs.load.cv");
  an.start(kHorizon);

  vm.register_program("worker", [](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(1000.0);  // outlives the horizon: placement matters
  });

  // Skewed start, one concurrent spawn batch per host: the hot half gets
  // 24 tasks each, the cold half 8 (16384 total, mean 16).
  auto spawn_batch = [&vm, &hosts](int hi, int n) -> sim::Proc {
    co_await vm.spawn("worker", n, hosts[static_cast<std::size_t>(hi)]->name());
  };
  for (int i = 0; i < kHosts; ++i)
    sim::spawn(eng, spawn_batch(i, i < kHosts / 2 ? 24 : 8));

  // Owner churn: at t = 10k a window of kChurnWindow hosts gains a busy
  // owner (6 local jobs) and the previous window's owners log off again.
  for (int k = 1; k * 10.0 < kHorizon; ++k) {
    eng.schedule_at(k * 10.0, [&hosts, k] {
      for (int j = 0; j < kChurnWindow; ++j) {
        const int prev = (kHosts / 2 + (k - 1) * kChurnWindow + j) % kHosts;
        const int cur = (kHosts / 2 + k * kChurnWindow + j) % kHosts;
        hosts[static_cast<std::size_t>(prev)]->cpu().set_external_jobs(0);
        hosts[static_cast<std::size_t>(cur)]->cpu().set_external_jobs(6);
      }
    });
  }

  // Steady-state CV of the *true* runnable load (not the gossiped index —
  // the metric must not inherit the estimator's bias), one sample per
  // second over the second half of the run.
  double cv_sum = 0;
  int cv_samples = 0;
  for (double t = kSteadyFrom; t < kHorizon; t += 1.0) {
    eng.schedule_at(t, [&hosts, &cv_sum, &cv_samples] {
      double sum = 0, sq = 0;
      for (const auto& h : hosts) {
        const double l = h->cpu().load();
        sum += l;
        sq += l * l;
      }
      const double mean = sum / kHosts;
      if (mean <= 0) return;
      const double var = sq / kHosts - mean * mean;
      cv_sum += std::sqrt(var > 0 ? var : 0) / mean;
      ++cv_samples;
    });
  }

  exchange.start(kHorizon);
  gs.start_monitoring(kHorizon);
  // Grace past the horizon: a migration ordered just before the cutoff
  // needs its flush/transfer/restart (or rollback) to resolve, or its
  // gs.rebalance span dangles and the trace audit rightly complains.
  eng.run_until(kHorizon + 45.0);

  RunResult out;
  out.cv = cv_samples > 0 ? cv_sum / cv_samples : 0;
  for (const mpvm::MigrationStats& m : mpvm.history())
    if (m.ok) ++out.migrations;
  out.thrash = gs.placement().thrash_violations();
  out.rejections = gs.placement().residency_rejections();
  out.decisions = gs.journal().size();
  if (const obs::TimeSeries* s = an.find("gs.load.cv")) {
    if (std::getenv("CPE_DEBUG_CV")) {
      for (std::size_t i = 0; i < s->size(); ++i)
        std::printf("DBG cv t=%.0f value=%.4f ewma=%.4f\n", s->window(i).t,
                    s->window(i).value, s->window(i).ewma);
    }
    // Convergence = close time of the first window from which the EWMA
    // never climbs back over the limit.  Scan once for the last breach.
    std::size_t first_held = 0;
    for (std::size_t i = 0; i < s->size(); ++i)
      if (s->window(i).ewma > kCvEwmaLimit) first_held = i + 1;
    if (first_held < s->size()) out.convergence = s->window(first_held).t;
  }
  bench::collect_spans(vm, spans);
  return out;
}

/// `--slo` mode: a small fleet with one deliberately-impossible SLO rule
/// armed next to one that must hold, proving the violation -> exactly-one
/// flight-dump path end to end.  CI's `slo` mode runs this and asserts a
/// single flight_*.json landed in the working directory.
int run_slo() {
  constexpr int kSloHosts = 32;
  constexpr double kSloHorizon = 30.0;
  bench::print_header(
      "SLO drill: 32 hosts, armed rules, flight recorder",
      "observability extension — a deliberately-violated freeze-window SLO "
      "must produce exactly one self-contained flight dump (DESIGN.md §14)");

  sim::Engine eng;
  net::Network net(eng);
  std::vector<std::unique_ptr<os::Host>> hosts;
  hosts.reserve(kSloHosts);
  for (int i = 0; i < kSloHosts; ++i)
    hosts.push_back(std::make_unique<os::Host>(
        eng, net, os::HostConfig("h" + std::to_string(i), "HPPA", 1.0)));
  pvm::PvmSystem vm(eng, net);
  for (auto& h : hosts) vm.add_host(*h);
  mpvm::Mpvm mpvm(vm);

  gs::GsPolicy pol;
  pol.placement = load::PolicyKind::kBestFit;
  pol.poll_interval = 1.0;
  pol.min_residency = 5.0;
  pol.load_threshold = 20.0;
  pol.max_concurrent_migrations = 4;
  pol.placement_seed = 42;
  gs::GlobalScheduler gs(vm, pol);
  gs.attach(mpvm);
  load::ExchangePolicy xp;
  xp.seed = 42;
  load::LoadExchange exchange(vm, xp);
  gs.attach(exchange, *hosts[0]);

  vm.register_program("worker", [](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(1000.0);
  });
  auto spawn_batch = [&vm, &hosts](int hi, int n) -> sim::Proc {
    co_await vm.spawn("worker", n, hosts[static_cast<std::size_t>(hi)]->name());
  };
  // Same skew as the big run: the hot half must shed through the threshold.
  for (int i = 0; i < kSloHosts; ++i)
    sim::spawn(eng, spawn_batch(i, i < kSloHosts / 2 ? 24 : 8));

  obs::AnalyticsOptions aopt;
  aopt.window = 1.0;
  obs::Analytics an(eng, vm.metrics(), aopt);
  // Armed to fail: "no migration ever freezes a task" — the first
  // rebalance breaks it, which is the point of the drill.
  const obs::SloRule& bad = an.add_rule("p99(mpvm.freeze_window) < 1e-9");
  // Armed to hold: the admission cap.
  const obs::SloRule& good =
      an.add_rule("value(mpvm.migrations.inflight) <= 4");
  obs::FlightOptions fo;  // cwd, max_dumps = 1: exactly one dump, ever
  obs::FlightRecorder rec(an, &vm.spans(), fo);
  an.start(kSloHorizon);

  exchange.start(kSloHorizon);
  gs.start_monitoring(kSloHorizon);
  eng.run_until(kSloHorizon + 45.0);

  std::uint64_t bad_fires = 0, good_fires = 0;
  std::printf("  violation timeline (%zu total):\n", an.violations().size());
  for (const obs::SloViolation& v : an.violations()) {
    (v.rule == &bad ? bad_fires : good_fires)++;
    if (bad_fires + good_fires <= 8)
      std::printf("    t=%6.1f  %s  observed %.6g (streak %d)\n", v.t,
                  v.rule->text().c_str(), v.observed, v.streak);
  }
  std::printf("  flight dumps: %zu written, %zu suppressed\n", rec.dumps(),
              rec.suppressed());
  for (const std::string& f : rec.files())
    std::printf("    %s\n", f.c_str());

  const bool ok = bad_fires > 0 && good_fires == 0 && rec.dumps() == 1 &&
                  rec.files().size() == 1;
  std::printf("\n  Shape check (violated rule fired %llu times, holding "
              "rule 0 times, exactly one flight dump): %s\n",
              static_cast<unsigned long long>(bad_fires),
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--slo") == 0) return run_slo();
  bench::print_header(
      "Load balancing at scale: 1024 hosts x 16384 tasks, churning owners",
      "scalability extension — the paper's central GS poll (§2.0) replaced "
      "by decentralized load sensing + gossip (MOSIX-style partial maps) "
      "and pluggable placement policies");

  const load::PolicyKind kinds[] = {
      load::PolicyKind::kNone, load::PolicyKind::kThreshold,
      load::PolicyKind::kBestFit, load::PolicyKind::kDestinationSwap,
      load::PolicyKind::kWorkSteal};

  std::printf("  %-12s %-10s %-12s %-8s %-12s %-10s %s\n", "policy", "cv",
              "migrations", "thrash", "rejections", "decisions", "conv(s)");
  std::vector<obs::SpanRecord> spans;
  std::vector<RunResult> results;
  double baseline_cv = 0;
  for (load::PolicyKind k : kinds) {
    const RunResult r = run_one(k, spans);
    if (k == load::PolicyKind::kNone) baseline_cv = r.cv;
    std::printf("  %-12s %-10.4f %-12llu %-8llu %-12llu %-10llu %.1f\n",
                load::to_string(k), r.cv,
                static_cast<unsigned long long>(r.migrations),
                static_cast<unsigned long long>(r.thrash),
                static_cast<unsigned long long>(r.rejections),
                static_cast<unsigned long long>(r.decisions), r.convergence);
    results.push_back(r);
  }

  // Acceptance gate: every balancing policy beats no balancing on
  // steady-state spread, and the hysteresis never tripped.
  bool shapes = true;
  bool converged = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (kinds[i] == load::PolicyKind::kNone) continue;
    shapes = shapes && results[i].cv < baseline_cv;
    shapes = shapes && results[i].thrash == 0;
    shapes = shapes && results[i].migrations > 0;
    // The EWMA of the GS's own balance view settled under the limit and
    // stayed there — rebalancing converged instead of oscillating.
    converged = converged && results[i].convergence >= 0 &&
                results[i].convergence <= kConvergeBy;
  }
  shapes = shapes && converged;
  std::printf(
      "\n  Shape check (every policy reduces steady-state CV vs baseline "
      "%.4f, zero hysteresis violations, ewma(gs.load.cv) <= %.2f held from "
      "<= %.0f s): %s\n",
      baseline_cv, kCvEwmaLimit, kConvergeBy, shapes ? "PASS" : "FAIL");

  {
    std::ofstream f("BENCH_load.json", std::ios::trunc);
    f << "{\n"
      << "  \"bench\": \"load_scale\",\n"
      << "  \"hosts\": " << kHosts << ",\n"
      << "  \"tasks\": " << kTasks << ",\n"
      << "  \"horizon\": " << kHorizon << ",\n"
      << "  \"steady_window\": [" << kSteadyFrom << ", " << kHorizon
      << "],\n"
      << "  \"policies\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      f << "    {\"policy\": \"" << load::to_string(kinds[i])
        << "\", \"cv\": " << r.cv << ", \"migrations\": " << r.migrations
        << ", \"thrash\": " << r.thrash
        << ", \"residency_rejections\": " << r.rejections
        << ", \"decisions\": " << r.decisions
        << ", \"convergence_s\": " << r.convergence << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("  results: wrote BENCH_load.json\n");
  }

  // Stage attribution over every rebalance migration from all five runs.
  obs::TraceAnalytics ta(spans);
  const bool coverage_ok = ta.migrations() > 0 && ta.coverage_min() >= 0.95;
  std::printf(
      "  analytics: %llu migrations, coverage min %.3f (>= 0.95: %s), "
      "%llu traces skipped\n",
      static_cast<unsigned long long>(ta.migrations()), ta.coverage_min(),
      coverage_ok ? "PASS" : "FAIL",
      static_cast<unsigned long long>(ta.traces_skipped()));
  {
    std::ofstream f("BENCH_analytics.json", std::ios::trunc);
    std::ostringstream extra;
    extra << "\"slo\": {\"rules\": 0, \"violations\": 0, \"flights\": 0},\n"
          << "  \"convergence\": [";
    bool first = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (kinds[i] == load::PolicyKind::kNone) continue;
      extra << (first ? "" : ", ") << "{\"policy\": \""
            << load::to_string(kinds[i])
            << "\", \"converged_s\": " << results[i].convergence << "}";
      first = false;
    }
    extra << "],\n"
          << "  \"gates\": {\"coverage_limit\": 0.95, \"cv_ewma_limit\": "
          << kCvEwmaLimit << ", \"converge_by_s\": " << kConvergeBy
          << ", \"pass\": "
          << (coverage_ok && converged ? "true" : "false") << "}";
    ta.write_json(f, "load_scale", extra.str());
    std::printf("  analytics: wrote BENCH_analytics.json\n");
  }

  bench::write_trace_json(spans, "BENCH_load_trace.json");
  const bool audit_ok = bench::audit_spans(spans);
  return audit_ok && shapes && coverage_ok ? 0 : 1;
}
