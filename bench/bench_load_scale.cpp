// Load-balancing at scale: 1024 hosts, 16384 tasks, churning owners.
//
// The paper's GS (§2.0) polls every host centrally; src/load/ replaces that
// with decentralized MOSIX-style gossip and pluggable placement.  This bench
// measures what each policy actually buys on a worknet two orders larger
// than the paper's testbed:
//
//  * 1024 hosts, 16384 long-running tasks spawned with a deliberate skew
//    (the "hot half" starts with 3x the tasks of the cold half);
//  * owner churn: every 10 s a rotating window of 128 workstations gains an
//    owner running 6 local jobs, and the previous window's owners leave;
//  * one run per policy — none (baseline), threshold (legacy central),
//    best_fit, dest_swap, work_steal — same seed, same churn schedule.
//
// Reported per policy: the steady-state coefficient of variation of the
// true per-host runnable load (sampled every second over the second half of
// the run), migrations performed, and the anti-thrash counters.  The shape
// gate mirrors the acceptance criterion: every non-baseline policy must
// reduce the steady-state CV against no balancing at all, with zero
// hysteresis violations.  Everything lands in BENCH_load.json for CI.
#include "bench/bench_util.hpp"

#include <cmath>
#include <vector>

#include "load/load.hpp"

namespace {
using namespace cpe;

constexpr int kHosts = 1024;
constexpr int kTasks = 16384;
constexpr int kChurnWindow = 128;  ///< hosts gaining/losing an owner per beat
constexpr double kHorizon = 120.0;
constexpr double kSteadyFrom = 60.0;  ///< CV window: [kSteadyFrom, kHorizon]

struct RunResult {
  double cv = 0;  ///< mean coefficient of variation of true host load
  std::uint64_t migrations = 0;
  std::uint64_t thrash = 0;
  std::uint64_t rejections = 0;
  std::uint64_t decisions = 0;
};

RunResult run_one(load::PolicyKind kind, std::vector<obs::SpanRecord>& spans) {
  sim::Engine eng;
  net::Network net(eng);
  std::vector<std::unique_ptr<os::Host>> hosts;
  hosts.reserve(kHosts);
  for (int i = 0; i < kHosts; ++i)
    hosts.push_back(std::make_unique<os::Host>(
        eng, net, os::HostConfig("h" + std::to_string(i), "HPPA", 1.0)));
  pvm::PvmSystem vm(eng, net);
  for (auto& h : hosts) vm.add_host(*h);
  mpvm::Mpvm mpvm(vm);

  gs::GsPolicy pol;
  pol.placement = kind;
  pol.poll_interval = 1.0;
  pol.min_residency = 5.0;
  pol.max_rebalance_actions = kHosts / 4;  // action budget scales with fleet
  // At 1024 hosts the fleet has hundreds of disjoint (from, to) lanes; the
  // default 4-stream admission budget (sized for the 64-host testbed) would
  // cap the whole run at ~230 migrations and mute every policy's effect.
  // kHosts/64 = 16 streams: enough parallelism to matter, but not so much
  // that the legacy threshold policy (no pending-shift overlay) herds tasks
  // onto momentarily-cold hosts and ping-pongs.
  pol.max_concurrent_migrations = kHosts / 64;
  pol.placement_seed = 42;
  if (kind == load::PolicyKind::kThreshold ||
      kind == load::PolicyKind::kBestFit)
    pol.load_threshold = 20.0;  // mean is 16: only genuinely hot hosts shed
  gs::GlobalScheduler gs(vm, pol);
  gs.attach(mpvm);
  load::ExchangePolicy xp;
  xp.seed = 42;
  load::LoadExchange exchange(vm, xp);
  gs.attach(exchange, *hosts[0]);

  vm.register_program("worker", [](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(1000.0);  // outlives the horizon: placement matters
  });

  // Skewed start, one concurrent spawn batch per host: the hot half gets
  // 24 tasks each, the cold half 8 (16384 total, mean 16).
  auto spawn_batch = [&vm, &hosts](int hi, int n) -> sim::Proc {
    co_await vm.spawn("worker", n, hosts[static_cast<std::size_t>(hi)]->name());
  };
  for (int i = 0; i < kHosts; ++i)
    sim::spawn(eng, spawn_batch(i, i < kHosts / 2 ? 24 : 8));

  // Owner churn: at t = 10k a window of kChurnWindow hosts gains a busy
  // owner (6 local jobs) and the previous window's owners log off again.
  for (int k = 1; k * 10.0 < kHorizon; ++k) {
    eng.schedule_at(k * 10.0, [&hosts, k] {
      for (int j = 0; j < kChurnWindow; ++j) {
        const int prev = (kHosts / 2 + (k - 1) * kChurnWindow + j) % kHosts;
        const int cur = (kHosts / 2 + k * kChurnWindow + j) % kHosts;
        hosts[static_cast<std::size_t>(prev)]->cpu().set_external_jobs(0);
        hosts[static_cast<std::size_t>(cur)]->cpu().set_external_jobs(6);
      }
    });
  }

  // Steady-state CV of the *true* runnable load (not the gossiped index —
  // the metric must not inherit the estimator's bias), one sample per
  // second over the second half of the run.
  double cv_sum = 0;
  int cv_samples = 0;
  for (double t = kSteadyFrom; t < kHorizon; t += 1.0) {
    eng.schedule_at(t, [&hosts, &cv_sum, &cv_samples] {
      double sum = 0, sq = 0;
      for (const auto& h : hosts) {
        const double l = h->cpu().load();
        sum += l;
        sq += l * l;
      }
      const double mean = sum / kHosts;
      if (mean <= 0) return;
      const double var = sq / kHosts - mean * mean;
      cv_sum += std::sqrt(var > 0 ? var : 0) / mean;
      ++cv_samples;
    });
  }

  exchange.start(kHorizon);
  gs.start_monitoring(kHorizon);
  // Grace past the horizon: a migration ordered just before the cutoff
  // needs its flush/transfer/restart (or rollback) to resolve, or its
  // gs.rebalance span dangles and the trace audit rightly complains.
  eng.run_until(kHorizon + 45.0);

  RunResult out;
  out.cv = cv_samples > 0 ? cv_sum / cv_samples : 0;
  for (const mpvm::MigrationStats& m : mpvm.history())
    if (m.ok) ++out.migrations;
  out.thrash = gs.placement().thrash_violations();
  out.rejections = gs.placement().residency_rejections();
  out.decisions = gs.journal().size();
  bench::collect_spans(vm, spans);
  return out;
}
}  // namespace

int main() {
  bench::print_header(
      "Load balancing at scale: 1024 hosts x 16384 tasks, churning owners",
      "scalability extension — the paper's central GS poll (§2.0) replaced "
      "by decentralized load sensing + gossip (MOSIX-style partial maps) "
      "and pluggable placement policies");

  const load::PolicyKind kinds[] = {
      load::PolicyKind::kNone, load::PolicyKind::kThreshold,
      load::PolicyKind::kBestFit, load::PolicyKind::kDestinationSwap,
      load::PolicyKind::kWorkSteal};

  std::printf("  %-12s %-10s %-12s %-8s %-12s %s\n", "policy", "cv",
              "migrations", "thrash", "rejections", "decisions");
  std::vector<obs::SpanRecord> spans;
  std::vector<RunResult> results;
  double baseline_cv = 0;
  for (load::PolicyKind k : kinds) {
    const RunResult r = run_one(k, spans);
    if (k == load::PolicyKind::kNone) baseline_cv = r.cv;
    std::printf("  %-12s %-10.4f %-12llu %-8llu %-12llu %llu\n",
                load::to_string(k), r.cv,
                static_cast<unsigned long long>(r.migrations),
                static_cast<unsigned long long>(r.thrash),
                static_cast<unsigned long long>(r.rejections),
                static_cast<unsigned long long>(r.decisions));
    results.push_back(r);
  }

  // Acceptance gate: every balancing policy beats no balancing on
  // steady-state spread, and the hysteresis never tripped.
  bool shapes = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (kinds[i] == load::PolicyKind::kNone) continue;
    shapes = shapes && results[i].cv < baseline_cv;
    shapes = shapes && results[i].thrash == 0;
    shapes = shapes && results[i].migrations > 0;
  }
  std::printf(
      "\n  Shape check (every policy reduces steady-state CV vs baseline "
      "%.4f, zero hysteresis violations): %s\n",
      baseline_cv, shapes ? "PASS" : "FAIL");

  {
    std::ofstream f("BENCH_load.json", std::ios::trunc);
    f << "{\n"
      << "  \"bench\": \"load_scale\",\n"
      << "  \"hosts\": " << kHosts << ",\n"
      << "  \"tasks\": " << kTasks << ",\n"
      << "  \"horizon\": " << kHorizon << ",\n"
      << "  \"steady_window\": [" << kSteadyFrom << ", " << kHorizon
      << "],\n"
      << "  \"policies\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      f << "    {\"policy\": \"" << load::to_string(kinds[i])
        << "\", \"cv\": " << r.cv << ", \"migrations\": " << r.migrations
        << ", \"thrash\": " << r.thrash
        << ", \"residency_rejections\": " << r.rejections
        << ", \"decisions\": " << r.decisions << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("  results: wrote BENCH_load.json\n");
  }

  bench::write_trace_json(spans, "BENCH_load_trace.json");
  const bool audit_ok = bench::audit_spans(spans);
  return audit_ok && shapes ? 0 : 1;
}
