// Table 3 — PVM vs. UPVM quiet-case runtime for SPMD_opt at 0.6 MB
// (§4.2.1).
//
// The paper's surprise: UPVM is slightly *faster* (4.75 s vs 4.92 s) despite
// its extra remote-message header, because the master and the co-located
// slave exchange buffers by pointer hand-off instead of copying through the
// pvmd.  We run the process-based PVM_opt against the ULP-based SPMD_opt
// with identical placement (master + slave1 on host1, slave2 on host2).
#include "bench/bench_util.hpp"

namespace {
using namespace cpe;

double run_pvm(std::vector<obs::SpanRecord>& spans) {
  bench::Testbed tb;
  opt::PvmOpt app(tb.vm, bench::paper_opt_config(0.6));
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(tb.eng, driver());
  tb.eng.run();
  bench::collect_spans(tb.vm, spans);
  return r.runtime();
}

double run_upvm(std::vector<obs::SpanRecord>& spans) {
  bench::Testbed tb;
  upvm::Upvm upvm(tb.vm);
  sim::spawn(tb.eng, upvm.start());
  tb.eng.run();
  opt::SpmdOpt app(upvm, bench::paper_opt_config(0.6));
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc {
    r = co_await app.run();
    upvm.shutdown();
  };
  sim::spawn(tb.eng, driver());
  tb.eng.run();
  bench::collect_spans(tb.vm, spans);
  return r.runtime();
}
}  // namespace

int main() {
  bench::print_header(
      "Table 3: PVM vs UPVM quiet-case runtime (SPMD_opt, 0.6 MB)",
      "PVM 4.92 s, UPVM 4.75 s — \"application performance in UPVM is "
      "better because the local communication ... is optimized\"");

  std::vector<obs::SpanRecord> spans;
  const double pvm = run_pvm(spans);
  const double upvm = run_upvm(spans);
  cpe::bench::print_row_check("SPMD opt on PVM (processes)", 4.92, pvm);
  cpe::bench::print_row_check("SPMD opt on UPVM (ULPs)", 4.75, upvm);
  std::printf("\n  UPVM advantage: %.3f s (paper: 0.17 s)\n", pvm - upvm);
  const bool shape_ok = upvm < pvm;
  std::printf("  Shape check (UPVM faster than PVM): %s\n",
              shape_ok ? "PASS" : "FAIL");
  bench::write_trace_json(spans, "BENCH_trace.json");
  const bool audit_ok = bench::audit_spans(spans);
  return audit_ok && shape_ok ? 0 : 1;
}
