// Figure 4 — the finite-state-machine program structure of ADMopt (§2.3).
//
// The paper's figure shows the coarse-level FSM every ADM process executes:
// computing, redistribution, inactivity, completion.  This bench drives
// ADMopt through the full cycle — withdraw (owner reclaims host1), rejoin
// (owner leaves again), completion — and prints every state transition the
// slaves actually made.
#include "bench/bench_util.hpp"

int main() {
  using namespace cpe;
  bench::print_header(
      "Figure 4: ADM finite-state-machine trace",
      "states: computing / redistributing / inactive / done; paths for "
      "normal computing, migration + redistribution, and inactivity");

  bench::Testbed tb;
  opt::AdmOptConfig cfg;
  cfg.opt = bench::paper_opt_config(0.6);
  cfg.opt.iterations = 12;
  opt::AdmOpt app(tb.vm, cfg);
  opt::OptResult result;
  auto driver = [&]() -> sim::Proc { result = co_await app.run(); };
  sim::spawn(tb.eng, driver());
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(tb.eng, 0.5);
    app.post_event(0, adm::AdmEventKind::kWithdraw);  // owner reclaims host1
    co_await sim::Delay(tb.eng, 2.5);
    app.post_event(0, adm::AdmEventKind::kRejoin);    // owner leaves again
  };
  sim::spawn(tb.eng, gs());
  tb.eng.run();

  std::printf("  FSM transitions (category 'adm.fsm'):\n");
  for (const auto& r : tb.vm.trace().by_category("adm.fsm"))
    std::printf("    t=%9.6f  %s\n", r.t, r.text.c_str());

  std::printf("\n  Redistribution events:\n");
  for (const auto& s : app.redistributions())
    std::printf("    slave %d: %s, event->resume %.3f s\n", s.slave,
                adm::to_string(s.kind), s.migration_time());
  std::printf(
      "\n  Run completed: %d iterations, data conserved: %s\n",
      result.iterations_done,
      app.final_data_checksum() == result.data_checksum ? "yes" : "NO (bug!)");
  return 0;
}
