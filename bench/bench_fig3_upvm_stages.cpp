// Figure 3 — the stages of a UPVM ULP migration (§2.2).
//
// One slave ULP of SPMD_opt (0.6 MB run) migrates; the bench prints the
// timeline of the four stages the paper's figure shows: migration event +
// context capture, flush (with immediate redirection of future messages),
// state off-load via pvm_pkbyte/pvm_send, and accept/re-queue at the
// destination.
#include "bench/bench_util.hpp"

int main() {
  using namespace cpe;
  bench::print_header(
      "Figure 3: UPVM ULP migration stage timeline",
      "stages: migration event -> flush (redirect) -> state transfer via "
      "pk/send -> restart in scheduler queue");

  bench::Testbed tb;
  upvm::Upvm upvm(tb.vm);
  sim::spawn(tb.eng, upvm.start());
  tb.eng.run();
  opt::SpmdOpt app(upvm, bench::paper_opt_config(0.6));
  auto driver = [&]() -> sim::Proc {
    (void)co_await app.run();
    upvm.shutdown();
  };
  sim::spawn(tb.eng, driver());

  upvm::UlpMigrationStats stats;
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(tb.eng, 0.5);
    stats = co_await upvm.migrate_ulp(opt::SpmdOpt::slave_inst(1), tb.host2);
  };
  sim::spawn(tb.eng, gs());
  tb.eng.run();

  const double t0 = stats.event_time;
  std::printf("  t=%7.3f s  stage 1: migration event at the process on %s\n",
              0.0, stats.from_host.c_str());
  std::printf(
      "  t=%7.3f s  ....... ULP interrupted, register context captured\n",
      stats.captured_time - t0);
  std::printf(
      "  t=%7.3f s  stage 2: flush acked by every process; future messages "
      "now sent directly to %s (no sender blocking)\n",
      stats.flush_done - t0, stats.to_host.c_str());
  std::printf(
      "  t=%7.3f s  stage 3: state (%zu bytes incl. unreceived messages) "
      "off-loaded via pvm_pkbyte/pvm_send  <- obtrusiveness %.3f s\n",
      stats.offload_done - t0, stats.state_bytes, stats.obtrusiveness());
  std::printf(
      "  t=%7.3f s  stage 4: accepted and placed in the scheduler queue on "
      "%s  <- migration cost %.3f s\n",
      stats.accept_done - t0, stats.to_host.c_str(), stats.migration_time());

  std::printf("\n  Protocol trace (category 'upvm'):\n");
  for (const auto& r : tb.vm.trace().by_category("upvm"))
    std::printf("    t=%9.6f  %s\n", r.t, r.text.c_str());
  return 0;
}
