// Ablation A1 — the point of the whole paper (§1): when an owner reclaims a
// workstation mid-run, what does adaptivity buy?
//
// Scenario: Opt with 3 slaves on 3 workstations (9 MB set).  At t=30 s the
// owner of host2 comes back with two heavyweight jobs and stays for the rest
// of the run.  Compared:
//   * no migration — host2's slave runs at 1/3 speed and every iteration
//     waits for it (the paper's "entire parallel application can slow"
//     observation);
//   * MPVM + GS    — host2's slave process migrates to the least-loaded
//     peer, which then time-shares two slaves at full machine speed;
//   * ADM + GS     — host2's slave withdraws; its *data* is repartitioned
//     over the two remaining slaves (finer-grained, so slightly better
//     balance than doubling up whole processes).
#include "bench/bench_util.hpp"

namespace {
using namespace cpe;

constexpr double kOwnerArrives = 30.0;
constexpr int kOwnerJobs = 2;

struct Worknet3 {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  os::Host host3{eng, net, os::HostConfig("host3", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};
  Worknet3() {
    vm.add_host(host1);
    vm.add_host(host2);
    vm.add_host(host3);
  }
};

opt::OptConfig three_slave_config() {
  opt::OptConfig cfg = bench::paper_opt_config(9.0);
  cfg.nslaves = 3;
  cfg.slave_hosts = {"host1", "host2", "host3"};
  return cfg;
}

double run_none() {
  Worknet3 w;
  opt::PvmOpt app(w.vm, three_slave_config());
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(w.eng, driver());
  os::ScriptedOwner owner(
      w.eng, {os::OwnerEvent(kOwnerArrives, w.host2, os::OwnerAction::kReclaim,
                             kOwnerJobs)});
  owner.start();
  w.eng.run();
  return r.runtime();
}

double run_mpvm() {
  Worknet3 w;
  mpvm::Mpvm mpvm(w.vm);
  gs::GlobalScheduler sched(w.vm);
  sched.attach(mpvm);
  opt::PvmOpt app(w.vm, three_slave_config());
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(w.eng, driver());
  os::ScriptedOwner owner(
      w.eng, {os::OwnerEvent(kOwnerArrives, w.host2, os::OwnerAction::kReclaim,
                             kOwnerJobs)});
  owner.set_observer(
      [&](const os::OwnerEvent& ev) { sched.on_owner_event(ev); });
  owner.start();
  w.eng.run();
  return r.runtime();
}

double run_adm() {
  Worknet3 w;
  opt::AdmOptConfig cfg;
  cfg.opt = three_slave_config();
  opt::AdmOpt app(w.vm, cfg);
  gs::GlobalScheduler sched(w.vm);
  sched.attach(app);
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(w.eng, driver());
  os::ScriptedOwner owner(
      w.eng, {os::OwnerEvent(kOwnerArrives, w.host2, os::OwnerAction::kReclaim,
                             kOwnerJobs)});
  owner.set_observer(
      [&](const os::OwnerEvent& ev) { sched.on_owner_event(ev); });
  owner.start();
  w.eng.run();
  return r.runtime();
}
}  // namespace

int main() {
  bench::print_header(
      "Ablation A1: adaptivity win under owner reclamation",
      "§1 motivation — \"an entire parallel application can slow because "
      "one of its processes is executing on a heavily loaded workstation\"");

  const double none = run_none();
  const double with_mpvm = run_mpvm();
  const double with_adm = run_adm();
  std::printf(
      "  Opt, 9 MB, 3 slaves on 3 hosts; owner reclaims host2 at t=%.0f s "
      "with %d jobs\n\n",
      kOwnerArrives, kOwnerJobs);
  std::printf("  %-40s %8.1f s\n", "no migration (stock PVM)", none);
  std::printf("  %-40s %8.1f s\n", "MPVM + global scheduler", with_mpvm);
  std::printf("  %-40s %8.1f s\n",
              "ADM + global scheduler (data withdraw)", with_adm);
  std::printf(
      "\n  Shape check (both adaptive systems beat no-migration; ADM's "
      "finer granularity beats doubling processes): %s\n",
      (with_mpvm < none && with_adm < none && with_adm < with_mpvm)
          ? "PASS"
          : "FAIL");
  return 0;
}
