// Adversarial-network goodput (DESIGN.md §7).
//
// The exactly-once hardening is not free: CRC-checked frames that arrive
// flipped are dropped and retransmitted, and duplicated frames burn wire
// time the application never sees.  This bench prices that tax.  Four
// sender/receiver pairs stream fixed-size messages across the paper's
// 10 Mb/s Ethernet, once on a clean fabric and once per adversarial
// profile; goodput is application payload bytes over the stream's virtual
// wall-clock, so retransmission and duplication overhead land squarely in
// the denominator.
//
// Acceptance gate, straight from the issue: under 1% payload corruption
// *plus* duplication the delivered goodput must stay at or above 0.6x the
// clean-fabric goodput — the defenses degrade throughput gracefully, they
// do not collapse it.  Every run must also deliver every message exactly
// once, in order, unscathed: a lost or garbled stream is a hard failure no
// matter how fast it went.
//
// Results land in BENCH_adversarial.json (one entry per scenario with the
// per-axis injection counters) for ci/check.sh bench to validate.
#include "bench/bench_util.hpp"

#include <string>
#include <vector>

namespace {
using namespace cpe;

constexpr int kPairs = 4;
constexpr int kMsgs = 80;          // messages per pair
constexpr int kDoubles = 1'250;    // 10 kB of payload per message
constexpr double kStart = 2.0;     // senders hold until everyone enrolled
constexpr double kHorizon = 600.0;
constexpr std::uint64_t kSeed = 4242;

struct RunResult {
  std::string scenario;
  double goodput_bps = 0;   ///< app payload bits / stream virtual seconds
  double elapsed_s = 0;     ///< first send -> last delivery
  int delivered = 0;        ///< messages that reached an application recv
  int garbled = 0;          ///< payloads that failed the app-level pattern
  std::uint64_t duplicates_injected = 0;
  std::uint64_t reorders_injected = 0;
  std::uint64_t corrupt_injected = 0;
  std::uint64_t corrupt_dropped = 0;
  std::uint64_t retransmits = 0;
};

RunResult run_one(const std::string& scenario, net::AdversaryParams adv) {
  sim::Engine eng;
  net::Network net(eng, net::EthernetParams{}, net::DatagramParams{}, kSeed);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);

  RunResult out;
  out.scenario = scenario;
  double last_delivery = kStart;
  // Receivers live on host2, senders on host1: every message crosses the
  // (hostile) wire.  Payloads carry a per-message pattern so a corrupt
  // frame that slipped past the CRC would be caught here.
  vm.register_program("rx", [&](pvm::Task& t) -> sim::Co<void> {
    for (int i = 0; i < kMsgs; ++i) {
      co_await t.recv(pvm::kAny, 9);
      std::vector<double> v(kDoubles);
      t.rbuf().upk_double(v);
      ++out.delivered;
      for (double x : v)
        if (x != static_cast<double>(i)) {
          ++out.garbled;
          break;
        }
      last_delivery = eng.now();
    }
  });
  vm.register_program("tx", [&](pvm::Task& t) -> sim::Co<void> {
    const std::uint32_t inst = t.tid().task_num();
    const pvm::Tid peer = pvm::Tid::make(1, inst);  // rx spawned first
    co_await sim::Delay(eng, kStart - eng.now());
    for (int i = 0; i < kMsgs; ++i) {
      t.initsend().pk_double(
          std::vector<double>(kDoubles, static_cast<double>(i)));
      co_await t.send(peer, 9);
    }
  });
  // Arm after the spawn RPCs are done but before the first payload frame.
  eng.schedule_at(kStart - 0.1, [&net, adv] { net.set_adversary(adv); });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("rx", kPairs, "host2");
    co_await vm.spawn("tx", kPairs, "host1");
  };
  sim::spawn(eng, driver());
  eng.run_until(kHorizon);

  out.elapsed_s = last_delivery - kStart;
  const double payload_bits =
      static_cast<double>(out.delivered) * kDoubles * sizeof(double) * 8;
  out.goodput_bps = out.elapsed_s > 0 ? payload_bits / out.elapsed_s : 0;
  const net::DatagramService& dg = net.datagrams();
  out.duplicates_injected = dg.duplicates_injected();
  out.reorders_injected = dg.reorders_injected();
  out.corrupt_injected = dg.corrupt_injected();
  out.corrupt_dropped = dg.corrupt_dropped();
  out.retransmits = dg.fragments_retransmitted();
  return out;
}

void print_row(const RunResult& r) {
  std::printf("  %-18s %-12.3f %-10.2f %-6d %-8d %-8llu %-8llu %llu\n",
              r.scenario.c_str(), r.goodput_bps / 1e6, r.elapsed_s,
              r.delivered, r.garbled,
              static_cast<unsigned long long>(r.duplicates_injected),
              static_cast<unsigned long long>(r.corrupt_injected),
              static_cast<unsigned long long>(r.retransmits));
}

void json_row(std::ofstream& f, const RunResult& r, bool last) {
  f << "    {\"scenario\": \"" << r.scenario << "\""
    << ", \"goodput_bps\": " << r.goodput_bps
    << ", \"elapsed_s\": " << r.elapsed_s
    << ", \"messages\": " << r.delivered
    << ", \"garbled\": " << r.garbled
    << ", \"duplicates_injected\": " << r.duplicates_injected
    << ", \"reorders_injected\": " << r.reorders_injected
    << ", \"corrupt_injected\": " << r.corrupt_injected
    << ", \"corrupt_dropped\": " << r.corrupt_dropped
    << ", \"retransmits\": " << r.retransmits << "}" << (last ? "" : ",")
    << "\n";
}
}  // namespace

int main() {
  bench::print_header(
      "Adversarial-network goodput: streams under duplication + corruption",
      "robustness extension — the end-to-end exactly-once defenses "
      "(CRC-32 frames, per-sender sequence windows, DESIGN.md §7) priced "
      "against a clean fabric");

  std::printf("  %-18s %-12s %-10s %-6s %-8s %-8s %-8s %s\n", "scenario",
              "goodput Mb/s", "elapsed", "msgs", "garbled", "dups",
              "corrupt", "retx");
  std::vector<RunResult> results;
  results.push_back(run_one("clean", {}));
  print_row(results.back());
  results.push_back(run_one("corrupt1pct", {.corrupt_probability = 0.01}));
  print_row(results.back());
  results.push_back(run_one("duplicate", {.duplicate_probability = 0.1}));
  print_row(results.back());
  results.push_back(run_one("corrupt+duplicate",
                            {.duplicate_probability = 0.1,
                             .corrupt_probability = 0.01}));
  print_row(results.back());

  const RunResult& clean = results.front();
  const RunResult& worst = results.back();

  // Gate 1: correctness before speed — every scenario delivered every
  // message exactly once and nothing garbled reached an application.
  bool exact = true;
  for (const RunResult& r : results)
    exact = exact && r.delivered == kPairs * kMsgs && r.garbled == 0;

  // Gate 2: the adversary really fired in the adversarial runs.
  const bool fired = results[1].corrupt_injected > 0 &&
                     results[2].duplicates_injected > 0 &&
                     worst.corrupt_injected > 0 &&
                     worst.duplicates_injected > 0 &&
                     worst.corrupt_dropped > 0;

  // Gate 3: graceful degradation — 1% corruption + duplication keeps at
  // least 0.6x of the clean goodput.
  const double ratio =
      clean.goodput_bps > 0 ? worst.goodput_bps / clean.goodput_bps : 0;
  constexpr double kLimit = 0.6;
  const bool graceful = ratio >= kLimit;

  const bool shapes = exact && fired && graceful;
  std::printf(
      "\n  Shape check (all streams exactly-once and unscathed; injectors "
      "fired; goodput corrupt+dup/clean = %.3f >= %.2f): %s\n",
      ratio, kLimit, shapes ? "PASS" : "FAIL");

  {
    std::ofstream f("BENCH_adversarial.json", std::ios::trunc);
    f << "{\n"
      << "  \"bench\": \"adversarial_net\",\n"
      << "  \"seed\": " << kSeed << ",\n"
      << "  \"horizon\": " << kHorizon << ",\n"
      << "  \"pairs\": " << kPairs << ",\n"
      << "  \"messages_per_pair\": " << kMsgs << ",\n"
      << "  \"payload_bytes\": " << kDoubles * sizeof(double) << ",\n"
      << "  \"runs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i)
      json_row(f, results[i], i + 1 == results.size());
    f << "  ],\n"
      << "  \"gates\": {\"goodput_ratio\": " << ratio
      << ", \"goodput_limit\": " << kLimit
      << ", \"pass\": " << (shapes ? "true" : "false") << "}\n"
      << "}\n";
    std::printf("  results: wrote BENCH_adversarial.json\n");
  }
  return shapes ? 0 : 1;
}
