// GS failover bench — what scheduler replication buys and what it costs.
//
// Sweep replica count x heartbeat interval.  In every run the leader's
// host crashes 0.2 s *before* the owner reclaims host1, so the order lands
// squarely in the leaderless window:
//
//  * replicas = 1 is the paper's baseline single GS: the order arrives at
//    a dead scheduler and the reclaim is simply never honoured (the
//    availability gap the replicated GS exists to close).
//  * replicas = 3 / 5: the surviving followers buffer the order, one of
//    them wins the election and replays it.  Reported: failover latency
//    (crash to new leader, bounded by ~3 heartbeat intervals) and the
//    end-to-end vacate latency against a crash-free baseline — the delta
//    is the missed-decision window where the cluster had no acting
//    scheduler.
#include "bench/bench_util.hpp"

#include "fault/fault.hpp"
#include "gs/ha.hpp"

namespace {
using namespace cpe;

struct FailoverResult {
  bool vacated = false;        ///< did the task ever leave host1?
  double failover = 0;         ///< crash -> new leader (0 if none)
  double vacate_latency = 0;   ///< reclaim order -> successful restart
  std::uint64_t last_term = 0;
};

FailoverResult run_one(int replicas, double hb, bool crash_leader,
                       std::vector<obs::SpanRecord>& spans) {
  sim::Engine eng;
  net::Network net(eng);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  os::Host host3(eng, net, os::HostConfig("host3", "HPPA", 1.0));
  std::vector<std::unique_ptr<os::Host>> gs_hosts;
  std::vector<os::Host*> gs_ptrs;
  for (int i = 0; i < replicas; ++i) {
    gs_hosts.push_back(std::make_unique<os::Host>(
        eng, net,
        os::HostConfig("gs" + std::to_string(i + 1), "HPPA", 1.0)));
    gs_ptrs.push_back(gs_hosts.back().get());
  }
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);
  vm.add_host(host3);
  mpvm::Mpvm mpvm(vm);
  fault::FaultPlan plan(eng);
  gs::HaPolicy pol;
  pol.heartbeat_interval = hb;
  gs::HaScheduler ha(vm, gs_ptrs, pol);
  ha.attach(mpvm);
  ha.start(120.0);

  vm.register_program("worker", [&](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 2'000'000;
    co_await t.compute(40.0);
  });
  const double reclaim_t = 5.0;
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 1, "host1");
  };
  sim::spawn(eng, driver());
  eng.schedule_at(reclaim_t, [&] {
    ha.on_owner_event(
        os::OwnerEvent(eng.now(), host1, os::OwnerAction::kReclaim, 1));
  });
  const double crash_t = reclaim_t - 0.2;
  if (crash_leader) plan.crash_at(*gs_ptrs.front(), crash_t);
  eng.run();

  FailoverResult out;
  const auto& ch = ha.leadership_changes();
  if (ch.size() > 1) out.failover = ch[1].t - crash_t;
  out.last_term = ch.back().term;
  for (const mpvm::MigrationStats& h : mpvm.history()) {
    if (h.ok && h.from_host == "host1") {
      out.vacated = true;
      out.vacate_latency = h.restart_done - reclaim_t;
    }
  }
  bench::collect_spans(vm, spans);
  return out;
}
}  // namespace

int main() {
  bench::print_header(
      "GS failover: replica count x heartbeat interval",
      "robustness extension — the paper's network-wide global scheduler "
      "(§2.0) as a replicated state machine instead of a single point of "
      "failure");

  std::printf(
      "  leader host crashes 0.2 s before the reclaim order arrives\n\n");
  std::printf("  %-10s %-8s %-10s %-12s %-12s %s\n", "replicas", "hb (s)",
              "vacated", "failover(s)", "vacate(s)", "note");
  bool shapes = true;
  std::vector<obs::SpanRecord> spans;
  for (int replicas : {1, 3, 5}) {
    for (double hb : {0.25, 0.5, 1.0}) {
      const FailoverResult base = run_one(replicas, hb, false, spans);
      const FailoverResult r = run_one(replicas, hb, true, spans);
      std::string note;
      if (replicas == 1) {
        note = "order lost with the leader";
        shapes = shapes && base.vacated && !r.vacated;
      } else {
        const double window = r.vacate_latency - base.vacate_latency;
        note = "missed-decision window " +
               std::to_string(window).substr(0, 4) + " s";
        shapes = shapes && r.vacated && r.failover > 0 &&
                 r.failover <= 3.0 * hb && r.last_term >= 2;
      }
      std::printf("  %-10d %-8.2f %-10s %-12.2f %-12.2f %s\n", replicas, hb,
                  r.vacated ? "yes" : "NO", r.failover, r.vacate_latency,
                  note.c_str());
    }
  }
  std::printf(
      "\n  Shape check (single GS loses the order; replicated GS fails "
      "over within 3 heartbeats and completes the vacate): %s\n",
      shapes ? "PASS" : "FAIL");
  bench::write_trace_json(spans, "BENCH_trace.json");
  const bool audit_ok = bench::audit_spans(spans);
  return audit_ok && shapes ? 0 : 1;
}
