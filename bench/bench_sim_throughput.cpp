// Sim-core throughput: calendar event queue vs the pinned legacy engine.
//
// The engine rework (DESIGN.md §13) replaced the binary-heap event queue +
// per-event std::function with a calendar queue, a pooled small-callable
// arena, and lazy deletion with compaction.  This bench pins the *old*
// engine verbatim (namespace legacy below — std::priority_queue plus
// std::function slots, exactly as shipped before the rework) and races the
// two on the access patterns the simulator actually generates:
//
//  * hold: N pending events in steady state; every fired event reschedules
//    itself a bounded-uniform delay ahead (the classic calendar-queue hold
//    model — what timer wheels, CPU slices, and gossip beats look like);
//  * timer_churn: K retransmission timers armed ~10 s out, constantly
//    cancelled-and-rearmed as "acks" land, with virtual time crawling
//    forward so stale entries drain — the pattern that made lazy deletion
//    and cancel() the hot path.
//
// Reported per workload: wall-clock events/sec for both engines (best of
// kRepeats, so a noisy neighbour can only help the *slower* number) and the
// speedup ratio.  Each workload gates against its own floor:
//
//  * timer_churn carries the headline >= 5x acceptance bar.  It is the
//    profile the rework was built for — the legacy engine pays an O(log n)
//    all-cache-miss pop for every stale entry it ever buried, plus a heap
//    allocation per rearm, while the calendar queue compacts stale entries
//    in one linear sweep and keeps the callable inline.
//  * hold floors at >= 2.5x.  With zero cancellations both engines do one
//    push and one pop per event, so the gap is "log(n) cache-missing heap
//    levels" versus "a handful of bucket/slot lines" — ~3x at a million
//    pending, and it grows only logarithmically.  A 5x demand here would be
//    asking the benchmark to lie; the floor instead catches regressions.
//
// --smoke mode runs ~1/8th the events with loose 1.5x floors so CI can
// afford it per-commit: at that scale the legacy heap is half cache-resident
// and a loaded CI box adds noise, so it exists to catch "the calendar queue
// got slower than the heap", not to re-prove the 5x.  Everything lands in
// BENCH_sim.json for ci/check.sh bench.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "obs/analytics.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace legacy {

// The pre-rework engine, pinned byte-for-byte (modulo namespace) so the
// baseline cannot silently inherit future improvements.
using cpe::sim::Time;

struct EventId {
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t gen = 0;
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
  [[nodiscard]] bool valid() const noexcept { return slot != kInvalidSlot; }
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }

  EventId schedule_at(Time t, std::function<void()> fn) {
    if (t < now_) t = now_;
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot].fn = std::move(fn);
    const std::uint32_t gen = slots_[slot].gen;
    queue_.push(QueueEntry{t, next_seq_++, slot, gen});
    ++live_;
    return EventId{slot, gen};
  }

  EventId schedule_in(Time dt, std::function<void()> fn) {
    return schedule_at(now_ + (dt > 0 ? dt : 0), std::move(fn));
  }

  void cancel(EventId id) noexcept {
    if (!id.valid() || id.slot >= slots_.size()) return;
    Slot& s = slots_[id.slot];
    if (s.gen != id.gen || !s.fn) return;
    ++s.gen;
    s.fn = nullptr;
    free_slots_.push_back(id.slot);
    --live_;
  }

  bool step() {
    while (!queue_.empty()) {
      QueueEntry e = queue_.top();
      queue_.pop();
      Slot& s = slots_[e.slot];
      if (s.gen != e.gen || !s.fn) continue;
      now_ = e.t;
      std::function<void()> fn = std::move(s.fn);
      s.fn = nullptr;
      ++s.gen;
      free_slots_.push_back(e.slot);
      --live_;
      fn();
      return true;
    }
    return false;
  }

  std::size_t run_until(Time t) {
    std::size_t n = 0;
    while (!queue_.empty()) {
      const QueueEntry& top = queue_.top();
      if (slots_[top.slot].gen != top.gen || !slots_[top.slot].fn) {
        queue_.pop();
        continue;
      }
      if (top.t > t) break;
      step();
      ++n;
    }
    now_ = t;
    return n;
  }

 private:
  struct Slot {
    std::uint32_t gen = 0;
    std::function<void()> fn;
  };
  struct QueueEntry {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    [[nodiscard]] bool operator>(const QueueEntry& o) const noexcept {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
};

}  // namespace legacy

namespace {

constexpr int kRepeats = 3;

/// Deterministic xorshift64*: cheap enough that the RNG never becomes the
/// thing being measured.
struct Rng {
  std::uint64_t s;
  std::uint64_t next() noexcept {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  }
};

double wall_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Hold model: `npending` self-rescheduling events in steady state; run
/// `nevents` firings.  The callback captures 24 bytes — a this-pointer and
/// a couple of words of arguments, the shape of every net/timer callback in
/// the tree.  That fits the new engine's 48-byte inline slot but overflows
/// std::function's small-object buffer, so the baseline pays the allocation
/// it always paid.
template <class Eng>
double run_hold(std::size_t npending, std::size_t nevents) {
  Eng eng;
  struct State {
    Eng* eng;
    Rng rng{0x9E3779B97F4A7C15ull};
    std::uint64_t fired = 0;
  };
  State st{&eng};

  struct Reschedule {
    State* st;
    std::uint64_t salt;    // captured argument words, as real callbacks have
    std::uint64_t serial;
    void operator()() const {
      State& s = *st;
      ++s.fired;
      const double dt =
          static_cast<double>(s.rng.next() & 1023u) * (1.0 / 256.0);
      s.eng->schedule_in(dt, Reschedule{st, salt ^ s.fired, serial + 1});
    }
  };
  static_assert(sizeof(Reschedule) == 24);

  for (std::size_t i = 0; i < npending; ++i) {
    const double t0 = static_cast<double>(st.rng.next() & 1023u) / 256.0;
    eng.schedule_at(t0, Reschedule{&st, st.rng.next(), 0});
  }

  const auto t0 = std::chrono::steady_clock::now();
  while (st.fired < nevents) eng.step();
  const double secs = wall_seconds(t0);
  return static_cast<double>(st.fired) / secs;
}

/// Retransmission-timer churn: K timers armed ~10 s out.  Each op cancels a
/// pseudo-random victim and rearms it (an "ack" landed); after every K ops
/// virtual time advances so that stale entries become poppable — the run
/// always crosses the full timer horizon, so the lazy-deletion drain (the
/// real cost of retransmission timers that almost never fire) is exercised
/// at every scale, not just the push path.  With nops/ntimers rounds spread
/// over 2.5 horizons, a stale entry lives ~horizon/round_dt rounds, so the
/// legacy heap carries a stale:live ratio of roughly (0.4 * nops/ntimers):1
/// — full mode's ~24:1 matches a simulated net where almost every timer is
/// acked before it fires.
template <class Eng>
double run_churn(std::size_t ntimers, std::size_t nops) {
  Eng eng;
  std::uint64_t fired = 0;
  Rng rng{0xC0FFEE123456789ull};

  // 24-byte capture (this-pointer, message id, destination — the shape of
  // the net layer's real retransmission callbacks): inline in the new
  // engine's 48-byte slot, a heap allocation per rearm for std::function.
  auto arm = [&](double base) {
    const double jitter = static_cast<double>(rng.next() & 255u) / 256.0;
    return eng.schedule_at(
        base + 10.0 + jitter, [&fired, pad = rng.s, pad2 = ~rng.s] {
          fired += 1 + (pad & 0) + (pad2 & 0);
        });
  };

  std::vector<decltype(arm(0.0))> ids;
  ids.reserve(ntimers);
  for (std::size_t i = 0; i < ntimers; ++i) ids.push_back(arm(0.0));

  // 25 virtual seconds spread over the whole run: 2.5 timer horizons, so
  // stale entries from the early rounds drain during the later ones.
  const double round_dt =
      25.0 * static_cast<double>(ntimers) / static_cast<double>(nops);

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t done = 0;
  while (done < nops) {
    for (std::size_t i = 0; i < ntimers && done < nops; ++i, ++done) {
      const std::size_t victim = rng.next() % ntimers;
      eng.cancel(ids[victim]);
      ids[victim] = arm(eng.now());
    }
    eng.run_until(eng.now() + round_dt);
  }
  const double secs = wall_seconds(t0);
  return (static_cast<double>(done) + static_cast<double>(fired)) / secs;
}

/// The hold workload again on the calendar engine, but fully metered: every
/// firing bumps a registry counter, and an Analytics sampler rolls windowed
/// rollups + one armed SLO rule on a 1-virtual-second cadence.  The ratio
/// against the plain run is the price of leaving telemetry on in
/// production simulations — gated at <= 2% (full mode).
double run_hold_metered(std::size_t npending, std::size_t nevents) {
  cpe::sim::Engine eng;
  cpe::obs::MetricsRegistry reg(&eng);
  cpe::obs::Counter& ops = reg.counter("sim.ops");
  cpe::obs::AnalyticsOptions aopt;
  aopt.window = 1.0;
  cpe::obs::Analytics an(eng, reg, aopt);
  an.track_counter("sim.ops");
  an.add_rule("rate(sim.ops) >= 0");  // always holds; pays evaluation cost
  an.start();

  struct State {
    cpe::sim::Engine* eng;
    cpe::obs::Counter* ops;
    Rng rng{0x9E3779B97F4A7C15ull};
    std::uint64_t fired = 0;
  };
  State st{&eng, &ops};

  // Same 24-byte callable as run_hold, plus the one counter bump.
  struct Reschedule {
    State* st;
    std::uint64_t salt;
    std::uint64_t serial;
    void operator()() const {
      State& s = *st;
      ++s.fired;
      s.ops->inc();
      const double dt =
          static_cast<double>(s.rng.next() & 1023u) * (1.0 / 256.0);
      s.eng->schedule_in(dt, Reschedule{st, salt ^ s.fired, serial + 1});
    }
  };
  static_assert(sizeof(Reschedule) == 24);

  for (std::size_t i = 0; i < npending; ++i) {
    const double t0 = static_cast<double>(st.rng.next() & 1023u) / 256.0;
    eng.schedule_at(t0, Reschedule{&st, st.rng.next(), 0});
  }

  const auto t0 = std::chrono::steady_clock::now();
  while (st.fired < nevents) eng.step();
  const double secs = wall_seconds(t0);
  return static_cast<double>(st.fired) / secs;
}

struct Row {
  const char* name;
  std::size_t events;
  double limit;  // per-workload speedup floor
  double base_eps;
  double cal_eps;
  [[nodiscard]] double speedup() const { return cal_eps / base_eps; }
};

template <class Fn>
double best_of(Fn&& fn) {
  double best = 0;
  for (int r = 0; r < kRepeats; ++r) best = std::max(best, fn());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Full mode is the acceptance run: timer_churn (the production profile the
  // rework targeted) must show >= 5x, hold (pure push/pop, no cancels) must
  // hold its 2.5x floor.  A million pending events is the 1024-host
  // simulation's regime, where the legacy heap's O(log n) pops are all cache
  // misses.  Full-mode churn uses 60 rounds over 2.5 horizons -> ~24:1
  // stale:live in the legacy heap.
  const double hold_limit = smoke ? 1.5 : 2.5;
  const double churn_limit = smoke ? 1.5 : 5.0;
  const std::size_t hold_pending = smoke ? 100'000 : 1'000'000;
  const std::size_t hold_events = smoke ? 500'000 : 4'000'000;
  const std::size_t churn_timers = smoke ? 25'000 : 100'000;
  const std::size_t churn_ops = smoke ? 500'000 : 6'000'000;

  std::printf("\n=== Sim-core throughput: calendar queue vs legacy heap%s ===\n",
              smoke ? " (smoke)" : "");
  std::printf("  %-14s %14s %14s %9s %7s\n", "workload", "legacy ev/s",
              "calendar ev/s", "speedup", "floor");

  std::vector<Row> rows;
  {
    Row r{"hold", hold_events, hold_limit, 0, 0};
    r.base_eps = best_of([&] { return run_hold<legacy::Engine>(
        hold_pending, hold_events); });
    r.cal_eps = best_of([&] { return run_hold<cpe::sim::Engine>(
        hold_pending, hold_events); });
    rows.push_back(r);
  }
  {
    Row r{"timer_churn", churn_ops, churn_limit, 0, 0};
    r.base_eps = best_of([&] { return run_churn<legacy::Engine>(
        churn_timers, churn_ops); });
    r.cal_eps = best_of([&] { return run_churn<cpe::sim::Engine>(
        churn_timers, churn_ops); });
    rows.push_back(r);
  }

  bool pass = true;
  for (const Row& r : rows) {
    pass = pass && r.speedup() >= r.limit;
    std::printf("  %-14s %14.0f %14.0f %8.2fx %6.1fx\n", r.name, r.base_eps,
                r.cal_eps, r.speedup(), r.limit);
  }

  // Telemetry overhead: the hold workload with the metrics counter and the
  // Analytics sampler left on, against the plain calendar run above.  Full
  // mode gates at 2% (the acceptance bar for always-on telemetry); smoke
  // loosens to 10% — at 1/8th scale one scheduler hiccup on a shared CI
  // box is worth more than 2% of the run.
  const double overhead_limit = smoke ? 0.10 : 0.02;
  const double metered_eps =
      best_of([&] { return run_hold_metered(hold_pending, hold_events); });
  const double plain_eps = rows[0].cal_eps;
  const double overhead = 1.0 - metered_eps / plain_eps;
  const bool overhead_ok = overhead <= overhead_limit;
  pass = pass && overhead_ok;
  std::printf("  %-14s %14s %14.0f %7.2f%% %5.0f%%\n", "hold_metered", "-",
              metered_eps, overhead * 100.0, overhead_limit * 100.0);

  // The headline ratio is timer_churn's: the acceptance bar for the rework.
  const Row& headline = rows.back();
  std::printf(
      "\n  Gate (timer_churn %.2fx >= %.1fx, all floors held, analytics "
      "overhead %.2f%% <= %.0f%%): %s\n",
      headline.speedup(), headline.limit, overhead * 100.0,
      overhead_limit * 100.0, pass ? "PASS" : "FAIL");

  {
    std::ofstream f("BENCH_sim.json", std::ios::trunc);
    f << "{\n"
      << "  \"bench\": \"sim_throughput\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      f << "    {\"name\": \"" << r.name << "\", \"events\": " << r.events
        << ", \"baseline_eps\": " << r.base_eps
        << ", \"calendar_eps\": " << r.cal_eps
        << ", \"speedup\": " << r.speedup()
        << ", \"limit\": " << r.limit << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    f << "  ],\n"
      << "  \"analytics\": {\"plain_eps\": " << plain_eps
      << ", \"metered_eps\": " << metered_eps
      << ", \"overhead\": " << overhead
      << ", \"overhead_limit\": " << overhead_limit << "},\n"
      << "  \"gates\": {\"pass\": " << (pass ? "true" : "false")
      << ", \"speedup_ratio\": " << headline.speedup()
      << ", \"speedup_limit\": " << headline.limit
      << ", \"analytics_overhead\": " << overhead
      << ", \"analytics_overhead_limit\": " << overhead_limit << "}\n"
      << "}\n";
    std::printf("  results: wrote BENCH_sim.json\n");
  }
  return pass ? 0 : 1;
}
