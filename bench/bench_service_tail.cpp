// Service tail latency under adaptive migration (DESIGN.md §15).
//
// Two experiments, both built from declarative svc::ScenarioRow entries:
//
//  1. Day profile.  One open-loop frontend drives diurnal (sinusoid-
//     modulated Poisson) arrivals at a base rate of 13 req/s for a full
//     virtual day — ~1.1M requests through real PVM messages, worker
//     mailboxes, and span-traced lifecycles.  Gate: >= 1M requests per
//     virtual day, every request resolved exactly once, trace audit clean
//     (invariant 9 included).  This is the "millions of requests per
//     virtual day are routine" floor from ROADMAP O4.
//
//  2. Owner-reclamation storm matrix.  Two frontend shards push 300 req/s
//     at 16 workers on 8 workstations while owners reclaim 2 worker hosts
//     (6 local jobs each) from t=20 for the rest of the run.  One run per
//     placement policy — none, threshold, best_fit, destination_swap,
//     work_steal (stop-and-copy) plus best_fit with pre-copy — same seed,
//     same storm schedule.  Workers carry an 8 MiB image, so a stop-and-
//     copy freeze is most of a second of virtual wall time that lands
//     squarely in the latency of every request queued behind it; pre-copy
//     moves those bytes while the worker keeps serving.  Gates: at least
//     one adaptive policy beats `none` on p99 (with `none`, requests
//     pinned to reclaimed hosts just die at the censored timeout);
//     pre-copy p99 <= stop-and-copy p99 in the same scenario, and its
//     mean freeze window strictly below stop-and-copy's.
//
// `--smoke` shrinks the day run to half a virtual hour (the per-vday rate
// gate still binds — it is rate-normalized).  `--slo` arms a deliberately-
// impossible `p99(svc.latency)` rule with the flight recorder attached and
// asserts exactly one flight dump lands (the svc SLO drill).  Everything
// exports to BENCH_service.json + BENCH_analytics.json for ci/check.sh.
#include "bench/bench_util.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_analytics.hpp"
#include "svc/scenario.hpp"

namespace {
using namespace cpe;

constexpr double kVdayFloor = 1e6;  ///< requests per virtual day, day gate

/// Shared storm-matrix scenario: everything except the placement policy.
svc::ScenarioRow storm_row() {
  svc::ScenarioRow row;
  row.hosts = 10;
  row.frontends = 2;
  row.workers = 16;
  row.arrival = svc::ArrivalKind::kPoisson;
  row.rate = 150.0;  // per shard: 300 req/s offered
  row.route = svc::RouteKind::kRoundRobin;
  row.service_demand = 20e-3;
  row.timeout = 10.0;
  row.sample_every = 4;
  row.worker_image_bytes = 8 * 1024 * 1024;  // stop-copy freeze ~0.7 s
  // Pressure gain is deliberately small: the queueing component should make
  // a drowning host visible next to its CPU index, not dominate it — a
  // migrated worker carries its backlog with it, and a large gain turns
  // that backlog into instant "shed me again" pressure (ping-pong).
  row.queue_weight = 0.05;
  row.load_threshold = 4.0;
  row.poll_interval = 1.0;
  row.min_residency = 8.0;
  row.fault = svc::FaultKind::kStorm;
  row.storm_hosts = 2;
  row.storm_jobs = 6;
  // One static window [20, horizon]: the reclaim persists, so `none` pays
  // for the whole run while adaptive policies pay one reaction + drain.
  row.storm_period = 200.0;
  row.fault_start = 20.0;
  row.seed = 7;
  row.horizon = 120.0;
  return row;
}

/// Append `run` spans onto `out`, re-basing ids: every scenario gets a
/// fresh tracer (ids restart at 1), and naive concatenation would corrupt
/// the auditor's and TraceAnalytics' parent indices.
void append_rebased(std::vector<obs::SpanRecord>& out,
                    const std::vector<obs::SpanRecord>& run) {
  obs::SpanId span_base = 0;
  obs::TraceId trace_base = 0;
  for (const auto& s : out) {
    span_base = std::max(span_base, s.span_id);
    trace_base = std::max(trace_base, s.trace_id);
  }
  for (obs::SpanRecord r : run) {
    r.span_id += span_base;
    if (r.parent_span != 0) r.parent_span += span_base;
    r.trace_id += trace_base;
    out.push_back(std::move(r));
  }
}

/// `--slo` drill: the storm scenario with a deliberately-impossible
/// latency SLO armed and the flight recorder attached — the breach must
/// produce exactly one self-contained dump (satellite of DESIGN.md §15.4).
int run_slo() {
  bench::print_header(
      "Service SLO drill: breached p99(svc.latency) rule, flight recorder",
      "observability extension — a deliberately-violated latency SLO on the "
      "serving workload must produce exactly one flight dump (DESIGN.md "
      "§14, §15.4)");
  svc::ScenarioRow row = storm_row();
  row.name = "svc_slo";
  row.horizon = 60.0;
  row.policy = load::PolicyKind::kBestFit;
  // Impossible once the first request completes: queueing alone exceeds
  // a microsecond.  The cap rule must hold alongside it.
  row.slo_rules = {"p99(svc.latency) <= 1e-6 for 2",
                   "value(svc.requests_inflight) <= 100000"};
  row.arm_flight_recorder = true;
  const svc::ScenarioResult r = svc::run_scenario(row);
  std::printf("  issued %llu, slo violations %zu, flight dumps %llu\n",
              static_cast<unsigned long long>(r.issued), r.slo_violations,
              static_cast<unsigned long long>(r.flight_dumps));
  for (const std::string& f : r.flight_files)
    std::printf("    %s\n", f.c_str());
  const bool ok = r.exactly_once && r.audit_violations == 0 &&
                  r.slo_violations > 0 && r.flight_dumps == 1 &&
                  r.flight_files.size() == 1;
  std::printf("\n  Shape check (breached rule fired, exactly one flight "
              "dump, clean audit): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--slo") == 0) return run_slo();
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  bench::print_header(
      "Service workload: open-loop serving with tail-latency-first "
      "migration",
      "serving extension (ROADMAP O4) — the paper's adaptive migration "
      "re-judged by request p99 instead of batch makespan; arrivals, "
      "routing, and faults composed from declarative scenario rows");

  // ---- Part 1: the day profile -------------------------------------------
  svc::ScenarioRow day;
  day.name = "day";
  day.hosts = 6;
  day.frontends = 1;
  day.workers = 8;
  day.arrival = svc::ArrivalKind::kDiurnal;
  day.rate = 13.0;  // base; 13 * 86400 = 1.12M requests per virtual day
  day.amplitude = 0.6;
  day.period = 86400.0;
  day.horizon = smoke ? 1800.0 : 86400.0;
  day.route = svc::RouteKind::kLeastOutstanding;
  day.service_demand = 20e-3;
  day.timeout = 2.0;
  day.sample_every = smoke ? 16 : 256;  // keep sampled traces inside the ring
  day.policy = load::PolicyKind::kBestFit;
  day.queue_weight = 0.25;
  day.load_threshold = 6.0;  // quiet cluster: only a genuine hot spot sheds
  day.poll_interval = 5.0;
  day.seed = 11;

  const svc::ScenarioResult dr = svc::run_scenario(day);
  std::printf("  day profile (%s): %llu requests in %.0f s virtual "
              "(%.3gM/vday), p50/p95/p99 = %.1f/%.1f/%.1f ms, "
              "timeouts %llu, audit violations %zu\n",
              smoke ? "smoke" : "full",
              static_cast<unsigned long long>(dr.issued), day.horizon,
              dr.requests_per_vday / 1e6, dr.latency_p50 * 1e3,
              dr.latency_p95 * 1e3, dr.latency_p99 * 1e3,
              static_cast<unsigned long long>(dr.timeouts),
              dr.audit_violations);
  if (dr.audit_violations != 0) std::printf("%s", dr.audit_report.c_str());
  const bool day_ok = dr.requests_per_vday >= kVdayFloor && dr.exactly_once &&
                      dr.audit_violations == 0;

  // ---- Part 2: the owner-reclamation storm matrix ------------------------
  struct MatrixRun {
    load::PolicyKind policy;
    bool precopy;
    svc::ScenarioResult r;
  };
  std::vector<MatrixRun> runs;
  std::vector<obs::SpanRecord> spans;
  std::printf("\n  storm matrix: 300 req/s, 16 workers x 8 MiB image, "
              "6-job owner reclaim on 2 hosts from t=20\n");
  std::printf("  %-18s %-8s %-10s %-10s %-10s %-10s %-10s %s\n", "policy",
              "precopy", "p50(ms)", "p99(s)", "timeouts", "rejected",
              "migrations", "freeze(s)");
  const std::pair<load::PolicyKind, bool> kMatrix[] = {
      {load::PolicyKind::kNone, false},
      {load::PolicyKind::kThreshold, false},
      {load::PolicyKind::kBestFit, false},
      {load::PolicyKind::kDestinationSwap, false},
      {load::PolicyKind::kWorkSteal, false},
      {load::PolicyKind::kBestFit, true},
  };
  bool matrix_ok = true;
  for (const auto& [kind, precopy] : kMatrix) {
    svc::ScenarioRow row = storm_row();
    row.name = std::string("storm_") + load::to_string(kind) +
               (precopy ? "_precopy" : "");
    row.policy = kind;
    row.precopy = precopy;
    std::vector<obs::SpanRecord> run_spans;
    MatrixRun m{kind, precopy, svc::run_scenario(row, &run_spans)};
    append_rebased(spans, run_spans);
    std::printf("  %-18s %-8s %-10.1f %-10.3f %-10llu %-10llu %-10zu %.3f\n",
                load::to_string(kind), precopy ? "yes" : "no",
                m.r.latency_p50 * 1e3, m.r.latency_p99,
                static_cast<unsigned long long>(m.r.timeouts),
                static_cast<unsigned long long>(m.r.rejected),
                m.r.migrations, m.r.mean_freeze);
    if (m.r.audit_violations != 0) std::printf("%s", m.r.audit_report.c_str());
    matrix_ok = matrix_ok && m.r.exactly_once && m.r.audit_violations == 0 &&
                m.r.thrash_violations == 0;
    // Every adaptive policy must actually act under the storm.
    if (kind != load::PolicyKind::kNone)
      matrix_ok = matrix_ok && m.r.migrations > 0;
    runs.push_back(std::move(m));
  }

  // Gates: at least one adaptive policy beats `none` on p99, and pre-copy
  // does not inflate the tail that stop-and-copy pays in freeze windows.
  double none_p99 = 0, stopcopy_p99 = 0, precopy_p99 = 0;
  double stopcopy_freeze = 0, precopy_freeze = 0;
  double best_adaptive_p99 = std::numeric_limits<double>::infinity();
  std::string best_adaptive = "-";
  for (const MatrixRun& m : runs) {
    if (m.policy == load::PolicyKind::kNone) none_p99 = m.r.latency_p99;
    if (m.policy == load::PolicyKind::kBestFit) {
      (m.precopy ? precopy_p99 : stopcopy_p99) = m.r.latency_p99;
      (m.precopy ? precopy_freeze : stopcopy_freeze) = m.r.mean_freeze;
    }
    if (m.policy != load::PolicyKind::kNone &&
        m.r.latency_p99 < best_adaptive_p99) {
      best_adaptive_p99 = m.r.latency_p99;
      best_adaptive = load::to_string(m.policy);
      if (m.precopy) best_adaptive += "_precopy";
    }
  }
  const bool tail_ok = best_adaptive_p99 < none_p99;
  const bool precopy_ok =
      precopy_p99 <= stopcopy_p99 && precopy_freeze < stopcopy_freeze;
  const bool pass = day_ok && matrix_ok && tail_ok && precopy_ok;
  std::printf(
      "\n  Shape check (>= %.0fM req/vday with clean audit: %s; best "
      "adaptive p99 %.3f s [%s] < none %.3f s: %s; precopy p99 %.3f <= "
      "stop-copy %.3f and mean freeze %.3f < %.3f: %s; exactly-once + "
      "clean audit everywhere: %s): %s\n",
      kVdayFloor / 1e6, day_ok ? "ok" : "FAIL", best_adaptive_p99,
      best_adaptive.c_str(), none_p99, tail_ok ? "ok" : "FAIL", precopy_p99,
      stopcopy_p99, precopy_freeze, stopcopy_freeze,
      precopy_ok ? "ok" : "FAIL", matrix_ok ? "ok" : "FAIL",
      pass ? "PASS" : "FAIL");

  {
    std::ofstream f("BENCH_service.json", std::ios::trunc);
    f << "{\n"
      << "  \"bench\": \"service\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"day\": {\"arrival\": \"diurnal\", \"rate_rps\": " << day.rate
      << ", \"horizon\": " << day.horizon
      << ", \"requests\": " << dr.issued
      << ", \"requests_per_vday\": " << dr.requests_per_vday
      << ", \"p50\": " << dr.latency_p50 << ", \"p95\": " << dr.latency_p95
      << ", \"p99\": " << dr.latency_p99
      << ", \"timeouts\": " << dr.timeouts
      << ", \"exactly_once\": " << (dr.exactly_once ? "true" : "false")
      << ", \"audit_violations\": " << dr.audit_violations << "},\n"
      << "  \"storm\": {\"rate_rps\": 300, \"horizon\": "
      << storm_row().horizon << ", \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const MatrixRun& m = runs[i];
      f << "    {\"policy\": \"" << load::to_string(m.policy)
        << "\", \"precopy\": " << (m.precopy ? "true" : "false")
        << ", \"issued\": " << m.r.issued
        << ", \"completed\": " << m.r.completed
        << ", \"timeouts\": " << m.r.timeouts
        << ", \"rejected\": " << m.r.rejected
        << ", \"exactly_once\": " << (m.r.exactly_once ? "true" : "false")
        << ", \"audit_violations\": " << m.r.audit_violations
        << ", \"migrations\": " << m.r.migrations
        << ", \"mean_freeze_s\": " << m.r.mean_freeze
        << ", \"p50\": " << m.r.latency_p50
        << ", \"p95\": " << m.r.latency_p95
        << ", \"p99\": " << m.r.latency_p99
        << ", \"queue_wait_p99\": " << m.r.queue_wait_p99 << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    f << "  ]},\n"
      << "  \"gates\": {\"vday_floor\": " << kVdayFloor
      << ", \"requests_per_vday\": " << dr.requests_per_vday
      << ", \"none_p99\": " << none_p99
      << ", \"best_adaptive\": \"" << best_adaptive << "\""
      << ", \"best_adaptive_p99\": " << best_adaptive_p99
      << ", \"stopcopy_p99\": " << stopcopy_p99
      << ", \"precopy_p99\": " << precopy_p99
      << ", \"stopcopy_mean_freeze_s\": " << stopcopy_freeze
      << ", \"precopy_mean_freeze_s\": " << precopy_freeze
      << ", \"pass\": " << (pass ? "true" : "false") << "}\n"
      << "}\n";
    std::printf("  results: wrote BENCH_service.json\n");
  }

  // Stage attribution over every storm-matrix migration.
  obs::TraceAnalytics ta(spans);
  const bool coverage_ok = ta.migrations() > 0 && ta.coverage_min() >= 0.95;
  std::printf("  analytics: %llu migrations, coverage min %.3f (>= 0.95: "
              "%s), %llu traces skipped\n",
              static_cast<unsigned long long>(ta.migrations()),
              ta.coverage_min(), coverage_ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(ta.traces_skipped()));
  {
    std::ofstream f("BENCH_analytics.json", std::ios::trunc);
    std::ostringstream extra;
    extra << "\"slo\": {\"rules\": 0, \"violations\": 0, \"flights\": 0},\n"
          << "  \"gates\": {\"coverage_limit\": 0.95, \"pass\": "
          << (coverage_ok && pass ? "true" : "false") << "}";
    ta.write_json(f, "service_tail", extra.str());
    std::printf("  analytics: wrote BENCH_analytics.json\n");
  }
  bench::write_trace_json(spans, "BENCH_service_trace.json");

  return pass && coverage_ok ? 0 : 1;
}
