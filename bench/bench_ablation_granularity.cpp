// Ablation A2 — redistribution granularity (§3.4).
//
// Three hosts, one of them half speed.  A fixed amount of data-parallel work
// must be balanced across them:
//   * MPVM distributes whole processes (3 slaves -> 1 per host): the slow
//     host's slave straggles, and whole-process moves cannot fix a ratio;
//   * UPVM distributes ULPs (10 ULPs): moving individual ULPs approximates
//     the 2:2:1 speed ratio much better;
//   * ADM repartitions the data itself with per-exemplar precision — the
//     "potentially ideal load balance" of §3.4.3.
#include "bench/bench_util.hpp"

namespace {
using namespace cpe;

struct Worknet3 {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  os::Host host3{eng, net, os::HostConfig("host3", "HPPA", 0.5)};
  pvm::PvmSystem vm{eng, net};
  Worknet3() {
    vm.add_host(host1);
    vm.add_host(host2);
    vm.add_host(host3);
  }
};

constexpr double kTotalWork = 300.0;  // reference-seconds of slave work

// Whole-process granularity: one slave per host, equal work each.
double run_processes() {
  Worknet3 w;
  double finished = 0;
  w.vm.register_program("slave", [&](pvm::Task& t) -> sim::Co<void> {
    co_await t.compute(kTotalWork / 3);
    finished = std::max(finished, w.eng.now());
  });
  auto driver = [&]() -> sim::Proc {
    co_await w.vm.spawn("slave", 1, "host1");
    co_await w.vm.spawn("slave", 1, "host2");
    co_await w.vm.spawn("slave", 1, "host3");
  };
  sim::spawn(w.eng, driver());
  w.eng.run();
  return finished;
}

// ULP granularity: 10 equal ULPs placed 4/4/2 by the scheduler.
double run_ulps() {
  Worknet3 w;
  upvm::Upvm upvm(w.vm);
  sim::spawn(w.eng, upvm.start());
  w.eng.run();
  const double start = w.eng.now();
  double finished = 0;
  upvm.run_spmd(
      [&](upvm::Ulp& u) -> sim::Co<void> {
        co_await u.compute(kTotalWork / 10);
        finished = std::max(finished, w.eng.now());
        (void)u;
      },
      10);
  // Round-robin puts 4,3,3 on hosts 1,2,3; move one ULP off the slow host
  // (what a granularity-aware GS does).
  auto rebalance = [&]() -> sim::Proc {
    co_await sim::Delay(w.eng, 1.0);
    co_await upvm.migrate_ulp(5, w.host1);  // ULP5 lives on host3
  };
  sim::spawn(w.eng, rebalance());
  w.eng.run();
  return finished - start;
}

// Data granularity: weighted shares proportional to speed, per exemplar.
double run_adm() {
  Worknet3 w;
  opt::AdmOptConfig cfg;
  cfg.opt = bench::paper_opt_config(4.2);
  cfg.opt.nslaves = 3;
  cfg.opt.slave_hosts = {"host1", "host2", "host3"};
  cfg.partition_weights = {1.0, 1.0, 0.5};  // speeds
  opt::AdmOpt app(w.vm, cfg);
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(w.eng, driver());
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    app.post_event(0, adm::AdmEventKind::kRebalance);
  };
  sim::spawn(w.eng, gs());
  w.eng.run();
  return r.runtime();
}

// Same ADM run but with the naive equal partition (no weighting).
double run_adm_equal() {
  Worknet3 w;
  opt::AdmOptConfig cfg;
  cfg.opt = bench::paper_opt_config(4.2);
  cfg.opt.nslaves = 3;
  cfg.opt.slave_hosts = {"host1", "host2", "host3"};
  opt::AdmOpt app(w.vm, cfg);
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(w.eng, driver());
  w.eng.run();
  return r.runtime();
}
}  // namespace

int main() {
  bench::print_header(
      "Ablation A2: redistribution granularity on heterogeneous hosts",
      "§3.4 — process-grain (MPVM) < ULP-grain (UPVM) < data-grain (ADM) "
      "in achievable balance; hosts at speeds 1.0/1.0/0.5");

  const double procs = run_processes();
  const double ulps = run_ulps();
  const double adm_weighted = run_adm();
  const double adm_equal = run_adm_equal();
  const double ideal = kTotalWork / 2.5;  // perfectly balanced makespan

  std::printf("  %-44s %8.1f s\n",
              "whole processes, 1/host (MPVM granularity)", procs);
  std::printf("  %-44s %8.1f s\n", "10 ULPs, one moved off the slow host",
              ulps);
  std::printf("  (ideal makespan for %g ref-s over speeds 1+1+0.5: %.1f s)\n",
              kTotalWork, ideal);
  std::printf("\n  ADMopt 4.2 MB, 3 slaves:\n");
  std::printf("  %-44s %8.1f s\n", "equal partition (ignores speed)",
              adm_equal);
  std::printf("  %-44s %8.1f s\n", "speed-weighted partition (2:2:1)",
              adm_weighted);
  std::printf(
      "\n  Shape check (finer granularity -> better balance): %s\n",
      (ulps < procs && adm_weighted < adm_equal) ? "PASS" : "FAIL");
  return 0;
}
