// Figure 2 — ULPs and their unique virtual-address regions (§2.2).
//
// The paper's example: an application decomposed into 5 ULPs across 3
// processes, one per host; if ULP4 occupies region V1 on host3, V1 is
// reserved for ULP4 in every process.  This bench builds exactly that
// configuration, prints the map, migrates ULP4, and shows it landing in the
// same region — no pointer fix-up needed.
#include "bench/bench_util.hpp"

int main() {
  using namespace cpe;
  bench::print_header(
      "Figure 2: ULP virtual-address regions, 5 ULPs across 3 processes",
      "\"if ULP4 is allocated a virtual address region V1 on host3, then V1 "
      "is also reserved for ULP4 on all the other hosts\"");

  sim::Engine eng;
  net::Network net(eng);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  os::Host host3(eng, net, os::HostConfig("host3", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);
  vm.add_host(host3);
  upvm::Upvm upvm(vm);
  sim::spawn(eng, upvm.start());
  eng.run();

  upvm.run_spmd(
      [](upvm::Ulp& u) -> sim::Co<void> {
        u.set_data_bytes(200'000 + 50'000 * static_cast<std::size_t>(u.inst()));
        co_await u.compute(1000.0);
      },
      5);
  eng.run_until(eng.now() + 1.0);
  std::printf("%s\n", upvm.format_address_map().c_str());

  const upvm::VaRegion before = upvm.ulp(4)->region();
  auto driver = [&]() -> sim::Proc {
    co_await upvm.migrate_ulp(4, host3);
  };
  sim::spawn(eng, driver());
  eng.run_until(eng.now() + 30.0);

  std::printf("After migrating ULP4 (%s -> host3):\n%s\n", "host2",
              upvm.format_address_map().c_str());
  const upvm::VaRegion after = upvm.ulp(4)->region();
  std::printf(
      "  ULP4 region before: [%#zx, %#zx)  after: [%#zx, %#zx)  — %s\n",
      static_cast<std::size_t>(before.base),
      static_cast<std::size_t>(before.end()),
      static_cast<std::size_t>(after.base),
      static_cast<std::size_t>(after.end()),
      before.base == after.base ? "identical (no pointer fix-up)"
                                : "DIFFERENT (bug!)");
  std::printf("  Regions pairwise disjoint: %s\n",
              upvm.address_map().disjoint() ? "yes" : "NO (bug!)");
  return 0;
}
