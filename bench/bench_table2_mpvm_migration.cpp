// Table 2 — MPVM obtrusiveness and migration cost vs. data size, with the
// raw-TCP lower bound (§4.1.2, §4.1.3).
//
// For each training-set size, PVM_opt runs with a slave on each host
// ("slaves in the experiments get half of the indicated data size"); once
// the slaves hold their data, the global scheduler migrates the host1 slave
// to host2.  The raw-TCP column pushes the same number of bytes through a
// bare stream connection — the lower bound on any migration mechanism.
//
// The six migrations also feed the critical-path analytics: per-stage
// p50/p95/p99 and which stage dominated each migration, written to
// BENCH_analytics.json and gated on >= 95% wall-span coverage.
#include "bench/bench_util.hpp"

#include "obs/trace_analytics.hpp"

namespace {

using namespace cpe;

struct Row {
  double data_mb;
  double paper_raw_tcp;
  double paper_obtrusiveness;
  double paper_ratio;
  double paper_migration;
};

constexpr Row kPaper[] = {
    {0.6, 0.27, 1.17, 4.3, 1.39},  {4.2, 1.82, 2.93, 1.56, 3.15},
    {5.8, 2.51, 3.90, 1.55, 4.10}, {9.8, 4.42, 5.92, 1.34, 6.18},
    {13.5, 6.17, 8.42, 1.36, 9.25}, {20.8, 10.00, 12.52, 1.25, 13.10},
};

double raw_tcp_seconds(std::size_t bytes) {
  sim::Engine eng;
  net::Network net(eng);
  const net::NodeId a = net.add_node("host1");
  const net::NodeId b = net.add_node("host2");
  double done = -1;
  auto body = [&]() -> sim::Proc {
    auto s = co_await net::TcpStream::connect(net, a, b);
    co_await s->send(a, bytes);
    done = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  return done;
}

mpvm::MigrationStats migrate_once(double data_mb, std::ostream& metrics_out,
                                  std::vector<obs::SpanRecord>& spans) {
  bench::Testbed tb;
  mpvm::Mpvm mpvm(tb.vm);
  opt::PvmOpt app(tb.vm, bench::paper_opt_config(data_mb));
  auto driver = [&]() -> sim::Proc { (void)co_await app.run(); };
  sim::spawn(tb.eng, driver());

  mpvm::MigrationStats stats;
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(tb.eng, 1.0);  // mid-computation
    stats = co_await mpvm.migrate(app.slave_tid(0), tb.host2);
  };
  sim::spawn(tb.eng, gs());
  tb.eng.run();
  // Each row has its own testbed, so the file accumulates one snapshot per
  // row — every snapshot carries that row's mpvm.stage.* histograms.
  bench::append_metrics_jsonl(tb.vm, metrics_out);
  bench::collect_spans(tb.vm, spans);
  return stats;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 2: MPVM obtrusiveness and migration cost vs data size",
      "raw TCP 0.27..10.0 s; obtrusiveness 1.17..12.52 s (ratio 4.3 -> "
      "1.25); migration 1.39..13.10 s");

  std::printf(
      "  %-6s | %-17s | %-17s | %-13s | %-17s\n"
      "  %-6s | %8s %8s | %8s %8s | %6s %6s | %8s %8s\n",
      "size", "raw TCP (s)", "obtrusiveness(s)", "ratio", "migration (s)",
      "MB", "paper", "ours", "paper", "ours", "paper", "ours", "paper",
      "ours");
  std::printf("  %s\n", std::string(84, '-').c_str());

  std::ofstream metrics_out("BENCH_metrics.json", std::ios::trunc);
  std::vector<obs::SpanRecord> spans;

  bool shape_ok = true;
  double prev_ratio = 1e9;
  for (const Row& row : kPaper) {
    // The migrating slave holds half the training set.
    const auto slave_bytes =
        static_cast<std::size_t>(row.data_mb * 1e6 / 2.0);
    const double raw = raw_tcp_seconds(slave_bytes);
    const mpvm::MigrationStats s =
        migrate_once(row.data_mb, metrics_out, spans);
    const double ratio = s.obtrusiveness() / raw;
    std::printf(
        "  %-6.1f | %8.2f %8.2f | %8.2f %8.2f | %6.2f %6.2f | %8.2f %8.2f\n",
        row.data_mb, row.paper_raw_tcp, raw, row.paper_obtrusiveness,
        s.obtrusiveness(), row.paper_ratio, ratio, row.paper_migration,
        s.migration_time());
    shape_ok = shape_ok && raw <= s.obtrusiveness() &&
               s.obtrusiveness() <= s.migration_time();
    // The headline shape: the ratio falls toward 1 as size grows.
    shape_ok = shape_ok && ratio <= prev_ratio + 0.05;
    prev_ratio = ratio;
  }
  std::printf(
      "\n  Shape check (raw<=obtrusiveness<=migration; ratio decreasing "
      "toward 1): %s\n",
      shape_ok ? "PASS" : "FAIL");
  std::printf("  metrics: wrote BENCH_metrics.json\n");

  obs::TraceAnalytics ta(spans);
  const bool coverage_ok = ta.migrations() > 0 && ta.coverage_min() >= 0.95;
  std::printf(
      "  analytics: %llu migrations, coverage min %.3f (>= 0.95: %s), "
      "%llu traces skipped\n",
      static_cast<unsigned long long>(ta.migrations()), ta.coverage_min(),
      coverage_ok ? "PASS" : "FAIL",
      static_cast<unsigned long long>(ta.traces_skipped()));
  {
    std::ofstream f("BENCH_analytics.json", std::ios::trunc);
    ta.write_json(f, "table2",
                  coverage_ok ? "\"gates\": {\"coverage_limit\": 0.95, "
                                "\"pass\": true}"
                              : "\"gates\": {\"coverage_limit\": 0.95, "
                                "\"pass\": false}");
    std::printf("  analytics: wrote BENCH_analytics.json\n");
  }

  bench::write_trace_json(spans, "BENCH_trace.json");
  const bool audit_ok = bench::audit_spans(spans);
  return audit_ok && shape_ok && coverage_ok ? 0 : 1;
}
