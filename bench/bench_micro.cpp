// Ablation A6 — micro-benchmarks of the substrate (google-benchmark).
//
// These measure the *implementation* (host-machine performance of the
// simulator and library), not 1994 virtual time: event throughput of the
// DES engine, pack/unpack rates of the message buffers, mailbox matching,
// and end-to-end simulated message round-trips per host-second.
#include <benchmark/benchmark.h>

#include "apps/opt/network.hpp"
#include "pvm/system.hpp"

namespace {
using namespace cpe;

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i)
      eng.schedule_at(static_cast<double>(i % 100), [] {});
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(10'000)->Arg(100'000);

void BM_CoroutineSpawnResume(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      auto body = [](sim::Engine* e) -> sim::Co<void> {
        co_await sim::Delay(*e, 1.0);
        co_await sim::Delay(*e, 1.0);
      };
      sim::spawn(eng, body(&eng));
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineSpawnResume)->Arg(1'000)->Arg(10'000);

void BM_BufferPackDoubleXdr(benchmark::State& state) {
  const std::vector<double> data(static_cast<std::size_t>(state.range(0)),
                                 3.14);
  for (auto _ : state) {
    pvm::Buffer b(pvm::Encoding::kDefault);
    b.pk_double(data);
    benchmark::DoNotOptimize(b.bytes());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size() * 8));
}
BENCHMARK(BM_BufferPackDoubleXdr)->Arg(1'000)->Arg(100'000);

void BM_BufferPackDoubleRaw(benchmark::State& state) {
  const std::vector<double> data(static_cast<std::size_t>(state.range(0)),
                                 3.14);
  for (auto _ : state) {
    pvm::Buffer b(pvm::Encoding::kRaw);
    b.pk_double(data);
    benchmark::DoNotOptimize(b.bytes());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size() * 8));
}
BENCHMARK(BM_BufferPackDoubleRaw)->Arg(1'000)->Arg(100'000);

void BM_BufferRoundTripFloat(benchmark::State& state) {
  const std::vector<float> data(static_cast<std::size_t>(state.range(0)),
                                1.5f);
  std::vector<float> out(data.size());
  for (auto _ : state) {
    pvm::Buffer b;
    b.pk_float(data);
    b.upk_float(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size() * 4));
}
BENCHMARK(BM_BufferRoundTripFloat)->Arg(10'000);

void BM_MailboxMatch(benchmark::State& state) {
  sim::Engine eng;
  for (auto _ : state) {
    pvm::Mailbox box(eng);
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i)
      box.push(pvm::Message(pvm::Tid::make(0, 1), pvm::Tid::make(1, 1),
                            i % 7, std::make_shared<const pvm::Buffer>()));
    int taken = 0;
    while (box.try_take(pvm::kAny, 3)) ++taken;
    benchmark::DoNotOptimize(taken);
    while (box.try_take(pvm::kAny, pvm::kAny)) ++taken;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MailboxMatch)->Arg(1'000);

void BM_SimulatedPingPong(benchmark::State& state) {
  // How many simulated PVM round-trips per wall-second the library sustains.
  for (auto _ : state) {
    sim::Engine eng;
    net::Network net(eng);
    os::Host h1(eng, net, os::HostConfig("h1"));
    os::Host h2(eng, net, os::HostConfig("h2"));
    pvm::PvmSystem vm(eng, net);
    vm.add_host(h1);
    vm.add_host(h2);
    const int rounds = static_cast<int>(state.range(0));
    vm.register_program("ping", [rounds](pvm::Task& t) -> sim::Co<void> {
      for (int i = 0; i < rounds; ++i) {
        t.initsend().pk_int(i);
        co_await t.send(pvm::Tid::make(1, 1), 1);
        co_await t.recv(pvm::kAny, 2);
      }
    });
    vm.register_program("pong", [rounds](pvm::Task& t) -> sim::Co<void> {
      for (int i = 0; i < rounds; ++i) {
        pvm::Message m = co_await t.recv(pvm::kAny, 1);
        t.initsend().pk_int(i);
        co_await t.send(m.src, 2);
      }
    });
    auto body = [&]() -> sim::Proc {
      co_await vm.spawn("pong", 1, "h2");
      co_await vm.spawn("ping", 1, "h1");
    };
    sim::spawn(eng, body());
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatedPingPong)->Arg(200);

void BM_OptGradientRealMath(benchmark::State& state) {
  sim::Rng rng(1);
  const opt::ExemplarSet set =
      opt::ExemplarSet::synthesize(static_cast<std::size_t>(state.range(0)),
                                   rng);
  const opt::Network net(1);
  std::vector<float> grad(opt::Network::weight_count());
  for (auto _ : state) {
    std::fill(grad.begin(), grad.end(), 0.0f);
    benchmark::DoNotOptimize(net.accumulate_gradient(set, grad));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OptGradientRealMath)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
