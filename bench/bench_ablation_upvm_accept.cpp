// Ablation A4 — the ULP accept path: the paper's slow implementation vs the
// optimized one the authors promise (§4.2.3).
//
// "Given that the obtrusiveness cost is 1.67 seconds, it is surprising that
// the migration cost is 6.88 seconds ... We attribute this to the current
// implementation of the ULP accepting mechanism ... We are currently working
// on optimizing the entire migration mechanism."  This bench quantifies what
// that optimization is worth.
#include "bench/bench_util.hpp"

namespace {
using namespace cpe;

upvm::UlpMigrationStats run(bool optimized) {
  bench::Testbed tb;
  upvm::UpvmOptions opts;
  opts.optimized_accept = optimized;
  upvm::Upvm upvm(tb.vm, opts);
  sim::spawn(tb.eng, upvm.start());
  tb.eng.run();
  opt::SpmdOpt app(upvm, bench::paper_opt_config(0.6));
  auto driver = [&]() -> sim::Proc {
    (void)co_await app.run();
    upvm.shutdown();
  };
  sim::spawn(tb.eng, driver());
  upvm::UlpMigrationStats stats;
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(tb.eng, 0.5);
    stats = co_await upvm.migrate_ulp(opt::SpmdOpt::slave_inst(1), tb.host2);
  };
  sim::spawn(tb.eng, gs());
  tb.eng.run();
  return stats;
}
}  // namespace

int main() {
  bench::print_header(
      "Ablation A4: ULP accept path, paper's implementation vs optimized",
      "§4.2.3 — migration 6.88 s vs obtrusiveness 1.67 s at 0.6 MB");

  const auto slow = run(false);
  const auto fast = run(true);
  std::printf("  %-28s obtrusiveness %6.2f s   migration %6.2f s\n",
              "paper's accept (upkbyte)", slow.obtrusiveness(),
              slow.migration_time());
  std::printf("  %-28s obtrusiveness %6.2f s   migration %6.2f s\n",
              "optimized accept", fast.obtrusiveness(),
              fast.migration_time());
  std::printf(
      "\n  The optimization removes %.2f s of migration latency; "
      "obtrusiveness is untouched (it is a source-side cost).\n",
      slow.migration_time() - fast.migration_time());
  std::printf("  Shape check: %s\n",
              (fast.migration_time() < slow.migration_time() - 3.0 &&
               std::abs(fast.obtrusiveness() - slow.obtrusiveness()) < 0.1)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
