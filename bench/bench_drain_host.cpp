// Drain-a-host under concurrent migration (DESIGN.md §12).
//
// The owner reclaims a workstation running 32 tasks (2 MB images) and the
// Global Scheduler must evacuate all of them onto 8 idle peers.  Before the
// concurrency work a drain was strictly serial: one migration at a time,
// evacuation time O(n * per-migration cost).  With the admission controller
// the GS runs up to k streams at once — pair-lane conflict detection fans
// them out across destinations — and the wall-clock cost of vacating the
// host drops accordingly.
//
// Two acceptance gates, straight from the issue:
//
//  * evacuation time at k=4 must be at most 0.45x the k=1 (serial) time on
//    the same worknet — concurrency must actually buy wall-clock;
//  * with incremental (pre-copy) transfer on, the median per-task freeze
//    window must be at most 0.25x the full-image stop-and-copy median —
//    the task-visible stall becomes O(dirty residue), not O(image).
//
// One run per k in {1, 2, 4, 8} with stop-and-copy, plus one k=4 run with
// pre-copy enabled for the freeze-window comparison.  Everything lands in
// BENCH_drain.json (evacuation-time-vs-k, freeze-window histograms) and the
// merged span trace is replayed through the TraceAuditor.
//
// On top of the original two gates, the analytics layer (DESIGN.md §14)
// adds three more: the pre-copy freeze-window p99 (fine-geometry
// histograms) must shrink alongside the median, the per-migration
// critical-path attribution must cover >= 95% of every migration's wall
// span, and an SLO rule armed on the in-flight gauge proves the admission
// cap held throughout.  The stage table lands in BENCH_analytics.json.
#include "bench/bench_util.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "gs/scheduler.hpp"
#include "mpvm/mpvm.hpp"
#include "obs/analytics.hpp"
#include "obs/trace_analytics.hpp"

namespace {
using namespace cpe;

constexpr int kTasks = 32;
constexpr int kDests = 8;
constexpr std::size_t kImageBytes = 2'000'000;
constexpr double kHorizon = 240.0;

struct RunResult {
  int k = 1;
  bool precopy = false;
  double evacuation = 0;  ///< reclaim order -> last restart_done
  int migrated = 0;
  std::vector<double> freeze;  ///< per-task freeze windows, seconds
  std::size_t precopy_bytes = 0;
  std::size_t residue_bytes = 0;
  std::uint64_t admission_waits = 0;
  double freeze_p99 = 0;  ///< fine-geometry (2^(1/8)) histogram estimate
  std::uint64_t slo_violations = 0;  ///< armed inflight-cap rule; expect 0
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

RunResult run_one(int k, bool precopy, std::vector<obs::SpanRecord>& spans) {
  sim::Engine eng;
  // A modern-ish LAN: at the paper's 10 Mb/s the 64 MB of image bytes alone
  // would dwarf every fixed cost and k would only amortize the wire.
  net::Network net(eng, net::EthernetParams{.bandwidth_bps = 100e6});
  os::Host src(eng, net, os::HostConfig("src", "HPPA", 1.0));
  std::vector<std::unique_ptr<os::Host>> dests;
  dests.reserve(kDests);
  for (int i = 1; i <= kDests; ++i)
    dests.push_back(std::make_unique<os::Host>(
        eng, net, os::HostConfig("d" + std::to_string(i), "HPPA", 1.0)));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(src);
  for (auto& d : dests) vm.add_host(*d);
  mpvm::Mpvm mpvm(vm);
  mpvm::MpvmTuning tun;
  tun.precopy = precopy;
  tun.dirty_rate_bps = 0.1e6 * 8;  // compute-bound tasks re-dirty slowly
  mpvm.set_tuning(tun);

  gs::GsPolicy pol;
  pol.max_concurrent_migrations = k;
  pol.placement = load::PolicyKind::kNone;  // drain only, no rebalancing
  gs::GlobalScheduler gs(vm, pol);
  gs.attach(mpvm);

  // Live rollups over the drain, with the admission cap armed as an SLO:
  // the in-flight gauge must never be seen above k.  A violation here means
  // the admission controller leaked a slot, not that the bench is slow.
  obs::AnalyticsOptions aopt;
  aopt.window = 5.0;
  obs::Analytics an(eng, vm.metrics(), aopt);
  an.track_gauge("mpvm.migrations.inflight");
  an.track_counter("gs.migration.admission_waits");
  an.track_histogram("mpvm.freeze_window");
  an.add_rule("value(mpvm.migrations.inflight) <= " + std::to_string(k));
  an.start(kHorizon);

  vm.register_program("worker", [](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = kImageBytes;
    co_await t.compute(10'000.0);  // outlives the bench: pure drain victim
  });

  double vacate_at = 0;
  auto driver = [&eng, &vm, &gs, &src, &vacate_at]() -> sim::Proc {
    co_await vm.spawn("worker", kTasks, "src");
    vacate_at = eng.now();
    os::OwnerEvent ev(eng.now(), src, os::OwnerAction::kReclaim, 1);
    gs.on_owner_event(ev);
  };
  const obs::MetricsSnapshot before = vm.metrics().snapshot();
  sim::spawn(eng, driver());
  gs.start_heartbeat(kHorizon);
  eng.run_until(kHorizon);
  const obs::MetricsSnapshot after = vm.metrics().snapshot();

  RunResult out;
  out.k = k;
  out.precopy = precopy;
  for (const mpvm::MigrationStats& m : mpvm.history()) {
    if (!m.ok || m.from_host != "src") continue;
    ++out.migrated;
    out.evacuation = std::max(out.evacuation, m.restart_done - vacate_at);
    out.freeze.push_back(m.freeze_window());
    out.precopy_bytes += m.precopy_bytes;
    out.residue_bytes += m.residue_bytes;
  }
  // Snapshot diff, not a live counter read: each run owns a fresh registry
  // today, but the diff stays correct if runs ever share one.
  out.admission_waits = after.delta(before, "gs.migration.admission_waits");
  out.slo_violations = an.violations().size();
  obs::Histogram fine(obs::TraceAnalytics::kFineGeometry);
  for (double w : out.freeze) fine.record(w);
  out.freeze_p99 = fine.quantile(0.99);
  bench::collect_spans(vm, spans);
  return out;
}

void print_row(const RunResult& r) {
  std::printf("  %-4d %-10s %-12.2f %-10d %-10.0f %-10.0f %-10.0f %llu\n",
              r.k, r.precopy ? "precopy" : "stop-copy", r.evacuation,
              r.migrated, percentile(r.freeze, 0.5) * 1e3,
              percentile(r.freeze, 0.9) * 1e3,
              r.freeze.empty()
                  ? 0.0
                  : *std::max_element(r.freeze.begin(), r.freeze.end()) * 1e3,
              static_cast<unsigned long long>(r.admission_waits));
}

void json_row(std::ofstream& f, const RunResult& r, bool last) {
  f << "    {\"k\": " << r.k << ", \"precopy\": "
    << (r.precopy ? "true" : "false")
    << ", \"evacuation_s\": " << r.evacuation
    << ", \"migrated\": " << r.migrated
    << ", \"freeze_p50_ms\": " << percentile(r.freeze, 0.5) * 1e3
    << ", \"freeze_p90_ms\": " << percentile(r.freeze, 0.9) * 1e3
    << ", \"freeze_max_ms\": "
    << (r.freeze.empty()
            ? 0.0
            : *std::max_element(r.freeze.begin(), r.freeze.end()) * 1e3)
    << ", \"freeze_p99_ms\": " << r.freeze_p99 * 1e3
    << ", \"precopy_bytes\": " << r.precopy_bytes
    << ", \"residue_bytes\": " << r.residue_bytes
    << ", \"admission_waits\": " << r.admission_waits
    << ", \"slo_violations\": " << r.slo_violations << "}"
    << (last ? "" : ",") << "\n";
}
}  // namespace

int main() {
  bench::print_header(
      "Drain a host: 32 tasks x 2 MB evacuated onto 8 peers, k streams",
      "robustness extension — admission-controlled concurrent migration "
      "(scoped flush + residual forwarding) vs the serial drain, and "
      "pre-copy freeze windows vs full-image stop-and-copy (DESIGN.md "
      "§12)");

  std::printf("  %-4s %-10s %-12s %-10s %-10s %-10s %-10s %s\n", "k", "mode",
              "evac(s)", "migrated", "frz p50ms", "frz p90ms", "frz max",
              "waits");
  std::vector<obs::SpanRecord> spans;
  std::vector<RunResult> results;
  for (int k : {1, 2, 4, 8}) {
    results.push_back(run_one(k, /*precopy=*/false, spans));
    print_row(results.back());
  }
  results.push_back(run_one(/*k=*/4, /*precopy=*/true, spans));
  print_row(results.back());

  const RunResult& serial = results[0];
  const RunResult& k4 = results[2];
  const RunResult& pre = results.back();

  // Gate 1: completeness — every drain moved all 32 tasks off the host.
  bool complete = true;
  for (const RunResult& r : results) complete = complete && r.migrated == kTasks;

  // Gate 2: k=4 evacuates in at most 0.45x the serial wall-clock.
  const double speedup_ratio =
      serial.evacuation > 0 ? k4.evacuation / serial.evacuation : 1.0;
  const bool speedup_ok = speedup_ratio <= 0.45;

  // Gate 3: pre-copy median freeze at most 0.25x the stop-and-copy median.
  const double p50_stop = percentile(k4.freeze, 0.5);
  const double p50_pre = percentile(pre.freeze, 0.5);
  const double freeze_ratio = p50_stop > 0 ? p50_pre / p50_stop : 1.0;
  const bool freeze_ok = freeze_ratio <= 0.25;

  // Gate 4 (analytics): the TAIL must shrink too, not just the median — a
  // pre-copy that stalls one unlucky task for a full image copy would pass
  // the p50 gate and fail this one.  p99 from the fine-geometry histograms,
  // so the estimate error (+9.05% each side) cannot flip the ratio by more
  // than ~1.2x; 0.50 leaves ~2x headroom over the measured ratio.
  const double freeze_p99_ratio =
      k4.freeze_p99 > 0 ? pre.freeze_p99 / k4.freeze_p99 : 1.0;
  const bool freeze_p99_ok = freeze_p99_ratio <= 0.50;

  // Gate 5 (analytics): the armed inflight-cap SLO never fired.
  std::uint64_t slo_violations = 0;
  for (const RunResult& r : results) slo_violations += r.slo_violations;
  const bool slo_ok = slo_violations == 0;

  const bool shapes =
      complete && speedup_ok && freeze_ok && freeze_p99_ok && slo_ok;
  std::printf(
      "\n  Shape check (all drains complete; evac k=4/k=1 = %.3f <= 0.45; "
      "precopy/stop-copy median freeze = %.3f <= 0.25; p99 freeze = %.3f "
      "<= 0.50; inflight-cap SLO violations = %llu): %s\n",
      speedup_ratio, freeze_ratio, freeze_p99_ratio,
      static_cast<unsigned long long>(slo_violations),
      shapes ? "PASS" : "FAIL");

  {
    std::ofstream f("BENCH_drain.json", std::ios::trunc);
    f << "{\n"
      << "  \"bench\": \"drain_host\",\n"
      << "  \"tasks\": " << kTasks << ",\n"
      << "  \"dests\": " << kDests << ",\n"
      << "  \"image_bytes\": " << kImageBytes << ",\n"
      << "  \"runs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i)
      json_row(f, results[i], i + 1 == results.size());
    f << "  ],\n"
      << "  \"gates\": {\"speedup_ratio\": " << speedup_ratio
      << ", \"speedup_limit\": 0.45"
      << ", \"freeze_ratio\": " << freeze_ratio
      << ", \"freeze_limit\": 0.25"
      << ", \"freeze_p99_ratio\": " << freeze_p99_ratio
      << ", \"freeze_p99_limit\": 0.50"
      << ", \"pass\": " << (shapes ? "true" : "false") << "}\n"
      << "}\n";
    std::printf("  results: wrote BENCH_drain.json\n");
  }

  // Critical-path attribution over every migration in all five runs; the
  // coverage gate fails the bench if the stage spans ever stop accounting
  // for >= 95% of each migration's wall span.
  obs::TraceAnalytics ta(spans);
  const bool coverage_ok =
      ta.migrations() > 0 && ta.coverage_min() >= 0.95;
  std::printf(
      "  analytics: %llu migrations, coverage min %.3f (>= 0.95: %s), "
      "%llu traces skipped\n",
      static_cast<unsigned long long>(ta.migrations()), ta.coverage_min(),
      coverage_ok ? "PASS" : "FAIL",
      static_cast<unsigned long long>(ta.traces_skipped()));
  {
    std::ofstream f("BENCH_analytics.json", std::ios::trunc);
    std::ostringstream extra;
    extra << "\"slo\": {\"rules\": " << results.size()
          << ", \"violations\": " << slo_violations << ", \"flights\": 0},\n"
          << "  \"gates\": {\"coverage_limit\": 0.95"
          << ", \"freeze_p99_ratio\": " << freeze_p99_ratio
          << ", \"freeze_p99_limit\": 0.50, \"pass\": "
          << (coverage_ok && freeze_p99_ok && slo_ok ? "true" : "false")
          << "}";
    ta.write_json(f, "drain_host", extra.str());
    std::printf("  analytics: wrote BENCH_analytics.json\n");
  }

  bench::write_trace_json(spans, "BENCH_drain_trace.json");
  const bool audit_ok = bench::audit_spans(spans);
  return audit_ok && shapes && coverage_ok ? 0 : 1;
}
