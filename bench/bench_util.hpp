// Shared scaffolding for the table/figure reproduction benches.
//
// Every bench builds the paper's testbed — two HP 9000/720-class
// workstations on a 10 Mb/s Ethernet — runs the experiment in virtual time,
// and prints the paper's reported numbers next to the measured ones.
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include <vector>

#include "apps/opt/adm_opt.hpp"
#include "apps/opt/opt_app.hpp"
#include "apps/opt/spmd_opt.hpp"
#include "gs/scheduler.hpp"
#include "mpvm/mpvm.hpp"
#include "net/tcp.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace cpe::bench {

/// The paper's testbed: "a quiet system of two HP series 9000/720
/// workstations connected by a 10Mb/sec Ethernet" (§4.0).
struct Testbed {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};

  Testbed() {
    vm.add_host(host1);
    vm.add_host(host2);
  }
};

/// The paper's PVM_opt configuration at a given training-set size: one
/// master + 2 slaves, master co-located with slave 1 (§4.0).
inline opt::OptConfig paper_opt_config(double data_mb) {
  opt::OptConfig cfg;
  cfg.data_bytes = static_cast<std::size_t>(data_mb * 1e6);
  cfg.nslaves = 2;
  const calib::OptWorkload w{};
  cfg.iterations =
      data_mb > 2.0 ? w.iterations_large : w.iterations_small;
  cfg.real_math = false;  // bench scale: modelled gradients, real messages
  cfg.master_host = "host1";
  cfg.slave_hosts = {"host1", "host2"};
  return cfg;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Paper reference: %s\n\n", paper.c_str());
}

inline void print_row_check(const char* name, double paper, double measured) {
  const double dev = paper != 0 ? (measured - paper) / paper * 100.0 : 0.0;
  std::printf("  %-34s paper %8.2f s   measured %8.2f s   (%+5.1f%%)\n",
              name, paper, measured, dev);
}

/// Append one metrics snapshot from `vm` to an already-open JSONL stream.
/// Benches that rebuild the testbed per row (fresh registry each time) call
/// this once per row; the file accumulates one snapshot per configuration.
inline void append_metrics_jsonl(pvm::PvmSystem& vm, std::ostream& os) {
  vm.metrics().write_jsonl(os);
}

/// Write the VM's full metrics state to `path` (truncating).  Every table
/// bench leaves a machine-readable BENCH_metrics.json companion this way —
/// the bench trajectory CI smoke (ci/check.sh bench) regresses against it.
inline void write_metrics_json(pvm::PvmSystem& vm, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  vm.metrics().write_jsonl(f);
  std::printf("  metrics: wrote %s\n", path.c_str());
}

/// Drain the VM's span tracer into `out`, re-basing span and trace ids past
/// anything already collected.  Benches that rebuild the testbed per row get
/// a fresh tracer (ids restart at 1) each time; naive concatenation would
/// collide ids and corrupt the auditor's parent index.
inline void collect_spans(pvm::PvmSystem& vm,
                          std::vector<obs::SpanRecord>& out) {
  obs::SpanId span_base = 0;
  obs::TraceId trace_base = 0;
  for (const auto& s : out) {
    span_base = std::max(span_base, s.span_id);
    trace_base = std::max(trace_base, s.trace_id);
  }
  for (const obs::SpanRecord& s : vm.spans().spans()) {
    obs::SpanRecord r = s;
    r.span_id += span_base;
    if (r.parent_span != 0) r.parent_span += span_base;
    r.trace_id += trace_base;
    out.push_back(std::move(r));
  }
}

/// Write collected spans to `path` as Chrome trace-event JSON (Perfetto /
/// chrome://tracing loadable).  Every table/fault/failover bench leaves a
/// BENCH_trace.json companion this way; ci/check.sh bench validates it.
inline void write_trace_json(const std::vector<obs::SpanRecord>& spans,
                             const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  obs::write_chrome_trace(spans, f);
  std::printf("  trace: wrote %s (%zu spans)\n", path.c_str(), spans.size());
}

/// Run the trace auditor over collected spans; print any violations and
/// return true when the trace is clean.  Benches exit nonzero on failure so
/// the CI bench/audit modes catch protocol regressions.
inline bool audit_spans(const std::vector<obs::SpanRecord>& spans) {
  obs::TraceAuditor auditor(spans);
  const auto violations = auditor.audit();
  if (violations.empty()) {
    std::printf("  audit: %zu spans, all invariants hold\n", spans.size());
    return true;
  }
  std::printf("  audit: %zu violation(s):\n%s", violations.size(),
              obs::TraceAuditor::format(violations).c_str());
  return false;
}

}  // namespace cpe::bench
