// Fault-recovery bench — the price of crash-safety, measured.
//
// Two scenarios on a three-host worknet:
//  (a) GS retry: a worker is ordered off host1; the chosen destination
//      crashes mid-state-transfer; the GS blacklists it, backs off, and
//      retries against the next-best host.  Reported: vacate latency (order
//      to successful restart) with and without the crash — the delta is the
//      failed attempt plus the backoff.
//  (b) Checkpoint recovery: a watched worker's host crashes; the heartbeat
//      notices and restarts it from its last checkpoint.  Reported: total
//      runtime against the crash-free baseline for a sweep of checkpoint
//      intervals — the overhead splits into periodic freezes (short
//      intervals) vs re-executed work (long intervals).
#include "bench/bench_util.hpp"

#include "fault/fault.hpp"
#include "mpvm/checkpoint.hpp"

namespace {
using namespace cpe;

struct VacateResult {
  double vacate_latency = 0;  ///< GS order -> successful restart
  double runtime = 0;         ///< worker completion time
  std::size_t journal_failures = 0;
};

VacateResult run_vacate(bool crash_destination,
                        std::vector<obs::SpanRecord>& spans) {
  bench::Testbed tb;
  os::Host host3(tb.eng, tb.net, os::HostConfig("host3", "HPPA", 1.0));
  tb.vm.add_host(host3);
  mpvm::Mpvm mpvm(tb.vm);
  fault::FaultPlan plan(tb.eng);
  gs::GlobalScheduler gs(tb.vm);
  gs.attach(mpvm);
  host3.cpu().set_external_jobs(2);  // host2 is the natural first pick

  VacateResult out;
  tb.vm.register_program("worker", [&](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 2'000'000;
    co_await t.compute(120.0);
    out.runtime = tb.eng.now();
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await tb.vm.spawn("worker", 1, "host1");
    if (crash_destination)
      plan.crash_at_stage(mpvm, tb.host2, v[0],
                          mpvm::MigrationStage::kFlushed, 0.5);
    co_await sim::Delay(tb.eng, 10.0);
    gs.vacate(tb.host1);
  };
  sim::spawn(tb.eng, driver());
  tb.eng.run();
  if (!mpvm.history().empty())
    out.vacate_latency = mpvm.history().front().restart_done - 10.0;
  for (const gs::Decision& d : gs.journal())
    if (!d.ok) ++out.journal_failures;
  bench::collect_spans(tb.vm, spans);
  return out;
}

struct RecoveryResult {
  double runtime = 0;
  double redo = 0;
};

RecoveryResult run_checkpoint_recovery(double interval, bool crash,
                                       std::vector<obs::SpanRecord>& spans) {
  bench::Testbed tb;
  os::Host server(tb.eng, tb.net, os::HostConfig("ckptsrv", "HPPA", 1.0));
  tb.vm.add_host(server);
  mpvm::Mpvm mpvm(tb.vm);
  mpvm::CheckpointOptions opts;
  opts.interval = interval;
  mpvm::Checkpointer ckpt(tb.vm, server, opts);
  fault::FaultPlan plan(tb.eng);
  gs::GlobalScheduler gs(tb.vm);
  gs.attach(mpvm);
  gs.attach(ckpt);

  RecoveryResult out;
  tb.vm.register_program("worker", [&](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 500'000;
    co_await t.compute(150.0);
    out.runtime = tb.eng.now();
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await tb.vm.spawn("worker", 1, "host1");
    ckpt.watch(v[0]);
  };
  sim::spawn(tb.eng, driver());
  if (crash) plan.crash_at(tb.host1, 50.0);
  gs.start_heartbeat(400.0);
  tb.eng.run();
  if (!ckpt.vacate_history().empty())
    out.redo = ckpt.vacate_history().front().redo_work;
  bench::collect_spans(tb.vm, spans);
  return out;
}
}  // namespace

int main() {
  bench::print_header(
      "Fault recovery: GS retry and checkpoint restart under host crashes",
      "robustness extension — the paper's worknet premise (privately owned "
      "workstations) made unannounced host loss the operating condition");

  std::vector<obs::SpanRecord> spans;
  const VacateResult clean = run_vacate(false, spans);
  const VacateResult crashed = run_vacate(true, spans);
  std::printf("  %-34s vacate latency %7.2f s   runtime %7.1f s\n",
              "vacate, destination healthy", clean.vacate_latency,
              clean.runtime);
  std::printf(
      "  %-34s vacate latency %7.2f s   runtime %7.1f s   (%zu journalled "
      "failures)\n",
      "vacate, destination crashes", crashed.vacate_latency, crashed.runtime,
      crashed.journal_failures);
  std::printf("  retry overhead (failed attempt + backoff): %.2f s\n\n",
              crashed.vacate_latency - clean.vacate_latency);

  const RecoveryResult base = run_checkpoint_recovery(30.0, false, spans);
  std::printf("  %-34s runtime %7.1f s\n", "no crash (baseline)",
              base.runtime);
  bool shapes = crashed.vacate_latency > clean.vacate_latency &&
                crashed.journal_failures > 0;
  for (double interval : {10.0, 25.0, 60.0}) {
    const RecoveryResult r = run_checkpoint_recovery(interval, true, spans);
    std::printf(
        "  crash at 50 s, ckpt every %4.0f s   runtime %7.1f s   redo %5.1f "
        "s\n",
        interval, r.runtime, r.redo);
    // With interval 60 no checkpoint exists yet at 50 s: the run restarts
    // from scratch and redo approaches the full 50 s of consumed work.
    shapes = shapes && r.runtime > base.runtime && r.redo <= interval + 1.0;
  }
  std::printf(
      "\n  Shape check (crash vacate slower than clean vacate and "
      "journalled; crashed runs finish; lost work bounded by the checkpoint "
      "interval): %s\n",
      shapes ? "PASS" : "FAIL");
  bench::write_trace_json(spans, "BENCH_trace.json");
  const bool audit_ok = bench::audit_spans(spans);
  return audit_ok && shapes ? 0 : 1;
}
