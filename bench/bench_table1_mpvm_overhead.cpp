// Table 1 — PVM vs. MPVM, "showing the effect of any possible overhead
// during normal (no migration) execution" (§4.1.1).
//
// The paper ran PVM_opt on the 9 MB training set under stock PVM and under
// MPVM and measured 198 s in both cases: the per-call overhead (re-entrancy
// flags, tid re-mapping, the re-implemented pvm_recv) is invisible at this
// message granularity.  We run the identical task programs both ways.
#include "bench/bench_util.hpp"

namespace {

double run_once(bool under_mpvm, std::vector<cpe::obs::SpanRecord>& spans) {
  cpe::bench::Testbed tb;
  std::optional<cpe::mpvm::Mpvm> mpvm;
  if (under_mpvm) mpvm.emplace(tb.vm);
  cpe::opt::PvmOpt app(tb.vm, cpe::bench::paper_opt_config(9.0));
  cpe::opt::OptResult result;
  auto driver = [&]() -> cpe::sim::Proc { result = co_await app.run(); };
  cpe::sim::spawn(tb.eng, driver());
  tb.eng.run();
  cpe::bench::collect_spans(tb.vm, spans);
  return result.runtime();
}

}  // namespace

int main() {
  cpe::bench::print_header(
      "Table 1: PVM vs MPVM quiet-case runtime (PVM_opt, 9 MB training set)",
      "PVM 198 s, MPVM 198 s — \"the performance of MPVM is identical to "
      "that of PVM\"");

  std::vector<cpe::obs::SpanRecord> spans;
  const double pvm = run_once(false, spans);
  const double mpvm = run_once(true, spans);
  cpe::bench::print_row_check("PVM_opt on stock PVM", 198.0, pvm);
  cpe::bench::print_row_check("PVM_opt on MPVM", 198.0, mpvm);
  std::printf(
      "\n  MPVM overhead: %+0.4f s (%.4f%%) — the paper reports it as not "
      "measurable.\n",
      mpvm - pvm, (mpvm - pvm) / pvm * 100.0);
  const bool shape_ok = mpvm >= pvm && (mpvm - pvm) / pvm < 0.01;
  std::printf("  Shape check: %s\n",
              shape_ok ? "PASS (overhead present but under 1%)" : "FAIL");
  // A quiet run roots no migration traces; the exported file documents that
  // (and the audit confirms no protocol span leaked into quiet execution).
  cpe::bench::write_trace_json(spans, "BENCH_trace.json");
  const bool audit_ok = cpe::bench::audit_spans(spans);
  return audit_ok && shape_ok ? 0 : 1;
}
