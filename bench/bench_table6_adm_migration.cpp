// Table 6 — ADMopt obtrusiveness (== migration) cost vs data size (§4.3.2,
// §4.3.3).
//
// The global scheduler withdraws one slave mid-run; its exemplars are
// repartitioned onto the remaining slave.  The measured time runs from the
// event signal at the withdrawing slave to its receipt of the master's
// all-slaves-finished message; because ADM has no restart stage, migration
// cost equals obtrusiveness — and because the withdrawing slave divides its
// data among the others, "it will essentially be the last slave to finish".
#include "bench/bench_util.hpp"

namespace {
using namespace cpe;

struct Row {
  double data_mb;
  double paper_migration;
};
constexpr Row kPaper[] = {{0.6, 1.75},  {4.2, 4.42},  {5.8, 5.46},
                          {9.8, 9.96},  {13.5, 12.41}, {20.8, 21.69}};

double withdraw_once(double data_mb, std::vector<obs::SpanRecord>& spans) {
  bench::Testbed tb;
  opt::AdmOptConfig cfg;
  cfg.opt = bench::paper_opt_config(data_mb);
  opt::AdmOpt app(tb.vm, cfg);
  auto driver = [&]() -> sim::Proc { (void)co_await app.run(); };
  sim::spawn(tb.eng, driver());
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(tb.eng, 1.0);
    app.post_event(0, adm::AdmEventKind::kWithdraw);
  };
  sim::spawn(tb.eng, gs());
  tb.eng.run();
  CPE_ASSERT(app.redistributions().size() == 1);
  bench::collect_spans(tb.vm, spans);
  return app.redistributions()[0].migration_time();
}
}  // namespace

int main() {
  bench::print_header(
      "Table 6: ADMopt obtrusiveness (= migration) cost vs data size",
      "1.75 s at 0.6 MB rising to 21.69 s at 20.8 MB");

  std::printf("  %-6s | %10s | %10s\n", "size", "paper (s)", "ours (s)");
  std::printf("  %s\n", std::string(34, '-').c_str());
  bool shape_ok = true;
  double prev = 0;
  std::vector<obs::SpanRecord> spans;
  for (const Row& row : kPaper) {
    const double t = withdraw_once(row.data_mb, spans);
    std::printf("  %-6.1f | %10.2f | %10.2f\n", row.data_mb,
                row.paper_migration, t);
    shape_ok = shape_ok && t > prev;  // monotone in data size
    prev = t;
  }
  std::printf(
      "\n  Shape check (monotone growth; ADM slower than MPVM per byte "
      "moved): %s\n",
      shape_ok ? "PASS" : "FAIL");
  bench::write_trace_json(spans, "BENCH_trace.json");
  const bool audit_ok = bench::audit_spans(spans);
  return audit_ok && shape_ok ? 0 : 1;
}
