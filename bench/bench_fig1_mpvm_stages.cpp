// Figure 1 — the stages of MPVM migration (§2.1).
//
// The paper's figure is a protocol diagram: migration event, message
// flushing, VP state transfer to the skeleton, restart.  This bench runs one
// real migration (a 4.2 MB PVM_opt slave) and prints the measured timeline
// of exactly those stages, from the protocol's own trace.
#include "bench/bench_util.hpp"

int main() {
  using namespace cpe;
  bench::print_header(
      "Figure 1: MPVM migration stage timeline",
      "stages: migration event -> message flushing -> VP state transfer -> "
      "restart");

  bench::Testbed tb;
  mpvm::Mpvm mpvm(tb.vm);
  opt::PvmOpt app(tb.vm, bench::paper_opt_config(4.2));
  auto driver = [&]() -> sim::Proc { (void)co_await app.run(); };
  sim::spawn(tb.eng, driver());
  mpvm::MigrationStats stats;
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(tb.eng, 1.0);
    stats = co_await mpvm.migrate(app.slave_tid(0), tb.host2);
  };
  sim::spawn(tb.eng, gs());
  tb.eng.run();

  const double t0 = stats.event_time;
  std::printf("  t=%7.3f s  stage 1: migration event (GS -> mpvmd on %s)\n",
              0.0, stats.from_host.c_str());
  std::printf(
      "  t=%7.3f s  ....... SIGMIGRATE delivered, task frozen mid-burst\n",
      stats.frozen_time - t0);
  std::printf(
      "  t=%7.3f s  stage 2: message flushing complete (all tasks acked; "
      "senders to VP1 blocked)\n",
      stats.flush_done - t0);
  std::printf(
      "  t=%7.3f s  stage 3: state transfer complete (%zu bytes to the "
      "skeleton over TCP)  <- obtrusiveness %.3f s\n",
      stats.transfer_done - t0, stats.state_bytes, stats.obtrusiveness());
  std::printf(
      "  t=%7.3f s  stage 4: restart (re-enrolled on %s, new tid broadcast, "
      "senders unblocked)  <- migration cost %.3f s\n",
      stats.restart_done - t0, stats.to_host.c_str(),
      stats.migration_time());

  std::printf("\n  Protocol trace (category 'mpvm'):\n");
  for (const auto& r : tb.vm.trace().by_category("mpvm"))
    std::printf("    t=%9.6f  %s\n", r.t, r.text.c_str());
  return 0;
}
