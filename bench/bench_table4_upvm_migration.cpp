// Table 4 — UPVM obtrusiveness and migration cost at 0.6 MB (§4.2.2-4.2.3).
//
// One slave ULP (holding 0.3 MB of exemplars) migrates from host1 to host2
// while SPMD_opt runs.  The paper measured obtrusiveness 1.67 s but a
// migration cost of 6.88 s — the authors call the gap "surprising" and blame
// the unoptimized ULP accept path (state upk'd via pvm_upkbyte, buffers
// re-registered one at a time).  Both numbers are reproduced; the optimized
// accept is bench_ablation_upvm_accept.
#include "bench/bench_util.hpp"

namespace {
using namespace cpe;
}

int main() {
  bench::print_header(
      "Table 4: UPVM obtrusiveness and migration cost (0.6 MB)",
      "obtrusiveness 1.67 s, migration 6.88 s");

  bench::Testbed tb;
  upvm::Upvm upvm(tb.vm);
  sim::spawn(tb.eng, upvm.start());
  tb.eng.run();
  opt::SpmdOpt app(upvm, bench::paper_opt_config(0.6));
  auto driver = [&]() -> sim::Proc {
    (void)co_await app.run();
    upvm.shutdown();
  };
  sim::spawn(tb.eng, driver());

  upvm::UlpMigrationStats stats;
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(tb.eng, 0.5);
    // Slave 1 is ULP 2, co-resident with the master on host1.
    stats = co_await upvm.migrate_ulp(opt::SpmdOpt::slave_inst(1), tb.host2);
  };
  sim::spawn(tb.eng, gs());
  tb.eng.run();

  bench::print_row_check("obtrusiveness", 1.67, stats.obtrusiveness());
  bench::print_row_check("migration cost", 6.88, stats.migration_time());
  std::printf("\n  state moved: %zu bytes (ULP image + queued buffers)\n",
              stats.state_bytes);
  const bool shape_ok =
      stats.migration_time() > 2.5 * stats.obtrusiveness();
  std::printf(
      "  Shape check (migration >> obtrusiveness, the paper's anomaly): "
      "%s\n",
      shape_ok ? "PASS" : "FAIL");
  std::vector<obs::SpanRecord> spans;
  bench::collect_spans(tb.vm, spans);
  bench::write_trace_json(spans, "BENCH_trace.json");
  const bool audit_ok = bench::audit_spans(spans);
  return audit_ok && shape_ok ? 0 : 1;
}
