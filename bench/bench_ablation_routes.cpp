// Ablation A7 — PVM message routing: default (via the daemons) vs the
// direct task-to-task TCP route.
//
// Real PVM 3 offers pvm_setopt(PvmRoute, PvmRouteDirect) for exactly this
// trade-off: the default route pays per-fragment daemon turnarounds and two
// extra local-socket hops; the direct route pays one connection setup per
// pair, then streams at TCP goodput.  Measured here: bulk point-to-point
// transfers, small-message round-trip latency, and the full Opt run.
#include "bench/bench_util.hpp"

namespace {
using namespace cpe;

double bulk_transfer(bool direct, std::size_t bytes) {
  bench::Testbed tb;
  double start = -1, delivered = -1;
  tb.vm.register_program("dst", [&](pvm::Task& t) -> sim::Co<void> {
    co_await t.recv(pvm::kAny, 1);
    delivered = tb.eng.now();
  });
  tb.vm.register_program("src", [&, direct, bytes](pvm::Task& t)
                             -> sim::Co<void> {
    t.set_direct_route(direct);
    t.initsend().pk_double(std::vector<double>(bytes / 8, 0.0));
    start = tb.eng.now();
    co_await t.send(pvm::Tid::make(1, 1), 1);
  });
  auto body = [&]() -> sim::Proc {
    co_await tb.vm.spawn("dst", 1, "host2");
    co_await tb.vm.spawn("src", 1, "host1");
  };
  sim::spawn(tb.eng, body());
  tb.eng.run();
  return delivered - start;
}

double pingpong_rtt(bool direct, int rounds) {
  bench::Testbed tb;
  double rtt_total = -1;
  tb.vm.register_program("pong", [&](pvm::Task& t) -> sim::Co<void> {
    if (direct) t.set_direct_route(true);
    for (int i = 0; i < rounds; ++i) {
      pvm::Message m = co_await t.recv(pvm::kAny, 1);
      t.initsend().pk_int(i);
      co_await t.send(m.src, 2);
    }
  });
  tb.vm.register_program("ping", [&](pvm::Task& t) -> sim::Co<void> {
    if (direct) t.set_direct_route(true);
    const double start = tb.eng.now();
    for (int i = 0; i < rounds; ++i) {
      t.initsend().pk_int(i);
      co_await t.send(pvm::Tid::make(1, 1), 1);
      co_await t.recv(pvm::kAny, 2);
    }
    rtt_total = tb.eng.now() - start;
  });
  auto body = [&]() -> sim::Proc {
    co_await tb.vm.spawn("pong", 1, "host2");
    co_await tb.vm.spawn("ping", 1, "host1");
  };
  sim::spawn(tb.eng, body());
  tb.eng.run();
  return rtt_total / rounds;
}
}  // namespace

int main() {
  bench::print_header(
      "Ablation A7: PVM default route (via pvmds) vs PvmRouteDirect",
      "PVM 3 feature; the daemon route is what the paper's transfers use");

  for (std::size_t kb : {8u, 100u, 1000u}) {
    const double dflt = bulk_transfer(false, kb * 1000);
    const double direct = bulk_transfer(true, kb * 1000);
    std::printf(
        "  bulk %4zu kB:   default %7.4f s   direct %7.4f s   (%.2fx)\n",
        kb, dflt, direct, dflt / direct);
  }
  const double rtt_default = pingpong_rtt(false, 50);
  const double rtt_direct = pingpong_rtt(true, 50);
  std::printf(
      "  4 B round-trip: default %7.4f s   direct %7.4f s   (%.2fx)\n",
      rtt_default, rtt_direct, rtt_default / rtt_direct);
  std::printf(
      "\n  Shape check (direct wins on bulk bandwidth and on latency): %s\n",
      (bulk_transfer(true, 1'000'000) < bulk_transfer(false, 1'000'000) &&
       rtt_direct < rtt_default)
          ? "PASS"
          : "FAIL");
  return 0;
}
