#include "fault/fault.hpp"

namespace cpe::fault {

void FaultPlan::record(std::string what) {
  injected_.emplace_back(eng_->now(), std::move(what));
}

void FaultPlan::crash_at(os::Host& host, sim::Time t) {
  eng_->schedule_at(t, [this, &host] {
    if (!host.up()) return;
    host.crash();
    record("crash " + host.name());
  });
}

void FaultPlan::recover_at(os::Host& host, sim::Time t) {
  eng_->schedule_at(t, [this, &host] {
    if (host.up()) return;
    host.recover();
    record("recover " + host.name());
  });
}

void FaultPlan::freeze_at(os::Host& host, sim::Time t, sim::Time duration) {
  CPE_EXPECTS(duration > 0);
  eng_->schedule_at(t, [this, &host] {
    if (!host.up() || host.frozen()) return;
    host.freeze();
    record("freeze " + host.name());
  });
  eng_->schedule_at(t + duration, [this, &host] {
    if (!host.frozen()) return;
    host.unfreeze();
    record("unfreeze " + host.name());
  });
}

void FaultPlan::loss_window(net::DatagramService& svc, sim::Time t,
                            sim::Time duration, double p) {
  CPE_EXPECTS(duration > 0);
  CPE_EXPECTS(p >= 0 && p <= 1);
  const double before = svc.params().loss_probability;
  eng_->schedule_at(t, [this, &svc, p] {
    svc.set_loss_probability(p);
    record("loss window opens (p=" + std::to_string(p) + ")");
  });
  eng_->schedule_at(t + duration, [this, &svc, before] {
    svc.set_loss_probability(before);
    record("loss window closes");
  });
}

void FaultPlan::partition_window(net::Ethernet& ether,
                                 std::span<os::Host* const> island,
                                 sim::Time t, sim::Time duration) {
  CPE_EXPECTS(duration > 0);
  CPE_EXPECTS(!island.empty());
  // Each window gets its own group id so overlapping partitions of
  // different islands stay distinct.
  const int group = ++partition_groups_;
  std::vector<os::Host*> hosts(island.begin(), island.end());
  for (os::Host* h : hosts) CPE_EXPECTS(h != nullptr);
  eng_->schedule_at(t, [this, &ether, hosts, group] {
    std::string names;
    for (os::Host* h : hosts) {
      ether.set_partition_group(h->node(), group);
      names += (names.empty() ? "" : ",") + h->name();
    }
    record("partition opens: {" + names + "} isolated");
  });
  eng_->schedule_at(t + duration, [this, &ether, hosts] {
    for (os::Host* h : hosts) ether.set_partition_group(h->node(), 0);
    record("partition heals");
  });
}

void FaultPlan::flap_links(net::Ethernet& ether,
                           std::span<os::Host* const> island, sim::Time t,
                           sim::Time down, sim::Time period, sim::Time until) {
  CPE_EXPECTS(down > 0);
  CPE_EXPECTS(period > down);
  CPE_EXPECTS(!island.empty());
  // One group id for the whole flap train: the same island goes down and
  // up repeatedly, it never overlaps itself.
  const int group = ++partition_groups_;
  std::vector<os::Host*> hosts(island.begin(), island.end());
  for (os::Host* h : hosts) CPE_EXPECTS(h != nullptr);
  int cycle = 0;
  for (sim::Time open = t; open < until; open += period, ++cycle) {
    eng_->schedule_at(open, [this, &ether, hosts, group, cycle] {
      for (os::Host* h : hosts) ether.set_partition_group(h->node(), group);
      record("flap " + std::to_string(cycle) + ": links down");
    });
    eng_->schedule_at(open + down, [this, &ether, hosts, cycle] {
      for (os::Host* h : hosts) ether.set_partition_group(h->node(), 0);
      record("flap " + std::to_string(cycle) + ": links up");
    });
  }
}

void FaultPlan::adversary_window(net::Network& net, sim::Time t,
                                 sim::Time duration,
                                 net::AdversaryParams adv) {
  CPE_EXPECTS(duration > 0);
  const net::AdversaryParams before = net.adversary();
  eng_->schedule_at(t, [this, &net, adv] {
    net.set_adversary(adv);
    record("adversary window opens (dup=" +
           std::to_string(adv.duplicate_probability) + ", reorder=" +
           std::to_string(adv.reorder_probability) + ", corrupt=" +
           std::to_string(adv.corrupt_probability) + ", burst=" +
           std::to_string(adv.burst_probability) + ")");
  });
  eng_->schedule_at(t + duration, [this, &net, before] {
    net.set_adversary(before);
    record("adversary window closes");
  });
}

void FaultPlan::trigger_at(sim::Time t, std::string label,
                           std::function<void()> fn) {
  CPE_EXPECTS(fn != nullptr);
  eng_->schedule_at(t, [this, label = std::move(label),
                        fn = std::move(fn)] {
    fn();
    record(label);
  });
}

void FaultPlan::crash_at_stage(mpvm::Mpvm& m, os::Host& host, pvm::Tid task,
                               mpvm::MigrationStage stage,
                               sim::Time extra_delay) {
  auto armed = std::make_shared<bool>(true);
  m.add_stage_observer([this, &host, task, stage, extra_delay, armed](
                           pvm::Tid who, mpvm::MigrationStage reached) {
    if (!*armed || who.raw() != task.raw() || reached != stage) return;
    *armed = false;
    auto fire = [this, &host, stage] {
      if (!host.up()) return;
      host.crash();
      record("crash " + host.name() + " at migration stage " +
             std::string(mpvm::to_string(stage)));
    };
    if (extra_delay <= 0)
      fire();
    else
      eng_->schedule_in(extra_delay, fire);
  });
}

void FaultPlan::fail_skeleton_spawns(mpvm::Mpvm& m, int n) {
  CPE_EXPECTS(n >= 0);
  auto left = std::make_shared<int>(n);
  m.set_skeleton_spawn_hook([this, left](pvm::Tid task, os::Host& dst) {
    if (*left <= 0) return true;
    --*left;
    record("skeleton spawn for " + task.str() + " on " + dst.name() +
           " fails");
    return false;
  });
}

void FaultPlan::random_crash_recover(std::span<os::Host* const> hosts,
                                     sim::Time horizon, sim::Time mean_up,
                                     sim::Time mean_down) {
  CPE_EXPECTS(mean_up > 0 && mean_down > 0);
  for (os::Host* h : hosts) {
    CPE_EXPECTS(h != nullptr);
    sim::Time t = eng_->now() + rng_.exponential(mean_up);
    while (t < horizon) {
      crash_at(*h, t);
      t += rng_.exponential(mean_down);
      // The matching reboot is always scheduled — possibly past the horizon
      // — so no host stays down forever.
      recover_at(*h, t);
      t += rng_.exponential(mean_up);
    }
  }
}

}  // namespace cpe::fault
