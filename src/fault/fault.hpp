// Fault injection: deterministic, seeded schedules of host crashes,
// transient freezes, network loss windows, and protocol-point failures.
//
// The paper's systems were built for a worknet of privately owned
// workstations — machines that get switched off, wedged, or unplugged
// without warning.  A FaultPlan scripts exactly those events against the
// simulated worknet so the recovery machinery (MPVM rollback, UPVM move
// aborts, ADM implicit withdraw, GS retry and checkpoint recovery) can be
// exercised reproducibly: the same seed and schedule yield the same event
// order every run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mpvm/mpvm.hpp"
#include "net/network.hpp"
#include "os/host.hpp"
#include "sim/random.hpp"

namespace cpe::fault {

/// One fault as it was actually injected (simulation time + description).
struct FaultRecord {
  sim::Time t = 0;
  std::string what;

  FaultRecord() = default;
  FaultRecord(sim::Time t_, std::string what_)
      : t(t_), what(std::move(what_)) {}
};

/// A deterministic schedule of injectable faults.  All triggers are armed
/// up front (absolute simulation times or protocol points); the plan then
/// records every fault it actually fires in injected().
class FaultPlan {
 public:
  explicit FaultPlan(sim::Engine& eng, std::uint64_t seed = 1)
      : eng_(&eng), rng_(seed) {}
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // -- Time-triggered faults -------------------------------------------------
  /// Crash `host` at absolute time `t` (no-op if it is already down then).
  void crash_at(os::Host& host, sim::Time t);
  /// Reboot `host` at absolute time `t` (no-op if it is up then).
  void recover_at(os::Host& host, sim::Time t);
  /// Freeze `host` at `t` for `duration` (transient hang: nothing is lost).
  void freeze_at(os::Host& host, sim::Time t, sim::Time duration);
  /// Datagram loss window: between `t` and `t + duration` every fragment is
  /// dropped with probability `p` (models a congested or flaky segment).
  void loss_window(net::DatagramService& svc, sim::Time t, sim::Time duration,
                   double p);
  /// Network partition window: between `t` and `t + duration` the hosts in
  /// `island` are cut off from everyone else (traffic within the island and
  /// within the remainder still flows).  Restores full connectivity at the
  /// end.  This is the split-brain scenario for a replicated coordinator.
  void partition_window(net::Ethernet& ether,
                        std::span<os::Host* const> island, sim::Time t,
                        sim::Time duration);
  /// Link flapping: the repeatable form of partition_window.  The hosts in
  /// `island` lose connectivity for `down` seconds out of every `period`,
  /// first outage at `t`, repeating until `until` (the final heal is always
  /// scheduled, so the link never stays down forever).  Sweeps use this to
  /// model a flaky switch port; the one-shot partition_window stays for
  /// single-outage scenarios.
  void flap_links(net::Ethernet& ether, std::span<os::Host* const> island,
                  sim::Time t, sim::Time down, sim::Time period,
                  sim::Time until);
  /// Adversarial window: between `t` and `t + duration` the fabric injects
  /// duplication, bounded reordering, burst delay and payload corruption as
  /// configured by `adv` (restores whatever profile was active at arming
  /// time when it closes).  DESIGN.md §7 lists each axis and its defense.
  void adversary_window(net::Network& net, sim::Time t, sim::Time duration,
                        net::AdversaryParams adv);
  /// Run an arbitrary labelled action at time `t` and record it.  For fault
  /// scenarios this plan has no dedicated trigger for (e.g. crashing
  /// whichever host currently leads a replicated scheduler).
  void trigger_at(sim::Time t, std::string label, std::function<void()> fn);

  // -- Protocol-point faults -------------------------------------------------
  /// Crash `host` at the instant the migration of `task` reaches `stage`
  /// (synchronously inside the stage notification when `extra_delay` is 0,
  /// else that much later).  Fires at most once.
  void crash_at_stage(mpvm::Mpvm& m, os::Host& host, pvm::Tid task,
                      mpvm::MigrationStage stage, sim::Time extra_delay = 0);
  /// Make the next `n` MPVM skeleton spawns fail (exec failure on the
  /// destination); each failed spawn rolls its migration back.
  void fail_skeleton_spawns(mpvm::Mpvm& m, int n);

  // -- Stochastic faults (seeded, reproducible) ------------------------------
  /// Give each host alternating exponentially distributed up/down periods
  /// until `horizon`: crash after ~mean_up of uptime, reboot after
  /// ~mean_down of downtime.  The whole schedule is drawn from the plan's
  /// seed at call time, so it is identical across runs.
  void random_crash_recover(std::span<os::Host* const> hosts,
                            sim::Time horizon, sim::Time mean_up,
                            sim::Time mean_down);

  /// Every fault fired so far, in injection order.
  [[nodiscard]] const std::vector<FaultRecord>& injected() const noexcept {
    return injected_;
  }

 private:
  void record(std::string what);

  sim::Engine* eng_;
  sim::Rng rng_;
  std::vector<FaultRecord> injected_;
  int partition_groups_ = 0;
};

}  // namespace cpe::fault
