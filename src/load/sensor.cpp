#include "load/sensor.hpp"

#include <cmath>

namespace cpe::load {

LoadSensor::LoadSensor(os::Host& host, obs::MetricsRegistry& metrics,
                       SensorPolicy policy)
    : host_(&host), policy_(policy) {
  CPE_EXPECTS(policy.sample_interval > 0);
  CPE_EXPECTS(policy.time_constant > 0);
  gauge_ = &metrics.gauge("load.index." + host.name());
  // Event-driven samples: the CPU tells us the moment the runnable set
  // changes, so the index tracks arrivals/departures between polls.
  host.cpu().set_load_observer([this](double v) { ingest(v); });
  sample();
}

LoadSensor::~LoadSensor() {
  host_->cpu().set_load_observer(nullptr);
}

void LoadSensor::ingest(double v) {
  if (!std::isfinite(v)) {
    // Count the poisoned sample through the Gauge's NaN accounting and
    // keep the last good index.
    gauge_->set(v);
    return;
  }
  const sim::Time now = host_->engine().now();
  if (!seen_) {
    index_ = v;
    seen_ = true;
  } else {
    const double w = std::exp(-(now - last_) / policy_.time_constant);
    index_ = w * index_ + (1.0 - w) * v;
  }
  instant_ = v;
  last_ = now;
  ++samples_;
  gauge_->set(index_);
}

void LoadSensor::sample() { ingest(host_->cpu().load()); }

LoadEntry LoadSensor::entry() const {
  return LoadEntry(host_->name(), index_, instant_,
                   host_->cpu().external_jobs(),
                   host_->cpu().external_jobs() > 0, host_->up(), last_);
}

void LoadSensor::start(sim::Time until) {
  auto loop = [](LoadSensor* self, sim::Time horizon) -> sim::Co<void> {
    sim::Engine& eng = self->host_->engine();
    while (eng.now() < horizon) {
      co_await sim::Delay(eng, self->policy_.sample_interval);
      // A frozen/crashed host's sensor reports nothing: its entry ages out
      // of every peer's map instead of advertising a stale zero load.
      if (self->host_->up() && !self->host_->frozen()) self->sample();
    }
  };
  poll_ = sim::launch(host_->engine(), loop(this, until));
}

}  // namespace cpe::load
