#include "load/placement.hpp"

#include <algorithm>
#include <cmath>

namespace cpe::load {

const char* to_string(PolicyKind k) noexcept {
  switch (k) {
    case PolicyKind::kNone: return "none";
    case PolicyKind::kThreshold: return "threshold";
    case PolicyKind::kBestFit: return "best_fit";
    case PolicyKind::kDestinationSwap: return "destination_swap";
    case PolicyKind::kWorkSteal: return "work_steal";
  }
  return "?";
}

PolicyKind policy_kind_from(const std::string& name) noexcept {
  for (const PolicyKind k :
       {PolicyKind::kNone, PolicyKind::kBestFit, PolicyKind::kDestinationSwap,
        PolicyKind::kWorkSteal})
    if (name == to_string(k)) return k;
  return PolicyKind::kThreshold;
}

namespace {

/// Estimated wall-clock cost of one MPVM-style migration under the model:
/// skeleton start + image copy + restart bookkeeping.  Used by BestFit to
/// refuse moves that cannot amortize within the cost horizon.
double migration_cost_s(const PlacementParams& p) {
  if (p.costs == nullptr) return 0;
  const calib::MpvmCosts& c = p.costs->mpvm;
  return c.skeleton_start + p.image_bytes * 8.0 / c.state_copy_bps +
         c.reenroll + c.restart_fixed;
}

/// The load figure the index-based policies rank by: the smoothed index
/// plus the host's queueing pressure scaled by PlacementParams::
/// queue_weight.  Both terms default to 0 for batch workloads, so the
/// historical decisions are unchanged unless a service scenario opts in.
double eff_index(const HostLoadView& v, const PlacementParams& p) {
  return v.index + p.queue_weight * v.outstanding;
}

/// The legacy central policy, reproduced decision-for-decision: trigger on
/// the *live* load, rank destinations by load() + external_jobs() (the
/// pre-existing double count is part of the contract), and keep the
/// original "+1.0 lighter" guard.  No action cap, no staleness filter, no
/// index smoothing — this is the byte-identical compatibility mode.
class ThresholdPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "threshold";
  }

  [[nodiscard]] std::vector<PlacementAction> decide(
      const std::vector<HostLoadView>& views, const PlacementParams& p,
      sim::Rng&) const override {
    std::vector<PlacementAction> out;
    if (p.load_threshold == std::numeric_limits<double>::infinity())
      return out;
    for (const HostLoadView& v : views) {
      if (!v.up) continue;
      if (v.instant <= p.load_threshold) continue;
      const HostLoadView* best = nullptr;
      double best_rank = std::numeric_limits<double>::infinity();
      for (const HostLoadView& w : views) {
        if (w.host == v.host) continue;
        if (!w.up || !w.eligible) continue;
        if (!v.host->migration_compatible_with(*w.host)) continue;
        if (w.dest_rank < best_rank) {
          best_rank = w.dest_rank;
          best = &w;
        }
      }
      if (best == nullptr || best->instant + 1.0 >= v.instant) continue;
      out.emplace_back(v.host, best->host, v.instant, best->instant);
    }
    return out;
  }
};

class BestFitPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "best_fit";
  }

  [[nodiscard]] std::vector<PlacementAction> decide(
      const std::vector<HostLoadView>& views, const PlacementParams& p,
      sim::Rng&) const override {
    std::vector<PlacementAction> out;
    // "Overloaded" means above the configured threshold, or — when no
    // threshold is configured (infinity) — above the mean fresh index, so
    // the policy is useful out of the box.
    double thresh = p.load_threshold;
    if (!std::isfinite(thresh)) {
      double sum = 0;
      int n = 0;
      for (const HostLoadView& v : views)
        if (v.up && v.age <= p.staleness_bound) {
          sum += eff_index(v, p);
          ++n;
        }
      thresh = n > 0 ? sum / static_cast<double>(n) : 0;
    }
    std::vector<const HostLoadView*> sources;
    for (const HostLoadView& v : views)
      if (v.up && v.age <= p.staleness_bound && v.movable > 0 &&
          eff_index(v, p) > thresh)
        sources.push_back(&v);
    std::sort(sources.begin(), sources.end(),
              [&p](const HostLoadView* a, const HostLoadView* b) {
                const double ea = eff_index(*a, p);
                const double eb = eff_index(*b, p);
                return ea != eb ? ea > eb : a->host->name() < b->host->name();
              });
    // Track the load shifted by this round's earlier actions so several
    // overloaded hosts don't all dump onto the same destination.
    std::unordered_map<const os::Host*, double> delta;
    const double cost = migration_cost_s(p);
    for (const HostLoadView* src : sources) {
      if (static_cast<int>(out.size()) >= p.max_actions) break;
      const HostLoadView* best = nullptr;
      double best_eff = std::numeric_limits<double>::infinity();
      for (const HostLoadView& w : views) {
        if (w.host == src->host) continue;
        if (!w.up || !w.eligible || w.age > p.staleness_bound) continue;
        if (!src->host->migration_compatible_with(*w.host)) continue;
        const double eff = eff_index(w, p) + delta[w.host];
        if (eff < best_eff) {
          best_eff = eff;
          best = &w;
        }
      }
      if (best == nullptr) continue;
      // Post-move the source drops ~1 unit, the destination gains ~1: the
      // move is real improvement only when the gap clears 1 + margin, and
      // worth paying for only when the gain amortizes the transfer cost.
      const double gain = eff_index(*src, p) + delta[src->host] - best_eff - 1.0;
      if (gain < p.improvement_margin) continue;
      if (cost > 0 && gain * p.cost_horizon < cost) continue;
      out.emplace_back(src->host, best->host, eff_index(*src, p),
                       eff_index(*best, p));
      delta[src->host] -= 1.0;
      delta[best->host] += 1.0;
    }
    return out;
  }
};

class DestinationSwapPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "destination_swap";
  }

  [[nodiscard]] std::vector<PlacementAction> decide(
      const std::vector<HostLoadView>& views, const PlacementParams& p,
      sim::Rng& rng) const override {
    std::vector<PlacementAction> out;
    std::vector<const HostLoadView*> live;
    for (const HostLoadView& v : views)
      if (v.up && v.age <= p.staleness_bound) live.push_back(&v);
    // Random disjoint pairs (Fisher–Yates), each examined independently —
    // the policy's whole point is O(1) information per decision.
    for (std::size_t i = 0; i + 1 < live.size(); ++i) {
      const auto j = i + static_cast<std::size_t>(rng.below(live.size() - i));
      std::swap(live[i], live[j]);
    }
    for (std::size_t i = 0; i + 1 < live.size(); i += 2) {
      if (static_cast<int>(out.size()) >= p.max_actions) break;
      const HostLoadView* hot = live[i];
      const HostLoadView* cold = live[i + 1];
      if (eff_index(*cold, p) > eff_index(*hot, p)) std::swap(hot, cold);
      if (hot->movable <= 0 || !cold->eligible) continue;
      if (!hot->host->migration_compatible_with(*cold->host)) continue;
      // Moving one unit narrows the gap by 2; require it to stay positive
      // by the margin on both sides, so the reverse move never qualifies.
      if (eff_index(*hot, p) - eff_index(*cold, p) <
          2.0 + 2.0 * p.improvement_margin)
        continue;
      out.emplace_back(hot->host, cold->host, eff_index(*hot, p),
                       eff_index(*cold, p));
    }
    return out;
  }
};

class WorkStealPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "work_steal";
  }

  [[nodiscard]] std::vector<PlacementAction> decide(
      const std::vector<HostLoadView>& views, const PlacementParams& p,
      sim::Rng&) const override {
    std::vector<PlacementAction> out;
    std::vector<const HostLoadView*> live;
    double sum = 0;
    for (const HostLoadView& v : views) {
      if (!v.up || v.age > p.staleness_bound) continue;
      live.push_back(&v);
      sum += eff_index(v, p);
    }
    if (live.size() < 2) return out;
    const double mean = sum / static_cast<double>(live.size());
    // Coldest hosts first: initiative lies with the underloaded side.
    std::sort(live.begin(), live.end(),
              [&p](const HostLoadView* a, const HostLoadView* b) {
                const double ea = eff_index(*a, p);
                const double eb = eff_index(*b, p);
                return ea != eb ? ea < eb : a->host->name() < b->host->name();
              });
    std::unordered_map<const os::Host*, int> stolen;
    for (const HostLoadView* cold : live) {
      if (static_cast<int>(out.size()) >= p.max_actions) break;
      if (eff_index(*cold, p) >= mean - p.improvement_margin) break;
      if (!cold->eligible) continue;
      const HostLoadView* hot = nullptr;
      for (auto it = live.rbegin(); it != live.rend(); ++it) {
        const HostLoadView* h = *it;
        if (h->host == cold->host) continue;
        if (h->movable - stolen[h->host] <= 0) continue;
        if (!h->host->migration_compatible_with(*cold->host)) continue;
        hot = h;
        break;
      }
      if (hot == nullptr) continue;
      if (eff_index(*hot, p) - eff_index(*cold, p) < 1.0 + p.improvement_margin)
        continue;
      out.emplace_back(hot->host, cold->host, eff_index(*hot, p),
                       eff_index(*cold, p));
      ++stolen[hot->host];
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<PlacementPolicy> make_policy(PolicyKind k) {
  switch (k) {
    case PolicyKind::kNone: return nullptr;
    case PolicyKind::kThreshold: return std::make_unique<ThresholdPolicy>();
    case PolicyKind::kBestFit: return std::make_unique<BestFitPolicy>();
    case PolicyKind::kDestinationSwap:
      return std::make_unique<DestinationSwapPolicy>();
    case PolicyKind::kWorkSteal: return std::make_unique<WorkStealPolicy>();
  }
  return nullptr;
}

// ---- AdmissionController ----------------------------------------------------

bool AdmissionController::would_admit(const std::string& from,
                                      const std::string& to) const {
  if (static_cast<int>(in_flight_.size()) >= max_) return false;
  for (const InFlight& f : in_flight_) {
    if (f.from == from && f.to == to) return false;  // pair lane busy
    if (f.from == to && f.to == from) return false;  // reverse-pair thrash
  }
  return true;
}

std::uint64_t AdmissionController::admit(std::int64_t unit,
                                         const std::string& from,
                                         const std::string& to,
                                         sim::Time now) {
  if (unit_in_flight(unit) || !would_admit(from, to)) {
    ++refusals_;
    return 0;
  }
  const std::uint64_t ticket = next_ticket_++;
  in_flight_.emplace_back(unit, from, to, now, ticket, false);
  return ticket;
}

void AdmissionController::release(std::uint64_t ticket) {
  std::erase_if(in_flight_,
                [ticket](const InFlight& f) { return f.ticket == ticket; });
}

bool AdmissionController::unit_in_flight(std::int64_t unit) const {
  for (const InFlight& f : in_flight_)
    if (f.unit == unit) return true;
  return false;
}

std::vector<AdmissionController::InFlight> AdmissionController::stalled(
    sim::Time now, sim::Time age) const {
  std::vector<InFlight> out;
  for (const InFlight& f : in_flight_)
    if (now - f.since > age) out.push_back(f);
  return out;
}

void AdmissionController::import_adopted(const std::vector<InFlight>& entries,
                                         sim::Time now) {
  std::erase_if(in_flight_, [](const InFlight& f) { return f.adopted; });
  for (const InFlight& e : entries) {
    if (unit_in_flight(e.unit)) continue;  // we already own a stream for it
    in_flight_.emplace_back(e.unit, e.from, e.to,
                            e.since > 0 ? e.since : now, next_ticket_++,
                            true);
  }
}

void AdmissionController::reap_adopted(
    const std::function<bool(std::int64_t)>& still_running) {
  std::erase_if(in_flight_, [&](const InFlight& f) {
    return f.adopted && !still_running(f.unit);
  });
}

}  // namespace cpe::load
