// MOSIX-style load dissemination (DESIGN.md §11.2).
//
// Each host runs one gossip agent: every `gossip_interval` it refreshes its
// own sensor entry, then sends its `vector_cap` freshest entries (itself
// always first) to `fanout` random live peers over *unreliable* datagrams —
// a lost gossip round costs nothing but staleness, so the exchange never
// blocks on a dead peer the way the reliable pvmd transport would.
// Receivers merge by origin stamp: newer wins, and a host's own sensor is
// always authoritative for its own entry.  The result at every host is an
// eventually-consistent partial load map whose entries carry their age; the
// PlacementEngine discounts or drops entries older than its staleness
// bound rather than trusting them.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "load/sensor.hpp"
#include "pvm/system.hpp"
#include "sim/random.hpp"

namespace cpe::load {

struct ExchangePolicy {
  sim::Time gossip_interval = 1.0;
  int fanout = 2;               ///< random peers per round
  std::size_t vector_cap = 16;  ///< freshest entries per gossip datagram
  /// Entries older than this are garbage-collected from the maps (placement
  /// applies its own, usually equal, bound when reading).
  sim::Time staleness_bound = 5.0;
  SensorPolicy sensor;
  std::uint64_t seed = 0x10adf00d;
};

class LoadExchange {
 public:
  LoadExchange(pvm::PvmSystem& vm, ExchangePolicy policy = {});
  LoadExchange(const LoadExchange&) = delete;
  LoadExchange& operator=(const LoadExchange&) = delete;
  /// Unbinds every agent's port (the VM outlives the exchange in tests).
  ~LoadExchange();

  [[nodiscard]] pvm::PvmSystem& vm() const noexcept { return *vm_; }
  [[nodiscard]] const ExchangePolicy& policy() const noexcept {
    return policy_;
  }

  /// Start every sensor poll and gossip loop until `until`.
  void start(sim::Time until);

  /// The sensor running on `host`; nullptr when the host is not in the VM.
  [[nodiscard]] LoadSensor* sensor_on(const os::Host& host) const;

  /// Snapshot of the load map held *at* `at` (name-sorted, own entry
  /// refreshed from the local sensor).  This is what a scheduler hosted on
  /// `at` can actually know without central polling.
  [[nodiscard]] std::vector<LoadEntry> view(const os::Host& at) const;

  /// The entry for `about` in `at`'s map; nullptr when never heard of.
  [[nodiscard]] const LoadEntry* entry_at(const os::Host& at,
                                          const std::string& about) const;

  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t entries_merged() const noexcept {
    return merged_;
  }
  [[nodiscard]] std::uint64_t stale_dropped() const noexcept {
    return stale_dropped_;
  }

 private:
  struct Agent {
    os::Host* host = nullptr;
    std::unique_ptr<LoadSensor> sensor;
    /// Origin host name -> freshest known entry.  std::map: view() order
    /// (and therefore placement order) is deterministic.
    std::map<std::string, LoadEntry> map;
    sim::Rng rng;

    Agent() : rng(0) {}
    Agent(os::Host* host_, std::unique_ptr<LoadSensor> sensor_, sim::Rng rng_)
        : host(host_), sensor(std::move(sensor_)), rng(rng_) {}
  };

  void receive(Agent& agent, const LoadGossip& gossip);
  void gossip_round(Agent& agent);
  [[nodiscard]] sim::Co<void> run_agent(Agent* agent, sim::Time until);

  pvm::PvmSystem* vm_;
  ExchangePolicy policy_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<sim::ProcHandle> loops_;
  obs::Counter* sent_ctr_ = nullptr;
  obs::Counter* merged_ctr_ = nullptr;
  std::uint64_t rounds_ = 0;
  std::uint64_t merged_ = 0;
  std::uint64_t stale_dropped_ = 0;
};

}  // namespace cpe::load
