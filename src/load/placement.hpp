// Pluggable placement policies for the Global Scheduler (DESIGN.md §11.3).
//
// The GS folds whatever it knows about each host — the live CPU reading,
// the gossiped smoothed index and its age, how many movable units sit
// there, blacklist status — into one HostLoadView per host and asks the
// PlacementEngine for (from, to) actions.  Four policies hide behind the
// one interface:
//
//   Threshold       — the legacy central policy, bit-for-bit: any host
//                     whose *live* load exceeds the threshold sheds one
//                     unit to the least-loaded compatible host, guarded by
//                     the original "+1.0 lighter" margin.
//   BestFit         — overloaded-by-index hosts shed to the destination
//                     with the lowest effective index, but only when the
//                     projected gain clears the improvement margin AND
//                     amortizes the calib/costs.hpp migration cost over
//                     `cost_horizon` seconds.
//   DestinationSwap — Avin et al.: random disjoint host pairs; when a
//                     pair's load gap is wide enough, the hot side sheds
//                     one unit to the cold side.  O(1) information per
//                     decision, no global view needed.
//   WorkSteal       — inverted initiative: hosts far *below* the mean pull
//                     one unit from the hottest host.
//
// The engine also owns the anti-thrash hysteresis: every moved unit gets a
// minimum-residency stamp, and policies' improvement margins ensure a move
// that just happened cannot look profitable in reverse.  Violations (a
// unit moved again within its residency window) are counted, and the bench
// acceptance gate requires that count to be zero.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "calib/costs.hpp"
#include "os/host.hpp"
#include "sim/random.hpp"

namespace cpe::load {

enum class PolicyKind : std::uint8_t {
  kNone,       ///< no load balancing (baseline)
  kThreshold,  ///< legacy central threshold (default; byte-identical)
  kBestFit,    ///< least-loaded destination, cost-aware
  kDestinationSwap,  ///< Avin et al. random pairwise swaps
  kWorkSteal,  ///< underloaded hosts pull
};

[[nodiscard]] const char* to_string(PolicyKind k) noexcept;
/// Inverse of to_string; kThreshold for unknown names.
[[nodiscard]] PolicyKind policy_kind_from(const std::string& name) noexcept;

/// Everything the GS knows about one host when it decides.
struct HostLoadView {
  os::Host* host = nullptr;
  double instant = 0;    ///< live cpu().load() right now
  double dest_rank = 0;  ///< legacy destination rank: load() + external_jobs()
  double index = 0;      ///< smoothed load index (gossiped or local)
  sim::Time age = 0;     ///< staleness of `index` (0 when read locally)
  int movable = 0;       ///< movable units (tasks/ULPs/slaves) on the host
  bool up = true;
  bool eligible = true;  ///< usable as a destination (not blacklisted)
  /// Queueing pressure: requests in flight on this host's service workers
  /// (svc::Frontend::outstanding_on, fed in via GlobalScheduler::
  /// set_pressure_source).  Stays 0 for batch workloads, and enters
  /// decisions only scaled by PlacementParams::queue_weight, so the default
  /// configuration is bit-for-bit the pre-svc behaviour.
  double outstanding = 0;

  HostLoadView() noexcept {}
  HostLoadView(os::Host* host_, double instant_, double dest_rank_,
               double index_, sim::Time age_, int movable_, bool up_,
               bool eligible_)
      : host(host_),
        instant(instant_),
        dest_rank(dest_rank_),
        index(index_),
        age(age_),
        movable(movable_),
        up(up_),
        eligible(eligible_) {}
};

/// Coefficient of variation (stddev / mean) of instant load across the up
/// hosts in a view set: THE cluster-imbalance figure.  0 when the cluster
/// is empty or idle.  The GS publishes it as the `gs.load.cv` gauge every
/// monitor tick, which obs::Analytics turns into a windowed series SLO
/// rules (load-CV ceiling) evaluate against.
[[nodiscard]] inline double load_cv(const std::vector<HostLoadView>& views) {
  double sum = 0;
  std::size_t n = 0;
  for (const HostLoadView& v : views)
    if (v.up) {
      sum += v.instant;
      ++n;
    }
  if (n == 0) return 0.0;
  const double mean = sum / static_cast<double>(n);
  if (mean <= 0) return 0.0;
  double var = 0;
  for (const HostLoadView& v : views)
    if (v.up) {
      const double d = v.instant - mean;
      var += d * d;
    }
  var /= static_cast<double>(n);
  return std::sqrt(var) / mean;
}

struct PlacementParams {
  double load_threshold = std::numeric_limits<double>::infinity();
  /// A move must beat the post-move equal-load point by this much.
  double improvement_margin = 0.5;
  /// A unit that moved stays put at least this long (thrash guard).
  sim::Time min_residency = 5.0;
  /// Index entries older than this are ignored by the index-based policies.
  sim::Time staleness_bound = 5.0;
  /// When set, BestFit amortizes the estimated migration cost.
  const calib::CostModel* costs = nullptr;
  double image_bytes = 1.0 * 1024 * 1024;  ///< typical migratable image
  sim::Time cost_horizon = 60.0;  ///< seconds over which a move must pay off
  int max_actions = 4;  ///< per decision round (Threshold is uncapped)
  /// Decision time, for the engine's host-settle filter (0 = disabled).
  sim::Time now = 0;
  /// Load-index units per outstanding request: the index-based policies
  /// rank hosts by `index + queue_weight * outstanding`.  0 (the default)
  /// ignores queueing pressure entirely; Threshold never reads it (its
  /// byte-identical legacy contract predates the service layer).
  double queue_weight = 0;

  PlacementParams() noexcept {}
};

struct PlacementAction {
  os::Host* from = nullptr;
  os::Host* to = nullptr;
  double from_load = 0;  ///< the load figure that triggered the action
  double to_load = 0;

  PlacementAction() noexcept {}
  PlacementAction(os::Host* from_, os::Host* to_, double from_load_,
                  double to_load_)
      : from(from_), to(to_), from_load(from_load_), to_load(to_load_) {}
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual std::vector<PlacementAction> decide(
      const std::vector<HostLoadView>& views, const PlacementParams& p,
      sim::Rng& rng) const = 0;
};

[[nodiscard]] std::unique_ptr<PlacementPolicy> make_policy(PolicyKind k);

/// The GS-resident decision core: one policy plus the hysteresis table.
/// Units are identified by an opaque 64-bit id (the GS namespaces tids,
/// ULP instances and ADM slaves into disjoint ranges).
class PlacementEngine {
 public:
  explicit PlacementEngine(PolicyKind kind = PolicyKind::kThreshold,
                           std::uint64_t seed = 0x9c1ace)
      : rng_(seed) {
    set_policy(kind);
  }
  PlacementEngine(const PlacementEngine&) = delete;
  PlacementEngine& operator=(const PlacementEngine&) = delete;

  void set_policy(PolicyKind kind) {
    kind_ = kind;
    policy_ = make_policy(kind);
  }
  [[nodiscard]] PolicyKind kind() const noexcept { return kind_; }
  [[nodiscard]] const char* name() const noexcept {
    return policy_ ? policy_->name() : "none";
  }

  [[nodiscard]] std::vector<PlacementAction> decide(
      const std::vector<HostLoadView>& views, const PlacementParams& p) {
    if (policy_ == nullptr) return {};
    std::vector<PlacementAction> actions = policy_->decide(views, p, rng_);
    // Host-settle filter (index policies only): a host that just took part
    // in a move has an unsettled smoothed index — the monitor fires exactly
    // when the stale gap looks widest, so acting on either endpoint again
    // before the sensors catch up reverses the move forever (limit cycle).
    // Threshold reads live loads and keeps its byte-identical behaviour.
    if (kind_ != PolicyKind::kThreshold) {
      std::erase_if(actions, [&](const PlacementAction& a) {
        return settling(a.from, p.now) || settling(a.to, p.now);
      });
    }
    return actions;
  }

  // -- Hysteresis -----------------------------------------------------------
  /// May `unit` be rebalanced now?  False (and counted) within its
  /// residency window.
  [[nodiscard]] bool may_move(std::int64_t unit, sim::Time now,
                              sim::Time min_residency) {
    const auto it = last_move_.find(unit);
    if (it != last_move_.end() && now - it->second < min_residency) {
      ++residency_rejections_;
      return false;
    }
    return true;
  }
  /// A rebalance of `unit` completed: stamp it, counting a violation when
  /// it was still inside its window (should never happen — bench gate).
  void record_move(std::int64_t unit, sim::Time now,
                   sim::Time min_residency) {
    const auto it = last_move_.find(unit);
    if (it != last_move_.end() && now - it->second < min_residency)
      ++thrash_violations_;
    last_move_[unit] = now;
  }
  /// A *vacate* moved `unit` (policy-mandated, exempt from the residency
  /// check): restart its window without counting anything.
  void touch(std::int64_t unit, sim::Time now) { last_move_[unit] = now; }

  /// A rebalance was *ordered* between these hosts: both sensors are now
  /// unsettled, so the engine refuses further index-policy actions touching
  /// either endpoint until the window passes.
  void record_settle(const os::Host* a, const os::Host* b, sim::Time now,
                     sim::Time window) {
    if (a != nullptr) settle_until_[a] = now + window;
    if (b != nullptr) settle_until_[b] = now + window;
  }
  [[nodiscard]] bool settling(const os::Host* h, sim::Time now) const {
    const auto it = settle_until_.find(h);
    return it != settle_until_.end() && now < it->second;
  }

  [[nodiscard]] std::uint64_t thrash_violations() const noexcept {
    return thrash_violations_;
  }
  [[nodiscard]] std::uint64_t residency_rejections() const noexcept {
    return residency_rejections_;
  }

 private:
  PolicyKind kind_ = PolicyKind::kThreshold;
  std::unique_ptr<PlacementPolicy> policy_;
  sim::Rng rng_;
  std::unordered_map<std::int64_t, sim::Time> last_move_;
  std::unordered_map<const os::Host*, sim::Time> settle_until_;
  std::uint64_t thrash_violations_ = 0;
  std::uint64_t residency_rejections_ = 0;
};

/// Bounded-concurrency admission for migration streams (DESIGN.md §12).
///
/// The GS takes a ticket here before every migration it orders — vacates
/// and rebalances share the budget — and releases it when the protocol
/// resolves.  Three refusal rules:
///
///   * budget — at most `max_concurrent` streams in flight;
///   * pair conflict — one stream per ordered (from, to) host pair, so k
///     concurrent drains fan out across k destinations instead of herding
///     onto the momentarily least-loaded one;
///   * reverse pair — a stream against an in-flight (to, from) stream is
///     thrash, not balancing, and is refused outright.
///
/// Refusals are cheap: the caller just retries next tick (rebalance) or
/// after a short wait (vacate driver).  In-flight entries are part of the
/// GS's durable state; a failover successor imports them as *adopted*
/// entries so it cannot over-admit while a predecessor's streams still run,
/// and reaps them as those streams resolve.
class AdmissionController {
 public:
  struct InFlight {
    std::int64_t unit = 0;
    std::string from;
    std::string to;
    sim::Time since = 0;
    std::uint64_t ticket = 0;
    bool adopted = false;  ///< imported from a deposed leader's journal

    InFlight() {}
    InFlight(std::int64_t unit_, std::string from_, std::string to_,
             sim::Time since_, std::uint64_t ticket_, bool adopted_)
        : unit(unit_),
          from(std::move(from_)),
          to(std::move(to_)),
          since(since_),
          ticket(ticket_),
          adopted(adopted_) {}
  };

  explicit AdmissionController(int max_concurrent = 4)
      : max_(max_concurrent) {}

  void set_max_concurrent(int k) noexcept { max_ = k; }
  [[nodiscard]] int max_concurrent() const noexcept { return max_; }

  /// Probe only: would a stream from `from` to `to` be admitted right now?
  [[nodiscard]] bool would_admit(const std::string& from,
                                 const std::string& to) const;
  /// Claim a slot; returns 0 on refusal, else a ticket for release().
  [[nodiscard]] std::uint64_t admit(std::int64_t unit, const std::string& from,
                                    const std::string& to, sim::Time now);
  /// The stream behind `ticket` resolved (either way); frees its slot.
  void release(std::uint64_t ticket);

  [[nodiscard]] bool unit_in_flight(std::int64_t unit) const;
  [[nodiscard]] std::size_t active() const noexcept {
    return in_flight_.size();
  }
  [[nodiscard]] const std::vector<InFlight>& in_flight() const noexcept {
    return in_flight_;
  }
  /// Streams in flight longer than `age`: deadlock-watchdog candidates.
  [[nodiscard]] std::vector<InFlight> stalled(sim::Time now,
                                              sim::Time age) const;
  [[nodiscard]] std::uint64_t refusals() const noexcept { return refusals_; }

  /// Failover: replace all adopted entries with a predecessor's in-flight
  /// set (locally owned tickets are kept).
  void import_adopted(const std::vector<InFlight>& entries, sim::Time now);
  /// Drop adopted entries whose migration `still_running` denies — the
  /// predecessor's stream resolved without us ever owning its ticket.
  void reap_adopted(const std::function<bool(std::int64_t)>& still_running);

 private:
  int max_ = 4;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t refusals_ = 0;
  std::vector<InFlight> in_flight_;
};

}  // namespace cpe::load
