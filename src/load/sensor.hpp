// Per-host load sensor: the smoothed "how busy is this workstation" index
// every placement policy consumes (DESIGN.md §11.1).
//
// The raw signal is os::CpuScheduler::load() — runnable application jobs
// plus owner (external) jobs, the same quantity the legacy threshold poll
// read.  The sensor folds it into an exponentially-smoothed index with
// *age-aware* decay: samples arrive both on a fixed poll and event-driven
// (the CPU's load observer fires on every runnable-set change), so the
// smoothing weight is derived from the gap since the previous sample,
//
//   w     = exp(-(t_now - t_last) / time_constant)
//   index = w * index + (1 - w) * sample
//
// which makes the index independent of sampling cadence: a burst of
// event-driven samples in one instant moves it no further than one poll
// would.  Non-finite samples are dropped (and counted by the Gauge), so a
// poisoned sample can never propagate into gossip or placement.
#pragma once

#include <string>

#include "load/load.hpp"
#include "obs/metrics.hpp"
#include "os/host.hpp"

namespace cpe::load {

struct SensorPolicy {
  sim::Time sample_interval = 0.5;  ///< periodic poll between CPU events
  sim::Time time_constant = 5.0;    ///< EWMA tau (seconds of memory)
};

class LoadSensor {
 public:
  LoadSensor(os::Host& host, obs::MetricsRegistry& metrics,
             SensorPolicy policy = {});
  LoadSensor(const LoadSensor&) = delete;
  LoadSensor& operator=(const LoadSensor&) = delete;
  /// Unhooks the CPU load observer: the host outlives the sensor in tests.
  ~LoadSensor();

  [[nodiscard]] os::Host& host() const noexcept { return *host_; }
  [[nodiscard]] const SensorPolicy& policy() const noexcept { return policy_; }

  /// Smoothed load index (0 until the first sample).
  [[nodiscard]] double index() const noexcept { return index_; }
  /// Most recent raw sample (runnable jobs incl. owner jobs).
  [[nodiscard]] double instant() const noexcept { return instant_; }
  [[nodiscard]] sim::Time last_sample() const noexcept { return last_; }
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

  /// Take a sample right now (polling loop and tests call this; the CPU
  /// observer drives it on every runnable-set change).
  void sample();

  /// The sensor's current state as a gossip entry stamped `now`.
  [[nodiscard]] LoadEntry entry() const;

  /// Start the periodic poll until `until` (virtual time).
  void start(sim::Time until);

 private:
  void ingest(double v);

  os::Host* host_;
  SensorPolicy policy_;
  obs::Gauge* gauge_;  ///< "load.index.<host>" in the VM registry
  double index_ = 0;
  double instant_ = 0;
  sim::Time last_ = 0;
  bool seen_ = false;
  std::uint64_t samples_ = 0;
  sim::ProcHandle poll_;
};

}  // namespace cpe::load
