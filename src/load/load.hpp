// Decentralized load sensing and dissemination (DESIGN.md §11).
//
// The paper's Global Scheduler "watches workstation ownership and load";
// the naive reproduction polls every host centrally.  This subsystem
// replaces the poll with the MOSIX recipe: each host runs a LoadSensor
// that folds its CpuScheduler's runnable set into a smoothed load index,
// and a LoadExchange agent that gossips a small vector of the freshest
// entries it knows to a few random peers.  Every host then holds an
// eventually-consistent *partial* load map — stale entries are stamped so
// consumers can discount or drop them — and the GS reads the map local to
// wherever it runs instead of touching every CPU each tick.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace cpe::load {

/// Well-known datagram port of the per-host load-exchange agent.  (pvmds
/// own 1023, the replicated-GS wire owns 1022.)
inline constexpr std::uint16_t kLoadPort = 1021;

/// One host's load as known somewhere on the worknet.  `stamp` is the
/// virtual time the *origin* sensor took the sample; age = now - stamp.
///
/// User-provided constructors (not an aggregate): entries ride inside
/// gossip payloads into send coroutines; see net::Datagram's GCC 12 note.
struct LoadEntry {
  std::string host;        ///< origin host name
  double index = 0;        ///< smoothed load index (sensor EWMA)
  double instant = 0;      ///< raw runnable count at the sample instant
  int external_jobs = 0;   ///< owner jobs in that count
  bool owner_active = false;
  bool up = true;
  sim::Time stamp = 0;     ///< origin sample time

  LoadEntry() noexcept {}
  LoadEntry(std::string host_, double index_, double instant_,
            int external_jobs_, bool owner_active_, bool up_,
            sim::Time stamp_)
      : host(std::move(host_)),
        index(index_),
        instant(instant_),
        external_jobs(external_jobs_),
        owner_active(owner_active_),
        up(up_),
        stamp(stamp_) {}
};

/// Gossip payload: the sender's freshest entries (its own always first).
struct LoadGossip {
  std::string origin;  ///< sending host name
  std::vector<LoadEntry> entries;

  LoadGossip() noexcept {}
  LoadGossip(std::string origin_, std::vector<LoadEntry> entries_)
      : origin(std::move(origin_)), entries(std::move(entries_)) {}
};

/// Wire model of one gossip datagram: a fixed header plus a packed entry
/// (8 B index + 8 B instant + 8 B stamp + 4 B external + 2 B flags + the
/// host name) per vector slot.
inline constexpr std::size_t kGossipHeaderBytes = 16;
inline constexpr std::size_t kGossipEntryFixedBytes = 30;

[[nodiscard]] inline std::size_t gossip_wire_bytes(const LoadGossip& g) {
  std::size_t n = kGossipHeaderBytes + g.origin.size();
  for (const LoadEntry& e : g.entries)
    n += kGossipEntryFixedBytes + e.host.size();
  return n;
}

}  // namespace cpe::load
