#include "load/exchange.hpp"

#include <algorithm>
#include <any>

namespace cpe::load {

LoadExchange::LoadExchange(pvm::PvmSystem& vm, ExchangePolicy policy)
    : vm_(&vm), policy_(policy), rng_(policy.seed) {
  CPE_EXPECTS(policy.gossip_interval > 0);
  CPE_EXPECTS(policy.fanout > 0);
  CPE_EXPECTS(policy.vector_cap > 0);
  CPE_EXPECTS(policy.staleness_bound > 0);
  sent_ctr_ = &vm.metrics().counter("load.gossip.sent");
  merged_ctr_ = &vm.metrics().counter("load.gossip.merged");
  net::DatagramService& dg = vm.network().datagrams();
  for (const auto& d : vm.daemons()) {
    os::Host& h = d->host();
    agents_.push_back(std::make_unique<Agent>(
        &h,
        std::make_unique<LoadSensor>(h, vm.metrics(), policy.sensor),
        rng_.split()));
    Agent* agent = agents_.back().get();
    dg.bind(h.node(), kLoadPort, [this, agent](net::Datagram d_in) {
      const auto* gossip = std::any_cast<LoadGossip>(&d_in.payload);
      if (gossip != nullptr) receive(*agent, *gossip);
    });
  }
}

LoadExchange::~LoadExchange() {
  net::DatagramService& dg = vm_->network().datagrams();
  for (const auto& a : agents_) dg.unbind(a->host->node(), kLoadPort);
}

LoadSensor* LoadExchange::sensor_on(const os::Host& host) const {
  for (const auto& a : agents_)
    if (a->host == &host) return a->sensor.get();
  return nullptr;
}

std::vector<LoadEntry> LoadExchange::view(const os::Host& at) const {
  std::vector<LoadEntry> out;
  for (const auto& a : agents_) {
    if (a->host != &at) continue;
    out.reserve(a->map.size() + 1);
    for (const auto& [name, e] : a->map)
      if (name != at.name()) out.push_back(e);
    out.push_back(a->sensor->entry());  // own view is always live
    std::sort(out.begin(), out.end(),
              [](const LoadEntry& x, const LoadEntry& y) {
                return x.host < y.host;
              });
    break;
  }
  return out;
}

const LoadEntry* LoadExchange::entry_at(const os::Host& at,
                                        const std::string& about) const {
  for (const auto& a : agents_) {
    if (a->host != &at) continue;
    const auto it = a->map.find(about);
    return it == a->map.end() ? nullptr : &it->second;
  }
  return nullptr;
}

void LoadExchange::receive(Agent& agent, const LoadGossip& gossip) {
  const sim::Time now = vm_->engine().now();
  for (const LoadEntry& e : gossip.entries) {
    // A host's own sensor is authoritative for its own entry.
    if (e.host == agent.host->name()) continue;
    if (now - e.stamp > 3.0 * policy_.staleness_bound) {
      ++stale_dropped_;
      continue;
    }
    auto [it, inserted] = agent.map.try_emplace(e.host, e);
    if (!inserted) {
      if (it->second.stamp >= e.stamp) continue;  // we know something newer
      it->second = e;
    }
    ++merged_;
    merged_ctr_->inc();
  }
}

void LoadExchange::gossip_round(Agent& agent) {
  const sim::Time now = vm_->engine().now();
  ++rounds_;

  // Refresh our own entry and age out what nobody has refreshed in a long
  // time (a crashed host's last words should not circulate forever).
  agent.map[agent.host->name()] = agent.sensor->entry();
  std::erase_if(agent.map, [&](const auto& kv) {
    return kv.first != agent.host->name() &&
           now - kv.second.stamp > 3.0 * policy_.staleness_bound;
  });

  // The gossip vector: our own entry first, then the freshest of the rest.
  std::vector<LoadEntry> entries;
  entries.push_back(agent.map[agent.host->name()]);
  std::vector<const LoadEntry*> rest;
  for (const auto& [name, e] : agent.map)
    if (name != agent.host->name()) rest.push_back(&e);
  std::sort(rest.begin(), rest.end(),
            [](const LoadEntry* a, const LoadEntry* b) {
              return a->stamp != b->stamp ? a->stamp > b->stamp
                                          : a->host < b->host;
            });
  for (const LoadEntry* e : rest) {
    if (entries.size() >= policy_.vector_cap) break;
    entries.push_back(*e);
  }

  // Pick `fanout` distinct random live peers.
  std::vector<Agent*> peers;
  for (const auto& a : agents_)
    if (a.get() != &agent && a->host->up()) peers.push_back(a.get());
  const std::size_t sends =
      std::min(static_cast<std::size_t>(policy_.fanout), peers.size());
  for (std::size_t i = 0; i < sends; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(agent.rng.below(peers.size() - i));
    std::swap(peers[i], peers[j]);
    Agent* peer = peers[i];

    LoadGossip g(agent.host->name(), entries);
    net::Datagram d(agent.host->node(), peer->host->node(), kLoadPort,
                    gossip_wire_bytes(g), std::move(g));
    sent_ctr_->inc();
    auto sender = [](net::DatagramService* dg,
                     net::Datagram dgram) -> sim::Co<void> {
      try {
        co_await dg->send_unreliable(std::move(dgram));
      } catch (const net::DeliveryError&) {
        // Local NIC detached mid-round (host crashed): the round is moot.
      }
    };
    sim::spawn(vm_->engine(),
               sender(&vm_->network().datagrams(), std::move(d)));
  }
}

sim::Co<void> LoadExchange::run_agent(Agent* agent, sim::Time until) {
  sim::Engine& eng = vm_->engine();
  // Desynchronize the rounds so 64 hosts don't all transmit on the same
  // instant of every simulated second.
  co_await sim::Delay(eng, agent->rng.uniform() * policy_.gossip_interval);
  while (eng.now() < until) {
    if (agent->host->up() && !agent->host->frozen()) gossip_round(*agent);
    co_await sim::Delay(eng, policy_.gossip_interval);
  }
}

void LoadExchange::start(sim::Time until) {
  for (const auto& a : agents_) {
    a->sensor->start(until);
    loops_.push_back(sim::launch(vm_->engine(), run_agent(a.get(), until)));
  }
}

}  // namespace cpe::load
