// Workstation and process model.
//
// A Host is a workstation on the worknet: an arch tag (migration
// compatibility), a relative CPU speed, a processor-sharing scheduler, and a
// process table.  A Process models a Unix process: a memory image
// (data/heap/stack segments — what MPVM must move), asynchronous signals with
// delivery latency, the "inside the run-time library" re-entrancy guard that
// MPVM's migration protocol honours, and the main program coroutine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "os/cpu.hpp"
#include "sim/wait.hpp"

namespace cpe::os {

using Pid = std::int32_t;

/// Sizes of a process's migratable memory image.  MPVM transfers
/// data+heap+stack+context; the text segment is re-created by exec'ing the
/// same binary on the destination (the "skeleton" process).
struct MemoryImage {
  std::size_t text_bytes = 512 * 1024;
  std::size_t data_bytes = 0;
  std::size_t heap_bytes = 0;
  std::size_t stack_bytes = 64 * 1024;
  std::size_t context_bytes = 4 * 1024;

  [[nodiscard]] std::size_t migratable_bytes() const noexcept {
    return data_bytes + heap_bytes + stack_bytes + context_bytes;
  }
};

enum class Signal : std::uint8_t {
  kMigrate = 1,  ///< SIGMIGRATE: the mpvmd orders this process to move
  kTerm = 2,
  kUsr1 = 3,
  kUsr2 = 4,
};

struct HostConfig {
  std::string name;
  std::string arch = "HPPA";  ///< migration-compatibility class (§3.3)
  double speed = 1.0;         ///< relative to the reference HP 9000/720
  double mflops = 15.0;       ///< sustained FLOP rate for workload models
  std::size_t memory_bytes = 64ull * 1024 * 1024;
  sim::Time signal_latency = 500e-6;  ///< kill(2) to handler entry

  HostConfig() = default;
  explicit HostConfig(std::string name_, std::string arch_ = "HPPA",
                      double speed_ = 1.0)
      : name(std::move(name_)), arch(std::move(arch_)), speed(speed_) {}
};

class Host;

class Process {
 public:
  Process(Host& host, Pid pid, std::string name);
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  [[nodiscard]] Host& host() const noexcept { return *host_; }
  [[nodiscard]] Pid pid() const noexcept { return pid_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }

  [[nodiscard]] MemoryImage& image() noexcept { return image_; }
  [[nodiscard]] const MemoryImage& image() const noexcept { return image_; }

  /// Run the process's main program.  The coroutine is owned by the process;
  /// kill() aborts it at any suspension point.
  void run(sim::Co<void> program);

  /// Terminate: abort the program coroutine and mark the process dead.  The
  /// process table entry remains (a zombie) until the Host reaps it.
  void kill() noexcept;

  // -- Signals ------------------------------------------------------------
  void set_signal_handler(Signal sig, std::function<void()> handler);
  /// Asynchronous delivery: the handler runs after the host's signal
  /// latency.  Signals without a handler are ignored (the default for the
  /// signals modelled here).  Delivery to a dead process is dropped.
  void deliver_signal(Signal sig);

  // -- Run-time-library re-entrancy guard (paper §2.1) ---------------------
  /// While a task executes inside the PVM run-time library it must not be
  /// migrated; the library brackets such sections with this RAII guard, and
  /// the migration machinery waits on library_exited() when it finds the
  /// flag set.
  class LibraryGuard {
   public:
    explicit LibraryGuard(Process& p) : p_(&p) { ++p_->in_library_; }
    LibraryGuard(const LibraryGuard&) = delete;
    LibraryGuard& operator=(const LibraryGuard&) = delete;
    ~LibraryGuard();

   private:
    Process* p_;
  };
  [[nodiscard]] LibraryGuard enter_library() { return LibraryGuard(*this); }
  [[nodiscard]] bool in_library() const noexcept { return in_library_ > 0; }
  [[nodiscard]] sim::Trigger& library_exited() noexcept {
    return library_exited_;
  }

  // -- CPU ----------------------------------------------------------------
  /// Consume `work` reference-seconds of CPU on the process's current host.
  /// The burst registers itself in active_burst so a migration can pause it.
  [[nodiscard]] CpuScheduler::Compute compute(double work);

  /// The compute burst currently executing, if any (migration pause hook).
  std::shared_ptr<CpuJob> active_burst;

  /// Re-home the process onto another host (used by migration: the adopted
  /// "skeleton" process continues the program of the migrated one).
  void rehome(Host& new_host) noexcept { host_ = &new_host; }

  // -- Crash survivability --------------------------------------------------
  /// A crash-recoverable process (one watched by a checkpointer) is not
  /// killed by Host::crash(): its image survives on the checkpoint server
  /// and a recovery driver restarts it elsewhere.  The in-memory coroutine
  /// is still stranded (its burst is detached), so the process makes no
  /// progress until recovered.
  void set_crash_recoverable(bool on) noexcept { crash_recoverable_ = on; }
  [[nodiscard]] bool crash_recoverable() const noexcept {
    return crash_recoverable_;
  }

 private:
  Host* host_;
  Pid pid_;
  std::string name_;
  bool alive_ = true;
  MemoryImage image_;
  bool crash_recoverable_ = false;
  int in_library_ = 0;
  sim::Trigger library_exited_;
  sim::ProcHandle program_;
  std::vector<std::pair<Signal, std::function<void()>>> handlers_;
  std::vector<sim::EventId> pending_signals_;
};

/// Host fault-model transitions, reported to observers.
enum class HostEvent : std::uint8_t {
  kCrash,    ///< the workstation went down; processes died or are stranded
  kRecover,  ///< the workstation came back (empty process table)
  kFreeze,   ///< transient hang: CPU and NIC stalled, nothing is lost
  kUnfreeze,
};

class Host {
 public:
  using Observer = std::function<void(Host&, HostEvent)>;

  Host(sim::Engine& eng, net::Network& net, HostConfig cfg);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] sim::Engine& engine() const noexcept { return eng_; }
  [[nodiscard]] net::Network& network() const noexcept { return *net_; }
  [[nodiscard]] const HostConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::string& name() const noexcept { return cfg_.name; }
  [[nodiscard]] const std::string& arch() const noexcept { return cfg_.arch; }
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] CpuScheduler& cpu() noexcept { return cpu_; }

  /// Two hosts are migration-compatible when they share an architecture /
  /// OS class (paper §3.3: "similar, if not the same, characteristics").
  [[nodiscard]] bool migration_compatible_with(const Host& other) const {
    return cfg_.arch == other.cfg_.arch;
  }

  Process& create_process(std::string name);
  /// Kill and remove a process.  No-op if the pid is unknown.
  void reap(Pid pid);
  /// Withdraw a process from this host's table without killing it (the
  /// migration machinery moves it to the destination host via adopt()).
  [[nodiscard]] std::unique_ptr<Process> release(Pid pid);
  /// Install a process released from another host; re-homes it here.
  Process& adopt(std::unique_ptr<Process> proc);
  [[nodiscard]] Process* find(Pid pid) noexcept;
  [[nodiscard]] std::size_t process_count() const noexcept {
    return processes_.size();
  }

  // -- Fault model ----------------------------------------------------------
  [[nodiscard]] bool up() const noexcept { return up_; }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  /// The workstation crashes: every process dies (crash-recoverable ones are
  /// merely stranded — their bursts detach but the Process object survives
  /// for a checkpoint-driven restart elsewhere), the NIC detaches from the
  /// ethernet, the CPU stops, and observers are notified.
  void crash();
  /// The workstation reboots: NIC reattaches, CPU runs again.  Processes
  /// killed by the crash do not come back.
  void recover();
  /// Transient freeze (e.g. a thrashing or wedged workstation): CPU and NIC
  /// stall, but nothing is lost; unfreeze() resumes exactly where it stopped.
  void freeze();
  void unfreeze();

  /// Observers fire synchronously inside crash()/recover()/freeze()/
  /// unfreeze(), after the host state has changed.
  void add_observer(Observer obs) { observers_.push_back(std::move(obs)); }

 private:
  void notify(HostEvent ev);

  sim::Engine& eng_;
  net::Network* net_;
  HostConfig cfg_;
  net::NodeId node_;
  CpuScheduler cpu_;
  Pid next_pid_ = 100;
  bool up_ = true;
  bool frozen_ = false;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Observer> observers_;
};

}  // namespace cpe::os
