#include "os/cpu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cpe::os {

namespace {
// Completion slack: float accumulation can leave a vanishing residue of work.
constexpr double kWorkEpsilon = 1e-12;
}  // namespace

void CpuScheduler::notify_load() {
  if (load_observer_) load_observer_(load());
}

void CpuScheduler::set_external_jobs(int n) {
  CPE_EXPECTS(n >= 0);
  settle();
  external_ = n;
  reschedule();
  notify_load();
}

void CpuScheduler::set_frozen(bool on) {
  if (frozen_ == on) return;
  settle();  // account progress up to the freeze instant
  frozen_ = on;
  reschedule();
}

std::shared_ptr<CpuJob> CpuScheduler::start(double work,
                                            std::coroutine_handle<> h) {
  CPE_EXPECTS(work > 0);
  settle();
  auto job = std::make_shared<CpuJob>();
  job->remaining = work;
  job->handle = h;
  job->scheduler = this;
  jobs_.push_back(job);
  reschedule();
  notify_load();
  return job;
}

void CpuScheduler::detach(const std::shared_ptr<CpuJob>& job) {
  CPE_EXPECTS(job != nullptr);
  CPE_EXPECTS(job->scheduler == this);
  settle();
  std::erase(jobs_, job);
  job->scheduler = nullptr;
  reschedule();
  notify_load();
}

void CpuScheduler::adopt(const std::shared_ptr<CpuJob>& job) {
  CPE_EXPECTS(job != nullptr);
  CPE_EXPECTS(job->scheduler == nullptr);
  CPE_EXPECTS(!job->done);
  settle();
  job->scheduler = this;
  jobs_.push_back(job);
  reschedule();
  notify_load();
}

void CpuScheduler::settle() {
  const sim::Time now = eng_.now();
  const sim::Time dt = now - last_settle_;
  last_settle_ = now;
  if (dt <= 0 || jobs_.empty() || frozen_) return;
  const double rate =
      speed_ / (static_cast<double>(jobs_.size()) + external_);
  const double progress = rate * dt;
  for (auto& j : jobs_) {
    const double used = std::min(progress, j->remaining);
    j->remaining -= used;
    j->consumed += used;
    work_done_ += used;
  }
}

void CpuScheduler::reschedule() {
  eng_.cancel(completion_ev_);
  completion_ev_ = sim::EventId{};
  if (jobs_.empty() || frozen_) return;
  double min_remaining = jobs_.front()->remaining;
  for (const auto& j : jobs_)
    min_remaining = std::min(min_remaining, j->remaining);
  const double rate =
      speed_ / (static_cast<double>(jobs_.size()) + external_);
  const sim::Time dt = std::max(0.0, min_remaining) / rate;
  // A vanishing residue at a large clock value can round to a zero time
  // advance (now + dt == now once dt drops under half an ULP — at t=2^14
  // the ULP is already 3.6e-12, more than kWorkEpsilon).  A same-instant
  // completion event makes no progress in settle() and re-arms itself
  // forever; force at least one representable tick so the residue drains.
  sim::Time at = eng_.now() + dt;
  if (at <= eng_.now())
    at = std::nextafter(eng_.now(), std::numeric_limits<double>::infinity());
  completion_ev_ = eng_.schedule_at(at, [this] {
    settle();
    // Collect finished jobs first: resuming a coroutine can re-enter the
    // scheduler (the task immediately starts another burst).
    std::vector<std::shared_ptr<CpuJob>> finished;
    for (auto& j : jobs_)
      if (j->remaining <= kWorkEpsilon) finished.push_back(j);
    for (auto& j : finished) {
      std::erase(jobs_, j);
      j->scheduler = nullptr;
      j->done = true;
    }
    reschedule();
    if (!finished.empty()) notify_load();
    for (auto& j : finished) j->handle.resume();
  });
}

CpuScheduler::Compute::~Compute() {
  // Abort safety: if the frame dies while the burst is live, withdraw it.
  if (job_ && !job_->done && job_->scheduler != nullptr)
    job_->scheduler->detach(job_);
  if (slot_ != nullptr && job_ != nullptr && *slot_ == job_) slot_->reset();
}

void CpuScheduler::Compute::await_suspend(std::coroutine_handle<> h) {
  job_ = sched_->start(work_, h);
  if (slot_ != nullptr) *slot_ = job_;
}

void CpuScheduler::Compute::await_resume() noexcept {
  if (slot_ != nullptr && job_ != nullptr && *slot_ == job_) slot_->reset();
}

}  // namespace cpe::os
