#include "os/owner.hpp"

namespace cpe::os {

void ScriptedOwner::start() {
  for (const OwnerEvent& ev : script_) {
    CPE_EXPECTS(ev.host != nullptr);
    eng_.schedule_at(ev.t, [this, ev] { apply(ev); });
  }
}

void ScriptedOwner::apply(const OwnerEvent& ev) {
  switch (ev.action) {
    case OwnerAction::kArrive:
    case OwnerAction::kReclaim:
      ev.host->cpu().set_external_jobs(ev.host->cpu().external_jobs() +
                                       ev.jobs);
      break;
    case OwnerAction::kDepart: {
      const int remaining = ev.host->cpu().external_jobs() - ev.jobs;
      ev.host->cpu().set_external_jobs(remaining > 0 ? remaining : 0);
      break;
    }
  }
  if (observer_) observer_(ev);
}

void StochasticOwner::start(sim::Time until) {
  for (Host* h : hosts_) sim::spawn(eng_, host_loop(h, until, rng_.split()));
}

sim::Co<void> StochasticOwner::host_loop(Host* host, sim::Time until,
                                         sim::Rng rng) {
  while (eng_.now() < until) {
    co_await sim::Delay(eng_, rng.exponential(params_.mean_idle));
    if (eng_.now() >= until) break;

    const bool reclaim = rng.chance(params_.reclaim_probability);
    OwnerEvent arrive(eng_.now(), *host,
                      reclaim ? OwnerAction::kReclaim : OwnerAction::kArrive,
                      params_.jobs);
    host->cpu().set_external_jobs(host->cpu().external_jobs() + params_.jobs);
    ++events_;
    if (observer_) observer_(arrive);

    co_await sim::Delay(eng_, rng.exponential(params_.mean_busy));

    OwnerEvent depart(eng_.now(), *host, OwnerAction::kDepart, params_.jobs);
    const int remaining = host->cpu().external_jobs() - params_.jobs;
    host->cpu().set_external_jobs(remaining > 0 ? remaining : 0);
    ++events_;
    if (observer_) observer_(depart);
  }
}

}  // namespace cpe::os
