#include "os/host.hpp"

namespace cpe::os {

Process::Process(Host& host, Pid pid, std::string name)
    : host_(&host), pid_(pid), name_(std::move(name)),
      library_exited_(host.engine()) {}

Process::~Process() {
  for (sim::EventId ev : pending_signals_) host_->engine().cancel(ev);
}

void Process::run(sim::Co<void> program) {
  CPE_EXPECTS(alive_);
  program_ = sim::launch(host_->engine(), std::move(program));
}

void Process::kill() noexcept {
  if (!alive_) return;
  alive_ = false;
  program_.abort();
  active_burst.reset();
}

void Process::set_signal_handler(Signal sig, std::function<void()> handler) {
  for (auto& [s, h] : handlers_) {
    if (s == sig) {
      h = std::move(handler);
      return;
    }
  }
  handlers_.emplace_back(sig, std::move(handler));
}

void Process::deliver_signal(Signal sig) {
  if (!alive_) return;
  for (const auto& [s, h] : handlers_) {
    if (s == sig) {
      pending_signals_.push_back(host_->engine().schedule_in(
          host_->config().signal_latency, [this, handler = h] {
            std::erase_if(pending_signals_, [this](sim::EventId ev) {
              return !host_->engine().pending(ev);
            });
            if (alive_) handler();
          }));
      return;
    }
  }
  // No handler installed: the modelled signals default to "ignore".
}

Process::LibraryGuard::~LibraryGuard() {
  if (--p_->in_library_ == 0) p_->library_exited_.fire();
}

CpuScheduler::Compute Process::compute(double work) {
  return host_->cpu().compute(work, &active_burst);
}

Host::Host(sim::Engine& eng, net::Network& net, HostConfig cfg)
    : eng_(eng),
      net_(&net),
      cfg_(std::move(cfg)),
      node_(net.add_node(cfg_.name)),
      cpu_(eng, cfg_.speed) {}

Process& Host::create_process(std::string name) {
  processes_.push_back(
      std::make_unique<Process>(*this, next_pid_++, std::move(name)));
  return *processes_.back();
}

void Host::reap(Pid pid) {
  for (auto it = processes_.begin(); it != processes_.end(); ++it) {
    if ((*it)->pid() == pid) {
      (*it)->kill();
      processes_.erase(it);
      return;
    }
  }
}

std::unique_ptr<Process> Host::release(Pid pid) {
  for (auto it = processes_.begin(); it != processes_.end(); ++it) {
    if ((*it)->pid() == pid) {
      std::unique_ptr<Process> p = std::move(*it);
      processes_.erase(it);
      return p;
    }
  }
  return nullptr;
}

Process& Host::adopt(std::unique_ptr<Process> proc) {
  CPE_EXPECTS(proc != nullptr);
  proc->rehome(*this);
  processes_.push_back(std::move(proc));
  return *processes_.back();
}

Process* Host::find(Pid pid) noexcept {
  for (auto& p : processes_)
    if (p->pid() == pid) return p.get();
  return nullptr;
}

void Host::crash() {
  if (!up_) return;
  up_ = false;
  frozen_ = false;
  net_->ethernet().set_attached(node_, false);
  cpu_.set_frozen(true);
  for (auto& p : processes_) {
    if (p->crash_recoverable()) {
      // Strand, don't kill: the process image lives on the checkpoint
      // server, and a recovery driver will restart it elsewhere.  Detach its
      // burst so a later reboot of this host cannot resume stale work.
      if (p->active_burst && p->active_burst->scheduler != nullptr)
        p->active_burst->scheduler->detach(p->active_burst);
    } else {
      p->kill();
    }
  }
  notify(HostEvent::kCrash);
}

void Host::recover() {
  if (up_) return;
  up_ = true;
  // Reboot: zombies from the crash are gone; stranded crash-recoverable
  // processes remain until their recovery driver release()s them.
  std::erase_if(processes_, [](const auto& p) {
    return !p->alive() && !p->crash_recoverable();
  });
  cpu_.set_frozen(false);
  net_->ethernet().set_attached(node_, true);
  notify(HostEvent::kRecover);
}

void Host::freeze() {
  if (!up_ || frozen_) return;
  frozen_ = true;
  net_->ethernet().set_attached(node_, false);
  cpu_.set_frozen(true);
  notify(HostEvent::kFreeze);
}

void Host::unfreeze() {
  if (!frozen_) return;
  frozen_ = false;
  cpu_.set_frozen(false);
  net_->ethernet().set_attached(node_, true);
  notify(HostEvent::kUnfreeze);
}

void Host::notify(HostEvent ev) {
  // Copy: an observer may add observers (e.g. a recovery driver attaching).
  const std::vector<Observer> obs = observers_;
  for (const auto& o : obs) o(*this, ev);
}

}  // namespace cpe::os
