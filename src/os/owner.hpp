// Workstation-owner activity: the external load and reclamation events that
// drive adaptive migration (paper §1: owners "expect high-quality performance"
// and parallel jobs must be unobtrusive).
//
// Two generators:
//  * ScriptedOwner — a deterministic (time, host, action) schedule; used by
//    the benches so every table is exactly reproducible.
//  * StochasticOwner — per-host alternating idle/busy periods with
//    exponentially distributed durations; used by the scheduler-policy
//    ablation.
//
// Both apply external jobs to the host's CPU (slowing co-located tasks) and
// notify an observer (normally the Global Scheduler).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "os/host.hpp"
#include "sim/random.hpp"

namespace cpe::os {

enum class OwnerAction : std::uint8_t {
  kArrive,   ///< owner starts working: external jobs appear
  kDepart,   ///< owner leaves: machine is idle again
  kReclaim,  ///< owner demands the machine: parallel work must vacate
};

[[nodiscard]] constexpr const char* to_string(OwnerAction a) {
  switch (a) {
    case OwnerAction::kArrive: return "arrive";
    case OwnerAction::kDepart: return "depart";
    case OwnerAction::kReclaim: return "reclaim";
  }
  return "?";
}

struct OwnerEvent {
  sim::Time t = 0;
  Host* host = nullptr;
  OwnerAction action = OwnerAction::kArrive;
  int jobs = 1;  ///< external jobs while the owner is active

  OwnerEvent() = default;
  OwnerEvent(sim::Time t_, Host& host_, OwnerAction action_, int jobs_ = 1)
      : t(t_), host(&host_), action(action_), jobs(jobs_) {}
};

/// Observer signature: invoked at the moment of each owner event, after the
/// CPU load has been applied.
using OwnerObserver = std::function<void(const OwnerEvent&)>;

/// Deterministic owner schedule.
class ScriptedOwner {
 public:
  ScriptedOwner(sim::Engine& eng, std::vector<OwnerEvent> script)
      : eng_(eng), script_(std::move(script)) {}

  void set_observer(OwnerObserver obs) { observer_ = std::move(obs); }

  /// Schedule every scripted event.  Call once, before Engine::run.
  void start();

 private:
  void apply(const OwnerEvent& ev);

  sim::Engine& eng_;
  std::vector<OwnerEvent> script_;
  OwnerObserver observer_;
};

/// Per-host renewal process: idle for Exp(mean_idle), then busy with `jobs`
/// external jobs for Exp(mean_busy), repeating.  A busy period is a kArrive /
/// kDepart pair; with `reclaim_probability` the arrival is a kReclaim
/// instead (the owner wants the whole machine).
class StochasticOwner {
 public:
  struct Params {
    sim::Time mean_idle = 120.0;
    sim::Time mean_busy = 60.0;
    int jobs = 1;
    double reclaim_probability = 0.0;
  };

  StochasticOwner(sim::Engine& eng, std::vector<Host*> hosts, Params params,
                  sim::Rng rng)
      : eng_(eng), hosts_(std::move(hosts)), params_(params), rng_(rng) {}

  void set_observer(OwnerObserver obs) { observer_ = std::move(obs); }

  /// Run the generators until `until` (virtual time).
  void start(sim::Time until);

  [[nodiscard]] std::size_t events_generated() const noexcept {
    return events_;
  }

 private:
  [[nodiscard]] sim::Co<void> host_loop(Host* host, sim::Time until,
                                        sim::Rng rng);

  sim::Engine& eng_;
  std::vector<Host*> hosts_;
  Params params_;
  sim::Rng rng_;
  OwnerObserver observer_;
  std::size_t events_ = 0;
};

}  // namespace cpe::os
