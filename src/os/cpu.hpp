// Processor-sharing CPU model.
//
// Each Host has one CpuScheduler.  Runnable jobs (application tasks and
// "external" owner workload) share the processor equally, as Unix time-slicing
// approximates: with n runnable jobs each progresses at speed/n.  Completion
// times are re-derived whenever the runnable set changes, so a task slows
// down the moment an owner job arrives — the phenomenon that motivates
// adaptive load migration in the first place (paper §1).
//
// Jobs are *pausable*: migration captures the remaining work of the current
// compute burst on the source host and resumes it on the destination host's
// scheduler (at that host's speed).  The suspended coroutine never notices.
#pragma once

#include <coroutine>
#include <functional>
#include <memory>
#include <vector>

#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace cpe::os {

class CpuScheduler;

/// Shared state of one compute burst.  Held by the awaiter (for abort
/// cleanup), by the scheduler (while running), and by the Process (so that a
/// migration can find and pause the task's current burst).
struct CpuJob {
  double remaining = 0;  ///< reference-machine seconds of work left
  double consumed = 0;   ///< reference-seconds of service received so far
  std::coroutine_handle<> handle{};
  CpuScheduler* scheduler = nullptr;  ///< null while paused
  bool done = false;
};

class CpuScheduler {
 public:
  CpuScheduler(sim::Engine& eng, double speed)
      : eng_(eng), speed_(speed) {
    CPE_EXPECTS(speed > 0);
  }
  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;
  ~CpuScheduler() { eng_.cancel(completion_ev_); }

  /// Relative speed of this CPU (1.0 = the reference HP 9000/720).
  [[nodiscard]] double speed() const noexcept { return speed_; }

  /// Runnable application jobs right now.
  [[nodiscard]] std::size_t job_count() const noexcept { return jobs_.size(); }

  /// External (owner) runnable jobs competing for this CPU.
  [[nodiscard]] int external_jobs() const noexcept { return external_; }
  void set_external_jobs(int n);

  /// Freeze the whole processor (host crash or transient freeze): no job
  /// makes progress and no completion fires until unfrozen.  Jobs stay
  /// enqueued; on unfreeze they resume where they stopped.
  void set_frozen(bool on);
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  /// Unix-style load: runnable jobs (application + owner).
  [[nodiscard]] double load() const noexcept {
    return static_cast<double>(jobs_.size()) + external_;
  }

  /// Invoked with the new load() whenever the runnable set changes (job
  /// start/finish/detach/adopt, owner jobs applied).  One observer slot;
  /// nullptr clears it.  The observer must be passive — it may read the
  /// scheduler but must not start or detach jobs (it runs mid-transition).
  /// Load sensors use this for event-driven samples between their polls.
  void set_load_observer(std::function<void(double)> obs) {
    load_observer_ = std::move(obs);
  }

  /// Start a job of `work` reference-seconds; resumes `h` on completion.
  std::shared_ptr<CpuJob> start(double work, std::coroutine_handle<> h);

  /// Detach a running job (for migration or abort).  After this, the job is
  /// not scheduled anywhere; `job->remaining` holds the unfinished work.
  void detach(const std::shared_ptr<CpuJob>& job);

  /// Adopt a previously-detached job (migration arrival).
  void adopt(const std::shared_ptr<CpuJob>& job);

  /// Awaitable: consume `work` reference-seconds of CPU on this scheduler.
  /// `slot`, when non-null, receives the live CpuJob so that external code
  /// (a migration) can pause/move the burst; it is cleared on completion.
  class Compute {
   public:
    Compute(CpuScheduler& s, double work, std::shared_ptr<CpuJob>* slot)
        : sched_(&s), work_(work), slot_(slot) {}
    Compute(const Compute&) = delete;
    Compute& operator=(const Compute&) = delete;
    ~Compute();

    [[nodiscard]] bool await_ready() const noexcept { return work_ <= 0; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() noexcept;

   private:
    CpuScheduler* sched_;
    double work_;
    std::shared_ptr<CpuJob>* slot_;
    std::shared_ptr<CpuJob> job_;
  };

  [[nodiscard]] Compute compute(double work,
                                std::shared_ptr<CpuJob>* slot = nullptr) {
    return Compute(*this, work, slot);
  }

  /// Total reference-seconds of application work completed on this CPU.
  [[nodiscard]] double work_done() const noexcept { return work_done_; }

 private:
  void settle();      ///< advance every job's accounting to now
  void reschedule();  ///< (re)arm the completion event for the next finisher
  void notify_load(); ///< fire the load observer after a runnable-set change

  sim::Engine& eng_;
  double speed_;
  std::function<void(double)> load_observer_;
  int external_ = 0;
  bool frozen_ = false;
  sim::Time last_settle_ = 0;
  double work_done_ = 0;
  std::vector<std::shared_ptr<CpuJob>> jobs_;
  sim::EventId completion_ev_{};
};

}  // namespace cpe::os
