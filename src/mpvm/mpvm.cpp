#include "mpvm/mpvm.hpp"

#include <algorithm>

#include "net/tcp.hpp"

namespace cpe::mpvm {

std::string_view to_string(MigrationStage s) {
  switch (s) {
    case MigrationStage::kEvent: return "event";
    case MigrationStage::kFrozen: return "frozen";
    case MigrationStage::kFlushed: return "flushed";
    case MigrationStage::kTransferred: return "transferred";
    case MigrationStage::kRestarted: return "restarted";
    case MigrationStage::kFailed: return "failed";
  }
  return "?";
}

Mpvm::Mpvm(pvm::PvmSystem& vm) : vm_(&vm) {
  vm.set_shim(std::make_unique<MpvmShim>(vm.costs().mpvm));
  vm.set_task_observer([this](pvm::Task& t) { link_runtime_into(t); });
  vm.set_forward_observer(
      [this](const pvm::Message& m, pvm::Task& t, pvm::Pvmd& at) {
        on_residual_forward(m, t, at);
      });
}

void Mpvm::link_runtime_into(pvm::Task& t) {
  t.set_control_handler(
      kTagFlush, [this, &t](pvm::Message m) { on_flush(t, m); });
  t.set_control_handler(kTagFlushAck,
                        [this](pvm::Message m) { on_flush_ack(m); });
  t.set_control_handler(
      kTagRestart, [this, &t](pvm::Message m) { on_restart(t, m); });
  t.set_control_handler(
      kTagMigrateAbort, [this, &t](pvm::Message m) { on_abort(t, m); });
  t.set_control_handler(
      kTagRouteUpdate, [this, &t](pvm::Message m) { on_route_update(t, m); });
}

void Mpvm::on_flush(pvm::Task& self, const pvm::Message& m) {
  // "The flush message is acknowledged and from then onwards, a send to the
  // migrating process blocks the sending process." (§2.1 stage 2)
  pvm::Buffer b(*m.body);
  const pvm::Tid victim(b.upk_int());
  const std::int32_t seq = b.upk_int();
  // A task frozen mid-migration cannot run its own flush handler (the
  // re-entrancy restriction applies to the runtime too).  Its mpvmd stub
  // closes the gate and acks in its stead — the stub owns the channel state,
  // so the FIFO guarantee behind the ack still holds.  With substitution
  // off the flush just sits behind the freeze: the historic cross-migration
  // deadlock, kept reproducible for tests.
  const auto self_mig = pending_.find(self.tid().raw());
  const bool self_frozen =
      self_mig != pending_.end() && self_mig->second->frozen;
  if (self_frozen && !tuning_.ack_substitution) {
    vm_->metrics().counter("mpvm.flush.deferred_frozen").inc();
    return;  // no ack: the migrating side is left to its flush timeout
  }
  self.send_gate(victim).close();
  if (self_frozen) {
    vm_->metrics().counter("mpvm.flush.acks_substituted").inc();
    if (m.tctx.valid()) {
      const obs::SpanId ev = vm_->spans().event(
          m.tctx, "mpvm.flush.substitute", self.pvmd().host().name(),
          self.tid().raw());
      vm_->spans().annotate(ev, "for", self.tid().str());
    }
  }
  pvm::Buffer ack;
  ack.pk_int(victim.raw());
  ack.pk_int(seq);
  ack.pk_int(self_frozen ? 1 : 0);
  self.runtime_send(victim, kTagFlushAck, std::move(ack));
}

void Mpvm::on_flush_ack(const pvm::Message& m) {
  pvm::Buffer b(*m.body);
  const std::int32_t victim_raw = b.upk_int();
  const std::int32_t seq = b.upk_int();
  auto it = pending_.find(victim_raw);
  if (it == pending_.end()) return;  // stale ack from an aborted protocol
  PendingFlush* pf = it->second.get();
  // An ack answering an *earlier* migration of the same task can still be
  // on the wire when the next protocol claims the slot — before that
  // protocol's flush stage even arms the trigger.  Counting it would fire
  // a null trigger (pre-arm) or complete the new flush with a peer whose
  // send gate is still open; the round stamp keeps the rounds apart.
  if (pf->all_acked == nullptr || seq != pf->seq) return;
  pf->acked.insert(m.src.raw());
  if (pf->received() >= pf->expected) pf->all_acked->fire();
}

void Mpvm::on_restart(pvm::Task& self, const pvm::Message& m) {
  // Restart carries the migrated task's new tid and migration epoch:
  // install the re-mapping and unblock senders (§2.1 stage 4).  A restart
  // from a *superseded* migration (the task moved again while this message
  // was in flight) is fenced off by the epoch check — the newer mapping
  // already opened the gate, so nothing else to do.
  pvm::Buffer b(*m.body);
  const pvm::Tid victim(b.upk_int());
  const pvm::Tid fresh(b.upk_int());
  const std::uint64_t epoch = b.upk_uint();
  if (!self.learn_mapping(victim, fresh, epoch)) {
    vm_->metrics().counter("mpvm.residual.dropped_stale").inc();
    return;
  }
  self.send_gate(victim).open();
}

void Mpvm::on_abort(pvm::Task& self, const pvm::Message& m) {
  // The migration rolled back: the victim stays where it was, so reopen the
  // send gate without installing any re-mapping.
  pvm::Buffer b(*m.body);
  const pvm::Tid victim(b.upk_int());
  self.send_gate(victim).open();
}

void Mpvm::on_route_update(pvm::Task& self, const pvm::Message& m) {
  // The old host's stub caught one of our sends to a migrated task and
  // tells us where it lives now.  Same fencing rule as restarts: an update
  // from a superseded migration must not regress the mapping.
  pvm::Buffer b(*m.body);
  const pvm::Tid victim(b.upk_int());
  const pvm::Tid fresh(b.upk_int());
  const std::uint64_t epoch = b.upk_uint();
  if (!self.learn_mapping(victim, fresh, epoch))
    vm_->metrics().counter("mpvm.residual.dropped_stale").inc();
}

void Mpvm::on_residual_forward(const pvm::Message& m, pvm::Task& t,
                               pvm::Pvmd& at) {
  auto it = residuals_.find(t.tid().raw());
  if (it == residuals_.end()) return;
  Residual& r = it->second;
  if (vm_->engine().now() > r.expires) {
    residuals_.erase(it);
    return;
  }
  vm_->metrics().counter("mpvm.residual.forwarded").inc();
  obs::SpanTracer& sp = vm_->spans();
  const obs::SpanId ev =
      sp.event(r.ctx, "mpvm.residual.forward", at.host().name(), t.tid().raw());
  sp.annotate(ev, "task", t.tid().str());
  sp.annotate(ev, "from", m.src.str());
  sp.annotate(ev, "mig_epoch", std::to_string(r.epoch));
  // MOSIX home-node style: teach the stale sender the new mapping (once per
  // sender) so its next send goes direct instead of bouncing here forever.
  if (!r.updated.insert(m.src.raw()).second) return;
  pvm::Task* sender = vm_->find_logical(m.src);
  if (sender == nullptr || sender->exited()) return;
  const obs::TraceContext saved = t.trace_context();
  t.set_trace_context(r.ctx);
  pvm::Buffer b;
  b.pk_int(t.tid().raw());
  b.pk_int(r.fresh.raw());
  b.pk_uint(static_cast<std::uint32_t>(r.epoch));
  t.runtime_send(m.src, kTagRouteUpdate, std::move(b));
  t.set_trace_context(saved);
  vm_->metrics().counter("mpvm.residual.route_updates").inc();
}

bool Mpvm::request_abort(pvm::Tid victim, std::string reason) {
  auto it = pending_.find(victim.raw());
  if (it == pending_.end()) return false;
  PendingFlush* pf = it->second.get();
  if (pf->abort_requested) return false;
  pf->abort_requested = true;
  pf->abort_reason = std::move(reason);
  vm_->metrics().counter("mpvm.migrations.abort_requested").inc();
  // Wake a flush wait in progress; chunk loops poll the flag themselves.
  if (pf->all_acked != nullptr) pf->all_acked->fire();
  return true;
}

void Mpvm::notify_stage(pvm::Tid task, MigrationStage stage) {
  // Copy: an observer (a fault injector) may mutate the observer list.
  const std::vector<StageObserver> obs = stage_observers_;
  for (const auto& o : obs) o(task, stage);
}

MigrationStats Mpvm::abort_migration(pvm::Task* t, pvm::Tid victim,
                                     const std::vector<pvm::Task*>& others,
                                     const std::shared_ptr<os::CpuJob>& burst,
                                     os::Host& src, MigrationStats stats,
                                     const std::string& reason,
                                     obs::SpanId mig_span,
                                     obs::SpanId open_stage) {
  vm_->trace().log("mpvm", "stage=aborted task=" + victim.str() +
                               " reason=" + reason);
  obs::SpanTracer& sp = vm_->spans();
  if (open_stage != 0) sp.end_span(open_stage, obs::SpanStatus::kAborted);
  if (mig_span != 0) {
    const obs::SpanId rb = sp.event(sp.context_of(mig_span), "mpvm.rollback",
                                    src.name(), victim.raw());
    sp.annotate(rb, "reason", reason);
    sp.end_span(mig_span, obs::SpanStatus::kAborted);
  }
  const bool task_alive = t != nullptr && !t->exited();
  // Un-freeze: hand the detached burst back to the (live) source CPU so the
  // victim continues exactly where it was stopped.
  if (task_alive && src.up() && burst && !burst->done &&
      burst->scheduler == nullptr) {
    src.cpu().adopt(burst);
  }
  // Unblock pending senders.  The abort broadcast rides the normal channels
  // when the victim can still transmit; peers unreachable to it (or everyone,
  // when the source is down) get their gates opened directly — a dead host
  // cannot announce its own demise.
  for (pvm::Task* other : others) {
    if (other->exited()) continue;
    if (task_alive && src.up()) {
      pvm::Buffer b;
      b.pk_int(victim.raw());
      t->runtime_send(other->tid(), kTagMigrateAbort, std::move(b));
    } else {
      other->send_gate(victim).open();
    }
  }
  // Cleared only now: the abort broadcast above still rides the trace.
  if (t != nullptr) t->clear_trace_context();
  stats.ok = false;
  stats.failure = reason;
  vm_->metrics().counter("mpvm.migrations.failed").inc();
  notify_stage(victim, MigrationStage::kFailed);
  return stats;
}

sim::Co<MigrationStats> Mpvm::migrate(pvm::Tid victim, os::Host& dst,
                                      std::optional<std::uint64_t> epoch,
                                      obs::TraceContext ctx) {
  sim::Engine& eng = vm_->engine();
  const auto& mc = vm_->costs().mpvm;
  obs::SpanTracer& sp = vm_->spans();

  // Fencing: a command stamped with a deposed leader's term is refused
  // before any protocol state is touched.
  if (fence_ && epoch && !fence_->admit(*epoch)) {
    vm_->metrics().counter("mpvm.fenced").inc();
    vm_->trace().log("mpvm", "fenced task=" + victim.str() + " epoch=" +
                                 std::to_string(*epoch) + " floor=" +
                                 std::to_string(fence_->floor()));
    pvm::Task* ft = vm_->find_logical(victim);
    const std::string fenced_host =
        ft != nullptr ? ft->pvmd().host().name() : std::string("gs");
    const obs::SpanId fenced =
        sp.begin_span(ctx, "mpvm.migrate", fenced_host, victim.raw());
    sp.annotate(fenced, "task", victim.str());
    sp.annotate(fenced, "epoch", std::to_string(*epoch));
    sp.annotate(fenced, "floor", std::to_string(fence_->floor()));
    sp.end_span(fenced, obs::SpanStatus::kFenced);
    throw MigrationError("mpvm: migrate " + victim.str() +
                         " fenced: stale epoch " + std::to_string(*epoch) +
                         " < " + std::to_string(fence_->floor()));
  }

  pvm::Task* t = vm_->find_logical(victim);
  if (t == nullptr || t->exited())
    throw MigrationError("mpvm: no such task: " + victim.str());
  os::Host& src = t->pvmd().host();
  if (&src == &dst)
    throw MigrationError("mpvm: task " + victim.str() + " already on " +
                         dst.name());
  if (vm_->daemon_on(dst) == nullptr)
    throw MigrationError("mpvm: host " + dst.name() +
                         " is not in the virtual machine");
  if (!src.migration_compatible_with(dst))
    throw MigrationError("mpvm: " + src.name() + " (" + src.arch() + ") -> " +
                         dst.name() + " (" + dst.arch() +
                         "): hosts are not migration compatible");
  if (migrating(victim))
    throw MigrationError("mpvm: migration of " + victim.str() +
                         " already in progress");
  // Claim the victim *before* the first suspension point: a second migrate
  // of the same task arriving during the signal-latency window must be
  // refused by the check above.
  auto& pf_slot = pending_[victim.raw()];
  pf_slot = std::make_unique<PendingFlush>();
  pf_slot->seq = ++flush_seq_;
  PendingFlush* pf = pf_slot.get();  // address-stable (unique_ptr value)
  sim::ScopeExit unclaim([this, victim] { pending_.erase(victim.raw()); });
  // Concurrency gauge: +1 for the life of this protocol window, whatever
  // exit path it takes.  Windowed by Analytics as the in-flight series.
  if (inflight_gauge_ == nullptr)
    inflight_gauge_ = &vm_->metrics().gauge("mpvm.migrations.inflight");
  inflight_gauge_->add(1.0);
  sim::ScopeExit deflate([this] { inflight_gauge_->add(-1.0); });

  MigrationStats stats;
  stats.task = victim;
  stats.from_host = src.name();
  stats.to_host = dst.name();
  stats.event_time = eng.now();
  // Root the migration's span tree.  Every protocol stage, retry, and
  // rollback below becomes a descendant; the victim carries the context for
  // the protocol window so flush/ack/restart traffic is stamped on the wire.
  const obs::SpanId mig =
      sp.begin_span(ctx, "mpvm.migrate", src.name(), victim.raw());
  sp.annotate(mig, "task", victim.str());
  sp.annotate(mig, "from", src.name());
  sp.annotate(mig, "to", dst.name());
  if (epoch) sp.annotate(mig, "epoch", std::to_string(*epoch));
  const obs::TraceContext mig_ctx = sp.context_of(mig);
  t->set_trace_context(mig_ctx);
  vm_->trace().log("mpvm", "stage=event task=" + victim.str() + " " +
                               src.name() + " -> " + dst.name());
  notify_stage(victim, MigrationStage::kEvent);

  obs::SpanId stage = 0;

  // ---- Stage 0 (optional): pre-copy while the task still runs -------------
  // Incremental transfer (DESIGN.md §12, after "Process Migration over
  // CCNx"): start the skeleton early and stream the whole image while the
  // task keeps computing, then freeze only for the dirty residue.  Any
  // failure here is non-fatal — the protocol falls back to the classic
  // full-image stop-and-copy of stage 3.
  std::shared_ptr<net::TcpStream> precopy_stream;
  std::size_t precopy_residue = 0;  // image bytes to re-send under freeze
  if (tuning_.precopy) {
    stage = sp.begin_span(mig_ctx, "mpvm.precopy", src.name(), victim.raw());
    const sim::Time precopy_start = eng.now();
    const sim::Time precopy_deadline = precopy_start + timeouts_.transfer;
    co_await sim::Delay(eng, mc.skeleton_start);  // early fork+exec on `dst`
    bool precopy_ok = dst.up() && src.up() && !t->exited() &&
                      !pf->abort_requested &&
                      (!skeleton_spawn_hook_ || skeleton_spawn_hook_(victim, dst));
    const std::size_t image_bytes = t->process().image().migratable_bytes();
    if (precopy_ok) {
      obs::SpanId chunk_span = 0;
      try {
        precopy_stream = co_await net::TcpStream::connect(
            vm_->network(), src.node(), dst.node());
        std::size_t remaining = image_bytes;
        while (remaining > 0) {
          if (pf->abort_requested || !dst.up() || !src.up() || t->exited() ||
              eng.now() > precopy_deadline) {
            precopy_ok = false;
            break;
          }
          const std::size_t chunk = std::min(tuning_.chunk_bytes, remaining);
          chunk_span = sp.begin_span(sp.context_of(stage), "mpvm.precopy.chunk",
                                     src.name(), victim.raw());
          sp.annotate(chunk_span, "bytes", std::to_string(chunk));
          co_await sim::Delay(
              eng, static_cast<double>(chunk) * 8.0 / mc.state_copy_bps);
          co_await precopy_stream->send(src.node(), chunk);
          sp.end_span(chunk_span, obs::SpanStatus::kOk);
          chunk_span = 0;
          remaining -= chunk;
          stats.precopy_bytes += chunk;
        }
      } catch (const net::DeliveryError&) {
        precopy_ok = false;
      }
      if (chunk_span != 0) sp.end_span(chunk_span, obs::SpanStatus::kAborted);
    }
    if (precopy_ok) {
      // The residue the freeze must still move: whatever the running task
      // re-dirtied during the stream, floored at the context pages.
      const sim::Time dt = eng.now() - precopy_start;
      precopy_residue = std::min(
          image_bytes,
          std::max(t->process().image().context_bytes,
                   static_cast<std::size_t>(tuning_.dirty_rate_bps / 8.0 * dt)));
      sp.annotate(stage, "bytes", std::to_string(stats.precopy_bytes));
      sp.annotate(stage, "residue", std::to_string(precopy_residue));
      sp.end_span(stage, obs::SpanStatus::kOk);
      vm_->trace().log("mpvm", "stage=precopy task=" + victim.str() +
                                   " bytes=" +
                                   std::to_string(stats.precopy_bytes) +
                                   " residue=" +
                                   std::to_string(precopy_residue));
    } else {
      // Fall back to stop-and-copy; the abort/crash checks of the regular
      // stages below decide whether the migration survives at all.
      precopy_stream.reset();
      stats.precopy_bytes = 0;
      vm_->metrics().counter("mpvm.precopy.failed").inc();
      sp.end_span(stage, obs::SpanStatus::kAborted);
    }
    stage = 0;
    if (pf->abort_requested)
      co_return abort_migration(t, victim, {}, nullptr, src, stats,
                                "aborted: " + pf->abort_reason, mig);
    if (t->exited() || !src.up())
      co_return abort_migration(t, victim, {}, nullptr, src, stats,
                                !src.up() ? "source host down during pre-copy"
                                          : "task exited during pre-copy",
                                mig);
  }

  // ---- Stage 1: freeze the task ------------------------------------------
  // SIGMIGRATE delivery latency, then wait out any library critical section.
  stage = sp.begin_span(mig_ctx, "mpvm.freeze", src.name(), victim.raw());
  co_await sim::Delay(eng, src.config().signal_latency);
  while (t->process().in_library())
    co_await t->process().library_exited().wait();
  if (t->exited() || !src.up())
    co_return abort_migration(t, victim, {}, nullptr, src, stats,
                              !src.up() ? "source host down before freeze"
                                        : "task exited before freeze",
                              mig, stage);
  // Freeze a mid-flight compute burst; a task blocked in pvm_recv needs no
  // freezing (the re-implemented pvm_recv permits migration there, §4.1.1).
  std::shared_ptr<os::CpuJob> frozen_burst = t->process().active_burst;
  if (frozen_burst && frozen_burst->scheduler != nullptr)
    frozen_burst->scheduler->detach(frozen_burst);
  stats.frozen_time = eng.now();
  // From here until the protocol resolves, the victim cannot run handlers:
  // flushes from concurrent migrations are answered by its stub instead.
  pf->frozen = true;
  sp.end_span(stage, obs::SpanStatus::kOk);
  stage = 0;
  vm_->trace().log("mpvm", "stage=frozen task=" + victim.str());
  notify_stage(victim, MigrationStage::kFrozen);
  if (t->exited() || !src.up())
    co_return abort_migration(t, victim, {}, frozen_burst, src, stats,
                              !src.up() ? "source host crashed while frozen"
                                        : "task died while frozen",
                              mig);

  // ---- Stage 2: message flushing ------------------------------------------
  // Scoped flush (DESIGN.md §12): only the victim's *correspondents* — tasks
  // it has exchanged application messages with — can hold the in-flight
  // messages the FIFO-flush guarantee is about.  Everyone else's first
  // contact after the move is caught by the old host's forwarding stub and
  // a route update, so the global quiesce of the original protocol is gone
  // and N flush rounds no longer interlock.
  stage = sp.begin_span(mig_ctx, "mpvm.flush", src.name(), victim.raw());
  std::vector<pvm::Task*> others;
  for (const std::int32_t peer : t->peers()) {
    pvm::Task* other = vm_->find_logical(pvm::Tid(peer));
    if (other != nullptr && other != t && !other->exited())
      others.push_back(other);
  }
  std::sort(others.begin(), others.end(),
            [](const pvm::Task* a, const pvm::Task* b) {
              return a->tid().raw() < b->tid().raw();
            });

  pf->expected = static_cast<int>(others.size());
  sp.annotate(stage, "scope", std::to_string(others.size()));
  vm_->metrics()
      .histogram("mpvm.flush.scope")
      .record(static_cast<double>(others.size()));
  pf->all_acked = std::make_unique<sim::Trigger>(eng);
  if (!others.empty()) {
    for (pvm::Task* other : others) {
      pvm::Buffer b;
      b.pk_int(victim.raw());
      b.pk_int(pf->seq);
      t->runtime_send(other->tid(), kTagFlush, std::move(b));
    }
    bool flushed = pf->received() >= pf->expected ||
                   co_await pf->all_acked->wait_for(timeouts_.flush_ack);
    if (pf->abort_requested)
      co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                                "aborted: " + pf->abort_reason, mig, stage);
    if (!flushed && !t->exited() && src.up()) {
      // A single dropped datagram must not cost the whole migration: re-send
      // the flush to the peers still missing and grant one more ack window
      // before charging the stage deadline for real.
      ++flush_retries_;
      vm_->metrics().counter("mpvm.flush.retries").inc();
      vm_->trace().log("mpvm", "stage=flush-retry task=" + victim.str() +
                                   " acks=" + std::to_string(pf->received()) +
                                   "/" + std::to_string(pf->expected));
      const obs::SpanId rt = sp.event(sp.context_of(stage), "mpvm.flush.retry",
                                      src.name(), victim.raw());
      sp.annotate(rt, "acks", std::to_string(pf->received()) + "/" +
                                  std::to_string(pf->expected));
      for (pvm::Task* other : others) {
        if (other->exited() || pf->acked.contains(other->tid().raw()))
          continue;
        pvm::Buffer b;
        b.pk_int(victim.raw());
        b.pk_int(pf->seq);
        t->runtime_send(other->tid(), kTagFlush, std::move(b));
      }
      flushed = pf->received() >= pf->expected ||
                co_await pf->all_acked->wait_for(timeouts_.flush_ack);
      if (pf->abort_requested)
        co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                                  "aborted: " + pf->abort_reason, mig, stage);
    }
    if (!flushed) {
      co_return abort_migration(
          t, victim, others, frozen_burst, src, stats,
          "flush acks timed out (" + std::to_string(pf->received()) + "/" +
              std::to_string(pf->expected) + " after retry, " +
              std::to_string(timeouts_.flush_ack) + " s per window)",
          mig, stage);
    }
  }
  if (t->exited() || !src.up())
    co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                              !src.up() ? "source host crashed during flush"
                                        : "task died during flush",
                              mig, stage);
  stats.flush_done = eng.now();
  sp.annotate(stage, "acks", std::to_string(pf->expected));
  sp.end_span(stage, obs::SpanStatus::kOk);
  stage = 0;
  vm_->trace().log("mpvm", "stage=flushed task=" + victim.str() + " acks=" +
                               std::to_string(pf->expected));
  notify_stage(victim, MigrationStage::kFlushed);
  if (t->exited() || !src.up() || !dst.up())
    co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                              !dst.up() ? "destination host down after flush"
                                        : "source side died after flush",
                              mig);

  // ---- Stage 3: state transfer to the skeleton ----------------------------
  stage = sp.begin_span(mig_ctx, "mpvm.transfer", src.name(), victim.raw());
  if (precopy_stream == nullptr) {
    co_await sim::Delay(eng, mc.skeleton_start);  // fork+exec on `dst`
    if (!dst.up() || !src.up() || t->exited())
      co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                                "host crashed during skeleton start", mig,
                                stage);
    if (skeleton_spawn_hook_ && !skeleton_spawn_hook_(victim, dst))
      co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                                "skeleton spawn failed on " + dst.name(), mig,
                                stage);
    vm_->trace().log("mpvm", "stage=skeleton task=" + victim.str() + " on " +
                                 dst.name());
  }
  stats.state_bytes =
      t->process().image().migratable_bytes() + t->mailbox().total_bytes();
  // With a completed pre-copy the skeleton already holds the image: only
  // the dirty residue plus the queued messages cross under freeze.
  stats.residue_bytes =
      precopy_stream != nullptr
          ? precopy_residue + t->mailbox().total_bytes()
          : stats.state_bytes;
  // Stream the image in chunks; reading it out of the source address space
  // and placing it into the skeleton costs copy work on top of wire time.
  // A crashed endpoint stalls the stream until it throws DeliveryError; the
  // transfer deadline bounds the whole stage either way.
  const sim::Time transfer_deadline = eng.now() + timeouts_.transfer;
  std::string transfer_failure;
  try {
    // NOTE: keep the co_await out of any larger expression (no ternary):
    // gcc mismanages the lifetime of the materialized temporary across the
    // suspend point and the stream's refcount hits zero while in use.
    std::shared_ptr<net::TcpStream> stream = precopy_stream;
    if (stream == nullptr)
      stream = co_await net::TcpStream::connect(vm_->network(), src.node(),
                                                dst.node());
    std::size_t remaining = stats.residue_bytes;
    while (remaining > 0) {
      if (pf->abort_requested) {
        transfer_failure = "aborted: " + pf->abort_reason;
        break;
      }
      const std::size_t chunk = std::min(tuning_.chunk_bytes, remaining);
      co_await sim::Delay(
          eng, static_cast<double>(chunk) * 8.0 / mc.state_copy_bps);
      co_await stream->send(src.node(), chunk);
      remaining -= chunk;
      if (eng.now() > transfer_deadline) {
        transfer_failure = "state transfer deadline exceeded (" +
                           std::to_string(timeouts_.transfer) + " s)";
        break;
      }
    }
  } catch (const net::DeliveryError& e) {
    transfer_failure = std::string("state transfer failed: ") + e.what();
  }
  if (transfer_failure.empty() && (!dst.up() || !src.up() || t->exited()))
    transfer_failure = "host crashed during state transfer";
  if (!transfer_failure.empty())
    co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                              transfer_failure, mig, stage);
  stats.transfer_done = eng.now();
  sp.annotate(stage, "bytes", std::to_string(stats.state_bytes));
  if (precopy_stream != nullptr)
    sp.annotate(stage, "residue", std::to_string(stats.residue_bytes));
  sp.end_span(stage, obs::SpanStatus::kOk);
  stage = 0;
  vm_->trace().log(
      "mpvm", "stage=transferred task=" + victim.str() + " bytes=" +
                  std::to_string(stats.state_bytes) + " obtrusiveness=" +
                  std::to_string(stats.obtrusiveness()));
  notify_stage(victim, MigrationStage::kTransferred);
  // The state reached the skeleton, but the process has not moved yet: a
  // destination lost at this instant still rolls back cleanly.
  if (!dst.up() || !src.up() || t->exited())
    co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                              "destination lost after state transfer", mig);

  // The skeleton has assumed the state: physically move the process.
  {
    std::unique_ptr<os::Process> proc = src.release(t->process().pid());
    CPE_ASSERT(proc != nullptr);
    dst.adopt(std::move(proc));
  }

  // ---- Stage 4: restart ----------------------------------------------------
  // Past the point of no return: the process now lives at the destination,
  // so a crash there kills the task (no source copy remains to roll back to).
  stage = sp.begin_span(mig_ctx, "mpvm.restart", dst.name(), victim.raw());
  co_await sim::Delay(eng, mc.reenroll);
  if (t->exited() || !dst.up()) {
    for (pvm::Task* other : others)
      if (!other->exited()) other->send_gate(victim).open();
    stats.ok = false;
    stats.failure = "destination crashed during restart; task lost";
    vm_->metrics().counter("mpvm.migrations.failed").inc();
    vm_->trace().log("mpvm", "stage=aborted task=" + victim.str() +
                                 " reason=" + stats.failure);
    // No rollback is possible here (the source copy is gone): the span tree
    // closes aborted with lost=1, which the auditor accepts in lieu of a
    // rollback/recovery child.
    sp.end_span(stage, obs::SpanStatus::kAborted);
    sp.annotate(mig, "lost", "1");
    sp.end_span(mig, obs::SpanStatus::kAborted);
    t->clear_trace_context();
    notify_stage(victim, MigrationStage::kFailed);
    co_return stats;
  }
  const pvm::Tid fresh = vm_->retid(*t, dst);
  // Fencing epoch: everything announcing this move (restart broadcast now,
  // residual route updates later) carries it, so mappings from superseded
  // migrations can never regress a peer's view.
  const std::uint64_t mepoch = vm_->bump_relocation_epoch(victim);
  sp.annotate(mig, "mig_epoch", std::to_string(mepoch));
  for (pvm::Task* other : others) {
    if (other->exited()) continue;
    pvm::Buffer b;
    b.pk_int(victim.raw());
    b.pk_int(fresh.raw());
    b.pk_uint(static_cast<std::uint32_t>(mepoch));
    t->runtime_send(other->tid(), kTagRestart, std::move(b));
  }
  // Arm the old host's forwarding stub: messages from tasks outside the
  // flush scope that raced the move bounce off it to the new home, and each
  // such sender is taught the new mapping (on_residual_forward).
  {
    Residual r;
    r.ctx = mig_ctx;
    r.fresh = fresh;
    r.epoch = mepoch;
    r.expires = eng.now() + tuning_.residual_window;
    residuals_[victim.raw()] = std::move(r);
  }
  co_await sim::Delay(eng, mc.restart_fixed);
  // Resume the frozen burst on the destination CPU.
  if (!t->exited() && dst.up() && frozen_burst && !frozen_burst->done)
    dst.cpu().adopt(frozen_burst);
  stats.restart_done = eng.now();
  sp.annotate(stage, "new_tid", fresh.str());
  sp.end_span(stage, obs::SpanStatus::kOk);
  sp.end_span(mig, obs::SpanStatus::kOk);
  t->clear_trace_context();
  vm_->trace().log("mpvm", "stage=restarted task=" + victim.str() +
                               " new_tid=" + fresh.str() + " migration_time=" +
                               std::to_string(stats.migration_time()));
  {
    // The four-stage latency breakdown (Tables 1/2): one histogram per
    // protocol stage, recorded only for completed migrations so aborted
    // attempts cannot skew the per-stage distributions.
    auto& m = vm_->metrics();
    m.histogram("mpvm.stage.freeze")
        .record(stats.frozen_time - stats.event_time);
    m.histogram("mpvm.stage.flush")
        .record(stats.flush_done - stats.frozen_time);
    m.histogram("mpvm.stage.transfer")
        .record(stats.transfer_done - stats.flush_done);
    m.histogram("mpvm.stage.restart")
        .record(stats.restart_done - stats.transfer_done);
    m.histogram("mpvm.migration.time").record(stats.migration_time());
    m.histogram("mpvm.migration.bytes")
        .record(static_cast<double>(stats.state_bytes));
    m.histogram("mpvm.freeze_window").record(stats.freeze_window());
    if (stats.precopy_bytes > 0) {
      m.histogram("mpvm.stage.precopy")
          .record(stats.frozen_time - stats.event_time);
      m.histogram("mpvm.precopy.bytes")
          .record(static_cast<double>(stats.precopy_bytes));
      m.histogram("mpvm.residue.bytes")
          .record(static_cast<double>(stats.residue_bytes));
    }
    m.counter("mpvm.migrations.completed").inc();
  }
  history_.push_back(stats);
  notify_stage(victim, MigrationStage::kRestarted);
  co_return stats;
}

}  // namespace cpe::mpvm
