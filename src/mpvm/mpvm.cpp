#include "mpvm/mpvm.hpp"

#include "net/tcp.hpp"

namespace cpe::mpvm {

Mpvm::Mpvm(pvm::PvmSystem& vm) : vm_(&vm) {
  vm.set_shim(std::make_unique<MpvmShim>(vm.costs().mpvm));
  vm.set_task_observer([this](pvm::Task& t) { link_runtime_into(t); });
}

void Mpvm::link_runtime_into(pvm::Task& t) {
  t.set_control_handler(
      kTagFlush, [this, &t](pvm::Message m) { on_flush(t, m); });
  t.set_control_handler(kTagFlushAck,
                        [this](pvm::Message m) { on_flush_ack(m); });
  t.set_control_handler(
      kTagRestart, [this, &t](pvm::Message m) { on_restart(t, m); });
}

void Mpvm::on_flush(pvm::Task& self, const pvm::Message& m) {
  // "The flush message is acknowledged and from then onwards, a send to the
  // migrating process blocks the sending process." (§2.1 stage 2)
  pvm::Buffer b(*m.body);
  const pvm::Tid victim(b.upk_int());
  self.send_gate(victim).close();
  pvm::Buffer ack;
  ack.pk_int(victim.raw());
  self.runtime_send(victim, kTagFlushAck, std::move(ack));
}

void Mpvm::on_flush_ack(const pvm::Message& m) {
  pvm::Buffer b(*m.body);
  const std::int32_t victim_raw = b.upk_int();
  auto it = pending_.find(victim_raw);
  if (it == pending_.end()) return;  // stale ack from an aborted protocol
  if (++it->second->received >= it->second->expected)
    it->second->all_acked->fire();
}

void Mpvm::on_restart(pvm::Task& self, const pvm::Message& m) {
  // Restart carries the migrated task's new tid: install the re-mapping
  // and unblock senders (§2.1 stage 4).
  pvm::Buffer b(*m.body);
  const pvm::Tid victim(b.upk_int());
  const pvm::Tid fresh(b.upk_int());
  self.learn_mapping(victim, fresh);
  self.send_gate(victim).open();
}

sim::Co<MigrationStats> Mpvm::migrate(pvm::Tid victim, os::Host& dst) {
  sim::Engine& eng = vm_->engine();
  const auto& mc = vm_->costs().mpvm;

  pvm::Task* t = vm_->find_logical(victim);
  if (t == nullptr || t->exited())
    throw MigrationError("mpvm: no such task: " + victim.str());
  os::Host& src = t->pvmd().host();
  if (&src == &dst)
    throw MigrationError("mpvm: task " + victim.str() + " already on " +
                         dst.name());
  if (vm_->daemon_on(dst) == nullptr)
    throw MigrationError("mpvm: host " + dst.name() +
                         " is not in the virtual machine");
  if (!src.migration_compatible_with(dst))
    throw MigrationError("mpvm: " + src.name() + " (" + src.arch() + ") -> " +
                         dst.name() + " (" + dst.arch() +
                         "): hosts are not migration compatible");
  if (migrating(victim))
    throw MigrationError("mpvm: migration of " + victim.str() +
                         " already in progress");
  // Claim the victim *before* the first suspension point: a second migrate
  // of the same task arriving during the signal-latency window must be
  // refused by the check above.
  auto& pf_slot = pending_[victim.raw()];
  pf_slot = std::make_unique<PendingFlush>();
  sim::ScopeExit unclaim([this, victim] { pending_.erase(victim.raw()); });

  MigrationStats stats;
  stats.task = victim;
  stats.from_host = src.name();
  stats.to_host = dst.name();
  stats.event_time = eng.now();
  vm_->trace().log("mpvm", "stage=event task=" + victim.str() + " " +
                               src.name() + " -> " + dst.name());

  // ---- Stage 1: freeze the task ------------------------------------------
  // SIGMIGRATE delivery latency, then wait out any library critical section.
  co_await sim::Delay(eng, src.config().signal_latency);
  while (t->process().in_library())
    co_await t->process().library_exited().wait();
  if (t->exited())
    throw MigrationError("mpvm: task " + victim.str() +
                         " exited during migration");
  // Freeze a mid-flight compute burst; a task blocked in pvm_recv needs no
  // freezing (the re-implemented pvm_recv permits migration there, §4.1.1).
  std::shared_ptr<os::CpuJob> frozen_burst = t->process().active_burst;
  if (frozen_burst && frozen_burst->scheduler != nullptr)
    frozen_burst->scheduler->detach(frozen_burst);
  stats.frozen_time = eng.now();
  vm_->trace().log("mpvm", "stage=frozen task=" + victim.str());

  // ---- Stage 2: message flushing ------------------------------------------
  std::vector<pvm::Task*> others;
  for (pvm::Task* other : vm_->all_tasks())
    if (other != t && !other->exited()) others.push_back(other);

  PendingFlush* pf = pending_.at(victim.raw()).get();
  pf->expected = static_cast<int>(others.size());
  pf->all_acked = std::make_unique<sim::Trigger>(eng);
  if (!others.empty()) {
    for (pvm::Task* other : others) {
      pvm::Buffer b;
      b.pk_int(victim.raw());
      t->runtime_send(other->tid(), kTagFlush, std::move(b));
    }
    if (pf->received < pf->expected) co_await pf->all_acked->wait();
  }
  if (t->exited())
    throw MigrationError("mpvm: task " + victim.str() +
                         " exited during migration");
  stats.flush_done = eng.now();
  vm_->trace().log("mpvm", "stage=flushed task=" + victim.str() + " acks=" +
                               std::to_string(pf->expected));

  // ---- Stage 3: state transfer to the skeleton ----------------------------
  co_await sim::Delay(eng, mc.skeleton_start);  // fork+exec on `dst`
  vm_->trace().log("mpvm", "stage=skeleton task=" + victim.str() + " on " +
                               dst.name());
  auto stream = co_await net::TcpStream::connect(vm_->network(), src.node(),
                                                 dst.node());
  stats.state_bytes =
      t->process().image().migratable_bytes() + t->mailbox().total_bytes();
  // Stream the image in chunks; reading it out of the source address space
  // and placing it into the skeleton costs copy work on top of wire time.
  constexpr std::size_t kChunk = 256 * 1024;
  std::size_t remaining = stats.state_bytes;
  while (remaining > 0) {
    const std::size_t chunk = std::min(kChunk, remaining);
    co_await sim::Delay(eng,
                        static_cast<double>(chunk) * 8.0 / mc.state_copy_bps);
    co_await stream->send(src.node(), chunk);
    remaining -= chunk;
  }
  stats.transfer_done = eng.now();
  vm_->trace().log(
      "mpvm", "stage=transferred task=" + victim.str() + " bytes=" +
                  std::to_string(stats.state_bytes) + " obtrusiveness=" +
                  std::to_string(stats.obtrusiveness()));

  // The skeleton has assumed the state: physically move the process.
  {
    std::unique_ptr<os::Process> proc = src.release(t->process().pid());
    CPE_ASSERT(proc != nullptr);
    dst.adopt(std::move(proc));
  }

  // ---- Stage 4: restart ----------------------------------------------------
  co_await sim::Delay(eng, mc.reenroll);
  const pvm::Tid fresh = vm_->retid(*t, dst);
  for (pvm::Task* other : others) {
    if (other->exited()) continue;
    pvm::Buffer b;
    b.pk_int(victim.raw());
    b.pk_int(fresh.raw());
    t->runtime_send(other->tid(), kTagRestart, std::move(b));
  }
  co_await sim::Delay(eng, mc.restart_fixed);
  // Resume the frozen burst on the destination CPU.
  if (frozen_burst && !frozen_burst->done) dst.cpu().adopt(frozen_burst);
  stats.restart_done = eng.now();
  vm_->trace().log("mpvm", "stage=restarted task=" + victim.str() +
                               " new_tid=" + fresh.str() + " migration_time=" +
                               std::to_string(stats.migration_time()));
  history_.push_back(stats);
  co_return stats;
}

}  // namespace cpe::mpvm
