#include "mpvm/mpvm.hpp"

#include "net/tcp.hpp"

namespace cpe::mpvm {

std::string_view to_string(MigrationStage s) {
  switch (s) {
    case MigrationStage::kEvent: return "event";
    case MigrationStage::kFrozen: return "frozen";
    case MigrationStage::kFlushed: return "flushed";
    case MigrationStage::kTransferred: return "transferred";
    case MigrationStage::kRestarted: return "restarted";
    case MigrationStage::kFailed: return "failed";
  }
  return "?";
}

Mpvm::Mpvm(pvm::PvmSystem& vm) : vm_(&vm) {
  vm.set_shim(std::make_unique<MpvmShim>(vm.costs().mpvm));
  vm.set_task_observer([this](pvm::Task& t) { link_runtime_into(t); });
}

void Mpvm::link_runtime_into(pvm::Task& t) {
  t.set_control_handler(
      kTagFlush, [this, &t](pvm::Message m) { on_flush(t, m); });
  t.set_control_handler(kTagFlushAck,
                        [this](pvm::Message m) { on_flush_ack(m); });
  t.set_control_handler(
      kTagRestart, [this, &t](pvm::Message m) { on_restart(t, m); });
  t.set_control_handler(
      kTagMigrateAbort, [this, &t](pvm::Message m) { on_abort(t, m); });
}

void Mpvm::on_flush(pvm::Task& self, const pvm::Message& m) {
  // "The flush message is acknowledged and from then onwards, a send to the
  // migrating process blocks the sending process." (§2.1 stage 2)
  pvm::Buffer b(*m.body);
  const pvm::Tid victim(b.upk_int());
  const std::int32_t seq = b.upk_int();
  self.send_gate(victim).close();
  pvm::Buffer ack;
  ack.pk_int(victim.raw());
  ack.pk_int(seq);
  self.runtime_send(victim, kTagFlushAck, std::move(ack));
}

void Mpvm::on_flush_ack(const pvm::Message& m) {
  pvm::Buffer b(*m.body);
  const std::int32_t victim_raw = b.upk_int();
  const std::int32_t seq = b.upk_int();
  auto it = pending_.find(victim_raw);
  if (it == pending_.end()) return;  // stale ack from an aborted protocol
  PendingFlush* pf = it->second.get();
  // An ack answering an *earlier* migration of the same task can still be
  // on the wire when the next protocol claims the slot — before that
  // protocol's flush stage even arms the trigger.  Counting it would fire
  // a null trigger (pre-arm) or complete the new flush with a peer whose
  // send gate is still open; the round stamp keeps the rounds apart.
  if (pf->all_acked == nullptr || seq != pf->seq) return;
  pf->acked.insert(m.src.raw());
  if (pf->received() >= pf->expected) pf->all_acked->fire();
}

void Mpvm::on_restart(pvm::Task& self, const pvm::Message& m) {
  // Restart carries the migrated task's new tid: install the re-mapping
  // and unblock senders (§2.1 stage 4).
  pvm::Buffer b(*m.body);
  const pvm::Tid victim(b.upk_int());
  const pvm::Tid fresh(b.upk_int());
  self.learn_mapping(victim, fresh);
  self.send_gate(victim).open();
}

void Mpvm::on_abort(pvm::Task& self, const pvm::Message& m) {
  // The migration rolled back: the victim stays where it was, so reopen the
  // send gate without installing any re-mapping.
  pvm::Buffer b(*m.body);
  const pvm::Tid victim(b.upk_int());
  self.send_gate(victim).open();
}

void Mpvm::notify_stage(pvm::Tid task, MigrationStage stage) {
  // Copy: an observer (a fault injector) may mutate the observer list.
  const std::vector<StageObserver> obs = stage_observers_;
  for (const auto& o : obs) o(task, stage);
}

MigrationStats Mpvm::abort_migration(pvm::Task* t, pvm::Tid victim,
                                     const std::vector<pvm::Task*>& others,
                                     const std::shared_ptr<os::CpuJob>& burst,
                                     os::Host& src, MigrationStats stats,
                                     const std::string& reason,
                                     obs::SpanId mig_span,
                                     obs::SpanId open_stage) {
  vm_->trace().log("mpvm", "stage=aborted task=" + victim.str() +
                               " reason=" + reason);
  obs::SpanTracer& sp = vm_->spans();
  if (open_stage != 0) sp.end_span(open_stage, obs::SpanStatus::kAborted);
  if (mig_span != 0) {
    const obs::SpanId rb = sp.event(sp.context_of(mig_span), "mpvm.rollback",
                                    src.name(), victim.raw());
    sp.annotate(rb, "reason", reason);
    sp.end_span(mig_span, obs::SpanStatus::kAborted);
  }
  const bool task_alive = t != nullptr && !t->exited();
  // Un-freeze: hand the detached burst back to the (live) source CPU so the
  // victim continues exactly where it was stopped.
  if (task_alive && src.up() && burst && !burst->done &&
      burst->scheduler == nullptr) {
    src.cpu().adopt(burst);
  }
  // Unblock pending senders.  The abort broadcast rides the normal channels
  // when the victim can still transmit; peers unreachable to it (or everyone,
  // when the source is down) get their gates opened directly — a dead host
  // cannot announce its own demise.
  for (pvm::Task* other : others) {
    if (other->exited()) continue;
    if (task_alive && src.up()) {
      pvm::Buffer b;
      b.pk_int(victim.raw());
      t->runtime_send(other->tid(), kTagMigrateAbort, std::move(b));
    } else {
      other->send_gate(victim).open();
    }
  }
  // Cleared only now: the abort broadcast above still rides the trace.
  if (t != nullptr) t->clear_trace_context();
  stats.ok = false;
  stats.failure = reason;
  vm_->metrics().counter("mpvm.migrations.failed").inc();
  notify_stage(victim, MigrationStage::kFailed);
  return stats;
}

sim::Co<MigrationStats> Mpvm::migrate(pvm::Tid victim, os::Host& dst,
                                      std::optional<std::uint64_t> epoch,
                                      obs::TraceContext ctx) {
  sim::Engine& eng = vm_->engine();
  const auto& mc = vm_->costs().mpvm;
  obs::SpanTracer& sp = vm_->spans();

  // Fencing: a command stamped with a deposed leader's term is refused
  // before any protocol state is touched.
  if (fence_ && epoch && !fence_->admit(*epoch)) {
    vm_->metrics().counter("mpvm.fenced").inc();
    vm_->trace().log("mpvm", "fenced task=" + victim.str() + " epoch=" +
                                 std::to_string(*epoch) + " floor=" +
                                 std::to_string(fence_->floor()));
    pvm::Task* ft = vm_->find_logical(victim);
    const std::string fenced_host =
        ft != nullptr ? ft->pvmd().host().name() : std::string("gs");
    const obs::SpanId fenced =
        sp.begin_span(ctx, "mpvm.migrate", fenced_host, victim.raw());
    sp.annotate(fenced, "task", victim.str());
    sp.annotate(fenced, "epoch", std::to_string(*epoch));
    sp.annotate(fenced, "floor", std::to_string(fence_->floor()));
    sp.end_span(fenced, obs::SpanStatus::kFenced);
    throw MigrationError("mpvm: migrate " + victim.str() +
                         " fenced: stale epoch " + std::to_string(*epoch) +
                         " < " + std::to_string(fence_->floor()));
  }

  pvm::Task* t = vm_->find_logical(victim);
  if (t == nullptr || t->exited())
    throw MigrationError("mpvm: no such task: " + victim.str());
  os::Host& src = t->pvmd().host();
  if (&src == &dst)
    throw MigrationError("mpvm: task " + victim.str() + " already on " +
                         dst.name());
  if (vm_->daemon_on(dst) == nullptr)
    throw MigrationError("mpvm: host " + dst.name() +
                         " is not in the virtual machine");
  if (!src.migration_compatible_with(dst))
    throw MigrationError("mpvm: " + src.name() + " (" + src.arch() + ") -> " +
                         dst.name() + " (" + dst.arch() +
                         "): hosts are not migration compatible");
  if (migrating(victim))
    throw MigrationError("mpvm: migration of " + victim.str() +
                         " already in progress");
  // Claim the victim *before* the first suspension point: a second migrate
  // of the same task arriving during the signal-latency window must be
  // refused by the check above.
  auto& pf_slot = pending_[victim.raw()];
  pf_slot = std::make_unique<PendingFlush>();
  pf_slot->seq = ++flush_seq_;
  sim::ScopeExit unclaim([this, victim] { pending_.erase(victim.raw()); });

  MigrationStats stats;
  stats.task = victim;
  stats.from_host = src.name();
  stats.to_host = dst.name();
  stats.event_time = eng.now();
  // Root the migration's span tree.  Every protocol stage, retry, and
  // rollback below becomes a descendant; the victim carries the context for
  // the protocol window so flush/ack/restart traffic is stamped on the wire.
  const obs::SpanId mig =
      sp.begin_span(ctx, "mpvm.migrate", src.name(), victim.raw());
  sp.annotate(mig, "task", victim.str());
  sp.annotate(mig, "from", src.name());
  sp.annotate(mig, "to", dst.name());
  if (epoch) sp.annotate(mig, "epoch", std::to_string(*epoch));
  const obs::TraceContext mig_ctx = sp.context_of(mig);
  t->set_trace_context(mig_ctx);
  vm_->trace().log("mpvm", "stage=event task=" + victim.str() + " " +
                               src.name() + " -> " + dst.name());
  notify_stage(victim, MigrationStage::kEvent);

  // ---- Stage 1: freeze the task ------------------------------------------
  // SIGMIGRATE delivery latency, then wait out any library critical section.
  obs::SpanId stage =
      sp.begin_span(mig_ctx, "mpvm.freeze", src.name(), victim.raw());
  co_await sim::Delay(eng, src.config().signal_latency);
  while (t->process().in_library())
    co_await t->process().library_exited().wait();
  if (t->exited() || !src.up())
    co_return abort_migration(t, victim, {}, nullptr, src, stats,
                              !src.up() ? "source host down before freeze"
                                        : "task exited before freeze",
                              mig, stage);
  // Freeze a mid-flight compute burst; a task blocked in pvm_recv needs no
  // freezing (the re-implemented pvm_recv permits migration there, §4.1.1).
  std::shared_ptr<os::CpuJob> frozen_burst = t->process().active_burst;
  if (frozen_burst && frozen_burst->scheduler != nullptr)
    frozen_burst->scheduler->detach(frozen_burst);
  stats.frozen_time = eng.now();
  sp.end_span(stage, obs::SpanStatus::kOk);
  stage = 0;
  vm_->trace().log("mpvm", "stage=frozen task=" + victim.str());
  notify_stage(victim, MigrationStage::kFrozen);
  if (t->exited() || !src.up())
    co_return abort_migration(t, victim, {}, frozen_burst, src, stats,
                              !src.up() ? "source host crashed while frozen"
                                        : "task died while frozen",
                              mig);

  // ---- Stage 2: message flushing ------------------------------------------
  stage = sp.begin_span(mig_ctx, "mpvm.flush", src.name(), victim.raw());
  std::vector<pvm::Task*> others;
  for (pvm::Task* other : vm_->all_tasks())
    if (other != t && !other->exited()) others.push_back(other);

  PendingFlush* pf = pending_.at(victim.raw()).get();
  pf->expected = static_cast<int>(others.size());
  pf->all_acked = std::make_unique<sim::Trigger>(eng);
  if (!others.empty()) {
    for (pvm::Task* other : others) {
      pvm::Buffer b;
      b.pk_int(victim.raw());
      b.pk_int(pf->seq);
      t->runtime_send(other->tid(), kTagFlush, std::move(b));
    }
    bool flushed = pf->received() >= pf->expected ||
                   co_await pf->all_acked->wait_for(timeouts_.flush_ack);
    if (!flushed && !t->exited() && src.up()) {
      // A single dropped datagram must not cost the whole migration: re-send
      // the flush to the peers still missing and grant one more ack window
      // before charging the stage deadline for real.
      ++flush_retries_;
      vm_->metrics().counter("mpvm.flush.retries").inc();
      vm_->trace().log("mpvm", "stage=flush-retry task=" + victim.str() +
                                   " acks=" + std::to_string(pf->received()) +
                                   "/" + std::to_string(pf->expected));
      const obs::SpanId rt = sp.event(sp.context_of(stage), "mpvm.flush.retry",
                                      src.name(), victim.raw());
      sp.annotate(rt, "acks", std::to_string(pf->received()) + "/" +
                                  std::to_string(pf->expected));
      for (pvm::Task* other : others) {
        if (other->exited() || pf->acked.contains(other->tid().raw()))
          continue;
        pvm::Buffer b;
        b.pk_int(victim.raw());
        b.pk_int(pf->seq);
        t->runtime_send(other->tid(), kTagFlush, std::move(b));
      }
      flushed = pf->received() >= pf->expected ||
                co_await pf->all_acked->wait_for(timeouts_.flush_ack);
    }
    if (!flushed) {
      co_return abort_migration(
          t, victim, others, frozen_burst, src, stats,
          "flush acks timed out (" + std::to_string(pf->received()) + "/" +
              std::to_string(pf->expected) + " after retry, " +
              std::to_string(timeouts_.flush_ack) + " s per window)",
          mig, stage);
    }
  }
  if (t->exited() || !src.up())
    co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                              !src.up() ? "source host crashed during flush"
                                        : "task died during flush",
                              mig, stage);
  stats.flush_done = eng.now();
  sp.annotate(stage, "acks", std::to_string(pf->expected));
  sp.end_span(stage, obs::SpanStatus::kOk);
  stage = 0;
  vm_->trace().log("mpvm", "stage=flushed task=" + victim.str() + " acks=" +
                               std::to_string(pf->expected));
  notify_stage(victim, MigrationStage::kFlushed);
  if (t->exited() || !src.up() || !dst.up())
    co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                              !dst.up() ? "destination host down after flush"
                                        : "source side died after flush",
                              mig);

  // ---- Stage 3: state transfer to the skeleton ----------------------------
  stage = sp.begin_span(mig_ctx, "mpvm.transfer", src.name(), victim.raw());
  co_await sim::Delay(eng, mc.skeleton_start);  // fork+exec on `dst`
  if (!dst.up() || !src.up() || t->exited())
    co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                              "host crashed during skeleton start", mig,
                              stage);
  if (skeleton_spawn_hook_ && !skeleton_spawn_hook_(victim, dst))
    co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                              "skeleton spawn failed on " + dst.name(), mig,
                              stage);
  vm_->trace().log("mpvm", "stage=skeleton task=" + victim.str() + " on " +
                               dst.name());
  stats.state_bytes =
      t->process().image().migratable_bytes() + t->mailbox().total_bytes();
  // Stream the image in chunks; reading it out of the source address space
  // and placing it into the skeleton costs copy work on top of wire time.
  // A crashed endpoint stalls the stream until it throws DeliveryError; the
  // transfer deadline bounds the whole stage either way.
  const sim::Time transfer_deadline = eng.now() + timeouts_.transfer;
  std::string transfer_failure;
  try {
    auto stream = co_await net::TcpStream::connect(vm_->network(), src.node(),
                                                   dst.node());
    constexpr std::size_t kChunk = 256 * 1024;
    std::size_t remaining = stats.state_bytes;
    while (remaining > 0) {
      const std::size_t chunk = std::min(kChunk, remaining);
      co_await sim::Delay(
          eng, static_cast<double>(chunk) * 8.0 / mc.state_copy_bps);
      co_await stream->send(src.node(), chunk);
      remaining -= chunk;
      if (eng.now() > transfer_deadline) {
        transfer_failure = "state transfer deadline exceeded (" +
                           std::to_string(timeouts_.transfer) + " s)";
        break;
      }
    }
  } catch (const net::DeliveryError& e) {
    transfer_failure = std::string("state transfer failed: ") + e.what();
  }
  if (transfer_failure.empty() && (!dst.up() || !src.up() || t->exited()))
    transfer_failure = "host crashed during state transfer";
  if (!transfer_failure.empty())
    co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                              transfer_failure, mig, stage);
  stats.transfer_done = eng.now();
  sp.annotate(stage, "bytes", std::to_string(stats.state_bytes));
  sp.end_span(stage, obs::SpanStatus::kOk);
  stage = 0;
  vm_->trace().log(
      "mpvm", "stage=transferred task=" + victim.str() + " bytes=" +
                  std::to_string(stats.state_bytes) + " obtrusiveness=" +
                  std::to_string(stats.obtrusiveness()));
  notify_stage(victim, MigrationStage::kTransferred);
  // The state reached the skeleton, but the process has not moved yet: a
  // destination lost at this instant still rolls back cleanly.
  if (!dst.up() || !src.up() || t->exited())
    co_return abort_migration(t, victim, others, frozen_burst, src, stats,
                              "destination lost after state transfer", mig);

  // The skeleton has assumed the state: physically move the process.
  {
    std::unique_ptr<os::Process> proc = src.release(t->process().pid());
    CPE_ASSERT(proc != nullptr);
    dst.adopt(std::move(proc));
  }

  // ---- Stage 4: restart ----------------------------------------------------
  // Past the point of no return: the process now lives at the destination,
  // so a crash there kills the task (no source copy remains to roll back to).
  stage = sp.begin_span(mig_ctx, "mpvm.restart", dst.name(), victim.raw());
  co_await sim::Delay(eng, mc.reenroll);
  if (t->exited() || !dst.up()) {
    for (pvm::Task* other : others)
      if (!other->exited()) other->send_gate(victim).open();
    stats.ok = false;
    stats.failure = "destination crashed during restart; task lost";
    vm_->metrics().counter("mpvm.migrations.failed").inc();
    vm_->trace().log("mpvm", "stage=aborted task=" + victim.str() +
                                 " reason=" + stats.failure);
    // No rollback is possible here (the source copy is gone): the span tree
    // closes aborted with lost=1, which the auditor accepts in lieu of a
    // rollback/recovery child.
    sp.end_span(stage, obs::SpanStatus::kAborted);
    sp.annotate(mig, "lost", "1");
    sp.end_span(mig, obs::SpanStatus::kAborted);
    t->clear_trace_context();
    notify_stage(victim, MigrationStage::kFailed);
    co_return stats;
  }
  const pvm::Tid fresh = vm_->retid(*t, dst);
  for (pvm::Task* other : others) {
    if (other->exited()) continue;
    pvm::Buffer b;
    b.pk_int(victim.raw());
    b.pk_int(fresh.raw());
    t->runtime_send(other->tid(), kTagRestart, std::move(b));
  }
  co_await sim::Delay(eng, mc.restart_fixed);
  // Resume the frozen burst on the destination CPU.
  if (!t->exited() && dst.up() && frozen_burst && !frozen_burst->done)
    dst.cpu().adopt(frozen_burst);
  stats.restart_done = eng.now();
  sp.annotate(stage, "new_tid", fresh.str());
  sp.end_span(stage, obs::SpanStatus::kOk);
  sp.end_span(mig, obs::SpanStatus::kOk);
  t->clear_trace_context();
  vm_->trace().log("mpvm", "stage=restarted task=" + victim.str() +
                               " new_tid=" + fresh.str() + " migration_time=" +
                               std::to_string(stats.migration_time()));
  {
    // The four-stage latency breakdown (Tables 1/2): one histogram per
    // protocol stage, recorded only for completed migrations so aborted
    // attempts cannot skew the per-stage distributions.
    auto& m = vm_->metrics();
    m.histogram("mpvm.stage.freeze")
        .record(stats.frozen_time - stats.event_time);
    m.histogram("mpvm.stage.flush")
        .record(stats.flush_done - stats.frozen_time);
    m.histogram("mpvm.stage.transfer")
        .record(stats.transfer_done - stats.flush_done);
    m.histogram("mpvm.stage.restart")
        .record(stats.restart_done - stats.transfer_done);
    m.histogram("mpvm.migration.time").record(stats.migration_time());
    m.histogram("mpvm.migration.bytes")
        .record(static_cast<double>(stats.state_bytes));
    m.counter("mpvm.migrations.completed").inc();
  }
  history_.push_back(stats);
  notify_stage(victim, MigrationStage::kRestarted);
  co_return stats;
}

}  // namespace cpe::mpvm
