#include "mpvm/checkpoint.hpp"

#include "net/tcp.hpp"

namespace cpe::mpvm {

Checkpointer::Checkpointer(pvm::PvmSystem& vm, os::Host& server,
                           CheckpointOptions options)
    : vm_(&vm), server_(&server), options_(options) {
  CPE_EXPECTS(options.interval > 0);
}

void Checkpointer::watch(pvm::Tid task) {
  pvm::Task* t = vm_->find_logical(task);
  CPE_EXPECTS(t != nullptr);
  auto& slot = watches_[task.raw()];
  CPE_EXPECTS(slot == nullptr);  // one watcher per task
  slot = std::make_unique<Watch>();
  slot->stats.task = task;
  // A crash strands a watched process instead of killing it; its image is
  // safe on the server and recover() brings it back elsewhere.
  t->process().set_crash_recoverable(true);
  slot->loop =
      sim::launch(vm_->engine(), checkpoint_loop(task, slot.get()));
}

const CheckpointStats* Checkpointer::stats_for(pvm::Tid task) const {
  auto it = watches_.find(task.raw());
  return it == watches_.end() ? nullptr : &it->second->stats;
}

sim::Co<void> Checkpointer::checkpoint_loop(pvm::Tid task, Watch* w) {
  sim::Engine& eng = vm_->engine();
  for (;;) {
    co_await sim::Delay(eng, options_.interval);
    pvm::Task* t = vm_->find_logical(task);
    if (t == nullptr || t->exited()) co_return;
    // Skip the interval while the task's host or the server is unreachable;
    // the stranded task is not making progress anyway.
    if (!t->pvmd().host().up() || t->pvmd().host().frozen() || !server_->up())
      continue;
    co_await write_checkpoint(*t, *w);
  }
}

sim::Co<void> Checkpointer::write_checkpoint(pvm::Task& t, Watch& w) {
  sim::Engine& eng = vm_->engine();
  const sim::Time start = eng.now();
  os::Host& host = t.pvmd().host();

  // The process is frozen for the duration of the write (Condor semantics).
  std::shared_ptr<os::CpuJob> burst = t.process().active_burst;
  if (burst && burst->scheduler != nullptr)
    burst->scheduler->detach(burst);

  const std::size_t bytes = t.process().image().migratable_bytes();
  std::string failure;
  try {
    auto stream = co_await net::TcpStream::connect(vm_->network(),
                                                   host.node(),
                                                   server_->node());
    co_await stream->send(host.node(), bytes);
  } catch (const net::DeliveryError& e) {
    // A crash mid-write: the partial checkpoint is discarded, the previous
    // one stays valid.  Try again next interval.
    failure = e.what();
  }
  if (failure.empty()) {
    // Server-side disk write, overlapping nothing (1994 checkpoint servers).
    co_await sim::Delay(eng, static_cast<double>(bytes) * 8.0 /
                                 options_.server_disk_bps);
  }

  // Resume the frozen burst — unless something else (a concurrent MPVM
  // migration, a host crash) already re-homed or detached it while writing.
  if (burst && !burst->done && burst->scheduler == nullptr &&
      t.process().active_burst == burst && t.pvmd().host().up())
    t.pvmd().host().cpu().adopt(burst);
  if (!failure.empty()) {
    vm_->trace().log("ckpt", "checkpoint of " + t.tid().str() +
                                 " failed: " + failure);
    co_return;
  }
  w.burst_at_ckpt = burst;
  w.consumed_at_ckpt = burst ? burst->consumed : 0;
  ++w.stats.checkpoints_taken;
  w.stats.total_checkpoint_time += eng.now() - start;
  w.stats.last_checkpoint_at = eng.now();
  vm_->trace().log("ckpt", "checkpoint of " + t.tid().str() + " (" +
                               std::to_string(bytes) + " bytes) in " +
                               std::to_string(eng.now() - start) + " s");
}

sim::Co<CkptVacateStats> Checkpointer::vacate_restart(pvm::Tid task,
                                                      os::Host& dst) {
  sim::Engine& eng = vm_->engine();
  pvm::Task* t = vm_->find_logical(task);
  if (t == nullptr || t->exited())
    throw Error("checkpoint: no such task: " + task.str());
  auto wit = watches_.find(task.raw());
  CPE_EXPECTS(wit != watches_.end());  // must be watched to restart
  Watch& w = *wit->second;
  os::Host& src = t->pvmd().host();
  if (!src.migration_compatible_with(dst))
    throw Error("checkpoint: incompatible restart host " + dst.name());

  CkptVacateStats stats;
  stats.task = task;
  stats.from_host = src.name();
  stats.to_host = dst.name();
  stats.event_time = eng.now();
  stats.image_bytes = t->process().image().migratable_bytes();

  // --- Kill: this is all the source host ever sees.  -----------------------
  co_await sim::Delay(eng, src.config().signal_latency);
  std::shared_ptr<os::CpuJob> burst = t->process().active_burst;
  if (burst && burst->scheduler != nullptr)
    burst->scheduler->detach(burst);
  stats.killed_time = eng.now();
  vm_->trace().log("ckpt", "killed " + task.str() + " on " + src.name() +
                               " (obtrusiveness " +
                               std::to_string(stats.obtrusiveness()) + " s)");

  // --- Restart on `dst` from the last checkpoint.  -------------------------
  // Fetch the image from the checkpoint server.
  auto stream = co_await net::TcpStream::connect(vm_->network(),
                                                 server_->node(), dst.node());
  co_await stream->send(server_->node(), stats.image_bytes);

  // Lost work: whatever the current burst consumed since the checkpoint
  // covering it must be re-executed (the idempotency restriction §5.0).
  if (burst) {
    const bool same_burst = w.burst_at_ckpt.lock() == burst;
    stats.redo_work =
        same_burst ? burst->consumed - w.consumed_at_ckpt : burst->consumed;
    burst->remaining += stats.redo_work;
  }

  // Physically move the process, re-enroll, and resume.
  {
    std::unique_ptr<os::Process> proc = src.release(t->process().pid());
    CPE_ASSERT(proc != nullptr);
    dst.adopt(std::move(proc));
  }
  const pvm::Tid fresh = vm_->retid(*t, dst);
  const std::uint64_t repoch = vm_->bump_relocation_epoch(task);
  for (pvm::Task* other : vm_->all_tasks()) {
    if (other == t || other->exited()) continue;
    pvm::Buffer b;
    b.pk_int(task.raw());
    b.pk_int(fresh.raw());
    b.pk_uint(static_cast<std::uint32_t>(repoch));
    t->runtime_send(other->tid(), kTagRestart, std::move(b));
  }
  if (burst && !burst->done) dst.cpu().adopt(burst);
  stats.restart_done = eng.now();
  vm_->trace().log("ckpt", "restarted " + task.str() + " on " + dst.name() +
                               " redoing " + std::to_string(stats.redo_work) +
                               " s of work");
  history_.push_back(stats);
  co_return stats;
}

sim::Co<CkptVacateStats> Checkpointer::recover(
    pvm::Tid task, os::Host& dst, std::optional<std::uint64_t> epoch,
    obs::TraceContext ctx) {
  sim::Engine& eng = vm_->engine();
  obs::SpanTracer& sp = vm_->spans();
  // Fencing: a recovery ordered by a deposed leader is refused before any
  // state is touched, exactly like a stale migrate (mpvm.cpp).
  if (fence_ && epoch && !fence_->admit(*epoch)) {
    vm_->trace().log("ckpt", "fenced recover of " + task.str() + " epoch=" +
                                 std::to_string(*epoch) + " floor=" +
                                 std::to_string(fence_->floor()));
    const obs::SpanId fenced =
        sp.begin_span(ctx, "ckpt.recover", dst.name(), task.raw());
    sp.annotate(fenced, "task", task.str());
    sp.annotate(fenced, "epoch", std::to_string(*epoch));
    sp.annotate(fenced, "floor", std::to_string(fence_->floor()));
    sp.end_span(fenced, obs::SpanStatus::kFenced);
    throw Error("checkpoint: recover " + task.str() +
                " fenced: stale epoch " + std::to_string(*epoch) + " < " +
                std::to_string(fence_->floor()));
  }
  // One recovery per task at a time: a new leader re-detecting the crash
  // while its predecessor's recovery is still on the wire must not start a
  // second resurrection of the same process.
  if (!recovering_.insert(task.raw()).second)
    throw Error("checkpoint: recovery of " + task.str() +
                " already in flight");
  sim::ScopeExit done([this, task] { recovering_.erase(task.raw()); });
  pvm::Task* t = vm_->find_logical(task);
  if (t == nullptr || t->exited())
    throw Error("checkpoint: no such task: " + task.str());
  auto wit = watches_.find(task.raw());
  CPE_EXPECTS(wit != watches_.end());  // must be watched to recover
  Watch& w = *wit->second;
  os::Host& src = t->pvmd().host();
  CPE_EXPECTS(!src.up());  // recover() is for crash-stranded tasks
  if (!src.migration_compatible_with(dst))
    throw Error("checkpoint: incompatible restart host " + dst.name());
  if (!dst.up() || !server_->up())
    throw Error("checkpoint: cannot recover " + task.str() + ": " +
                (dst.up() ? "server" : dst.name()) + " is down");

  CkptVacateStats stats;
  stats.task = task;
  stats.from_host = src.name();
  stats.to_host = dst.name();
  stats.event_time = eng.now();
  stats.image_bytes = t->process().image().migratable_bytes();
  // No kill stage: the crash already stopped the task (and Host::crash
  // detached its burst).
  stats.killed_time = eng.now();
  std::shared_ptr<os::CpuJob> burst = t->process().active_burst;

  const obs::SpanId rec =
      sp.begin_span(ctx, "ckpt.recover", dst.name(), task.raw());
  sp.annotate(rec, "task", task.str());
  sp.annotate(rec, "from", src.name());
  sp.annotate(rec, "to", dst.name());
  if (epoch) sp.annotate(rec, "epoch", std::to_string(*epoch));
  try {
    // Fetch the image from the checkpoint server onto the new host.
    auto stream = co_await net::TcpStream::connect(vm_->network(),
                                                   server_->node(),
                                                   dst.node());
    co_await stream->send(server_->node(), stats.image_bytes);

    // The fetch yielded: re-validate before touching the process — the task
    // may have exited or been re-homed by another path while the image was
    // on the wire.  (A rebooted source is fine: its stranded processes stay
    // stranded until a recovery release()s them.)
    t = vm_->find_logical(task);
    if (t == nullptr || t->exited())
      throw Error("checkpoint: " + task.str() + " exited during recovery");
    if (&t->pvmd().host() != &src)
      throw Error("checkpoint: " + task.str() + " is no longer stranded on " +
                  src.name());
  } catch (...) {
    sp.end_span(rec, obs::SpanStatus::kAborted);
    throw;
  }

  // Lost work: everything the burst consumed since its covering checkpoint
  // is re-executed (the idempotency restriction §5.0).
  if (burst) {
    const bool same_burst = w.burst_at_ckpt.lock() == burst;
    stats.redo_work =
        same_burst ? burst->consumed - w.consumed_at_ckpt : burst->consumed;
    burst->remaining += stats.redo_work;
  }

  // Physically move the process off the dead host, re-enroll, and resume.
  {
    std::unique_ptr<os::Process> proc = src.release(t->process().pid());
    CPE_ASSERT(proc != nullptr);
    dst.adopt(std::move(proc));
  }
  const pvm::Tid fresh = vm_->retid(*t, dst);
  const std::uint64_t repoch = vm_->bump_relocation_epoch(task);
  for (pvm::Task* other : vm_->all_tasks()) {
    if (other == t || other->exited()) continue;
    pvm::Buffer b;
    b.pk_int(task.raw());
    b.pk_int(fresh.raw());
    b.pk_uint(static_cast<std::uint32_t>(repoch));
    t->runtime_send(other->tid(), kTagRestart, std::move(b));
  }
  if (burst && !burst->done && burst->scheduler == nullptr)
    dst.cpu().adopt(burst);
  stats.restart_done = eng.now();
  sp.annotate(rec, "redo_work", std::to_string(stats.redo_work));
  sp.end_span(rec, obs::SpanStatus::kOk);
  vm_->metrics().counter("ckpt.recoveries").inc();
  vm_->metrics()
      .histogram("ckpt.recovery.time")
      .record(stats.restart_done - stats.event_time);
  vm_->metrics().histogram("ckpt.recovery.redo_work").record(stats.redo_work);
  vm_->trace().log("ckpt", "recovered " + task.str() + " from crash of " +
                               src.name() + " onto " + dst.name() +
                               " redoing " + std::to_string(stats.redo_work) +
                               " s of work");
  history_.push_back(stats);
  co_return stats;
}

}  // namespace cpe::mpvm
