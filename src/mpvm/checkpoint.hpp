// Condor-style checkpoint/restart, the alternative the paper's related-work
// section weighs against MPVM's migrate-current-state policy (§5.0):
//
//   "[Condor] advocates checkpoint-based process migration ... While the
//    checkpoint approach makes migration less obtrusive, there is a cost of
//    taking periodic checkpoints, and there is a file I/O 'idempotency'
//    restriction placed on the application since any part of the computation
//    may be executed more than once."
//
// Implemented here for PVM tasks so the trade-off can be measured
// (bench_ablation_checkpoint):
//  * a watched task is periodically frozen while its memory image streams
//    to a checkpoint server over the shared Ethernet — the recurring cost;
//  * vacating is near-instant (deliver the kill, the work is off the host:
//    minimal obtrusiveness — Condor's selling point);
//  * restart fetches the last checkpoint on the destination and *re-executes
//    the work done since it was taken* — the lost-work term, charged to the
//    revived compute burst.
//
// Modelling notes (documented simplifications): re-execution is charged as
// time against the current compute burst — data-flow effects are not
// rewound, which is safe for Opt-style idempotent computation and is exactly
// the restriction Condor imposes.  Messages delivered between kill and
// restart wait in the task's mailbox (a real system needs message logging or
// loses them — part of why the paper chose migrate-current-state for PVM).
#pragma once

#include "mpvm/mpvm.hpp"
#include "pvm/fence.hpp"
#include "pvm/system.hpp"

namespace cpe::mpvm {

struct CheckpointOptions {
  sim::Time interval = 60.0;
  /// Checkpoint server write rate (1994 disk behind the server).
  double server_disk_bps = 2e6 * 8;
};

struct CheckpointStats {
  pvm::Tid task{};
  int checkpoints_taken = 0;
  sim::Time total_checkpoint_time = 0;  ///< task frozen while writing
  sim::Time last_checkpoint_at = 0;
};

struct CkptVacateStats {
  pvm::Tid task{};
  std::string from_host;
  std::string to_host;
  std::size_t image_bytes = 0;
  double redo_work = 0;  ///< re-executed reference-seconds (lost work)

  sim::Time event_time = 0;
  sim::Time killed_time = 0;   ///< work off the source host (obtrusiveness)
  sim::Time restart_done = 0;  ///< fetched + re-enrolled at the destination

  [[nodiscard]] sim::Time obtrusiveness() const {
    return killed_time - event_time;
  }
  [[nodiscard]] sim::Time migration_time() const {
    return restart_done - event_time;
  }
};

/// Periodic checkpointing of PVM tasks to a checkpoint-server host, plus
/// kill-and-restart vacating.
class Checkpointer {
 public:
  /// `server` is the workstation holding the checkpoint files.
  Checkpointer(pvm::PvmSystem& vm, os::Host& server,
               CheckpointOptions options = {});
  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Begin periodic checkpoints of `task`.  A watched task also becomes
  /// crash-recoverable: a host crash strands it instead of killing it, and
  /// recover() restarts it elsewhere from the last checkpoint.
  void watch(pvm::Tid task);
  [[nodiscard]] bool watches(pvm::Tid task) const {
    return watches_.find(task.raw()) != watches_.end();
  }

  /// Vacate `task` from its host by killing it immediately, then restart it
  /// on `dst` from the most recent checkpoint.
  [[nodiscard]] sim::Co<CkptVacateStats> vacate_restart(pvm::Tid task,
                                                        os::Host& dst);

  /// Restart a task stranded by a host crash on `dst` from its last
  /// checkpoint.  Like vacate_restart without the kill stage: the crash
  /// already stopped the task.  Work since the last checkpoint is
  /// re-executed (redo_work); messages that raced the crash are lost.
  ///
  /// `epoch` stamps the command with the issuing scheduler's election term;
  /// when a fence is installed (set_fence) a stale epoch throws before any
  /// state is touched, so a deposed leader can never resurrect a task its
  /// successor already owns.  At most one recovery per task may be in
  /// flight at a time (the others throw), so two leaders racing through a
  /// failover can never double-resurrect.
  ///
  /// `ctx` parents the "ckpt.recover" span under the caller's trace (a GS
  /// recovery decision); fenced refusals and aborted fetches record with
  /// failure status (DESIGN.md §10).
  [[nodiscard]] sim::Co<CkptVacateStats> recover(
      pvm::Tid task, os::Host& dst,
      std::optional<std::uint64_t> epoch = std::nullopt,
      obs::TraceContext ctx = {});

  /// Install the fencing token shared with the (replicated) scheduler.
  void set_fence(std::shared_ptr<pvm::MigrationFence> fence) noexcept {
    fence_ = std::move(fence);
  }
  [[nodiscard]] const std::shared_ptr<pvm::MigrationFence>& fence()
      const noexcept {
    return fence_;
  }

  /// True while a recover() of `task` is still in flight.
  [[nodiscard]] bool recovering(pvm::Tid task) const {
    return recovering_.find(task.raw()) != recovering_.end();
  }

  [[nodiscard]] const CheckpointStats* stats_for(pvm::Tid task) const;
  [[nodiscard]] const std::vector<CkptVacateStats>& vacate_history()
      const noexcept {
    return history_;
  }

 private:
  struct Watch {
    CheckpointStats stats;
    /// The compute burst that was live at the last checkpoint, and how much
    /// service it had consumed then — the baseline for lost-work accounting.
    std::weak_ptr<os::CpuJob> burst_at_ckpt;
    double consumed_at_ckpt = 0;
    sim::ProcHandle loop;
  };

  [[nodiscard]] sim::Co<void> checkpoint_loop(pvm::Tid task, Watch* w);
  [[nodiscard]] sim::Co<void> write_checkpoint(pvm::Task& t, Watch& w);

  pvm::PvmSystem* vm_;
  os::Host* server_;
  CheckpointOptions options_;
  std::unordered_map<std::int32_t, std::unique_ptr<Watch>> watches_;
  std::vector<CkptVacateStats> history_;
  std::shared_ptr<pvm::MigrationFence> fence_;
  std::unordered_set<std::int32_t> recovering_;
};

}  // namespace cpe::mpvm
