// MPVM: transparent migration of process-based virtual processors
// (paper §2.1, evaluated in §4.1).
//
// The protocol has four stages, driven here exactly as the paper describes:
//
//   1. Migration event — the global scheduler orders the mpvmd on the
//      to-be-vacated host to move a task.  A SIGMIGRATE is delivered; if the
//      task is executing inside the run-time library, migration waits until
//      it leaves (the re-entrancy restriction of §2.1), otherwise the task
//      is frozen wherever it is — mid-computation or blocked in pvm_recv.
//   2. Message flushing — a flush message goes to every other task; each
//      acknowledges and from then on *blocks* any send to the migrating
//      task.  Because flush/ack travel the same FIFO channels as data, an
//      ack guarantees all earlier messages have been delivered.
//   3. VP state transfer — a skeleton process (same executable) is started
//      on the destination; the data/heap/stack/context image plus queued
//      messages stream to it over a dedicated TCP connection.
//   4. Restart — the migrated process re-enrolls with the destination mpvmd
//      (getting a new tid), broadcasts a restart message that both unblocks
//      pending senders and installs the old->new tid mapping everyone's
//      library consults from then on.
//
// Measurement hooks mirror the paper's two metrics: *obtrusiveness* (event ->
// work off the source machine, i.e. end of stage 3) and *migration cost*
// (event -> task re-integrated, end of stage 4).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pvm/fence.hpp"
#include "pvm/system.hpp"

namespace cpe::mpvm {

/// Control tags used by the MPVM runtime.
inline constexpr int kTagFlush = pvm::kControlTagBase + 1;
inline constexpr int kTagFlushAck = pvm::kControlTagBase + 2;
inline constexpr int kTagRestart = pvm::kControlTagBase + 3;
/// Broadcast when a migration is rolled back: peers reopen their send gates
/// to the victim without installing any tid re-mapping.
inline constexpr int kTagMigrateAbort = pvm::kControlTagBase + 4;

class MigrationError : public Error {
 public:
  using Error::Error;
};

/// Protocol checkpoints of one migration, reported to stage observers as the
/// protocol advances.  kFailed is reported once when a migration rolls back.
enum class MigrationStage : std::uint8_t {
  kEvent,
  kFrozen,
  kFlushed,
  kTransferred,
  kRestarted,
  kFailed,
};

[[nodiscard]] std::string_view to_string(MigrationStage s);

/// Deadlines for the blocking stages of the protocol.  On expiry the
/// migration rolls back instead of hanging (a dead peer never acks a flush;
/// a crashed destination never drains the state stream).
struct MpvmTimeouts {
  sim::Time flush_ack = 5.0;  ///< stage-2: all acks in by then
  sim::Time transfer = 30.0;  ///< stage-3: state off the source by then
};

/// Timing of one migration (Figure 1 / Table 2 reproduction).  Failed
/// migrations (ok == false) carry the timestamps reached before the abort
/// and a human-readable failure reason; they are not entered in history().
struct MigrationStats {
  pvm::Tid task{};
  std::string from_host;
  std::string to_host;
  std::size_t state_bytes = 0;
  bool ok = true;
  std::string failure;  ///< empty when ok

  sim::Time event_time = 0;     ///< migrate order received
  sim::Time frozen_time = 0;    ///< task stopped (signal + library exit)
  sim::Time flush_done = 0;     ///< all flush acks in
  sim::Time transfer_done = 0;  ///< state fully off the source host
  sim::Time restart_done = 0;   ///< restart broadcast out, task resumed

  [[nodiscard]] sim::Time obtrusiveness() const {
    return transfer_done - event_time;
  }
  [[nodiscard]] sim::Time migration_time() const {
    return restart_done - event_time;
  }
};

/// The per-call library overhead MPVM adds to stock PVM (§4.1.1): the
/// re-entrancy flag and the tid re-map on every send and receive.
class MpvmShim final : public pvm::LibraryShim {
 public:
  explicit MpvmShim(const calib::MpvmCosts& c) : costs_(c) {}
  [[nodiscard]] sim::Time send_overhead(const pvm::Task&) const override {
    return costs_.reentry_flag + costs_.tid_remap;
  }
  [[nodiscard]] sim::Time recv_overhead(const pvm::Task&) const override {
    return costs_.reentry_flag + costs_.tid_remap;
  }

 private:
  calib::MpvmCosts costs_;
};

/// The MPVM runtime for a PVM virtual machine.  Construct it once after
/// creating the PvmSystem (and before spawning tasks): it installs the
/// library shim and transparently links the flush/restart handlers into
/// every task.  Applications need only re-compilation — i.e. nothing here
/// touches application code.
class Mpvm {
 public:
  explicit Mpvm(pvm::PvmSystem& vm);
  Mpvm(const Mpvm&) = delete;
  Mpvm& operator=(const Mpvm&) = delete;

  [[nodiscard]] pvm::PvmSystem& vm() const noexcept { return *vm_; }

  /// Migrate the task with logical tid `victim` to `dst`.  Completes when
  /// the migration protocol finishes (end of the restart stage).  Throws
  /// MigrationError for unknown/exited tasks, a destination outside the
  /// virtual machine, or a migration-incompatible destination (§3.3).
  ///
  /// Run-time failures (a host crashing mid-protocol, a flush ack or the
  /// state transfer timing out, the skeleton failing to start) do NOT throw:
  /// the migration rolls back — the victim is re-adopted by the source CPU
  /// and peers' send gates reopen — and the returned stats have ok == false
  /// with the reason in `failure`.
  ///
  /// `epoch` stamps the command with the issuing scheduler's election term;
  /// when a fence is installed (set_fence) a stale epoch throws
  /// MigrationError before any protocol state is touched, so a deposed
  /// leader can never start a migration.
  ///
  /// `ctx` roots the migration's span tree under the caller's trace (a GS
  /// decision); an empty context starts a fresh trace.  The whole protocol —
  /// freeze/flush/transfer/restart, retries, rollbacks, fencing refusals —
  /// records as child spans of one "mpvm.migrate" span (DESIGN.md §10).
  [[nodiscard]] sim::Co<MigrationStats> migrate(
      pvm::Tid victim, os::Host& dst,
      std::optional<std::uint64_t> epoch = std::nullopt,
      obs::TraceContext ctx = {});

  /// Install the fencing token shared with the (replicated) scheduler.
  void set_fence(std::shared_ptr<pvm::MigrationFence> fence) noexcept {
    fence_ = std::move(fence);
  }
  [[nodiscard]] const std::shared_ptr<pvm::MigrationFence>& fence() const
      noexcept {
    return fence_;
  }

  /// True while `task` has a migration in progress.
  [[nodiscard]] bool migrating(pvm::Tid task) const {
    return pending_.find(task.raw()) != pending_.end();
  }

  [[nodiscard]] const std::vector<MigrationStats>& history() const noexcept {
    return history_;
  }

  /// Times the flush stage re-sent its flush round after a lost ack instead
  /// of rolling the migration back immediately.
  [[nodiscard]] std::uint64_t flush_retries() const noexcept {
    return flush_retries_;
  }

  // -- Failure handling ------------------------------------------------------
  void set_timeouts(MpvmTimeouts t) noexcept { timeouts_ = t; }
  [[nodiscard]] const MpvmTimeouts& timeouts() const noexcept {
    return timeouts_;
  }

  /// Stage observers fire synchronously as each protocol stage completes
  /// (fault injectors use this to crash hosts at precise protocol points).
  using StageObserver = std::function<void(pvm::Tid, MigrationStage)>;
  void add_stage_observer(StageObserver obs) {
    stage_observers_.push_back(std::move(obs));
  }

  /// Consulted after the skeleton fork+exec delay; returning false models a
  /// failed skeleton spawn (e.g. exec failure on the destination) and rolls
  /// the migration back.
  using SkeletonSpawnHook = std::function<bool(pvm::Tid, os::Host&)>;
  void set_skeleton_spawn_hook(SkeletonSpawnHook hook) {
    skeleton_spawn_hook_ = std::move(hook);
  }

 private:
  struct PendingFlush {
    int expected = 0;
    // Which flush round the acks must answer: an ack that raced in from a
    // *previous* migration of the same task (still on the wire when the
    // next protocol claims the slot) carries an older seq and is dropped.
    std::int32_t seq = 0;
    // Ackers by logical tid: duplicate acks (a re-sent flush answered twice)
    // must not count double.
    std::unordered_set<std::int32_t> acked;
    std::unique_ptr<sim::Trigger> all_acked;

    [[nodiscard]] int received() const noexcept {
      return static_cast<int>(acked.size());
    }
  };

  void link_runtime_into(pvm::Task& t);
  void on_flush(pvm::Task& self, const pvm::Message& m);
  void on_flush_ack(const pvm::Message& m);
  void on_restart(pvm::Task& self, const pvm::Message& m);
  void on_abort(pvm::Task& self, const pvm::Message& m);

  void notify_stage(pvm::Tid task, MigrationStage stage);
  /// Roll back a migration that failed before the restart stage: re-adopt
  /// the frozen burst on the (live) source, reopen peers' send gates, and
  /// mark the stats failed.  Never throws.
  /// `mig_span`/`open_stage` close the migration's span tree: the open
  /// stage (if any) ends aborted, an "mpvm.rollback" child records the
  /// cleanup, and the migration span itself ends aborted.
  MigrationStats abort_migration(pvm::Task* t, pvm::Tid victim,
                                 const std::vector<pvm::Task*>& others,
                                 const std::shared_ptr<os::CpuJob>& burst,
                                 os::Host& src, MigrationStats stats,
                                 const std::string& reason,
                                 obs::SpanId mig_span = 0,
                                 obs::SpanId open_stage = 0);

  pvm::PvmSystem* vm_;
  MpvmTimeouts timeouts_;
  // unique_ptr values: PendingFlush addresses must survive rehashing when
  // migrations run concurrently.
  std::unordered_map<std::int32_t, std::unique_ptr<PendingFlush>> pending_;
  std::vector<MigrationStats> history_;
  std::vector<StageObserver> stage_observers_;
  SkeletonSpawnHook skeleton_spawn_hook_;
  std::shared_ptr<pvm::MigrationFence> fence_;
  std::uint64_t flush_retries_ = 0;
  std::int32_t flush_seq_ = 0;  ///< stamps each migration's flush round
};

}  // namespace cpe::mpvm
