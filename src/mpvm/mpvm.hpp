// MPVM: transparent migration of process-based virtual processors
// (paper §2.1, evaluated in §4.1).
//
// The protocol has four stages, driven here exactly as the paper describes:
//
//   1. Migration event — the global scheduler orders the mpvmd on the
//      to-be-vacated host to move a task.  A SIGMIGRATE is delivered; if the
//      task is executing inside the run-time library, migration waits until
//      it leaves (the re-entrancy restriction of §2.1), otherwise the task
//      is frozen wherever it is — mid-computation or blocked in pvm_recv.
//   2. Message flushing — a flush message goes to every other task; each
//      acknowledges and from then on *blocks* any send to the migrating
//      task.  Because flush/ack travel the same FIFO channels as data, an
//      ack guarantees all earlier messages have been delivered.
//   3. VP state transfer — a skeleton process (same executable) is started
//      on the destination; the data/heap/stack/context image plus queued
//      messages stream to it over a dedicated TCP connection.
//   4. Restart — the migrated process re-enrolls with the destination mpvmd
//      (getting a new tid), broadcasts a restart message that both unblocks
//      pending senders and installs the old->new tid mapping everyone's
//      library consults from then on.
//
// Measurement hooks mirror the paper's two metrics: *obtrusiveness* (event ->
// work off the source machine, i.e. end of stage 3) and *migration cost*
// (event -> task re-integrated, end of stage 4).
//
// Concurrency redesign (DESIGN.md §12): the flush round is *scoped* to the
// victim's correspondent set, a correspondent itself frozen mid-migration
// has its ack substituted by its mpvmd stub, the skeleton left on the old
// host forwards residual messages (with per-victim fencing epochs dropping
// stale mappings), and an optional pre-copy stage streams the image while
// the task still runs so the freeze window is O(dirty residue) instead of
// O(image).  Together these let N migrations proceed concurrently without
// the cross-flush deadlock that used to force one-at-a-time scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pvm/fence.hpp"
#include "pvm/system.hpp"

namespace cpe::mpvm {

/// Control tags used by the MPVM runtime.
inline constexpr int kTagFlush = pvm::kControlTagBase + 1;
inline constexpr int kTagFlushAck = pvm::kControlTagBase + 2;
inline constexpr int kTagRestart = pvm::kControlTagBase + 3;
/// Broadcast when a migration is rolled back: peers reopen their send gates
/// to the victim without installing any tid re-mapping.
inline constexpr int kTagMigrateAbort = pvm::kControlTagBase + 4;
/// Sent by the residual-forwarding stub to a sender still using a migrated
/// task's old tid: carries the new mapping plus its migration epoch so the
/// sender's next message goes direct instead of bouncing off the old host.
inline constexpr int kTagRouteUpdate = pvm::kControlTagBase + 5;

class MigrationError : public Error {
 public:
  using Error::Error;
};

/// Protocol checkpoints of one migration, reported to stage observers as the
/// protocol advances.  kFailed is reported once when a migration rolls back.
enum class MigrationStage : std::uint8_t {
  kEvent,
  kFrozen,
  kFlushed,
  kTransferred,
  kRestarted,
  kFailed,
};

[[nodiscard]] std::string_view to_string(MigrationStage s);

/// Deadlines for the blocking stages of the protocol.  On expiry the
/// migration rolls back instead of hanging (a dead peer never acks a flush;
/// a crashed destination never drains the state stream).
struct MpvmTimeouts {
  sim::Time flush_ack = 5.0;  ///< stage-2: all acks in by then
  sim::Time transfer = 30.0;  ///< stage-3: state off the source by then
};

/// Tuning of the concurrent-migration machinery (DESIGN.md §12).
struct MpvmTuning {
  /// A correspondent frozen mid-migration cannot run its own flush handler
  /// (the re-entrancy restriction applies to the runtime too).  With
  /// substitution on (default) its mpvmd stub closes the gate and acks in
  /// its stead; off reproduces the historic cross-flush deadlock — two
  /// overlapping migrations time each other out — and is kept for tests.
  bool ack_substitution = true;
  /// Incremental transfer: stream the image while the task still runs, then
  /// freeze only for the dirty residue.  Off by default — the paper's
  /// Table 2 numbers are full-image stop-and-copy.
  bool precopy = false;
  /// Transfer granularity for both the pre-copy stream and the stop-copy.
  std::size_t chunk_bytes = 256 * 1024;
  /// How fast the still-running task re-dirties its image during pre-copy;
  /// the residue moved under freeze is min(image, rate * precopy_duration),
  /// floored at the context pages (always dirty at freeze).
  double dirty_rate_bps = 0.5e6 * 8;
  /// How long the old host's stub keeps its residual-forwarding record (and
  /// keeps teaching stale senders the new mapping) after a restart.
  sim::Time residual_window = 30.0;
};

/// Timing of one migration (Figure 1 / Table 2 reproduction).  Failed
/// migrations (ok == false) carry the timestamps reached before the abort
/// and a human-readable failure reason; they are not entered in history().
struct MigrationStats {
  pvm::Tid task{};
  std::string from_host;
  std::string to_host;
  std::size_t state_bytes = 0;    ///< full VP state (image + queued messages)
  std::size_t precopy_bytes = 0;  ///< streamed while the task still ran
  std::size_t residue_bytes = 0;  ///< moved during the freeze window
  bool ok = true;
  std::string failure;  ///< empty when ok

  sim::Time event_time = 0;     ///< migrate order received
  sim::Time frozen_time = 0;    ///< task stopped (signal + library exit)
  sim::Time flush_done = 0;     ///< all flush acks in
  sim::Time transfer_done = 0;  ///< state fully off the source host
  sim::Time restart_done = 0;   ///< restart broadcast out, task resumed

  [[nodiscard]] sim::Time obtrusiveness() const {
    return transfer_done - event_time;
  }
  [[nodiscard]] sim::Time migration_time() const {
    return restart_done - event_time;
  }
  /// Time the task was actually stopped (the user-visible stall).  With
  /// pre-copy this is O(residue); stop-and-copy makes it O(image).
  [[nodiscard]] sim::Time freeze_window() const {
    return restart_done - frozen_time;
  }
};

/// The per-call library overhead MPVM adds to stock PVM (§4.1.1): the
/// re-entrancy flag and the tid re-map on every send and receive.
class MpvmShim final : public pvm::LibraryShim {
 public:
  explicit MpvmShim(const calib::MpvmCosts& c) : costs_(c) {}
  [[nodiscard]] sim::Time send_overhead(const pvm::Task&) const override {
    return costs_.reentry_flag + costs_.tid_remap;
  }
  [[nodiscard]] sim::Time recv_overhead(const pvm::Task&) const override {
    return costs_.reentry_flag + costs_.tid_remap;
  }

 private:
  calib::MpvmCosts costs_;
};

/// The MPVM runtime for a PVM virtual machine.  Construct it once after
/// creating the PvmSystem (and before spawning tasks): it installs the
/// library shim and transparently links the flush/restart handlers into
/// every task.  Applications need only re-compilation — i.e. nothing here
/// touches application code.
class Mpvm {
 public:
  explicit Mpvm(pvm::PvmSystem& vm);
  Mpvm(const Mpvm&) = delete;
  Mpvm& operator=(const Mpvm&) = delete;

  [[nodiscard]] pvm::PvmSystem& vm() const noexcept { return *vm_; }

  /// Migrate the task with logical tid `victim` to `dst`.  Completes when
  /// the migration protocol finishes (end of the restart stage).  Throws
  /// MigrationError for unknown/exited tasks, a destination outside the
  /// virtual machine, or a migration-incompatible destination (§3.3).
  ///
  /// Run-time failures (a host crashing mid-protocol, a flush ack or the
  /// state transfer timing out, the skeleton failing to start) do NOT throw:
  /// the migration rolls back — the victim is re-adopted by the source CPU
  /// and peers' send gates reopen — and the returned stats have ok == false
  /// with the reason in `failure`.
  ///
  /// `epoch` stamps the command with the issuing scheduler's election term;
  /// when a fence is installed (set_fence) a stale epoch throws
  /// MigrationError before any protocol state is touched, so a deposed
  /// leader can never start a migration.
  ///
  /// `ctx` roots the migration's span tree under the caller's trace (a GS
  /// decision); an empty context starts a fresh trace.  The whole protocol —
  /// freeze/flush/transfer/restart, retries, rollbacks, fencing refusals —
  /// records as child spans of one "mpvm.migrate" span (DESIGN.md §10).
  [[nodiscard]] sim::Co<MigrationStats> migrate(
      pvm::Tid victim, os::Host& dst,
      std::optional<std::uint64_t> epoch = std::nullopt,
      obs::TraceContext ctx = {});

  /// Install the fencing token shared with the (replicated) scheduler.
  void set_fence(std::shared_ptr<pvm::MigrationFence> fence) noexcept {
    fence_ = std::move(fence);
  }
  [[nodiscard]] const std::shared_ptr<pvm::MigrationFence>& fence() const
      noexcept {
    return fence_;
  }

  /// True while `task` has a migration in progress.
  [[nodiscard]] bool migrating(pvm::Tid task) const {
    return pending_.find(task.raw()) != pending_.end();
  }

  [[nodiscard]] const std::vector<MigrationStats>& history() const noexcept {
    return history_;
  }

  /// Times the flush stage re-sent its flush round after a lost ack instead
  /// of rolling the migration back immediately.
  [[nodiscard]] std::uint64_t flush_retries() const noexcept {
    return flush_retries_;
  }

  // -- Failure handling ------------------------------------------------------
  void set_timeouts(MpvmTimeouts t) noexcept { timeouts_ = t; }
  [[nodiscard]] const MpvmTimeouts& timeouts() const noexcept {
    return timeouts_;
  }

  void set_tuning(MpvmTuning t) noexcept { tuning_ = t; }
  [[nodiscard]] const MpvmTuning& tuning() const noexcept { return tuning_; }

  /// Ask an in-flight migration of `victim` to abort at its next protocol
  /// checkpoint (flush wait or transfer chunk boundary); the abort then
  /// rides the normal rollback path.  Returns false when no migration of
  /// `victim` is pending or an abort was already requested.  The GS
  /// deadlock watchdog calls this for migrations stalled past deadline.
  bool request_abort(pvm::Tid victim, std::string reason);

  /// Fencing epoch of `task`'s newest *completed* relocation (0 when it has
  /// never moved).  Restart broadcasts and residual route updates carry it;
  /// receivers drop mappings older than what they already installed.
  [[nodiscard]] std::uint64_t migration_epoch(pvm::Tid task) const {
    return vm_->relocation_epoch(task);
  }

  /// Stage observers fire synchronously as each protocol stage completes
  /// (fault injectors use this to crash hosts at precise protocol points).
  using StageObserver = std::function<void(pvm::Tid, MigrationStage)>;
  void add_stage_observer(StageObserver obs) {
    stage_observers_.push_back(std::move(obs));
  }

  /// Consulted after the skeleton fork+exec delay; returning false models a
  /// failed skeleton spawn (e.g. exec failure on the destination) and rolls
  /// the migration back.
  using SkeletonSpawnHook = std::function<bool(pvm::Tid, os::Host&)>;
  void set_skeleton_spawn_hook(SkeletonSpawnHook hook) {
    skeleton_spawn_hook_ = std::move(hook);
  }

 private:
  struct PendingFlush {
    int expected = 0;
    // Which flush round the acks must answer: an ack that raced in from a
    // *previous* migration of the same task (still on the wire when the
    // next protocol claims the slot) carries an older seq and is dropped.
    std::int32_t seq = 0;
    // Ackers by logical tid: duplicate acks (a re-sent flush answered twice)
    // must not count double.
    std::unordered_set<std::int32_t> acked;
    std::unique_ptr<sim::Trigger> all_acked;
    // Set once the freeze stage completes: a flush arriving for this task
    // finds it unable to run handlers (ack substitution kicks in).
    bool frozen = false;
    // Watchdog abort: checked at every protocol wait/chunk boundary.
    bool abort_requested = false;
    std::string abort_reason;

    [[nodiscard]] int received() const noexcept {
      return static_cast<int>(acked.size());
    }
  };

  /// Residual-forwarding record the old host's stub keeps after a restart:
  /// enough to trace forwards into the migration's span tree and to teach
  /// each stale sender the new mapping exactly once.
  struct Residual {
    obs::TraceContext ctx;
    pvm::Tid fresh{};
    std::uint64_t epoch = 0;
    sim::Time expires = 0;
    std::unordered_set<std::int32_t> updated;

    Residual() {}
  };

  void link_runtime_into(pvm::Task& t);
  void on_flush(pvm::Task& self, const pvm::Message& m);
  void on_flush_ack(const pvm::Message& m);
  void on_restart(pvm::Task& self, const pvm::Message& m);
  void on_abort(pvm::Task& self, const pvm::Message& m);
  void on_route_update(pvm::Task& self, const pvm::Message& m);
  void on_residual_forward(const pvm::Message& m, pvm::Task& t, pvm::Pvmd& at);

  void notify_stage(pvm::Tid task, MigrationStage stage);
  /// Roll back a migration that failed before the restart stage: re-adopt
  /// the frozen burst on the (live) source, reopen peers' send gates, and
  /// mark the stats failed.  Never throws.
  /// `mig_span`/`open_stage` close the migration's span tree: the open
  /// stage (if any) ends aborted, an "mpvm.rollback" child records the
  /// cleanup, and the migration span itself ends aborted.
  MigrationStats abort_migration(pvm::Task* t, pvm::Tid victim,
                                 const std::vector<pvm::Task*>& others,
                                 const std::shared_ptr<os::CpuJob>& burst,
                                 os::Host& src, MigrationStats stats,
                                 const std::string& reason,
                                 obs::SpanId mig_span = 0,
                                 obs::SpanId open_stage = 0);

  pvm::PvmSystem* vm_;
  /// Cached `mpvm.migrations.inflight` gauge (concurrent protocol windows;
  /// obs::Analytics tracks it as the concurrency series).
  obs::Gauge* inflight_gauge_ = nullptr;
  MpvmTimeouts timeouts_;
  MpvmTuning tuning_;
  // unique_ptr values: PendingFlush addresses must survive rehashing when
  // migrations run concurrently.
  std::unordered_map<std::int32_t, std::unique_ptr<PendingFlush>> pending_;
  std::unordered_map<std::int32_t, Residual> residuals_;
  std::vector<MigrationStats> history_;
  std::vector<StageObserver> stage_observers_;
  SkeletonSpawnHook skeleton_spawn_hook_;
  std::shared_ptr<pvm::MigrationFence> fence_;
  std::uint64_t flush_retries_ = 0;
  std::int32_t flush_seq_ = 0;  ///< stamps each migration's flush round
};

}  // namespace cpe::mpvm
