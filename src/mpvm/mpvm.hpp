// MPVM: transparent migration of process-based virtual processors
// (paper §2.1, evaluated in §4.1).
//
// The protocol has four stages, driven here exactly as the paper describes:
//
//   1. Migration event — the global scheduler orders the mpvmd on the
//      to-be-vacated host to move a task.  A SIGMIGRATE is delivered; if the
//      task is executing inside the run-time library, migration waits until
//      it leaves (the re-entrancy restriction of §2.1), otherwise the task
//      is frozen wherever it is — mid-computation or blocked in pvm_recv.
//   2. Message flushing — a flush message goes to every other task; each
//      acknowledges and from then on *blocks* any send to the migrating
//      task.  Because flush/ack travel the same FIFO channels as data, an
//      ack guarantees all earlier messages have been delivered.
//   3. VP state transfer — a skeleton process (same executable) is started
//      on the destination; the data/heap/stack/context image plus queued
//      messages stream to it over a dedicated TCP connection.
//   4. Restart — the migrated process re-enrolls with the destination mpvmd
//      (getting a new tid), broadcasts a restart message that both unblocks
//      pending senders and installs the old->new tid mapping everyone's
//      library consults from then on.
//
// Measurement hooks mirror the paper's two metrics: *obtrusiveness* (event ->
// work off the source machine, i.e. end of stage 3) and *migration cost*
// (event -> task re-integrated, end of stage 4).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "pvm/system.hpp"

namespace cpe::mpvm {

/// Control tags used by the MPVM runtime.
inline constexpr int kTagFlush = pvm::kControlTagBase + 1;
inline constexpr int kTagFlushAck = pvm::kControlTagBase + 2;
inline constexpr int kTagRestart = pvm::kControlTagBase + 3;

class MigrationError : public Error {
 public:
  using Error::Error;
};

/// Timing of one completed migration (Figure 1 / Table 2 reproduction).
struct MigrationStats {
  pvm::Tid task{};
  std::string from_host;
  std::string to_host;
  std::size_t state_bytes = 0;

  sim::Time event_time = 0;     ///< migrate order received
  sim::Time frozen_time = 0;    ///< task stopped (signal + library exit)
  sim::Time flush_done = 0;     ///< all flush acks in
  sim::Time transfer_done = 0;  ///< state fully off the source host
  sim::Time restart_done = 0;   ///< restart broadcast out, task resumed

  [[nodiscard]] sim::Time obtrusiveness() const {
    return transfer_done - event_time;
  }
  [[nodiscard]] sim::Time migration_time() const {
    return restart_done - event_time;
  }
};

/// The per-call library overhead MPVM adds to stock PVM (§4.1.1): the
/// re-entrancy flag and the tid re-map on every send and receive.
class MpvmShim final : public pvm::LibraryShim {
 public:
  explicit MpvmShim(const calib::MpvmCosts& c) : costs_(c) {}
  [[nodiscard]] sim::Time send_overhead(const pvm::Task&) const override {
    return costs_.reentry_flag + costs_.tid_remap;
  }
  [[nodiscard]] sim::Time recv_overhead(const pvm::Task&) const override {
    return costs_.reentry_flag + costs_.tid_remap;
  }

 private:
  calib::MpvmCosts costs_;
};

/// The MPVM runtime for a PVM virtual machine.  Construct it once after
/// creating the PvmSystem (and before spawning tasks): it installs the
/// library shim and transparently links the flush/restart handlers into
/// every task.  Applications need only re-compilation — i.e. nothing here
/// touches application code.
class Mpvm {
 public:
  explicit Mpvm(pvm::PvmSystem& vm);
  Mpvm(const Mpvm&) = delete;
  Mpvm& operator=(const Mpvm&) = delete;

  [[nodiscard]] pvm::PvmSystem& vm() const noexcept { return *vm_; }

  /// Migrate the task with logical tid `victim` to `dst`.  Completes when
  /// the migration protocol finishes (end of the restart stage).  Throws
  /// MigrationError for unknown/exited tasks, a destination outside the
  /// virtual machine, or a migration-incompatible destination (§3.3).
  [[nodiscard]] sim::Co<MigrationStats> migrate(pvm::Tid victim,
                                                os::Host& dst);

  /// True while `task` has a migration in progress.
  [[nodiscard]] bool migrating(pvm::Tid task) const {
    return pending_.find(task.raw()) != pending_.end();
  }

  [[nodiscard]] const std::vector<MigrationStats>& history() const noexcept {
    return history_;
  }

 private:
  struct PendingFlush {
    int expected = 0;
    int received = 0;
    std::unique_ptr<sim::Trigger> all_acked;
  };

  void link_runtime_into(pvm::Task& t);
  void on_flush(pvm::Task& self, const pvm::Message& m);
  void on_flush_ack(const pvm::Message& m);
  void on_restart(pvm::Task& self, const pvm::Message& m);

  pvm::PvmSystem* vm_;
  // unique_ptr values: PendingFlush addresses must survive rehashing when
  // migrations run concurrently.
  std::unordered_map<std::int32_t, std::unique_ptr<PendingFlush>> pending_;
  std::vector<MigrationStats> history_;
};

}  // namespace cpe::mpvm
