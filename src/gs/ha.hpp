// High availability for the Global Scheduler (the tentpole of the
// crash-safe line of work): N GS replicas on distinct hosts, a
// heartbeat/term-based leader election in the raft-lite style, journal and
// blacklist replication from leader to followers, and a fencing epoch on
// every migration command.
//
// All three systems in the paper "assume the presence of a network-wide
// global scheduler" (§2.0) — a classic coordinator-as-single-point-of-
// failure, the same problem Condor's central manager and Sprite's migration
// server faced.  Here the GS becomes a small replicated state machine:
//
//  * Each replica owns a full GlobalScheduler core; only the elected
//    leader's core is active.  The leader piggybacks its durable state
//    (decision journal, blacklist, host-liveness baseline, open vacates) on
//    every heartbeat, so a newly elected leader resumes mid-flight retries
//    instead of starting blind.
//  * Election is term-based over the ordinary net:: datagram service (port
//    kGsPort): a follower that misses heartbeats past its (deterministic,
//    per-replica jittered) election timeout becomes a candidate, increments
//    the term, and requests votes; one vote per term, and a replica only
//    votes for candidates whose replicated journal is at least as long as
//    its own.  A majority of the *static* replica set wins — a minority
//    island can therefore never elect, which is what makes partitions safe.
//  * The winner's term doubles as the **fencing token**: becoming leader
//    raises the shared pvm::MigrationFence floor, its core stamps every
//    migrate/vacate/withdraw with the term, and MPVM/UPVM/ADM refuse any
//    command whose epoch is below the floor.  A deposed leader that still
//    thinks it is in charge (crashed back to life, or on the wrong side of
//    a partition) gets its commands bounced instead of causing a
//    double-migration.
//  * A leader also steps down on its own: if a majority of followers has
//    not acknowledged a heartbeat within the lease window it stops acting,
//    closing the other half of the split-brain scenario.
//
// With replicas = 1 the single replica elects itself at start and behaves
// exactly like the plain GlobalScheduler — every existing policy holds.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "gs/scheduler.hpp"
#include "pvm/fence.hpp"

namespace cpe::gs {

/// GS replicas talk replica-to-replica on this port (pvmds own 1023).
inline constexpr std::uint16_t kGsPort = 1022;

struct HaPolicy {
  /// Policy of the underlying scheduler core (each replica gets a copy).
  GsPolicy core{};
  /// Leader heartbeat period.  Failover latency and the missed-decision
  /// window both scale with this (bench_gs_failover sweeps it).
  sim::Time heartbeat_interval = 0.5;
  /// A follower calls an election after this many missed heartbeat
  /// intervals...
  double election_timeout_beats = 1.2;
  /// ...plus a per-replica deterministic jitter of up to this fraction of a
  /// heartbeat, plus an id-based stagger of `election_stagger_beats` per
  /// replica.  The stagger must exceed the duty-tick granularity (half a
  /// heartbeat) plus the jitter range, or two followers can time out in the
  /// same tick and split the vote — which is exactly a heartbeat interval
  /// of failover latency wasted.
  double election_jitter_beats = 0.1;
  double election_stagger_beats = 0.7;
  /// A candidate that has not won after this many heartbeat intervals
  /// reverts to follower and waits out a fresh election timeout.
  double vote_timeout_beats = 1.0;
  /// A non-leader buffers up to this many owner events for replay if it
  /// wins the next election; beyond the cap the oldest is evicted (logged,
  /// and counted in GsReplica::pending_evictions) — each eviction is a
  /// decision that can be missed across a failover.
  std::size_t pending_event_cap = 32;
  /// Seed for the per-replica jitter draw.
  std::uint64_t seed = 42;
};

enum class ReplicaRole : std::uint8_t { kFollower, kCandidate, kLeader };

[[nodiscard]] std::string_view to_string(ReplicaRole r);

/// Replica-to-replica wire message.  NOTE: user-provided constructor — it
/// travels by value into send coroutines (see net::Datagram's GCC 12 note).
struct GsWireMessage {
  enum class Kind : std::uint8_t {
    kHeartbeat,     ///< leader -> follower, carries the durable state
    kHeartbeatAck,  ///< follower -> leader, renews the leader's lease
    kVoteRequest,   ///< candidate -> all
    kVoteGrant,     ///< voter -> candidate
  };

  Kind kind = Kind::kHeartbeat;
  int from = -1;            ///< sender's replica id
  std::uint64_t term = 0;   ///< sender's current term
  std::size_t journal_len = 0;  ///< sender's replicated-journal length
  GsDurableState state;     ///< piggybacked on heartbeats

  GsWireMessage() noexcept {}
  GsWireMessage(Kind k, int from_, std::uint64_t term_, std::size_t jlen)
      : kind(k), from(from_), term(term_), journal_len(jlen) {}
};

class HaScheduler;

/// One GS replica: a scheduler core plus the election/replication state
/// machine, resident on (and failing with) a specific host.
class GsReplica {
 public:
  GsReplica(HaScheduler& ha, int id, os::Host& host, sim::Time election_timeout);
  GsReplica(const GsReplica&) = delete;
  GsReplica& operator=(const GsReplica&) = delete;

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] os::Host& host() const noexcept { return *host_; }
  [[nodiscard]] ReplicaRole role() const noexcept { return role_; }
  [[nodiscard]] std::uint64_t term() const noexcept { return term_; }
  [[nodiscard]] GlobalScheduler& core() noexcept { return core_; }
  [[nodiscard]] const GlobalScheduler& core() const noexcept { return core_; }
  [[nodiscard]] sim::Time election_timeout() const noexcept {
    return election_timeout_;
  }
  /// Owner events dropped from the pending buffer (HaPolicy
  /// pending_event_cap) — potential missed decisions across a failover.
  [[nodiscard]] std::uint64_t pending_evictions() const noexcept {
    return pending_evictions_;
  }

  /// Deliver an owner event to this replica.  The leader's core acts on it
  /// immediately; a non-leader buffers it, because the event may be landing
  /// in a leaderless window (the old leader just died and nobody has won the
  /// election yet).  A new leader replays the buffered events it heard after
  /// it last heard the old leader — closing the missed-decision window
  /// without double-acting on events the old leader already handled.
  void on_owner_event(const os::OwnerEvent& ev);

 private:
  friend class HaScheduler;

  [[nodiscard]] sim::Engine& engine() const noexcept;
  void start(sim::Time until);
  void duty_tick();
  void on_message(const GsWireMessage& m);
  void on_host_event(os::HostEvent ev);
  void start_election();
  void become_leader();
  void step_down(const std::string& why);
  void broadcast(GsWireMessage m, bool with_state);
  void post(int to, GsWireMessage m, bool with_state);
  [[nodiscard]] bool majority_lease_held() const;
  void on_core_change();

  HaScheduler* ha_;
  int id_;
  os::Host* host_;
  GlobalScheduler core_;
  sim::Time election_timeout_;

  ReplicaRole role_ = ReplicaRole::kFollower;
  std::uint64_t term_ = 0;
  std::uint64_t voted_in_term_ = 0;  ///< highest term we cast a vote in
  int votes_ = 0;
  /// Bit per replica id that granted a vote in the current candidacy, so a
  /// duplicated/replayed grant cannot be double-counted into a majority.
  std::uint64_t vote_granted_mask_ = 0;
  sim::Time last_heartbeat_ = 0;   ///< when we last heard a live leader
  sim::Time election_started_ = 0;
  sim::Time last_broadcast_ = -1e18;
  std::vector<sim::Time> peer_ack_;  ///< per-replica last heartbeat-ack
  /// Per-peer replicated-journal length the peer last acked; heartbeats to
  /// it carry only the journal suffix past this point.
  std::vector<std::size_t> peer_journal_len_;
  std::vector<os::OwnerEvent> pending_events_;  ///< heard while not leader
  std::uint64_t pending_evictions_ = 0;
  bool flush_scheduled_ = false;
  sim::ProcHandle duty_;
};

/// The replicated Global Scheduler facade: owns the replicas, the shared
/// fencing token, and the attach/wiring that used to target a single
/// GlobalScheduler.
class HaScheduler {
 public:
  /// A leadership handover, for failover-latency measurements.
  struct LeadershipChange {
    sim::Time t = 0;
    int replica = -1;
    std::uint64_t term = 0;

    LeadershipChange() noexcept {}
    LeadershipChange(sim::Time t_, int r, std::uint64_t term_)
        : t(t_), replica(r), term(term_) {}
  };

  /// Run one replica per host in `hosts` (distinct hosts; the first is the
  /// bootstrap leader).
  HaScheduler(pvm::PvmSystem& vm, std::vector<os::Host*> hosts,
              HaPolicy policy = {});
  HaScheduler(const HaScheduler&) = delete;
  HaScheduler& operator=(const HaScheduler&) = delete;

  /// Forward to every replica core, and install the shared fence into the
  /// subsystem so stale-epoch commands are refused.
  void attach(mpvm::Mpvm& m);
  void attach(upvm::Upvm& u);
  void attach(opt::AdmOpt& a);
  void attach(mpvm::Checkpointer& c);
  /// Each replica core reads the gossiped load map held at its *own* host:
  /// whoever is leader decides from the view its workstation actually has.
  void attach(load::LoadExchange& x);

  /// Bootstrap replica 0 as leader of term 1 and run every replica's duty
  /// loop until `until`.
  void start(sim::Time until);

  /// Owner-activity sink.  The event is heard by every replica whose host
  /// is up and network-reachable from the host where it happened; only the
  /// leader's core acts on it.
  void on_owner_event(const os::OwnerEvent& ev);

  [[nodiscard]] const HaPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] pvm::PvmSystem& vm() const noexcept { return *vm_; }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(replicas_.size());
  }
  [[nodiscard]] int majority() const noexcept { return size() / 2 + 1; }
  [[nodiscard]] GsReplica& replica(int i) {
    CPE_EXPECTS(i >= 0 && i < size());
    return *replicas_[static_cast<std::size_t>(i)];
  }

  /// The current leader: the highest-term live replica acting as leader
  /// (-1 / nullptr when the cluster is between leaders).
  [[nodiscard]] int leader_id() const;
  [[nodiscard]] GsReplica* leader();

  /// The authoritative decision journal (the current leader's; falls back
  /// to the longest replicated journal between leaders).
  [[nodiscard]] const std::vector<Decision>& journal() const;

  [[nodiscard]] const std::shared_ptr<pvm::MigrationFence>& fence()
      const noexcept {
    return fence_;
  }
  [[nodiscard]] const std::vector<LeadershipChange>& leadership_changes()
      const noexcept {
    return changes_;
  }

 private:
  friend class GsReplica;
  void note_leader(int replica, std::uint64_t term);

  pvm::PvmSystem* vm_;
  HaPolicy policy_;
  std::shared_ptr<pvm::MigrationFence> fence_;
  std::vector<std::unique_ptr<GsReplica>> replicas_;
  std::vector<LeadershipChange> changes_;
};

}  // namespace cpe::gs
