#include "gs/scheduler.hpp"

#include <algorithm>
#include <iterator>

namespace cpe::gs {

void GlobalScheduler::note(std::string what, bool ok, DecisionReason reason,
                           double load) {
  vm_->metrics().counter(ok ? "gs.decisions" : "gs.decisions.failed").inc();
  vm_->metrics()
      .counter(std::string("gs.decisions.reason.") + to_string(reason))
      .inc();
  vm_->trace().log("gs", what + (ok ? "" : " (failed)"));
  journal_.emplace_back(vm_->engine().now(), std::move(what), ok, reason,
                        load);
  if (replication_hook_) replication_hook_();
}

void GlobalScheduler::open_vacate(const std::string& host_name) {
  ++vacate_open_[host_name];
  if (replication_hook_) replication_hook_();
}

void GlobalScheduler::close_vacate(const std::string& host_name) {
  auto it = vacate_open_.find(host_name);
  if (it == vacate_open_.end()) return;
  if (--it->second <= 0) vacate_open_.erase(it);
  if (replication_hook_) replication_hook_();
}

void GlobalScheduler::on_owner_event(const os::OwnerEvent& ev) {
  CPE_EXPECTS(ev.host != nullptr);
  if (!active_) return;  // followers observe, only the leader acts
  switch (ev.action) {
    case os::OwnerAction::kReclaim:
      if (policy_.vacate_on_reclaim) {
        note("owner reclaimed " + ev.host->name() + ": vacating", true,
             DecisionReason::kReclaim, ev.host->cpu().load());
        vacate(*ev.host);
      }
      break;
    case os::OwnerAction::kArrive:
      if (policy_.vacate_on_arrival) {
        note("owner arrived on " + ev.host->name() + ": vacating", true,
             DecisionReason::kReclaim, ev.host->cpu().load());
        vacate(*ev.host);
      }
      break;
    case os::OwnerAction::kDepart:
      if (adm_ != nullptr && policy_.rejoin_on_depart)
        vacate_adm(*ev.host, /*withdraw=*/false);
      break;
  }
}

os::Host* GlobalScheduler::pick_destination(const os::Host& from) const {
  const std::vector<os::Host*> ranked = ranked_destinations(from);
  return ranked.empty() ? nullptr : ranked.front();
}

std::vector<os::Host*> GlobalScheduler::ranked_destinations(
    const os::Host& from) const {
  std::vector<os::Host*> out;
  for (const auto& d : vm_->daemons()) {
    os::Host& h = d->host();
    if (&h == &from) continue;
    if (!h.up() || is_blacklisted(h)) continue;
    if (!from.migration_compatible_with(h)) continue;
    out.push_back(&h);
  }
  // Stable sort on the legacy destination rank so ties keep daemon order —
  // pick_destination() (the front of this list) stays decision-identical
  // to the old first-minimum scan.
  std::stable_sort(out.begin(), out.end(), [](os::Host* a, os::Host* b) {
    return a->cpu().load() + a->cpu().external_jobs() <
           b->cpu().load() + b->cpu().external_jobs();
  });
  return out;
}

std::uint64_t GlobalScheduler::admit_migration(std::int64_t unit,
                                               const std::string& from,
                                               const std::string& to) {
  const std::uint64_t ticket =
      admission_.admit(unit, from, to, vm_->engine().now());
  if (ticket != 0 && replication_hook_) replication_hook_();
  return ticket;
}

void GlobalScheduler::release_migration(std::uint64_t ticket) {
  admission_.release(ticket);
  if (replication_hook_) replication_hook_();
}

bool GlobalScheduler::is_blacklisted(const os::Host& host) const {
  const auto it = blacklist_until_.find(&host);
  return it != blacklist_until_.end() && it->second > vm_->engine().now();
}

void GlobalScheduler::blacklist(os::Host& host) {
  blacklist_until_[&host] = vm_->engine().now() + policy_.blacklist_duration;
  // Surface the transport's view of the destination alongside the decision:
  // drops and exhausted sends say the link is *lossy*; duplicates and
  // corruption say it is *adversarial* — different reasons to shun a host,
  // distinguishable straight from the journal.
  const auto& dg = vm_->network().datagrams();
  note("blacklisting " + host.name() + " for " +
           std::to_string(policy_.blacklist_duration) + " s (drops=" +
           std::to_string(dg.drops_to(host.node())) + ", delivery_errors=" +
           std::to_string(dg.delivery_errors_to(host.node())) +
           ", duplicates=" + std::to_string(dg.duplicates_to(host.node())) +
           ", corrupt=" + std::to_string(dg.corrupt_to(host.node())) + ")",
       true);
}

void GlobalScheduler::vacate(os::Host& host) {
  if (mpvm_ != nullptr) vacate_mpvm(host);
  if (upvm_ != nullptr) vacate_upvm(host);
  if (adm_ != nullptr) vacate_adm(host, /*withdraw=*/true);
}

void GlobalScheduler::vacate_mpvm(os::Host& host) {
  for (pvm::Task* t : vm_->all_tasks()) {
    if (t->exited() || &t->pvmd().host() != &host) continue;
    const std::int32_t raw = t->tid().raw();
    // A checkpoint recovery of the same task owns it until it resolves.
    if (recovering_.contains(raw)) continue;
    if (!vacating_.insert(raw).second) continue;
    open_vacate(host.name());
    // One recovery driver per task: pick a destination, migrate, and on a
    // run-time failure (crashed destination, timeout) blacklist the
    // destination and retry against the next-best host with exponential
    // backoff.  Every attempt, failure, and retry lands in the journal.
    // After a failover the new leader re-issues the vacate: the driver
    // rides out a predecessor's still-in-flight migration instead of
    // starting a second one, and stands down the moment its core is
    // deposed.
    auto driver = [](GlobalScheduler* self, mpvm::Mpvm* m, pvm::Tid victim,
                     std::string host_name) -> sim::Co<void> {
      sim::Engine& eng = self->vm_->engine();
      // One trace per vacate decision: every migration attempt (and its
      // freeze/flush/transfer/restart stages) is a child of this root.
      obs::SpanTracer& sp = self->vm_->spans();
      const obs::SpanId root =
          sp.begin_span({}, "gs.vacate", "gs", victim.raw());
      sp.annotate(root, "task", victim.str());
      sp.annotate(root, "host", host_name);
      obs::SpanStatus outcome = obs::SpanStatus::kOk;
      sim::ScopeExit done([self, victim, host_name, &sp, root, &outcome] {
        sp.end_span(root, outcome);
        self->vacating_.erase(victim.raw());
        self->close_vacate(host_name);
      });
      sim::Time backoff = self->policy_.retry_backoff;
      for (int attempt = 1;; ++attempt) {
        if (!self->active_) co_return;
        while (m->migrating(victim)) {
          co_await sim::Delay(eng, 0.2);
          if (!self->active_) co_return;
        }
        pvm::Task* task = self->vm_->find_logical(victim);
        if (task == nullptr || task->exited()) co_return;
        os::Host& src = task->pvmd().host();
        if (src.name() != host_name) co_return;  // already off the host
        // Claim the first ranked destination whose (src, dst) stream lane
        // the admission controller has free: k concurrent drain drivers
        // fan out over k distinct destinations instead of herding onto the
        // momentarily least-loaded one.  When the whole budget is taken,
        // wait briefly and revalidate — the task may have moved or exited
        // while this driver queued.
        os::Host* to = nullptr;
        std::uint64_t ticket = 0;
        for (;;) {
          const std::vector<os::Host*> ranked =
              self->ranked_destinations(src);
          if (ranked.empty()) {
            self->note("vacate " + victim.str() + " from " + src.name() +
                           ": no compatible live destination",
                       false, DecisionReason::kReclaim, src.cpu().load());
            outcome = obs::SpanStatus::kAborted;
            co_return;
          }
          for (os::Host* cand : ranked) {
            ticket = self->admit_migration(unit_of(victim), src.name(),
                                           cand->name());
            if (ticket != 0) {
              to = cand;
              break;
            }
          }
          if (to != nullptr) break;
          self->vm_->metrics().counter("gs.migration.admission_waits").inc();
          co_await sim::Delay(eng, 0.3);
          if (!self->active_) co_return;
          task = self->vm_->find_logical(victim);
          if (task == nullptr || task->exited()) co_return;
          if (task->pvmd().host().name() != host_name) co_return;
        }
        self->note("migrate " + victim.str() + " (" + task->program() +
                       ") " + src.name() + " -> " + to->name(),
                   true, DecisionReason::kReclaim, src.cpu().load());
        std::string abandoned;
        mpvm::MigrationStats st;
        self->vm_->metrics().counter("gs.migration.attempts").inc();
        try {
          st = co_await m->migrate(victim, *to, self->stamp(),
                                   sp.context_of(root));
        } catch (const mpvm::MigrationError& e) {
          abandoned = e.what();
        }
        self->release_migration(ticket);
        if (!abandoned.empty()) {
          self->note("migration abandoned: " + abandoned, false,
                     DecisionReason::kReclaim);
          outcome = obs::SpanStatus::kAborted;
          co_return;
        }
        if (st.ok) {
          // A vacate move restarts the unit's residency window without
          // counting against the thrash gate (the policy mandated it).
          self->engine_.touch(unit_of(victim), eng.now());
          co_return;
        }
        self->note("migration of " + victim.str() + " to " + to->name() +
                       " failed: " + st.failure,
                   false, DecisionReason::kReclaim);
        self->blacklist(*to);
        if (attempt >= self->policy_.max_migration_retries) {
          self->note("giving up on vacating " + victim.str() + " after " +
                         std::to_string(attempt) + " attempts",
                     false, DecisionReason::kReclaim);
          outcome = obs::SpanStatus::kAborted;
          co_return;
        }
        self->vm_->metrics().counter("gs.migration.retries").inc();
        self->note("retrying " + victim.str() + " in " +
                       std::to_string(backoff) + " s",
                   true, DecisionReason::kReclaim);
        co_await sim::Delay(eng, backoff);
        backoff = self->policy_.next_backoff(backoff);
      }
    };
    sim::spawn(vm_->engine(), driver(this, mpvm_, t->tid(), host.name()));
  }
}

void GlobalScheduler::vacate_upvm(os::Host& host) {
  for (int i = 0; i < upvm_->nulps(); ++i) {
    upvm::Ulp* u = upvm_->ulp(i);
    if (u == nullptr || u->done() || &u->host() != &host) continue;
    if (!vacating_ulps_.insert(i).second) continue;
    open_vacate(host.name());
    auto driver = [](GlobalScheduler* self, upvm::Upvm* up, int inst,
                     std::string host_name) -> sim::Co<void> {
      sim::Engine& eng = self->vm_->engine();
      obs::SpanTracer& sp = self->vm_->spans();
      const obs::SpanId root = sp.begin_span({}, "gs.vacate", "gs", inst);
      sp.annotate(root, "ulp", std::to_string(inst));
      sp.annotate(root, "host", host_name);
      obs::SpanStatus outcome = obs::SpanStatus::kOk;
      sim::ScopeExit done([self, inst, host_name, &sp, root, &outcome] {
        sp.end_span(root, outcome);
        self->vacating_ulps_.erase(inst);
        self->close_vacate(host_name);
      });
      sim::Time backoff = self->policy_.retry_backoff;
      for (int attempt = 1;; ++attempt) {
        if (!self->active_) co_return;
        while (up->migrating(inst)) {
          co_await sim::Delay(eng, 0.2);
          if (!self->active_) co_return;
        }
        upvm::Ulp* ulp = up->ulp(inst);
        if (ulp == nullptr || ulp->done()) co_return;
        os::Host& src = ulp->host();
        if (src.name() != host_name) co_return;  // already off the host
        os::Host* to = self->pick_destination(src);
        if (to == nullptr) {
          self->note("vacate ULP" + std::to_string(inst) + " from " +
                         src.name() + ": no compatible live destination",
                     false, DecisionReason::kReclaim, src.cpu().load());
          outcome = obs::SpanStatus::kAborted;
          co_return;
        }
        self->note("migrate ULP" + std::to_string(inst) + " " + src.name() +
                       " -> " + to->name(),
                   true, DecisionReason::kReclaim, src.cpu().load());
        std::string abandoned;
        upvm::UlpMigrationStats st;
        self->vm_->metrics().counter("gs.migration.attempts").inc();
        try {
          st = co_await up->migrate_ulp(inst, *to, self->stamp(),
                                        sp.context_of(root));
        } catch (const Error& e) {
          abandoned = e.what();
        }
        if (!abandoned.empty()) {
          self->note("ULP migration abandoned: " + abandoned, false,
                     DecisionReason::kReclaim);
          outcome = obs::SpanStatus::kAborted;
          co_return;
        }
        if (st.ok) {
          self->engine_.touch(unit_of_ulp(inst), eng.now());
          co_return;
        }
        self->note("migration of ULP" + std::to_string(inst) + " to " +
                       to->name() + " failed: " + st.failure,
                   false, DecisionReason::kReclaim);
        self->blacklist(*to);
        if (attempt >= self->policy_.max_migration_retries) {
          self->note("giving up on vacating ULP" + std::to_string(inst) +
                         " after " + std::to_string(attempt) + " attempts",
                     false, DecisionReason::kReclaim);
          outcome = obs::SpanStatus::kAborted;
          co_return;
        }
        self->vm_->metrics().counter("gs.migration.retries").inc();
        self->note("retrying ULP" + std::to_string(inst) + " in " +
                       std::to_string(backoff) + " s",
                   true, DecisionReason::kReclaim);
        co_await sim::Delay(eng, backoff);
        backoff = self->policy_.next_backoff(backoff);
      }
    };
    sim::spawn(vm_->engine(), driver(this, upvm_, i, host.name()));
  }
}

void GlobalScheduler::vacate_adm(os::Host& host, bool withdraw) {
  // Find ADM slaves living on this host and post withdraw/rejoin events.
  for (int s = 0; s < adm_->slaves_spawned(); ++s) {
    pvm::Task* t = vm_->find_logical(adm_->slave_tid(s));
    if (t == nullptr || t->exited() || &t->pvmd().host() != &host) continue;
    obs::SpanTracer& sp = vm_->spans();
    const obs::SpanId root = sp.begin_span({}, "gs.vacate", "gs", s);
    sp.annotate(root, "slave", std::to_string(s));
    sp.annotate(root, "host", host.name());
    const bool posted = adm_->post_event(
        s,
        withdraw ? adm::AdmEventKind::kWithdraw : adm::AdmEventKind::kRejoin,
        stamp(), sp.context_of(root));
    sp.end_span(root,
                posted ? obs::SpanStatus::kOk : obs::SpanStatus::kFenced);
    note(std::string(withdraw ? "withdraw" : "rejoin") + " ADM slave " +
             std::to_string(s) + " on " + host.name() +
             (posted ? "" : ": fenced (stale epoch)"),
         posted, DecisionReason::kReclaim, host.cpu().load());
  }
}

void GlobalScheduler::start_monitoring(sim::Time until) {
  auto loop = [](GlobalScheduler* self, sim::Time horizon) -> sim::Co<void> {
    sim::Engine& eng = self->vm_->engine();
    while (eng.now() < horizon) {
      co_await sim::Delay(eng, self->policy_.poll_interval);
      self->monitor_tick();
    }
  };
  monitor_ = sim::launch(vm_->engine(), loop(this, until));
}

void GlobalScheduler::start_heartbeat(sim::Time until) {
  for (const auto& d : vm_->daemons())
    host_up_.try_emplace(&d->host(), d->host().up());
  auto loop = [](GlobalScheduler* self, sim::Time horizon) -> sim::Co<void> {
    sim::Engine& eng = self->vm_->engine();
    while (eng.now() < horizon) {
      co_await sim::Delay(eng, self->policy_.heartbeat_interval);
      self->heartbeat_tick();
    }
  };
  heartbeat_ = sim::launch(vm_->engine(), loop(this, until));
}

void GlobalScheduler::tick() {
  if (!active_) return;
  heartbeat_tick();
  monitor_tick();
}

GsDurableState GlobalScheduler::export_state(std::size_t journal_from) const {
  GsDurableState s;
  s.epoch = epoch_;
  s.journal_base = std::min(journal_from, journal_.size());
  s.journal.assign(journal_.begin() + static_cast<std::ptrdiff_t>(s.journal_base),
                   journal_.end());
  for (const auto& [h, until] : blacklist_until_)
    s.blacklist.emplace_back(h->name(), until);
  for (const auto& [h, up] : host_up_) s.host_up.emplace_back(h->name(), up);
  s.reported_lost.assign(reported_lost_.begin(), reported_lost_.end());
  std::unordered_set<std::string> pending(resume_pending_.begin(),
                                          resume_pending_.end());
  for (const auto& [name, n] : vacate_open_)
    if (n > 0) pending.insert(name);
  s.pending_vacates.assign(pending.begin(), pending.end());
  s.in_flight_migrations = admission_.in_flight();
  return s;
}

void GlobalScheduler::import_state(const GsDurableState& s) {
  if (s.epoch > epoch_) epoch_ = s.epoch;
  // The leader's journal is authoritative from journal_base on.  A base
  // beyond our length is a gap (a lost earlier heartbeat): skip the journal
  // this round — our next ack reports our real length and the leader
  // resends from there.
  if (s.journal_base <= journal_.size()) {
    journal_.resize(s.journal_base);
    journal_.insert(journal_.end(), s.journal.begin(), s.journal.end());
  }
  blacklist_until_.clear();
  host_up_.clear();
  for (const auto& d : vm_->daemons()) {
    os::Host& h = d->host();
    for (const auto& [name, until] : s.blacklist)
      if (name == h.name()) blacklist_until_[&h] = until;
    for (const auto& [name, up] : s.host_up)
      if (name == h.name()) host_up_[&h] = up;
  }
  reported_lost_.clear();
  reported_lost_.insert(s.reported_lost.begin(), s.reported_lost.end());
  resume_pending_.assign(s.pending_vacates.begin(), s.pending_vacates.end());
  // The predecessor's in-flight streams count against our budget as
  // *adopted* entries until the migration layer shows them resolved —
  // a successor cannot over-admit during the handover window.
  admission_.import_adopted(s.in_flight_migrations, vm_->engine().now());
}

void GlobalScheduler::resume_after_failover() {
  const std::vector<std::string> pending = std::move(resume_pending_);
  resume_pending_.clear();
  for (const std::string& name : pending) {
    for (const auto& d : vm_->daemons()) {
      if (d->host().name() != name) continue;
      note("failover: resuming vacate of " + name, true);
      vacate(d->host());
      break;
    }
  }
  // The replicated liveness baseline vs reality: hosts that died during the
  // leaderless window are detected (and their fallout handled) right now
  // rather than a heartbeat later.
  heartbeat_tick();
}

void GlobalScheduler::heartbeat_tick() {
  if (!active_) return;
  for (const auto& d : vm_->daemons()) {
    os::Host& h = d->host();
    const bool now_up = h.up();
    auto [it, first_seen] = host_up_.try_emplace(&h, now_up);
    if (first_seen || it->second == now_up) continue;
    it->second = now_up;
    if (now_up) {
      note("heartbeat: host " + h.name() + " recovered", true);
    } else {
      note("heartbeat: host " + h.name() + " is down", false);
      handle_host_down(h);
    }
  }
  watchdog_tick();
}

void GlobalScheduler::watchdog_tick() {
  const sim::Time now = vm_->engine().now();
  // Adopted entries belong to a deposed leader's streams: drop each as soon
  // as the migration layer no longer shows its unit in flight.  Non-task
  // units (ULP/ADM ranges) cannot be queried and their streams are short,
  // so they are reaped outright.
  admission_.reap_adopted([this](std::int64_t unit) {
    if (mpvm_ == nullptr || unit >= (std::int64_t{1} << 40)) return false;
    return mpvm_->migrating(pvm::Tid(static_cast<std::int32_t>(unit)));
  });
  if (mpvm_ == nullptr) return;
  for (const load::AdmissionController::InFlight& f :
       admission_.stalled(now, policy_.migration_watchdog)) {
    if (f.unit >= (std::int64_t{1} << 40)) continue;  // only MPVM streams
    const pvm::Tid victim(static_cast<std::int32_t>(f.unit));
    if (!mpvm_->request_abort(victim, "gs watchdog: in flight " +
                                          std::to_string(now - f.since) +
                                          " s"))
      continue;
    vm_->metrics().counter("gs.migration.watchdog_aborts").inc();
    note("watchdog: aborting stalled migration of " + victim.str() + " (" +
             f.from + " -> " + f.to + ", in flight " +
             std::to_string(now - f.since) + " s)",
         false);
  }
}

void GlobalScheduler::handle_host_down(os::Host& host) {
  for (pvm::Task* t : vm_->all_tasks()) {
    if (&t->pvmd().host() != &host) continue;
    const std::int32_t raw = t->tid().raw();
    if (t->exited()) {
      // Died in the crash with no checkpoint to fall back on: the work is
      // gone, and the journal is where that loss is recorded.
      if (reported_lost_.insert(raw).second)
        note("task " + t->tid().str() + " (" + t->program() +
                 ") lost in crash of " + host.name() + "; work is lost",
             false);
      continue;
    }
    // Stranded but crash-recoverable: restart from the last checkpoint.
    if (ckpt_ == nullptr || !ckpt_->watches(t->tid())) continue;
    if (!recovering_.insert(raw).second) continue;
    auto driver = [](GlobalScheduler* self, pvm::Tid victim,
                     os::Host* from) -> sim::Co<void> {
      sim::Engine& eng = self->vm_->engine();
      obs::SpanTracer& sp = self->vm_->spans();
      const obs::SpanId root =
          sp.begin_span({}, "gs.recover", "gs", victim.raw());
      sp.annotate(root, "task", victim.str());
      sp.annotate(root, "host", from->name());
      obs::SpanStatus outcome = obs::SpanStatus::kOk;
      sim::ScopeExit clear([self, victim, &sp, root, &outcome] {
        sp.end_span(root, outcome);
        self->recovering_.erase(victim.raw());
      });
      // A vacate migration of the victim may still be in flight (it will
      // roll back against the dead source), or a predecessor leader's
      // recovery may still be running; let either resolve first so the two
      // paths can never resurrect the task twice.
      while ((self->mpvm_ != nullptr && self->mpvm_->migrating(victim)) ||
             self->ckpt_->recovering(victim)) {
        co_await sim::Delay(eng, 0.2);
        if (!self->active_) co_return;
      }
      // Deposed (or never became leader): the recovery belongs to whoever
      // holds the current term now.  Without this check a deposed core with
      // no migration in flight would fall straight through to recover().
      if (!self->active_) co_return;
      pvm::Task* task = self->vm_->find_logical(victim);
      if (task == nullptr || task->exited()) co_return;
      // The in-flight migration relocated it after all: nothing to recover.
      if (&task->pvmd().host() != from && task->pvmd().host().up())
        co_return;
      os::Host* to = self->pick_destination(*from);
      if (to == nullptr) {
        self->note("recover " + victim.str() +
                       ": no compatible live destination",
                   false);
        outcome = obs::SpanStatus::kAborted;
        co_return;
      }
      self->note("recovering " + victim.str() + " from checkpoint onto " +
                     to->name(),
                 true);
      std::string failed;
      try {
        const mpvm::CkptVacateStats st =
            co_await self->ckpt_->recover(victim, *to, self->stamp(),
                                          sp.context_of(root));
        self->note("recovered " + victim.str() + " onto " + to->name() +
                       " (redoing " + std::to_string(st.redo_work) +
                       " s of lost work)",
                   true);
      } catch (const Error& e) {
        failed = e.what();
      }
      if (!failed.empty()) {
        self->note("checkpoint recovery of " + victim.str() + " failed: " +
                       failed,
                   false);
        outcome = obs::SpanStatus::kAborted;
      }
    };
    sim::spawn(vm_->engine(), driver(this, t->tid(), &host));
  }
}

std::vector<load::HostLoadView> GlobalScheduler::build_views() const {
  std::vector<load::HostLoadView> views;
  views.reserve(vm_->daemons().size());
  const sim::Time now = vm_->engine().now();

  // Movable units per host: MPVM tasks, ULPs, ADM slaves that currently
  // live there.  (The legacy Threshold policy ignores this; the index
  // policies use it to avoid aiming at hosts with nothing to shed.)
  std::unordered_map<const os::Host*, int> movable;
  if (mpvm_ != nullptr) {
    for (pvm::Task* t : vm_->all_tasks())
      if (!t->exited()) ++movable[&t->pvmd().host()];
  }
  if (upvm_ != nullptr) {
    for (int i = 0; i < upvm_->nulps(); ++i) {
      upvm::Ulp* u = upvm_->ulp(i);
      if (u != nullptr && !u->done()) ++movable[&u->host()];
    }
  }
  if (adm_ != nullptr) {
    for (int s = 0; s < adm_->slaves_spawned(); ++s) {
      pvm::Task* t = vm_->find_logical(adm_->slave_tid(s));
      if (t != nullptr && !t->exited()) ++movable[&t->pvmd().host()];
    }
  }

  for (const auto& d : vm_->daemons()) {
    os::Host& h = d->host();
    const double instant = h.cpu().load();
    const double dest_rank = h.cpu().load() + h.cpu().external_jobs();
    double index = instant;
    sim::Time age = 0;
    if (exchange_ != nullptr && gs_host_ != nullptr) {
      // Decentralized mode: the index is whatever the gossip map *at the
      // scheduler's host* says — possibly stale, possibly absent.  Only
      // our own host is always live (its sensor is local).
      if (&h == gs_host_) {
        if (const load::LoadSensor* s = exchange_->sensor_on(h)) {
          index = s->index();
          age = 0;
        }
      } else if (const load::LoadEntry* e =
                     exchange_->entry_at(*gs_host_, h.name())) {
        index = e->index;
        age = now - e->stamp;
      } else {
        // Never heard of it: infinitely stale, so the index policies skip
        // it rather than trusting the live reading they should not have.
        age = std::numeric_limits<double>::infinity();
      }
    }
    // Overlay the shifts this scheduler has *already ordered* but the
    // smoothed, gossiped indices cannot reflect yet.  Without this, every
    // poll tick inside the sensor's settle time re-reads the same stale
    // gap and herds unit after unit onto one momentarily-cold host — then
    // reverses the lot once the indices catch up (ping-pong).
    if (const auto ps = pending_shift_.find(&h); ps != pending_shift_.end()) {
      for (const auto& [t0, delta] : ps->second)
        if (now - t0 < policy_.staleness_bound) index += delta;
      index = std::max(index, 0.0);
    }
    const auto mv = movable.find(&h);
    views.emplace_back(&h, instant, dest_rank, index, age,
                       mv == movable.end() ? 0 : mv->second, h.up(),
                       !is_blacklisted(h));
    // Queueing pressure from the service layer (0 without a source: batch
    // decisions stay bit-identical).
    views.back().outstanding = pressure_ ? pressure_(h) : 0.0;
  }
  return views;
}

load::PlacementParams GlobalScheduler::placement_params() const {
  load::PlacementParams p;
  p.load_threshold = policy_.load_threshold;
  p.improvement_margin = policy_.improvement_margin;
  p.min_residency = policy_.min_residency;
  p.staleness_bound = policy_.staleness_bound;
  p.costs = &vm_->costs();
  p.cost_horizon = policy_.cost_horizon;
  p.max_actions = policy_.max_rebalance_actions;
  p.now = vm_->engine().now();
  p.queue_weight = policy_.queue_weight;
  return p;
}

void GlobalScheduler::execute_rebalance(const load::PlacementAction& action) {
  os::Host& host = *action.from;
  os::Host* dst = action.to;
  // Scoped flush plus residual forwarding (DESIGN.md §12) let disjoint
  // migration streams run concurrently, so the old one-at-a-time gate is
  // gone: the admission controller refuses only on the concurrency budget
  // or a busy/reversed (from, to) lane.  A refused action just waits for
  // the next monitor tick.
  if (!admission_.would_admit(host.name(), dst->name())) {
    vm_->metrics().counter("gs.migration.admission_refused").inc();
    return;
  }
  const bool legacy = engine_.kind() == load::PolicyKind::kThreshold;
  const sim::Time now = vm_->engine().now();
  if (legacy) {
    note("load " + std::to_string(action.from_load) + " on " + host.name() +
             " exceeds threshold: rebalancing",
         true, DecisionReason::kOverload, action.from_load);
  } else {
    note(std::string("placement ") + engine_.name() + ": rebalance " +
             host.name() + " (index " + std::to_string(action.from_load) +
             ") -> " + dst->name() + " (index " +
             std::to_string(action.to_load) + ")",
         true, DecisionReason::kRebalance, action.from_load);
    // Remember the ordered shift until the sensors can see it (one load
    // unit leaves `from`, lands on `to`); build_views() overlays it so the
    // next ticks do not re-decide from the same stale gap.
    pending_shift_[action.from].emplace_back(now, -1.0);
    pending_shift_[action.to].emplace_back(now, +1.0);
    engine_.record_settle(action.from, action.to, now, policy_.min_residency);
  }
  // Each method driver owns a "gs.rebalance" root; the decision itself is
  // recorded as a closed "load.decide" child so the trace shows *why* the
  // migration below it happened (and the auditor can demand the linkage).
  // Both spans are opened synchronously here — only the root's SpanId rides
  // into the migration coroutine (the GCC 12 by-value rule: scalar, safe).
  const auto open_spans = [this, &action](std::int64_t track) {
    obs::SpanTracer& sp = vm_->spans();
    const obs::SpanId root = sp.begin_span({}, "gs.rebalance", "gs", track);
    sp.annotate(root, "to", action.to->name());
    const obs::SpanId dec =
        sp.begin_span(sp.context_of(root), "load.decide", "gs");
    sp.annotate(dec, "policy", engine_.name());
    sp.annotate(dec, "from", action.from->name());
    sp.annotate(dec, "to", action.to->name());
    sp.annotate(dec, "from_load", std::to_string(action.from_load));
    sp.annotate(dec, "to_load", std::to_string(action.to_load));
    sp.end_span(dec, obs::SpanStatus::kOk);
    return root;
  };
  if (mpvm_ != nullptr) {
    // Move one task.
    for (pvm::Task* t : vm_->all_tasks()) {
      if (t->exited() || &t->pvmd().host() != &host) continue;
      if (mpvm_->migrating(t->tid())) continue;
      if (!engine_.may_move(unit_of(t->tid()), now, policy_.min_residency))
        continue;
      const std::uint64_t ticket =
          admit_migration(unit_of(t->tid()), host.name(), dst->name());
      if (ticket == 0) {
        vm_->metrics().counter("gs.migration.admission_refused").inc();
        break;
      }
      const obs::SpanId root = open_spans(t->tid().raw());
      vm_->spans().annotate(root, "task", t->tid().str());
      auto driver = [](GlobalScheduler* self, mpvm::Mpvm* m, pvm::Tid victim,
                       os::Host* to, obs::SpanId span,
                       std::uint64_t tk) -> sim::Co<void> {
        obs::SpanTracer& sp = self->vm_->spans();
        try {
          const mpvm::MigrationStats st = co_await m->migrate(
              victim, *to, self->stamp(), sp.context_of(span));
          sp.end_span(span, st.ok ? obs::SpanStatus::kOk
                                  : obs::SpanStatus::kAborted);
          if (st.ok)
            self->engine_.record_move(unit_of(victim),
                                      self->vm_->engine().now(),
                                      self->policy_.min_residency);
        } catch (const mpvm::MigrationError& e) {
          sp.end_span(span, obs::SpanStatus::kAborted);
          self->note(std::string("migration abandoned: ") + e.what(), false,
                     DecisionReason::kRebalance);
        }
        self->release_migration(tk);
      };
      sim::spawn(vm_->engine(),
                 driver(this, mpvm_, t->tid(), dst, root, ticket));
      break;
    }
  }
  if (upvm_ != nullptr) {
    for (int i = 0; i < upvm_->nulps(); ++i) {
      upvm::Ulp* u = upvm_->ulp(i);
      if (u == nullptr || u->done() || &u->host() != &host) continue;
      if (!engine_.may_move(unit_of_ulp(i), now, policy_.min_residency))
        continue;
      const std::uint64_t ticket =
          admit_migration(unit_of_ulp(i), host.name(), dst->name());
      if (ticket == 0) {
        vm_->metrics().counter("gs.migration.admission_refused").inc();
        break;
      }
      const obs::SpanId root = open_spans(i);
      vm_->spans().annotate(root, "ulp", std::to_string(i));
      auto driver = [](GlobalScheduler* self, upvm::Upvm* up, int inst,
                       os::Host* to, obs::SpanId span,
                       std::uint64_t tk) -> sim::Co<void> {
        obs::SpanTracer& sp = self->vm_->spans();
        try {
          const upvm::UlpMigrationStats st = co_await up->migrate_ulp(
              inst, *to, self->stamp(), sp.context_of(span));
          sp.end_span(span, st.ok ? obs::SpanStatus::kOk
                                  : obs::SpanStatus::kAborted);
          if (st.ok)
            self->engine_.record_move(unit_of_ulp(inst),
                                      self->vm_->engine().now(),
                                      self->policy_.min_residency);
        } catch (const Error& e) {
          sp.end_span(span, obs::SpanStatus::kAborted);
          self->note(std::string("ULP migration abandoned: ") + e.what(),
                     false, DecisionReason::kRebalance);
        }
        self->release_migration(tk);
      };
      sim::spawn(vm_->engine(), driver(this, upvm_, i, dst, root, ticket));
      break;
    }
  }
  if (adm_ != nullptr) {
    // ADM rebalances by repartitioning rather than by moving a VP.  Under
    // an index policy, skew the partition weights by observed load first,
    // so the repartition actually shifts exemplars toward lighter hosts.
    if (!legacy) {
      std::vector<double> weights;
      weights.reserve(static_cast<std::size_t>(adm_->nslaves()));
      for (int s = 0; s < adm_->nslaves(); ++s) {
        double w = 1.0;
        if (s < adm_->slaves_spawned()) {
          pvm::Task* t = vm_->find_logical(adm_->slave_tid(s));
          if (t != nullptr && !t->exited()) {
            os::Host& h = t->pvmd().host();
            double index = h.cpu().load();
            if (exchange_ != nullptr && gs_host_ != nullptr) {
              if (const load::LoadEntry* e =
                      exchange_->entry_at(*gs_host_, h.name()))
                index = e->index;
            }
            w = h.cpu().speed() / (1.0 + index);
          }
        }
        weights.push_back(w);
      }
      adm_->set_partition_weights(std::move(weights));
    }
    for (int s = 0; s < adm_->slaves_spawned(); ++s) {
      pvm::Task* t = vm_->find_logical(adm_->slave_tid(s));
      if (t == nullptr || t->exited() || &t->pvmd().host() != &host)
        continue;
      if (!engine_.may_move(unit_of_slave(s), now, policy_.min_residency))
        continue;
      obs::SpanTracer& sp = vm_->spans();
      const obs::SpanId root = open_spans(s);
      sp.annotate(root, "slave", std::to_string(s));
      const bool posted = adm_->post_event(
          s, adm::AdmEventKind::kRebalance, stamp(), sp.context_of(root));
      sp.end_span(root,
                  posted ? obs::SpanStatus::kOk : obs::SpanStatus::kFenced);
      if (posted)
        engine_.record_move(unit_of_slave(s), now, policy_.min_residency);
      break;
    }
  }
}

void GlobalScheduler::monitor_tick() {
  if (!active_) return;
  if (engine_.kind() == load::PolicyKind::kNone) return;
  // Legacy early-out: with the threshold policy disabled (infinite
  // threshold) the monitor does nothing, exactly as before.
  if (engine_.kind() == load::PolicyKind::kThreshold &&
      policy_.load_threshold == std::numeric_limits<double>::infinity())
    return;
  // Expire pending shifts the sensors have had time to absorb.
  const sim::Time now = vm_->engine().now();
  for (auto it = pending_shift_.begin(); it != pending_shift_.end();) {
    auto& shifts = it->second;
    std::erase_if(shifts, [&](const std::pair<sim::Time, double>& s) {
      return now - s.first >= policy_.staleness_bound;
    });
    it = shifts.empty() ? pending_shift_.erase(it) : std::next(it);
  }
  const std::vector<load::HostLoadView> views = build_views();
  // Publish the cluster-imbalance figure every tick (only while a policy is
  // active — the early-outs above mean a no-balancing baseline run has no
  // gs.load.cv series, by design).  Analytics windows + SLO ceilings hang
  // off this one gauge.
  if (load_cv_gauge_ == nullptr)
    load_cv_gauge_ = &vm_->metrics().gauge("gs.load.cv");
  load_cv_gauge_->set(load::load_cv(views));
  for (const load::PlacementAction& a :
       engine_.decide(views, placement_params()))
    execute_rebalance(a);
}

}  // namespace cpe::gs
