#include "gs/scheduler.hpp"

namespace cpe::gs {

void GlobalScheduler::note(std::string what, bool ok) {
  vm_->trace().log("gs", what + (ok ? "" : " (failed)"));
  journal_.emplace_back(vm_->engine().now(), std::move(what), ok);
}

void GlobalScheduler::on_owner_event(const os::OwnerEvent& ev) {
  CPE_EXPECTS(ev.host != nullptr);
  switch (ev.action) {
    case os::OwnerAction::kReclaim:
      if (policy_.vacate_on_reclaim) {
        note("owner reclaimed " + ev.host->name() + ": vacating", true);
        vacate(*ev.host);
      }
      break;
    case os::OwnerAction::kArrive:
      if (policy_.vacate_on_arrival) {
        note("owner arrived on " + ev.host->name() + ": vacating", true);
        vacate(*ev.host);
      }
      break;
    case os::OwnerAction::kDepart:
      if (adm_ != nullptr && policy_.rejoin_on_depart)
        vacate_adm(*ev.host, /*withdraw=*/false);
      break;
  }
}

os::Host* GlobalScheduler::pick_destination(const os::Host& from) const {
  os::Host* best = nullptr;
  double best_load = std::numeric_limits<double>::infinity();
  for (const auto& d : vm_->daemons()) {
    os::Host& h = d->host();
    if (&h == &from) continue;
    if (!h.up() || is_blacklisted(h)) continue;
    if (!from.migration_compatible_with(h)) continue;
    const double load = h.cpu().load() + h.cpu().external_jobs();
    if (load < best_load) {
      best_load = load;
      best = &h;
    }
  }
  return best;
}

bool GlobalScheduler::is_blacklisted(const os::Host& host) const {
  const auto it = blacklist_until_.find(&host);
  return it != blacklist_until_.end() && it->second > vm_->engine().now();
}

void GlobalScheduler::blacklist(os::Host& host) {
  blacklist_until_[&host] = vm_->engine().now() + policy_.blacklist_duration;
  note("blacklisting " + host.name() + " for " +
           std::to_string(policy_.blacklist_duration) + " s",
       true);
}

void GlobalScheduler::vacate(os::Host& host) {
  if (mpvm_ != nullptr) vacate_mpvm(host);
  if (upvm_ != nullptr) vacate_upvm(host);
  if (adm_ != nullptr) vacate_adm(host, /*withdraw=*/true);
}

void GlobalScheduler::vacate_mpvm(os::Host& host) {
  for (pvm::Task* t : vm_->all_tasks()) {
    if (t->exited() || &t->pvmd().host() != &host) continue;
    if (mpvm_->migrating(t->tid())) continue;
    // One recovery driver per task: pick a destination, migrate, and on a
    // run-time failure (crashed destination, timeout) blacklist the
    // destination and retry against the next-best host with exponential
    // backoff.  Every attempt, failure, and retry lands in the journal.
    auto driver = [](GlobalScheduler* self, mpvm::Mpvm* m,
                     pvm::Tid victim) -> sim::Co<void> {
      sim::Engine& eng = self->vm_->engine();
      sim::Time backoff = self->policy_.retry_backoff;
      for (int attempt = 1;; ++attempt) {
        pvm::Task* task = self->vm_->find_logical(victim);
        if (task == nullptr || task->exited()) co_return;
        os::Host& src = task->pvmd().host();
        os::Host* to = self->pick_destination(src);
        if (to == nullptr) {
          self->note("vacate " + victim.str() + " from " + src.name() +
                         ": no compatible live destination",
                     false);
          co_return;
        }
        self->note("migrate " + victim.str() + " (" + task->program() +
                       ") " + src.name() + " -> " + to->name(),
                   true);
        std::string abandoned;
        mpvm::MigrationStats st;
        try {
          st = co_await m->migrate(victim, *to);
        } catch (const mpvm::MigrationError& e) {
          abandoned = e.what();
        }
        if (!abandoned.empty()) {
          self->note("migration abandoned: " + abandoned, false);
          co_return;
        }
        if (st.ok) co_return;
        self->note("migration of " + victim.str() + " to " + to->name() +
                       " failed: " + st.failure,
                   false);
        self->blacklist(*to);
        if (attempt >= self->policy_.max_migration_retries) {
          self->note("giving up on vacating " + victim.str() + " after " +
                         std::to_string(attempt) + " attempts",
                     false);
          co_return;
        }
        self->note("retrying " + victim.str() + " in " +
                       std::to_string(backoff) + " s",
                   true);
        co_await sim::Delay(eng, backoff);
        backoff *= self->policy_.retry_backoff_factor;
      }
    };
    sim::spawn(vm_->engine(), driver(this, mpvm_, t->tid()));
  }
}

void GlobalScheduler::vacate_upvm(os::Host& host) {
  for (int i = 0; i < upvm_->nulps(); ++i) {
    upvm::Ulp* u = upvm_->ulp(i);
    if (u == nullptr || u->done() || &u->host() != &host) continue;
    auto driver = [](GlobalScheduler* self, upvm::Upvm* up,
                     int inst) -> sim::Co<void> {
      sim::Engine& eng = self->vm_->engine();
      sim::Time backoff = self->policy_.retry_backoff;
      for (int attempt = 1;; ++attempt) {
        upvm::Ulp* ulp = up->ulp(inst);
        if (ulp == nullptr || ulp->done()) co_return;
        os::Host& src = ulp->host();
        os::Host* to = self->pick_destination(src);
        if (to == nullptr) {
          self->note("vacate ULP" + std::to_string(inst) + " from " +
                         src.name() + ": no compatible live destination",
                     false);
          co_return;
        }
        self->note("migrate ULP" + std::to_string(inst) + " " + src.name() +
                       " -> " + to->name(),
                   true);
        std::string abandoned;
        upvm::UlpMigrationStats st;
        try {
          st = co_await up->migrate_ulp(inst, *to);
        } catch (const Error& e) {
          abandoned = e.what();
        }
        if (!abandoned.empty()) {
          self->note("ULP migration abandoned: " + abandoned, false);
          co_return;
        }
        if (st.ok) co_return;
        self->note("migration of ULP" + std::to_string(inst) + " to " +
                       to->name() + " failed: " + st.failure,
                   false);
        self->blacklist(*to);
        if (attempt >= self->policy_.max_migration_retries) {
          self->note("giving up on vacating ULP" + std::to_string(inst) +
                         " after " + std::to_string(attempt) + " attempts",
                     false);
          co_return;
        }
        self->note("retrying ULP" + std::to_string(inst) + " in " +
                       std::to_string(backoff) + " s",
                   true);
        co_await sim::Delay(eng, backoff);
        backoff *= self->policy_.retry_backoff_factor;
      }
    };
    sim::spawn(vm_->engine(), driver(this, upvm_, i));
  }
}

void GlobalScheduler::vacate_adm(os::Host& host, bool withdraw) {
  // Find ADM slaves living on this host and post withdraw/rejoin events.
  for (int s = 0; s < adm_->slaves_spawned(); ++s) {
    pvm::Task* t = vm_->find_logical(adm_->slave_tid(s));
    if (t == nullptr || t->exited() || &t->pvmd().host() != &host) continue;
    note(std::string(withdraw ? "withdraw" : "rejoin") + " ADM slave " +
             std::to_string(s) + " on " + host.name(),
         true);
    adm_->post_event(
        s, withdraw ? adm::AdmEventKind::kWithdraw
                    : adm::AdmEventKind::kRejoin);
  }
}

void GlobalScheduler::start_monitoring(sim::Time until) {
  auto loop = [](GlobalScheduler* self, sim::Time horizon) -> sim::Co<void> {
    sim::Engine& eng = self->vm_->engine();
    while (eng.now() < horizon) {
      co_await sim::Delay(eng, self->policy_.poll_interval);
      self->monitor_tick();
    }
  };
  monitor_ = sim::launch(vm_->engine(), loop(this, until));
}

void GlobalScheduler::start_heartbeat(sim::Time until) {
  for (const auto& d : vm_->daemons())
    host_up_.try_emplace(&d->host(), d->host().up());
  auto loop = [](GlobalScheduler* self, sim::Time horizon) -> sim::Co<void> {
    sim::Engine& eng = self->vm_->engine();
    while (eng.now() < horizon) {
      co_await sim::Delay(eng, self->policy_.heartbeat_interval);
      self->heartbeat_tick();
    }
  };
  heartbeat_ = sim::launch(vm_->engine(), loop(this, until));
}

void GlobalScheduler::heartbeat_tick() {
  for (const auto& d : vm_->daemons()) {
    os::Host& h = d->host();
    const bool now_up = h.up();
    auto [it, first_seen] = host_up_.try_emplace(&h, now_up);
    if (first_seen || it->second == now_up) continue;
    it->second = now_up;
    if (now_up) {
      note("heartbeat: host " + h.name() + " recovered", true);
    } else {
      note("heartbeat: host " + h.name() + " is down", false);
      handle_host_down(h);
    }
  }
}

void GlobalScheduler::handle_host_down(os::Host& host) {
  for (pvm::Task* t : vm_->all_tasks()) {
    if (&t->pvmd().host() != &host) continue;
    const std::int32_t raw = t->tid().raw();
    if (t->exited()) {
      // Died in the crash with no checkpoint to fall back on: the work is
      // gone, and the journal is where that loss is recorded.
      if (reported_lost_.insert(raw).second)
        note("task " + t->tid().str() + " (" + t->program() +
                 ") lost in crash of " + host.name() + "; work is lost",
             false);
      continue;
    }
    // Stranded but crash-recoverable: restart from the last checkpoint.
    if (ckpt_ == nullptr || !ckpt_->watches(t->tid())) continue;
    if (!recovering_.insert(raw).second) continue;
    auto driver = [](GlobalScheduler* self, pvm::Tid victim,
                     os::Host* from) -> sim::Co<void> {
      sim::ScopeExit clear([self, victim] {
        self->recovering_.erase(victim.raw());
      });
      pvm::Task* task = self->vm_->find_logical(victim);
      if (task == nullptr || task->exited()) co_return;
      os::Host* to = self->pick_destination(*from);
      if (to == nullptr) {
        self->note("recover " + victim.str() +
                       ": no compatible live destination",
                   false);
        co_return;
      }
      self->note("recovering " + victim.str() + " from checkpoint onto " +
                     to->name(),
                 true);
      std::string failed;
      try {
        const mpvm::CkptVacateStats st =
            co_await self->ckpt_->recover(victim, *to);
        self->note("recovered " + victim.str() + " onto " + to->name() +
                       " (redoing " + std::to_string(st.redo_work) +
                       " s of lost work)",
                   true);
      } catch (const Error& e) {
        failed = e.what();
      }
      if (!failed.empty())
        self->note("checkpoint recovery of " + victim.str() + " failed: " +
                       failed,
                   false);
    };
    sim::spawn(vm_->engine(), driver(this, t->tid(), &host));
  }
}

void GlobalScheduler::monitor_tick() {
  if (policy_.load_threshold ==
      std::numeric_limits<double>::infinity())
    return;
  for (const auto& d : vm_->daemons()) {
    os::Host& host = d->host();
    if (!host.up()) continue;
    const double load = host.cpu().load();
    if (load <= policy_.load_threshold) continue;
    os::Host* dst = pick_destination(host);
    // Hysteresis: only move when the destination is meaningfully lighter.
    if (dst == nullptr || dst->cpu().load() + 1.0 >= load) continue;
    note("load " + std::to_string(load) + " on " + host.name() +
             " exceeds threshold: rebalancing",
         true);
    if (mpvm_ != nullptr) {
      // Move one task.
      for (pvm::Task* t : vm_->all_tasks()) {
        if (t->exited() || &t->pvmd().host() != &host) continue;
        if (mpvm_->migrating(t->tid())) continue;
        auto driver = [](GlobalScheduler* self, mpvm::Mpvm* m,
                         pvm::Tid victim, os::Host* to) -> sim::Co<void> {
          try {
            co_await m->migrate(victim, *to);
          } catch (const mpvm::MigrationError& e) {
            self->note(std::string("migration abandoned: ") + e.what(),
                       false);
          }
        };
        sim::spawn(vm_->engine(), driver(this, mpvm_, t->tid(), dst));
        break;
      }
    }
    if (upvm_ != nullptr) {
      for (int i = 0; i < upvm_->nulps(); ++i) {
        upvm::Ulp* u = upvm_->ulp(i);
        if (u == nullptr || u->done() || &u->host() != &host) continue;
        auto driver = [](GlobalScheduler* self, upvm::Upvm* up, int inst,
                         os::Host* to) -> sim::Co<void> {
          try {
            co_await up->migrate_ulp(inst, *to);
          } catch (const Error& e) {
            self->note(std::string("ULP migration abandoned: ") + e.what(),
                       false);
          }
        };
        sim::spawn(vm_->engine(), driver(this, upvm_, i, dst));
        break;
      }
    }
    if (adm_ != nullptr) {
      // ADM rebalances by repartitioning rather than by moving a VP.
      for (int s = 0; s < adm_->slaves_spawned(); ++s) {
        pvm::Task* t = vm_->find_logical(adm_->slave_tid(s));
        if (t == nullptr || t->exited() || &t->pvmd().host() != &host)
          continue;
        adm_->post_event(s, adm::AdmEventKind::kRebalance);
        break;
      }
    }
  }
}

}  // namespace cpe::gs
