#include "gs/scheduler.hpp"

namespace cpe::gs {

void GlobalScheduler::note(std::string what, bool ok) {
  vm_->trace().log("gs", what + (ok ? "" : " (failed)"));
  journal_.emplace_back(vm_->engine().now(), std::move(what), ok);
}

void GlobalScheduler::on_owner_event(const os::OwnerEvent& ev) {
  CPE_EXPECTS(ev.host != nullptr);
  switch (ev.action) {
    case os::OwnerAction::kReclaim:
      if (policy_.vacate_on_reclaim) {
        note("owner reclaimed " + ev.host->name() + ": vacating", true);
        vacate(*ev.host);
      }
      break;
    case os::OwnerAction::kArrive:
      if (policy_.vacate_on_arrival) {
        note("owner arrived on " + ev.host->name() + ": vacating", true);
        vacate(*ev.host);
      }
      break;
    case os::OwnerAction::kDepart:
      if (adm_ != nullptr && policy_.rejoin_on_depart)
        vacate_adm(*ev.host, /*withdraw=*/false);
      break;
  }
}

os::Host* GlobalScheduler::pick_destination(const os::Host& from) const {
  os::Host* best = nullptr;
  double best_load = std::numeric_limits<double>::infinity();
  for (const auto& d : vm_->daemons()) {
    os::Host& h = d->host();
    if (&h == &from) continue;
    if (!from.migration_compatible_with(h)) continue;
    const double load = h.cpu().load() + h.cpu().external_jobs();
    if (load < best_load) {
      best_load = load;
      best = &h;
    }
  }
  return best;
}

void GlobalScheduler::vacate(os::Host& host) {
  if (mpvm_ != nullptr) vacate_mpvm(host);
  if (upvm_ != nullptr) vacate_upvm(host);
  if (adm_ != nullptr) vacate_adm(host, /*withdraw=*/true);
}

void GlobalScheduler::vacate_mpvm(os::Host& host) {
  os::Host* dst = pick_destination(host);
  if (dst == nullptr) {
    note("vacate " + host.name() + ": no compatible destination", false);
    return;
  }
  for (pvm::Task* t : vm_->all_tasks()) {
    if (t->exited() || &t->pvmd().host() != &host) continue;
    if (mpvm_->migrating(t->tid())) continue;
    note("migrate " + t->tid().str() + " (" + t->program() + ") " +
             host.name() + " -> " + dst->name(),
         true);
    auto driver = [](GlobalScheduler* self, mpvm::Mpvm* m, pvm::Tid victim,
                     os::Host* to) -> sim::Co<void> {
      try {
        co_await m->migrate(victim, *to);
      } catch (const mpvm::MigrationError& e) {
        self->note(std::string("migration abandoned: ") + e.what(), false);
      }
    };
    sim::spawn(vm_->engine(), driver(this, mpvm_, t->tid(), dst));
  }
}

void GlobalScheduler::vacate_upvm(os::Host& host) {
  os::Host* dst = pick_destination(host);
  if (dst == nullptr) {
    note("vacate " + host.name() + ": no compatible destination", false);
    return;
  }
  for (int i = 0; i < upvm_->nulps(); ++i) {
    upvm::Ulp* u = upvm_->ulp(i);
    if (u == nullptr || u->done() || &u->host() != &host) continue;
    note("migrate ULP" + std::to_string(i) + " " + host.name() + " -> " +
             dst->name(),
         true);
    auto driver = [](GlobalScheduler* self, upvm::Upvm* up, int inst,
                     os::Host* to) -> sim::Co<void> {
      try {
        co_await up->migrate_ulp(inst, *to);
      } catch (const Error& e) {
        self->note(std::string("ULP migration abandoned: ") + e.what(),
                   false);
      }
    };
    sim::spawn(vm_->engine(), driver(this, upvm_, i, dst));
  }
}

void GlobalScheduler::vacate_adm(os::Host& host, bool withdraw) {
  // Find ADM slaves living on this host and post withdraw/rejoin events.
  for (int s = 0; s < adm_->slaves_spawned(); ++s) {
    pvm::Task* t = vm_->find_logical(adm_->slave_tid(s));
    if (t == nullptr || t->exited() || &t->pvmd().host() != &host) continue;
    note(std::string(withdraw ? "withdraw" : "rejoin") + " ADM slave " +
             std::to_string(s) + " on " + host.name(),
         true);
    adm_->post_event(
        s, withdraw ? adm::AdmEventKind::kWithdraw
                    : adm::AdmEventKind::kRejoin);
  }
}

void GlobalScheduler::start_monitoring(sim::Time until) {
  auto loop = [](GlobalScheduler* self, sim::Time horizon) -> sim::Co<void> {
    sim::Engine& eng = self->vm_->engine();
    while (eng.now() < horizon) {
      co_await sim::Delay(eng, self->policy_.poll_interval);
      self->monitor_tick();
    }
  };
  monitor_ = sim::launch(vm_->engine(), loop(this, until));
}

void GlobalScheduler::monitor_tick() {
  if (policy_.load_threshold ==
      std::numeric_limits<double>::infinity())
    return;
  for (const auto& d : vm_->daemons()) {
    os::Host& host = d->host();
    const double load = host.cpu().load();
    if (load <= policy_.load_threshold) continue;
    os::Host* dst = pick_destination(host);
    // Hysteresis: only move when the destination is meaningfully lighter.
    if (dst == nullptr || dst->cpu().load() + 1.0 >= load) continue;
    note("load " + std::to_string(load) + " on " + host.name() +
             " exceeds threshold: rebalancing",
         true);
    if (mpvm_ != nullptr) {
      // Move one task.
      for (pvm::Task* t : vm_->all_tasks()) {
        if (t->exited() || &t->pvmd().host() != &host) continue;
        if (mpvm_->migrating(t->tid())) continue;
        auto driver = [](GlobalScheduler* self, mpvm::Mpvm* m,
                         pvm::Tid victim, os::Host* to) -> sim::Co<void> {
          try {
            co_await m->migrate(victim, *to);
          } catch (const mpvm::MigrationError& e) {
            self->note(std::string("migration abandoned: ") + e.what(),
                       false);
          }
        };
        sim::spawn(vm_->engine(), driver(this, mpvm_, t->tid(), dst));
        break;
      }
    }
    if (upvm_ != nullptr) {
      for (int i = 0; i < upvm_->nulps(); ++i) {
        upvm::Ulp* u = upvm_->ulp(i);
        if (u == nullptr || u->done() || &u->host() != &host) continue;
        auto driver = [](GlobalScheduler* self, upvm::Upvm* up, int inst,
                         os::Host* to) -> sim::Co<void> {
          try {
            co_await up->migrate_ulp(inst, *to);
          } catch (const Error& e) {
            self->note(std::string("ULP migration abandoned: ") + e.what(),
                       false);
          }
        };
        sim::spawn(vm_->engine(), driver(this, upvm_, i, dst));
        break;
      }
    }
    if (adm_ != nullptr) {
      // ADM rebalances by repartitioning rather than by moving a VP.
      for (int s = 0; s < adm_->slaves_spawned(); ++s) {
        pvm::Task* t = vm_->find_logical(adm_->slave_tid(s));
        if (t == nullptr || t->exited() || &t->pvmd().host() != &host)
          continue;
        adm_->post_event(s, adm::AdmEventKind::kRebalance);
        break;
      }
    }
  }
}

}  // namespace cpe::gs
