// The Global Scheduler (GS) of the Concurrent Processing Environment
// (paper §2.0): the network-wide decision maker that watches workstation
// ownership and load, and orders migrations.
//
// All three systems "assume the presence of a network-wide global scheduler
// that embodies decision-making policies for sensibly scheduling multiple
// parallel jobs" and that initiates migrations.  This GS implements the two
// policies the paper motivates:
//   * vacate-on-reclaim — the owner is back, the parallel job must leave
//     (unobtrusiveness, §1);
//   * load threshold — a host got too busy, move work to the least-loaded
//     compatible host (effectiveness, §1).
//
// The GS drives whichever method is attached: MPVM process migration, UPVM
// ULP migration, or ADM withdraw/rejoin events.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "apps/opt/adm_opt.hpp"
#include "mpvm/checkpoint.hpp"
#include "mpvm/mpvm.hpp"
#include "os/owner.hpp"
#include "upvm/upvm.hpp"

namespace cpe::gs {

struct GsPolicy {
  bool vacate_on_reclaim = true;
  /// Vacate also on plain owner arrival (not just explicit reclaim).
  bool vacate_on_arrival = false;
  /// Move work off a host whose runnable load exceeds this (inf = off).
  double load_threshold = std::numeric_limits<double>::infinity();
  /// For ADM: post a rejoin when the owner departs again.
  bool rejoin_on_depart = true;
  sim::Time poll_interval = 2.0;

  // -- Failure handling (crash-safe operation) -------------------------------
  /// Period of the heartbeat monitor that detects crashed/recovered hosts.
  sim::Time heartbeat_interval = 1.0;
  /// A failed vacate migration is retried against the next-best destination
  /// up to this many attempts in total.
  int max_migration_retries = 3;
  /// Delay before the first retry; each further retry multiplies it by
  /// `retry_backoff_factor` (exponential backoff).
  sim::Time retry_backoff = 0.5;
  double retry_backoff_factor = 2.0;
  /// A destination that made a migration fail is avoided for this long.
  sim::Time blacklist_duration = 10.0;
};

struct Decision {
  sim::Time t = 0;
  std::string what;
  bool ok = true;

  Decision() = default;
  Decision(sim::Time t_, std::string what_, bool ok_)
      : t(t_), what(std::move(what_)), ok(ok_) {}
};

class GlobalScheduler {
 public:
  explicit GlobalScheduler(pvm::PvmSystem& vm, GsPolicy policy = {})
      : vm_(&vm), policy_(policy) {}
  GlobalScheduler(const GlobalScheduler&) = delete;
  GlobalScheduler& operator=(const GlobalScheduler&) = delete;

  void attach(mpvm::Mpvm& m) { mpvm_ = &m; }
  void attach(upvm::Upvm& u) { upvm_ = &u; }
  void attach(opt::AdmOpt& a) { adm_ = &a; }
  /// With a Checkpointer attached, tasks it watches are restarted from
  /// their last checkpoint when their host crashes (heartbeat-driven).
  void attach(mpvm::Checkpointer& c) { ckpt_ = &c; }

  [[nodiscard]] const GsPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] const std::vector<Decision>& journal() const noexcept {
    return journal_;
  }

  /// Owner-activity sink; wire via ScriptedOwner/StochasticOwner
  /// set_observer.  Reclaims (and, per policy, arrivals) vacate the host;
  /// departures post ADM rejoins.
  void on_owner_event(const os::OwnerEvent& ev);

  /// Order every movable unit off `host` (what a reclaim triggers).
  void vacate(os::Host& host);

  /// Start the periodic load monitor (load-threshold policy) running until
  /// `until`.
  void start_monitoring(sim::Time until);

  /// Start the heartbeat monitor running until `until`: detects host
  /// crashes (journalled ok=false) and recoveries, reports tasks lost in a
  /// crash, and drives checkpoint recovery of watched tasks.
  void start_heartbeat(sim::Time until);

  /// Least-loaded host that is migration-compatible with `from`, up, not
  /// temporarily blacklisted, and not `from` itself; nullptr when none.
  [[nodiscard]] os::Host* pick_destination(const os::Host& from) const;

  /// True while `host` is on the failed-destination blacklist.
  [[nodiscard]] bool is_blacklisted(const os::Host& host) const;

 private:
  void vacate_mpvm(os::Host& host);
  void vacate_upvm(os::Host& host);
  void vacate_adm(os::Host& host, bool withdraw);
  void monitor_tick();
  void heartbeat_tick();
  /// Crash fallout: report lost tasks, launch checkpoint recoveries.
  void handle_host_down(os::Host& host);
  void blacklist(os::Host& host);
  void note(std::string what, bool ok);

  pvm::PvmSystem* vm_;
  GsPolicy policy_;
  mpvm::Mpvm* mpvm_ = nullptr;
  upvm::Upvm* upvm_ = nullptr;
  opt::AdmOpt* adm_ = nullptr;
  mpvm::Checkpointer* ckpt_ = nullptr;
  std::vector<Decision> journal_;
  sim::ProcHandle monitor_;
  sim::ProcHandle heartbeat_;
  std::unordered_map<const os::Host*, sim::Time> blacklist_until_;
  std::unordered_map<const os::Host*, bool> host_up_;
  std::unordered_set<std::int32_t> reported_lost_;
  std::unordered_set<std::int32_t> recovering_;
};

}  // namespace cpe::gs
