// The Global Scheduler (GS) of the Concurrent Processing Environment
// (paper §2.0): the network-wide decision maker that watches workstation
// ownership and load, and orders migrations.
//
// All three systems "assume the presence of a network-wide global scheduler
// that embodies decision-making policies for sensibly scheduling multiple
// parallel jobs" and that initiates migrations.  This GS implements the two
// policies the paper motivates:
//   * vacate-on-reclaim — the owner is back, the parallel job must leave
//     (unobtrusiveness, §1);
//   * load threshold — a host got too busy, move work to the least-loaded
//     compatible host (effectiveness, §1).
//
// The GS drives whichever method is attached: MPVM process migration, UPVM
// ULP migration, or ADM withdraw/rejoin events.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "apps/opt/adm_opt.hpp"
#include "load/exchange.hpp"
#include "load/placement.hpp"
#include "mpvm/checkpoint.hpp"
#include "mpvm/mpvm.hpp"
#include "os/owner.hpp"
#include "upvm/upvm.hpp"

namespace cpe::gs {

struct GsPolicy {
  bool vacate_on_reclaim = true;
  /// Vacate also on plain owner arrival (not just explicit reclaim).
  bool vacate_on_arrival = false;
  /// Move work off a host whose runnable load exceeds this (inf = off).
  double load_threshold = std::numeric_limits<double>::infinity();
  /// For ADM: post a rejoin when the owner departs again.
  bool rejoin_on_depart = true;
  sim::Time poll_interval = 2.0;

  // -- Failure handling (crash-safe operation) -------------------------------
  /// Period of the heartbeat monitor that detects crashed/recovered hosts.
  sim::Time heartbeat_interval = 1.0;
  /// A failed vacate migration is retried against the next-best destination
  /// up to this many attempts in total.
  int max_migration_retries = 3;
  /// Delay before the first retry; each further retry multiplies it by
  /// `retry_backoff_factor` (exponential backoff), clamped at
  /// `retry_backoff_max` so a long outage episode cannot grow the delay
  /// geometrically into multi-hour virtual waits (or overflow sim::Time).
  sim::Time retry_backoff = 0.5;
  double retry_backoff_factor = 2.0;
  sim::Time retry_backoff_max = 30.0;
  /// A destination that made a migration fail is avoided for this long.
  sim::Time blacklist_duration = 10.0;

  // -- Placement (load/placement.hpp) ----------------------------------------
  /// Which rebalancing policy the monitor runs.  kThreshold reproduces the
  /// pre-placement-engine GS decision-for-decision; kNone disables
  /// rebalancing entirely (vacates still run).
  load::PolicyKind placement = load::PolicyKind::kThreshold;
  /// A rebalance must beat the post-move equal-load point by this much.
  double improvement_margin = 0.5;
  /// A rebalanced unit stays put at least this long (anti-thrash).
  sim::Time min_residency = 5.0;
  /// Gossiped load entries older than this are ignored by index policies.
  sim::Time staleness_bound = 5.0;
  /// Seconds over which BestFit must amortize the migration cost.
  sim::Time cost_horizon = 60.0;
  /// Cap on rebalance actions per monitor tick (index policies only).
  int max_rebalance_actions = 4;
  std::uint64_t placement_seed = 0x9c1ace;
  /// Load-index units per outstanding service request (see HostLoadView::
  /// outstanding).  0 keeps the batch-era decisions bit-identical; service
  /// scenarios raise it so queueing pressure, not just CPU load, drives the
  /// index policies.  Requires a pressure source (set_pressure_source).
  double queue_weight = 0;

  // -- Concurrent migration admission (DESIGN.md §12) ------------------------
  /// Cap on concurrently in-flight migration streams ordered by this GS;
  /// vacates and rebalances share the budget (AdmissionController).
  int max_concurrent_migrations = 4;
  /// A migration still unresolved after this long is presumed wedged: the
  /// deadlock watchdog orders an abort-and-rollback and frees its slot.
  sim::Time migration_watchdog = 60.0;

  /// The delay to wait after a failed attempt given the current backoff.
  /// Shared by every retry driver so the clamp cannot be forgotten in one.
  [[nodiscard]] sim::Time next_backoff(sim::Time current) const noexcept {
    const sim::Time next = current * retry_backoff_factor;
    return next < retry_backoff_max ? next : retry_backoff_max;
  }

  /// Reject misconfigured knobs loudly at attach time instead of letting a
  /// zero interval wedge a monitor loop or a negative threshold rebalance
  /// every host every tick.  Called by the GlobalScheduler constructor
  /// (and therefore by every HA replica core).
  void validate() const {
    CPE_EXPECTS(poll_interval > 0 &&
                "GsPolicy.poll_interval must be > 0 seconds");
    CPE_EXPECTS(heartbeat_interval > 0 &&
                "GsPolicy.heartbeat_interval must be > 0 seconds");
    CPE_EXPECTS((load_threshold == std::numeric_limits<double>::infinity() ||
                 (std::isfinite(load_threshold) && load_threshold >= 0)) &&
                "GsPolicy.load_threshold must be finite and >= 0, or "
                "infinity to disable the threshold policy");
    CPE_EXPECTS(max_migration_retries >= 1 &&
                "GsPolicy.max_migration_retries must be >= 1");
    CPE_EXPECTS(retry_backoff > 0 && "GsPolicy.retry_backoff must be > 0");
    CPE_EXPECTS(improvement_margin >= 0 &&
                "GsPolicy.improvement_margin must be >= 0");
    CPE_EXPECTS(min_residency >= 0 && "GsPolicy.min_residency must be >= 0");
    CPE_EXPECTS(staleness_bound > 0 &&
                "GsPolicy.staleness_bound must be > 0 seconds");
    CPE_EXPECTS(max_concurrent_migrations >= 1 &&
                "GsPolicy.max_concurrent_migrations must be >= 1");
    CPE_EXPECTS(migration_watchdog > 0 &&
                "GsPolicy.migration_watchdog must be > 0 seconds");
    CPE_EXPECTS(std::isfinite(queue_weight) && queue_weight >= 0 &&
                "GsPolicy.queue_weight must be finite and >= 0");
  }
};

/// Why the GS acted: typed alongside the human-readable journal text so
/// consumers (metrics, HA followers, benches) need not parse strings.
enum class DecisionReason : std::uint8_t {
  kNone,       ///< bookkeeping (heartbeats, blacklists, recovery)
  kReclaim,    ///< owner demanded the workstation back
  kOverload,   ///< legacy threshold tripped on live load
  kRebalance,  ///< an index placement policy chose to move work
};

[[nodiscard]] constexpr const char* to_string(DecisionReason r) noexcept {
  switch (r) {
    case DecisionReason::kNone: return "none";
    case DecisionReason::kReclaim: return "reclaim";
    case DecisionReason::kOverload: return "overload";
    case DecisionReason::kRebalance: return "rebalance";
  }
  return "?";
}

struct Decision {
  sim::Time t = 0;
  std::string what;
  bool ok = true;
  DecisionReason reason = DecisionReason::kNone;
  /// Load snapshot of the host that triggered the decision (0 when the
  /// decision is not load-related).
  double load = 0;

  Decision() = default;
  Decision(sim::Time t_, std::string what_, bool ok_)
      : t(t_), what(std::move(what_)), ok(ok_) {}
  Decision(sim::Time t_, std::string what_, bool ok_, DecisionReason reason_,
           double load_)
      : t(t_), what(std::move(what_)), ok(ok_), reason(reason_),
        load(load_) {}
};

/// Snapshot of the scheduler state a leader replicates to its followers so
/// a newly elected leader resumes mid-flight work instead of starting
/// blind: the decision journal, the failed-destination blacklist, the
/// host-liveness baseline, already-reported task losses, and the hosts
/// whose vacates are still open.
///
/// NOTE: deliberately not an aggregate (user-provided constructor) — this
/// type rides by value into send coroutines; see net::Datagram's GCC 12
/// note.
struct GsDurableState {
  std::uint64_t epoch = 0;
  /// `journal` holds the entries from `journal_base` onward: the leader
  /// replicates incrementally, sending each follower only the suffix past
  /// the journal length that follower last acked (0 = the full journal).
  /// Keeps per-heartbeat wire bytes proportional to what is new, not to
  /// the whole history.
  std::size_t journal_base = 0;
  std::vector<Decision> journal;
  std::vector<std::pair<std::string, sim::Time>> blacklist;
  std::vector<std::pair<std::string, bool>> host_up;
  std::vector<std::int32_t> reported_lost;
  std::vector<std::string> pending_vacates;
  /// Migration streams the leader had admitted but not yet seen resolve:
  /// a failover successor seeds its AdmissionController with these (as
  /// adopted entries) so it cannot over-admit while they still run.
  std::vector<load::AdmissionController::InFlight> in_flight_migrations;

  GsDurableState() noexcept {}
};

class GlobalScheduler {
 public:
  explicit GlobalScheduler(pvm::PvmSystem& vm, GsPolicy policy = {})
      : vm_(&vm),
        policy_((policy.validate(), policy)),
        engine_(policy.placement, policy.placement_seed),
        admission_(policy.max_concurrent_migrations) {}
  GlobalScheduler(const GlobalScheduler&) = delete;
  GlobalScheduler& operator=(const GlobalScheduler&) = delete;

  void attach(mpvm::Mpvm& m) { mpvm_ = &m; }
  void attach(upvm::Upvm& u) { upvm_ = &u; }
  void attach(opt::AdmOpt& a) { adm_ = &a; }
  /// With a Checkpointer attached, tasks it watches are restarted from
  /// their last checkpoint when their host crashes (heartbeat-driven).
  void attach(mpvm::Checkpointer& c) { ckpt_ = &c; }
  /// With a LoadExchange attached, the monitor's index policies read the
  /// gossiped partial load map held at `at` (the host this scheduler runs
  /// on) instead of live-polling every CPU.  Hosts the map has not heard
  /// of — or whose entries exceed the staleness bound — are simply not
  /// rebalancing candidates this tick.  The legacy Threshold policy keeps
  /// reading live loads either way (byte-identical compatibility).
  void attach(load::LoadExchange& x, os::Host& at) {
    exchange_ = &x;
    gs_host_ = &at;
  }
  /// Queueing-pressure source for the service layer: called per host when
  /// the monitor builds its load views, the result lands in
  /// HostLoadView::outstanding (scaled into decisions by
  /// GsPolicy.queue_weight).  Typically sums svc::Frontend::outstanding_on
  /// across the scenario's frontends.  Unset, views carry 0 — the batch
  /// behaviour.
  void set_pressure_source(std::function<double(const os::Host&)> src) {
    pressure_ = std::move(src);
  }

  [[nodiscard]] const GsPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] const std::vector<Decision>& journal() const noexcept {
    return journal_;
  }

  /// Owner-activity sink; wire via ScriptedOwner/StochasticOwner
  /// set_observer.  Reclaims (and, per policy, arrivals) vacate the host;
  /// departures post ADM rejoins.
  void on_owner_event(const os::OwnerEvent& ev);

  /// Order every movable unit off `host` (what a reclaim triggers).
  void vacate(os::Host& host);

  /// Start the periodic load monitor (load-threshold policy) running until
  /// `until`.
  void start_monitoring(sim::Time until);

  /// Start the heartbeat monitor running until `until`: detects host
  /// crashes (journalled ok=false) and recoveries, reports tasks lost in a
  /// crash, and drives checkpoint recovery of watched tasks.
  void start_heartbeat(sim::Time until);

  /// Least-loaded host that is migration-compatible with `from`, up, not
  /// temporarily blacklisted, and not `from` itself; nullptr when none.
  [[nodiscard]] os::Host* pick_destination(const os::Host& from) const;

  /// All eligible destinations for `from`, best (least loaded) first.
  /// Concurrent vacate drivers walk this list claiming the first whose
  /// (from, to) stream lane the admission controller has free, so k
  /// streams fan out over k distinct destinations.
  [[nodiscard]] std::vector<os::Host*> ranked_destinations(
      const os::Host& from) const;

  /// Migration-stream admission (budget, pair conflicts, watchdog state).
  [[nodiscard]] load::AdmissionController& admission() noexcept {
    return admission_;
  }
  [[nodiscard]] const load::AdmissionController& admission() const noexcept {
    return admission_;
  }

  /// True while `host` is on the failed-destination blacklist.
  [[nodiscard]] bool is_blacklisted(const os::Host& host) const;

  /// The placement decision core (policy + anti-thrash hysteresis).
  [[nodiscard]] load::PlacementEngine& placement() noexcept {
    return engine_;
  }
  [[nodiscard]] const load::PlacementEngine& placement() const noexcept {
    return engine_;
  }

  // -- High availability (see gs/ha.hpp) ------------------------------------
  // A replicated deployment runs one GlobalScheduler core per replica; only
  // the elected leader is `active`.  An inactive core ignores owner events
  // and ticks, and its retry drivers wind down at their next step — the
  // next leader resumes them from the replicated state.

  /// Election term of the scheduler issuing commands; stamped (as the
  /// fencing epoch) onto every migrate/vacate/withdraw when > 0.
  void set_epoch(std::uint64_t e) noexcept { epoch_ = e; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  void set_active(bool on) noexcept { active_ = on; }
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Invoked synchronously after every journal/blacklist/intent change; the
  /// HA layer uses it to push fresh state to the followers promptly rather
  /// than waiting out a heartbeat interval.
  void set_replication_hook(std::function<void()> hook) {
    replication_hook_ = std::move(hook);
  }

  /// One scheduling round: heartbeat (crash/recovery detection) plus load
  /// monitor.  No-op while inactive.  The HA layer calls this from the
  /// leader's duty loop instead of start_monitoring/start_heartbeat.
  void tick();

  /// Snapshot the durable state, carrying only the journal entries from
  /// `journal_from` onward (clamped; 0 = full journal).
  [[nodiscard]] GsDurableState export_state(std::size_t journal_from = 0) const;
  void import_state(const GsDurableState& s);

  /// Called on the newly elected leader after import_state: re-issues every
  /// vacate the previous leader left open and re-baselines host liveness so
  /// crashes that happened during the leaderless window are handled now.
  void resume_after_failover();

  [[nodiscard]] pvm::PvmSystem& vm() const noexcept { return *vm_; }

 private:
  void vacate_mpvm(os::Host& host);
  void vacate_upvm(os::Host& host);
  void vacate_adm(os::Host& host, bool withdraw);
  void monitor_tick();
  void heartbeat_tick();
  /// Abort migrations stalled past `migration_watchdog` and reap adopted
  /// admission entries whose streams have resolved.  Heartbeat-driven.
  void watchdog_tick();
  /// admission().admit/release with the replication hook attached: the
  /// in-flight set is durable state, so followers must hear about it.
  [[nodiscard]] std::uint64_t admit_migration(std::int64_t unit,
                                              const std::string& from,
                                              const std::string& to);
  void release_migration(std::uint64_t ticket);
  /// Build the per-host views the PlacementEngine decides over: live CPU
  /// readings always, gossiped index + age when an exchange is attached.
  [[nodiscard]] std::vector<load::HostLoadView> build_views() const;
  [[nodiscard]] load::PlacementParams placement_params() const;
  /// Launch the method drivers for one placement action (one victim per
  /// attached method, exactly like the legacy monitor).
  void execute_rebalance(const load::PlacementAction& action);
  /// Crash fallout: report lost tasks, launch checkpoint recoveries.
  void handle_host_down(os::Host& host);
  void blacklist(os::Host& host);
  void note(std::string what, bool ok,
            DecisionReason reason = DecisionReason::kNone, double load = 0);

  /// Hysteresis unit ids: tids, ULP instances and ADM slaves share the
  /// engine's residency table via disjoint 64-bit ranges.
  [[nodiscard]] static std::int64_t unit_of(pvm::Tid tid) noexcept {
    return tid.raw();
  }
  [[nodiscard]] static std::int64_t unit_of_ulp(int inst) noexcept {
    return (std::int64_t{1} << 40) + inst;
  }
  [[nodiscard]] static std::int64_t unit_of_slave(int s) noexcept {
    return (std::int64_t{1} << 41) + s;
  }
  /// The epoch stamp for subsystem commands (nullopt in legacy single-GS
  /// deployments, where epoch_ stays 0 and no fence is installed).
  [[nodiscard]] std::optional<std::uint64_t> stamp() const noexcept {
    return epoch_ > 0 ? std::optional<std::uint64_t>(epoch_) : std::nullopt;
  }
  void open_vacate(const std::string& host_name);
  void close_vacate(const std::string& host_name);

  pvm::PvmSystem* vm_;
  /// Cached `gs.load.cv` gauge (created on the first monitor tick; the
  /// registry guarantees pointer stability).
  obs::Gauge* load_cv_gauge_ = nullptr;
  GsPolicy policy_;
  load::PlacementEngine engine_;
  load::AdmissionController admission_;
  mpvm::Mpvm* mpvm_ = nullptr;
  upvm::Upvm* upvm_ = nullptr;
  opt::AdmOpt* adm_ = nullptr;
  mpvm::Checkpointer* ckpt_ = nullptr;
  load::LoadExchange* exchange_ = nullptr;
  os::Host* gs_host_ = nullptr;  ///< where this scheduler's view lives
  std::vector<Decision> journal_;
  sim::ProcHandle monitor_;
  sim::ProcHandle heartbeat_;
  /// Load the GS has already ordered moved but the lagging (smoothed,
  /// gossiped) indices cannot show yet: host -> [(action time, delta)].
  /// Overlaid onto view.index for `staleness_bound` seconds so consecutive
  /// ticks don't herd every unit onto the same momentarily-cold host.
  /// Never touches instant/dest_rank (Threshold stays byte-identical).
  std::unordered_map<const os::Host*, std::vector<std::pair<sim::Time, double>>>
      pending_shift_;
  std::unordered_map<const os::Host*, sim::Time> blacklist_until_;
  std::unordered_map<const os::Host*, bool> host_up_;
  std::unordered_set<std::int32_t> reported_lost_;
  std::unordered_set<std::int32_t> recovering_;

  // -- HA state --------------------------------------------------------------
  bool active_ = true;
  std::uint64_t epoch_ = 0;
  std::function<void()> replication_hook_;
  /// Per-host queueing pressure for HostLoadView::outstanding (service
  /// workloads; nullptr for batch).
  std::function<double(const os::Host&)> pressure_;
  /// Tasks/ULPs that already have a vacate retry-driver running (prevents
  /// duplicate drivers when a vacate is re-issued after failover).
  std::unordered_set<std::int32_t> vacating_;
  std::unordered_set<int> vacating_ulps_;
  /// Host name -> open vacate drivers; a host stays "pending" in the
  /// replicated state until every driver for it has wound down.
  std::unordered_map<std::string, int> vacate_open_;
  /// Vacates imported from a deposed leader, re-issued by
  /// resume_after_failover.
  std::vector<std::string> resume_pending_;
};

}  // namespace cpe::gs
