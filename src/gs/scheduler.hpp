// The Global Scheduler (GS) of the Concurrent Processing Environment
// (paper §2.0): the network-wide decision maker that watches workstation
// ownership and load, and orders migrations.
//
// All three systems "assume the presence of a network-wide global scheduler
// that embodies decision-making policies for sensibly scheduling multiple
// parallel jobs" and that initiates migrations.  This GS implements the two
// policies the paper motivates:
//   * vacate-on-reclaim — the owner is back, the parallel job must leave
//     (unobtrusiveness, §1);
//   * load threshold — a host got too busy, move work to the least-loaded
//     compatible host (effectiveness, §1).
//
// The GS drives whichever method is attached: MPVM process migration, UPVM
// ULP migration, or ADM withdraw/rejoin events.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "apps/opt/adm_opt.hpp"
#include "mpvm/checkpoint.hpp"
#include "mpvm/mpvm.hpp"
#include "os/owner.hpp"
#include "upvm/upvm.hpp"

namespace cpe::gs {

struct GsPolicy {
  bool vacate_on_reclaim = true;
  /// Vacate also on plain owner arrival (not just explicit reclaim).
  bool vacate_on_arrival = false;
  /// Move work off a host whose runnable load exceeds this (inf = off).
  double load_threshold = std::numeric_limits<double>::infinity();
  /// For ADM: post a rejoin when the owner departs again.
  bool rejoin_on_depart = true;
  sim::Time poll_interval = 2.0;

  // -- Failure handling (crash-safe operation) -------------------------------
  /// Period of the heartbeat monitor that detects crashed/recovered hosts.
  sim::Time heartbeat_interval = 1.0;
  /// A failed vacate migration is retried against the next-best destination
  /// up to this many attempts in total.
  int max_migration_retries = 3;
  /// Delay before the first retry; each further retry multiplies it by
  /// `retry_backoff_factor` (exponential backoff), clamped at
  /// `retry_backoff_max` so a long outage episode cannot grow the delay
  /// geometrically into multi-hour virtual waits (or overflow sim::Time).
  sim::Time retry_backoff = 0.5;
  double retry_backoff_factor = 2.0;
  sim::Time retry_backoff_max = 30.0;
  /// A destination that made a migration fail is avoided for this long.
  sim::Time blacklist_duration = 10.0;

  /// The delay to wait after a failed attempt given the current backoff.
  /// Shared by every retry driver so the clamp cannot be forgotten in one.
  [[nodiscard]] sim::Time next_backoff(sim::Time current) const noexcept {
    const sim::Time next = current * retry_backoff_factor;
    return next < retry_backoff_max ? next : retry_backoff_max;
  }
};

struct Decision {
  sim::Time t = 0;
  std::string what;
  bool ok = true;

  Decision() = default;
  Decision(sim::Time t_, std::string what_, bool ok_)
      : t(t_), what(std::move(what_)), ok(ok_) {}
};

/// Snapshot of the scheduler state a leader replicates to its followers so
/// a newly elected leader resumes mid-flight work instead of starting
/// blind: the decision journal, the failed-destination blacklist, the
/// host-liveness baseline, already-reported task losses, and the hosts
/// whose vacates are still open.
///
/// NOTE: deliberately not an aggregate (user-provided constructor) — this
/// type rides by value into send coroutines; see net::Datagram's GCC 12
/// note.
struct GsDurableState {
  std::uint64_t epoch = 0;
  /// `journal` holds the entries from `journal_base` onward: the leader
  /// replicates incrementally, sending each follower only the suffix past
  /// the journal length that follower last acked (0 = the full journal).
  /// Keeps per-heartbeat wire bytes proportional to what is new, not to
  /// the whole history.
  std::size_t journal_base = 0;
  std::vector<Decision> journal;
  std::vector<std::pair<std::string, sim::Time>> blacklist;
  std::vector<std::pair<std::string, bool>> host_up;
  std::vector<std::int32_t> reported_lost;
  std::vector<std::string> pending_vacates;

  GsDurableState() noexcept {}
};

class GlobalScheduler {
 public:
  explicit GlobalScheduler(pvm::PvmSystem& vm, GsPolicy policy = {})
      : vm_(&vm), policy_(policy) {}
  GlobalScheduler(const GlobalScheduler&) = delete;
  GlobalScheduler& operator=(const GlobalScheduler&) = delete;

  void attach(mpvm::Mpvm& m) { mpvm_ = &m; }
  void attach(upvm::Upvm& u) { upvm_ = &u; }
  void attach(opt::AdmOpt& a) { adm_ = &a; }
  /// With a Checkpointer attached, tasks it watches are restarted from
  /// their last checkpoint when their host crashes (heartbeat-driven).
  void attach(mpvm::Checkpointer& c) { ckpt_ = &c; }

  [[nodiscard]] const GsPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] const std::vector<Decision>& journal() const noexcept {
    return journal_;
  }

  /// Owner-activity sink; wire via ScriptedOwner/StochasticOwner
  /// set_observer.  Reclaims (and, per policy, arrivals) vacate the host;
  /// departures post ADM rejoins.
  void on_owner_event(const os::OwnerEvent& ev);

  /// Order every movable unit off `host` (what a reclaim triggers).
  void vacate(os::Host& host);

  /// Start the periodic load monitor (load-threshold policy) running until
  /// `until`.
  void start_monitoring(sim::Time until);

  /// Start the heartbeat monitor running until `until`: detects host
  /// crashes (journalled ok=false) and recoveries, reports tasks lost in a
  /// crash, and drives checkpoint recovery of watched tasks.
  void start_heartbeat(sim::Time until);

  /// Least-loaded host that is migration-compatible with `from`, up, not
  /// temporarily blacklisted, and not `from` itself; nullptr when none.
  [[nodiscard]] os::Host* pick_destination(const os::Host& from) const;

  /// True while `host` is on the failed-destination blacklist.
  [[nodiscard]] bool is_blacklisted(const os::Host& host) const;

  // -- High availability (see gs/ha.hpp) ------------------------------------
  // A replicated deployment runs one GlobalScheduler core per replica; only
  // the elected leader is `active`.  An inactive core ignores owner events
  // and ticks, and its retry drivers wind down at their next step — the
  // next leader resumes them from the replicated state.

  /// Election term of the scheduler issuing commands; stamped (as the
  /// fencing epoch) onto every migrate/vacate/withdraw when > 0.
  void set_epoch(std::uint64_t e) noexcept { epoch_ = e; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  void set_active(bool on) noexcept { active_ = on; }
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Invoked synchronously after every journal/blacklist/intent change; the
  /// HA layer uses it to push fresh state to the followers promptly rather
  /// than waiting out a heartbeat interval.
  void set_replication_hook(std::function<void()> hook) {
    replication_hook_ = std::move(hook);
  }

  /// One scheduling round: heartbeat (crash/recovery detection) plus load
  /// monitor.  No-op while inactive.  The HA layer calls this from the
  /// leader's duty loop instead of start_monitoring/start_heartbeat.
  void tick();

  /// Snapshot the durable state, carrying only the journal entries from
  /// `journal_from` onward (clamped; 0 = full journal).
  [[nodiscard]] GsDurableState export_state(std::size_t journal_from = 0) const;
  void import_state(const GsDurableState& s);

  /// Called on the newly elected leader after import_state: re-issues every
  /// vacate the previous leader left open and re-baselines host liveness so
  /// crashes that happened during the leaderless window are handled now.
  void resume_after_failover();

  [[nodiscard]] pvm::PvmSystem& vm() const noexcept { return *vm_; }

 private:
  void vacate_mpvm(os::Host& host);
  void vacate_upvm(os::Host& host);
  void vacate_adm(os::Host& host, bool withdraw);
  void monitor_tick();
  void heartbeat_tick();
  /// Crash fallout: report lost tasks, launch checkpoint recoveries.
  void handle_host_down(os::Host& host);
  void blacklist(os::Host& host);
  void note(std::string what, bool ok);
  /// The epoch stamp for subsystem commands (nullopt in legacy single-GS
  /// deployments, where epoch_ stays 0 and no fence is installed).
  [[nodiscard]] std::optional<std::uint64_t> stamp() const noexcept {
    return epoch_ > 0 ? std::optional<std::uint64_t>(epoch_) : std::nullopt;
  }
  void open_vacate(const std::string& host_name);
  void close_vacate(const std::string& host_name);

  pvm::PvmSystem* vm_;
  GsPolicy policy_;
  mpvm::Mpvm* mpvm_ = nullptr;
  upvm::Upvm* upvm_ = nullptr;
  opt::AdmOpt* adm_ = nullptr;
  mpvm::Checkpointer* ckpt_ = nullptr;
  std::vector<Decision> journal_;
  sim::ProcHandle monitor_;
  sim::ProcHandle heartbeat_;
  std::unordered_map<const os::Host*, sim::Time> blacklist_until_;
  std::unordered_map<const os::Host*, bool> host_up_;
  std::unordered_set<std::int32_t> reported_lost_;
  std::unordered_set<std::int32_t> recovering_;

  // -- HA state --------------------------------------------------------------
  bool active_ = true;
  std::uint64_t epoch_ = 0;
  std::function<void()> replication_hook_;
  /// Tasks/ULPs that already have a vacate retry-driver running (prevents
  /// duplicate drivers when a vacate is re-issued after failover).
  std::unordered_set<std::int32_t> vacating_;
  std::unordered_set<int> vacating_ulps_;
  /// Host name -> open vacate drivers; a host stays "pending" in the
  /// replicated state until every driver for it has wound down.
  std::unordered_map<std::string, int> vacate_open_;
  /// Vacates imported from a deposed leader, re-issued by
  /// resume_after_failover.
  std::vector<std::string> resume_pending_;
};

}  // namespace cpe::gs
