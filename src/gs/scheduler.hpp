// The Global Scheduler (GS) of the Concurrent Processing Environment
// (paper §2.0): the network-wide decision maker that watches workstation
// ownership and load, and orders migrations.
//
// All three systems "assume the presence of a network-wide global scheduler
// that embodies decision-making policies for sensibly scheduling multiple
// parallel jobs" and that initiates migrations.  This GS implements the two
// policies the paper motivates:
//   * vacate-on-reclaim — the owner is back, the parallel job must leave
//     (unobtrusiveness, §1);
//   * load threshold — a host got too busy, move work to the least-loaded
//     compatible host (effectiveness, §1).
//
// The GS drives whichever method is attached: MPVM process migration, UPVM
// ULP migration, or ADM withdraw/rejoin events.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/opt/adm_opt.hpp"
#include "mpvm/mpvm.hpp"
#include "os/owner.hpp"
#include "upvm/upvm.hpp"

namespace cpe::gs {

struct GsPolicy {
  bool vacate_on_reclaim = true;
  /// Vacate also on plain owner arrival (not just explicit reclaim).
  bool vacate_on_arrival = false;
  /// Move work off a host whose runnable load exceeds this (inf = off).
  double load_threshold = std::numeric_limits<double>::infinity();
  /// For ADM: post a rejoin when the owner departs again.
  bool rejoin_on_depart = true;
  sim::Time poll_interval = 2.0;
};

struct Decision {
  sim::Time t = 0;
  std::string what;
  bool ok = true;

  Decision() = default;
  Decision(sim::Time t_, std::string what_, bool ok_)
      : t(t_), what(std::move(what_)), ok(ok_) {}
};

class GlobalScheduler {
 public:
  explicit GlobalScheduler(pvm::PvmSystem& vm, GsPolicy policy = {})
      : vm_(&vm), policy_(policy) {}
  GlobalScheduler(const GlobalScheduler&) = delete;
  GlobalScheduler& operator=(const GlobalScheduler&) = delete;

  void attach(mpvm::Mpvm& m) { mpvm_ = &m; }
  void attach(upvm::Upvm& u) { upvm_ = &u; }
  void attach(opt::AdmOpt& a) { adm_ = &a; }

  [[nodiscard]] const GsPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] const std::vector<Decision>& journal() const noexcept {
    return journal_;
  }

  /// Owner-activity sink; wire via ScriptedOwner/StochasticOwner
  /// set_observer.  Reclaims (and, per policy, arrivals) vacate the host;
  /// departures post ADM rejoins.
  void on_owner_event(const os::OwnerEvent& ev);

  /// Order every movable unit off `host` (what a reclaim triggers).
  void vacate(os::Host& host);

  /// Start the periodic load monitor (load-threshold policy) running until
  /// `until`.
  void start_monitoring(sim::Time until);

  /// Least-loaded host that is migration-compatible with `from` and not
  /// `from` itself; nullptr when none exists.
  [[nodiscard]] os::Host* pick_destination(const os::Host& from) const;

 private:
  void vacate_mpvm(os::Host& host);
  void vacate_upvm(os::Host& host);
  void vacate_adm(os::Host& host, bool withdraw);
  void monitor_tick();
  void note(std::string what, bool ok);

  pvm::PvmSystem* vm_;
  GsPolicy policy_;
  mpvm::Mpvm* mpvm_ = nullptr;
  upvm::Upvm* upvm_ = nullptr;
  opt::AdmOpt* adm_ = nullptr;
  std::vector<Decision> journal_;
  sim::ProcHandle monitor_;
};

}  // namespace cpe::gs
