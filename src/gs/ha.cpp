#include "gs/ha.hpp"

#include <algorithm>
#include <any>
#include <utility>

namespace cpe::gs {

namespace {

/// Modelled wire size of a replica-to-replica message: a fixed header plus
/// the serialized durable state on heartbeats.
std::size_t wire_bytes(const GsWireMessage& m) {
  std::size_t b = 64;
  // Per decision: timestamp (8) + ok (1) + reason (1) + load (8) + length
  // prefix (7, keeps the old 16-byte alignment) + the text itself.
  for (const Decision& d : m.state.journal) b += 25 + d.what.size();
  for (const auto& [name, until] : m.state.blacklist) b += name.size() + 8;
  for (const auto& [name, up] : m.state.host_up) b += name.size() + 1;
  b += m.state.reported_lost.size() * 4;
  for (const auto& name : m.state.pending_vacates) b += name.size() + 4;
  // Per in-flight migration: unit (8) + since (8) + the two host names.
  for (const auto& f : m.state.in_flight_migrations)
    b += 16 + f.from.size() + f.to.size();
  return b;
}

}  // namespace

std::string_view to_string(ReplicaRole r) {
  switch (r) {
    case ReplicaRole::kFollower: return "follower";
    case ReplicaRole::kCandidate: return "candidate";
    case ReplicaRole::kLeader: return "leader";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// GsReplica

GsReplica::GsReplica(HaScheduler& ha, int id, os::Host& host,
                     sim::Time election_timeout)
    : ha_(&ha),
      id_(id),
      host_(&host),
      core_(ha.vm(), ha.policy().core),
      election_timeout_(election_timeout) {
  core_.set_active(false);
  core_.set_replication_hook([this] { on_core_change(); });
  ha.vm().network().datagrams().bind(
      host.node(), kGsPort, [this](net::Datagram d) {
        const GsWireMessage* m = std::any_cast<GsWireMessage>(&d.payload);
        if (m != nullptr) on_message(*m);
      });
  host.add_observer(
      [this](os::Host&, os::HostEvent ev) { on_host_event(ev); });
}

sim::Engine& GsReplica::engine() const noexcept {
  return ha_->vm().engine();
}

void GsReplica::start(sim::Time until) {
  auto loop = [](GsReplica* self, sim::Time horizon) -> sim::Co<void> {
    sim::Engine& eng = self->engine();
    // Half-heartbeat granularity: fine enough to notice a missed heartbeat
    // promptly, coarse enough not to swamp the event queue.
    const sim::Time step = self->ha_->policy().heartbeat_interval / 2.0;
    while (eng.now() < horizon) {
      co_await sim::Delay(eng, step);
      self->duty_tick();
    }
  };
  duty_ = sim::launch(engine(), loop(this, until));
}

void GsReplica::duty_tick() {
  if (!host_->up()) return;  // a crashed replica neither acts nor times out
  const sim::Time now = engine().now();
  const sim::Time hb = ha_->policy().heartbeat_interval;
  switch (role_) {
    case ReplicaRole::kLeader:
      // Threshold of 3/4 hb, not hb: broadcasts happen at tick granularity
      // (hb/2), so an exact-hb threshold lets the gap after an off-grid
      // takeover quantize up to 1.5 hb — long enough for the fixed lease
      // (majority_lease_held) to lapse on stale acks and depose a perfectly
      // healthy leader.  3/4 hb keeps the steady-state period at one hb on
      // the tick grid while capping any single gap at one hb.
      if (now - last_broadcast_ >= 0.75 * hb) {
        broadcast(GsWireMessage(GsWireMessage::Kind::kHeartbeat, id_, term_,
                                core_.journal().size()),
                  /*with_state=*/true);
        last_broadcast_ = now;
      }
      core_.tick();
      if (!majority_lease_held())
        step_down("lost contact with a majority of replicas");
      break;
    case ReplicaRole::kFollower:
      if (now - last_heartbeat_ >= election_timeout_) start_election();
      break;
    case ReplicaRole::kCandidate:
      if (now - election_started_ >=
          ha_->policy().vote_timeout_beats * hb) {
        // Split vote or unreachable peers: back off and re-arm the
        // election timer rather than spinning the term counter.
        role_ = ReplicaRole::kFollower;
        last_heartbeat_ = now;
      }
      break;
  }
}

bool GsReplica::majority_lease_held() const {
  const sim::Time now = engine().now();
  // Fixed lease window, identical on every replica and free of the per-id
  // jitter/stagger that pads election_timeout_: the lease must expire no
  // later than the *fastest* follower's election timeout, or a high-id
  // deposed leader would keep acting while its successor is already
  // elected.
  const sim::Time lease =
      ha_->policy().election_timeout_beats * ha_->policy().heartbeat_interval;
  int alive = 1;  // self
  for (int i = 0; i < ha_->size(); ++i) {
    if (i == id_) continue;
    const auto idx = static_cast<std::size_t>(i);
    if (idx < peer_ack_.size() && now - peer_ack_[idx] <= lease) ++alive;
  }
  return alive >= ha_->majority();
}

void GsReplica::start_election() {
  ++term_;
  role_ = ReplicaRole::kCandidate;
  voted_in_term_ = term_;  // vote for self
  votes_ = 1;
  vote_granted_mask_ = 1ull << id_;
  election_started_ = engine().now();
  ha_->vm().metrics().counter("gs.elections").inc();
  ha_->vm().trace().log("gs-ha", "replica " + std::to_string(id_) +
                                     " starts election term=" +
                                     std::to_string(term_));
  if (votes_ >= ha_->majority()) {  // single-replica deployment
    become_leader();
    return;
  }
  broadcast(GsWireMessage(GsWireMessage::Kind::kVoteRequest, id_, term_,
                          core_.journal().size()),
            /*with_state=*/false);
}

void GsReplica::become_leader() {
  const sim::Time now = engine().now();
  role_ = ReplicaRole::kLeader;
  peer_ack_.assign(static_cast<std::size_t>(ha_->size()), now);
  // Until a peer acks, assume it has nothing: the first heartbeat to each
  // follower carries the full journal, later ones only the suffix past what
  // that follower acked.
  peer_journal_len_.assign(static_cast<std::size_t>(ha_->size()), 0);
  // Fence first, then act: every command this core issues from here on
  // carries the new term, and older terms are dead on arrival.
  core_.set_epoch(term_);
  ha_->fence()->raise(term_);
  core_.set_active(true);
  // Election latency — the leaderless window this replica just closed — is
  // what failover SLOs are made of.  The bootstrap leader never ran an
  // election, so it records nothing.
  if (election_started_ > 0)
    ha_->vm()
        .metrics()
        .histogram("gs.election.latency")
        .record(now - election_started_);
  ha_->note_leader(id_, term_);
  ha_->vm().trace().log("gs-ha", "replica " + std::to_string(id_) +
                                     " becomes leader term=" +
                                     std::to_string(term_));
  // Resume what the previous leader left open (replicated pending vacates,
  // liveness re-baseline), then announce.
  core_.resume_after_failover();
  // Replay owner events that arrived during the leaderless window: anything
  // heard after we last heard the old leader cannot have been acted on.
  // (Events older than that were the live leader's business; re-acting is
  // harmless anyway — vacates de-duplicate — but skipping them keeps the
  // journal honest.)
  for (const os::OwnerEvent& ev : pending_events_) {
    if (ev.t < last_heartbeat_) continue;
    ha_->vm().trace().log("gs-ha", "replica " + std::to_string(id_) +
                                       " replays owner event from t=" +
                                       std::to_string(ev.t));
    core_.on_owner_event(ev);
  }
  pending_events_.clear();
  broadcast(GsWireMessage(GsWireMessage::Kind::kHeartbeat, id_, term_,
                          core_.journal().size()),
            /*with_state=*/true);
  last_broadcast_ = now;
}

void GsReplica::on_owner_event(const os::OwnerEvent& ev) {
  if (role_ == ReplicaRole::kLeader) {
    core_.on_owner_event(ev);
    return;
  }
  // Not our decision to make (yet): hold on to it in case the cluster is
  // between leaders and we are the one who ends up winning the election.
  if (pending_events_.size() >= ha_->policy().pending_event_cap) {
    ++pending_evictions_;
    ha_->vm().trace().log(
        "gs-ha", "replica " + std::to_string(id_) +
                     " pending-event buffer full: dropping oldest (" +
                     std::to_string(pending_evictions_) + " dropped total)");
    pending_events_.erase(pending_events_.begin());
  }
  pending_events_.push_back(ev);
}

void GsReplica::step_down(const std::string& why) {
  ha_->vm().trace().log("gs-ha", "replica " + std::to_string(id_) +
                                     " steps down term=" +
                                     std::to_string(term_) + " (" + why +
                                     ")");
  role_ = ReplicaRole::kFollower;
  core_.set_active(false);
  last_heartbeat_ = engine().now();
}

void GsReplica::on_message(const GsWireMessage& m) {
  if (!host_->up()) return;  // dead replicas hear nothing
  const sim::Time now = engine().now();
  switch (m.kind) {
    case GsWireMessage::Kind::kHeartbeat: {
      if (m.term < term_) {
        // Stale leader: the ack carries our newer term so it steps down.
        post(m.from,
             GsWireMessage(GsWireMessage::Kind::kHeartbeatAck, id_, term_,
                           core_.journal().size()),
             false);
        return;
      }
      if (m.term > term_) term_ = m.term;
      if (role_ == ReplicaRole::kLeader)
        step_down("saw a live leader with term " + std::to_string(m.term));
      role_ = ReplicaRole::kFollower;
      last_heartbeat_ = now;
      core_.import_state(m.state);
      post(m.from,
           GsWireMessage(GsWireMessage::Kind::kHeartbeatAck, id_, term_,
                         core_.journal().size()),
           false);
      break;
    }
    case GsWireMessage::Kind::kHeartbeatAck: {
      if (m.term > term_) {
        term_ = m.term;
        if (role_ == ReplicaRole::kLeader)
          step_down("a peer reported a newer term");
        role_ = ReplicaRole::kFollower;
        break;
      }
      if (role_ == ReplicaRole::kLeader && m.term == term_ && m.from >= 0 &&
          static_cast<std::size_t>(m.from) < peer_ack_.size()) {
        const auto idx = static_cast<std::size_t>(m.from);
        peer_ack_[idx] = now;
        // The acked journal length drives incremental replication.  Clamp
        // to our own journal (a peer can never legitimately be ahead); a
        // reordered older ack merely resends a little more.
        if (idx < peer_journal_len_.size())
          peer_journal_len_[idx] =
              std::min(m.journal_len, core_.journal().size());
      }
      break;
    }
    case GsWireMessage::Kind::kVoteRequest: {
      if (m.term > term_) {
        term_ = m.term;
        if (role_ == ReplicaRole::kLeader)
          step_down("vote request with newer term");
        role_ = ReplicaRole::kFollower;
      }
      // One vote per term, and only for candidates whose replicated journal
      // is at least as complete as ours (raft-style up-to-date check).
      const bool grant = m.term == term_ && voted_in_term_ < term_ &&
                         role_ != ReplicaRole::kLeader &&
                         m.journal_len >= core_.journal().size();
      if (grant) {
        voted_in_term_ = term_;
        last_heartbeat_ = now;  // granting a vote re-arms our own timer
        post(m.from,
             GsWireMessage(GsWireMessage::Kind::kVoteGrant, id_, term_,
                           core_.journal().size()),
             false);
      }
      break;
    }
    case GsWireMessage::Kind::kVoteGrant: {
      if (role_ != ReplicaRole::kCandidate || m.term != term_) break;
      // One replica, one vote: a grant replayed by an adversarial network
      // (or a duplicated datagram) must not be double-counted into a
      // majority the electorate never gave.
      if (m.from < 0 || m.from >= 64) break;
      const std::uint64_t bit = 1ull << m.from;
      if ((vote_granted_mask_ & bit) != 0) break;
      vote_granted_mask_ |= bit;
      if (++votes_ >= ha_->majority()) become_leader();
      break;
    }
  }
}

void GsReplica::on_host_event(os::HostEvent ev) {
  switch (ev) {
    case os::HostEvent::kCrash:
      if (role_ == ReplicaRole::kLeader)
        ha_->vm().trace().log("gs-ha", "leader replica " +
                                           std::to_string(id_) + " crashed");
      // The crash silences us; the core goes inactive so its retry drivers
      // wind down instead of acting from beyond the grave.
      role_ = ReplicaRole::kFollower;
      core_.set_active(false);
      votes_ = 0;
      break;
    case os::HostEvent::kRecover:
      // Rejoin as a follower; the term catches up from the next heartbeat.
      last_heartbeat_ = engine().now();
      break;
    case os::HostEvent::kFreeze:
    case os::HostEvent::kUnfreeze:
      break;  // the NIC stall already silences a frozen replica
  }
}

void GsReplica::broadcast(GsWireMessage m, bool with_state) {
  for (int i = 0; i < ha_->size(); ++i) {
    if (i == id_) continue;
    post(i, m, with_state);
  }
}

void GsReplica::post(int to, GsWireMessage m, bool with_state) {
  if (!host_->up() || to == id_) return;
  m.from = id_;
  if (with_state) {
    const auto idx = static_cast<std::size_t>(to);
    const std::size_t from = role_ == ReplicaRole::kLeader &&
                                     idx < peer_journal_len_.size()
                                 ? peer_journal_len_[idx]
                                 : 0;
    m.state = core_.export_state(from);
  }
  auto send = [](GsReplica* self, int to_id,
                 GsWireMessage msg) -> sim::Co<void> {
    net::DatagramService& dg = self->ha_->vm().network().datagrams();
    const net::NodeId src = self->host_->node();
    const net::NodeId dst = self->ha_->replica(to_id).host().node();
    try {
      co_await dg.send(
          net::Datagram(src, dst, kGsPort, wire_bytes(msg), std::move(msg)));
    } catch (const Error&) {
      // Crashed or partitioned-away peer: silence is what the election
      // machinery is built to handle.
    }
  };
  sim::spawn(engine(), send(this, to, std::move(m)));
}

void GsReplica::on_core_change() {
  // Push fresh state to the followers promptly (coalescing bursts of
  // journal notes) so the missed-decision window on failover is the
  // replication latency, not a whole heartbeat interval.
  if (role_ != ReplicaRole::kLeader || flush_scheduled_ || !host_->up())
    return;
  flush_scheduled_ = true;
  auto flush = [](GsReplica* self) -> sim::Co<void> {
    co_await sim::Delay(self->engine(), 1e-3);
    self->flush_scheduled_ = false;
    if (self->role_ != ReplicaRole::kLeader || !self->host_->up()) co_return;
    self->broadcast(GsWireMessage(GsWireMessage::Kind::kHeartbeat, self->id_,
                                  self->term_, self->core_.journal().size()),
                    /*with_state=*/true);
    self->last_broadcast_ = self->engine().now();
  };
  sim::spawn(engine(), flush(this));
}

// ---------------------------------------------------------------------------
// HaScheduler

HaScheduler::HaScheduler(pvm::PvmSystem& vm, std::vector<os::Host*> hosts,
                         HaPolicy policy)
    : vm_(&vm),
      policy_(policy),
      fence_(std::make_shared<pvm::MigrationFence>()) {
  CPE_EXPECTS(!hosts.empty());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    CPE_EXPECTS(hosts[i] != nullptr);
    for (std::size_t j = 0; j < i; ++j)
      CPE_EXPECTS(hosts[i] != hosts[j]);  // replicas on distinct hosts
  }
  sim::Rng rng(policy_.seed);
  const sim::Time hb = policy_.heartbeat_interval;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    // Deterministic per-replica election timeout: base + jitter draw + an
    // id-based stagger.  Timers are only checked at duty-tick granularity
    // (hb/2), so the stagger must out-distance tick quantisation plus the
    // whole jitter range — otherwise two followers time out in the same
    // tick, split the vote, and the cluster burns a full election round.
    const sim::Time timeout =
        policy_.election_timeout_beats * hb +
        rng.uniform(0.0, policy_.election_jitter_beats * hb) +
        static_cast<double>(i) * policy_.election_stagger_beats * hb;
    replicas_.push_back(std::make_unique<GsReplica>(
        *this, static_cast<int>(i), *hosts[i], timeout));
  }
}

void HaScheduler::attach(mpvm::Mpvm& m) {
  m.set_fence(fence_);
  for (auto& r : replicas_) r->core().attach(m);
}

void HaScheduler::attach(upvm::Upvm& u) {
  u.set_fence(fence_);
  for (auto& r : replicas_) r->core().attach(u);
}

void HaScheduler::attach(opt::AdmOpt& a) {
  a.set_fence(fence_);
  for (auto& r : replicas_) r->core().attach(a);
}

void HaScheduler::attach(mpvm::Checkpointer& c) {
  c.set_fence(fence_);
  for (auto& r : replicas_) r->core().attach(c);
}

void HaScheduler::attach(load::LoadExchange& x) {
  for (auto& r : replicas_) r->core().attach(x, r->host());
}

void HaScheduler::start(sim::Time until) {
  const sim::Time now = vm_->engine().now();
  for (auto& r : replicas_) {
    r->core().set_active(false);
    r->last_heartbeat_ = now;
  }
  // Bootstrap: replica 0 is the term-1 leader.  Every replica starts in
  // term 1 with its bootstrap vote already spent, so no challenger can
  // assemble a majority in term 1 — if replica 0's first heartbeats are
  // lost (startup partition), a successor must win term 2, whose first
  // command raises the fence floor past replica 0's.  Two same-term leaders
  // are therefore impossible even at start-of-world.
  for (auto& r : replicas_) {
    r->term_ = 1;
    r->voted_in_term_ = 1;
  }
  replicas_.front()->become_leader();
  for (auto& r : replicas_) r->start(until);
}

void HaScheduler::on_owner_event(const os::OwnerEvent& ev) {
  CPE_EXPECTS(ev.host != nullptr);
  net::Ethernet& eth = vm_->network().ethernet();
  for (auto& r : replicas_) {
    if (!r->host().up()) continue;
    // The owner daemon's notification travels the network: a replica on
    // the wrong side of a partition never hears it.
    if (!eth.reachable(ev.host->node(), r->host().node())) continue;
    r->on_owner_event(ev);
  }
}

int HaScheduler::leader_id() const {
  int best = -1;
  std::uint64_t best_term = 0;
  for (const auto& r : replicas_) {
    if (r->role() != ReplicaRole::kLeader || !r->host().up()) continue;
    if (r->term() >= best_term) {
      best_term = r->term();
      best = r->id();
    }
  }
  return best;
}

GsReplica* HaScheduler::leader() {
  const int id = leader_id();
  return id < 0 ? nullptr : replicas_[static_cast<std::size_t>(id)].get();
}

const std::vector<Decision>& HaScheduler::journal() const {
  const int id = leader_id();
  if (id >= 0)
    return replicas_[static_cast<std::size_t>(id)]->core().journal();
  const GsReplica* best = replicas_.front().get();
  for (const auto& r : replicas_)
    if (r->core().journal().size() > best->core().journal().size())
      best = r.get();
  return best->core().journal();
}

void HaScheduler::note_leader(int replica, std::uint64_t term) {
  // Every change after the bootstrap leader is a failover.
  if (!changes_.empty()) vm_->metrics().counter("gs.failovers").inc();
  changes_.emplace_back(vm_->engine().now(), replica, term);
}

}  // namespace cpe::gs
