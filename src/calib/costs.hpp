// Calibrated cost model: an HP 9000/720 workstation pair on 10 Mb/s Ethernet
// under HP-UX 9.01, as used in the paper's evaluation (§4.0).
//
// Every constant is documented with its provenance:
//   [hw]    — era hardware characteristic (PA-RISC 1.1 @ 50 MHz, 64 MB RAM)
//   [model] — derived from the network/OS model in this repository
//   [fit]   — fitted so the corresponding table in the paper is reproduced;
//             the paper gives end-to-end times only, so per-stage splits are
//             our attribution (stated next to each constant)
//
// All times are in reference-machine seconds (Host speed 1.0 == HP 9000/720);
// rates are in bits per second unless stated otherwise.
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace cpe::calib {

/// Costs of the stock PVM 3.x library and daemons.
struct PvmCosts {
  /// Entering a libpvm call: argument checks, global flags.  [hw]
  sim::Time call_overhead = 5e-6;

  /// pvm_pk*/pvm_upk* move data through the encoder at memcpy-ish speed;
  /// XDR byte-swapping roughly halves it.  ~25 MB/s on a 50 MHz PA-RISC.
  /// [hw]
  double pack_bps = 25e6 * 8;
  double unpack_bps = 25e6 * 8;

  /// Fixed CPU cost of pvm_send / pvm_recv: syscalls, header build. [hw]
  sim::Time send_fixed = 250e-6;
  sim::Time recv_fixed = 150e-6;

  /// Task -> local pvmd -> task delivery through Unix-domain sockets: two
  /// kernel round-trips, two context switches, and pvmd queueing under
  /// HP-UX 9.  [fit to Table 3: this is the cost UPVM's local hand-off
  /// eliminates]
  sim::Time local_route_fixed = 2.5e-3;
  double local_route_bps = 30e6 * 8;  ///< [hw] in-memory copy rate

  /// Sender-side share of a local message: writing the buffer into the
  /// Unix-domain socket happens in the sender's context, so it sits on the
  /// sender's critical path — exactly the cost UPVM's hand-off removes.
  /// [fit to Table 3]
  sim::Time local_send_cpu = 1.5e-3;

  /// PVM message/fragment header on the wire: the per-*message* envelope
  /// (addressing, sequence, fragment bookkeeping).  Per-*item* tag/count
  /// headers are charged inside Buffer (Buffer::kItemHeaderBytes) and
  /// already show up in payload_bytes(); don't double-count them here.
  /// [model]
  std::size_t msg_header_bytes = 64;

  /// Waking a process blocked in pvm_recv: kernel context switch.  [hw]
  sim::Time wakeup_context_switch = 120e-6;

  /// pvm_spawn: fork+exec of the task binary (disk-cached).  [hw]
  sim::Time spawn_fork_exec = 0.35;
  /// New task enrolls with its pvmd.  [hw]
  sim::Time enroll = 30e-3;

  /// Group-server round trip (joingroup/barrier coordination).  [model]
  sim::Time group_rtt = 4e-3;
};

/// Costs specific to MPVM (paper §2.1, §4.1).
struct MpvmCosts {
  /// Re-entrancy flag maintenance per libpvm call (§4.1.1).  [hw]
  sim::Time reentry_flag = 2e-6;
  /// tid re-map table lookup on every send and receive (§4.1.1).  [hw]
  sim::Time tid_remap = 3e-6;

  /// Starting the "skeleton" process on the destination host: fork + exec
  /// of the same executable + handshake with mpvmd.  [fit: Table 2's
  /// obtrusiveness intercept of ~0.83 s is attributed ~0.78 s here, the
  /// rest to flush + TCP setup, which are charged via real protocol
  /// messages]
  sim::Time skeleton_start = 0.78;

  /// Reading the process image out of the source address space and writing
  /// it through the transfer socket (and placing it on the other side):
  /// ~6.2 MB/s of copy work alongside the wire transfer.  [fit: Table 2's
  /// obtrusiveness slope exceeds the raw-TCP slope by ~0.16 s/MB]
  double state_copy_bps = 6.2e6 * 8;

  /// Restart stage: re-enroll with the destination mpvmd.  [fit: Table 2
  /// migration-minus-obtrusiveness of ~0.2-0.3 s, split across these two]
  sim::Time reenroll = 0.10;
  /// Building + sending the restart broadcast and its bookkeeping. [fit]
  sim::Time restart_fixed = 0.12;
};

/// Costs specific to UPVM (paper §2.2, §4.2).
struct UpvmCosts {
  /// ULP context switch: save/restore registers at user level — far
  /// cheaper than a kernel switch.  [hw]
  sim::Time ulp_context_switch = 15e-6;

  /// Intra-process message hand-off: the library moves the buffer pointer
  /// to the destination ULP instead of copying (§4.2.1).  [model]
  sim::Time local_handoff = 40e-6;

  /// Extra header UPVM prepends to remote messages (§4.2.1: "marginally
  /// slower remote communication than MPVM").  [model]
  std::size_t remote_extra_header = 48;

  /// Fixed obtrusiveness cost of a ULP migration: interrupt the process,
  /// capture the ULP register context, walk and collect its message
  /// buffers, and issue the sequence of pvm_send()s (§4.2.2).  [fit:
  /// Table 4 obtrusiveness of 1.67 s at 0.3 MB, less the pkbyte time
  /// attributed to data movement below]
  sim::Time migrate_fixed = 1.42;

  /// Source-side pvm_pkbyte of the ULP image: fragmented buffer building
  /// with "extra memory copies" (§4.2.2) — far below raw memcpy speed.
  /// [fit: the remainder of Table 4's 1.67 s obtrusiveness]
  double state_pack_bps = 1.2e6 * 8;

  /// The paper's ULP *accept* path is unoptimized: state is upk'd through
  /// pvm_upkbyte into the reserved region with many small reads, and queued
  /// buffers are re-registered one at a time (§4.2.3: migration 6.88 s vs
  /// obtrusiveness 1.67 s, which the authors call out as surprising).
  /// During the measured migration SPMD_opt quiesces (the master waits for
  /// the migrating slave's gradient), so the accept runs uncontended.
  /// [fit: 6.88 ≈ 1.67 obtrusiveness + ~0.36 wire + accept work at 0.3 MB]
  sim::Time accept_fixed = 4.6;
  double accept_bps = 2.5e6 * 8;  ///< ~0.4 s/MB of unpack-and-place  [fit]

  /// The optimized accept the authors say they are building (§4.2.3):
  /// placement at memcpy speed.  Used by the A4 ablation bench.  [model]
  sim::Time accept_fixed_optimized = 0.05;
  double accept_bps_optimized = 25e6 * 8;
};

/// Costs specific to ADM (paper §2.3, §4.3).
struct AdmCosts {
  /// Inner-loop burden of adaptivity: the migration-event flag check, the
  /// switch-statement FSM dispatch, and maintaining the processed-exemplar
  /// flag array (§4.3.1).  Fraction added to per-exemplar compute time.
  /// [fit: Table 5 — ADMopt is ~23% slower in the quiet case]
  double inner_loop_overhead = 0.225;

  /// Repartition coordination: master collects state, computes the new
  /// partition, global consensus that all slaves entered redistribution
  /// (§2.3).  [fit: Table 6 intercept ~1.1 s]
  sim::Time repartition_fixed = 1.0;

  /// Receiving slave integrates foreign exemplars: copy into the working
  /// set and rebuild the processed-flags array.  [fit: Table 6 slope of
  /// ~1.9 s/MB = pvmd route (~1.1) + pack/unpack (~0.1) + this (~0.4)]
  double integrate_bps = 2.5e6 * 8;
};

/// The Opt application workload model (paper §4.0).
struct OptWorkload {
  /// Bytes per exemplar: 64 float features + 1 category value.  [model]
  static constexpr std::size_t exemplar_floats = 65;
  static constexpr std::size_t exemplar_bytes = exemplar_floats * 4;

  /// Neural-net size: 64-32-16 MLP = 64*32 + 32*16 weights + 48 biases.
  /// [model — the paper calls it "a (large) matrix"]
  static constexpr std::size_t net_floats = 64 * 32 + 32 * 16 + 48;
  static constexpr std::size_t net_bytes = net_floats * 4;

  /// Gradient time per exemplar on the reference machine: ~10.4 kflop of
  /// forward+backward at ~19 sustained MFLOPS.  [fit: Table 1 — 9 MB /
  /// 34.6 k exemplars / 2 slaves / 20 iterations + distribution ≈ 198 s]
  sim::Time grad_seconds_per_exemplar = 556e-6;

  /// Master's conjugate-gradient update per iteration.  [hw]
  sim::Time apply_seconds = 1.5e-3;

  /// Iterations used by the quiet-case experiments.  [fit: Table 1/5]
  int iterations_large = 20;
  /// Iterations for the 0.6 MB runs.  [fit: Table 3 — PVM_opt 4.92 s]
  int iterations_small = 7;
};

/// The full 1994 testbed calibration.
struct CostModel {
  PvmCosts pvm;
  MpvmCosts mpvm;
  UpvmCosts upvm;
  AdmCosts adm;
  OptWorkload opt;
};

/// The defaults above, as one value.
[[nodiscard]] inline CostModel hp720_testbed() { return CostModel{}; }

}  // namespace cpe::calib
