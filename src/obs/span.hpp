// Causal span tracing: the narrative layer above metrics.
//
// MetricsRegistry (§9) answers "how long did freezes take"; the SpanTracer
// answers "which freeze, caused by which scheduler decision, followed by
// which flush".  A SpanRecord is one named interval (or instant) on one
// host's timeline, linked to a parent span and a 64-bit trace id; a
// TraceContext carries {trace id, parent span} across task/host boundaries —
// inside pvm::Message it occupies kTraceContextWireBytes of the envelope and
// is charged to the wire like any other header byte (DESIGN.md §10).
//
// Each host also carries a Lamport clock, advanced on every message send and
// receive; spans snapshot the clock at begin/end so cross-host ordering can
// be audited causally instead of by virtual-time coincidence.
//
// Like the metrics layer, the tracer is engine-passive: it reads virtual
// time but never schedules events, so tracing cannot perturb a run.  The
// span store is a capped ring (same rationale as sim::TraceLog).
//
// Consumers: write_chrome_trace() emits Chrome trace-event JSON loadable in
// Perfetto / chrome://tracing (one pid per host, one tid per task/ULP
// track); write_spans_jsonl() emits one span per line next to the metrics
// JSONL; obs::TraceAuditor (audit.hpp) replays the spans and checks protocol
// invariants.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace cpe::sim {
class Engine;
}  // namespace cpe::sim

namespace cpe::obs {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

/// Causality carried across task and host boundaries.  Id 0 means "not
/// traced": untraced messages pay no wire overhead.
///
/// User-provided constructors (not an aggregate): TraceContext travels by
/// value into coroutine frames, where GCC 12 miscompiles aggregate params.
struct TraceContext {
  TraceId trace_id = 0;
  SpanId parent_span = 0;

  TraceContext() noexcept {}
  TraceContext(TraceId trace, SpanId parent) noexcept
      : trace_id(trace), parent_span(parent) {}

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
  [[nodiscard]] bool operator==(const TraceContext&) const = default;
};

/// Wire footprint of a valid TraceContext in the PVM message envelope:
/// 8 B trace id + 8 B parent span id + 8 B Lamport stamp.  Charged on top of
/// PvmCosts::msg_header_bytes, only when the message is traced.
inline constexpr std::size_t kTraceContextWireBytes = 24;

enum class SpanStatus {
  kOpen,     ///< begun, not yet ended (an exported open span is a bug)
  kOk,       ///< completed successfully
  kAborted,  ///< protocol gave up (rollback/recovery must follow — audited)
  kFenced,   ///< rejected by a stale fencing epoch before doing any work
};

[[nodiscard]] const char* to_string(SpanStatus s) noexcept;

struct SpanRecord {
  TraceId trace_id = 0;
  SpanId span_id = 0;
  SpanId parent_span = 0;  ///< 0 = root of its trace
  std::string name;        ///< e.g. "mpvm.migrate", "mpvm.flush", "gs.vacate"
  std::string host;        ///< Chrome pid; "" groups under a synthetic host
  std::int64_t track = 0;  ///< Chrome tid: task/ULP id, 0 = host control
  sim::Time start = 0;
  sim::Time end = 0;
  std::uint64_t lamport_start = 0;
  std::uint64_t lamport_end = 0;
  SpanStatus status = SpanStatus::kOpen;
  bool instant = false;  ///< zero-duration event ("i" phase in Chrome)
  std::vector<std::pair<std::string, std::string>> attrs;

  /// First value recorded for `key`; nullptr when absent.
  [[nodiscard]] const std::string* attr(std::string_view key) const;
  [[nodiscard]] sim::Time duration() const noexcept { return end - start; }
};

/// Mints trace/span ids, records spans, and keeps the per-host Lamport
/// clocks.  Ids are deterministic counters: two identical runs produce
/// byte-identical traces, like every other export in the simulator.
class SpanTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit SpanTracer(const sim::Engine& eng) : eng_(&eng) {}
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Mint a fresh trace.  The returned context has no parent span: pass it
  /// to begin_span() to create the root.
  [[nodiscard]] TraceContext start_trace() { return {next_trace_id_++, 0}; }

  /// Open a span.  An invalid context mints a fresh trace, so call sites
  /// need not special-case "nobody above me is tracing".
  SpanId begin_span(const TraceContext& ctx, std::string_view name,
                    std::string_view host, std::int64_t track = 0);

  /// Attach a key=value attribute (no-op if the span left the ring).
  void annotate(SpanId span, std::string_view key, std::string_view value);

  /// Close a span, snapshotting time and the host's Lamport clock.
  void end_span(SpanId span, SpanStatus status = SpanStatus::kOk);

  /// Record an instant event (already closed, zero duration).
  SpanId event(const TraceContext& ctx, std::string_view name,
               std::string_view host, std::int64_t track = 0);

  /// Context that makes `span` the parent of whatever is begun with it.
  [[nodiscard]] TraceContext context_of(SpanId span) const;

  // Lamport clocks (one per host name).  on_send ticks and returns the
  // stamp to put on the wire; on_receive merges the sender's stamp.
  std::uint64_t on_send(std::string_view host);
  void on_receive(std::string_view host, std::uint64_t stamp);
  [[nodiscard]] std::uint64_t clock(std::string_view host) const;

  [[nodiscard]] const std::deque<SpanRecord>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const SpanRecord* find(SpanId span) const;
  [[nodiscard]] const SpanRecord* find_named(std::string_view name) const;
  [[nodiscard]] std::vector<const SpanRecord*> by_trace(TraceId trace) const;
  [[nodiscard]] std::size_t size() const noexcept { return spans_.size(); }

  /// Ring capacity control (same floor semantics as sim::TraceLog).
  void set_capacity(std::size_t cap);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  void clear();

 private:
  [[nodiscard]] SpanRecord* find_mut(SpanId span);
  void push(SpanRecord rec);

  const sim::Engine* eng_;
  std::deque<SpanRecord> spans_;
  /// span id -> absolute sequence number; position = seq - base_seq_.
  std::map<SpanId, std::uint64_t> index_;
  std::uint64_t base_seq_ = 0;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t dropped_ = 0;
  TraceId next_trace_id_ = 1;
  SpanId next_span_id_ = 1;
  std::map<std::string, std::uint64_t, std::less<>> lamport_;
};

/// Chrome trace-event JSON (the {"traceEvents":[...]} flavour): one pid per
/// host, one tid per track, "X" complete events for spans, "i" instants for
/// events, "M" metadata naming processes and threads.  Timestamps are
/// virtual seconds scaled to microseconds.  Load the file in Perfetto or
/// chrome://tracing (README "visualize a migration").
void write_chrome_trace(const SpanTracer& tracer, std::ostream& os);

/// Same, over an explicit span set — for benches that collect (and re-base)
/// spans across several independent testbeds before exporting one file.
void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        std::ostream& os);

/// One span per line next to the metrics JSONL; always ends with a
/// {"dropped":N} trailer so consumers can tell "no drops" from "no trailer".
void write_spans_jsonl(const SpanTracer& tracer, std::ostream& os);

/// Explicit-span-set flavour; `dropped` feeds the trailer.
void write_spans_jsonl(const std::vector<SpanRecord>& spans,
                       std::uint64_t dropped, std::ostream& os);

}  // namespace cpe::obs
