#include "obs/span.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/metrics.hpp"
#include "sim/assert.hpp"
#include "sim/engine.hpp"

namespace cpe::obs {

namespace {

std::string chrome_num(double v) {
  if (!std::isfinite(v) || v < 0.0) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

}  // namespace

const char* to_string(SpanStatus s) noexcept {
  switch (s) {
    case SpanStatus::kOpen: return "open";
    case SpanStatus::kOk: return "ok";
    case SpanStatus::kAborted: return "aborted";
    case SpanStatus::kFenced: return "fenced";
  }
  return "?";
}

const std::string* SpanRecord::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs)
    if (k == key) return &v;
  return nullptr;
}

// ---------------------------------------------------------------------------
// SpanTracer

void SpanTracer::push(SpanRecord rec) {
  while (spans_.size() >= capacity_) {
    index_.erase(spans_.front().span_id);
    spans_.pop_front();
    ++base_seq_;
    ++dropped_;
  }
  index_.emplace(rec.span_id, base_seq_ + spans_.size());
  spans_.push_back(std::move(rec));
}

SpanId SpanTracer::begin_span(const TraceContext& ctx, std::string_view name,
                              std::string_view host, std::int64_t track) {
  const TraceContext c = ctx.valid() ? ctx : start_trace();
  SpanRecord rec;
  rec.trace_id = c.trace_id;
  rec.span_id = next_span_id_++;
  rec.parent_span = c.parent_span;
  rec.name = std::string(name);
  rec.host = std::string(host);
  rec.track = track;
  rec.start = rec.end = eng_->now();
  rec.lamport_start = rec.lamport_end = clock(host);
  const SpanId id = rec.span_id;
  push(std::move(rec));
  return id;
}

void SpanTracer::annotate(SpanId span, std::string_view key,
                          std::string_view value) {
  if (SpanRecord* r = find_mut(span))
    r->attrs.emplace_back(std::string(key), std::string(value));
}

void SpanTracer::end_span(SpanId span, SpanStatus status) {
  SpanRecord* r = find_mut(span);
  if (r == nullptr) return;  // fell off the ring; nothing to close
  r->end = eng_->now();
  r->lamport_end = clock(r->host);
  r->status = status;
}

SpanId SpanTracer::event(const TraceContext& ctx, std::string_view name,
                         std::string_view host, std::int64_t track) {
  const SpanId id = begin_span(ctx, name, host, track);
  if (SpanRecord* r = find_mut(id)) {
    r->instant = true;
    r->status = SpanStatus::kOk;
  }
  return id;
}

TraceContext SpanTracer::context_of(SpanId span) const {
  const SpanRecord* r = find(span);
  if (r == nullptr) return {};
  return {r->trace_id, r->span_id};
}

std::uint64_t SpanTracer::on_send(std::string_view host) {
  auto it = lamport_.find(host);
  if (it == lamport_.end())
    it = lamport_.emplace(std::string(host), 0).first;
  return ++it->second;
}

void SpanTracer::on_receive(std::string_view host, std::uint64_t stamp) {
  auto it = lamport_.find(host);
  if (it == lamport_.end())
    it = lamport_.emplace(std::string(host), 0).first;
  it->second = std::max(it->second, stamp) + 1;
}

std::uint64_t SpanTracer::clock(std::string_view host) const {
  const auto it = lamport_.find(host);
  return it == lamport_.end() ? 0 : it->second;
}

SpanRecord* SpanTracer::find_mut(SpanId span) {
  const auto it = index_.find(span);
  if (it == index_.end()) return nullptr;
  return &spans_[static_cast<std::size_t>(it->second - base_seq_)];
}

const SpanRecord* SpanTracer::find(SpanId span) const {
  const auto it = index_.find(span);
  if (it == index_.end()) return nullptr;
  return &spans_[static_cast<std::size_t>(it->second - base_seq_)];
}

const SpanRecord* SpanTracer::find_named(std::string_view name) const {
  for (const auto& r : spans_)
    if (r.name == name) return &r;
  return nullptr;
}

std::vector<const SpanRecord*> SpanTracer::by_trace(TraceId trace) const {
  std::vector<const SpanRecord*> out;
  for (const auto& r : spans_)
    if (r.trace_id == trace) out.push_back(&r);
  return out;
}

void SpanTracer::set_capacity(std::size_t cap) {
  capacity_ = std::max<std::size_t>(cap, 2);
  while (spans_.size() > capacity_) {
    index_.erase(spans_.front().span_id);
    spans_.pop_front();
    ++base_seq_;
    ++dropped_;
  }
}

void SpanTracer::clear() {
  base_seq_ += spans_.size();
  spans_.clear();
  index_.clear();
  dropped_ = 0;
}

// ---------------------------------------------------------------------------
// Exporters

namespace {

/// Deterministic pid assignment: hosts sorted by name, 1-based.  The empty
/// host name groups under a synthetic "(untracked)" process.
template <typename Spans>
std::map<std::string, int> assign_pids(const Spans& spans) {
  std::map<std::string, int> pids;
  for (const auto& s : spans) pids.emplace(s.host, 0);
  int next = 1;
  for (auto& [host, pid] : pids) pid = next++;
  return pids;
}

void write_args(std::ostream& os, const SpanRecord& s) {
  os << "\"args\":{\"trace_id\":" << s.trace_id
     << ",\"span_id\":" << s.span_id << ",\"parent_span\":" << s.parent_span
     << ",\"status\":\"" << to_string(s.status)
     << "\",\"lamport_start\":" << s.lamport_start
     << ",\"lamport_end\":" << s.lamport_end;
  for (const auto& [k, v] : s.attrs)
    os << ",\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
  os << "}";
}

template <typename Spans>
void chrome_trace_impl(const Spans& spans, std::ostream& os) {
  const auto pids = assign_pids(spans);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // Process metadata: one pid per host.
  for (const auto& [host, pid] : pids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\""
       << json_escape(host.empty() ? "(untracked)" : host) << "\"}}";
  }
  // Thread metadata: one tid per (host, track) seen.
  std::map<std::pair<std::string, std::int64_t>, bool> tracks;
  for (const auto& s : spans) {
    if (!tracks.emplace(std::make_pair(s.host, s.track), true).second)
      continue;
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
       << pids.at(s.host) << ",\"tid\":" << s.track << ",\"args\":{\"name\":\""
       << (s.track == 0 ? std::string("control")
                        : "task " + std::to_string(s.track))
       << "\"}}";
  }
  // The spans themselves.  Virtual seconds -> Chrome microseconds.
  for (const auto& s : spans) {
    sep();
    const int pid = pids.at(s.host);
    if (s.instant) {
      os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << json_escape(s.name)
         << "\",\"cat\":\"event\",\"pid\":" << pid << ",\"tid\":" << s.track
         << ",\"ts\":" << chrome_num(s.start * 1e6) << ",";
    } else {
      os << "{\"ph\":\"X\",\"name\":\"" << json_escape(s.name)
         << "\",\"cat\":\"span\",\"pid\":" << pid << ",\"tid\":" << s.track
         << ",\"ts\":" << chrome_num(s.start * 1e6)
         << ",\"dur\":" << chrome_num(s.duration() * 1e6) << ",";
    }
    write_args(os, s);
    os << "}";
  }
  os << "\n]}\n";
}

template <typename Spans>
void spans_jsonl_impl(const Spans& spans, std::uint64_t dropped,
                      std::ostream& os) {
  for (const auto& s : spans) {
    os << "{\"trace\":" << s.trace_id << ",\"span\":" << s.span_id
       << ",\"parent\":" << s.parent_span << ",\"name\":\""
       << json_escape(s.name) << "\",\"host\":\"" << json_escape(s.host)
       << "\",\"track\":" << s.track << ",\"start\":" << chrome_num(s.start)
       << ",\"end\":" << chrome_num(s.end)
       << ",\"lamport_start\":" << s.lamport_start
       << ",\"lamport_end\":" << s.lamport_end << ",\"status\":\""
       << to_string(s.status) << "\"";
    if (s.instant) os << ",\"instant\":true";
    if (!s.attrs.empty()) {
      os << ",\"attrs\":{";
      bool first = true;
      for (const auto& [k, v] : s.attrs) {
        if (!first) os << ",";
        first = false;
        os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
      }
      os << "}";
    }
    os << "}\n";
  }
  os << "{\"dropped\":" << dropped << "}\n";
}

}  // namespace

void write_chrome_trace(const SpanTracer& tracer, std::ostream& os) {
  chrome_trace_impl(tracer.spans(), os);
}

void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        std::ostream& os) {
  chrome_trace_impl(spans, os);
}

void write_spans_jsonl(const SpanTracer& tracer, std::ostream& os) {
  spans_jsonl_impl(tracer.spans(), tracer.dropped(), os);
}

void write_spans_jsonl(const std::vector<SpanRecord>& spans,
                       std::uint64_t dropped, std::ostream& os) {
  spans_jsonl_impl(spans, dropped, os);
}

}  // namespace cpe::obs
