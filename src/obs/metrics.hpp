// Observability: the measurement substrate for the reproduction.
//
// The paper's entire evaluation is measurement — Tables 1-6 are per-stage
// migration latencies and overhead breakdowns — so the simulation carries a
// first-class metrics layer: monotonic Counters, last-value Gauges, and
// log-bucketed Histograms behind a MetricsRegistry, plus an RAII StageTimer
// that turns a scope (a protocol stage, a redistribution round, a recovery)
// into a histogram sample of *virtual* time.  Snapshots export as JSONL so
// benches emit machine-readable BENCH_metrics.json files and the bench
// trajectory can be regressed against (DESIGN.md §9 documents the schema
// and the metric-name taxonomy).
//
// Everything here is simulation-time aware but engine-passive: metrics never
// schedule events, so instrumentation cannot perturb a deterministic replay.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace cpe::sim {
class Engine;
class TraceLog;
}  // namespace cpe::sim

namespace cpe::obs {

/// Monotonic event count (migrations completed, retries, drops...).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-observed value with a running maximum (queue depths, backlogs).
/// Non-finite samples are dropped (the last good value stands) and counted:
/// one NaN must not poison an export that promises strict JSON.
class Gauge {
 public:
  void set(double v) noexcept {
    if (!std::isfinite(v)) {
      ++bad_samples_;
      return;
    }
    value_ = v;
    if (!seen_ || v > max_) max_ = v;
    seen_ = true;
  }
  void add(double d) noexcept { set(value_ + d); }

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double max() const noexcept { return seen_ ? max_ : 0.0; }
  [[nodiscard]] bool observed() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t bad_samples() const noexcept {
    return bad_samples_;
  }

 private:
  double value_ = 0;
  double max_ = 0;
  bool seen_ = false;
  std::uint64_t bad_samples_ = 0;
};

/// Log-bucketed histogram geometry.  Bucket i covers
/// (first_bound * growth^(i-1), first_bound * growth^i]; the final bucket is
/// the overflow catch-all.  The defaults span 1 µs .. ~10^13 s — every
/// duration and byte count the simulation can produce.
struct HistogramOptions {
  double first_bound = 1e-6;
  double growth = 2.0;
  int buckets = 64;
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions opt = {});

  /// Record one sample.  Negative samples are clamped to 0 (they can only
  /// arise from floating-point noise in a time subtraction); NaN/infinite
  /// samples are dropped and counted — a single NaN would otherwise poison
  /// sum()/mean() forever and break the strict-JSON export promise.
  void record(double v);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t bad_samples() const noexcept {
    return bad_samples_;
  }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Approximate quantile (q in [0,1]): the upper bound of the bucket where
  /// the cumulative count reaches rank ⌈q·count⌉, clamped to the observed
  /// max.
  ///
  /// Worst-case error bound (pinned by MetricsTest.QuantileErrorBound):
  /// with `exact` the rank-⌈q·count⌉ order statistic (empirical inverse
  /// CDF, the same rank convention this walk uses),
  ///
  ///     exact <= quantile(q) < exact * growth     for exact >= first_bound
  ///     0     <= quantile(q) <= first_bound       for exact <  first_bound
  ///
  /// i.e. the estimate NEVER under-reports and over-reports by strictly
  /// less than one bucket's growth factor (+100% at the default growth=2;
  /// +9.05% at obs::TraceAnalytics' fine 2^(1/8) geometry), with absolute
  /// error at most first_bound below the first bound.  Lower bound: the
  /// rank-crossing bucket contains the exact sample, whose bucket upper
  /// bound is >= it, and the clamp to max() only engages when the bound
  /// exceeds the largest sample.  Upper bound: every sample in bucket i is
  /// > bucket_bound(i)/growth, so bound < sample * growth.
  [[nodiscard]] double quantile(double q) const;

  /// Upper bound of bucket i (infinity for the overflow bucket).
  [[nodiscard]] double bucket_bound(int i) const;
  [[nodiscard]] std::uint64_t bucket_count(int i) const {
    CPE_EXPECTS(i >= 0 && i < static_cast<int>(counts_.size()));
    return counts_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int buckets() const noexcept {
    return static_cast<int>(counts_.size());
  }
  [[nodiscard]] const HistogramOptions& options() const noexcept {
    return opt_;
  }

 private:
  [[nodiscard]] int bucket_for(double v) const;

  HistogramOptions opt_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t bad_samples_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Point-in-time copy of every counter's monotonic total.  Rates and
/// per-phase tallies must be computed by DIFFING two snapshots — never by
/// reading a live counter mid-run and subtracting later (the instrument
/// may be shared with concurrent machinery, and a raw read freezes no
/// baseline).  obs::Analytics applies the same discipline per window.
struct MetricsSnapshot {
  sim::Time t = 0;
  std::map<std::string, std::uint64_t, std::less<>> counters;

  /// Total for `name` at snapshot time (0 when the counter didn't exist).
  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  /// This snapshot minus an earlier one: value(name) - earlier.value(name).
  /// Counters are monotonic, so a counter born between the two snapshots
  /// diffs from 0.
  [[nodiscard]] std::uint64_t delta(const MetricsSnapshot& earlier,
                                    std::string_view name) const;
};

/// Name-addressed metric store.  Metrics are created on first use and live
/// for the registry's lifetime, so instrumentation sites can cache the
/// returned references.  Export order is deterministic (name-sorted), like
/// everything else in the simulator.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(const sim::Engine* eng = nullptr) : eng_(eng) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, HistogramOptions opt = {});

  /// Lookup without creation (tests, exporters); nullptr when absent.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Pull-style sources (the net:: transport counters): collectors run at
  /// every snapshot so the export reflects the transport's current totals
  /// without the hot path touching the registry.
  void add_collector(std::function<void(MetricsRegistry&)> fn) {
    collectors_.push_back(std::move(fn));
  }
  /// Runs the collectors, then folds every instrument's dropped-sample tally
  /// into the `obs.bad_samples` counter (created on first bad sample only).
  void collect();

  /// Copy every counter's current total (running the collectors first, so
  /// pull-style sources are included).  See MetricsSnapshot for the
  /// snapshot-diff discipline this exists to enforce.
  [[nodiscard]] MetricsSnapshot snapshot();

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// One JSON object per line (see DESIGN.md §9 for the schema).  Runs the
  /// collectors first.  Strict JSON: no NaN/Infinity ever appears — empty
  /// histograms export zeros (and a count of 0 that CI rejects).
  void write_jsonl(std::ostream& os);

 private:
  const sim::Engine* eng_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<std::function<void(MetricsRegistry&)>> collectors_;
  std::uint64_t bad_samples_exported_ = 0;
};

/// RAII span: measures virtual time from construction until commit() — or
/// destruction, for the common straight-line scope — and records it into a
/// histogram.  cancel() drops the sample (a stage that aborted must not
/// pollute the latency distribution).  Safe across co_await suspension
/// points: only engine *time* is read, never wall clock.
class StageTimer {
 public:
  StageTimer(const sim::Engine& eng, Histogram& hist);
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer();

  /// Record the elapsed span now (idempotent).  Returns the elapsed time.
  sim::Time commit();
  /// Discard the span: neither commit() nor the destructor will record.
  void cancel() noexcept { done_ = true; }
  [[nodiscard]] sim::Time elapsed() const;

 private:
  const sim::Engine* eng_;
  Histogram* hist_;
  sim::Time start_;
  bool done_ = false;
};

/// Export a TraceLog as JSONL ({"t":..,"cat":..,"text":..} per record).
/// Always ends with a {"dropped":N} trailer — N is 0 when nothing was
/// dropped — so consumers can distinguish "no drops" from "trailer missing".
void write_trace_jsonl(const sim::TraceLog& log, std::ostream& os);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace cpe::obs
