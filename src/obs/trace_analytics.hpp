// Trace analytics: per-migration critical paths and per-stage percentiles.
//
// The span stream (span.hpp) records every migration as an `mpvm.migrate`
// root with one child span per protocol stage (precopy / freeze / flush /
// transfer / restart).  This pass turns that stream into the numbers the
// paper's tables are made of: for each completed migration, which stage
// DOMINATED it (the critical path), and across migrations, the per-stage
// p50/p95/p99 — computed through fine-grained log-bucketed Histograms
// (growth 2^(1/8), so quantile estimates land within +9.05% of exact; see
// the error bound on Histogram::quantile) instead of the coarse factor-2
// runtime buckets.
//
// Incomplete traces — migrations that aborted, were fenced off by a stale
// epoch, were killed by the admission watchdog, or whose root/stage spans
// never closed — are SKIPPED, not guessed at: they increment
// traces_skipped() and, when a registry is supplied, the
// `analytics.traces_skipped` counter, so a bench that silently lost half
// its traces cannot report healthy percentiles.  (An aborted *precopy*
// child under a successful migration is not an incomplete trace: the
// fallback to stop-and-copy is a normal path and its precopy time is real
// wall time, so it is attributed like any other stage.)
//
// Coverage is the honesty check: stage_total / wall per migration.  The
// benches gate coverage_min() ≥ 0.95 — if stages ever stop accounting for
// the migration wall span, the attribution (not the gate) is what broke.
//
// This is an offline pass over a collected span set (it allocates freely);
// run it after the scenario, never on the sampling path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace cpe::obs {

/// One completed migration's attribution.
struct MigrationPath {
  TraceId trace_id = 0;
  SpanId span_id = 0;       ///< the mpvm.migrate root
  sim::Time start = 0;
  double wall = 0;          ///< root span duration
  double stage_total = 0;   ///< sum of stage-span durations
  double coverage = 0;      ///< stage_total / wall (1.0 when wall == 0)
  std::string dominant;     ///< stage with the largest total duration
  double dominant_time = 0;
};

/// One row of the per-stage table.
struct StageStats {
  std::string stage;         ///< e.g. "mpvm.freeze"
  std::uint64_t count = 0;   ///< stage spans observed
  std::uint64_t dominant = 0;///< migrations this stage dominated
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double mean = 0;
  double max = 0;
  double total = 0;          ///< summed duration across migrations
};

class TraceAnalytics {
 public:
  /// Fine bucket geometry for the offline stage histograms: growth 2^(1/8)
  /// bounds the quantile over-estimate at +9.05%, and 320 buckets span
  /// 10 µs .. ~10^7 s.
  static constexpr HistogramOptions kFineGeometry{
      /*first_bound=*/1e-5, /*growth=*/1.0905077326652577, /*buckets=*/320};

  /// Analyse a collected span set (bench_util::collect_spans output or a
  /// tracer's ring).  When `reg` is non-null, skipped traces are counted
  /// into `analytics.traces_skipped`.
  explicit TraceAnalytics(const std::vector<SpanRecord>& spans,
                          MetricsRegistry* reg = nullptr,
                          HistogramOptions stage_geometry = kFineGeometry);

  [[nodiscard]] const std::vector<MigrationPath>& paths() const noexcept {
    return paths_;
  }
  [[nodiscard]] std::uint64_t migrations() const noexcept {
    return paths_.size();
  }
  [[nodiscard]] std::uint64_t traces_skipped() const noexcept {
    return skipped_;
  }

  /// Smallest / mean per-migration coverage (1.0 when no migrations).
  [[nodiscard]] double coverage_min() const noexcept { return coverage_min_; }
  [[nodiscard]] double coverage_mean() const noexcept;

  /// Name-sorted per-stage table (percentiles from the fine histograms).
  [[nodiscard]] std::vector<StageStats> stage_table() const;
  /// Fine histogram for one stage; nullptr when the stage never appeared.
  [[nodiscard]] const Histogram* stage_histogram(std::string_view stage) const;

  /// The BENCH_analytics.json document (DESIGN.md §14).  `source` names the
  /// producing bench ("table2", "drain_host", "load_scale", ...);
  /// `extra_members` is a pre-rendered JSON fragment ("\"k\":v,...", no
  /// surrounding braces) appended verbatim — benches use it for SLO tallies
  /// and bench-specific gates.
  void write_json(std::ostream& os, std::string_view source,
                  std::string_view extra_members = {}) const;

 private:
  void analyse(const std::vector<SpanRecord>& spans, MetricsRegistry* reg);

  HistogramOptions geometry_;
  std::vector<MigrationPath> paths_;
  std::map<std::string, Histogram, std::less<>> stage_hist_;
  std::map<std::string, double, std::less<>> stage_total_;
  std::uint64_t skipped_ = 0;
  double coverage_min_ = 1.0;
  double coverage_sum_ = 0;
};

}  // namespace cpe::obs
