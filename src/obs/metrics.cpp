#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace cpe::obs {

namespace {

/// Format a double as strict JSON: finite shortest-ish representation.
/// Callers guarantee finiteness (record() clamps; exporters substitute 0).
std::string json_num(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(HistogramOptions opt) : opt_(opt) {
  CPE_EXPECTS(opt_.first_bound > 0.0);
  CPE_EXPECTS(opt_.growth > 1.0);
  CPE_EXPECTS(opt_.buckets >= 2);
  counts_.assign(static_cast<std::size_t>(opt_.buckets), 0);
}

int Histogram::bucket_for(double v) const {
  if (v <= opt_.first_bound) return 0;
  // Bucket index = ceil(log_growth(v / first_bound)), capped at overflow.
  const double idx = std::ceil(std::log(v / opt_.first_bound) /
                               std::log(opt_.growth) - 1e-12);
  if (idx >= static_cast<double>(opt_.buckets - 1)) return opt_.buckets - 1;
  return std::max(0, static_cast<int>(idx));
}

void Histogram::record(double v) {
  if (!std::isfinite(v)) {
    ++bad_samples_;
    return;
  }
  if (v < 0.0) v = 0.0;
  ++counts_[static_cast<std::size_t>(bucket_for(v))];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

double Histogram::bucket_bound(int i) const {
  CPE_EXPECTS(i >= 0 && i < opt_.buckets);
  if (i == opt_.buckets - 1) return std::numeric_limits<double>::infinity();
  return opt_.first_bound * std::pow(opt_.growth, static_cast<double>(i));
}

double Histogram::quantile(double q) const {
  CPE_EXPECTS(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t cum = 0;
  for (int i = 0; i < buckets(); ++i) {
    cum += counts_[static_cast<std::size_t>(i)];
    if (cum >= target && cum > 0) {
      // Clamp to the observed range so q=1 returns max, not a bucket edge.
      return std::min(bucket_bound(i), max_);
    }
  }
  return max_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      HistogramOptions opt) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(opt))
             .first;
  return *it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::collect() {
  for (auto& fn : collectors_) fn(*this);
  std::uint64_t bad = 0;
  for (const auto& [name, g] : gauges_) bad += g->bad_samples();
  for (const auto& [name, h] : histograms_) bad += h->bad_samples();
  if (bad > bad_samples_exported_) {
    counter("obs.bad_samples").inc(bad - bad_samples_exported_);
    bad_samples_exported_ = bad;
  }
}

std::uint64_t MetricsSnapshot::value(std::string_view name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::uint64_t MetricsSnapshot::delta(const MetricsSnapshot& earlier,
                                     std::string_view name) const {
  const std::uint64_t now = value(name);
  const std::uint64_t then = earlier.value(name);
  CPE_EXPECTS(now >= then);  // counters are monotonic
  return now - then;
}

MetricsSnapshot MetricsRegistry::snapshot() {
  collect();
  MetricsSnapshot snap;
  snap.t = eng_ != nullptr ? eng_->now() : 0.0;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c->value());
  return snap;
}

void MetricsRegistry::write_jsonl(std::ostream& os) {
  collect();
  const std::string t = json_num(eng_ != nullptr ? eng_->now() : 0.0);
  for (const auto& [name, c] : counters_) {
    os << "{\"t\":" << t << ",\"type\":\"counter\",\"name\":\""
       << json_escape(name) << "\",\"value\":" << c->value() << "}\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "{\"t\":" << t << ",\"type\":\"gauge\",\"name\":\""
       << json_escape(name) << "\",\"value\":" << json_num(g->value())
       << ",\"max\":" << json_num(g->max()) << "}\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "{\"t\":" << t << ",\"type\":\"histogram\",\"name\":\""
       << json_escape(name) << "\",\"count\":" << h->count()
       << ",\"sum\":" << json_num(h->sum())
       << ",\"min\":" << json_num(h->min())
       << ",\"max\":" << json_num(h->max())
       << ",\"mean\":" << json_num(h->mean())
       << ",\"p50\":" << json_num(h->quantile(0.50))
       << ",\"p90\":" << json_num(h->quantile(0.90))
       << ",\"p99\":" << json_num(h->quantile(0.99)) << ",\"buckets\":[";
    bool first = true;
    for (int i = 0; i < h->buckets(); ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;  // sparse export: empty buckets stay implicit
      if (!first) os << ',';
      first = false;
      const double le = h->bucket_bound(i);
      os << "{\"le\":";
      if (std::isfinite(le))
        os << json_num(le);
      else
        os << "null";
      os << ",\"n\":" << n << "}";
    }
    os << "]}\n";
  }
}

// ---------------------------------------------------------------------------
// StageTimer

StageTimer::StageTimer(const sim::Engine& eng, Histogram& hist)
    : eng_(&eng), hist_(&hist), start_(eng.now()) {}

StageTimer::~StageTimer() {
  if (!done_) commit();
}

sim::Time StageTimer::elapsed() const { return eng_->now() - start_; }

sim::Time StageTimer::commit() {
  const sim::Time dt = elapsed();
  if (!done_) {
    hist_->record(dt);
    done_ = true;
  }
  return dt;
}

// ---------------------------------------------------------------------------
// Trace export

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_trace_jsonl(const sim::TraceLog& log, std::ostream& os) {
  for (const auto& r : log.records()) {
    os << "{\"t\":" << json_num(r.t) << ",\"cat\":\"" << json_escape(r.category)
       << "\",\"text\":\"" << json_escape(r.text) << "\"}\n";
  }
  // Always emit the trailer: consumers must be able to tell "no drops"
  // (dropped:0) from "trailer missing" (truncated/old-format file).
  os << "{\"dropped\":" << log.dropped() << "}\n";
}

}  // namespace cpe::obs
