// Telemetry analytics: windowed time-series rollups + an SLO rules engine.
//
// MetricsRegistry (§9) holds cumulative totals; spans (§10) hold individual
// intervals.  Neither answers "is the system abnormal *right now*" — the
// question every adaptive scheduler in the paper exists to act on.  The
// Analytics sampler closes that gap: any registered Counter, Gauge or
// Histogram can opt into a TimeSeries, a fixed-memory ring of per-window
// rollups (rate / min / max / sum / percentiles / EWMA) sampled on a
// sim-clock cadence.  Counter windows diff monotonic totals (never raw
// reads mid-run — see MetricsRegistry::snapshot for the same discipline at
// bench scope); histogram windows diff bucket counts, so window quantiles
// cost one pass over the buckets and zero allocation.
//
// On top of the windows sits a declarative SLO rules engine.  A rule states
// a condition that must HOLD, in a one-line grammar (DESIGN.md §14):
//
//     p99(mpvm.stage.freeze) < 0.25
//     rate(gs.decisions.failed) <= 2 for 3
//     ewma(gs.load.cv) < 0.5
//
//     rule  := agg '(' series ')' cmp number ['for' N]
//     agg   := p50 | p95 | p99 | rate | value | mean | ewma
//              | count | min | max | sum
//     cmp   := '<' | '<=' | '>' | '>='
//
// Rules are evaluated once per closed window; a rule whose condition fails
// for N consecutive windows (`for N`, default 1) fires a typed SloViolation
// that is counted (`analytics.slo.violations` + one counter per rule),
// journaled to an optional sim::TraceLog, and dispatched to hooks — the
// FlightRecorder (flight.hpp) arms one to dump post-mortem state.
//
// Allocation discipline: after the first window has been sampled for every
// tracked series, the steady-state sampling path performs ZERO heap
// allocations (rings and bucket scratch are preallocated; the sampler event
// captures one pointer and rides the engine's inline slot pool).  Only a
// *firing* violation allocates (record + journal + hook).  Enforced by a
// counting-allocator test in tests/obs/analytics_test.cpp.
//
// Like the rest of obs, the sampler reads engine time but scheduling is
// explicit and bounded: start() arms a self-rescheduling tick, stop()
// cancels it.  Sampling never mutates the instruments it reads.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace cpe::sim {
class TraceLog;
}  // namespace cpe::sim

namespace cpe::obs {

enum class SeriesKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(SeriesKind k) noexcept;

/// One closed sampling window of one series.  Field semantics by kind:
///   Counter:    count = total delta, rate = count/dt, sum = count,
///               min = max = value = rate.
///   Gauge:      value = last observed, min = max = sum = value,
///               count = 1 once the gauge has ever been set, rate = 0.
///   Histogram:  count = samples recorded this window, rate = count/dt,
///               sum = sample-sum delta, value = window mean,
///               min/max = bucket-edge bounds of the windowed samples,
///               p50/p95/p99 = window quantiles from bucket-count deltas
///               (same error bound as Histogram::quantile).
/// ewma smooths `value` across windows with AnalyticsOptions::ewma_alpha;
/// a histogram window with no samples leaves the EWMA unchanged.
struct Window {
  sim::Time t = 0;   ///< close time
  sim::Time dt = 0;  ///< actual elapsed time covered
  std::uint64_t count = 0;
  double rate = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double value = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double ewma = 0;
};

/// Fixed-memory ring of windows for one tracked metric.  Capacity is set at
/// track time and never grows; the oldest window falls off the end.
class TimeSeries {
 public:
  TimeSeries(std::string name, SeriesKind kind, std::size_t capacity);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] SeriesKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Windows currently retained (≤ capacity).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Windows ever pushed (≥ size()).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// i = 0 is the OLDEST retained window, i = size()-1 the newest.
  [[nodiscard]] const Window& window(std::size_t i) const;
  /// Newest window; nullptr before the first sample.
  [[nodiscard]] const Window* latest() const noexcept;

  void push(const Window& w) noexcept;

 private:
  std::string name_;
  SeriesKind kind_;
  std::vector<Window> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

/// Which window statistic a rule reads.
enum class SloAgg : std::uint8_t {
  kRate,
  kValue,
  kEwma,
  kCount,
  kMin,
  kMax,
  kSum,
  kP50,
  kP95,
  kP99,
};

enum class SloCmp : std::uint8_t { kLt, kLe, kGt, kGe };

[[nodiscard]] const char* to_string(SloAgg a) noexcept;
[[nodiscard]] const char* to_string(SloCmp c) noexcept;

/// A declarative service-level objective over one tracked series.  The rule
/// states the condition that must HOLD; a violation fires when it fails for
/// `for_windows` consecutive windows (and keeps firing each further
/// violating window while the streak persists — a sustained breach is many
/// violations, which is what the counters should say).
struct SloRule {
  std::string name;    ///< defaults to the canonical text()
  std::string series;  ///< metric name (auto-tracked by Analytics::add_rule)
  SloAgg agg = SloAgg::kValue;
  SloCmp cmp = SloCmp::kLt;
  double threshold = 0;
  int for_windows = 1;

  /// Parse the grammar documented at the top of this header.  Asserts on
  /// malformed input (rules are written by bench/example authors, not fed
  /// from untrusted data).  "mean" is accepted as an alias for "value".
  [[nodiscard]] static SloRule parse(std::string_view text);
  /// Canonical re-rendering, e.g. "p99(mpvm.stage.freeze) < 0.25 for 3".
  [[nodiscard]] std::string text() const;
};

struct SloViolation {
  const SloRule* rule = nullptr;  ///< owned by the Analytics instance
  sim::Time t = 0;
  double observed = 0;
  double threshold = 0;
  int streak = 0;              ///< consecutive violating windows so far
  std::uint64_t window = 0;    ///< Analytics::windows() at fire time
};

struct AnalyticsOptions {
  sim::Time window = 1.0;         ///< sampling cadence (virtual seconds)
  std::size_t ring_windows = 120; ///< per-series ring capacity
  double ewma_alpha = 0.2;        ///< EWMA smoothing for Window::ewma
};

/// The windowed sampler + SLO evaluator.  One instance per PvmSystem-scale
/// registry; benches typically create it next to the Testbed and call
/// start() before running the scenario.
class Analytics {
 public:
  Analytics(sim::Engine& eng, MetricsRegistry& reg,
            AnalyticsOptions opt = {});
  Analytics(const Analytics&) = delete;
  Analytics& operator=(const Analytics&) = delete;
  ~Analytics();

  // -- tracking -----------------------------------------------------------
  // Instruments are created on first use (registry semantics), so a series
  // can be tracked before the instrumented code path ever runs.  Returned
  // references stay valid for the Analytics lifetime.
  TimeSeries& track_counter(std::string_view name);
  TimeSeries& track_gauge(std::string_view name);
  TimeSeries& track_histogram(std::string_view name,
                              HistogramOptions hopt = {});

  [[nodiscard]] const TimeSeries* find(std::string_view name) const;
  [[nodiscard]] std::size_t series_count() const noexcept {
    return tracked_.size();
  }
  /// Tracking-order access (deterministic; used by the flight recorder).
  [[nodiscard]] const TimeSeries& series_at(std::size_t i) const;

  // -- SLO rules ----------------------------------------------------------
  /// Adds a rule and auto-tracks its series, inferring the instrument kind
  /// from the aggregate (p50/p95/p99 → histogram; rate/count → counter
  /// unless the name already resolves to a histogram; value/ewma/min/max/
  /// sum → whatever the registry already holds, else a gauge).
  const SloRule& add_rule(SloRule rule);
  const SloRule& add_rule(std::string_view text) {
    return add_rule(SloRule::parse(text));
  }
  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules_.size();
  }
  [[nodiscard]] const SloRule& rule_at(std::size_t i) const;

  /// Violations in fire order (the flight recorder tails this).
  [[nodiscard]] const std::vector<SloViolation>& violations() const noexcept {
    return violations_;
  }

  /// Journal target for one-line violation records (nullptr to disable).
  void set_journal(sim::TraceLog* journal) noexcept { journal_ = journal; }

  /// Install a violation hook; returns an id for remove_violation_hook.
  std::size_t on_violation(std::function<void(const SloViolation&)> hook);
  void remove_violation_hook(std::size_t id) noexcept;

  // -- sampling -----------------------------------------------------------
  /// Arm the self-rescheduling sampler: one sample_now() every
  /// options().window until `horizon` (default: forever — callers driving
  /// the engine with run-to-empty must stop() explicitly).
  void start(sim::Time horizon = sim::kForever);
  void stop() noexcept;
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Close one window now: roll up every tracked series, then evaluate
  /// every rule.  Benches may call this manually instead of start().
  void sample_now();

  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  [[nodiscard]] const AnalyticsOptions& options() const noexcept {
    return opt_;
  }
  [[nodiscard]] sim::Engine& engine() const noexcept { return *eng_; }
  [[nodiscard]] MetricsRegistry& registry() const noexcept { return *reg_; }

 private:
  struct Tracked {
    TimeSeries series;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* hist = nullptr;
    std::uint64_t prev_count = 0;
    double prev_sum = 0;
    std::vector<std::uint64_t> prev_buckets;  ///< hist only, preallocated

    Tracked(std::string name, SeriesKind kind, std::size_t cap)
        : series(std::move(name), kind, cap) {}
  };

  struct RuleState {
    SloRule rule;
    const TimeSeries* series = nullptr;
    Counter* fired = nullptr;  ///< "analytics.slo.rule.<name>"
    int streak = 0;
  };

  Tracked* find_tracked(std::string_view name) noexcept;
  void roll(Tracked& tr, sim::Time now, sim::Time dt) noexcept;
  void evaluate(sim::Time now);
  void fire(RuleState& rs, double observed, sim::Time now);
  void tick(sim::Time horizon);

  sim::Engine* eng_;
  MetricsRegistry* reg_;
  AnalyticsOptions opt_;
  std::deque<Tracked> tracked_;  ///< deque: stable refs across track_*()
  std::deque<RuleState> rules_;
  std::vector<SloViolation> violations_;
  std::vector<std::function<void(const SloViolation&)>> hooks_;
  sim::TraceLog* journal_ = nullptr;
  Counter* violations_total_ = nullptr;  ///< "analytics.slo.violations"
  sim::Time last_sample_ = 0;
  std::uint64_t windows_ = 0;
  bool running_ = false;
  sim::EventId timer_{};  ///< pending tick; cancelled by stop()/destructor
};

}  // namespace cpe::obs
