#include "obs/flight.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/analytics.hpp"
#include "obs/span.hpp"
#include "sim/assert.hpp"
#include "sim/engine.hpp"

namespace cpe::obs {

namespace {

std::string json_num(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void write_window(std::ostream& os, const Window& w) {
  os << "{\"t\":" << json_num(w.t) << ",\"dt\":" << json_num(w.dt)
     << ",\"count\":" << w.count << ",\"rate\":" << json_num(w.rate)
     << ",\"sum\":" << json_num(w.sum) << ",\"min\":" << json_num(w.min)
     << ",\"max\":" << json_num(w.max) << ",\"value\":" << json_num(w.value)
     << ",\"p50\":" << json_num(w.p50) << ",\"p95\":" << json_num(w.p95)
     << ",\"p99\":" << json_num(w.p99) << ",\"ewma\":" << json_num(w.ewma)
     << "}";
}

void write_violation(std::ostream& os, const SloViolation& v) {
  os << "{\"rule\":\""
     << json_escape(v.rule != nullptr ? v.rule->name : std::string())
     << "\",\"t\":" << json_num(v.t)
     << ",\"observed\":" << json_num(v.observed)
     << ",\"threshold\":" << json_num(v.threshold)
     << ",\"streak\":" << v.streak << ",\"window\":" << v.window << "}";
}

// Same object shape as write_spans_jsonl, embedded in an array.
void write_span(std::ostream& os, const SpanRecord& s) {
  os << "{\"trace\":" << s.trace_id << ",\"span\":" << s.span_id
     << ",\"parent\":" << s.parent_span << ",\"name\":\""
     << json_escape(s.name) << "\",\"host\":\"" << json_escape(s.host)
     << "\",\"track\":" << s.track << ",\"start\":" << json_num(s.start)
     << ",\"end\":" << json_num(s.end)
     << ",\"lamport_start\":" << s.lamport_start
     << ",\"lamport_end\":" << s.lamport_end << ",\"status\":\""
     << to_string(s.status) << "\"";
  if (s.instant) os << ",\"instant\":true";
  if (!s.attrs.empty()) {
    os << ",\"attrs\":{";
    bool first = true;
    for (const auto& [k, v] : s.attrs) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

FlightRecorder::FlightRecorder(Analytics& analytics, const SpanTracer* spans,
                               FlightOptions opt)
    : analytics_(&analytics), spans_(spans), opt_(std::move(opt)) {
  CPE_EXPECTS(opt_.max_dumps >= 1);
  hook_id_ = analytics_->on_violation(
      [this](const SloViolation& v) { dump("slo", &v); });
}

FlightRecorder::~FlightRecorder() {
  analytics_->remove_violation_hook(hook_id_);
}

bool FlightRecorder::trigger(std::string_view reason) {
  return dump(reason, nullptr);
}

bool FlightRecorder::dump(std::string_view reason, const SloViolation* v) {
  const sim::Time now = analytics_->engine().now();
  if (dumps_ >= opt_.max_dumps ||
      (dumped_once_ && now - last_dump_ < opt_.cooldown)) {
    ++suppressed_;
    return false;
  }

  char tbuf[32];
  std::snprintf(tbuf, sizeof tbuf, "%.9g", now);
  std::string name = opt_.prefix + "_" + tbuf;
  // Two dumps at one instant (two rules firing in one window) must not
  // clobber each other: suffix with the dump ordinal.
  if (dumped_once_ && now == last_dump_)
    name += "_" + std::to_string(dumps_ + 1);
  const std::string path = opt_.dir + "/" + name + ".json";

  std::ofstream os(path);
  if (!os) return false;

  os << "{\n  \"flight\": 1,\n  \"t\": " << json_num(now)
     << ",\n  \"reason\": \"" << json_escape(reason)
     << "\",\n  \"window_s\": " << json_num(analytics_->options().window)
     << ",\n  \"windows_sampled\": " << analytics_->windows()
     << ",\n  \"violation\": ";
  if (v != nullptr)
    write_violation(os, *v);
  else
    os << "null";

  os << ",\n  \"rules\": [";
  for (std::size_t i = 0; i < analytics_->rule_count(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << json_escape(analytics_->rule_at(i).text()) << "\"";
  }
  os << "\n  ],\n  \"violations\": [";
  {
    const auto& all = analytics_->violations();
    const std::size_t from =
        all.size() > opt_.violation_tail ? all.size() - opt_.violation_tail
                                         : 0;
    for (std::size_t i = from; i < all.size(); ++i) {
      os << (i == from ? "\n    " : ",\n    ");
      write_violation(os, all[i]);
    }
  }

  os << "\n  ],\n  \"series\": [";
  for (std::size_t i = 0; i < analytics_->series_count(); ++i) {
    const TimeSeries& ts = analytics_->series_at(i);
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(ts.name()) << "\", \"kind\": \""
       << to_string(ts.kind()) << "\", \"windows_total\": " << ts.total()
       << ", \"windows\": [";
    for (std::size_t j = 0; j < ts.size(); ++j) {
      os << (j == 0 ? "" : ",");
      write_window(os, ts.window(j));
    }
    os << "]}";
  }

  os << "\n  ],\n  \"spans\": [";
  std::uint64_t truncated = 0;
  if (spans_ != nullptr) {
    const auto& ring = spans_->spans();
    const std::size_t from =
        ring.size() > opt_.span_tail ? ring.size() - opt_.span_tail : 0;
    truncated = from;
    for (std::size_t i = from; i < ring.size(); ++i) {
      os << (i == from ? "\n    " : ",\n    ");
      write_span(os, ring[i]);
    }
  }
  os << "\n  ],\n  \"spans_dropped\": "
     << (spans_ != nullptr ? spans_->dropped() : 0)
     << ",\n  \"spans_truncated\": " << truncated << "\n}\n";
  os.close();

  ++dumps_;
  dumped_once_ = true;
  last_dump_ = now;
  files_.push_back(path);
  return true;
}

}  // namespace cpe::obs
