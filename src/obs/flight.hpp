// Flight recorder: post-mortem state capture on SLO violation or fault.
//
// When an armed SloRule fires (or a FaultPlan trigger / operator asks), the
// recorder freezes the evidence: every tracked TimeSeries ring (the last N
// windows of rollups), the violation timeline, the rule set, and the tail
// of the span ring — into ONE self-contained `flight_<t>.json`.  The file
// needs nothing else from the run to be read: an offline consumer can
// re-plot the series, re-check the rule arithmetic, and re-derive each
// migration's critical path from the embedded spans (ci/check.sh's `slo`
// mode does exactly that as its replay proof).
//
// Dump policy mirrors real flight recorders: max_dumps caps how many files
// one run can emit (the first breach is the interesting one; a sustained
// breach would otherwise dump every window), and cooldown enforces a
// minimum virtual-time gap between dumps.  Suppressed triggers are counted.
//
// The recorder arms itself by installing an Analytics violation hook at
// construction and removes it on destruction — keep the recorder alive for
// as long as the sampler runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace cpe::obs {

class Analytics;
class SpanTracer;
struct SloViolation;

struct FlightOptions {
  std::string dir = ".";         ///< output directory (no trailing slash)
  std::string prefix = "flight"; ///< files are <prefix>_<t>.json
  std::size_t max_dumps = 1;
  sim::Time cooldown = 0;        ///< min virtual time between dumps
  std::size_t span_tail = 4096;  ///< newest spans embedded per dump
  std::size_t violation_tail = 64;
};

class FlightRecorder {
 public:
  /// `spans` may be null (series-only dumps).
  FlightRecorder(Analytics& analytics, const SpanTracer* spans,
                 FlightOptions opt = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// Manual / FaultPlan-driven dump (subject to the same caps).  Returns
  /// true when a file was written.
  bool trigger(std::string_view reason);

  [[nodiscard]] std::uint64_t dumps() const noexcept { return dumps_; }
  /// Triggers swallowed by max_dumps / cooldown.
  [[nodiscard]] std::uint64_t suppressed() const noexcept {
    return suppressed_;
  }
  [[nodiscard]] const std::vector<std::string>& files() const noexcept {
    return files_;
  }

 private:
  bool dump(std::string_view reason, const SloViolation* v);

  Analytics* analytics_;
  const SpanTracer* spans_;
  FlightOptions opt_;
  std::size_t hook_id_ = 0;
  std::uint64_t dumps_ = 0;
  std::uint64_t suppressed_ = 0;
  sim::Time last_dump_ = 0;
  bool dumped_once_ = false;
  std::vector<std::string> files_;
};

}  // namespace cpe::obs
