#include "obs/trace_analytics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <unordered_map>

namespace cpe::obs {

namespace {

std::string json_num(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

bool is_stage_child(const SpanRecord& s) {
  return !s.instant && s.name.starts_with("mpvm.");
}

}  // namespace

TraceAnalytics::TraceAnalytics(const std::vector<SpanRecord>& spans,
                               MetricsRegistry* reg,
                               HistogramOptions stage_geometry)
    : geometry_(stage_geometry) {
  analyse(spans, reg);
}

void TraceAnalytics::analyse(const std::vector<SpanRecord>& spans,
                             MetricsRegistry* reg) {
  std::unordered_map<SpanId, std::vector<const SpanRecord*>> children;
  children.reserve(spans.size());
  for (const SpanRecord& s : spans) {
    if (s.parent_span != 0) children[s.parent_span].push_back(&s);
  }

  for (const SpanRecord& root : spans) {
    if (root.name != "mpvm.migrate") continue;
    // Only migrations that ran to completion carry a meaningful critical
    // path; aborted / fenced / never-closed roots are counted, not guessed.
    if (root.status != SpanStatus::kOk) {
      ++skipped_;
      continue;
    }

    double stage_total = 0;
    bool incomplete = false;
    // Stage totals per name within this one migration (pre-copy runs in
    // rounds, so a stage name can appear more than once).
    std::map<std::string_view, double> per_stage;
    const auto kids = children.find(root.span_id);
    if (kids != children.end()) {
      for (const SpanRecord* c : kids->second) {
        if (!is_stage_child(*c)) continue;
        if (c->status == SpanStatus::kOpen) {
          // A stage that never closed means the trace was cut mid-flight
          // (ring overflow or a protocol bug the auditor flags) — the
          // migration's attribution would be a lie, so skip it whole.
          incomplete = true;
          break;
        }
        const double d = c->duration();
        stage_total += d;
        per_stage[c->name] += d;
      }
    }
    if (incomplete || per_stage.empty()) {
      ++skipped_;
      continue;
    }

    MigrationPath p;
    p.trace_id = root.trace_id;
    p.span_id = root.span_id;
    p.start = root.start;
    p.wall = root.duration();
    p.stage_total = stage_total;
    p.coverage = p.wall > 0 ? stage_total / p.wall : 1.0;
    for (const auto& [name, total] : per_stage) {
      // std::map iterates name-sorted, so ties resolve to the
      // lexicographically-first stage — deterministic across runs.
      if (total > p.dominant_time) {
        p.dominant = std::string(name);
        p.dominant_time = total;
      }
    }

    // Per-span (not per-migration-sum) samples: the table answers "how long
    // does one freeze take", matching the mpvm.stage.* runtime histograms.
    if (kids != children.end()) {
      for (const SpanRecord* c : kids->second) {
        if (!is_stage_child(*c)) continue;
        auto it = stage_hist_.find(c->name);
        if (it == stage_hist_.end())
          it = stage_hist_.emplace(c->name, Histogram(geometry_)).first;
        it->second.record(c->duration());
        stage_total_[c->name] += c->duration();
      }
    }

    coverage_min_ = std::min(coverage_min_, p.coverage);
    coverage_sum_ += p.coverage;
    paths_.push_back(std::move(p));
  }

  if (reg != nullptr && skipped_ > 0)
    reg->counter("analytics.traces_skipped").inc(skipped_);
}

double TraceAnalytics::coverage_mean() const noexcept {
  return paths_.empty() ? 1.0
                        : coverage_sum_ / static_cast<double>(paths_.size());
}

std::vector<StageStats> TraceAnalytics::stage_table() const {
  std::vector<StageStats> table;
  table.reserve(stage_hist_.size());
  for (const auto& [name, hist] : stage_hist_) {
    StageStats s;
    s.stage = name;
    s.count = hist.count();
    s.p50 = hist.quantile(0.50);
    s.p95 = hist.quantile(0.95);
    s.p99 = hist.quantile(0.99);
    s.mean = hist.mean();
    s.max = hist.max();
    const auto tot = stage_total_.find(name);
    s.total = tot != stage_total_.end() ? tot->second : 0.0;
    table.push_back(std::move(s));
  }
  for (const MigrationPath& p : paths_) {
    for (StageStats& s : table)
      if (s.stage == p.dominant) ++s.dominant;
  }
  return table;
}

const Histogram* TraceAnalytics::stage_histogram(
    std::string_view stage) const {
  const auto it = stage_hist_.find(stage);
  return it == stage_hist_.end() ? nullptr : &it->second;
}

void TraceAnalytics::write_json(std::ostream& os, std::string_view source,
                                std::string_view extra_members) const {
  os << "{\n"
     << "  \"bench\": \"analytics\",\n"
     << "  \"source\": \"" << json_escape(source) << "\",\n"
     << "  \"quantile_growth\": " << json_num(geometry_.growth) << ",\n"
     << "  \"migrations\": " << paths_.size() << ",\n"
     << "  \"traces_skipped\": " << skipped_ << ",\n"
     << "  \"coverage_min\": " << json_num(coverage_min_) << ",\n"
     << "  \"coverage_mean\": " << json_num(coverage_mean()) << ",\n"
     << "  \"stages\": [";
  bool first = true;
  for (const StageStats& s : stage_table()) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"stage\": \"" << json_escape(s.stage)
       << "\", \"count\": " << s.count << ", \"dominant\": " << s.dominant
       << ", \"p50\": " << json_num(s.p50) << ", \"p95\": " << json_num(s.p95)
       << ", \"p99\": " << json_num(s.p99)
       << ", \"mean\": " << json_num(s.mean)
       << ", \"max\": " << json_num(s.max)
       << ", \"total\": " << json_num(s.total) << "}";
  }
  os << "\n  ]";
  if (!extra_members.empty()) os << ",\n  " << extra_members;
  os << "\n}\n";
}

}  // namespace cpe::obs
