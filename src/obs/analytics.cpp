#include "obs/analytics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/assert.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace cpe::obs {

// ---------------------------------------------------------------------------
// Enum names

const char* to_string(SeriesKind k) noexcept {
  switch (k) {
    case SeriesKind::kCounter: return "counter";
    case SeriesKind::kGauge: return "gauge";
    case SeriesKind::kHistogram: return "histogram";
  }
  return "?";
}

const char* to_string(SloAgg a) noexcept {
  switch (a) {
    case SloAgg::kRate: return "rate";
    case SloAgg::kValue: return "value";
    case SloAgg::kEwma: return "ewma";
    case SloAgg::kCount: return "count";
    case SloAgg::kMin: return "min";
    case SloAgg::kMax: return "max";
    case SloAgg::kSum: return "sum";
    case SloAgg::kP50: return "p50";
    case SloAgg::kP95: return "p95";
    case SloAgg::kP99: return "p99";
  }
  return "?";
}

const char* to_string(SloCmp c) noexcept {
  switch (c) {
    case SloCmp::kLt: return "<";
    case SloCmp::kLe: return "<=";
    case SloCmp::kGt: return ">";
    case SloCmp::kGe: return ">=";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TimeSeries

TimeSeries::TimeSeries(std::string name, SeriesKind kind,
                       std::size_t capacity)
    : name_(std::move(name)), kind_(kind) {
  CPE_EXPECTS(capacity >= 1);
  ring_.resize(capacity);
}

const Window& TimeSeries::window(std::size_t i) const {
  CPE_EXPECTS(i < size_);
  // head_ points one past the newest; the oldest retained window sits
  // size_ slots behind the head.
  const std::size_t cap = ring_.size();
  return ring_[(head_ + cap - size_ + i) % cap];
}

const Window* TimeSeries::latest() const noexcept {
  if (size_ == 0) return nullptr;
  const std::size_t cap = ring_.size();
  return &ring_[(head_ + cap - 1) % cap];
}

void TimeSeries::push(const Window& w) noexcept {
  ring_[head_] = w;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++total_;
}

// ---------------------------------------------------------------------------
// SloRule grammar

namespace {

std::string_view strip(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool parse_agg(std::string_view word, SloAgg& out) {
  for (const SloAgg a :
       {SloAgg::kRate, SloAgg::kValue, SloAgg::kEwma, SloAgg::kCount,
        SloAgg::kMin, SloAgg::kMax, SloAgg::kSum, SloAgg::kP50, SloAgg::kP95,
        SloAgg::kP99}) {
    if (word == to_string(a)) {
      out = a;
      return true;
    }
  }
  if (word == "mean") {  // alias: a histogram window's value IS its mean
    out = SloAgg::kValue;
    return true;
  }
  return false;
}

}  // namespace

SloRule SloRule::parse(std::string_view text) {
  SloRule r;
  std::string_view s = strip(text);

  const std::size_t open = s.find('(');
  CPE_EXPECTS(open != std::string_view::npos);  // "agg(series) cmp x"
  CPE_EXPECTS(parse_agg(strip(s.substr(0, open)), r.agg));
  s.remove_prefix(open + 1);

  const std::size_t close = s.find(')');
  CPE_EXPECTS(close != std::string_view::npos);
  r.series = std::string(strip(s.substr(0, close)));
  CPE_EXPECTS(!r.series.empty());
  s = strip(s.substr(close + 1));

  if (s.starts_with("<=")) {
    r.cmp = SloCmp::kLe;
    s.remove_prefix(2);
  } else if (s.starts_with(">=")) {
    r.cmp = SloCmp::kGe;
    s.remove_prefix(2);
  } else if (s.starts_with("<")) {
    r.cmp = SloCmp::kLt;
    s.remove_prefix(1);
  } else if (s.starts_with(">")) {
    r.cmp = SloCmp::kGt;
    s.remove_prefix(1);
  } else {
    CPE_EXPECTS(false && "SloRule: expected <, <=, > or >=");
  }
  s = strip(s);

  char* end = nullptr;
  const std::string num(s);  // strtod needs NUL termination
  r.threshold = std::strtod(num.c_str(), &end);
  CPE_EXPECTS(end != num.c_str());
  CPE_EXPECTS(std::isfinite(r.threshold));
  s = strip(s.substr(static_cast<std::size_t>(end - num.c_str())));

  if (!s.empty()) {
    CPE_EXPECTS(s.starts_with("for"));
    s = strip(s.substr(3));
    const std::string n(s);
    char* nend = nullptr;
    const long windows = std::strtol(n.c_str(), &nend, 10);
    CPE_EXPECTS(nend != n.c_str() && *nend == '\0');
    CPE_EXPECTS(windows >= 1);
    r.for_windows = static_cast<int>(windows);
  }

  r.name = r.text();
  return r;
}

std::string SloRule::text() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", threshold);
  std::string out;
  out += to_string(agg);
  out += '(';
  out += series;
  out += ") ";
  out += to_string(cmp);
  out += ' ';
  out += buf;
  if (for_windows > 1) {
    std::snprintf(buf, sizeof buf, " for %d", for_windows);
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Analytics

Analytics::Analytics(sim::Engine& eng, MetricsRegistry& reg,
                     AnalyticsOptions opt)
    : eng_(&eng), reg_(&reg), opt_(opt), last_sample_(eng.now()) {
  CPE_EXPECTS(opt_.window > 0);
  CPE_EXPECTS(opt_.ring_windows >= 1);
  CPE_EXPECTS(opt_.ewma_alpha > 0 && opt_.ewma_alpha <= 1.0);
  violations_total_ = &reg_->counter("analytics.slo.violations");
}

Analytics::~Analytics() { stop(); }

Analytics::Tracked* Analytics::find_tracked(std::string_view name) noexcept {
  for (Tracked& t : tracked_)
    if (t.series.name() == name) return &t;
  return nullptr;
}

TimeSeries& Analytics::track_counter(std::string_view name) {
  if (Tracked* t = find_tracked(name)) {
    CPE_EXPECTS(t->series.kind() == SeriesKind::kCounter);
    return t->series;
  }
  Tracked& t = tracked_.emplace_back(std::string(name), SeriesKind::kCounter,
                                     opt_.ring_windows);
  t.counter = &reg_->counter(name);
  t.prev_count = t.counter->value();
  return t.series;
}

TimeSeries& Analytics::track_gauge(std::string_view name) {
  if (Tracked* t = find_tracked(name)) {
    CPE_EXPECTS(t->series.kind() == SeriesKind::kGauge);
    return t->series;
  }
  Tracked& t = tracked_.emplace_back(std::string(name), SeriesKind::kGauge,
                                     opt_.ring_windows);
  t.gauge = &reg_->gauge(name);
  return t.series;
}

TimeSeries& Analytics::track_histogram(std::string_view name,
                                       HistogramOptions hopt) {
  if (Tracked* t = find_tracked(name)) {
    CPE_EXPECTS(t->series.kind() == SeriesKind::kHistogram);
    return t->series;
  }
  Tracked& t = tracked_.emplace_back(std::string(name),
                                     SeriesKind::kHistogram,
                                     opt_.ring_windows);
  t.hist = &reg_->histogram(name, hopt);
  t.prev_count = t.hist->count();
  t.prev_sum = t.hist->sum();
  t.prev_buckets.assign(static_cast<std::size_t>(t.hist->buckets()), 0);
  for (int i = 0; i < t.hist->buckets(); ++i)
    t.prev_buckets[static_cast<std::size_t>(i)] = t.hist->bucket_count(i);
  return t.series;
}

const TimeSeries* Analytics::find(std::string_view name) const {
  for (const Tracked& t : tracked_)
    if (t.series.name() == name) return &t.series;
  return nullptr;
}

const TimeSeries& Analytics::series_at(std::size_t i) const {
  CPE_EXPECTS(i < tracked_.size());
  return tracked_[i].series;
}

const SloRule& Analytics::add_rule(SloRule rule) {
  if (rule.name.empty()) rule.name = rule.text();
  // Auto-track the series, inferring the instrument kind from the aggregate
  // (and from what the registry already holds, for the ambiguous ones).
  const TimeSeries* series = nullptr;
  if (const Tracked* t = find_tracked(rule.series)) {
    series = &t->series;
  } else {
    switch (rule.agg) {
      case SloAgg::kP50:
      case SloAgg::kP95:
      case SloAgg::kP99:
        series = &track_histogram(rule.series);
        break;
      case SloAgg::kRate:
      case SloAgg::kCount:
        series = reg_->find_histogram(rule.series) != nullptr
                     ? &track_histogram(rule.series)
                     : &track_counter(rule.series);
        break;
      default:
        if (reg_->find_histogram(rule.series) != nullptr)
          series = &track_histogram(rule.series);
        else if (reg_->find_counter(rule.series) != nullptr)
          series = &track_counter(rule.series);
        else
          series = &track_gauge(rule.series);
        break;
    }
  }
  // Percentile aggregates only exist on histogram windows.
  if (rule.agg == SloAgg::kP50 || rule.agg == SloAgg::kP95 ||
      rule.agg == SloAgg::kP99) {
    CPE_EXPECTS(series->kind() == SeriesKind::kHistogram);
  }

  RuleState& rs = rules_.emplace_back();
  rs.rule = std::move(rule);
  rs.series = series;
  rs.fired = &reg_->counter("analytics.slo.rule." + rs.rule.name);
  return rs.rule;
}

const SloRule& Analytics::rule_at(std::size_t i) const {
  CPE_EXPECTS(i < rules_.size());
  return rules_[i].rule;
}

std::size_t Analytics::on_violation(
    std::function<void(const SloViolation&)> hook) {
  hooks_.push_back(std::move(hook));
  return hooks_.size() - 1;
}

void Analytics::remove_violation_hook(std::size_t id) noexcept {
  if (id < hooks_.size()) hooks_[id] = nullptr;
}

void Analytics::start(sim::Time horizon) {
  if (running_) return;
  running_ = true;
  last_sample_ = eng_->now();
  timer_ = eng_->schedule_in(opt_.window, [this, horizon] { tick(horizon); });
}

void Analytics::stop() noexcept {
  running_ = false;
  eng_->cancel(timer_);
  timer_ = sim::EventId{};
}

void Analytics::tick(sim::Time horizon) {
  if (!running_) return;
  sample_now();
  if (eng_->now() + opt_.window > horizon) {
    running_ = false;
    timer_ = sim::EventId{};
    return;
  }
  timer_ = eng_->schedule_in(opt_.window, [this, horizon] { tick(horizon); });
}

void Analytics::sample_now() {
  const sim::Time now = eng_->now();
  const sim::Time dt = now - last_sample_;
  last_sample_ = now;
  for (Tracked& t : tracked_) roll(t, now, dt);
  ++windows_;
  evaluate(now);
}

void Analytics::roll(Tracked& t, sim::Time now, sim::Time dt) noexcept {
  Window w;
  w.t = now;
  w.dt = dt;
  const Window* prev = t.series.latest();
  const double prev_ewma = prev != nullptr ? prev->ewma : 0.0;
  const bool first = prev == nullptr;

  switch (t.series.kind()) {
    case SeriesKind::kCounter: {
      const std::uint64_t cur = t.counter->value();
      const std::uint64_t delta = cur - t.prev_count;
      t.prev_count = cur;
      w.count = delta;
      w.rate = dt > 0 ? static_cast<double>(delta) / dt : 0.0;
      w.sum = static_cast<double>(delta);
      w.min = w.max = w.value = w.rate;
      w.ewma = first ? w.value
                     : opt_.ewma_alpha * w.value +
                           (1.0 - opt_.ewma_alpha) * prev_ewma;
      break;
    }
    case SeriesKind::kGauge: {
      const double v = t.gauge->value();
      w.count = t.gauge->observed() ? 1 : 0;
      w.value = w.sum = w.min = w.max = v;
      w.ewma = first ? v
                     : opt_.ewma_alpha * v +
                           (1.0 - opt_.ewma_alpha) * prev_ewma;
      break;
    }
    case SeriesKind::kHistogram: {
      const Histogram& h = *t.hist;
      const std::uint64_t cur = h.count();
      const std::uint64_t delta = cur - t.prev_count;
      const double dsum = h.sum() - t.prev_sum;
      t.prev_count = cur;
      t.prev_sum = h.sum();
      w.count = delta;
      w.rate = dt > 0 ? static_cast<double>(delta) / dt : 0.0;
      w.sum = dsum;
      w.value = delta > 0 ? dsum / static_cast<double>(delta) : 0.0;
      if (delta > 0) {
        // Window quantiles from bucket-count deltas: one pass, no scratch
        // beyond the preallocated prev_buckets.  Same rank convention and
        // error bound as Histogram::quantile (see metrics.hpp).
        const auto rank = [delta](double q) {
          return static_cast<std::uint64_t>(
              std::ceil(q * static_cast<double>(delta)));
        };
        const std::uint64_t r50 = rank(0.50);
        const std::uint64_t r95 = rank(0.95);
        const std::uint64_t r99 = rank(0.99);
        std::uint64_t cum = 0;
        bool saw_min = false, got50 = false, got95 = false, got99 = false;
        for (int i = 0; i < h.buckets(); ++i) {
          const auto idx = static_cast<std::size_t>(i);
          const std::uint64_t d = h.bucket_count(i) - t.prev_buckets[idx];
          t.prev_buckets[idx] = h.bucket_count(i);
          if (d == 0) continue;
          if (!saw_min) {
            w.min = i == 0 ? 0.0 : h.bucket_bound(i - 1);
            saw_min = true;
          }
          const double bound = std::min(h.bucket_bound(i), h.max());
          w.max = bound;
          cum += d;
          if (!got50 && cum >= r50) {
            w.p50 = bound;
            got50 = true;
          }
          if (!got95 && cum >= r95) {
            w.p95 = bound;
            got95 = true;
          }
          if (!got99 && cum >= r99) {
            w.p99 = bound;
            got99 = true;
          }
        }
        w.ewma = first ? w.value
                       : opt_.ewma_alpha * w.value +
                             (1.0 - opt_.ewma_alpha) * prev_ewma;
      } else {
        // Idle window: bucket counts are unchanged, so the snapshot in
        // prev_buckets is already current; quantiles stay 0 and the EWMA
        // holds its last value rather than decaying toward a fake 0.
        w.ewma = prev_ewma;
      }
      break;
    }
  }
  t.series.push(w);
}

namespace {

double agg_of(const Window& w, SloAgg agg) noexcept {
  switch (agg) {
    case SloAgg::kRate: return w.rate;
    case SloAgg::kValue: return w.value;
    case SloAgg::kEwma: return w.ewma;
    case SloAgg::kCount: return static_cast<double>(w.count);
    case SloAgg::kMin: return w.min;
    case SloAgg::kMax: return w.max;
    case SloAgg::kSum: return w.sum;
    case SloAgg::kP50: return w.p50;
    case SloAgg::kP95: return w.p95;
    case SloAgg::kP99: return w.p99;
  }
  return 0.0;
}

bool holds(double observed, SloCmp cmp, double threshold) noexcept {
  switch (cmp) {
    case SloCmp::kLt: return observed < threshold;
    case SloCmp::kLe: return observed <= threshold;
    case SloCmp::kGt: return observed > threshold;
    case SloCmp::kGe: return observed >= threshold;
  }
  return true;
}

}  // namespace

void Analytics::evaluate(sim::Time now) {
  for (RuleState& rs : rules_) {
    const Window* w = rs.series->latest();
    if (w == nullptr) continue;
    const double observed = agg_of(*w, rs.rule.agg);
    if (holds(observed, rs.rule.cmp, rs.rule.threshold)) {
      rs.streak = 0;
      continue;
    }
    ++rs.streak;
    if (rs.streak >= rs.rule.for_windows) fire(rs, observed, now);
  }
}

void Analytics::fire(RuleState& rs, double observed, sim::Time now) {
  SloViolation v;
  v.rule = &rs.rule;
  v.t = now;
  v.observed = observed;
  v.threshold = rs.rule.threshold;
  v.streak = rs.streak;
  v.window = windows_;
  violations_.push_back(v);
  violations_total_->inc();
  rs.fired->inc();
  if (journal_ != nullptr) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "%s violated: observed %.9g (streak %d)",
                  rs.rule.name.c_str(), observed, rs.streak);
    journal_->log("slo", buf);
  }
  for (auto& hook : hooks_)
    if (hook) hook(violations_.back());
}

}  // namespace cpe::obs
