#include "obs/audit.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string_view>

namespace cpe::obs {

namespace {

constexpr std::string_view kMpvmStages[] = {"mpvm.freeze", "mpvm.flush",
                                            "mpvm.transfer", "mpvm.restart"};
constexpr std::string_view kUpvmStages[] = {"upvm.capture", "upvm.flush",
                                            "upvm.offload", "upvm.accept"};

bool is_protocol_span(const SpanRecord& s) {
  for (const std::string_view prefix :
       {"mpvm.", "upvm.", "adm.", "gs.", "ckpt.", "load."})
    if (s.name.rfind(prefix, 0) == 0) return true;
  return false;
}

/// True when `candidate` is a descendant of span id `root` (parent chain
/// within the same trace; bounded walk guards against cyclic corruption).
bool descends_from(const std::map<SpanId, const SpanRecord*>& by_id,
                   const SpanRecord& candidate, SpanId root) {
  SpanId cur = candidate.parent_span;
  for (int depth = 0; depth < 64 && cur != 0; ++depth) {
    if (cur == root) return true;
    const auto it = by_id.find(cur);
    if (it == by_id.end()) return false;
    cur = it->second->parent_span;
  }
  return false;
}

}  // namespace

TraceAuditor::TraceAuditor(const SpanTracer& tracer)
    : spans_(tracer.spans().begin(), tracer.spans().end()) {}

TraceAuditor::TraceAuditor(std::vector<SpanRecord> spans)
    : spans_(std::move(spans)) {}

std::vector<AuditViolation> TraceAuditor::audit() const {
  std::vector<AuditViolation> out;
  const auto violate = [&](TraceId trace, std::string_view invariant,
                           std::string detail) {
    out.push_back(AuditViolation{trace, std::string(invariant),
                                 std::move(detail)});
  };

  // Index spans by trace and by id (span ids are globally unique per run).
  std::map<TraceId, std::vector<const SpanRecord*>> traces;
  std::map<SpanId, const SpanRecord*> by_id;
  for (const auto& s : spans_) {
    traces[s.trace_id].push_back(&s);
    by_id[s.span_id] = &s;
  }

  for (const auto& s : spans_) {
    // Invariant 5: no dangling protocol span.
    if (!s.instant && s.status == SpanStatus::kOpen && is_protocol_span(s))
      violate(s.trace_id, "no-dangling",
              s.name + " span " + std::to_string(s.span_id) +
                  " still open at end of run");

    // Invariant 6: a placement decision never floats free — every
    // "load.decide" span closes Ok and hangs under a gs.* span, so the
    // trace always shows which scheduler action a decision belongs to.
    if (s.name == "load.decide") {
      if (!s.instant && s.status != SpanStatus::kOk)
        violate(s.trace_id, "decision-linkage",
                "load.decide span " + std::to_string(s.span_id) +
                    " did not close Ok");
      const auto parent = by_id.find(s.parent_span);
      if (parent == by_id.end() ||
          parent->second->name.rfind("gs.", 0) != 0)
        violate(s.trace_id, "decision-linkage",
                "load.decide span " + std::to_string(s.span_id) +
                    " is not parented under a gs.* span");
    }

    // Invariant 7: pre-copy chunk discipline — every chunk span closes
    // (kOk, or kAborted when the migration was aborted or fell back mid
    // stream) and hangs directly under its mpvm.precopy stage span.
    if (s.name == "mpvm.precopy.chunk") {
      if (!s.instant && s.status == SpanStatus::kOpen)
        violate(s.trace_id, "precopy-completeness",
                "mpvm.precopy.chunk span " + std::to_string(s.span_id) +
                    " never closed");
      const auto parent = by_id.find(s.parent_span);
      if (parent == by_id.end() || parent->second->name != "mpvm.precopy")
        violate(s.trace_id, "precopy-completeness",
                "mpvm.precopy.chunk span " + std::to_string(s.span_id) +
                    " is not parented under an mpvm.precopy span");
    }

    // Invariant 9: request completeness (service workloads).  Every traced
    // request resolves exactly once: its "svc.request" root span closes Ok
    // (completed) or Aborted with a reason attribute (timeout / rejected) —
    // never stays open, never aborts silently.  A "svc.serve" span belongs
    // to some request's trace and closes: a worker that died mid-request
    // shows up here, not as a lost span.
    if (s.name == "svc.request") {
      if (!s.instant && s.status == SpanStatus::kOpen)
        violate(s.trace_id, "request-completeness",
                "svc.request span " + std::to_string(s.span_id) +
                    " never resolved (still open at end of run)");
      if (s.status == SpanStatus::kAborted && s.attr("timeout") == nullptr &&
          s.attr("rejected") == nullptr)
        violate(s.trace_id, "request-completeness",
                "aborted svc.request span " + std::to_string(s.span_id) +
                    " carries no timeout/rejected reason");
    }
    // A parent id that is simply missing from the record set is an evicted
    // ring entry (day-long runs overflow the span ring): unprovable, skip.
    // Only a serve span that claims *no* parent, or one whose (present)
    // parent is not a request, lies.
    if (s.name == "svc.serve" &&
        (s.parent_span == 0 || by_id.contains(s.parent_span))) {
      const auto parent = by_id.find(s.parent_span);
      if (parent == by_id.end() || parent->second->name != "svc.request")
        violate(s.trace_id, "request-completeness",
                "svc.serve span " + std::to_string(s.span_id) +
                    " is not parented under a svc.request span");
      // An open serve leg is legal only when its client already gave up
      // (timed-out request): the open-loop frontend does not wait, but a
      // *completed* request with an unfinished serve leg is a lie.
      else if (!s.instant && s.status == SpanStatus::kOpen &&
               parent->second->status == SpanStatus::kOk)
        violate(s.trace_id, "request-completeness",
                "svc.serve span " + std::to_string(s.span_id) +
                    " still open under a completed svc.request");
    }

    // Invariant 8: residual forwards land inside the migration whose
    // restart armed the skeleton — a forward event outside any
    // mpvm.migrate span cannot be attributed to a relocation (or fenced
    // against a superseding one).
    if (s.name == "mpvm.residual.forward") {
      bool inside = false;
      SpanId cur = s.parent_span;
      for (int depth = 0; depth < 64 && cur != 0 && !inside; ++depth) {
        const auto it = by_id.find(cur);
        if (it == by_id.end()) break;
        if (it->second->name == "mpvm.migrate") inside = true;
        cur = it->second->parent_span;
      }
      if (!inside)
        violate(s.trace_id, "residual-linkage",
                "mpvm.residual.forward event " + std::to_string(s.span_id) +
                    " is not inside an mpvm.migrate span");
    }

    const bool mpvm_mig = s.name == "mpvm.migrate";
    const bool upvm_mig = s.name == "upvm.migrate";
    if (!mpvm_mig && !upvm_mig) continue;
    const auto& trace = traces[s.trace_id];

    if (s.status == SpanStatus::kOk) {
      // Invariant 1: every stage exactly once, parented under this
      // migration, in causal order.
      const auto* stages = mpvm_mig ? kMpvmStages : kUpvmStages;
      const SpanRecord* prev = nullptr;
      for (int i = 0; i < 4; ++i) {
        const std::string_view stage = stages[i];
        const SpanRecord* found = nullptr;
        int n = 0;
        for (const SpanRecord* t : trace) {
          if (t->name != stage || !descends_from(by_id, *t, s.span_id))
            continue;
          ++n;
          found = t;
        }
        if (n != 1) {
          violate(s.trace_id, "stage-completeness",
                  "completed " + s.name + " span " +
                      std::to_string(s.span_id) + " has " +
                      std::to_string(n) + " " + std::string(stage) +
                      " stages (want exactly 1)");
          continue;
        }
        if (prev != nullptr) {
          if (found->start < prev->start)
            violate(s.trace_id, "stage-completeness",
                    std::string(stage) + " starts before " + prev->name +
                        " in migration span " + std::to_string(s.span_id));
          if (found->host == prev->host &&
              found->lamport_start < prev->lamport_start)
            violate(s.trace_id, "stage-completeness",
                    std::string(stage) + " Lamport-precedes " + prev->name +
                        " on host " + found->host + " in migration span " +
                        std::to_string(s.span_id));
        }
        prev = found;
      }

      // Invariant 2: flush completeness.  After the restart span closes,
      // no delivery into the migrated task's mailbox on the source host.
      if (mpvm_mig) {
        const std::string* task = s.attr("task");
        const std::string* from = s.attr("from");
        const SpanRecord* restart = nullptr;
        for (const SpanRecord* t : trace)
          if (t->name == "mpvm.restart" &&
              descends_from(by_id, *t, s.span_id))
            restart = t;
        if (task != nullptr && from != nullptr && restart != nullptr) {
          // Only deliveries in this migration's causal past count: host and
          // task names recur across traces (and across concatenated runs),
          // so an unrelated trace's flush-time delivery is not a violation.
          for (const SpanRecord* dp : trace) {
            const SpanRecord& d = *dp;
            if (!d.instant || d.name != "pvm.deliver") continue;
            const std::string* dt = d.attr("task");
            if (dt == nullptr || *dt != *task || d.host != *from) continue;
            if (d.start > restart->end)
              violate(s.trace_id, "flush-completeness",
                      "message delivered to " + *task + " on source host " +
                          *from + " at t=" + std::to_string(d.start) +
                          " after restart closed at t=" +
                          std::to_string(restart->end));
          }
        }
      }
    }

    // Invariant 4: aborted migrations must be rolled back, recovered, or
    // explicitly lost.  Fenced spans did no work and need no cleanup.
    if (s.status == SpanStatus::kAborted) {
      const std::string* lost = s.attr("lost");
      bool handled = lost != nullptr && *lost == "1";
      for (const SpanRecord* t : trace) {
        if (handled) break;
        if (t->name == "ckpt.recover") handled = true;
        if ((t->name == "mpvm.rollback" || t->name == "upvm.rollback") &&
            descends_from(by_id, *t, s.span_id))
          handled = true;
      }
      if (!handled)
        violate(s.trace_id, "abort-handling",
                "aborted " + s.name + " span " + std::to_string(s.span_id) +
                    " has no rollback/recovery child and is not marked lost");
    }
  }

  // Invariant 3: fencing epochs monotone along every trace (creation order,
  // which is causal order on a single tracer).
  for (const auto& [trace_id, trace] : traces) {
    long long prev_epoch = -1;
    SpanId prev_span = 0;
    for (const SpanRecord* t : trace) {
      const std::string* e = t->attr("epoch");
      if (e == nullptr) continue;
      const long long epoch = std::atoll(e->c_str());
      if (epoch < prev_epoch)
        violate(trace_id, "epoch-monotonicity",
                "epoch " + std::to_string(epoch) + " in span " +
                    std::to_string(t->span_id) + " after epoch " +
                    std::to_string(prev_epoch) + " in span " +
                    std::to_string(prev_span));
      prev_epoch = epoch;
      prev_span = t->span_id;
    }
  }

  return out;
}

std::string TraceAuditor::format(
    const std::vector<AuditViolation>& violations) {
  std::ostringstream os;
  for (const auto& v : violations)
    os << "trace=" << v.trace_id << " [" << v.invariant << "] " << v.detail
       << "\n";
  return os.str();
}

}  // namespace cpe::obs
