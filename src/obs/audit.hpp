// Trace-driven protocol auditing.
//
// A finished run's spans are a record of what the migration protocols
// actually did; the TraceAuditor replays them and checks the invariants the
// paper's protocols promise (DESIGN.md §10 lists them with rationale):
//
//   1. stage-completeness — every *completed* migration span contains each
//      of its protocol stages exactly once (MPVM: freeze/flush/transfer/
//      restart; UPVM: capture/flush/offload/accept), correctly parented,
//      and in causal order (virtual time, plus Lamport order between
//      consecutive same-host stages).
//   2. flush-completeness — no message is delivered into the migrated
//      task's mailbox on the *source* host after its restart span closes
//      (paper §2.1 stage 2: the flush must have drained everything).
//   3. epoch-monotonicity — fencing epochs recorded along a trace never
//      decrease (a deposed scheduler's commands cannot interleave).
//   4. abort-handling — every *aborted* migration span has a matching
//      rollback child, a checkpoint recovery in its trace, or is explicitly
//      marked lost (destination died after the point of no return).
//   5. no-dangling — no protocol span is still open when the run ends.
//   6. decision-linkage — every load.decide span closes Ok under a gs.*
//      span, so the trace shows which scheduler action a decision fed.
//   7. precopy-completeness — every mpvm.precopy.chunk span closes (Ok, or
//      Aborted on mid-stream abort/fallback) and sits directly under its
//      mpvm.precopy stage.
//   8. residual-linkage — every mpvm.residual.forward event lands inside
//      the mpvm.migrate span whose restart armed the forwarding skeleton.
//   9. request-completeness — the service layer's request-span category
//      (svc.request roots, svc.serve legs): every traced request resolves
//      exactly once — its root closes Ok or Aborted with a recorded reason
//      (timeout/rejected), never dangles; every serve leg is parented under
//      a svc.request, and may outlive the run only when its client already
//      timed out (open-loop truncation, not a lost span).
//
// The auditor works on a plain vector of SpanRecords (copied out of a
// SpanTracer, or synthesized by tests — the deliberately-broken fixtures in
// tests/obs/audit_test.cpp keep the checks honest).  Benches and
// `ci/check.sh audit` fail the build when audit() is non-empty.
#pragma once

#include <string>
#include <vector>

#include "obs/span.hpp"

namespace cpe::obs {

struct AuditViolation {
  TraceId trace_id = 0;
  std::string invariant;  ///< e.g. "stage-completeness"
  std::string detail;
};

class TraceAuditor {
 public:
  explicit TraceAuditor(const SpanTracer& tracer);
  explicit TraceAuditor(std::vector<SpanRecord> spans);

  /// Run every invariant; empty means the run audits clean.
  [[nodiscard]] std::vector<AuditViolation> audit() const;
  [[nodiscard]] bool ok() const { return audit().empty(); }

  /// Render violations as "trace=N [invariant] detail" lines for humans.
  [[nodiscard]] static std::string format(
      const std::vector<AuditViolation>& violations);

 private:
  std::vector<SpanRecord> spans_;
};

}  // namespace cpe::obs
