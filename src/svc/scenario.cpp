#include "svc/scenario.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "fault/fault.hpp"
#include "gs/scheduler.hpp"
#include "load/exchange.hpp"
#include "mpvm/mpvm.hpp"
#include "net/network.hpp"
#include "obs/analytics.hpp"
#include "obs/audit.hpp"
#include "obs/flight.hpp"
#include "os/host.hpp"
#include "pvm/system.hpp"
#include "sim/assert.hpp"
#include "sim/engine.hpp"

namespace cpe::svc {

const char* to_string(ArrivalKind k) noexcept {
  switch (k) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kDiurnal:
      return "diurnal";
    case ArrivalKind::kTrace:
      return "trace";
  }
  return "?";
}

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kStorm:
      return "storm";
    case FaultKind::kFlap:
      return "flap";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kFreeze:
      return "freeze";
  }
  return "?";
}

namespace {

std::unique_ptr<ArrivalProcess> make_arrivals(const ScenarioRow& row,
                                              std::uint64_t seed) {
  switch (row.arrival) {
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrivals>(row.rate, seed);
    case ArrivalKind::kDiurnal:
      return std::make_unique<DiurnalArrivals>(row.rate, row.amplitude,
                                               row.period, seed);
    case ArrivalKind::kTrace:
      return std::make_unique<TraceReplay>(row.trace);
  }
  return nullptr;
}

/// Owner-reclamation storm: every `storm_period` a different window of
/// `storm_hosts` worker hosts acquires `storm_jobs` owner jobs (processor
/// sharing slows the workers there); the previous window's hosts are
/// released.  Deliberately external-job churn, not GS owner events: policy
/// `none` must feel the full pain — vacate-on-reclaim would rescue its
/// workers and flatten the comparison the bench gates on.
void arm_storm(fault::FaultPlan& plan, const ScenarioRow& row,
               const std::vector<os::Host*>& worker_hosts) {
  const int n = static_cast<int>(worker_hosts.size());
  if (n == 0 || row.storm_hosts <= 0) return;
  const int per = std::min(row.storm_hosts, n);
  int k = 0;
  for (sim::Time t = row.fault_start; t < row.horizon;
       t += row.storm_period, ++k) {
    plan.trigger_at(t, "storm window " + std::to_string(k), [=]() {
      for (int j = 0; j < per; ++j) {
        const int prev = ((k - 1) * per + j) % n;
        const int cur = (k * per + j) % n;
        if (k > 0) {
          worker_hosts[static_cast<std::size_t>(prev)]
              ->cpu()
              .set_external_jobs(0);
        }
        worker_hosts[static_cast<std::size_t>(cur)]->cpu().set_external_jobs(
            row.storm_jobs);
      }
    });
  }
  // Owners go home at the horizon so the drain grace runs on quiet hosts.
  plan.trigger_at(row.horizon, "storm end", [=]() {
    for (os::Host* h : worker_hosts) h->cpu().set_external_jobs(0);
  });
}

}  // namespace

ScenarioResult run_scenario(const ScenarioRow& row,
                            std::vector<obs::SpanRecord>* spans_out) {
  CPE_EXPECTS(row.frontends >= 1 &&
              "ScenarioRow.frontends must be >= 1 shards");
  CPE_EXPECTS(row.hosts > row.frontends &&
              "ScenarioRow needs at least one non-frontend worker host");
  CPE_EXPECTS(row.workers >= 1 && "ScenarioRow.workers must be >= 1");
  CPE_EXPECTS(row.horizon > 0 && "ScenarioRow.horizon must be > 0");

  sim::Engine eng;
  net::EthernetParams eparams;
  eparams.bandwidth_bps = row.bandwidth_bps;
  net::Network net(eng, eparams, {}, row.seed);

  std::vector<std::unique_ptr<os::Host>> hosts;
  hosts.reserve(static_cast<std::size_t>(row.hosts));
  for (int i = 0; i < row.hosts; ++i) {
    const std::string name = (i < row.frontends ? "fe" : "w") +
                             std::to_string(i < row.frontends
                                                ? i
                                                : i - row.frontends);
    hosts.push_back(
        std::make_unique<os::Host>(eng, net, os::HostConfig(name, "HPPA", 1.0)));
  }
  pvm::PvmSystem vm(eng, net);
  for (auto& h : hosts) vm.add_host(*h);

  mpvm::Mpvm mpvm(vm);
  mpvm::MpvmTuning tuning;
  tuning.precopy = row.precopy;
  mpvm.set_tuning(tuning);

  gs::GsPolicy pol;
  pol.placement = row.policy;
  pol.poll_interval = row.poll_interval;
  pol.load_threshold = row.load_threshold;
  pol.min_residency = row.min_residency;
  pol.queue_weight = row.queue_weight;
  pol.placement_seed = row.seed * 0x9e3779b9u + 1;
  gs::GlobalScheduler gs(vm, pol);
  gs.attach(mpvm);
  load::ExchangePolicy xp;
  xp.seed = row.seed * 0x85ebca6bu + 2;
  load::LoadExchange exchange(vm, xp);
  gs.attach(exchange, *hosts[0]);

  // Frontend shards: one per frontend host; workers dealt round-robin over
  // the worker hosts, round-robin over the shards.
  std::vector<os::Host*> worker_hosts;
  for (int i = row.frontends; i < row.hosts; ++i)
    worker_hosts.push_back(hosts[static_cast<std::size_t>(i)].get());

  std::vector<std::unique_ptr<Frontend>> fronts;
  std::vector<std::vector<os::Host*>> shard_hosts(
      static_cast<std::size_t>(row.frontends));
  for (int j = 0; j < row.workers; ++j) {
    shard_hosts[static_cast<std::size_t>(j % row.frontends)].push_back(
        worker_hosts[static_cast<std::size_t>(j) % worker_hosts.size()]);
  }
  for (int f = 0; f < row.frontends; ++f) {
    FrontendOptions fo;
    fo.route = row.route;
    fo.timeout = row.timeout;
    fo.service_demand = row.service_demand;
    fo.sample_every = row.sample_every;
    fo.request_bytes = row.request_bytes;
    fo.worker_image_bytes = row.worker_image_bytes;
    fo.seed = row.seed * 0xc2b2ae35u + 17 + static_cast<std::uint64_t>(f);
    fronts.push_back(std::make_unique<Frontend>(
        vm, make_arrivals(row, row.seed + static_cast<std::uint64_t>(f) * 101),
        fo));
  }
  // The GS's queueing-pressure feed: outstanding requests per host, summed
  // across shards (HostLoadView::outstanding, satellite of DESIGN.md §15).
  gs.set_pressure_source([&fronts](const os::Host& h) {
    double sum = 0;
    for (const auto& f : fronts) sum += f->outstanding_on(h);
    return sum;
  });

  obs::AnalyticsOptions aopt;
  aopt.window = row.analytics_window;
  aopt.ring_windows = row.ring_windows;
  obs::Analytics an(eng, vm.metrics(), aopt);
  track_service_metrics(an);
  for (const std::string& rule : row.slo_rules) an.add_rule(rule);
  // Constructed inside the run on purpose: the recorder deregisters from
  // the Analytics on destruction, so it must not outlive it.
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (row.arm_flight_recorder) {
    obs::FlightOptions fo;
    fo.dir = row.flight_dir;
    fo.prefix = "flight_" + row.name;
    fo.max_dumps = 1;
    recorder = std::make_unique<obs::FlightRecorder>(an, &vm.spans(), fo);
  }

  fault::FaultPlan plan(eng, row.seed * 0x27d4eb2fu + 5);
  switch (row.fault) {
    case FaultKind::kNone:
      break;
    case FaultKind::kStorm:
      arm_storm(plan, row, worker_hosts);
      break;
    case FaultKind::kFlap: {
      const std::size_t island = std::max<std::size_t>(
          1, worker_hosts.size() / 4);
      plan.flap_links(net.ethernet(),
                      std::span<os::Host* const>(worker_hosts.data(), island),
                      row.fault_start, row.storm_period * 0.25,
                      row.storm_period, row.horizon);
      break;
    }
    case FaultKind::kCrash:
      plan.crash_at(*worker_hosts[0], row.fault_start);
      plan.recover_at(*worker_hosts[0],
                      row.fault_start + row.storm_period);
      break;
    case FaultKind::kFreeze:
      for (sim::Time t = row.fault_start; t < row.horizon;
           t += row.storm_period) {
        plan.freeze_at(*worker_hosts[worker_hosts.size() / 2], t,
                       row.storm_period * 0.2);
      }
      break;
  }

  for (int f = 0; f < row.frontends; ++f) {
    fronts[static_cast<std::size_t>(f)]->launch(
        *hosts[static_cast<std::size_t>(f)],
        shard_hosts[static_cast<std::size_t>(f)], row.horizon);
  }
  exchange.start(row.horizon);
  gs.start_monitoring(row.horizon);
  an.start(row.horizon);

  // Drain grace: the last request issued at the horizon must be able to
  // time out, and any migration ordered just before the cutoff must
  // resolve, before we read the tallies.  Day-scale runs legitimately
  // exceed the engine's default runaway budget (per-second analytics
  // windows, gossip, and load polls dominate), so scale the budget with
  // the horizon instead of relying on the 500M-event default.
  const auto budget = std::max<std::size_t>(
      sim::Engine::kDefaultEventBudget,
      static_cast<std::size_t>(row.horizon) * 100'000);
  eng.run_until(row.horizon + row.timeout + 45.0, budget);

  ScenarioResult r;
  r.name = row.name;
  r.policy = to_string(row.policy);
  for (const auto& f : fronts) {
    r.issued += f->issued();
    r.completed += f->completed();
    r.timeouts += f->timeouts();
    r.rejected += f->rejected();
    r.late += f->late();
    r.pending += f->pending_count();
  }
  r.exactly_once =
      r.pending == 0 && r.issued == r.completed + r.timeouts + r.rejected;
  r.requests_per_vday =
      static_cast<double>(r.issued) * 86400.0 / row.horizon;

  obs::Histogram& lat = vm.metrics().histogram("svc.latency");
  obs::Histogram& qw = vm.metrics().histogram("svc.queue_wait");
  r.latency_p50 = lat.quantile(0.50);
  r.latency_p95 = lat.quantile(0.95);
  r.latency_p99 = lat.quantile(0.99);
  r.queue_wait_p99 = qw.quantile(0.99);

  r.migrations = mpvm.history().size();
  double freeze_sum = 0;
  for (const mpvm::MigrationStats& m : mpvm.history()) {
    const sim::Time f = m.freeze_window();
    freeze_sum += f;
    r.max_freeze = std::max(r.max_freeze, f);
  }
  if (!mpvm.history().empty())
    r.mean_freeze = freeze_sum / static_cast<double>(mpvm.history().size());
  r.thrash_violations = gs.placement().thrash_violations();
  r.faults_injected = plan.injected().size();

  r.slo_violations = an.violations().size();
  if (recorder != nullptr) {
    r.flight_dumps = recorder->dumps();
    r.flight_files = recorder->files();
  }

  r.spans = vm.spans().size();
  const obs::TraceAuditor auditor(vm.spans());
  const std::vector<obs::AuditViolation> violations = auditor.audit();
  r.audit_violations = violations.size();
  if (!violations.empty()) r.audit_report = obs::TraceAuditor::format(violations);
  if (spans_out != nullptr) {
    spans_out->insert(spans_out->end(), vm.spans().spans().begin(),
                      vm.spans().spans().end());
  }
  return r;
}

}  // namespace cpe::svc
