// Seeded scenario generator: one declarative row = one reproducible
// service run (DESIGN.md §15.3).
//
// A ScenarioRow composes the three independent axes of a serving
// experiment — arrival process x placement policy x fault plan — plus the
// observability hookup (SLO rules, flight recorder) into a single value.
// Scenario::run() builds the whole stack from it (engine, network, hosts,
// PVM, MPVM, GS + gossip + queueing-pressure feed, analytics, frontends,
// faults), runs to the horizon plus a drain grace, and distils the run into
// a ScenarioResult.  Property sweeps (ServiceTailSweep) and the
// bench_service_tail policy matrix are both just tables of rows: a new
// scenario is a table entry, not a new harness.
//
// Determinism: every stochastic choice — arrivals, service demands, gossip
// fanout, placement tie-breaks, fault schedules — draws from seeds derived
// from ScenarioRow::seed, so a row re-runs byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "load/placement.hpp"
#include "obs/span.hpp"
#include "sim/time.hpp"
#include "svc/frontend.hpp"

namespace cpe::svc {

enum class ArrivalKind : std::uint8_t { kPoisson, kDiurnal, kTrace };
enum class FaultKind : std::uint8_t {
  kNone,
  kStorm,   ///< rotating owner-reclamation storm (external-job churn)
  kFlap,    ///< flapping links around a worker-host island
  kCrash,   ///< crash + later recovery of one worker host
  kFreeze,  ///< periodic transient freezes of one worker host
};

[[nodiscard]] const char* to_string(ArrivalKind k) noexcept;
[[nodiscard]] const char* to_string(FaultKind k) noexcept;

/// One declarative service scenario.  User-provided constructor (not an
/// aggregate): rows travel by value through sweep fixtures.
struct ScenarioRow {
  std::string name = "svc";

  // -- Topology --------------------------------------------------------------
  int hosts = 8;      ///< total; the first `frontends` never take faults
  int frontends = 1;  ///< shards of the open-loop source (one host each)
  int workers = 6;    ///< worker tasks, spread over the non-frontend hosts

  // -- Arrivals (per frontend shard) ----------------------------------------
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double rate = 100.0;       ///< requests/s (base rate for kDiurnal)
  double amplitude = 0.5;    ///< kDiurnal modulation depth [0,1]
  sim::Time period = 86400;  ///< kDiurnal period
  std::vector<sim::Time> trace;  ///< kTrace offsets (strict order)

  // -- Request shape ---------------------------------------------------------
  RouteKind route = RouteKind::kLeastOutstanding;
  double service_demand = 20e-3;  ///< mean demand (exponential), ref-sec
  sim::Time timeout = 2.0;
  std::uint64_t sample_every = 1;  ///< request-trace sampling stride
  std::size_t request_bytes = 256;
  std::size_t worker_image_bytes = 2 * 1024 * 1024;

  // -- Placement -------------------------------------------------------------
  load::PolicyKind policy = load::PolicyKind::kBestFit;
  bool precopy = false;
  double load_threshold = std::numeric_limits<double>::infinity();
  double queue_weight = 0.25;  ///< index units per outstanding request
  sim::Time poll_interval = 1.0;
  sim::Time min_residency = 5.0;

  // -- Faults ----------------------------------------------------------------
  FaultKind fault = FaultKind::kNone;
  int storm_hosts = 2;          ///< worker hosts reclaimed per storm window
  int storm_jobs = 6;           ///< owner jobs landing on each
  sim::Time storm_period = 30;  ///< window length (storm rotates each one)
  sim::Time fault_start = 10;   ///< first fault event

  // -- Run -------------------------------------------------------------------
  std::uint64_t seed = 1;
  sim::Time horizon = 120;
  double bandwidth_bps = 100e6;

  // -- Observability ---------------------------------------------------------
  sim::Time analytics_window = 1.0;
  std::size_t ring_windows = 256;
  std::vector<std::string> slo_rules;  ///< obs::SloRule::parse texts
  bool arm_flight_recorder = false;    ///< dump (once) on first violation
  std::string flight_dir = ".";

  ScenarioRow() {}
};

/// What one run boils down to.
struct ScenarioResult {
  std::string name;
  std::string policy;

  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejected = 0;
  std::uint64_t late = 0;
  std::size_t pending = 0;  ///< still unresolved after the drain grace
  /// issued == completed + timeouts + rejected and nothing pending.
  bool exactly_once = false;
  double requests_per_vday = 0;  ///< issued scaled to an 86400 s day

  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;
  double queue_wait_p99 = 0;

  std::size_t migrations = 0;  ///< completed (MigrationStats history)
  double mean_freeze = 0;
  double max_freeze = 0;
  std::uint64_t thrash_violations = 0;
  std::size_t faults_injected = 0;

  std::size_t slo_violations = 0;
  std::uint64_t flight_dumps = 0;
  std::vector<std::string> flight_files;

  std::size_t spans = 0;
  std::size_t audit_violations = 0;
  std::string audit_report;  ///< first lines, for diagnostics

  ScenarioResult() {}
};

/// Build the stack a row describes, run it, distil the result.  When
/// `spans_out` is non-null the run's span records are appended to it
/// (bench trace exports); the auditor runs either way.
[[nodiscard]] ScenarioResult run_scenario(
    const ScenarioRow& row, std::vector<obs::SpanRecord>* spans_out = nullptr);

}  // namespace cpe::svc
