#include "svc/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace cpe::svc {

double DiurnalArrivals::rate_at(sim::Time t) const noexcept {
  return base_ *
         (1.0 + amplitude_ * std::sin(2.0 * std::numbers::pi * t / period_));
}

std::optional<sim::Time> DiurnalArrivals::next_gap(sim::Time now) {
  // Lewis-Shedler thinning: draw candidates from a homogeneous Poisson
  // process at the peak rate, accept each with probability rate(t)/peak.
  // The candidate at virtual time `t` below is relative to `now`.
  const double peak = base_ * (1.0 + amplitude_);
  sim::Time t = 0;
  for (;;) {
    t += rng_.exponential(1.0 / peak);
    if (rng_.uniform() * peak <= rate_at(now + t)) return t;
  }
}

TraceReplay::TraceReplay(std::vector<sim::Time> stamps, ReplayOrder order)
    : stamps_(std::move(stamps)) {
  for (const sim::Time s : stamps_) {
    CPE_EXPECTS(std::isfinite(s) && s >= 0 &&
                "svc::TraceReplay stamps must be finite and non-negative");
  }
  if (order == ReplayOrder::kSort) {
    std::stable_sort(stamps_.begin(), stamps_.end());
  } else {
    CPE_EXPECTS(std::is_sorted(stamps_.begin(), stamps_.end()) &&
                "svc::TraceReplay stamps must be non-decreasing (pass "
                "ReplayOrder::kSort to sort out-of-order traces)");
  }
}

std::optional<sim::Time> TraceReplay::next_gap(sim::Time now) {
  if (next_ >= stamps_.size()) return std::nullopt;
  if (!started_) {
    started_ = true;
    base_ = now;  // stamps are offsets from the first pull
  }
  // Target absolute time of the next arrival; the stamps are sorted, so the
  // target can lag `now` only if the driver itself fell behind (it pulls
  // exactly one gap per scheduled arrival, so it cannot) — clamp regardless
  // to keep the invariant local.
  const sim::Time target = base_ + stamps_[next_++];
  return std::max<sim::Time>(0, target - now);
}

}  // namespace cpe::svc
