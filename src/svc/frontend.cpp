#include "svc/frontend.hpp"

#include <string>
#include <utility>

#include "sim/assert.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace cpe::svc {
namespace {

/// The frontend task exists to be an addressable completion endpoint; the
/// actual work (arrival pump, dispatch, timeout bookkeeping) runs as engine
/// events on the owning Frontend object.  kTagPark is never sent.
sim::Co<void> frontend_main(pvm::Task& self) {
  (void)co_await self.recv(pvm::kAny, kTagPark);
}

/// One serving loop: recv a request, charge its queue wait, compute its
/// demand (migratable mid-compute — a freeze window lands here as `stall`),
/// reply with a control-tagged completion that continues the request trace.
sim::Co<void> worker_main(pvm::Task& self) {
  obs::Histogram& queue_wait = self.system().metrics().histogram(
      "svc.queue_wait");
  obs::SpanTracer& tracer = self.system().spans();
  sim::Engine& eng = self.system().engine();
  for (;;) {
    pvm::Message m = co_await self.recv(pvm::kAny, kTagRequest);
    pvm::Buffer b(*m.body);
    const std::int64_t id = b.upk_long();
    const double issued_at = b.upk_double();
    const double demand = b.upk_double();
    const bool sampled = b.upk_int() != 0;

    const sim::Time t0 = eng.now();
    queue_wait.record(t0 - issued_at);

    obs::SpanId serve = 0;
    if (sampled && self.trace_context().valid()) {
      serve = tracer.begin_span(self.trace_context(), "svc.serve",
                                self.pvmd().host().name(), self.tid().raw());
      tracer.annotate(serve, "queue_wait_s", std::to_string(t0 - issued_at));
    }

    co_await self.compute(demand);

    if (serve != 0) {
      // Wall time beyond the pure demand: CPU contention from owner
      // reclamation plus any migration freeze this request overlapped.
      tracer.annotate(serve, "stall_s",
                      std::to_string((eng.now() - t0) - demand));
      tracer.end_span(serve, obs::SpanStatus::kOk);
      self.set_trace_context(tracer.context_of(serve));
    }
    pvm::Buffer reply;
    reply.pk_long(id);
    self.runtime_send(m.src, kTagComplete, std::move(reply));
    self.clear_trace_context();
  }
}

}  // namespace

const char* to_string(RouteKind k) noexcept {
  switch (k) {
    case RouteKind::kRoundRobin:
      return "round_robin";
    case RouteKind::kLeastOutstanding:
      return "least_outstanding";
    case RouteKind::kLocalityAffine:
      return "locality_affine";
  }
  return "?";
}

Frontend::Frontend(pvm::PvmSystem& vm, std::unique_ptr<ArrivalProcess> arrivals,
                   FrontendOptions opts)
    : vm_(&vm),
      arrivals_(std::move(arrivals)),
      opts_(opts),
      rng_(opts.seed),
      pad_(opts.request_bytes) {
  CPE_EXPECTS(arrivals_ != nullptr &&
              "svc::Frontend requires an arrival process");
  CPE_EXPECTS(opts.timeout > 0 && "svc::Frontend timeout must be > 0");
  CPE_EXPECTS(opts.service_demand > 0 &&
              "svc::Frontend mean service demand must be > 0");
  CPE_EXPECTS(opts.affinity_keys > 0 &&
              "svc::Frontend affinity key space must be non-empty");
  if (!vm.has_program("svc.frontend")) {
    vm.register_program("svc.frontend", frontend_main);
  }
  if (!vm.has_program("svc.worker")) {
    vm.register_program("svc.worker", worker_main);
  }
  obs::MetricsRegistry& reg = vm.metrics();
  latency_ = &reg.histogram("svc.latency");
  (void)reg.histogram("svc.queue_wait");  // exists before the first request
  c_issued_ = &reg.counter("svc.issued");
  c_completed_ = &reg.counter("svc.completed");
  c_timeouts_ = &reg.counter("svc.timeouts");
  c_rejected_ = &reg.counter("svc.rejected");
  c_late_ = &reg.counter("svc.late");
  inflight_ = &reg.gauge("svc.requests_inflight");
}

void Frontend::launch(os::Host& host, std::vector<os::Host*> worker_hosts,
                      sim::Time horizon) {
  CPE_EXPECTS(!worker_hosts.empty() &&
              "svc::Frontend::launch needs at least one worker host");
  sim::spawn(vm_->engine(), init(&host, std::move(worker_hosts), horizon));
}

sim::Co<void> Frontend::init(os::Host* host,
                             std::vector<os::Host*> worker_hosts,
                             sim::Time horizon) {
  std::vector<pvm::Tid> ft = co_await vm_->spawn("svc.frontend", 1,
                                                 host->name());
  ftid_ = ft.at(0);
  pvm::Task* ftask = vm_->find_logical(ftid_);
  CPE_EXPECTS(ftask != nullptr);
  ftask->set_control_handler(
      kTagComplete, [this](pvm::Message m) { on_complete(std::move(m)); });

  for (os::Host* wh : worker_hosts) {
    std::vector<pvm::Tid> wt = co_await vm_->spawn("svc.worker", 1,
                                                   wh->name());
    pvm::Task* wtask = vm_->find_logical(wt.at(0));
    CPE_EXPECTS(wtask != nullptr);
    wtask->process().image().data_bytes = opts_.worker_image_bytes;
    worker_tids_.push_back(wt.at(0));
    outstanding_.push_back(0);
  }
  pump(horizon);
}

void Frontend::pump(sim::Time horizon) {
  sim::Engine& eng = vm_->engine();
  const std::optional<sim::Time> gap = arrivals_->next_gap(eng.now());
  if (!gap) return;  // finite trace exhausted
  const sim::Time t = eng.now() + *gap;
  if (t > horizon) return;
  // One pooled event per request; 16-byte capture stays in the inline slot.
  (void)eng.schedule_at(t, [this, horizon] {
    dispatch_one();
    pump(horizon);
  });
}

bool Frontend::worker_live(std::size_t i) const {
  const pvm::Task* t = vm_->find_logical(worker_tids_[i]);
  return t != nullptr && !t->exited() && t->pvmd().host().up();
}

long Frontend::pick_worker(std::uint64_t id) {
  const std::size_t n = worker_tids_.size();
  if (n == 0) return -1;
  const auto scan_from = [&](std::size_t from) -> long {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (from + k) % n;
      if (worker_live(i)) return static_cast<long>(i);
    }
    return -1;
  };
  switch (opts_.route) {
    case RouteKind::kRoundRobin:
      return scan_from(rr_++ % n);
    case RouteKind::kLeastOutstanding: {
      long best = -1;
      for (std::size_t i = 0; i < n; ++i) {
        if (!worker_live(i)) continue;
        if (best < 0 || outstanding_[i] < outstanding_[best]) {
          best = static_cast<long>(i);
        }
      }
      return best;
    }
    case RouteKind::kLocalityAffine: {
      // Stable key -> home worker; spill to the next live worker when the
      // home is down, so affinity degrades instead of rejecting.
      const std::uint64_t key = id % opts_.affinity_keys;
      return scan_from(static_cast<std::size_t>((key * 2654435761u) % n));
    }
  }
  return -1;
}

void Frontend::dispatch_one() {
  const std::uint64_t id = next_id_++;
  issued_++;
  c_issued_->inc();
  const long w = pick_worker(id);
  if (w < 0) {
    rejected_++;
    c_rejected_->inc();
    return;
  }

  sim::Engine& eng = vm_->engine();
  obs::SpanTracer& tracer = vm_->spans();
  pvm::Task* ftask = vm_->find_logical(ftid_);
  CPE_EXPECTS(ftask != nullptr);

  Pending p;
  p.worker = static_cast<std::size_t>(w);
  p.issued_at = eng.now();
  const double demand = rng_.exponential(opts_.service_demand);
  const bool sampled =
      opts_.sample_every > 0 && id % opts_.sample_every == 0;
  if (sampled) {
    const obs::TraceContext root = tracer.start_trace();
    p.span = tracer.begin_span(root, "svc.request",
                               ftask->pvmd().host().name(), ftid_.raw());
    tracer.annotate(p.span, "route", to_string(opts_.route));
  }

  pvm::Buffer body;
  body.pk_long(static_cast<std::int64_t>(id));
  body.pk_double(p.issued_at);
  body.pk_double(demand);
  body.pk_int(p.span != 0 ? 1 : 0);
  if (!pad_.empty()) body.pk_byte(pad_);

  // Stamp the request's context onto the message for exactly its send; the
  // frontend task itself stays untraced between requests.
  const obs::TraceContext saved = ftask->trace_context();
  if (p.span != 0) {
    ftask->set_trace_context(tracer.context_of(p.span));
  } else {
    ftask->clear_trace_context();
  }
  ftask->runtime_send(worker_tids_[p.worker], kTagRequest, std::move(body));
  ftask->set_trace_context(saved);

  p.timeout_ev =
      eng.schedule_in(opts_.timeout, [this, id] { on_timeout(id); });
  outstanding_[p.worker]++;
  inflight_->add(1);
  pending_.emplace(id, p);
}

void Frontend::retire(std::unordered_map<std::uint64_t, Pending>::iterator it) {
  outstanding_[it->second.worker]--;
  inflight_->add(-1);
  pending_.erase(it);
}

void Frontend::on_complete(pvm::Message m) {
  pvm::Buffer b(*m.body);
  const auto id = static_cast<std::uint64_t>(b.upk_long());
  const auto it = pending_.find(id);
  if (it == pending_.end()) {
    // The timeout already retired this request; the straggling completion
    // changes nothing (exactly-once resolution).
    late_++;
    c_late_->inc();
    return;
  }
  vm_->engine().cancel(it->second.timeout_ev);
  const double latency = vm_->engine().now() - it->second.issued_at;
  latency_->record(latency);
  completed_++;
  c_completed_->inc();
  if (it->second.span != 0) {
    obs::SpanTracer& tracer = vm_->spans();
    tracer.annotate(it->second.span, "latency_s", std::to_string(latency));
    tracer.end_span(it->second.span, obs::SpanStatus::kOk);
  }
  retire(it);
}

void Frontend::on_timeout(std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  // Censored observation: record the bound, not nothing — a policy that
  // lets requests die must not launder its tail out of svc.latency.
  latency_->record(opts_.timeout);
  timeouts_++;
  c_timeouts_->inc();
  if (it->second.span != 0) {
    obs::SpanTracer& tracer = vm_->spans();
    tracer.annotate(it->second.span, "timeout", "1");
    tracer.end_span(it->second.span, obs::SpanStatus::kAborted);
  }
  retire(it);
}

double Frontend::outstanding_on(const os::Host& host) const {
  double sum = 0;
  for (std::size_t i = 0; i < worker_tids_.size(); ++i) {
    if (outstanding_[i] == 0) continue;
    const pvm::Task* t = vm_->find_logical(worker_tids_[i]);
    if (t != nullptr && &t->pvmd().host() == &host) sum += outstanding_[i];
  }
  return sum;
}

void track_service_metrics(obs::Analytics& an) {
  an.track_histogram("svc.latency");
  an.track_histogram("svc.queue_wait");
  an.track_counter("svc.issued");
  an.track_counter("svc.completed");
  an.track_counter("svc.timeouts");
  an.track_counter("svc.rejected");
  an.track_gauge("svc.requests_inflight");
}

}  // namespace cpe::svc
