// Request lifecycle for the service workload subsystem (DESIGN.md §15).
//
// A Frontend is one open-loop load source: it spawns a parked "svc.frontend"
// task on its host (the addressable endpoint completions come back to), a
// pool of "svc.worker" tasks across the worker hosts, and then pumps the
// arrival process — one pooled engine event per request, never waiting for
// replies.  Each request is a plain PVM data message to a worker chosen by
// the routing policy; the completion is a control-tagged library message
// back to the frontend, so it bypasses send gates (a completion must not
// block behind its own worker's migration freeze) and stays out of the
// scoped-flush correspondent sets.
//
// Workers are ordinary migratable MPVM tasks: they recv, compute the
// request's service demand, reply.  Migration can land anywhere in that
// loop — mid-compute or recv-blocked — which is exactly the interleaving
// the tail-latency story is about: the request's "svc.serve" span records
// `stall` = wall time minus demand, attributing freeze windows and CPU
// contention to the requests that overlapped them.
//
// Every request resolves exactly once: completion cancels the pending
// timeout event; a timeout retires the request at the censored latency
// (recorded into svc.latency at the timeout bound, so a policy that lets
// requests die cannot launder its tail); a completion that races past its
// timeout is counted as `late` and changes nothing else.  The
// TraceAuditor's request-completeness invariant (obs/audit.hpp, invariant
// 9) replays sampled request traces and checks this from the span record
// alone.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/analytics.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "os/host.hpp"
#include "pvm/system.hpp"
#include "pvm/task.hpp"
#include "sim/random.hpp"
#include "svc/arrival.hpp"

namespace cpe::svc {

/// Request messages travel as ordinary application data (they queue in the
/// worker mailbox and move with a migrating worker); completions are
/// library-level control messages (handled at delivery on the frontend).
inline constexpr int kTagRequest = 7101;
inline constexpr int kTagPark = 7102;  ///< never sent: parks the frontend
inline constexpr int kTagComplete = pvm::kControlTagBase + 96;

/// How the frontend picks a worker for each request.
enum class RouteKind : std::uint8_t {
  kRoundRobin,        ///< cycle through live workers
  kLeastOutstanding,  ///< fewest requests in flight (power of all choices)
  kLocalityAffine,    ///< hash the request's affinity key to a home worker
};

[[nodiscard]] const char* to_string(RouteKind k) noexcept;

/// Knobs for one Frontend.  User-provided constructor (not an aggregate):
/// options travel by value into the launch coroutine frame.
struct FrontendOptions {
  RouteKind route = RouteKind::kRoundRobin;
  sim::Time timeout = 2.0;          ///< per-request deadline
  double service_demand = 20e-3;    ///< mean demand, exponential (ref-sec)
  std::uint64_t sample_every = 1;   ///< trace every Nth request (0 = none)
  std::size_t request_bytes = 256;  ///< payload padding per request
  std::size_t worker_image_bytes = 2 * 1024 * 1024;  ///< data segment
  std::uint32_t affinity_keys = 16;  ///< key space for kLocalityAffine
  std::uint64_t seed = 1;            ///< demand draws

  FrontendOptions() {}
};

/// One open-loop request source: arrival process x routing policy x worker
/// pool.  Construct, then launch(); read the tallies after the run.
class Frontend {
 public:
  Frontend(pvm::PvmSystem& vm, std::unique_ptr<ArrivalProcess> arrivals,
           FrontendOptions opts);
  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Spawn the frontend task on `host` and one worker per entry of
  /// `worker_hosts`, then pump arrivals until `horizon`.  Runs as a spawned
  /// setup coroutine; the Frontend must outlive the engine run.
  void launch(os::Host& host, std::vector<os::Host*> worker_hosts,
              sim::Time horizon);

  // -- Tallies (every issued request lands in exactly one bucket) ----------
  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  /// Completions that arrived after their timeout already retired the
  /// request (counted, otherwise ignored — never a double resolve).
  [[nodiscard]] std::uint64_t late() const noexcept { return late_; }
  /// Requests still in flight (0 after the grace window drains).
  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }

  /// Requests in flight on workers currently living on `host` — the
  /// queueing-pressure component the GS feeds into HostLoadView (see
  /// GlobalScheduler::set_pressure_source).
  [[nodiscard]] double outstanding_on(const os::Host& host) const;

  [[nodiscard]] const std::vector<pvm::Tid>& worker_tids() const noexcept {
    return worker_tids_;
  }
  [[nodiscard]] pvm::Tid frontend_tid() const noexcept { return ftid_; }

 private:
  struct Pending {
    std::size_t worker = 0;  ///< index into worker_tids_
    sim::Time issued_at = 0;
    obs::SpanId span = 0;  ///< 0 = unsampled
    sim::EventId timeout_ev;
    Pending() {}
  };

  [[nodiscard]] sim::Co<void> init(os::Host* host,
                                   std::vector<os::Host*> worker_hosts,
                                   sim::Time horizon);
  void pump(sim::Time horizon);
  void dispatch_one();
  void on_complete(pvm::Message m);
  void on_timeout(std::uint64_t id);
  void retire(std::unordered_map<std::uint64_t, Pending>::iterator it);
  /// -1 when no live worker exists.
  [[nodiscard]] long pick_worker(std::uint64_t id);
  [[nodiscard]] bool worker_live(std::size_t i) const;

  pvm::PvmSystem* vm_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  FrontendOptions opts_;
  sim::Rng rng_;
  std::vector<std::byte> pad_;

  pvm::Tid ftid_;
  std::vector<pvm::Tid> worker_tids_;
  std::vector<std::uint32_t> outstanding_;  ///< per worker index

  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_id_ = 0;
  std::size_t rr_ = 0;

  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t late_ = 0;

  obs::Histogram* latency_;
  obs::Counter* c_issued_;
  obs::Counter* c_completed_;
  obs::Counter* c_timeouts_;
  obs::Counter* c_rejected_;
  obs::Counter* c_late_;
  obs::Gauge* inflight_;
};

/// Register the svc metric series with an Analytics instance so SLO rules
/// over them (e.g. "p99(svc.latency) <= 0.5 for 3") can arm the flight
/// recorder.  Call after the metrics exist (i.e. after any Frontend is
/// constructed against the same registry).
void track_service_metrics(obs::Analytics& an);

}  // namespace cpe::svc
