#include "apps/opt/exemplars.hpp"

#include <algorithm>

namespace cpe::opt {

ExemplarSet ExemplarSet::synthesize(std::size_t n, sim::Rng& rng) {
  ExemplarSet set;
  set.features_.resize(n * kInputDim);
  set.category_.resize(n);
  set.processed_.assign(n, 0);

  // Deterministic class centers on a coarse grid, cluster noise on top.
  for (std::size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(rng.below(kClasses));
    set.category_[i] = c;
    for (int d = 0; d < kInputDim; ++d) {
      const double center =
          ((c * 31 + d * 7) % 13) / 6.5 - 1.0;  // in [-1, ~0.85]
      set.features_[i * kInputDim + static_cast<std::size_t>(d)] =
          static_cast<float>(center + rng.normal(0.0, 0.25));
    }
  }
  return set;
}

std::size_t ExemplarSet::unprocessed_count() const {
  return static_cast<std::size_t>(
      std::count(processed_.begin(), processed_.end(), std::uint8_t{0}));
}

ExemplarSet ExemplarSet::take_back(std::size_t count) {
  CPE_EXPECTS(count <= size());
  ExemplarSet out;
  const std::size_t keep = size() - count;
  out.features_.assign(features_.begin() +
                           static_cast<std::ptrdiff_t>(keep * kInputDim),
                       features_.end());
  out.category_.assign(category_.begin() + static_cast<std::ptrdiff_t>(keep),
                       category_.end());
  out.processed_.assign(processed_.begin() + static_cast<std::ptrdiff_t>(keep),
                        processed_.end());
  features_.resize(keep * kInputDim);
  category_.resize(keep);
  processed_.resize(keep);
  return out;
}

void ExemplarSet::append(const ExemplarSet& other) {
  features_.insert(features_.end(), other.features_.begin(),
                   other.features_.end());
  category_.insert(category_.end(), other.category_.begin(),
                   other.category_.end());
  processed_.insert(processed_.end(), other.processed_.begin(),
                    other.processed_.end());
}

std::vector<ExemplarSet> ExemplarSet::split(
    std::span<const std::size_t> shares) {
  std::size_t total = 0;
  for (std::size_t s : shares) total += s;
  CPE_EXPECTS(total == size());
  std::vector<ExemplarSet> out;
  // take_back pulls from the end; reverse order keeps shares[0] first.
  for (std::size_t k = shares.size(); k-- > 0;)
    out.push_back(take_back(shares[k]));
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<float> ExemplarSet::to_wire() const {
  std::vector<float> wire;
  wire.reserve(size() * calib::OptWorkload::exemplar_floats);
  for (std::size_t i = 0; i < size(); ++i) {
    const auto f = features(i);
    wire.insert(wire.end(), f.begin(), f.end());
    wire.push_back(static_cast<float>(category_[i]));
  }
  return wire;
}

ExemplarSet ExemplarSet::from_wire(std::span<const float> wire) {
  CPE_EXPECTS(wire.size() % calib::OptWorkload::exemplar_floats == 0);
  const std::size_t n = wire.size() / calib::OptWorkload::exemplar_floats;
  ExemplarSet set;
  set.features_.reserve(n * kInputDim);
  set.category_.reserve(n);
  set.processed_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* e = wire.data() + i * calib::OptWorkload::exemplar_floats;
    set.features_.insert(set.features_.end(), e, e + kInputDim);
    set.category_.push_back(static_cast<int>(e[kInputDim]));
  }
  return set;
}

std::uint64_t ExemplarSet::checksum() const {
  // Order-insensitive: sum of per-exemplar FNV hashes.
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint32_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (float f : features(i)) {
      std::uint32_t bits;
      static_assert(sizeof bits == sizeof f);
      __builtin_memcpy(&bits, &f, sizeof bits);
      mix(bits);
    }
    mix(static_cast<std::uint32_t>(category_[i]));
    sum += h;
  }
  return sum;
}

}  // namespace cpe::opt
