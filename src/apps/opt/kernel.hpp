// Gradient kernels: how slave VPs produce their partial gradients.
//
// Two modes share one interface:
//  * real math — actual back-propagation over the slice; used by the
//    examples and the transparency tests (the trained network must be
//    identical with and without migrations);
//  * modelled — a cheap deterministic pseudo-gradient; used at bench scale
//    (tens of MB of exemplars) where only the *time* matters.  The CPU work
//    charged to the simulation is identical in both modes, so timing results
//    never depend on which kernel runs.
#pragma once

#include <span>

#include "apps/opt/network.hpp"

namespace cpe::opt {

class GradientKernel {
 public:
  explicit GradientKernel(bool real_math, calib::OptWorkload workload = {})
      : real_math_(real_math), workload_(workload) {}

  [[nodiscard]] bool real_math() const noexcept { return real_math_; }
  [[nodiscard]] const calib::OptWorkload& workload() const noexcept {
    return workload_;
  }

  /// Accumulate the partial gradient of `net` over `slice` into `grad` and
  /// return the CPU work (reference-seconds) the caller must charge.  With
  /// `honor_flags`, exemplars already marked processed contribute neither
  /// gradient nor work (the ADM epoch-continuation rule).
  double partial(const Network& net, const ExemplarSet& slice,
                 std::span<float> grad, bool honor_flags = false) const {
    CPE_EXPECTS(grad.size() == Network::weight_count());
    const std::size_t n =
        honor_flags ? slice.unprocessed_count() : slice.size();
    if (real_math_) {
      net.accumulate_gradient(slice, grad, honor_flags);
    } else {
      // Deterministic filler so buffers carry stable, checkable bytes.
      const float h =
          static_cast<float>(net.checksum() % 1000) * 1e-5f + 1e-4f;
      for (std::size_t i = 0; i < grad.size(); ++i)
        grad[i] += h * static_cast<float>(n % 97 + 1) *
                   (1.0f + 0.001f * static_cast<float>(i % 31));
    }
    return static_cast<double>(n) * workload_.grad_seconds_per_exemplar;
  }

  /// One ADM inner-loop step: process up to `max_items` unprocessed
  /// exemplars, marking them processed.  `overhead_factor` is the ADM
  /// adaptivity burden (flag checks, switch dispatch, flag-array upkeep —
  /// §4.3.1) added to the compute time.
  struct ChunkResult {
    std::size_t items = 0;
    double work = 0;

    ChunkResult() = default;
    ChunkResult(std::size_t i, double w) : items(i), work(w) {}
  };
  ChunkResult chunk(const Network& net, ExemplarSet& set,
                    std::span<float> grad, std::size_t max_items,
                    double overhead_factor) const {
    CPE_EXPECTS(grad.size() == Network::weight_count());
    std::size_t n = 0;
    for (std::size_t i = 0; i < set.size() && n < max_items; ++i) {
      if (set.processed(i)) continue;
      if (real_math_)
        net.accumulate_one(set.features(i), set.category(i), grad);
      set.mark_processed(i);
      ++n;
    }
    if (!real_math_ && n > 0) {
      const float h =
          static_cast<float>(net.checksum() % 1000) * 1e-5f + 1e-4f;
      for (std::size_t i = 0; i < grad.size(); ++i)
        grad[i] += h * static_cast<float>(n % 97 + 1);
    }
    const double work = static_cast<double>(n) *
                        workload_.grad_seconds_per_exemplar *
                        (1.0 + overhead_factor);
    return ChunkResult(n, work);
  }

 private:
  bool real_math_;
  calib::OptWorkload workload_;
};

}  // namespace cpe::opt
