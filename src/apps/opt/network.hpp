// The Opt neural network: a 64-32-16 MLP trained by back-propagation with
// conjugate-gradient descent (paper §4.0: "an initial neural-net, which is
// simply a (large) matrix of floating point numbers, is established and
// applied to the exemplars so that a gradient is found ... that gradient is
// then used to modify the neural-net").
//
// The math is real: forward pass (tanh hidden, softmax output), cross-entropy
// gradient via back-propagation, and Fletcher-Reeves conjugate-gradient
// updates.  Small-scale tests train to convergence; bench-scale runs swap in
// the modelled kernel for gradient values but keep this class for the
// master's combine/apply step.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/opt/exemplars.hpp"

namespace cpe::opt {

inline constexpr int kHidden = 32;

class Network {
 public:
  /// Weight count: W1 (64x32) + b1 (32) + W2 (32x16) + b2 (16).
  static constexpr std::size_t kWeights =
      static_cast<std::size_t>(kInputDim) * kHidden + kHidden +
      static_cast<std::size_t>(kHidden) * kClasses + kClasses;

  /// Deterministic small random initialization.
  explicit Network(std::uint64_t seed = 1);
  /// Adopt existing weights (a net received over the wire).
  explicit Network(std::vector<float> weights);

  [[nodiscard]] std::span<const float> weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] std::vector<float>& mutable_weights() noexcept {
    return weights_;
  }
  [[nodiscard]] static constexpr std::size_t weight_count() noexcept {
    return kWeights;
  }
  [[nodiscard]] static std::size_t bytes() noexcept {
    return kWeights * sizeof(float);
  }

  /// Class scores (softmax probabilities) for one exemplar.
  [[nodiscard]] std::vector<float> forward(std::span<const float> x) const;

  /// Accumulate the cross-entropy gradient over `set` into `grad`
  /// (grad += dE/dw summed over exemplars).  Returns the summed loss.
  /// Only exemplars with `processed()==false` contribute when
  /// `honor_flags` is set (the ADM inner loop); flags are not modified.
  double accumulate_gradient(const ExemplarSet& set, std::span<float> grad,
                             bool honor_flags = false) const;

  /// Gradient contribution of a single exemplar (the ADM chunked inner
  /// loop).  Returns the exemplar's loss.
  double accumulate_one(std::span<const float> x, int label,
                        std::span<float> grad) const;

  /// One conjugate-gradient step: direction d = -g + beta * d_prev with
  /// Fletcher-Reeves beta, fixed learning rate.  Pass the same CgState
  /// across iterations.
  struct CgState {
    std::vector<float> prev_grad;
    std::vector<float> direction;
  };
  void apply_cg_step(std::span<const float> grad, CgState& state,
                     float learning_rate = 0.05f);

  /// Mean cross-entropy over a set (diagnostics/tests).
  [[nodiscard]] double loss_on(const ExemplarSet& set) const;
  /// Fraction of exemplars classified correctly.
  [[nodiscard]] double accuracy_on(const ExemplarSet& set) const;

  /// Content hash of the weights (transparency invariant: migrated and
  /// non-migrated runs must train identical nets).
  [[nodiscard]] std::uint64_t checksum() const;

 private:
  std::vector<float> weights_;
};

}  // namespace cpe::opt
