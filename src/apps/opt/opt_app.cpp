#include "apps/opt/opt_app.hpp"

#include "adm/partition.hpp"

namespace cpe::opt {

PvmOpt::PvmOpt(pvm::PvmSystem& vm, OptConfig cfg)
    : vm_(&vm),
      cfg_(std::move(cfg)),
      kernel_(cfg_.real_math, cfg_.workload),
      slaves_ready_(vm.engine()),
      finished_(vm.engine()) {
  CPE_EXPECTS(cfg_.nslaves >= 1);
  CPE_EXPECTS(static_cast<int>(cfg_.slave_hosts.size()) == cfg_.nslaves);
  vm.register_program(
      "opt_master", [this](pvm::Task& t) -> sim::Co<void> {
        co_await master_main(t);
      });
  vm.register_program("opt_slave", [this](pvm::Task& t) -> sim::Co<void> {
    co_await slave_main(t);
  });
}

sim::Co<OptResult> PvmOpt::run() {
  std::vector<pvm::Tid> tids =
      co_await vm_->spawn("opt_master", 1, cfg_.master_host);
  master_tid_ = tids[0];
  while (!done_) co_await finished_.wait();
  co_return result_;
}

sim::Co<void> PvmOpt::master_main(pvm::Task& t) {
  sim::Engine& eng = vm_->engine();

  // Spawn the slaves where the configuration says (paper: one per host,
  // master co-located with slave 1).
  for (int s = 0; s < cfg_.nslaves; ++s) {
    std::vector<pvm::Tid> kid = co_await t.spawn(
        "opt_slave", 1, cfg_.slave_hosts[static_cast<std::size_t>(s)]);
    slave_tids_.push_back(kid[0]);
  }
  // The application clock starts once the VPs exist (UPVM's containers
  // pre-exist, so including fork/exec here would skew the Table 3
  // comparison).
  result_.start_time = eng.now();

  // Build the training set and distribute it equally (§4.0).
  sim::Rng rng(cfg_.seed);
  ExemplarSet data = ExemplarSet::synthesize_bytes(cfg_.data_bytes, rng);
  result_.data_checksum = data.checksum();
  t.process().image().data_bytes = data.bytes() + Network::bytes();
  {
    const std::vector<std::size_t> shares = adm::equal_shares(
        data.size(), static_cast<std::size_t>(cfg_.nslaves));
    std::vector<ExemplarSet> slices = data.split(shares);
    for (int s = 0; s < cfg_.nslaves; ++s) {
      const std::vector<float> wire =
          slices[static_cast<std::size_t>(s)].to_wire();
      t.initsend().pk_float(wire);
      co_await t.send(slave_tids_[static_cast<std::size_t>(s)], kTagData);
    }
  }

  Network net(cfg_.seed);
  Network::CgState cg;
  std::vector<float> grad(Network::weight_count());
  std::vector<float> partial(Network::weight_count());

  for (int iter = 0; iter < cfg_.iterations; ++iter) {
    // Broadcast the current network.
    t.initsend().pk_float(net.weights());
    co_await t.mcast(slave_tids_, kTagNet);
    // Gather and combine partial gradients.
    std::fill(grad.begin(), grad.end(), 0.0f);
    for (int s = 0; s < cfg_.nslaves; ++s) {
      co_await t.recv(pvm::kAny, kTagGrad);
      t.rbuf().upk_float(partial);
      for (std::size_t i = 0; i < grad.size(); ++i) grad[i] += partial[i];
    }
    // Apply the conjugate-gradient update.
    co_await t.compute(cfg_.workload.apply_seconds);
    net.apply_cg_step(grad, cg);
    ++result_.iterations_done;
  }

  t.initsend().pk_int(0);
  co_await t.mcast(slave_tids_, kTagDone);
  result_.end_time = eng.now();
  result_.net_checksum = net.checksum();
  done_ = true;
  finished_.fire();
}

sim::Co<void> PvmOpt::slave_main(pvm::Task& t) {
  // Receive my slice of the exemplars.
  co_await t.recv(pvm::kAny, kTagData);
  std::vector<float> wire(t.rbuf().next_count());
  t.rbuf().upk_float(wire);
  ExemplarSet mine = ExemplarSet::from_wire(wire);
  wire.clear();
  wire.shrink_to_fit();
  // The process image now holds the slice plus net + gradient buffers —
  // what an MPVM migration must move.
  t.process().image().data_bytes = mine.bytes();
  t.process().image().heap_bytes = 2 * Network::bytes();

  if (++slaves_ready_count_ >= cfg_.nslaves) slaves_ready_.fire();

  std::vector<float> grad(Network::weight_count());
  std::vector<float> net_w(Network::weight_count());
  for (;;) {
    pvm::Message m = co_await t.recv(pvm::kAny, pvm::kAny);
    if (m.tag == kTagDone) break;
    CPE_ASSERT(m.tag == kTagNet);
    t.rbuf().upk_float(net_w);
    const Network net{std::vector<float>(net_w)};
    std::fill(grad.begin(), grad.end(), 0.0f);
    const double work = kernel_.partial(net, mine, grad);
    co_await t.compute(work);
    t.initsend().pk_float(grad);
    co_await t.send(m.src, kTagGrad);
  }
}

}  // namespace cpe::opt
