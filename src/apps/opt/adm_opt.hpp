// ADMopt: the Adaptive-Data-Movement version of Opt (paper §2.3, §4.3).
//
// Unlike MPVM/UPVM, ADM is an application-level methodology: the program
// itself is rewritten as an event-driven finite-state machine (Figure 4)
// whose states are computing / redistributing / inactive / done.  Work moves
// as *data*: when the global scheduler signals a withdraw, the affected
// slave's exemplars are re-partitioned onto the remaining slaves — at
// single-exemplar precision, across architectures, with nothing resembling
// process state ever migrating.
//
// Faithful details implemented here:
//  * the inner compute loop runs in chunks, checking the migration-event
//    flag between chunks (the "rapid response" requirement, whose cost is
//    the §4.3.1 overhead);
//  * a processed-flags array travels with redistributed exemplars so no
//    exemplar is reprocessed within an epoch;
//  * redistribution does not preserve exemplar ordering (§4.3: it affects
//    neither correctness nor performance), letting a withdrawing slave's
//    data be fragmented over several receivers;
//  * the master counts per-gradient processed-exemplar totals, so an epoch
//    completes correctly through any interleaving of redistributions;
//  * multiple queued events are handled in arrival order, none lost.
//
// Obtrusiveness (§4.3.2) is measured from event delivery at the withdrawing
// slave to its receipt of the master's resume ("all slaves have finished
// redistribution"); for ADM migration cost equals obtrusiveness (§4.3.3).
#pragma once

#include <optional>

#include "adm/events.hpp"
#include "adm/fsm.hpp"
#include "adm/partition.hpp"
#include "apps/opt/kernel.hpp"
#include "apps/opt/opt_app.hpp"
#include "pvm/fence.hpp"

namespace cpe::opt {

inline constexpr int kTagRedistReq = 110;   ///< slave -> master: event seen
inline constexpr int kTagRepart = 111;      ///< master -> slaves: new shares
inline constexpr int kTagMove = 112;        ///< slave -> slave: exemplars
inline constexpr int kTagMoveDone = 113;    ///< slave -> master: moves done
inline constexpr int kTagResume = 114;      ///< master -> slaves: go on
inline constexpr int kTagFinalReport = 115; ///< slave -> master: checksum
inline constexpr int kTagEventNotify = 116; ///< self: wake a blocked recv
inline constexpr int kTagSlaveLost = 117;   ///< pvm_notify: a slave exited

/// One completed ADM redistribution, as seen by the slave that triggered it.
struct AdmRedistStats {
  int slave = -1;
  adm::AdmEventKind kind = adm::AdmEventKind::kWithdraw;
  sim::Time event_time = 0;   ///< signal delivered to the slave
  sim::Time resume_time = 0;  ///< master's all-finished message received

  /// For ADM, obtrusiveness and migration cost coincide (§4.3.3).
  [[nodiscard]] sim::Time migration_time() const {
    return resume_time - event_time;
  }
};

struct AdmOptConfig {
  OptConfig opt{};
  /// Exemplars processed between event-flag checks.  Smaller = more
  /// responsive, more overhead.
  std::size_t chunk_items = 512;
  /// Optional per-slave capacity weights for repartitioning (empty = equal
  /// among active slaves).  Used by the granularity ablation.
  std::vector<double> partition_weights{};
};

class AdmOpt {
 public:
  AdmOpt(pvm::PvmSystem& vm, AdmOptConfig cfg);
  AdmOpt(const AdmOpt&) = delete;
  AdmOpt& operator=(const AdmOpt&) = delete;

  [[nodiscard]] sim::Co<OptResult> run();

  [[nodiscard]] int nslaves() const noexcept { return cfg_.opt.nslaves; }
  /// Slaves spawned so far (slave_tid is valid below this).
  [[nodiscard]] int slaves_spawned() const noexcept {
    return static_cast<int>(slave_tids_.size());
  }
  [[nodiscard]] pvm::Tid master_tid() const noexcept { return master_tid_; }
  [[nodiscard]] pvm::Tid slave_tid(int i) const {
    CPE_EXPECTS(i >= 0 && i < static_cast<int>(slave_tids_.size()));
    return slave_tids_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] sim::Trigger& slaves_ready() noexcept {
    return slaves_ready_;
  }
  [[nodiscard]] bool slaves_are_ready() const noexcept {
    return slaves_ready_count_ >= cfg_.opt.nslaves;
  }

  /// Post a migration event to slave `i` (what the global scheduler does).
  /// `epoch` stamps the command with the issuing scheduler's election term;
  /// with a fence installed, a stale epoch is refused and post_event returns
  /// false without posting anything.  Returns true when the event was posted.
  ///
  /// `ctx` links the event — and the redistribution it triggers — into the
  /// caller's trace: the master task inherits the context, so the
  /// "adm.repartition"/"adm.consensus" spans and the slaves' rejoin events
  /// all share one causal tree (DESIGN.md §10).
  bool post_event(int slave, adm::AdmEventKind kind,
                  std::optional<std::uint64_t> epoch = std::nullopt,
                  obs::TraceContext ctx = {});

  /// Replace the per-slave capacity weights used by the next repartition
  /// (what the GS's index placement policies do before posting a rebalance:
  /// lighter hosts get heavier weights, so the exemplars flow toward them).
  /// Empty restores equal shares; otherwise one non-negative weight per
  /// slave, with at least one strictly positive.
  void set_partition_weights(std::vector<double> w) {
    CPE_EXPECTS((w.empty() ||
                 w.size() == static_cast<std::size_t>(cfg_.opt.nslaves)) &&
                "AdmOpt partition weights must be empty or one per slave");
    double total = 0;
    for (double x : w) {
      CPE_EXPECTS(x >= 0 && "AdmOpt partition weights must be >= 0");
      total += x;
    }
    CPE_EXPECTS((w.empty() || total > 0) &&
                "AdmOpt partition weights must not all be zero");
    cfg_.partition_weights = std::move(w);
  }
  [[nodiscard]] const std::vector<double>& partition_weights() const noexcept {
    return cfg_.partition_weights;
  }

  /// Install the fencing token shared with the (replicated) scheduler.
  void set_fence(std::shared_ptr<pvm::MigrationFence> fence) noexcept {
    fence_ = std::move(fence);
  }
  [[nodiscard]] const std::shared_ptr<pvm::MigrationFence>& fence() const
      noexcept {
    return fence_;
  }

  [[nodiscard]] const std::vector<AdmRedistStats>& redistributions()
      const noexcept {
    return history_;
  }
  /// Sum of the slaves' final exemplar checksums (order-insensitive):
  /// equals OptResult::data_checksum when no data was lost or duplicated.
  [[nodiscard]] std::uint64_t final_data_checksum() const noexcept {
    return final_checksum_;
  }
  [[nodiscard]] std::size_t final_item_count() const noexcept {
    return final_items_;
  }

  /// Crash degradation: slaves lost to host crashes (implicit withdraw) and
  /// the exemplars that died with them.  The run completes on the survivors
  /// with a correspondingly smaller epoch.
  [[nodiscard]] bool slave_lost(int i) const {
    CPE_EXPECTS(i >= 0 && i < static_cast<int>(lost_.size()));
    return lost_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::size_t lost_item_count() const noexcept {
    return lost_items_;
  }

 private:
  [[nodiscard]] sim::Co<void> master_main(pvm::Task& t);
  [[nodiscard]] sim::Co<void> slave_main(pvm::Task& t, int me);
  [[nodiscard]] sim::Co<void> redistribute(pvm::Task& master,
                                           std::vector<std::size_t>& counts,
                                           const Network& net);
  [[nodiscard]] sim::Co<void> do_moves(pvm::Task& t, int me,
                                       ExemplarSet& mine,
                                       std::span<const std::size_t> current,
                                       std::span<const std::size_t> target);
  [[nodiscard]] std::vector<std::size_t> compute_targets(
      std::size_t total) const;

  pvm::PvmSystem* vm_;
  AdmOptConfig cfg_;
  GradientKernel kernel_;
  pvm::Tid master_tid_{};
  std::vector<pvm::Tid> slave_tids_;
  int slaves_ready_count_ = 0;
  sim::Trigger slaves_ready_;
  std::vector<bool> active_;
  std::vector<bool> lost_;
  std::size_t lost_items_ = 0;
  OptResult result_;
  sim::Trigger finished_;
  bool done_ = false;
  std::vector<AdmRedistStats> history_;
  std::uint64_t final_checksum_ = 0;
  std::size_t final_items_ = 0;
  std::shared_ptr<pvm::MigrationFence> fence_;
};

}  // namespace cpe::opt
