#include "apps/opt/adm_opt.hpp"

#include "pvm/body_pool.hpp"
#include "obs/metrics.hpp"

namespace cpe::opt {

namespace {
/// Pack an exemplar batch with its processed flags (they must travel, or a
/// receiver would reprocess work already counted — §4.3.1).
void pack_move(pvm::Buffer& b, const ExemplarSet& batch) {
  b.pk_float(batch.to_wire());
  b.pk_byte(std::as_bytes(std::span(batch.flags_image())));
}

ExemplarSet unpack_move(pvm::Buffer& b) {
  std::vector<float> wire(b.next_count());
  b.upk_float(wire);
  ExemplarSet batch = ExemplarSet::from_wire(wire);
  std::vector<std::uint8_t> flags(b.next_count());
  b.upk_byte(std::as_writable_bytes(std::span(flags)));
  batch.load_flags(flags);
  return batch;
}
}  // namespace

AdmOpt::AdmOpt(pvm::PvmSystem& vm, AdmOptConfig cfg)
    : vm_(&vm),
      cfg_(std::move(cfg)),
      kernel_(cfg_.opt.real_math, cfg_.opt.workload),
      slaves_ready_(vm.engine()),
      active_(static_cast<std::size_t>(cfg_.opt.nslaves), true),
      lost_(static_cast<std::size_t>(cfg_.opt.nslaves), false),
      finished_(vm.engine()) {
  CPE_EXPECTS(cfg_.opt.nslaves >= 1);
  CPE_EXPECTS(static_cast<int>(cfg_.opt.slave_hosts.size()) ==
              cfg_.opt.nslaves);
  CPE_EXPECTS(cfg_.chunk_items > 0);
  vm.register_program("admopt_master",
                      [this](pvm::Task& t) -> sim::Co<void> {
                        co_await master_main(t);
                      });
  for (int s = 0; s < cfg_.opt.nslaves; ++s) {
    vm.register_program("admopt_slave" + std::to_string(s),
                        [this, s](pvm::Task& t) -> sim::Co<void> {
                          co_await slave_main(t, s);
                        });
  }
}

sim::Co<OptResult> AdmOpt::run() {
  std::vector<pvm::Tid> tids =
      co_await vm_->spawn("admopt_master", 1, cfg_.opt.master_host);
  master_tid_ = tids[0];
  while (!done_) co_await finished_.wait();
  co_return result_;
}

bool AdmOpt::post_event(int slave, adm::AdmEventKind kind,
                        std::optional<std::uint64_t> epoch,
                        obs::TraceContext ctx) {
  CPE_EXPECTS(slave >= 0 && slave < cfg_.opt.nslaves);
  obs::SpanTracer& sp = vm_->spans();
  // Fencing: drop a deposed leader's event instead of redistributing twice.
  if (fence_ && epoch && !fence_->admit(*epoch)) {
    vm_->metrics().counter("adm.fenced").inc();
    vm_->trace().log("adm", "fenced slave=" + std::to_string(slave) +
                                " epoch=" + std::to_string(*epoch) +
                                " floor=" + std::to_string(fence_->floor()));
    const obs::SpanId fenced = sp.begin_span(ctx, "adm.event", "gs", slave);
    sp.annotate(fenced, "slave", std::to_string(slave));
    sp.annotate(fenced, "epoch", std::to_string(*epoch));
    sp.annotate(fenced, "floor", std::to_string(fence_->floor()));
    sp.end_span(fenced, obs::SpanStatus::kFenced);
    return false;
  }
  pvm::Task* master = vm_->find_logical(master_tid_);
  CPE_EXPECTS(master != nullptr);
  vm_->metrics().counter("adm.events.posted").inc();
  const obs::SpanId ev = sp.event(ctx, "adm.event",
                                  master->pvmd().host().name(),
                                  master->tid().raw());
  sp.annotate(ev, "slave", std::to_string(slave));
  sp.annotate(ev, "kind", std::string(adm::to_string(kind)));
  if (epoch) sp.annotate(ev, "epoch", std::to_string(*epoch));
  // The master inherits the context: the redistribution this event triggers
  // (and everything it sends) continues the caller's trace.
  master->set_trace_context(sp.context_of(ev));
  adm::EventQueue::post(*master, slave_tid(slave),
                        adm::AdmEvent(kind, slave));
  return true;
}

std::vector<std::size_t> AdmOpt::compute_targets(std::size_t total) const {
  std::vector<double> weights(static_cast<std::size_t>(cfg_.opt.nslaves));
  for (int s = 0; s < cfg_.opt.nslaves; ++s) {
    const auto i = static_cast<std::size_t>(s);
    const double base = cfg_.partition_weights.empty()
                            ? 1.0
                            : cfg_.partition_weights[i];
    weights[i] = active_[i] ? base : 0.0;
  }
  return adm::weighted_shares(total, weights);
}

sim::Co<void> AdmOpt::redistribute(pvm::Task& master,
                                   std::vector<std::size_t>& counts,
                                   const Network& net) {
  const auto& ac = vm_->costs().adm;
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;

  // Consensus only among the surviving slaves: one lost in a crash can
  // neither receive the repartition nor acknowledge its moves.
  std::vector<pvm::Tid> live;
  for (int s = 0; s < cfg_.opt.nslaves; ++s)
    if (!lost_[static_cast<std::size_t>(s)])
      live.push_back(slave_tids_[static_cast<std::size_t>(s)]);

  // Coordination cost: collect state, compute the partition, reach global
  // consensus that every slave enters the redistribution state (§2.3).
  obs::StageTimer round(vm_->engine(),
                        vm_->metrics().histogram("adm.redist.round"));
  vm_->metrics().counter("adm.repartitions").inc();
  // Continue the trace of the adm.event that triggered this round (a fresh
  // trace when the round is self-initiated, e.g. the initial partition).
  obs::SpanTracer& sp = vm_->spans();
  const std::string& mhost = master.pvmd().host().name();
  const obs::SpanId repart = sp.begin_span(
      master.trace_context(), "adm.repartition", mhost, master.tid().raw());
  sp.annotate(repart, "slaves", std::to_string(live.size()));
  sp.annotate(repart, "items", std::to_string(total));
  master.set_trace_context(sp.context_of(repart));
  co_await master.compute(ac.repartition_fixed);
  const std::vector<std::size_t> target = compute_targets(total);

  std::vector<std::int32_t> cur32(counts.begin(), counts.end());
  std::vector<std::int32_t> tgt32(target.begin(), target.end());
  master.initsend().pk_int(cur32);
  master.sbuf().pk_int(tgt32);
  co_await master.mcast(live, kTagRepart);

  // Global consensus: every surviving slave reports its moves complete.
  const obs::SpanId consensus = sp.begin_span(
      sp.context_of(repart), "adm.consensus", mhost, master.tid().raw());
  for (std::size_t s = 0; s < live.size(); ++s)
    co_await master.recv(pvm::kAny, kTagMoveDone);
  vm_->metrics().counter("adm.consensus.rounds").inc();
  sp.end_span(consensus, obs::SpanStatus::kOk);

  // Resume carries the current network so a slave rejoining mid-epoch can
  // take part in it.
  master.initsend().pk_float(net.weights());
  co_await master.mcast(live, kTagResume);
  counts.assign(target.begin(), target.end());
  sp.end_span(repart, obs::SpanStatus::kOk);
  master.clear_trace_context();
  vm_->trace().log("adm", "redistribution complete");
}

sim::Co<void> AdmOpt::master_main(pvm::Task& t) {
  sim::Engine& eng = vm_->engine();

  for (int s = 0; s < cfg_.opt.nslaves; ++s) {
    std::vector<pvm::Tid> kid = co_await t.spawn(
        "admopt_slave" + std::to_string(s), 1,
        cfg_.opt.slave_hosts[static_cast<std::size_t>(s)]);
    slave_tids_.push_back(kid[0]);
    // Watch for slaves dying in host crashes (implicit withdraw, below).
    vm_->notify_exit(t.tid(), kid[0], kTagSlaveLost);
  }
  // Clock starts once the VPs exist (see PvmOpt::master_main).
  result_.start_time = eng.now();

  sim::Rng rng(cfg_.opt.seed);
  ExemplarSet data = ExemplarSet::synthesize_bytes(cfg_.opt.data_bytes, rng);
  result_.data_checksum = data.checksum();
  std::size_t total_items = data.size();
  t.process().image().data_bytes = data.bytes() + Network::bytes();

  std::vector<std::size_t> counts = adm::equal_shares(
      total_items, static_cast<std::size_t>(cfg_.opt.nslaves));
  {
    std::vector<ExemplarSet> slices = data.split(counts);
    for (int s = 0; s < cfg_.opt.nslaves; ++s) {
      t.initsend().pk_float(
          slices[static_cast<std::size_t>(s)].to_wire());
      co_await t.send(slave_tids_[static_cast<std::size_t>(s)], kTagData);
    }
  }

  Network net(cfg_.opt.seed);
  Network::CgState cg;
  std::vector<float> grad(Network::weight_count());
  std::vector<float> partial(Network::weight_count());

  // A slave lost in a host crash is an implicit withdraw: its exemplars
  // died with it, so the epoch shrinks and the run degrades to the
  // survivors instead of aborting.  Returns true on a new loss.
  auto mark_lost = [&](pvm::Tid gone) -> bool {
    for (int s = 0; s < cfg_.opt.nslaves; ++s) {
      const auto i = static_cast<std::size_t>(s);
      if (slave_tids_[i].raw() != gone.raw() || lost_[i]) continue;
      lost_[i] = true;
      active_[i] = false;
      lost_items_ += counts[i];
      total_items -= std::min(total_items, counts[i]);
      counts[i] = 0;
      vm_->trace().log("adm", "master: slave " + std::to_string(s) +
                                  " lost in a crash (implicit withdraw, " +
                                  std::to_string(lost_items_) +
                                  " exemplars lost so far)");
      return true;
    }
    return false;
  };

  for (int iter = 0; iter < cfg_.opt.iterations; ++iter) {
    // Broadcast the net to slaves that currently hold data.
    std::vector<pvm::Tid> holders;
    for (int s = 0; s < cfg_.opt.nslaves; ++s)
      if (counts[static_cast<std::size_t>(s)] > 0)
        holders.push_back(slave_tids_[static_cast<std::size_t>(s)]);
    t.initsend().pk_float(net.weights());
    co_await t.mcast(holders, kTagNet);

    // Collect gradient contributions until every exemplar of the epoch is
    // accounted for, handling redistribution requests as they arrive.
    std::fill(grad.begin(), grad.end(), 0.0f);
    std::size_t processed_total = 0;
    while (processed_total < total_items) {
      pvm::Message m = co_await t.recv(pvm::kAny, pvm::kAny);
      if (m.tag == kTagGrad) {
        t.rbuf().upk_float(partial);
        const auto count = static_cast<std::size_t>(t.rbuf().upk_int());
        for (std::size_t i = 0; i < grad.size(); ++i) grad[i] += partial[i];
        processed_total += count;
      } else if (m.tag == kTagRedistReq) {
        const auto kind =
            static_cast<adm::AdmEventKind>(t.rbuf().upk_int());
        const int slave = t.rbuf().upk_int();
        const auto i = static_cast<std::size_t>(slave);
        if (kind == adm::AdmEventKind::kWithdraw)
          active_[i] = false;
        else if (kind == adm::AdmEventKind::kRejoin)
          active_[i] = true;
        vm_->trace().log("adm", std::string("master: ") +
                                    adm::to_string(kind) + " slave " +
                                    std::to_string(slave));
        co_await redistribute(t, counts, net);
      } else if (m.tag == kTagSlaveLost) {
        const pvm::Tid gone(t.rbuf().upk_int());
        const bool crashed = t.rbuf().upk_int() != 0;
        // Normal exits (crashed == 0) need no reaction; the final-report
        // protocol covers them.
        if (crashed && mark_lost(gone))
          co_await redistribute(t, counts, net);
      }
    }
    co_await t.compute(cfg_.opt.workload.apply_seconds);
    net.apply_cg_step(grad, cg);
    ++result_.iterations_done;
  }

  std::vector<pvm::Tid> live;
  for (int s = 0; s < cfg_.opt.nslaves; ++s)
    if (!lost_[static_cast<std::size_t>(s)])
      live.push_back(slave_tids_[static_cast<std::size_t>(s)]);
  t.initsend().pk_int(0);
  co_await t.mcast(live, kTagDone);
  // Collect final reports (data conservation check) from the survivors; a
  // slave crashing this late simply stops being expected.
  std::size_t expected = live.size();
  std::size_t reports = 0;
  while (reports < expected) {
    pvm::Message m = co_await t.recv(pvm::kAny, pvm::kAny);
    if (m.tag == kTagFinalReport) {
      final_checksum_ += static_cast<std::uint64_t>(t.rbuf().upk_long());
      final_items_ += static_cast<std::size_t>(t.rbuf().upk_int());
      ++reports;
    } else if (m.tag == kTagSlaveLost) {
      const pvm::Tid gone(t.rbuf().upk_int());
      if (t.rbuf().upk_int() != 0 && mark_lost(gone) && expected > 0)
        --expected;
    }
    // Anything else (a stale gradient flushed just before kTagDone) is
    // simply drained.
  }
  result_.end_time = eng.now();
  result_.net_checksum = net.checksum();
  done_ = true;
  finished_.fire();
}

sim::Co<void> AdmOpt::do_moves(pvm::Task& t, int me, ExemplarSet& mine,
                               std::span<const std::size_t> current,
                               std::span<const std::size_t> target) {
  const auto& ac = vm_->costs().adm;
  const std::vector<adm::Transfer> plan = adm::plan_moves(current, target);
  for (const adm::Transfer& mv : plan) {
    if (mv.from == me) {
      ExemplarSet batch = mine.take_back(mv.count);
      pack_move(t.initsend(), batch);
      co_await t.send(slave_tids_[static_cast<std::size_t>(mv.to)], kTagMove);
    } else if (mv.to == me) {
      pvm::Message m = co_await t.recv(
          slave_tids_[static_cast<std::size_t>(mv.from)].raw(), kTagMove);
      ExemplarSet batch = unpack_move(t.rbuf());
      // Integrate: copy into the working set and extend the flag array.
      co_await t.compute(static_cast<double>(batch.bytes()) * 8.0 /
                         ac.integrate_bps);
      mine.append(batch);
    }
  }
}

sim::Co<void> AdmOpt::slave_main(pvm::Task& t, int me) {
  sim::Engine& eng = vm_->engine();
  const double overhead = vm_->costs().adm.inner_loop_overhead;

  // Figure 4: the coarse-level FSM.
  adm::Fsm fsm(vm_->trace(), "adm_slave" + std::to_string(me), "computing");
  fsm.add_state("redistributing");
  fsm.add_state("inactive");
  fsm.add_state("done");
  fsm.allow("computing", "redistributing");
  fsm.allow("redistributing", "computing");
  fsm.allow("redistributing", "inactive");
  fsm.allow("inactive", "redistributing");
  fsm.allow("computing", "done");
  fsm.allow("inactive", "done");

  // Event delivery: queue the stamped event and poke the mailbox so a recv
  // blocked anywhere wakes up.
  std::deque<adm::EventQueue::Stamped> events;
  t.set_control_handler(adm::kTagAdmEvent, [&events, &t, &eng](
                                               pvm::Message m) {
    events.emplace_back(adm::AdmEvent::decode(*m.body), eng.now());
    t.mailbox().push(
        pvm::Message(m.src, t.tid(), kTagEventNotify,
                     pvm::make_body()));
  });

  // Initial slice.
  co_await t.recv(pvm::kAny, kTagData);
  std::vector<float> wire(t.rbuf().next_count());
  t.rbuf().upk_float(wire);
  ExemplarSet mine = ExemplarSet::from_wire(wire);
  wire.clear();
  wire.shrink_to_fit();
  t.process().image().data_bytes = mine.bytes();
  if (++slaves_ready_count_ >= cfg_.opt.nslaves) slaves_ready_.fire();

  std::optional<Network> net;
  std::vector<float> grad(Network::weight_count(), 0.0f);
  std::vector<float> net_w(Network::weight_count());
  std::int32_t epoch_processed = 0;
  // After reporting an event, the slave suspends its computation until the
  // master's repartition arrives (rapid, unobtrusive response — §2.3).
  bool awaiting_repart = false;
  // Stats for redistributions this slave triggered.  A FIFO: several events
  // can be outstanding at once (the paper's "multiple, simultaneous
  // migration events must be correctly queued"), and redistributions
  // complete in request order.
  std::deque<AdmRedistStats> open_stats;

  bool done = false;
  while (!done) {
    // --- Handle queued migration events (rapid response, §2.3) -----------
    while (!events.empty()) {
      const adm::EventQueue::Stamped ev = events.front();
      events.pop_front();
      AdmRedistStats stat;
      stat.slave = me;
      stat.kind = ev.event.kind;
      stat.event_time = ev.arrived_at;
      open_stats.push_back(stat);
      t.initsend().pk_int(static_cast<std::int32_t>(ev.event.kind));
      t.sbuf().pk_int(me);
      co_await t.send(master_tid_, kTagRedistReq);
      awaiting_repart = true;
      // A withdrawing slave flushes its partial gradient: it will not see
      // the end of this epoch.
      if (ev.event.kind == adm::AdmEventKind::kWithdraw && net.has_value() &&
          epoch_processed > 0) {
        t.initsend().pk_float(grad);
        t.sbuf().pk_int(epoch_processed);
        co_await t.send(master_tid_, kTagGrad);
        std::fill(grad.begin(), grad.end(), 0.0f);
        epoch_processed = 0;
      }
    }

    // --- Inner compute loop (chunked, with the adaptivity overhead) ------
    if (fsm.state() == "computing" && net.has_value() && !awaiting_repart &&
        mine.unprocessed_count() > 0) {
      const GradientKernel::ChunkResult r =
          kernel_.chunk(*net, mine, grad, cfg_.chunk_items, overhead);
      epoch_processed += static_cast<std::int32_t>(r.items);
      co_await t.compute(r.work);
      if (mine.unprocessed_count() == 0) {
        // My share of the epoch is complete.
        t.initsend().pk_float(grad);
        t.sbuf().pk_int(epoch_processed);
        co_await t.send(master_tid_, kTagGrad);
        std::fill(grad.begin(), grad.end(), 0.0f);
        epoch_processed = 0;
      }
      // The flag check: fall through to the mailbox only when something
      // actually arrived.
      if (events.empty() && !t.probe(pvm::kAny, pvm::kAny)) continue;
      if (!events.empty()) continue;
    }

    // --- Event-driven dispatch -------------------------------------------
    pvm::Message m = co_await t.recv(pvm::kAny, pvm::kAny);
    if (m.tag == kTagEventNotify) {
      continue;  // loop top drains the event queue
    } else if (m.tag == kTagNet) {
      t.rbuf().upk_float(net_w);
      net.emplace(std::vector<float>(net_w));
      std::fill(grad.begin(), grad.end(), 0.0f);
      epoch_processed = 0;
      mine.reset_processed();
    } else if (m.tag == kTagRepart) {
      fsm.transition("redistributing");
      awaiting_repart = false;
      // Flush the open partial gradient: items this slave already
      // processed may be about to move away (their flags travel), and a
      // slave that ends up empty or inactive would otherwise never report
      // them — stalling the epoch's count-based completion.
      if (net.has_value() && epoch_processed > 0) {
        t.initsend().pk_float(grad);
        t.sbuf().pk_int(epoch_processed);
        co_await t.send(master_tid_, kTagGrad);
        std::fill(grad.begin(), grad.end(), 0.0f);
        epoch_processed = 0;
      }
      std::vector<std::int32_t> cur32(t.rbuf().next_count());
      t.rbuf().upk_int(cur32);
      std::vector<std::int32_t> tgt32(t.rbuf().next_count());
      t.rbuf().upk_int(tgt32);
      const std::vector<std::size_t> cur(cur32.begin(), cur32.end());
      const std::vector<std::size_t> tgt(tgt32.begin(), tgt32.end());
      co_await do_moves(t, me, mine, cur, tgt);
      t.process().image().data_bytes = mine.bytes();
      t.initsend().pk_int(static_cast<std::int32_t>(mine.size()));
      co_await t.send(master_tid_, kTagMoveDone);
      // Wait for the master's global all-finished message.
      co_await t.recv(pvm::kAny, kTagResume);
      // The resume message carried the repartition's trace context (adopted
      // by the recv above): mark this slave rejoining the computation.
      vm_->spans().annotate(
          vm_->spans().event(t.trace_context(), "adm.rejoin",
                             t.pvmd().host().name(), t.tid().raw()),
          "slave", std::to_string(me));
      // Trace boundary: post-rejoin gradient traffic is ordinary work and
      // must not keep riding (and paying for) the repartition's context.
      t.clear_trace_context();
      if (!net.has_value() && !mine.empty()) {
        // Rejoined mid-epoch: adopt the epoch's network from the resume.
        t.rbuf().upk_float(net_w);
        net.emplace(std::vector<float>(net_w));
      }
      if (!open_stats.empty()) {
        open_stats.front().resume_time = eng.now();
        history_.push_back(open_stats.front());
        open_stats.pop_front();
      }
      fsm.transition(mine.empty() ? "inactive" : "computing");
    } else if (m.tag == kTagResume) {
      // A resume not paired with a Repart we processed (should not happen;
      // tolerated for robustness).
    } else if (m.tag == kTagDone) {
      t.initsend().pk_long(static_cast<std::int64_t>(mine.checksum()));
      t.sbuf().pk_int(static_cast<std::int32_t>(mine.size()));
      co_await t.send(master_tid_, kTagFinalReport);
      fsm.transition("done");
      done = true;
    }
  }
}

}  // namespace cpe::opt
