// SPMD_opt: the UPVM version of Opt (paper §4.2).
//
// UPVM supports SPMD applications only, so the master/slave structure is
// expressed inside one program: ULP instance 0 acts exclusively as the
// master, the rest are slaves.  On the paper's two hosts with three ULPs the
// round-robin placement puts the master and one slave in the same container
// process on host1 — exactly the layout whose local master<->slave traffic
// UPVM's buffer hand-off accelerates (Table 3).
#pragma once

#include "apps/opt/kernel.hpp"
#include "apps/opt/opt_app.hpp"
#include "upvm/upvm.hpp"

namespace cpe::opt {

class SpmdOpt {
 public:
  /// `cfg.nslaves` slaves => nslaves+1 ULPs.  `upvm` must be started.
  SpmdOpt(upvm::Upvm& upvm, OptConfig cfg);
  SpmdOpt(const SpmdOpt&) = delete;
  SpmdOpt& operator=(const SpmdOpt&) = delete;

  /// Launch the SPMD program and wait for all ULPs to finish.
  [[nodiscard]] sim::Co<OptResult> run();

  /// ULP instance of slave `i` (slave i == ULP i+1).
  [[nodiscard]] static int slave_inst(int i) noexcept { return i + 1; }

  /// Fires when every slave ULP has received its data.
  [[nodiscard]] sim::Trigger& slaves_ready() noexcept {
    return slaves_ready_;
  }
  [[nodiscard]] bool slaves_are_ready() const noexcept {
    return slaves_ready_count_ >= cfg_.nslaves;
  }

 private:
  [[nodiscard]] sim::Co<void> ulp_main(upvm::Ulp& u);
  [[nodiscard]] sim::Co<void> master_main(upvm::Ulp& u);
  [[nodiscard]] sim::Co<void> slave_main(upvm::Ulp& u);

  upvm::Upvm* upvm_;
  OptConfig cfg_;
  GradientKernel kernel_;
  int slaves_ready_count_ = 0;
  sim::Trigger slaves_ready_;
  OptResult result_;
};

}  // namespace cpe::opt
