// Training data for Opt, the neural-network speech classifier used in the
// paper's evaluation (§4.0).
//
// The paper's sets are proprietary digitized-speech exemplars: float feature
// vectors, each carrying its category as a scalar.  We synthesize the same
// structure — Gaussian class clusters in feature space — at the paper's data
// sizes (0.6 to 20.8 MB; 9 MB for the quiet-case runs).  The vectors are
// real data: they are packed into PVM messages byte-for-byte, moved by ADM
// redistribution, and (at small scale) actually trained on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "calib/costs.hpp"
#include "sim/random.hpp"

namespace cpe::opt {

inline constexpr int kInputDim = 64;   ///< features per exemplar
inline constexpr int kClasses = 16;    ///< speech categories

class ExemplarSet {
 public:
  ExemplarSet() = default;

  /// Synthesize `n` exemplars: class c is a Gaussian cluster around a
  /// deterministic per-class center.
  static ExemplarSet synthesize(std::size_t n, sim::Rng& rng);

  /// Synthesize the paper's "data size" in bytes (rounded down to whole
  /// exemplars; 260 B each).
  static ExemplarSet synthesize_bytes(std::size_t bytes, sim::Rng& rng) {
    return synthesize(bytes / calib::OptWorkload::exemplar_bytes, rng);
  }

  [[nodiscard]] std::size_t size() const noexcept { return category_.size(); }
  [[nodiscard]] bool empty() const noexcept { return category_.empty(); }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return size() * calib::OptWorkload::exemplar_bytes;
  }

  [[nodiscard]] std::span<const float> features(std::size_t i) const {
    CPE_EXPECTS(i < size());
    return {features_.data() + i * kInputDim, kInputDim};
  }
  [[nodiscard]] int category(std::size_t i) const {
    CPE_EXPECTS(i < size());
    return category_[i];
  }

  // -- Processed flags (ADM §4.3.1) -----------------------------------------
  /// The flag array ADMopt maintains so reshuffled exemplars are never
  /// reprocessed within an epoch.
  [[nodiscard]] bool processed(std::size_t i) const {
    CPE_EXPECTS(i < size());
    return processed_[i] != 0;
  }
  void mark_processed(std::size_t i) {
    CPE_EXPECTS(i < size());
    processed_[i] = 1;
  }
  void reset_processed() {
    std::fill(processed_.begin(), processed_.end(), std::uint8_t{0});
  }
  [[nodiscard]] std::size_t unprocessed_count() const;

  /// The raw flag array, for shipping flags along with moved exemplars.
  [[nodiscard]] const std::vector<std::uint8_t>& flags_image() const noexcept {
    return processed_;
  }
  void load_flags(std::span<const std::uint8_t> flags) {
    CPE_EXPECTS(flags.size() == size());
    processed_.assign(flags.begin(), flags.end());
  }

  // -- Redistribution primitives ---------------------------------------------
  /// Remove `count` exemplars from the back (flags travel with them).  ADM
  /// need not preserve ordering (§4.3), so taking from the back is fine.
  [[nodiscard]] ExemplarSet take_back(std::size_t count);
  /// Append another set's exemplars (a receiving slave integrating data).
  void append(const ExemplarSet& other);

  /// Split into `shares[i]`-sized sets (initial distribution).  Consumes
  /// this set.
  [[nodiscard]] std::vector<ExemplarSet> split(
      std::span<const std::size_t> shares);

  // -- Wire form ---------------------------------------------------------------
  /// Flat float image: 65 floats per exemplar (64 features + category), the
  /// form Opt packs into PVM messages.
  [[nodiscard]] std::vector<float> to_wire() const;
  static ExemplarSet from_wire(std::span<const float> wire);

  /// Order-insensitive content hash: redistribution must conserve the
  /// multiset of exemplars (DESIGN.md invariant 6).  Flags excluded.
  [[nodiscard]] std::uint64_t checksum() const;

 private:
  std::vector<float> features_;        // size * kInputDim
  std::vector<int> category_;          // size
  std::vector<std::uint8_t> processed_;  // size
};

}  // namespace cpe::opt
