// PVM_opt: the master/slave parallel Opt of the paper's evaluation (§4.0).
//
// One master VP and N slave VPs; the exemplars are distributed equally among
// the slaves at startup.  Per iteration the master broadcasts the network,
// each slave computes a partial gradient over its exemplars and sends it
// back, and the master combines the partials, applies the conjugate-gradient
// update, and repeats.  The paper's placement (master + slave1 on host1,
// slave2 on host2) is the default; the imbalance is benign because master
// and slave execution are "mutually exclusive in time".
//
// The exact same task programs run under stock PVM and under MPVM — the
// source-compatibility claim of §2.1.  Construct an mpvm::Mpvm on the
// PvmSystem (or don't) before PvmOpt::run(); nothing in this file changes.
#pragma once

#include <optional>

#include "apps/opt/kernel.hpp"
#include "pvm/system.hpp"

namespace cpe::opt {

/// Message tags of the Opt protocol.
inline constexpr int kTagData = 100;  ///< master -> slave: exemplar slice
inline constexpr int kTagNet = 101;   ///< master -> slaves: current network
inline constexpr int kTagGrad = 102;  ///< slave -> master: partial gradient
inline constexpr int kTagDone = 103;  ///< master -> slaves: training over

struct OptConfig {
  std::size_t data_bytes = 600'000;  ///< total training-set size
  int nslaves = 2;
  int iterations = 6;
  bool real_math = false;  ///< real back-prop vs modelled gradient
  std::uint64_t seed = 42;
  std::string master_host = "host1";
  std::vector<std::string> slave_hosts = {"host1", "host2"};
  calib::OptWorkload workload{};
};

struct OptResult {
  sim::Time start_time = 0;
  sim::Time end_time = 0;
  int iterations_done = 0;
  std::uint64_t net_checksum = 0;   ///< trained weights (transparency)
  std::uint64_t data_checksum = 0;  ///< initial exemplar multiset

  [[nodiscard]] sim::Time runtime() const { return end_time - start_time; }
};

/// Runner owning the PVM_opt application state for one run.
class PvmOpt {
 public:
  /// Registers the "opt_master" / "opt_slave" programs on `vm`.
  PvmOpt(pvm::PvmSystem& vm, OptConfig cfg);
  PvmOpt(const PvmOpt&) = delete;
  PvmOpt& operator=(const PvmOpt&) = delete;

  /// Run to completion (spawn master, wait for all tasks to exit).
  [[nodiscard]] sim::Co<OptResult> run();

  /// Logical tids, valid once slaves_ready() has fired (the slaves have
  /// been spawned and fed their data) — what migration benches target.
  [[nodiscard]] pvm::Tid master_tid() const noexcept { return master_tid_; }
  [[nodiscard]] pvm::Tid slave_tid(int i) const {
    CPE_EXPECTS(i >= 0 && i < static_cast<int>(slave_tids_.size()));
    return slave_tids_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] sim::Trigger& slaves_ready() noexcept {
    return slaves_ready_;
  }
  [[nodiscard]] bool slaves_are_ready() const noexcept {
    return slaves_ready_count_ >= cfg_.nslaves;
  }

  [[nodiscard]] const OptConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] sim::Co<void> master_main(pvm::Task& t);
  [[nodiscard]] sim::Co<void> slave_main(pvm::Task& t);

  pvm::PvmSystem* vm_;
  OptConfig cfg_;
  GradientKernel kernel_;
  pvm::Tid master_tid_{};
  std::vector<pvm::Tid> slave_tids_;
  int slaves_ready_count_ = 0;
  sim::Trigger slaves_ready_;
  OptResult result_;
  sim::Trigger finished_;
  bool done_ = false;
};

}  // namespace cpe::opt
