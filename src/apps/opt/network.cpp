#include "apps/opt/network.hpp"

#include <cmath>
#include <cstring>

#include "sim/random.hpp"

namespace cpe::opt {

namespace {
// Weight layout offsets.
constexpr std::size_t kW1 = 0;
constexpr std::size_t kB1 = kW1 + static_cast<std::size_t>(kInputDim) * kHidden;
constexpr std::size_t kW2 = kB1 + kHidden;
constexpr std::size_t kB2 = kW2 + static_cast<std::size_t>(kHidden) * kClasses;

struct Activations {
  float hidden[kHidden];
  float out[kClasses];
};

void forward_into(std::span<const float> w, std::span<const float> x,
                  Activations& a) {
  for (int h = 0; h < kHidden; ++h) {
    float acc = w[kB1 + static_cast<std::size_t>(h)];
    const float* row = w.data() + kW1 + static_cast<std::size_t>(h) * kInputDim;
    for (int d = 0; d < kInputDim; ++d) acc += row[d] * x[static_cast<std::size_t>(d)];
    a.hidden[h] = std::tanh(acc);
  }
  float max_z = -1e30f;
  float z[kClasses];
  for (int c = 0; c < kClasses; ++c) {
    float acc = w[kB2 + static_cast<std::size_t>(c)];
    const float* row = w.data() + kW2 + static_cast<std::size_t>(c) * kHidden;
    for (int h = 0; h < kHidden; ++h) acc += row[h] * a.hidden[h];
    z[c] = acc;
    max_z = std::max(max_z, acc);
  }
  float sum = 0;
  for (int c = 0; c < kClasses; ++c) {
    a.out[c] = std::exp(z[c] - max_z);
    sum += a.out[c];
  }
  for (int c = 0; c < kClasses; ++c) a.out[c] /= sum;
}
}  // namespace

Network::Network(std::uint64_t seed) : weights_(kWeights) {
  sim::Rng rng(seed);
  for (float& w : weights_)
    w = static_cast<float>(rng.normal(0.0, 0.1));
}

Network::Network(std::vector<float> weights) : weights_(std::move(weights)) {
  CPE_EXPECTS(weights_.size() == kWeights);
}

std::vector<float> Network::forward(std::span<const float> x) const {
  CPE_EXPECTS(x.size() == static_cast<std::size_t>(kInputDim));
  Activations a;
  forward_into(weights_, x, a);
  return std::vector<float>(a.out, a.out + kClasses);
}

double Network::accumulate_one(std::span<const float> x, int label,
                               std::span<float> grad) const {
  CPE_EXPECTS(grad.size() == kWeights);
  const std::span<const float> w = weights_;
  Activations a;
  forward_into(w, x, a);
  const double loss = -std::log(std::max(a.out[label], 1e-12f));

  // Output layer: dz[c] = p[c] - 1{c==label}.
  float dz[kClasses];
  for (int c = 0; c < kClasses; ++c)
    dz[c] = a.out[c] - (c == label ? 1.0f : 0.0f);
  // Hidden layer back-prop.
  float dh[kHidden] = {};
  for (int c = 0; c < kClasses; ++c) {
    const std::size_t row = kW2 + static_cast<std::size_t>(c) * kHidden;
    for (int h = 0; h < kHidden; ++h) {
      grad[row + static_cast<std::size_t>(h)] += dz[c] * a.hidden[h];
      dh[h] += dz[c] * w[row + static_cast<std::size_t>(h)];
    }
    grad[kB2 + static_cast<std::size_t>(c)] += dz[c];
  }
  for (int h = 0; h < kHidden; ++h) {
    const float dt = dh[h] * (1.0f - a.hidden[h] * a.hidden[h]);
    const std::size_t row = kW1 + static_cast<std::size_t>(h) * kInputDim;
    for (int d = 0; d < kInputDim; ++d)
      grad[row + static_cast<std::size_t>(d)] +=
          dt * x[static_cast<std::size_t>(d)];
    grad[kB1 + static_cast<std::size_t>(h)] += dt;
  }
  return loss;
}

double Network::accumulate_gradient(const ExemplarSet& set,
                                    std::span<float> grad,
                                    bool honor_flags) const {
  CPE_EXPECTS(grad.size() == kWeights);
  double loss = 0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (honor_flags && set.processed(i)) continue;
    loss += accumulate_one(set.features(i), set.category(i), grad);
  }
  return loss;
}

void Network::apply_cg_step(std::span<const float> grad, CgState& state,
                            float learning_rate) {
  CPE_EXPECTS(grad.size() == kWeights);
  if (state.direction.empty()) {
    state.direction.assign(grad.begin(), grad.end());
    for (float& d : state.direction) d = -d;
  } else {
    // Fletcher-Reeves: beta = <g,g> / <g_prev,g_prev>.
    double gg = 0, pp = 0;
    for (std::size_t i = 0; i < kWeights; ++i) {
      const double g = grad[i];
      const double pg = state.prev_grad[i];
      gg += g * g;
      pp += pg * pg;
    }
    const float beta = pp > 0 ? static_cast<float>(gg / pp) : 0.0f;
    for (std::size_t i = 0; i < kWeights; ++i)
      state.direction[i] = -grad[i] + beta * state.direction[i];
  }
  state.prev_grad.assign(grad.begin(), grad.end());
  for (std::size_t i = 0; i < kWeights; ++i)
    weights_[i] += learning_rate * state.direction[i];
}

double Network::loss_on(const ExemplarSet& set) const {
  if (set.empty()) return 0;
  double loss = 0;
  Activations a;
  for (std::size_t i = 0; i < set.size(); ++i) {
    forward_into(weights_, set.features(i), a);
    loss -= static_cast<double>(
        std::log(std::max(a.out[set.category(i)], 1e-12f)));
  }
  return loss / static_cast<double>(set.size());
}

double Network::accuracy_on(const ExemplarSet& set) const {
  if (set.empty()) return 0;
  std::size_t correct = 0;
  Activations a;
  for (std::size_t i = 0; i < set.size(); ++i) {
    forward_into(weights_, set.features(i), a);
    int best = 0;
    for (int c = 1; c < kClasses; ++c)
      if (a.out[c] > a.out[best]) best = c;
    if (best == set.category(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(set.size());
}

std::uint64_t Network::checksum() const {
  std::uint64_t h = 1469598103934665603ull;
  for (float f : weights_) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof bits);
    h ^= bits;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace cpe::opt
