#include "apps/opt/spmd_opt.hpp"

#include "adm/partition.hpp"

namespace cpe::opt {

SpmdOpt::SpmdOpt(upvm::Upvm& upvm, OptConfig cfg)
    : upvm_(&upvm),
      cfg_(std::move(cfg)),
      kernel_(cfg_.real_math, cfg_.workload),
      slaves_ready_(upvm.vm().engine()) {
  CPE_EXPECTS(cfg_.nslaves >= 1);
}

sim::Co<OptResult> SpmdOpt::run() {
  upvm_->run_spmd(
      [this](upvm::Ulp& u) -> sim::Co<void> { co_await ulp_main(u); },
      cfg_.nslaves + 1);
  co_await upvm_->wait_all_ulps();
  co_return result_;
}

sim::Co<void> SpmdOpt::ulp_main(upvm::Ulp& u) {
  if (u.inst() == 0)
    co_await master_main(u);
  else
    co_await slave_main(u);
}

sim::Co<void> SpmdOpt::master_main(upvm::Ulp& u) {
  sim::Engine& eng = upvm_->vm().engine();
  result_.start_time = eng.now();

  sim::Rng rng(cfg_.seed);
  ExemplarSet data = ExemplarSet::synthesize_bytes(cfg_.data_bytes, rng);
  result_.data_checksum = data.checksum();
  u.set_data_bytes(data.bytes() + Network::bytes());

  const std::vector<std::size_t> shares = adm::equal_shares(
      data.size(), static_cast<std::size_t>(cfg_.nslaves));
  std::vector<ExemplarSet> slices = data.split(shares);
  for (int s = 0; s < cfg_.nslaves; ++s) {
    u.initsend().pk_float(slices[static_cast<std::size_t>(s)].to_wire());
    co_await u.send(slave_inst(s), kTagData);
  }

  Network net(cfg_.seed);
  Network::CgState cg;
  std::vector<float> grad(Network::weight_count());
  std::vector<float> partial(Network::weight_count());

  for (int iter = 0; iter < cfg_.iterations; ++iter) {
    for (int s = 0; s < cfg_.nslaves; ++s) {
      u.initsend().pk_float(net.weights());
      co_await u.send(slave_inst(s), kTagNet);
    }
    std::fill(grad.begin(), grad.end(), 0.0f);
    for (int s = 0; s < cfg_.nslaves; ++s) {
      co_await u.recv(-1, kTagGrad);
      u.rbuf().upk_float(partial);
      for (std::size_t i = 0; i < grad.size(); ++i) grad[i] += partial[i];
    }
    co_await u.compute(cfg_.workload.apply_seconds);
    net.apply_cg_step(grad, cg);
    ++result_.iterations_done;
  }

  for (int s = 0; s < cfg_.nslaves; ++s) {
    u.initsend().pk_int(0);
    co_await u.send(slave_inst(s), kTagDone);
  }
  result_.end_time = eng.now();
  result_.net_checksum = net.checksum();
}

sim::Co<void> SpmdOpt::slave_main(upvm::Ulp& u) {
  co_await u.recv(0, kTagData);
  std::vector<float> wire(u.rbuf().next_count());
  u.rbuf().upk_float(wire);
  ExemplarSet mine = ExemplarSet::from_wire(wire);
  wire.clear();
  wire.shrink_to_fit();
  u.set_data_bytes(mine.bytes());
  u.set_heap_bytes(2 * Network::bytes());
  if (++slaves_ready_count_ >= cfg_.nslaves) slaves_ready_.fire();

  std::vector<float> grad(Network::weight_count());
  std::vector<float> net_w(Network::weight_count());
  for (;;) {
    pvm::Message m = co_await u.recv(-1, -1);
    if (m.tag == kTagDone) break;
    CPE_ASSERT(m.tag == kTagNet);
    u.rbuf().upk_float(net_w);
    const Network net{std::vector<float>(net_w)};
    std::fill(grad.begin(), grad.end(), 0.0f);
    const double work = kernel_.partial(net, mine, grad);
    co_await u.compute(work);
    u.initsend().pk_float(grad);
    co_await u.send(0, kTagGrad);
  }
}

}  // namespace cpe::opt
