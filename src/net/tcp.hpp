// Stream-connection model in the style of 1994 TCP over the shared Ethernet.
//
// Used for PVM's direct task-to-task route and for MPVM's state transfer to
// the skeleton process.  The model charges: a three-segment handshake, MSS
// segmentation with TCP/IP header overhead per segment, and acknowledgment
// frames that occupy the same shared medium (one ack per `ack_every` data
// segments).  On a quiet LAN the resulting goodput is ~0.9 x line rate —
// matching the paper's "raw TCP" lower-bound column in Table 2.
#pragma once

#include <any>
#include <memory>

#include "net/network.hpp"
#include "sim/channel.hpp"

namespace cpe::net {

struct TcpParams {
  std::size_t mss = 1460;          ///< payload per segment (MTU - 40)
  std::size_t header_bytes = 40;   ///< TCP 20 + IP 20
  std::size_t ack_payload = 40;    ///< header-only ack segment
  std::size_t ack_every = 1;       ///< data segments per ack
  sim::Time connect_proc = 2e-3;   ///< socket setup + accept processing
  /// How long an established stream rides out a detached peer before the
  /// connection is declared dead (DeliveryError).  Models the TCP
  /// retransmission back-off giving up.
  sim::Time stall_timeout = 5.0;
};

/// A bidirectional stream between two nodes.  Create with TcpStream::connect
/// (which charges the handshake); then either side may send().
class TcpStream {
 public:
  struct Delivery {
    std::size_t bytes = 0;
    std::any payload;
  };

  /// Open a connection (blocks for handshake + connection processing).
  /// Throws DeliveryError when either endpoint is detached.
  [[nodiscard]] static sim::Co<std::shared_ptr<TcpStream>> connect(
      Network& net, NodeId a, NodeId b, TcpParams params = {});

  /// Push `bytes` through the stream from `from`; completes when the final
  /// segment is delivered to the peer.  `payload` (optional) is handed to
  /// the peer's recv() at completion.  When the peer detaches mid-stream the
  /// connection stalls; after `stall_timeout` it throws DeliveryError.
  [[nodiscard]] sim::Co<void> send(NodeId from, std::size_t bytes,
                                   std::any payload = {});

  /// Receive the next delivery addressed to `at`.
  [[nodiscard]] sim::Co<Delivery> recv(NodeId at);

  [[nodiscard]] NodeId node_a() const noexcept { return a_; }
  [[nodiscard]] NodeId node_b() const noexcept { return b_; }
  [[nodiscard]] const TcpParams& params() const noexcept { return params_; }

  /// Time the model needs to push `bytes` through an *established* stream on
  /// an idle medium (analytic; used by tests as a cross-check).
  [[nodiscard]] sim::Time ideal_stream_time(std::size_t bytes) const;

  TcpStream(Network& net, NodeId a, NodeId b, TcpParams params);

 private:
  [[nodiscard]] bool local() const noexcept { return a_ == b_; }
  /// Block until both endpoints are attached; throws DeliveryError if the
  /// outage outlasts stall_timeout.
  [[nodiscard]] sim::Co<void> await_link(NodeId peer);

  Network& net_;
  NodeId a_;
  NodeId b_;
  TcpParams params_;
  sim::Channel<Delivery> to_a_;
  sim::Channel<Delivery> to_b_;
};

}  // namespace cpe::net
