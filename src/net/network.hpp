// The worknet fabric: node registry, shared Ethernet segment, and the
// reliable datagram service used by PVM daemons.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ethernet.hpp"
#include "sim/channel.hpp"
#include "sim/random.hpp"

namespace cpe::net {

/// Identifies a workstation on the network.
using NodeId = std::uint32_t;

/// A transport gave up on a peer: retransmissions exhausted, the local NIC
/// detached, or a stream stalled past its deadline.  Distinct from the
/// generic Error so migration and recovery code can tell "the network gave
/// up" apart from programming errors and roll back instead of corrupting
/// state.
class DeliveryError : public Error {
 public:
  DeliveryError(std::string what, NodeId dst, std::size_t fragment)
      : Error(std::move(what)), dst_(dst), fragment_(fragment) {}

  /// The unreachable destination node.
  [[nodiscard]] NodeId dst() const noexcept { return dst_; }
  /// Index of the fragment/segment that was undeliverable (0 for streams).
  [[nodiscard]] std::size_t fragment() const noexcept { return fragment_; }

 private:
  NodeId dst_;
  std::size_t fragment_;
};

/// A delivered message.  `bytes` is the modelled size on the wire; `payload`
/// carries the real in-simulation object (a packed PVM message, a task image,
/// ...) so that data movement is functional, not just timed.
///
/// NOTE: deliberately *not* an aggregate (user-provided constructor).  GCC 12
/// miscompiles prvalue aggregate-initialized arguments to by-value coroutine
/// parameters (the frame copy aliases the caller's temporary and its members
/// are destroyed twice).  Every type passed by value into a coroutine in this
/// codebase carries a user-provided constructor for this reason; see
/// tests/sim/coro_test.cpp (GccAggregateParamRegression).
struct Datagram {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint16_t port = 0;
  std::size_t bytes = 0;
  std::any payload;

  Datagram() noexcept {}
  Datagram(NodeId src_, NodeId dst_, std::uint16_t port_, std::size_t bytes_,
           std::any payload_ = {})
      : src(src_),
        dst(dst_),
        port(port_),
        bytes(bytes_),
        payload(std::move(payload_)) {}
};

/// Adversarial-network knobs (DESIGN.md §7).  Beyond loss and partition the
/// fabric can duplicate deliveries, reorder them within a bounded horizon,
/// stall a frame in a congestion burst, and flip payload bits on the wire.
/// All probabilities default to 0, i.e. a benign network.  Applied per
/// delivery/fragment by DatagramService and (corruption/burst only — TCP's
/// sequence numbers mask duplication and reordering end-to-end) per segment
/// by TcpStream.
struct AdversaryParams {
  double duplicate_probability = 0.0;  ///< deliver an extra, jittered copy
  double reorder_probability = 0.0;    ///< hold a delivery for up to horizon
  sim::Time reorder_horizon = 0.0;     ///< max extra delay for held/dup copies
  double corrupt_probability = 0.0;    ///< flip payload bits in a fragment
  double burst_probability = 0.0;      ///< stall a frame behind a burst
  sim::Time burst_delay = 0.0;         ///< length of the stall

  [[nodiscard]] bool any() const noexcept {
    return duplicate_probability > 0 || reorder_probability > 0 ||
           corrupt_probability > 0 || burst_probability > 0;
  }
};

struct DatagramParams {
  /// PVM daemons fragment large messages into ~4 KB UDP datagrams and ack
  /// each fragment; this stop-and-wait per-fragment turnaround is why the
  /// pvmd route is slower than a direct TCP connection.
  std::size_t fragment_bytes = 4096;
  std::size_t udp_ip_header = 28;       ///< UDP 8 + IP 20 per packet
  std::size_t ack_payload = 32;         ///< fragment-ack packet payload
  sim::Time per_fragment_proc = 800e-6; ///< daemon processing per fragment
  sim::Time retransmit_timeout = 50e-3;
  double loss_probability = 0.0;        ///< fault injection (tests)
  int max_retries = 20;
  /// Same-node delivery: a local-socket copy, no medium involved.
  double local_copy_bps = 30e6 * 8;     ///< ~30 MB/s 1994-era memcpy
  sim::Time local_fixed = 200e-6;
};

/// Reliable, ordered datagram transport between nodes, in the style of the
/// pvmd-pvmd UDP protocol: fragmentation, per-fragment acks, timeouts and
/// retransmission (lossy-network fault injection is supported for tests).
class DatagramService {
 public:
  using Handler = std::function<void(Datagram)>;
  /// Models what bit-corruption does to a payload in flight: garble it in
  /// place and report whether the receiver's integrity check catches the
  /// damage (true = detected, the fragment is discarded and retransmitted;
  /// false = the garbage is delivered).  Installed by the PVM layer, which
  /// owns the frame-checksum policy; with no hook installed corruption is
  /// always detected (a plain transport checksum with no payload to keep).
  using CorruptHook = std::function<bool(std::any&)>;

  DatagramService(Ethernet& ether, DatagramParams params, sim::Rng rng)
      : ether_(ether), params_(params), rng_(rng) {}

  [[nodiscard]] const DatagramParams& params() const noexcept {
    return params_;
  }
  void set_loss_probability(double p) noexcept {
    params_.loss_probability = p;
  }
  void set_adversary(const AdversaryParams& adv) noexcept { adversary_ = adv; }
  [[nodiscard]] const AdversaryParams& adversary() const noexcept {
    return adversary_;
  }
  void set_corrupt_hook(CorruptHook hook) { corrupt_hook_ = std::move(hook); }

  /// Register the receive handler for (node, port).  One handler per pair.
  void bind(NodeId node, std::uint16_t port, Handler handler);
  void unbind(NodeId node, std::uint16_t port);

  /// Send a datagram reliably; completes when the final fragment has been
  /// acknowledged.  The handler at (dst, port) fires when the last fragment
  /// is *delivered* (just before its ack).  Throws DeliveryError when the
  /// peer stays unreachable for max_retries or the local node is detached.
  [[nodiscard]] sim::Co<void> send(Datagram d);

  /// Fire-and-forget send: every fragment is transmitted exactly once, no
  /// acks, no retransmission.  A lost fragment silently discards the whole
  /// datagram (counted in drops_to).  This is the UDP the load-gossip layer
  /// wants: stale or missing load vectors are tolerable, head-of-line
  /// blocking on a dead peer is not.  Never throws for an unreachable peer;
  /// only a detached *local* node raises DeliveryError.
  [[nodiscard]] sim::Co<void> send_unreliable(Datagram d);

  [[nodiscard]] std::uint64_t datagrams_sent() const noexcept {
    return sent_;
  }
  /// Datagrams handed to send_unreliable() (delivered or not).
  [[nodiscard]] std::uint64_t unreliable_sent() const noexcept {
    return unreliable_sent_;
  }
  [[nodiscard]] std::uint64_t fragments_retransmitted() const noexcept {
    return retransmits_;
  }
  /// Sum of the payload bytes of every datagram handed to send() (before
  /// fragmentation/header overhead; the Ethernet counters cover the wire).
  [[nodiscard]] std::uint64_t payload_bytes_sent() const noexcept {
    return payload_bytes_sent_;
  }
  [[nodiscard]] std::uint64_t drops_total() const noexcept {
    std::uint64_t n = 0;
    for (const auto& [node, c] : drops_) n += c;
    return n;
  }
  [[nodiscard]] std::uint64_t delivery_errors_total() const noexcept {
    std::uint64_t n = 0;
    for (const auto& [node, c] : delivery_errors_) n += c;
    return n;
  }

  // -- Per-destination health counters ---------------------------------------
  // Operators (and the GS journal) want to know *why* a destination was
  // given up on.  drops_to counts fragments that vanished en route to a
  // node (detached peer, partition, or injected loss); delivery_errors_to
  // counts sends that exhausted the retry budget and threw DeliveryError.
  [[nodiscard]] std::uint64_t drops_to(NodeId dst) const noexcept {
    const auto it = drops_.find(dst);
    return it == drops_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t delivery_errors_to(NodeId dst) const noexcept {
    const auto it = delivery_errors_.find(dst);
    return it == delivery_errors_.end() ? 0 : it->second;
  }
  /// Adversary-injected duplicate deliveries aimed at a node.  Together with
  /// corrupt_to this lets blacklisting distinguish a lossy link from an
  /// adversarial one.
  [[nodiscard]] std::uint64_t duplicates_to(NodeId dst) const noexcept {
    const auto it = duplicates_.find(dst);
    return it == duplicates_.end() ? 0 : it->second;
  }
  /// Adversary-injected corruption events aimed at a node.
  [[nodiscard]] std::uint64_t corrupt_to(NodeId dst) const noexcept {
    const auto it = corrupt_.find(dst);
    return it == corrupt_.end() ? 0 : it->second;
  }

  // -- Per-axis injection counters (DESIGN.md §7) ----------------------------
  // The adversarial sweeps assert these are nonzero: chaos that provably
  // happened, not knobs that silently did nothing.
  [[nodiscard]] std::uint64_t duplicates_injected() const noexcept {
    return duplicates_injected_;
  }
  [[nodiscard]] std::uint64_t reorders_injected() const noexcept {
    return reorders_injected_;
  }
  [[nodiscard]] std::uint64_t bursts_injected() const noexcept {
    return bursts_injected_;
  }
  [[nodiscard]] std::uint64_t corrupt_injected() const noexcept {
    return corrupt_injected_;
  }
  /// Corruption events the receiver's checksum caught (fragment discarded;
  /// reliable sends retransmit, unreliable sends lose the datagram).
  [[nodiscard]] std::uint64_t corrupt_dropped() const noexcept {
    return corrupt_dropped_;
  }
  /// Corruption events that slipped past detection: garbage was delivered.
  /// Nonzero only when the PVM layer runs with frame checksums disabled.
  [[nodiscard]] std::uint64_t corrupt_delivered() const noexcept {
    return corrupt_delivered_;
  }

 private:
  void deliver(Datagram d);
  /// deliver(), but an unbound handler is a counted drop instead of an
  /// error: jittered (reordered/duplicated) deliveries can outlive the
  /// receiver's binding.
  bool try_deliver(Datagram d);
  /// Hand the reassembled datagram to the receiver, applying duplication
  /// and reordering: a duplicate schedules an extra jittered copy, a
  /// reorder holds the delivery itself for up to reorder_horizon while the
  /// (already sent) ack lets later datagrams overtake it.
  void inject_delivery(Datagram d);
  void deliver_later(Datagram d, sim::Time dt);
  /// Corruption roll for one fragment attempt.  Returns true when the
  /// fragment must be treated as lost (detected corruption); on an
  /// undetected flip `d`'s payload is garbled in place and delivery
  /// proceeds.  `last` marks the payload-carrying final fragment.
  bool corrupt_attempt(Datagram& d, bool last);
  [[nodiscard]] sim::Co<void> send_fragment_frames(std::size_t frag_payload);

  Ethernet& ether_;
  DatagramParams params_;
  sim::Rng rng_;
  AdversaryParams adversary_;
  CorruptHook corrupt_hook_;
  std::vector<std::pair<std::uint64_t, Handler>> handlers_;
  std::uint64_t sent_ = 0;
  std::uint64_t unreliable_sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t payload_bytes_sent_ = 0;
  std::uint64_t duplicates_injected_ = 0;
  std::uint64_t reorders_injected_ = 0;
  std::uint64_t bursts_injected_ = 0;
  std::uint64_t corrupt_injected_ = 0;
  std::uint64_t corrupt_dropped_ = 0;
  std::uint64_t corrupt_delivered_ = 0;
  std::unordered_map<NodeId, std::uint64_t> drops_;
  std::unordered_map<NodeId, std::uint64_t> delivery_errors_;
  std::unordered_map<NodeId, std::uint64_t> duplicates_;
  std::unordered_map<NodeId, std::uint64_t> corrupt_;
};

/// A workstation's attachment point plus the fabric that connects them.
class Network {
 public:
  explicit Network(sim::Engine& eng, EthernetParams eparams = {},
                   DatagramParams dparams = {}, std::uint64_t seed = 1)
      : eng_(eng),
        ether_(eng, eparams),
        rng_(seed),
        datagrams_(ether_, dparams, rng_.split()) {}

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }
  [[nodiscard]] Ethernet& ethernet() noexcept { return ether_; }
  [[nodiscard]] DatagramService& datagrams() noexcept { return datagrams_; }

  /// Install (or clear, with {}) the adversarial profile for the whole
  /// fabric: the datagram service picks it up immediately, TCP streams read
  /// it through adversary() on every segment.
  void set_adversary(const AdversaryParams& adv) noexcept {
    adversary_ = adv;
    datagrams_.set_adversary(adv);
  }
  [[nodiscard]] const AdversaryParams& adversary() const noexcept {
    return adversary_;
  }
  /// Shared dice for TCP-side injection (the datagram service rolls its
  /// own stream).
  [[nodiscard]] sim::Rng& adversary_rng() noexcept { return adv_rng_; }

  // TCP streams are transient objects; their injection counters live here.
  void note_tcp_corrupt() noexcept { ++tcp_corrupt_segments_; }
  void note_tcp_burst() noexcept { ++tcp_bursts_; }
  [[nodiscard]] std::uint64_t tcp_corrupt_segments() const noexcept {
    return tcp_corrupt_segments_;
  }
  [[nodiscard]] std::uint64_t tcp_bursts() const noexcept {
    return tcp_bursts_;
  }

  NodeId add_node(std::string name) {
    node_names_.push_back(std::move(name));
    return static_cast<NodeId>(node_names_.size() - 1);
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_names_.size();
  }
  [[nodiscard]] const std::string& node_name(NodeId id) const {
    CPE_EXPECTS(id < node_names_.size());
    return node_names_[id];
  }

 private:
  sim::Engine& eng_;
  Ethernet ether_;
  sim::Rng rng_;
  DatagramService datagrams_;
  AdversaryParams adversary_;
  sim::Rng adv_rng_{rng_.split()};
  std::uint64_t tcp_corrupt_segments_ = 0;
  std::uint64_t tcp_bursts_ = 0;
  std::vector<std::string> node_names_;
};

}  // namespace cpe::net
