#include "net/network.hpp"

#include <utility>

namespace cpe::net {

namespace {
constexpr std::uint64_t key_of(NodeId node, std::uint16_t port) {
  return (static_cast<std::uint64_t>(node) << 16) | port;
}
}  // namespace

void DatagramService::bind(NodeId node, std::uint16_t port, Handler handler) {
  CPE_EXPECTS(handler != nullptr);
  const std::uint64_t key = key_of(node, port);
  for (auto& [k, h] : handlers_) {
    if (k == key) {
      h = std::move(handler);
      return;
    }
  }
  handlers_.emplace_back(key, std::move(handler));
}

void DatagramService::unbind(NodeId node, std::uint16_t port) {
  const std::uint64_t key = key_of(node, port);
  std::erase_if(handlers_, [key](const auto& kv) { return kv.first == key; });
}

void DatagramService::deliver(Datagram d) {
  const std::uint64_t key = key_of(d.dst, d.port);
  for (auto& [k, h] : handlers_) {
    if (k == key) {
      h(std::move(d));
      return;
    }
  }
  throw Error("DatagramService: no handler bound for node " +
              std::to_string(d.dst) + " port " + std::to_string(d.port));
}

bool DatagramService::try_deliver(Datagram d) {
  const std::uint64_t key = key_of(d.dst, d.port);
  for (auto& [k, h] : handlers_) {
    if (k == key) {
      h(std::move(d));
      return true;
    }
  }
  return false;
}

void DatagramService::deliver_later(Datagram d, sim::Time dt) {
  // Engine callbacks are std::function (copyable); park the datagram behind
  // a shared_ptr so the lambda stays copyable without copying the payload.
  const NodeId dst = d.dst;
  auto held = std::make_shared<Datagram>(std::move(d));
  ether_.engine().schedule_in(dt, [this, held, dst] {
    if (!try_deliver(std::move(*held))) ++drops_[dst];
  });
}

void DatagramService::inject_delivery(Datagram d) {
  const AdversaryParams& adv = adversary_;
  if (adv.duplicate_probability > 0 &&
      rng_.chance(adv.duplicate_probability)) {
    // The fabric echoes the datagram: the receiver sees it twice, the
    // second copy a jitter later.  Dedup is the receiver's problem.
    ++duplicates_injected_;
    ++duplicates_[d.dst];
    const sim::Time jitter =
        adv.reorder_horizon > 0 ? rng_.uniform(0.0, adv.reorder_horizon) : 0.0;
    deliver_later(d, jitter);  // copy; the original continues below
  }
  if (adv.reorder_probability > 0 && adv.reorder_horizon > 0 &&
      rng_.chance(adv.reorder_probability)) {
    // Bounded reordering: this delivery sits in a queue for up to the
    // reorder horizon while its ack (already on the wire) lets subsequent
    // datagrams overtake it.
    ++reorders_injected_;
    deliver_later(std::move(d), rng_.uniform(0.0, adv.reorder_horizon));
    return;
  }
  deliver(std::move(d));
}

bool DatagramService::corrupt_attempt(Datagram& d, bool last) {
  ++corrupt_injected_;
  ++corrupt_[d.dst];
  bool detected = true;
  if (last && corrupt_hook_) {
    // Garble a copy: if the flip is detected the sender retransmits the
    // *original* fragment, so the pristine payload must survive.
    Datagram garbled = d;
    if (!corrupt_hook_(garbled.payload)) {
      detected = false;
      d = std::move(garbled);
    }
  }
  if (detected) {
    ++corrupt_dropped_;
    return true;
  }
  ++corrupt_delivered_;
  return false;
}

sim::Co<void> DatagramService::send_fragment_frames(std::size_t frag_payload) {
  // An IP datagram larger than the MTU is fragmented at the IP layer; each
  // wire frame carries up to mtu bytes including the IP/UDP header overhead.
  const std::size_t mtu = ether_.params().mtu;
  std::size_t remaining = frag_payload + params_.udp_ip_header;
  while (remaining > 0) {
    const std::size_t chunk = remaining < mtu ? remaining : mtu;
    co_await ether_.transmit_frame(chunk);
    remaining -= chunk;
  }
}

sim::Co<void> DatagramService::send(Datagram d) {
  sim::Engine& eng = ether_.engine();
  ++sent_;
  payload_bytes_sent_ += d.bytes;

  if (d.src == d.dst) {
    // Local delivery through a Unix-domain socket: copy-limited, no medium.
    const sim::Time t =
        params_.local_fixed +
        static_cast<double>(d.bytes) * 8.0 / params_.local_copy_bps;
    co_await sim::Delay(eng, t);
    deliver(std::move(d));
    co_return;
  }

  const std::size_t total = d.bytes;
  std::size_t sent_bytes = 0;
  std::size_t frag_index = 0;
  while (true) {
    const std::size_t frag = std::min(params_.fragment_bytes,
                                      total - sent_bytes);
    const bool last = sent_bytes + frag >= total;

    bool acked = false;
    for (int attempt = 0; !acked; ++attempt) {
      if (attempt > params_.max_retries) {
        ++delivery_errors_[d.dst];
        throw DeliveryError("DatagramService: fragment " +
                                std::to_string(frag_index) + " to node " +
                                std::to_string(d.dst) + " lost " +
                                std::to_string(attempt) + " times; giving up",
                            d.dst, frag_index);
      }
      if (!ether_.attached(d.src)) {
        ++delivery_errors_[d.dst];
        throw DeliveryError("DatagramService: local node " +
                                std::to_string(d.src) + " is detached",
                            d.dst, frag_index);
      }
      if (adversary_.burst_probability > 0 &&
          rng_.chance(adversary_.burst_probability)) {
        // Congestion burst: the fragment queues behind a traffic spike
        // before it even reaches the wire.
        ++bursts_injected_;
        co_await sim::Delay(eng, adversary_.burst_delay);
      }
      co_await send_fragment_frames(frag);
      co_await sim::Delay(eng, ether_.params().hop_latency);
      // A detached or partitioned-away receiver never acks: the fragment is
      // lost exactly like a wire drop, and the sender retransmits until the
      // retry budget runs out.  Short outages (a transient freeze) are
      // ridden out this way.
      const bool dropped = !ether_.reachable(d.src, d.dst) ||
                           (params_.loss_probability > 0 &&
                            rng_.chance(params_.loss_probability));
      if (dropped) {
        ++retransmits_;
        ++drops_[d.dst];
        co_await sim::Delay(eng, params_.retransmit_timeout);
        continue;
      }
      // Bit-corruption on the wire.  Detected (by the receiver's fragment
      // checksum or the PVM frame CRC) means no ack: the existing
      // retransmission path recovers, preserving exactly-once.  Undetected
      // means the garbled payload is delivered and acked like a clean one.
      if (adversary_.corrupt_probability > 0 &&
          rng_.chance(adversary_.corrupt_probability) &&
          corrupt_attempt(d, last)) {
        ++retransmits_;
        co_await sim::Delay(eng, params_.retransmit_timeout);
        continue;
      }
      // Receiving daemon processes the fragment, then acks it.
      co_await sim::Delay(eng, params_.per_fragment_proc);
      if (last) inject_delivery(std::move(d));
      co_await ether_.transmit_frame(params_.ack_payload +
                                     params_.udp_ip_header);
      co_await sim::Delay(eng, ether_.params().hop_latency);
      acked = true;
    }

    sent_bytes += frag;
    ++frag_index;
    if (last) co_return;
  }
}

sim::Co<void> DatagramService::send_unreliable(Datagram d) {
  sim::Engine& eng = ether_.engine();
  ++unreliable_sent_;
  payload_bytes_sent_ += d.bytes;

  if (d.src == d.dst) {
    const sim::Time t =
        params_.local_fixed +
        static_cast<double>(d.bytes) * 8.0 / params_.local_copy_bps;
    co_await sim::Delay(eng, t);
    deliver(std::move(d));
    co_return;
  }

  const std::size_t total = d.bytes;
  std::size_t sent_bytes = 0;
  while (true) {
    const std::size_t frag = std::min(params_.fragment_bytes,
                                      total - sent_bytes);
    const bool last = sent_bytes + frag >= total;

    if (!ether_.attached(d.src)) {
      ++delivery_errors_[d.dst];
      throw DeliveryError("DatagramService: local node " +
                              std::to_string(d.src) + " is detached",
                          d.dst, sent_bytes / params_.fragment_bytes);
    }
    if (adversary_.burst_probability > 0 &&
        rng_.chance(adversary_.burst_probability)) {
      ++bursts_injected_;
      co_await sim::Delay(eng, adversary_.burst_delay);
    }
    co_await send_fragment_frames(frag);
    co_await sim::Delay(eng, ether_.params().hop_latency);
    const bool dropped = !ether_.reachable(d.src, d.dst) ||
                         (params_.loss_probability > 0 &&
                          rng_.chance(params_.loss_probability));
    if (dropped) {
      // One fragment gone means the receiver can never reassemble: stop
      // wasting wire time on the rest of the datagram.
      ++drops_[d.dst];
      co_return;
    }
    // With no retransmission, detected corruption costs the whole datagram
    // — exactly the trade gossip signed up for.
    if (adversary_.corrupt_probability > 0 &&
        rng_.chance(adversary_.corrupt_probability) &&
        corrupt_attempt(d, last)) {
      ++drops_[d.dst];
      co_return;
    }
    co_await sim::Delay(eng, params_.per_fragment_proc);
    if (last) {
      inject_delivery(std::move(d));
      co_return;
    }
    sent_bytes += frag;
  }
}

}  // namespace cpe::net
