// Frame-level model of a shared 10 Mb/s Ethernet segment (the paper's
// testbed interconnect).
//
// The medium is a serially-reusable resource: one frame transmits at a time,
// contending senders queue FIFO (a fair approximation of CSMA/CD on the
// paper's "quiet system").  Every transmission pays per-frame overhead
// (preamble, MAC header, FCS, inter-frame gap) and frames below the minimum
// Ethernet frame size are padded, so small-message costs are modelled
// faithfully.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/coro.hpp"
#include "sim/wait.hpp"

namespace cpe::net {

struct EthernetParams {
  double bandwidth_bps = 10e6;        ///< 10 Mb/s, per the paper
  std::size_t mtu = 1500;             ///< max payload per frame (IP packet)
  std::size_t header_bytes = 18;      ///< MAC header 14 + FCS 4
  std::size_t preamble_bytes = 8;     ///< preamble + SFD
  std::size_t gap_bytes = 12;         ///< inter-frame gap, in byte-times
  std::size_t min_payload = 46;       ///< frames are padded up to this
  sim::Time hop_latency = 100e-6;     ///< NIC + driver processing per frame
};

class Ethernet {
 public:
  Ethernet(sim::Engine& eng, EthernetParams params = {})
      : eng_(eng), params_(params), medium_(eng, 1), attach_changed_(eng) {
    CPE_EXPECTS(params.bandwidth_bps > 0);
    CPE_EXPECTS(params.mtu > 0);
  }

  [[nodiscard]] const EthernetParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] sim::Engine& engine() const noexcept { return eng_; }

  /// Wire time for one frame carrying `payload` bytes (<= mtu), including
  /// framing overhead, padding, and the inter-frame gap.
  [[nodiscard]] sim::Time frame_time(std::size_t payload) const {
    CPE_EXPECTS(payload <= params_.mtu);
    const std::size_t p =
        payload < params_.min_payload ? params_.min_payload : payload;
    const std::size_t wire_bytes =
        p + params_.header_bytes + params_.preamble_bytes + params_.gap_bytes;
    return static_cast<double>(wire_bytes) * 8.0 / params_.bandwidth_bps;
  }

  /// Occupy the medium for one frame of `payload` bytes; completes when the
  /// frame is fully on the wire.  Delivery latency (hop_latency) is the
  /// caller's to add — it overlaps with the next frame's transmission.
  [[nodiscard]] sim::Co<void> transmit_frame(std::size_t payload) {
    co_await medium_.acquire();
    total_frames_ += 1;
    total_payload_bytes_ += payload;
    co_await sim::Delay(eng_, frame_time(payload));
    medium_.release();
  }

  /// Number of frames needed for `bytes` of payload.
  [[nodiscard]] std::size_t frames_for(std::size_t bytes) const {
    return bytes == 0 ? 1 : (bytes + params_.mtu - 1) / params_.mtu;
  }

  /// Lower bound: wire time for `bytes` of payload with full-MTU frames and
  /// no protocol traffic.  Used as a sanity reference in tests.
  [[nodiscard]] sim::Time ideal_transfer_time(std::size_t bytes) const {
    const std::size_t full = bytes / params_.mtu;
    const std::size_t rest = bytes % params_.mtu;
    sim::Time t = static_cast<double>(full) * frame_time(params_.mtu);
    if (rest > 0) t += frame_time(rest);
    return t;
  }

  [[nodiscard]] std::uint64_t total_frames() const noexcept {
    return total_frames_;
  }
  [[nodiscard]] std::uint64_t total_payload_bytes() const noexcept {
    return total_payload_bytes_;
  }
  [[nodiscard]] std::size_t queued_senders() const noexcept {
    return medium_.waiting();
  }

  // -- Attachment (fault model) ---------------------------------------------
  // A node is attached unless a host crash, freeze, or network partition
  // detached it.  Frames *to* a detached node vanish (no ack, so reliable
  // protocols retransmit and eventually give up); frames *from* one cannot
  // be sent at all.  Transports poll attached() and may park on
  // attach_changed() to ride out transient outages.
  void set_attached(std::uint32_t node, bool on) {
    const bool was = attached(node);
    if (was == on) return;
    if (on)
      std::erase(detached_, node);
    else
      detached_.push_back(node);
    attach_changed_.fire();
  }
  [[nodiscard]] bool attached(std::uint32_t node) const noexcept {
    for (std::uint32_t d : detached_)
      if (d == node) return false;
    return true;
  }
  /// Fires on every attach/detach transition of any node.
  [[nodiscard]] sim::Trigger& attach_changed() noexcept {
    return attach_changed_;
  }

  // -- Partitions (fault model) ---------------------------------------------
  // A network partition splits the segment into isolated islands.  Every
  // node starts in group 0; moving a node to a non-zero group cuts its links
  // to every node in a different group while traffic *within* each island
  // still flows.  Unlike detachment, a partitioned node keeps transmitting —
  // its frames simply never reach the far side, which is exactly the
  // scenario that produces split-brain coordinators.
  void set_partition_group(std::uint32_t node, int group) {
    if (partition_group(node) == group) return;
    std::erase_if(partition_,
                  [node](const auto& e) { return e.first == node; });
    if (group != 0) partition_.emplace_back(node, group);
    attach_changed_.fire();
  }
  [[nodiscard]] int partition_group(std::uint32_t node) const noexcept {
    for (const auto& [n, g] : partition_)
      if (n == node) return g;
    return 0;
  }
  /// True when frames from `a` can reach `b`: both NICs up, same island.
  [[nodiscard]] bool reachable(std::uint32_t a, std::uint32_t b) const
      noexcept {
    return attached(a) && attached(b) &&
           partition_group(a) == partition_group(b);
  }

 private:
  sim::Engine& eng_;
  EthernetParams params_;
  sim::Semaphore medium_;
  sim::Trigger attach_changed_;
  std::vector<std::uint32_t> detached_;
  std::vector<std::pair<std::uint32_t, int>> partition_;
  std::uint64_t total_frames_ = 0;
  std::uint64_t total_payload_bytes_ = 0;
};

}  // namespace cpe::net
