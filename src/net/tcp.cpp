#include "net/tcp.hpp"

namespace cpe::net {

TcpStream::TcpStream(Network& net, NodeId a, NodeId b, TcpParams params)
    : net_(net),
      a_(a),
      b_(b),
      params_(params),
      to_a_(net.engine()),
      to_b_(net.engine()) {
  CPE_EXPECTS(params_.mss > 0);
  CPE_EXPECTS(params_.mss + params_.header_bytes <=
              net.ethernet().params().mtu);
  CPE_EXPECTS(params_.ack_every > 0);
}

sim::Co<std::shared_ptr<TcpStream>> TcpStream::connect(Network& net, NodeId a,
                                                       NodeId b,
                                                       TcpParams params) {
  auto stream = std::make_shared<TcpStream>(net, a, b, params);
  Ethernet& eth = net.ethernet();
  if (a != b) {
    if (!eth.reachable(a, b))
      throw DeliveryError("tcp: connect " + std::to_string(a) + " -> " +
                              std::to_string(b) + ": endpoint unreachable",
                          b, 0);
    // SYN, SYN|ACK, ACK: three header-only segments plus processing.
    for (int i = 0; i < 3; ++i) {
      co_await eth.transmit_frame(params.header_bytes);
      co_await sim::Delay(net.engine(), eth.params().hop_latency);
    }
    if (!eth.reachable(a, b))
      throw DeliveryError("tcp: connect " + std::to_string(a) + " -> " +
                              std::to_string(b) +
                              ": endpoint unreachable during handshake",
                          b, 0);
  }
  co_await sim::Delay(net.engine(), params.connect_proc);
  co_return stream;
}

sim::Co<void> TcpStream::await_link(NodeId peer) {
  Ethernet& eth = net_.ethernet();
  const NodeId self = (peer == a_) ? b_ : a_;
  if (eth.reachable(self, peer)) co_return;
  // Stalled: TCP retransmits quietly; ride out the outage up to the timeout.
  const sim::Time deadline = net_.engine().now() + params_.stall_timeout;
  while (!eth.reachable(self, peer)) {
    const sim::Time left = deadline - net_.engine().now();
    if (left <= 0 || !co_await eth.attach_changed().wait_for(left))
      throw DeliveryError("tcp: stream " + std::to_string(self) + " -> " +
                              std::to_string(peer) + " stalled for " +
                              std::to_string(params_.stall_timeout) +
                              " s; connection dead",
                          peer, 0);
  }
}

sim::Co<void> TcpStream::send(NodeId from, std::size_t bytes,
                              std::any payload) {
  CPE_EXPECTS(from == a_ || from == b_);
  sim::Engine& eng = net_.engine();
  Ethernet& eth = net_.ethernet();
  sim::Channel<Delivery>& inbox = (from == a_) ? to_b_ : to_a_;

  if (local()) {
    // Loopback: kernel copy at memory speed.
    const auto& dp = net_.datagrams().params();
    co_await sim::Delay(eng, dp.local_fixed + static_cast<double>(bytes) *
                                                  8.0 / dp.local_copy_bps);
    inbox.send(Delivery{bytes, std::move(payload)});
    co_return;
  }

  const NodeId peer = (from == a_) ? b_ : a_;
  std::size_t remaining = bytes;
  std::size_t since_ack = 0;
  do {
    co_await await_link(peer);
    const std::size_t seg = std::min(params_.mss, remaining);
    // Adversarial fabric (DESIGN.md §7).  Only burst delay and corruption
    // reach a TCP application: sequence numbers already dedup duplicated
    // segments and reassemble reordered ones, so those axes are modelled as
    // fully masked here (the datagram path is where they bite).
    const AdversaryParams& adv = net_.adversary();
    if (adv.burst_probability > 0 &&
        net_.adversary_rng().chance(adv.burst_probability)) {
      net_.note_tcp_burst();
      co_await sim::Delay(eng, adv.burst_delay);
    }
    co_await eth.transmit_frame(seg + params_.header_bytes);
    if (adv.corrupt_probability > 0 &&
        net_.adversary_rng().chance(adv.corrupt_probability)) {
      // The TCP checksum rejects the garbled segment; dup-acks trigger a
      // fast retransmit — one round trip plus the segment's wire time again.
      net_.note_tcp_corrupt();
      co_await sim::Delay(eng, 2 * eth.params().hop_latency);
      co_await eth.transmit_frame(seg + params_.header_bytes);
    }
    remaining -= seg;
    if (++since_ack >= params_.ack_every || remaining == 0) {
      // The peer's ack occupies the same shared medium.
      co_await eth.transmit_frame(params_.ack_payload);
      since_ack = 0;
    }
  } while (remaining > 0);
  co_await sim::Delay(eng, eth.params().hop_latency);
  inbox.send(Delivery{bytes, std::move(payload)});
}

sim::Co<TcpStream::Delivery> TcpStream::recv(NodeId at) {
  CPE_EXPECTS(at == a_ || at == b_);
  sim::Channel<Delivery>& inbox = (at == a_) ? to_a_ : to_b_;
  co_return co_await inbox.recv();
}

sim::Time TcpStream::ideal_stream_time(std::size_t bytes) const {
  const Ethernet& eth = net_.ethernet();
  const std::size_t full = bytes / params_.mss;
  const std::size_t rest = bytes % params_.mss;
  sim::Time t = 0;
  const sim::Time seg_t = eth.frame_time(params_.mss + params_.header_bytes);
  const sim::Time ack_t = eth.frame_time(params_.ack_payload);
  const double acks_per_seg = 1.0 / static_cast<double>(params_.ack_every);
  t += static_cast<double>(full) * (seg_t + ack_t * acks_per_seg);
  if (rest > 0) t += eth.frame_time(rest + params_.header_bytes) + ack_t;
  return t + eth.params().hop_latency;
}

}  // namespace cpe::net
