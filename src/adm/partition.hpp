// Data-partitioning arithmetic for ADM applications (paper §2.3, §3.4.3).
//
// ADM achieves load distribution by re-partitioning the application's data.
// The model imposes no granularity restriction — "the application, not the
// model, limits the accuracy with which the data can be allotted" — so these
// helpers work at single-item precision: equal shares, capacity-weighted
// shares (for heterogeneous or loaded hosts), and a minimal transfer plan
// between two partitions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/assert.hpp"

namespace cpe::adm {

/// Split `total` items into `n` shares differing by at most one item.
[[nodiscard]] std::vector<std::size_t> equal_shares(std::size_t total,
                                                    std::size_t n);

/// Split `total` proportionally to non-negative `weights` (a zero weight —
/// a withdrawn slave — gets exactly zero items).  Shares sum to `total`;
/// rounding remainders go to the largest fractional parts.
[[nodiscard]] std::vector<std::size_t> weighted_shares(
    std::size_t total, std::span<const double> weights);

/// One data movement: `count` items from slave `from` to slave `to`.
struct Transfer {
  int from = 0;
  int to = 0;
  std::size_t count = 0;

  Transfer() = default;
  Transfer(int f, int t, std::size_t c) : from(f), to(t), count(c) {}
  [[nodiscard]] bool operator==(const Transfer&) const = default;
};

/// Minimal set of transfers turning partition `current` into `target`
/// (both must sum to the same total).  Greedy donor/acceptor matching: the
/// number of transfers is at most n-1, and a withdrawing slave's data is
/// naturally "fragmented and sent to several other processes" (§4.3).
[[nodiscard]] std::vector<Transfer> plan_moves(
    std::span<const std::size_t> current, std::span<const std::size_t> target);

}  // namespace cpe::adm
