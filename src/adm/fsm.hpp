// The event-driven finite-state-machine program structure ADM imposes
// (paper §2.3, Figure 4).
//
// ADM applications are written "at a coarse level ... as a finite-state
// machine": well-defined states, explicit transitions, and careful reasoning
// that no sequence of migration events can be mis-handled.  This class makes
// the structure explicit and *checked*: undeclared transitions throw, and
// every transition is traced so tests (and the Figure 4 bench) can assert on
// exact state paths.
#pragma once

#include <string>
#include <vector>

#include "sim/assert.hpp"
#include "sim/trace.hpp"

namespace cpe::adm {

class Fsm {
 public:
  /// `owner` names the process in trace output (e.g. "slave1").
  Fsm(sim::TraceLog& trace, std::string owner, std::string initial)
      : trace_(&trace), owner_(std::move(owner)), state_(std::move(initial)) {
    states_.push_back(state_);
  }

  /// Declare a state (idempotent).
  void add_state(const std::string& name) {
    if (!has_state(name)) states_.push_back(name);
  }

  /// Declare a legal transition.
  void allow(const std::string& from, const std::string& to) {
    CPE_EXPECTS(has_state(from));
    CPE_EXPECTS(has_state(to));
    edges_.emplace_back(from, to);
  }

  [[nodiscard]] const std::string& state() const noexcept { return state_; }

  [[nodiscard]] bool can_transition(const std::string& to) const {
    for (const auto& [f, t] : edges_)
      if (f == state_ && t == to) return true;
    return false;
  }

  /// Move to `to`; throws on an undeclared edge — the "great care must be
  /// taken to ensure correctness" the paper warns about, made mechanical.
  void transition(const std::string& to) {
    if (!can_transition(to))
      throw Error("adm::Fsm(" + owner_ + "): illegal transition " + state_ +
                  " -> " + to);
    trace_->log("adm.fsm", owner_ + ": " + state_ + " -> " + to);
    state_ = to;
    path_.push_back(to);
  }

  /// States visited, in order (excluding the initial state).
  [[nodiscard]] const std::vector<std::string>& path() const noexcept {
    return path_;
  }

 private:
  [[nodiscard]] bool has_state(const std::string& s) const {
    for (const auto& st : states_)
      if (st == s) return true;
    return false;
  }

  sim::TraceLog* trace_;
  std::string owner_;
  std::string state_;
  std::vector<std::string> states_;
  std::vector<std::pair<std::string, std::string>> edges_;
  std::vector<std::string> path_;
};

}  // namespace cpe::adm
