// Migration-event delivery and queueing for ADM applications (paper §2.3).
//
// Three complications drive this design, straight from the paper:
//  * events are *unpredictable* — they arrive from the global scheduler at
//    arbitrary times, so delivery is a library-level handler that never
//    depends on what the application is doing;
//  * the application must react *rapidly* — it polls has_pending() from its
//    inner compute loop (that flag check is part of ADM's measured overhead,
//    §4.3.1);
//  * *multiple* simultaneous events must be queued and handled in order,
//    none lost.
#pragma once

#include <deque>
#include <optional>

#include "pvm/system.hpp"

namespace cpe::adm {

/// Tag used for ADM migration events on the PVM transport.
inline constexpr int kTagAdmEvent = pvm::kControlTagBase + 32;

enum class AdmEventKind : std::int32_t {
  kWithdraw = 0,   ///< a slave must vacate its host (owner reclaim)
  kRebalance = 1,  ///< recompute the partition (load change)
  kRejoin = 2,     ///< a previously withdrawn slave may take data again
};

[[nodiscard]] constexpr const char* to_string(AdmEventKind k) {
  switch (k) {
    case AdmEventKind::kWithdraw: return "withdraw";
    case AdmEventKind::kRebalance: return "rebalance";
    case AdmEventKind::kRejoin: return "rejoin";
  }
  return "?";
}

struct AdmEvent {
  AdmEventKind kind = AdmEventKind::kRebalance;
  int slave = -1;  ///< target slave instance (withdraw/rejoin); -1 otherwise

  AdmEvent() = default;
  AdmEvent(AdmEventKind kind_, int slave_) : kind(kind_), slave(slave_) {}
  [[nodiscard]] bool operator==(const AdmEvent&) const = default;

  [[nodiscard]] pvm::Buffer encode() const {
    pvm::Buffer b;
    b.pk_int(static_cast<std::int32_t>(kind));
    b.pk_int(slave);
    return b;
  }
  static AdmEvent decode(const pvm::Buffer& body) {
    pvm::Buffer b(body);
    AdmEvent ev;
    ev.kind = static_cast<AdmEventKind>(b.upk_int());
    ev.slave = b.upk_int();
    return ev;
  }
};

/// Per-task event queue.  Binding installs a control handler, so events are
/// captured even while the task computes or blocks — the application drains
/// them at its own (frequent) polling points.
class EventQueue {
 public:
  /// An event plus its delivery time — the paper measures obtrusiveness
  /// "from the moment when the migrating slave first receives the migration
  /// event signal" (§4.3.2), i.e. from this timestamp.
  struct Stamped {
    AdmEvent event;
    sim::Time arrived_at = 0;

    Stamped() = default;
    Stamped(AdmEvent e, sim::Time t) : event(e), arrived_at(t) {}
  };

  explicit EventQueue(pvm::Task& task) : task_(&task) {
    task.set_control_handler(kTagAdmEvent, [this](pvm::Message m) {
      events_.emplace_back(AdmEvent::decode(*m.body),
                           task_->system().engine().now());
      ++received_;
      arrived_.fire();
    });
  }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  [[nodiscard]] bool has_pending() const noexcept { return !events_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept {
    return events_.size();
  }
  [[nodiscard]] std::size_t received() const noexcept { return received_; }

  [[nodiscard]] std::optional<Stamped> take_stamped() {
    if (events_.empty()) return std::nullopt;
    Stamped s = events_.front();
    events_.pop_front();
    return s;
  }

  [[nodiscard]] std::optional<AdmEvent> take() {
    auto s = take_stamped();
    if (!s.has_value()) return std::nullopt;
    return s->event;
  }

  /// Park until at least one event is queued (used by an idle master).
  [[nodiscard]] sim::Co<AdmEvent> wait_take() {
    while (events_.empty()) co_await arrived_.wait();
    co_return *take();
  }

  /// Send an event to `to`'s queue (the GS, or the master forwarding to a
  /// slave).  Travels as a real control message.
  static void post(pvm::Task& from, pvm::Tid to, const AdmEvent& ev) {
    from.runtime_send(to, kTagAdmEvent, ev.encode());
  }

 private:
  pvm::Task* task_;
  std::deque<Stamped> events_;
  std::size_t received_ = 0;
  sim::Trigger arrived_{task_->system().engine()};
};

}  // namespace cpe::adm
