#include "adm/partition.hpp"

#include <algorithm>
#include <numeric>

namespace cpe::adm {

std::vector<std::size_t> equal_shares(std::size_t total, std::size_t n) {
  CPE_EXPECTS(n > 0);
  std::vector<std::size_t> shares(n, total / n);
  for (std::size_t i = 0; i < total % n; ++i) ++shares[i];
  return shares;
}

std::vector<std::size_t> weighted_shares(std::size_t total,
                                         std::span<const double> weights) {
  CPE_EXPECTS(!weights.empty());
  double sum = 0;
  for (double w : weights) {
    CPE_EXPECTS(w >= 0);
    sum += w;
  }
  CPE_EXPECTS(sum > 0);

  const std::size_t n = weights.size();
  std::vector<std::size_t> shares(n, 0);
  std::vector<std::pair<double, std::size_t>> fractions;  // (frac, index)
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = static_cast<double>(total) * weights[i] / sum;
    shares[i] = static_cast<std::size_t>(exact);
    assigned += shares[i];
    fractions.emplace_back(exact - static_cast<double>(shares[i]), i);
  }
  // Hand out the rounding remainder by largest fraction (ties: lower index),
  // never to a zero-weight (withdrawn) slave.
  std::stable_sort(fractions.begin(), fractions.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t remainder = total - assigned;
  for (std::size_t k = 0; remainder > 0; k = (k + 1) % n) {
    const std::size_t idx = fractions[k].second;
    if (weights[idx] <= 0) continue;
    ++shares[idx];
    --remainder;
  }
  return shares;
}

std::vector<Transfer> plan_moves(std::span<const std::size_t> current,
                                 std::span<const std::size_t> target) {
  CPE_EXPECTS(current.size() == target.size());
  CPE_EXPECTS(std::accumulate(current.begin(), current.end(), std::size_t{0}) ==
              std::accumulate(target.begin(), target.end(), std::size_t{0}));

  struct Delta {
    int slave;
    std::size_t amount;
  };
  std::vector<Delta> donors, acceptors;
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (current[i] > target[i])
      donors.push_back({static_cast<int>(i), current[i] - target[i]});
    else if (target[i] > current[i])
      acceptors.push_back({static_cast<int>(i), target[i] - current[i]});
  }

  std::vector<Transfer> moves;
  std::size_t d = 0, a = 0;
  while (d < donors.size() && a < acceptors.size()) {
    const std::size_t amount = std::min(donors[d].amount, acceptors[a].amount);
    moves.emplace_back(donors[d].slave, acceptors[a].slave, amount);
    donors[d].amount -= amount;
    acceptors[a].amount -= amount;
    if (donors[d].amount == 0) ++d;
    if (acceptors[a].amount == 0) ++a;
  }
  CPE_ENSURES(d == donors.size() && a == acceptors.size());
  return moves;
}

}  // namespace cpe::adm
