// The ULP virtual-address layout (paper §2.2, Figure 2).
//
// Every ULP of an application is assigned a virtual-address region that is
// unique *across all processes*: if ULP4 occupies region V1 in the process on
// host3, V1 is reserved for ULP4 in every other process too, even where ULP4
// is not resident.  Migration therefore never needs pointer fix-up — the ULP
// lands at the same addresses it left.  The price is that the per-process
// address space is divided among all ULPs, limiting how many can exist
// (§3.2.2: "this puts a limit on the number of ULPs that could be created").
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/assert.hpp"

namespace cpe::upvm {

struct VaRegion {
  std::uintptr_t base = 0;
  std::size_t size = 0;

  [[nodiscard]] std::uintptr_t end() const noexcept { return base + size; }
  [[nodiscard]] bool overlaps(const VaRegion& o) const noexcept {
    return base < o.end() && o.base < end();
  }
};

class AddressSpaceMap {
 public:
  /// `va_budget`: bytes of process address space available for ULP regions
  /// (what remains of a 1990s 32-bit layout after text, libraries and the
  /// UPVM runtime).  `region_size`: bytes reserved per ULP.
  AddressSpaceMap(std::size_t va_budget, std::size_t region_size,
                  std::uintptr_t base = 0x4000'0000)
      : va_budget_(va_budget), region_size_(region_size), base_(base) {
    CPE_EXPECTS(region_size > 0);
    CPE_EXPECTS(va_budget >= region_size);
  }

  /// Maximum number of ULPs this layout supports.
  [[nodiscard]] std::size_t max_ulps() const noexcept {
    return va_budget_ / region_size_;
  }
  [[nodiscard]] std::size_t region_size() const noexcept {
    return region_size_;
  }

  /// Reserve a region; throws when the address space is exhausted.  A region
  /// released by a finished ULP is reused (most recently released first)
  /// before fresh address space is carved, so ULP churn — create/exit cycles
  /// — does not eat through the §3.2.2 budget while the live count is small.
  VaRegion allocate() {
    if (!free_.empty()) {
      VaRegion r = free_.back();
      free_.pop_back();
      ++allocated_;
      regions_.push_back(r);
      return r;
    }
    if (carved_ >= max_ulps())
      throw Error(
          "AddressSpaceMap: virtual address space exhausted: cannot create "
          "ULP " +
          std::to_string(allocated_ + 1) + " with region size " +
          std::to_string(region_size_) + " and budget " +
          std::to_string(va_budget_) +
          " (the §3.2.2 limit; 64-bit address spaces would lift it)");
    VaRegion r{base_ + carved_ * region_size_, region_size_};
    ++carved_;
    ++allocated_;
    regions_.push_back(r);
    return r;
  }

  /// Return a region to the map (ULP teardown).  Throws on a region that is
  /// not currently allocated (including double release).
  void release(const VaRegion& r) {
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      if (regions_[i].base == r.base && regions_[i].size == r.size) {
        regions_.erase(regions_.begin() + static_cast<std::ptrdiff_t>(i));
        free_.push_back(r);
        CPE_ASSERT(allocated_ > 0);
        --allocated_;
        return;
      }
    }
    throw Error("AddressSpaceMap: release of a region that is not allocated");
  }

  /// The i-th *live* region — identical on every process by construction.
  [[nodiscard]] const VaRegion& region_of(std::size_t index) const {
    CPE_EXPECTS(index < regions_.size());
    return regions_[index];
  }

  /// Currently live regions.
  [[nodiscard]] std::size_t allocated() const noexcept { return allocated_; }
  /// High-water mark of distinct regions ever carved from the budget.
  [[nodiscard]] std::size_t carved() const noexcept { return carved_; }
  /// Released regions awaiting reuse.
  [[nodiscard]] std::size_t free_regions() const noexcept {
    return free_.size();
  }

  /// No two allocated regions overlap (DESIGN.md invariant 3).
  [[nodiscard]] bool disjoint() const {
    for (std::size_t i = 0; i < regions_.size(); ++i)
      for (std::size_t j = i + 1; j < regions_.size(); ++j)
        if (regions_[i].overlaps(regions_[j])) return false;
    return true;
  }

  /// Render the layout (the Figure 2 reproduction).
  [[nodiscard]] std::string format() const {
    std::string out = "ULP address regions (unique across all processes):\n";
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      char line[96];
      std::snprintf(line, sizeof line, "  ULP%zu: [%#zx, %#zx)\n", i,
                    static_cast<std::size_t>(regions_[i].base),
                    static_cast<std::size_t>(regions_[i].end()));
      out += line;
    }
    return out;
  }

 private:
  std::size_t va_budget_;
  std::size_t region_size_;
  std::uintptr_t base_;
  std::size_t allocated_ = 0;
  std::size_t carved_ = 0;
  std::vector<VaRegion> regions_;
  std::vector<VaRegion> free_;
};

}  // namespace cpe::upvm
