// The ULP virtual-address layout (paper §2.2, Figure 2).
//
// Every ULP of an application is assigned a virtual-address region that is
// unique *across all processes*: if ULP4 occupies region V1 in the process on
// host3, V1 is reserved for ULP4 in every other process too, even where ULP4
// is not resident.  Migration therefore never needs pointer fix-up — the ULP
// lands at the same addresses it left.  The price is that the per-process
// address space is divided among all ULPs, limiting how many can exist
// (§3.2.2: "this puts a limit on the number of ULPs that could be created").
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/assert.hpp"

namespace cpe::upvm {

struct VaRegion {
  std::uintptr_t base = 0;
  std::size_t size = 0;

  [[nodiscard]] std::uintptr_t end() const noexcept { return base + size; }
  [[nodiscard]] bool overlaps(const VaRegion& o) const noexcept {
    return base < o.end() && o.base < end();
  }
};

class AddressSpaceMap {
 public:
  /// `va_budget`: bytes of process address space available for ULP regions
  /// (what remains of a 1990s 32-bit layout after text, libraries and the
  /// UPVM runtime).  `region_size`: bytes reserved per ULP.
  AddressSpaceMap(std::size_t va_budget, std::size_t region_size,
                  std::uintptr_t base = 0x4000'0000)
      : va_budget_(va_budget), region_size_(region_size), base_(base) {
    CPE_EXPECTS(region_size > 0);
    CPE_EXPECTS(va_budget >= region_size);
  }

  /// Maximum number of ULPs this layout supports.
  [[nodiscard]] std::size_t max_ulps() const noexcept {
    return va_budget_ / region_size_;
  }
  [[nodiscard]] std::size_t region_size() const noexcept {
    return region_size_;
  }

  /// Reserve the next region; throws when the address space is exhausted.
  VaRegion allocate() {
    if (allocated_ >= max_ulps())
      throw Error(
          "AddressSpaceMap: virtual address space exhausted: cannot create "
          "ULP " +
          std::to_string(allocated_ + 1) + " with region size " +
          std::to_string(region_size_) + " and budget " +
          std::to_string(va_budget_) +
          " (the §3.2.2 limit; 64-bit address spaces would lift it)");
    VaRegion r{base_ + allocated_ * region_size_, region_size_};
    ++allocated_;
    regions_.push_back(r);
    return r;
  }

  /// The region of ULP `index` — identical on every process by construction.
  [[nodiscard]] const VaRegion& region_of(std::size_t index) const {
    CPE_EXPECTS(index < regions_.size());
    return regions_[index];
  }

  [[nodiscard]] std::size_t allocated() const noexcept { return allocated_; }

  /// No two allocated regions overlap (DESIGN.md invariant 3).
  [[nodiscard]] bool disjoint() const {
    for (std::size_t i = 0; i < regions_.size(); ++i)
      for (std::size_t j = i + 1; j < regions_.size(); ++j)
        if (regions_[i].overlaps(regions_[j])) return false;
    return true;
  }

  /// Render the layout (the Figure 2 reproduction).
  [[nodiscard]] std::string format() const {
    std::string out = "ULP address regions (unique across all processes):\n";
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      char line[96];
      std::snprintf(line, sizeof line, "  ULP%zu: [%#zx, %#zx)\n", i,
                    static_cast<std::size_t>(regions_[i].base),
                    static_cast<std::size_t>(regions_[i].end()));
      out += line;
    }
    return out;
  }

 private:
  std::size_t va_budget_;
  std::size_t region_size_;
  std::uintptr_t base_;
  std::size_t allocated_ = 0;
  std::vector<VaRegion> regions_;
};

}  // namespace cpe::upvm
