#include "upvm/upvm.hpp"

#include "pvm/body_pool.hpp"
#include <sstream>

#include "obs/metrics.hpp"

namespace cpe::upvm {

namespace {
/// ULPs carry virtualized application tids; the UPVM library maps them to
/// the container task that currently hosts the ULP (§4.2.1 "the mapping of
/// application tids into actual tids").  Host index 600 can never collide
/// with a real daemon.
pvm::Tid ulp_vtid(int inst) {
  return inst < 0 ? pvm::Tid() : pvm::Tid::make(600, static_cast<std::uint32_t>(inst));
}
std::int32_t ulp_filter(int inst) {
  return inst < 0 ? pvm::kAny : ulp_vtid(inst).raw();
}
}  // namespace

// ---------------------------------------------------------------------------
// Ulp
// ---------------------------------------------------------------------------

Ulp::Ulp(Upvm& sys, int inst, VaRegion region)
    : sys_(&sys),
      inst_(inst),
      region_(region),
      mailbox_(sys.vm().engine()),
      runnable_gate_(sys.vm().engine(), /*open=*/true),
      burst_done_(sys.vm().engine()) {}

int Ulp::nulps() const noexcept { return sys_->nulps(); }

os::Host& Ulp::host() const noexcept { return container_->host(); }

void Ulp::set_data_bytes(std::size_t n) {
  data_bytes_ = n;
  CPE_EXPECTS(image_bytes() <= region_.size);  // must fit the VA region
}

void Ulp::set_heap_bytes(std::size_t n) {
  heap_bytes_ = n;
  CPE_EXPECTS(image_bytes() <= region_.size);
}

pvm::Buffer& Ulp::initsend(pvm::Encoding enc) {
  sbuf_ = std::make_unique<pvm::Buffer>(enc);
  return *sbuf_;
}

pvm::Buffer& Ulp::sbuf() {
  CPE_EXPECTS(sbuf_ != nullptr);
  return *sbuf_;
}

pvm::Buffer& Ulp::rbuf() {
  CPE_EXPECTS(rbuf_ != nullptr);
  return *rbuf_;
}

sim::Co<void> Ulp::send(int dst_inst, int tag) {
  CPE_EXPECTS(sbuf_ != nullptr);
  auto body = pvm::make_body(std::move(*sbuf_));
  sbuf_ = std::make_unique<pvm::Buffer>(body->encoding());
  co_await runnable_gate_.wait();
  co_await sys_->route_ulp(*this, dst_inst, tag, std::move(body),
                           next_seq_[dst_inst]++);
}

sim::Co<pvm::Message> Ulp::recv(int src_inst, int tag) {
  const auto& pc = sys_->vm().costs().pvm;
  co_await runnable_gate_.wait();
  co_await host().cpu().compute(pc.call_overhead + pc.recv_fixed);
  // Blocking on receive de-schedules the ULP (§2.2): the cpu token is not
  // held, so co-resident runnable ULPs proceed.
  pvm::Message m = co_await mailbox_.take(ulp_filter(src_inst), tag);
  co_await runnable_gate_.wait();  // a migration may have frozen us mid-wait
  const auto& uc = sys_->vm().costs().upvm;
  co_await host().cpu().compute(
      uc.ulp_context_switch +
      static_cast<double>(m.payload_bytes()) * 8.0 / pc.unpack_bps);
  rbuf_ = std::make_unique<pvm::Buffer>(*m.body);
  co_return m;
}

std::optional<pvm::Message> Ulp::nrecv(int src_inst, int tag) {
  auto m = mailbox_.try_take(ulp_filter(src_inst), tag);
  if (m.has_value()) rbuf_ = std::make_unique<pvm::Buffer>(*m->body);
  return m;
}

struct Ulp::BurstAwait {
  explicit BurstAwait(Ulp& u) : u_(&u) {}
  BurstAwait(const BurstAwait&) = delete;
  BurstAwait& operator=(const BurstAwait&) = delete;
  ~BurstAwait() {
    if (u_->active_burst_await_ == this) u_->active_burst_await_ = nullptr;
    if (u_->burst_ && !u_->burst_->done &&
        u_->burst_->scheduler != nullptr)
      u_->burst_->scheduler->detach(u_->burst_);
    u_->burst_.reset();
    u_->sys_->vm().engine().cancel(resume_ev_);
  }

  [[nodiscard]] bool await_ready() const noexcept {
    return u_->pending_work_ <= 0;
  }
  void await_suspend(std::coroutine_handle<> h) {
    h_ = h;
    u_->burst_ = u_->host().cpu().start(u_->pending_work_, h);
    u_->active_burst_await_ = this;
  }
  void await_resume() noexcept {
    if (!interrupted_) u_->pending_work_ = 0;
    u_->active_burst_await_ = nullptr;
    u_->burst_.reset();
    u_->burst_done_.fire();  // safe-point reached
  }

  /// Migration stage 1: capture the register context mid-burst.  Remaining
  /// work is saved and the compute loop re-parks behind the runnable gate.
  void interrupt() {
    CPE_ASSERT(u_->burst_ && u_->burst_->scheduler != nullptr);
    u_->burst_->scheduler->detach(u_->burst_);
    u_->pending_work_ = u_->burst_->remaining;
    interrupted_ = true;
    sim::Engine& eng = u_->sys_->vm().engine();
    resume_ev_ = eng.schedule_at(eng.now(), [h = h_] { h.resume(); });
  }

 private:
  Ulp* u_;
  std::coroutine_handle<> h_{};
  bool interrupted_ = false;
  sim::EventId resume_ev_{};
};

sim::Co<void> Ulp::compute(double ref_seconds) {
  CPE_EXPECTS(ref_seconds >= 0);
  CPE_EXPECTS(pending_work_ <= 1e-12);  // ULP mains are sequential
  pending_work_ = ref_seconds;
  const auto& uc = sys_->vm().costs().upvm;
  sim::Engine& eng = sys_->vm().engine();
  while (pending_work_ > 1e-12) {
    co_await runnable_gate_.wait();
    UlpProcess* p = container_;
    co_await p->cpu_token().acquire();
    sim::ScopeExit release([p] { p->cpu_token().release(); });
    // The token may be stale: we migrated (or were frozen) while queued.
    if (container_ != p || !runnable_gate_.is_open()) continue;
    co_await sim::Delay(eng, uc.ulp_context_switch);
    BurstAwait burst(*this);
    co_await burst;
  }
}

sim::Co<void> Ulp::yield() {
  const auto& uc = sys_->vm().costs().upvm;
  co_await sim::Delay(sys_->vm().engine(), uc.ulp_context_switch);
  co_await runnable_gate_.wait();
}

void Ulp::freeze() {
  runnable_gate_.close();
  if (active_burst_await_ != nullptr) active_burst_await_->interrupt();
}

sim::Co<void> Ulp::freeze_at_safe_point() {
  runnable_gate_.close();
  while (active_burst_await_ != nullptr) co_await burst_done_.wait();
}

void Ulp::thaw() { runnable_gate_.open(); }

// ---------------------------------------------------------------------------
// UlpProcess
// ---------------------------------------------------------------------------

UlpProcess::UlpProcess(Upvm& sys, pvm::Task& task)
    : sys_(&sys), task_(&task), cpu_token_(sys.vm().engine(), 1) {}

// ---------------------------------------------------------------------------
// Upvm
// ---------------------------------------------------------------------------

Upvm::Upvm(pvm::PvmSystem& vm, UpvmOptions options)
    : vm_(&vm),
      options_(options),
      va_map_(options.va_budget, options.region_size),
      all_done_(vm.engine()),
      shutdown_(vm.engine(), /*open=*/false) {
  vm.register_program("upvm_container",
                      [this](pvm::Task&) -> sim::Co<void> {
                        co_await shutdown_.wait();
                      });
}

Upvm::~Upvm() {
  // Halt ULP mains and container programs before members (the shutdown
  // gate, the ULP mailboxes) are destroyed under their parked coroutines.
  for (auto& u : ulps_) u->main_.abort();
  for (auto& c : containers_) c->task().process().kill();
}

sim::Co<void> Upvm::start() {
  CPE_EXPECTS(containers_.empty());
  for (const auto& d : vm_->daemons()) {
    std::vector<pvm::Tid> tids =
        co_await vm_->spawn("upvm_container", 1, d->host().name());
    pvm::Task* t = vm_->find_logical(tids[0]);
    CPE_ASSERT(t != nullptr);
    containers_.push_back(std::make_unique<UlpProcess>(*this, *t));
    UlpProcess* c = containers_.back().get();
    t->set_control_handler(kTagUlpMsg, [this, c](pvm::Message m) {
      dispatch_transport(*c, m);
    });
    t->set_control_handler(kTagUlpFlush, [this, c](pvm::Message m) {
      // Redirection already took effect (the location table flipped at
      // freeze); acknowledge so the source knows our in-flight messages
      // have drained ahead of this ack on the FIFO channel.
      pvm::Buffer ack;
      ack.pk_int(m.body ? pvm::Buffer(*m.body).upk_int() : -1);
      c->task().runtime_send(m.src, kTagUlpFlushAck, std::move(ack));
    });
    t->set_control_handler(kTagUlpFlushAck, [this](pvm::Message m) {
      pvm::Buffer b(*m.body);
      auto it = pending_.find(b.upk_int());
      if (it == pending_.end()) return;
      if (++it->second->received >= it->second->expected)
        it->second->all_acked->fire();
    });
    t->set_control_handler(kTagUlpState, [](pvm::Message) {
      // The image lands first; acceptance is driven by the trailing
      // buffers message (FIFO guarantees it arrives last).
    });
    t->set_control_handler(kTagUlpBuffers, [this, c](pvm::Message m) {
      auto* accept = std::any_cast<std::shared_ptr<
          std::function<void(UlpProcess&)>>>(&m.aux);
      CPE_ASSERT(accept != nullptr);
      (**accept)(*c);
    });
  }
  vm_->trace().log("upvm", "started " + std::to_string(containers_.size()) +
                               " container processes");
}

std::vector<Ulp*> Upvm::run_spmd(UlpMain main, int nulps) {
  CPE_EXPECTS(!containers_.empty());  // start() first
  CPE_EXPECTS(ulps_.empty());         // one SPMD application per Upvm
  CPE_EXPECTS(nulps > 0);
  spmd_main_ = std::move(main);

  std::vector<Ulp*> out;
  for (int i = 0; i < nulps; ++i) {
    const VaRegion region = va_map_.allocate();
    auto ulp = std::make_unique<Ulp>(*this, i, region);
    UlpProcess* c = containers_[static_cast<std::size_t>(i) %
                                containers_.size()].get();
    ulp->container_ = c;
    ++c->residents_;
    note_runqueue(*c);
    out.push_back(ulp.get());
    ulps_.push_back(std::move(ulp));
  }
  note_va_usage();
  // Launch after all ULPs exist so early senders can resolve instances.
  for (auto& u : ulps_) {
    auto wrapper = [](Upvm* sys, Ulp* ulp, UlpMain fn) -> sim::Co<void> {
      co_await fn(*ulp);
      ulp->done_ = true;
      // Teardown reclaims the VA region: without this, create/exit churn
      // exhausts the §3.2.2 budget even while few ULPs are live.
      sys->va_map_.release(ulp->region());
      sys->note_va_usage();
      sys->on_ulp_done();
    };
    u->main_ = sim::launch(vm_->engine(), wrapper(this, u.get(), spmd_main_));
  }
  vm_->trace().log("upvm", "SPMD launch: " + std::to_string(nulps) +
                               " ULPs across " +
                               std::to_string(containers_.size()) +
                               " processes");
  return out;
}

Ulp* Upvm::ulp(int inst) const {
  if (inst < 0 || inst >= nulps()) return nullptr;
  return ulps_[static_cast<std::size_t>(inst)].get();
}

sim::Co<void> Upvm::wait_all_ulps() {
  while (ulps_done_ < nulps()) co_await all_done_.wait();
}

void Upvm::on_ulp_done() {
  if (++ulps_done_ >= nulps()) all_done_.fire();
}

void Upvm::note_runqueue(const UlpProcess& c) {
  vm_->metrics()
      .gauge("upvm.runqueue." + c.host().name())
      .set(static_cast<double>(c.resident_ulps()));
}

void Upvm::note_va_usage() {
  auto& m = vm_->metrics();
  m.gauge("upvm.va.allocated").set(static_cast<double>(va_map_.allocated()));
  m.gauge("upvm.va.carved").set(static_cast<double>(va_map_.carved()));
}

UlpProcess* Upvm::container_on(const os::Host& host) const {
  for (const auto& c : containers_)
    if (&c->host() == &host) return c.get();
  return nullptr;
}

sim::Co<void> Upvm::route_ulp(Ulp& from, int dst_inst, int tag,
                              std::shared_ptr<const pvm::Buffer> b,
                              std::uint64_t seq) {
  Ulp* dst = ulp(dst_inst);
  if (dst == nullptr)
    throw Error("upvm: send to unknown ULP instance " +
                std::to_string(dst_inst));
  const auto& pc = vm_->costs().pvm;
  const auto& uc = vm_->costs().upvm;
  UlpProcess* fc = from.container_;

  if (dst->container_ == fc) {
    if (options_.disable_local_handoff) {
      // Ablation A3: behave like stock PVM's local route — the sender pays
      // the socket-write copy on its own critical path, and delivery goes
      // through the daemon.
      co_await fc->host().cpu().compute(
          pc.local_send_cpu +
          static_cast<double>(b->bytes()) * 8.0 / pc.local_route_bps);
      co_await sim::Delay(vm_->engine(),
                          pc.local_route_fixed +
                              static_cast<double>(b->bytes()) * 8.0 /
                                  pc.local_route_bps);
    } else {
      // Intra-process: the library hands the buffer to the destination ULP
      // without copying (§4.2.1).
      co_await sim::Delay(vm_->engine(), uc.local_handoff);
    }
    pvm::Message m(ulp_vtid(from.inst_), ulp_vtid(dst_inst), tag,
                   std::move(b), seq);
    dst->mailbox_.push(std::move(m));
    co_return;
  }

  // Remote: pack + regular PVM transport, plus the UPVM header that makes
  // remote communication "marginally slower" than MPVM's (§4.2.1).
  co_await fc->host().cpu().compute(
      pc.send_fixed + static_cast<double>(b->bytes()) * 8.0 / pc.pack_bps);
  fc->task().runtime_send_ex(dst->container_->task().tid(), kTagUlpMsg,
                             std::move(b),
                             UlpHeader(from.inst_, dst_inst, tag, seq),
                             uc.remote_extra_header);
}

void Upvm::dispatch_transport(UlpProcess& at, const pvm::Message& m) {
  const auto* hdr = std::any_cast<UlpHeader>(&m.aux);
  CPE_ASSERT(hdr != nullptr);
  Ulp* dst = ulp(hdr->dst_inst);
  if (dst == nullptr) {
    vm_->trace().log("upvm", "dropping message for unknown ULP " +
                                 std::to_string(hdr->dst_inst));
    return;
  }
  if (dst->container_ != &at) {
    // The ULP migrated while this message was in flight: forward it.
    vm_->trace().log("upvm",
                     "forwarding message for ULP " +
                         std::to_string(hdr->dst_inst) + " to " +
                         dst->container_->host().name());
    at.task().runtime_send_ex(dst->container_->task().tid(), kTagUlpMsg,
                              m.body, *hdr, m.extra_bytes);
    return;
  }
  pvm::Message deliver(ulp_vtid(hdr->src_inst), ulp_vtid(hdr->dst_inst),
                       hdr->tag, m.body, hdr->seq);
  dst->mailbox_.push(std::move(deliver));
}

sim::Co<UlpMigrationStats> Upvm::migrate_ulp(
    int inst, os::Host& dst, std::optional<std::uint64_t> epoch,
    obs::TraceContext ctx) {
  sim::Engine& eng = vm_->engine();
  const auto& uc = vm_->costs().upvm;
  obs::SpanTracer& sp = vm_->spans();

  // Fencing: refuse a deposed leader's command before touching the ULP.
  if (fence_ && epoch && !fence_->admit(*epoch)) {
    vm_->metrics().counter("upvm.fenced").inc();
    vm_->trace().log("upvm", "fenced ulp=" + std::to_string(inst) +
                                 " epoch=" + std::to_string(*epoch) +
                                 " floor=" + std::to_string(fence_->floor()));
    Ulp* fu = ulp(inst);
    const std::string fenced_host =
        fu != nullptr ? fu->host().name() : std::string("gs");
    const obs::SpanId fenced =
        sp.begin_span(ctx, "upvm.migrate", fenced_host, inst);
    sp.annotate(fenced, "ulp", std::to_string(inst));
    sp.annotate(fenced, "epoch", std::to_string(*epoch));
    sp.annotate(fenced, "floor", std::to_string(fence_->floor()));
    sp.end_span(fenced, obs::SpanStatus::kFenced);
    throw Error("upvm: migrate ULP " + std::to_string(inst) +
                " fenced: stale epoch " + std::to_string(*epoch) + " < " +
                std::to_string(fence_->floor()));
  }

  Ulp* u = ulp(inst);
  if (u == nullptr)
    throw Error("upvm: migrate: no such ULP " + std::to_string(inst));
  if (u->done_)
    throw Error("upvm: migrate: ULP " + std::to_string(inst) +
                " already finished");
  UlpProcess* src_c = u->container_;
  UlpProcess* dst_c = container_on(dst);
  if (dst_c == nullptr)
    throw Error("upvm: migrate: no container on " + dst.name());
  if (dst_c == src_c)
    throw Error("upvm: migrate: ULP " + std::to_string(inst) +
                " already on " + dst.name());
  if (!src_c->host().migration_compatible_with(dst))
    throw Error("upvm: migrate: " + src_c->host().name() + " (" +
                src_c->host().arch() + ") -> " + dst.name() + " (" +
                dst.arch() + "): not migration compatible (§3.3)");
  if (pending_.find(inst) != pending_.end())
    throw Error("upvm: migration of ULP " + std::to_string(inst) +
                " already in progress");

  UlpMigrationStats stats;
  stats.ulp = inst;
  stats.from_host = src_c->host().name();
  stats.to_host = dst.name();
  stats.event_time = eng.now();
  // Root the move's span tree; the source container carries the context for
  // the protocol window so flush/state traffic is stamped on the wire.
  const obs::SpanId mig =
      sp.begin_span(ctx, "upvm.migrate", stats.from_host, inst);
  sp.annotate(mig, "ulp", std::to_string(inst));
  sp.annotate(mig, "from", stats.from_host);
  sp.annotate(mig, "to", stats.to_host);
  if (epoch) sp.annotate(mig, "epoch", std::to_string(*epoch));
  const obs::TraceContext mig_ctx = sp.context_of(mig);
  src_c->task().set_trace_context(mig_ctx);
  vm_->trace().log("upvm", "stage=event ulp=" + std::to_string(inst) + " " +
                               stats.from_host + " -> " + stats.to_host);

  // ---- Stage 1: interrupt the process, capture the ULP context ------------
  obs::SpanId stage =
      sp.begin_span(mig_ctx, "upvm.capture", stats.from_host, inst);
  co_await sim::Delay(eng, src_c->host().config().signal_latency);
  if (options_.migrate_at_safe_points_only)
    co_await u->freeze_at_safe_point();  // DPC-style (§5.0), ablation A9
  else
    u->freeze();
  --src_c->residents_;
  note_runqueue(*src_c);
  stats.captured_time = eng.now();
  sp.end_span(stage, obs::SpanStatus::kOk);
  stage = 0;
  // Future messages go straight to the target host from here on (§2.2
  // stage 2 — in contrast to MPVM's sender blocking).
  u->container_ = dst_c;
  vm_->trace().log("upvm", "stage=captured ulp=" + std::to_string(inst));

  // Abort: undo the capture — the ULP returns to its source container and
  // is runnable again, exactly as before the event.
  auto abort_move = [&](const std::string& reason) {
    vm_->trace().log("upvm", "stage=aborted ulp=" + std::to_string(inst) +
                                 " reason=" + reason);
    if (stage != 0) sp.end_span(stage, obs::SpanStatus::kAborted);
    const obs::SpanId rb =
        sp.event(mig_ctx, "upvm.rollback", stats.from_host, inst);
    sp.annotate(rb, "reason", reason);
    sp.end_span(mig, obs::SpanStatus::kAborted);
    u->container_ = src_c;
    ++src_c->residents_;
    note_runqueue(*src_c);
    u->thaw();
    src_c->task().clear_trace_context();
    pending_.erase(inst);
    stats.ok = false;
    stats.failure = reason;
    vm_->metrics().counter("upvm.migrations.aborted").inc();
    return stats;
  };

  // ---- Stage 2: flush ------------------------------------------------------
  stage = sp.begin_span(mig_ctx, "upvm.flush", stats.from_host, inst);
  auto& pf_slot = pending_[inst];
  pf_slot = std::make_unique<PendingFlush>();
  PendingFlush* pf = pf_slot.get();
  pf->expected = static_cast<int>(containers_.size()) - 1;
  pf->all_acked = std::make_unique<sim::Trigger>(eng);
  if (pf->expected > 0) {
    for (const auto& c : containers_) {
      if (c.get() == src_c) continue;
      pvm::Buffer b;
      b.pk_int(inst);
      src_c->task().runtime_send(c->task().tid(), kTagUlpFlush, std::move(b));
    }
    if (pf->received < pf->expected &&
        !co_await pf->all_acked->wait_for(options_.flush_ack_timeout)) {
      co_return abort_move("flush acks timed out (" +
                           std::to_string(pf->received) + "/" +
                           std::to_string(pf->expected) + ")");
    }
  }
  stats.flush_done = eng.now();
  sp.end_span(stage, obs::SpanStatus::kOk);
  stage = 0;
  vm_->trace().log("upvm", "stage=flushed ulp=" + std::to_string(inst));
  if (!dst.up() || dst_c->task().exited())
    co_return abort_move("destination container on " + dst.name() +
                         " is gone");

  // ---- Stage 3: off-load state via pvm_pkbyte + pvm_send -------------------
  stage = sp.begin_span(mig_ctx, "upvm.offload", stats.from_host, inst);
  const std::size_t image = u->image_bytes();
  const std::size_t buffers = u->mailbox_.total_bytes();
  stats.state_bytes = image + buffers;
  co_await src_c->host().cpu().compute(
      uc.migrate_fixed +
      static_cast<double>(stats.state_bytes) * 8.0 / uc.state_pack_bps);

  // Acceptance completion is signalled back through the message itself.  The
  // aborted flag defuses a late arrival racing an accept-timeout abort: the
  // ULP already went back to the source, so the accept must not re-place it.
  auto accept_done = std::make_shared<sim::Trigger>(eng);
  auto aborted = std::make_shared<bool>(false);
  auto on_arrival = std::make_shared<std::function<void(UlpProcess&)>>(
      [this, u, inst, dst_c, image, buffers, accept_done,
       aborted](UlpProcess&) {
        auto accept = [](Upvm* sys, Ulp* ulp, UlpProcess* c,
                         std::size_t bytes, std::shared_ptr<sim::Trigger> done,
                         std::shared_ptr<bool> dead) -> sim::Co<void> {
          if (*dead) co_return;
          const auto& costs = sys->vm().costs().upvm;
          const sim::Time fixed = sys->options().optimized_accept
                                      ? costs.accept_fixed_optimized
                                      : costs.accept_fixed;
          const double bps = sys->options().optimized_accept
                                 ? costs.accept_bps_optimized
                                 : costs.accept_bps;
          // Span the destination-side placement work; a timed-out accept is
          // cancelled so abandoned placements don't skew the distribution.
          obs::StageTimer span(
              sys->vm().engine(),
              sys->vm().metrics().histogram("upvm.stage.accept_work"));
          co_await c->host().cpu().compute(
              fixed + static_cast<double>(bytes) * 8.0 / bps);
          if (*dead) {
            span.cancel();
            co_return;
          }
          ++c->residents_;
          sys->note_runqueue(*c);
          ulp->thaw();
          done->fire();
        };
        sim::spawn(vm_->engine(), accept(this, u, dst_c, image + buffers,
                                         accept_done, aborted));
      });

  src_c->task().runtime_send_ex(dst_c->task().tid(), kTagUlpState, nullptr,
                                std::any{}, image);
  src_c->task().runtime_send_ex(dst_c->task().tid(), kTagUlpBuffers, nullptr,
                                on_arrival, buffers);
  stats.offload_done = eng.now();
  sp.annotate(stage, "bytes", std::to_string(stats.state_bytes));
  sp.end_span(stage, obs::SpanStatus::kOk);
  stage = 0;
  vm_->trace().log(
      "upvm", "stage=offloaded ulp=" + std::to_string(inst) + " bytes=" +
                  std::to_string(stats.state_bytes) + " obtrusiveness=" +
                  std::to_string(stats.obtrusiveness()));

  // ---- Stage 4: accept + re-queue at the destination ----------------------
  stage = sp.begin_span(mig_ctx, "upvm.accept", stats.to_host, inst);
  if (!co_await accept_done->wait_for(options_.accept_timeout)) {
    *aborted = true;
    co_return abort_move("accept timed out on " + dst.name() + " after " +
                         std::to_string(options_.accept_timeout) + " s");
  }
  pending_.erase(inst);
  stats.accept_done = eng.now();
  sp.end_span(stage, obs::SpanStatus::kOk);
  sp.end_span(mig, obs::SpanStatus::kOk);
  src_c->task().clear_trace_context();
  vm_->trace().log("upvm", "stage=accepted ulp=" + std::to_string(inst) +
                               " migration_time=" +
                               std::to_string(stats.migration_time()));
  {
    auto& m = vm_->metrics();
    m.histogram("upvm.stage.capture")
        .record(stats.captured_time - stats.event_time);
    m.histogram("upvm.stage.flush")
        .record(stats.flush_done - stats.captured_time);
    m.histogram("upvm.stage.offload")
        .record(stats.offload_done - stats.flush_done);
    m.histogram("upvm.stage.accept")
        .record(stats.accept_done - stats.offload_done);
    m.histogram("upvm.migration.time").record(stats.migration_time());
    m.histogram("upvm.migration.bytes")
        .record(static_cast<double>(stats.state_bytes));
    m.counter("upvm.migrations.completed").inc();
  }
  history_.push_back(stats);
  co_return stats;
}

std::string Upvm::format_address_map() const {
  std::ostringstream os;
  os << "ULP virtual-address map (region " << options_.region_size / (1 << 20)
     << " MB, budget " << options_.va_budget / (1 << 20) << " MB, max "
     << va_map_.max_ulps() << " ULPs)\n";
  for (const auto& u : ulps_) {
    const VaRegion& r = u->region();
    os << "  ULP" << u->inst() << ": [0x" << std::hex << r.base << ", 0x"
       << r.end() << ")" << std::dec << " resident on "
       << u->container().host().name() << " image=" << u->image_bytes()
       << "B\n";
  }
  os << "  (each region is reserved in every process of the application)\n";
  return os.str();
}

}  // namespace cpe::upvm
