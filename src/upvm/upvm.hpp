// UPVM: light-weight, independently migratable virtual processors
// (User-Level Processes, ULPs) for SPMD PVM applications (paper §2.2, §4.2).
//
// Architecture: one *container process* (a regular PVM task running the UPVM
// run-time) per host; many ULPs per container.  A ULP is thread-like — its
// own register context and stack, scheduled cooperatively by the library —
// but process-like in owning private data and heap.  Each ULP is bound to a
// globally unique virtual-address region (see AddressSpaceMap), which is
// what makes its state trivially relocatable.
//
// Messaging: ULP-to-ULP by instance number.  Within a container the library
// hands the buffer pointer over (no copy, §4.2.1); across containers the
// message rides regular PVM transport with a small extra ULP header (which
// is why UPVM's remote path is marginally slower than MPVM's).
//
// Migration (Figure 3): the GS message goes directly to the container
// process; the ULP's context is captured mid-burst; a flush round with every
// container redirects *future* messages to the destination immediately (no
// sender blocking, unlike MPVM); the state moves via pvm_pkbyte/pvm_send;
// and the destination's accept path places it and re-queues the ULP.  The
// paper's accept implementation is notoriously slow (6.88 s vs 1.67 s
// obtrusiveness at 0.6 MB) — both it and the optimized variant the authors
// promise are implemented here (select with UpvmOptions::optimized_accept).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "pvm/fence.hpp"
#include "pvm/system.hpp"
#include "upvm/address_map.hpp"

namespace cpe::upvm {

class Upvm;
class UlpProcess;
class Ulp;

/// The SPMD program every ULP runs.
using UlpMain = std::function<sim::Co<void>(Ulp&)>;

/// Tags used by the UPVM runtime on the underlying PVM transport.
inline constexpr int kTagUlpMsg = pvm::kControlTagBase + 16;
inline constexpr int kTagUlpFlush = pvm::kControlTagBase + 17;
inline constexpr int kTagUlpFlushAck = pvm::kControlTagBase + 18;
inline constexpr int kTagUlpState = pvm::kControlTagBase + 19;
inline constexpr int kTagUlpBuffers = pvm::kControlTagBase + 20;

struct UpvmOptions {
  std::size_t va_budget = 768ull * 1024 * 1024;  ///< 32-bit era budget
  std::size_t region_size = 16ull * 1024 * 1024;
  bool optimized_accept = false;  ///< the §4.2.3 fix (ablation A4)
  /// Disable the intra-process buffer hand-off and pay the regular local
  /// pvmd route instead — quantifies the §4.2.1 optimization (ablation A3).
  bool disable_local_handoff = false;
  /// DPC-style restriction (paper §5.0): a ULP may only migrate at the
  /// boundaries of its compute segments (yield/recv points) instead of
  /// being interrupted mid-burst.  Costs responsiveness; ablation A9.
  bool migrate_at_safe_points_only = false;
  /// Deadlines for the blocking migration stages; on expiry the ULP move is
  /// aborted and the ULP stays runnable at the source.  The accept deadline
  /// is generous by default: the unoptimized accept path costs several
  /// reference-seconds (§4.2.3) and shares the destination CPU.
  sim::Time flush_ack_timeout = 5.0;
  sim::Time accept_timeout = 120.0;
};

/// Timing of one ULP migration (Figure 3 / Table 4 reproduction).
struct UlpMigrationStats {
  int ulp = -1;
  std::string from_host;
  std::string to_host;
  std::size_t state_bytes = 0;
  bool ok = true;
  std::string failure;  ///< empty when ok; aborted moves are not in history()

  sim::Time event_time = 0;     ///< migrate order at the container
  sim::Time captured_time = 0;  ///< context captured, ULP off the run queue
  sim::Time flush_done = 0;     ///< all containers redirected + acked
  sim::Time offload_done = 0;   ///< state handed off the source host
  sim::Time accept_done = 0;    ///< placed + back on a scheduler queue

  [[nodiscard]] sim::Time obtrusiveness() const {
    return offload_done - event_time;
  }
  [[nodiscard]] sim::Time migration_time() const {
    return accept_done - event_time;
  }
};

/// One User-Level Process.
class Ulp {
 public:
  Ulp(Upvm& sys, int inst, VaRegion region);
  Ulp(const Ulp&) = delete;
  Ulp& operator=(const Ulp&) = delete;

  [[nodiscard]] int inst() const noexcept { return inst_; }
  [[nodiscard]] int nulps() const noexcept;
  [[nodiscard]] const VaRegion& region() const noexcept { return region_; }
  [[nodiscard]] UlpProcess& container() const noexcept { return *container_; }
  [[nodiscard]] os::Host& host() const noexcept;
  [[nodiscard]] bool done() const noexcept { return done_; }

  // -- ULP-private memory ----------------------------------------------------
  /// Sizes must fit the reserved VA region.
  void set_data_bytes(std::size_t n);
  void set_heap_bytes(std::size_t n);
  [[nodiscard]] std::size_t image_bytes() const noexcept {
    return data_bytes_ + heap_bytes_ + stack_bytes_ + context_bytes_;
  }

  // -- Messaging (the PVM-like interface the SPMD program uses) --------------
  pvm::Buffer& initsend(pvm::Encoding enc = pvm::Encoding::kDefault);
  [[nodiscard]] pvm::Buffer& sbuf();
  [[nodiscard]] sim::Co<void> send(int dst_inst, int tag);
  [[nodiscard]] sim::Co<pvm::Message> recv(int src_inst = -1, int tag = -1);
  [[nodiscard]] std::optional<pvm::Message> nrecv(int src_inst, int tag);
  [[nodiscard]] pvm::Buffer& rbuf();

  // -- Computation -------------------------------------------------------------
  /// Consume `ref_seconds` of CPU.  Cooperative: the ULP holds its
  /// container's processor while computing, and the burst can be frozen and
  /// moved to another host mid-way by a migration.
  [[nodiscard]] sim::Co<void> compute(double ref_seconds);

  /// Yield the processor to another runnable ULP (cooperative scheduling).
  [[nodiscard]] sim::Co<void> yield();

 private:
  friend class Upvm;
  friend class UlpProcess;

  struct BurstAwait;

  /// Freeze whatever the ULP is doing (migration stage 1): close the
  /// runnable gate and interrupt an in-flight compute burst, saving its
  /// remaining work.
  void freeze();
  /// DPC-style freeze: close the gate but let an in-flight burst run to its
  /// natural end (migration only at segment boundaries, §5.0).
  [[nodiscard]] sim::Co<void> freeze_at_safe_point();
  /// Resume at the (possibly new) container.
  void thaw();

  Upvm* sys_;
  int inst_;
  VaRegion region_;
  UlpProcess* container_ = nullptr;
  bool done_ = false;

  std::size_t data_bytes_ = 0;
  std::size_t heap_bytes_ = 0;
  std::size_t stack_bytes_ = 64 * 1024;
  std::size_t context_bytes_ = 512;

  pvm::Mailbox mailbox_;
  std::unique_ptr<pvm::Buffer> sbuf_;
  std::unique_ptr<pvm::Buffer> rbuf_;
  std::unordered_map<int, std::uint64_t> next_seq_;

  sim::Gate runnable_gate_;
  sim::Trigger burst_done_;
  double pending_work_ = 0;
  std::shared_ptr<os::CpuJob> burst_;
  BurstAwait* active_burst_await_ = nullptr;
  sim::ProcHandle main_;
};

/// The UPVM container process on one host: a PVM task whose run-time
/// schedules resident ULPs and dispatches their remote messages.
class UlpProcess {
 public:
  UlpProcess(Upvm& sys, pvm::Task& task);

  [[nodiscard]] pvm::Task& task() const noexcept { return *task_; }
  [[nodiscard]] os::Host& host() const noexcept {
    return task_->pvmd().host();
  }
  [[nodiscard]] Upvm& system() const noexcept { return *sys_; }

  /// The "one running ULP at a time" token (cooperative user-level
  /// scheduling within the container).
  [[nodiscard]] sim::Semaphore& cpu_token() noexcept { return cpu_token_; }

  [[nodiscard]] std::size_t resident_ulps() const noexcept {
    return residents_;
  }

 private:
  friend class Upvm;
  Upvm* sys_;
  pvm::Task* task_;
  sim::Semaphore cpu_token_;
  std::size_t residents_ = 0;
};

class Upvm {
 public:
  /// Attach UPVM to a PVM virtual machine.  One container is started per
  /// host currently in the VM.
  explicit Upvm(pvm::PvmSystem& vm, UpvmOptions options = {});
  ~Upvm();
  Upvm(const Upvm&) = delete;
  Upvm& operator=(const Upvm&) = delete;

  [[nodiscard]] pvm::PvmSystem& vm() const noexcept { return *vm_; }
  [[nodiscard]] const UpvmOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] AddressSpaceMap& address_map() noexcept { return va_map_; }

  /// Start the containers.  Must complete before run_spmd.
  [[nodiscard]] sim::Co<void> start();

  /// SPMD launch (the only style UPVM supports, §3.2.2): `nulps` ULPs all
  /// running `main`, placed round-robin across containers.
  std::vector<Ulp*> run_spmd(UlpMain main, int nulps);

  [[nodiscard]] Ulp* ulp(int inst) const;
  [[nodiscard]] int nulps() const noexcept {
    return static_cast<int>(ulps_.size());
  }
  [[nodiscard]] const std::vector<std::unique_ptr<UlpProcess>>& containers()
      const noexcept {
    return containers_;
  }

  /// Wait for every ULP main to finish.
  [[nodiscard]] sim::Co<void> wait_all_ulps();

  /// Release the container tasks (they exit their PVM programs).  Call
  /// after the SPMD application is done to let the virtual machine drain.
  void shutdown() { shutdown_.open(); }

  /// Migrate one ULP to the container on `dst` (Figure 3's protocol).
  /// Run-time failures (a crashed destination, a flush or accept timeout) do
  /// not throw: the move is aborted, the ULP stays runnable at the source,
  /// and the returned stats carry ok == false with the reason.
  ///
  /// `epoch` stamps the command with the issuing scheduler's election term;
  /// when a fence is installed (set_fence) a stale epoch throws Error
  /// before the ULP is touched, so a deposed leader can never start a move.
  ///
  /// `ctx` roots the move's span tree under the caller's trace; the whole
  /// protocol — capture/flush/offload/accept, aborts, fencing refusals —
  /// records as children of one "upvm.migrate" span (DESIGN.md §10).
  [[nodiscard]] sim::Co<UlpMigrationStats> migrate_ulp(
      int inst, os::Host& dst,
      std::optional<std::uint64_t> epoch = std::nullopt,
      obs::TraceContext ctx = {});

  /// True while `inst` has a migration in progress.
  [[nodiscard]] bool migrating(int inst) const {
    return pending_.find(inst) != pending_.end();
  }

  /// Install the fencing token shared with the (replicated) scheduler.
  void set_fence(std::shared_ptr<pvm::MigrationFence> fence) noexcept {
    fence_ = std::move(fence);
  }
  [[nodiscard]] const std::shared_ptr<pvm::MigrationFence>& fence() const
      noexcept {
    return fence_;
  }

  [[nodiscard]] const std::vector<UlpMigrationStats>& history()
      const noexcept {
    return history_;
  }

  /// Render Figure 2: ULP regions and current residency.
  [[nodiscard]] std::string format_address_map() const;

 private:
  friend class Ulp;

  [[nodiscard]] UlpProcess* container_on(const os::Host& host) const;
  void dispatch_transport(UlpProcess& at, const pvm::Message& m);
  void on_ulp_done();
  /// Publish `c`'s run-queue depth to the upvm.runqueue.<host> gauge.
  void note_runqueue(const UlpProcess& c);
  /// Publish live/carved VA-region counts to the upvm.va.* gauges.
  void note_va_usage();

  /// Route a ULP-level message: local hand-off or remote PVM transport.
  [[nodiscard]] sim::Co<void> route_ulp(Ulp& from, int dst_inst, int tag,
                                        std::shared_ptr<const pvm::Buffer> b,
                                        std::uint64_t seq);

  pvm::PvmSystem* vm_;
  UpvmOptions options_;
  AddressSpaceMap va_map_;
  std::vector<std::unique_ptr<UlpProcess>> containers_;
  std::vector<std::unique_ptr<Ulp>> ulps_;
  UlpMain spmd_main_;
  int ulps_done_ = 0;
  sim::Trigger all_done_;
  sim::Gate shutdown_;
  std::vector<UlpMigrationStats> history_;

  struct PendingFlush {
    int expected = 0;
    int received = 0;
    std::unique_ptr<sim::Trigger> all_acked;
  };
  std::unordered_map<int, std::unique_ptr<PendingFlush>> pending_;
  std::shared_ptr<pvm::MigrationFence> fence_;
};

/// Header riding along remote ULP messages (costed via Message::extra_bytes).
struct UlpHeader {
  int src_inst = -1;
  int dst_inst = -1;
  int tag = 0;
  std::uint64_t seq = 0;

  UlpHeader() = default;
  UlpHeader(int s, int d, int t, std::uint64_t q)
      : src_inst(s), dst_inst(d), tag(t), seq(q) {}
};

}  // namespace cpe::upvm
