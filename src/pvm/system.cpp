#include "pvm/system.hpp"

#include "pvm/body_pool.hpp"
#include <algorithm>

namespace cpe::pvm {

// ---------------------------------------------------------------------------
// Pvmd
// ---------------------------------------------------------------------------

Pvmd::Pvmd(PvmSystem& sys, os::Host& host, std::uint32_t index)
    : sys_(&sys),
      host_(&host),
      node_(host.node()),
      index_(index),
      outgoing_(sys.engine()),
      inbound_(sys.engine()) {
  sys.network().datagrams().bind(
      node_, kPvmdPort,
      [this](net::Datagram d) { receive_datagram(std::move(d)); });
  pump_proc_ = sim::launch(sys.engine(), pump());
  inbound_proc_ = sim::launch(sys.engine(), inbound_pump());
}

Pvmd::~Pvmd() {
  // Uses the cached node id: the Host object may already be gone when the
  // virtual machine is torn down.
  sys_->network().datagrams().unbind(node_, kPvmdPort);
}

void Pvmd::attach(Task& t) {
  CPE_EXPECTS(local_.find(t.current_tid().raw()) == local_.end());
  local_[t.current_tid().raw()] = &t;
}

void Pvmd::detach(Task& t) { local_.erase(t.current_tid().raw()); }

Task* Pvmd::local_by_current(Tid current) const {
  auto it = local_.find(current.raw());
  return it == local_.end() ? nullptr : it->second;
}

void Pvmd::enqueue_remote(Message m, net::NodeId dst_node) {
  outgoing_.send(Outgoing(std::move(m), dst_node));
}

sim::Co<void> Pvmd::pump() {
  // The single-threaded pvmd: everything leaving this host is serialized,
  // which preserves per-pair FIFO on the wire.
  for (;;) {
    Outgoing o = co_await outgoing_.recv();
    // A traced message carries its context on the wire (DESIGN.md §10).
    const std::size_t wire =
        o.msg.payload_bytes() + sys_->costs().pvm.msg_header_bytes +
        (o.msg.tctx.valid() ? obs::kTraceContextWireBytes : 0);
    // Frame checksum (DESIGN.md §7): stamped at the wire point so injected
    // bit-corruption is detectable at the receiver.  Forwarded frames are
    // re-stamped over the same body — the CRC is per hop, the seq is
    // end-to-end.
    if (sys_->wire_checksums_)
      o.msg.crc = o.msg.body ? o.msg.body->crc32() : 0;
    try {
      co_await sys_->network().datagrams().send(net::Datagram(
          host_->node(), o.dst_node, kPvmdPort, wire, std::move(o.msg)));
    } catch (const net::DeliveryError& e) {
      // The peer (or this host) is unreachable: real pvmds drop the message
      // and keep serving.  Crash recovery is the schedulers' business.
      sys_->trace().log("pvmd", host_->name() + ": dropping message: " +
                                    std::string(e.what()));
    }
  }
}

void Pvmd::receive_datagram(net::Datagram d) {
  Message m = std::any_cast<Message>(std::move(d.payload));
  // End-to-end frame check.  The transport's fragment checksum (the corrupt
  // hook) already rejects corrupted frames pre-ack, so this last line of
  // defense only trips on damage past that layer; a mismatch is a counted
  // drop, surfacing exactly like a lost frame.
  if (m.crc != 0 && m.body && m.body->crc32() != m.crc) {
    sys_->crc_dropped_ctr_->inc();
    sys_->trace().log("pvmd", host_->name() +
                                  ": dropping corrupt frame from " +
                                  m.src.str() + " (CRC mismatch)");
    return;
  }
  // Remote arrival: one pvmd->task local-socket hop remains.
  const auto& c = sys_->costs().pvm;
  const sim::Time cost =
      c.local_route_fixed / 2 +
      static_cast<double>(m.payload_bytes()) * 8.0 / c.local_route_bps;
  inbound_.send(Inbound(std::move(m), cost, /*hops=*/1));
}

void Pvmd::deliver_local(Message m, int hops) {
  const auto& c = sys_->costs().pvm;
  // Full task -> pvmd -> task path through Unix-domain sockets.
  const sim::Time cost =
      c.local_route_fixed +
      static_cast<double>(m.payload_bytes()) * 8.0 / c.local_route_bps;
  inbound_.send(Inbound(std::move(m), cost, hops));
}

sim::Co<void> Pvmd::inbound_pump() {
  for (;;) {
    Inbound in = co_await inbound_.recv();
    co_await sim::Delay(sys_->engine(), in.cost);
    dispatch(std::move(in.msg), in.hops);
  }
}

void Pvmd::dispatch(Message m, int hops) {
  if (hops > 8)
    throw Error("pvmd: message to " + m.dst.str() +
                " bounced through too many daemons (forwarding loop?)");
  // The message arrived at this host: merge the sender's Lamport stamp.
  sys_->spans().on_receive(host_->name(), m.lamport);
  Task* t = sys_->find_logical(m.dst);
  if (t == nullptr || t->exited()) {
    sys_->trace().log("pvmd", "dropping message for dead task " + m.dst.str());
    return;
  }
  if (&t->pvmd() != this) {
    // The task migrated while this message was queued/in flight: forward it
    // to where it lives now, like the old host's mpvmd does.
    sys_->trace().log("pvmd", "forwarding message for " + m.dst.str() +
                                  " to " + t->pvmd().host().name());
    if (m.tctx.valid()) {
      const obs::SpanId ev =
          sys_->spans().event(m.tctx, "pvm.forward", host_->name());
      sys_->spans().annotate(ev, "task", m.dst.str());
      sys_->spans().annotate(ev, "to", t->pvmd().host().name());
    }
    if (sys_->forward_observer_) sys_->forward_observer_(m, *t, *this);
    m.lamport = sys_->spans().on_send(host_->name());
    enqueue_remote(std::move(m), t->pvmd().host().node());
    return;
  }
  // Sequenced delivery (DESIGN.md §7): the task's per-sender window dedups
  // replayed frames and re-orders held ones; the pvm.deliver trace event is
  // emitted inside at the actual release point.
  t->accept(std::move(m));
}

// ---------------------------------------------------------------------------
// GroupServer
// ---------------------------------------------------------------------------

GroupServer::Group& GroupServer::get(const std::string& name) {
  return groups_[name];
}

sim::Co<int> GroupServer::join(const std::string& group, Tid member) {
  co_await sim::Delay(eng_, rtt_);
  Group& g = get(group);
  for (std::size_t i = 0; i < g.members.size(); ++i)
    if (g.members[i] == member) co_return static_cast<int>(i);
  g.members.push_back(member);
  co_return static_cast<int>(g.members.size()) - 1;
}

sim::Co<void> GroupServer::leave(const std::string& group, Tid member) {
  co_await sim::Delay(eng_, rtt_);
  Group& g = get(group);
  std::erase(g.members, member);
}

sim::Co<void> GroupServer::barrier(const std::string& group, int count) {
  CPE_EXPECTS(count > 0);
  co_await sim::Delay(eng_, rtt_);
  Group& g = get(group);
  if (!g.barrier_release)
    g.barrier_release = std::make_unique<sim::Trigger>(eng_);
  if (++g.barrier_arrived >= count) {
    g.barrier_arrived = 0;
    g.barrier_release->fire();
    co_return;
  }
  co_await g.barrier_release->wait();
}

std::vector<Tid> GroupServer::members(const std::string& group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? std::vector<Tid>{} : it->second.members;
}

int GroupServer::instance_of(const std::string& group, Tid member) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return -1;
  for (std::size_t i = 0; i < it->second.members.size(); ++i)
    if (it->second.members[i] == member) return static_cast<int>(i);
  return -1;
}

std::size_t GroupServer::size(const std::string& group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.members.size();
}

// ---------------------------------------------------------------------------
// PvmSystem
// ---------------------------------------------------------------------------

PvmSystem::PvmSystem(sim::Engine& eng, net::Network& net,
                     calib::CostModel costs)
    : eng_(eng),
      net_(&net),
      costs_(costs),
      trace_(eng),
      metrics_(&eng),
      spans_(eng),
      groups_(eng, costs.pvm.group_rtt),
      all_exited_(eng) {
  msgs_routed_ctr_ = &metrics_.counter("pvm.messages_routed");
  bytes_routed_ctr_ = &metrics_.counter("pvm.bytes_routed");
  seq_duplicates_ctr_ = &metrics_.counter("pvm.seq.duplicates_dropped");
  seq_held_ctr_ = &metrics_.counter("pvm.seq.reordered_held");
  seq_gaps_ctr_ = &metrics_.counter("pvm.seq.gaps_skipped");
  seq_window_evicted_ctr_ = &metrics_.counter("pvm.seq.window_evicted");
  crc_dropped_ctr_ = &metrics_.counter("pvm.crc.dropped");
  // Pull-style: snapshot the transport totals into gauges at export time so
  // the per-fragment send path never touches the registry.
  metrics_.add_collector([this](obs::MetricsRegistry& reg) {
    const auto& dg = net_->datagrams();
    reg.gauge("net.datagrams.sent").set(static_cast<double>(dg.datagrams_sent()));
    reg.gauge("net.datagram.bytes_sent")
        .set(static_cast<double>(dg.payload_bytes_sent()));
    reg.gauge("net.fragments.retransmitted")
        .set(static_cast<double>(dg.fragments_retransmitted()));
    reg.gauge("net.datagram.drops_total")
        .set(static_cast<double>(dg.drops_total()));
    reg.gauge("net.datagram.delivery_errors_total")
        .set(static_cast<double>(dg.delivery_errors_total()));
    // Adversarial-injection totals (DESIGN.md §7): the sweeps assert these
    // are nonzero when a chaos profile is active.
    reg.gauge("net.datagram.duplicates_injected")
        .set(static_cast<double>(dg.duplicates_injected()));
    reg.gauge("net.datagram.reorders_injected")
        .set(static_cast<double>(dg.reorders_injected()));
    reg.gauge("net.datagram.bursts_injected")
        .set(static_cast<double>(dg.bursts_injected()));
    reg.gauge("net.datagram.corrupt_injected")
        .set(static_cast<double>(dg.corrupt_injected()));
    reg.gauge("net.datagram.corrupt_dropped")
        .set(static_cast<double>(dg.corrupt_dropped()));
    reg.gauge("net.datagram.corrupt_delivered")
        .set(static_cast<double>(dg.corrupt_delivered()));
    reg.gauge("net.tcp.corrupt_segments")
        .set(static_cast<double>(net_->tcp_corrupt_segments()));
    reg.gauge("net.tcp.bursts").set(static_cast<double>(net_->tcp_bursts()));
    const auto& eth = net_->ethernet();
    reg.gauge("net.ether.frames").set(static_cast<double>(eth.total_frames()));
    reg.gauge("net.ether.payload_bytes")
        .set(static_cast<double>(eth.total_payload_bytes()));
  });
  // Teach the transport what corruption does to a PVM frame: flip one
  // payload bit, then report whether the frame CRC catches it.  Non-PVM
  // payloads (GS wire state, load gossip) carry their own transport
  // checksum in this model — corruption of those is always detected and
  // the frame dropped at the fragment level.
  net_->datagrams().set_corrupt_hook([this](std::any& payload) -> bool {
    Message* m = std::any_cast<Message>(&payload);
    if (m == nullptr) return true;
    if (!m->body || m->body->bytes() == 0) return true;  // header-only frame
    Buffer garbled(*m->body);
    garbled.corrupt_bit(static_cast<std::size_t>(corrupt_rng_.below(
        static_cast<std::uint64_t>(garbled.bytes()) * 8)));
    m->body = make_body(std::move(garbled));
    if (!wire_checksums_) return false;  // undefended: garbage flows on
    return m->crc == 0 || m->body->crc32() != m->crc;
  });
}

PvmSystem::~PvmSystem() {
  for (auto& [raw, task] : by_logical_)
    if (!task->exited()) task->process().kill();
}

Pvmd& PvmSystem::add_host(os::Host& host) {
  CPE_EXPECTS(daemon_on(host) == nullptr);
  daemons_.push_back(std::make_unique<Pvmd>(
      *this, host, static_cast<std::uint32_t>(daemons_.size())));
  host.add_observer([this](os::Host& h, os::HostEvent ev) {
    if (ev == os::HostEvent::kCrash) handle_host_crash(h);
  });
  trace_.log("pvm", "pvmd started on " + host.name());
  return *daemons_.back();
}

void PvmSystem::handle_host_crash(os::Host& host) {
  // Collect first: firing exit watches delivers messages and may re-enter.
  std::vector<Task*> lost;
  for (const auto& [raw, t] : by_logical_) {
    if (!t->exited() && &t->pvmd().host() == &host) lost.push_back(t.get());
  }
  for (Task* t : lost) {
    if (t->process().alive()) {
      // Crash-recoverable: the process was spared (stranded); a recovery
      // driver will restart it from its checkpoint on another host.
      trace_.log("pvm", "task " + t->tid().str() + " stranded by crash of " +
                            host.name());
      continue;
    }
    trace_.log("pvm", "task " + t->tid().str() + " (" + t->program() +
                          ") lost in crash of " + host.name());
    t->pvmd().detach(*t);
    t->mark_exited();
    fire_exit_watches(*t, /*crashed=*/true);
    CPE_ASSERT(live_tasks_ > 0);
    if (--live_tasks_ == 0) all_exited_.fire();
  }
}

Pvmd* PvmSystem::daemon_on(const os::Host& host) const {
  for (const auto& d : daemons_)
    if (&d->host() == &host) return d.get();
  return nullptr;
}

Pvmd* PvmSystem::daemon_at(net::NodeId node) const {
  for (const auto& d : daemons_)
    if (d->host().node() == node) return d.get();
  return nullptr;
}

void PvmSystem::register_program(const std::string& name, TaskMain main) {
  CPE_EXPECTS(main != nullptr);
  programs_[name] = std::move(main);
}

bool PvmSystem::has_program(const std::string& name) const {
  return programs_.find(name) != programs_.end();
}

namespace {
sim::Co<void> task_wrapper(PvmSystem* sys, Task* t, TaskMain fn) {
  co_await fn(*t);
  sys->on_task_exit(*t);
}
}  // namespace

sim::Co<Task*> PvmSystem::spawn_one(const std::string& program, Pvmd& pvmd,
                                    Tid parent) {
  co_await sim::Delay(eng_,
                      costs_.pvm.spawn_fork_exec + costs_.pvm.enroll);
  os::Process& proc = pvmd.host().create_process(program);
  const Tid tid = pvmd.allocate_tid();
  auto owned =
      std::make_unique<Task>(*this, pvmd, proc, tid, parent, program);
  Task* t = owned.get();
  by_logical_[tid.raw()] = std::move(owned);
  current_to_logical_[tid.raw()] = tid.raw();
  pvmd.attach(*t);
  ++live_tasks_;
  trace_.log("pvm", "spawned " + program + " as " + tid.str() + " on " +
                        pvmd.host().name());
  if (task_observer_) task_observer_(*t);
  proc.run(task_wrapper(this, t, programs_.at(program)));
  co_return t;
}

sim::Co<std::vector<Tid>> PvmSystem::spawn(const std::string& program,
                                           int count,
                                           const std::string& where,
                                           Tid parent) {
  CPE_EXPECTS(count > 0);
  CPE_EXPECTS(!daemons_.empty());
  if (!has_program(program))
    throw Error("pvm_spawn: no such program: " + program);

  std::vector<Tid> tids;
  tids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Pvmd* d = nullptr;
    if (where.empty()) {
      d = daemons_[next_spawn_host_++ % daemons_.size()].get();
    } else {
      for (const auto& cand : daemons_)
        if (cand->host().name() == where) d = cand.get();
      if (d == nullptr)
        throw Error("pvm_spawn: host not in virtual machine: " + where);
    }
    Task* t = co_await spawn_one(program, *d, parent);
    tids.push_back(t->tid());
  }
  co_return tids;
}

Task* PvmSystem::find_logical(Tid logical) const {
  auto it = by_logical_.find(logical.raw());
  return it == by_logical_.end() ? nullptr : it->second.get();
}

Task* PvmSystem::find_current(Tid current) const {
  auto it = current_to_logical_.find(current.raw());
  return it == current_to_logical_.end() ? nullptr
                                         : find_logical(Tid(it->second));
}

Tid PvmSystem::resolve_current(Tid maybe_stale) const {
  std::int32_t t = maybe_stale.raw();
  for (int i = 0; i < 64; ++i) {
    auto it = forward_.find(t);
    if (it == forward_.end()) return Tid(t);
    t = it->second;
  }
  throw Error("resolve_current: forwarding cycle");
}

std::vector<Task*> PvmSystem::all_tasks() const {
  std::vector<Task*> out;
  out.reserve(by_logical_.size());
  for (const auto& [raw, t] : by_logical_) out.push_back(t.get());
  // The flat map's iteration order changes across rehash; sort by logical
  // tid so scans over the registry are deterministic run to run.
  std::sort(out.begin(), out.end(), [](const Task* a, const Task* b) {
    return a->tid().raw() < b->tid().raw();
  });
  return out;
}

bool PvmSystem::is_local(const Task& from, Tid dst) const {
  const Tid cur = from.translate(dst);
  return cur.valid() && cur.host_index() < daemons_.size() &&
         daemons_[cur.host_index()].get() == &from.pvmd();
}

void PvmSystem::route(Task& from, Message m) {
  ++messages_routed_;
  bytes_routed_ += m.payload_bytes();
  msgs_routed_ctr_->inc();
  bytes_routed_ctr_->inc(m.payload_bytes());
  // Correspondent tracking (MPVM scoped flush): an application message makes
  // sender and receiver correspondents of each other.  Control traffic does
  // not count — a flush must not inflate the very set it targets.
  if (m.tag < kControlTagBase) {
    from.note_peer(m.dst);
    if (Task* to = find_logical(m.dst)) to->note_peer(from.tid());
  }
  // Causal tracing: a send inherits the sender's trace context (unless the
  // caller pre-stamped one) and ticks the sender host's Lamport clock.
  if (!m.tctx.valid()) m.tctx = from.trace_context();
  m.lamport = spans_.on_send(from.pvmd().host().name());
  // The sender's library maps the logical destination to where it believes
  // the task currently runs; a stale belief is corrected by daemon-level
  // forwarding on arrival.
  const Tid current_guess = from.translate(m.dst);
  CPE_EXPECTS(current_guess.valid());
  const std::uint32_t host_idx = current_guess.host_index();
  CPE_EXPECTS(host_idx < daemons_.size());
  Pvmd& dst_d = *daemons_[host_idx];
  Pvmd& src_d = from.pvmd();
  if (&dst_d == &src_d)
    src_d.deliver_local(std::move(m), 0);
  else if (from.direct_route())
    from.direct_send(std::move(m));
  else
    src_d.enqueue_remote(std::move(m), dst_d.host().node());
}

Tid PvmSystem::retid(Task& task, os::Host& new_host) {
  Pvmd* nd = daemon_on(new_host);
  CPE_EXPECTS(nd != nullptr);
  task.pvmd().detach(task);
  const Tid old = task.current_tid();
  const Tid fresh = nd->allocate_tid();
  forward_[old.raw()] = fresh.raw();
  current_to_logical_.erase(old.raw());
  current_to_logical_[fresh.raw()] = task.tid().raw();
  task.set_current_tid(fresh);
  task.set_pvmd(*nd);
  nd->attach(task);
  trace_.log("pvm", "retid " + task.tid().str() + ": " + old.str() + " -> " +
                        fresh.str() + " on " + new_host.name());
  return fresh;
}

bool PvmSystem::kill(Tid logical) {
  Task* t = find_logical(logical);
  if (t == nullptr || t->exited()) return false;
  trace_.log("pvm", "pvm_kill " + logical.str());
  t->pvmd().detach(*t);
  t->mark_exited();
  // Abort the program via an event: kill(2) semantics, and safe even when a
  // task kills itself (destroying the running frame inline would be UB).
  eng_.schedule_in(0, [proc = &t->process()] { proc->kill(); });
  fire_exit_watches(*t);
  CPE_ASSERT(live_tasks_ > 0);
  if (--live_tasks_ == 0) all_exited_.fire();
  return true;
}

void PvmSystem::notify_exit(Tid observer, Tid observed, int tag) {
  Task* watched = find_logical(observed);
  Task* watcher = find_logical(observer);
  CPE_EXPECTS(watcher != nullptr);
  if (watched == nullptr || watched->exited()) {
    // Fire immediately, as pvm_notify does for already-dead tasks.
    Buffer b;
    b.pk_int(observed.raw());
    b.pk_int(0);
    Message m(observed, observer, tag,
              make_body(std::move(b)));
    watcher->pvmd().deliver_local(std::move(m), 0);
    return;
  }
  exit_watches_.push_back(ExitWatch{observer.raw(), observed.raw(), tag});
}

void PvmSystem::fire_exit_watches(Task& t, bool crashed) {
  // Collect first: delivering can re-enter (watch lists, handlers).
  std::vector<ExitWatch> due;
  std::erase_if(exit_watches_, [&](const ExitWatch& w) {
    if (w.observed != t.tid().raw()) return false;
    due.push_back(w);
    return true;
  });
  for (const ExitWatch& w : due) {
    Task* watcher = find_logical(Tid(w.observer));
    if (watcher == nullptr || watcher->exited()) continue;
    Buffer b;
    b.pk_int(w.observed);
    b.pk_int(crashed ? 1 : 0);
    Message m(t.tid(), watcher->tid(), w.tag,
              make_body(std::move(b)));
    watcher->pvmd().deliver_local(std::move(m), 0);
  }
}

void PvmSystem::on_task_exit(Task& t) {
  if (t.exited()) return;
  t.pvmd().detach(t);
  t.mark_exited();
  fire_exit_watches(t);
  // Reap the OS process *after* the program coroutine reaches its final
  // suspend: on_task_exit runs inside that coroutine, and Process::kill
  // would otherwise destroy a still-running frame.
  eng_.schedule_in(0, [proc = &t.process()] { proc->kill(); });
  trace_.log("pvm", "task " + t.tid().str() + " (" + t.program() + ") exited");
  CPE_ASSERT(live_tasks_ > 0);
  if (--live_tasks_ == 0) all_exited_.fire();
}

sim::Co<void> PvmSystem::wait_exit(Tid logical) {
  Task* t = find_logical(logical);
  CPE_EXPECTS(t != nullptr);
  while (!t->exited()) co_await t->exit_trigger().wait();
}

sim::Co<void> PvmSystem::wait_all_exited() {
  while (live_tasks_ > 0) co_await all_exited_.wait();
}

}  // namespace cpe::pvm
