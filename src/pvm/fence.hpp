// Fencing tokens for migration control.
//
// Every command a global scheduler issues carries its election epoch (a
// monotonically increasing term number).  The resource — the migration
// machinery inside MPVM/UPVM/ADM — keeps a floor of the highest epoch it
// has ever admitted and rejects anything older.  A deposed leader that is
// partitioned away and still believes it is in charge can therefore never
// cause a double-migration: the moment the new leader's first command lands,
// the floor rises past the old leader's term and its in-flight commands
// bounce off.  (Classic fencing-token construction; see DESIGN.md "GS high
// availability & fencing".)
#pragma once

#include <cstdint>

namespace cpe::pvm {

class MigrationFence {
 public:
  MigrationFence() noexcept = default;

  /// Admit a command stamped with `epoch`.  Returns true (and raises the
  /// floor) when the epoch is current or newer; false when it is stale.
  [[nodiscard]] bool admit(std::uint64_t epoch) noexcept {
    if (epoch < floor_) {
      ++rejected_;
      return false;
    }
    floor_ = epoch;
    ++admitted_;
    return true;
  }

  /// Raise the floor without admitting a command (a newly elected leader
  /// announces its term before issuing its first decision).
  void raise(std::uint64_t epoch) noexcept {
    if (epoch > floor_) floor_ = epoch;
  }

  [[nodiscard]] std::uint64_t floor() const noexcept { return floor_; }
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  std::uint64_t floor_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace cpe::pvm
