// Pooled allocation for immutable message bodies.
//
// Every send wraps its finished Buffer in a shared_ptr<const Buffer>; with
// make_shared that is one control-block+object heap node per message,
// churned at message rate.  The node size is identical for every body, so a
// small free-list recycler removes nearly all of that allocator traffic.
// The simulation is single-threaded (one engine, one thread — DESIGN.md §13),
// so the pool needs no locking.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "pvm/buffer.hpp"

namespace cpe::pvm {

namespace detail {

/// Free list of the fixed-size node std::allocate_shared<const Buffer>
/// requests (control block + Buffer fused into one allocation).  The first
/// allocation pins the node size; requests of any other size pass straight
/// through to operator new/delete.
class BodyPool {
 public:
  static BodyPool& instance() {
    static BodyPool pool;
    return pool;
  }

  [[nodiscard]] void* allocate(std::size_t bytes) {
    if (bytes == node_bytes_ && !free_.empty()) {
      void* p = free_.back();
      free_.pop_back();
      return p;
    }
    if (node_bytes_ == 0) node_bytes_ = bytes;
    return ::operator new(bytes);
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    // Capacity is reserved up front, so push_back here never allocates —
    // this path must stay noexcept-safe (bodies die inside destructors).
    if (bytes == node_bytes_ && free_.size() < free_.capacity()) {
      free_.push_back(p);
      return;
    }
    ::operator delete(p);
  }

 private:
  static constexpr std::size_t kMaxPooled = 4096;

  BodyPool() { free_.reserve(kMaxPooled); }
  ~BodyPool() {
    for (void* p : free_) ::operator delete(p);
  }

  std::vector<void*> free_;
  std::size_t node_bytes_ = 0;
};

template <class T>
struct BodyAlloc {
  using value_type = T;

  BodyAlloc() noexcept = default;
  template <class U>
  BodyAlloc(const BodyAlloc<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(BodyPool::instance().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    BodyPool::instance().deallocate(p, n * sizeof(T));
  }

  friend bool operator==(const BodyAlloc&, const BodyAlloc&) { return true; }
};

}  // namespace detail

/// Wrap a finished send buffer as an immutable message body, drawing the
/// shared node from the recycling pool.
[[nodiscard]] inline std::shared_ptr<const Buffer> make_body(Buffer&& b) {
  return std::allocate_shared<const Buffer>(detail::BodyAlloc<const Buffer>{},
                                            std::move(b));
}

/// Empty body (control frames that carry no payload).
[[nodiscard]] inline std::shared_ptr<const Buffer> make_body() {
  return std::allocate_shared<const Buffer>(detail::BodyAlloc<const Buffer>{});
}

}  // namespace cpe::pvm
