// Messages and per-task mailboxes.
#pragma once

#include <any>
#include <deque>
#include <memory>
#include <optional>

#include "obs/span.hpp"
#include "pvm/buffer.hpp"
#include "pvm/tid.hpp"
#include "sim/wait.hpp"

namespace cpe::pvm {

/// A message in flight or queued at a receiver.
///
/// `src`/`dst` are *logical* tids: the stable identities tasks were born
/// with.  Migration changes a task's routing (current) tid, but the library
/// re-maps transparently, so applications — and therefore mailbox matching —
/// only ever deal in logical tids (paper §2.1 stage 4).
struct Message {
  Tid src{};
  Tid dst{};
  int tag = 0;
  std::shared_ptr<const Buffer> body;
  /// Per-(src,dst) sequence number, stamped from 1 up by the sending task.
  /// 0 marks an unsequenced frame (daemon-forged notifies, exit watches):
  /// nothing to dedup, delivered as-is.  Receivers use the stream to drop
  /// duplicated frames and re-order held ones (Task::accept).
  std::uint64_t seq = 0;
  /// Wire-frame checksum (DESIGN.md §7): CRC-32 of the body, stamped by the
  /// sending daemon's pump and verified on receipt.  0 = unstamped (local
  /// and direct routes never traverse the lossy wire).
  std::uint32_t crc = 0;

  /// Library-side sidecar: run-time systems layered above PVM (UPVM's ULP
  /// transport, migration state transfer) attach typed headers or moved
  /// state here instead of re-encoding them.  `extra_bytes` is the on-wire
  /// size of that sidecar, so costs stay honest.
  std::any aux;
  std::size_t extra_bytes = 0;

  /// Causal-tracing envelope (DESIGN.md §10): the sender's trace context and
  /// Lamport stamp.  A valid context is charged kTraceContextWireBytes at
  /// the wire (pvmd pump / direct route), NOT in payload_bytes() — mailbox
  /// totals and migrating-state sizes are application bytes only.
  obs::TraceContext tctx;
  std::uint64_t lamport = 0;

  Message() noexcept {}
  Message(Tid src_, Tid dst_, int tag_, std::shared_ptr<const Buffer> body_,
          std::uint64_t seq_ = 0)
      : src(src_), dst(dst_), tag(tag_), body(std::move(body_)), seq(seq_) {}

  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return (body ? body->bytes() : 0) + extra_bytes;
  }
};

/// Queue of delivered-but-unreceived messages for one task (or one ULP).
/// Matching follows pvm_recv: a filter of kAny (-1) for src or tag matches
/// anything; otherwise exact match — and the *oldest* matching message wins.
///
/// The whole mailbox can be drained and refilled: unreceived messages are
/// part of a VP's migratable state (paper §2.2 stage 3).
class Mailbox {
 public:
  explicit Mailbox(sim::Engine& eng) : eng_(&eng) {}

  /// Deliver a message; wakes blocked receivers to re-check their filters.
  void push(Message m) {
    total_bytes_ += m.payload_bytes();
    msgs_.push_back(std::move(m));
    waiters_.wake_all();
  }

  [[nodiscard]] bool probe(std::int32_t src_raw, std::int32_t tag) const {
    for (const Message& m : msgs_)
      if (matches(m, src_raw, tag)) return true;
    return false;
  }

  [[nodiscard]] std::optional<Message> try_take(std::int32_t src_raw,
                                                std::int32_t tag) {
    for (auto it = msgs_.begin(); it != msgs_.end(); ++it) {
      if (matches(*it, src_raw, tag)) {
        Message m = std::move(*it);
        msgs_.erase(it);
        total_bytes_ -= m.payload_bytes();
        return m;
      }
    }
    return std::nullopt;
  }

  /// Blocking receive.
  [[nodiscard]] sim::Co<Message> take(std::int32_t src_raw, std::int32_t tag) {
    while (true) {
      if (auto m = try_take(src_raw, tag)) co_return std::move(*m);
      co_await waiters_.wait(*eng_);
    }
  }

  /// Receive with timeout (pvm_trecv); nullopt when the deadline passes.
  [[nodiscard]] sim::Co<std::optional<Message>> take_for(std::int32_t src_raw,
                                                         std::int32_t tag,
                                                         sim::Time timeout) {
    const sim::Time deadline = eng_->now() + timeout;
    while (true) {
      if (auto m = try_take(src_raw, tag)) co_return std::move(*m);
      const sim::Time left = deadline - eng_->now();
      if (left <= 0) co_return std::nullopt;
      if (!co_await waiters_.wait_for(*eng_, left)) {
        // Delivery can land on the same virtual tick as the deadline with
        // the timeout event ordered first; one last look keeps "timed out"
        // and "message left queued for me" mutually exclusive.
        co_return try_take(src_raw, tag);
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return msgs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return msgs_.empty(); }
  /// Total queued payload bytes — counted into a migrating VP's state size.
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return total_bytes_;
  }
  [[nodiscard]] std::size_t waiting_receivers() const noexcept {
    return waiters_.size();
  }

  /// Remove and return everything (migration: state capture).
  [[nodiscard]] std::deque<Message> drain() {
    total_bytes_ = 0;
    return std::exchange(msgs_, {});
  }

  /// Prepend previously drained messages (migration: state restore).  Order
  /// is preserved: drained messages precede anything delivered meanwhile.
  void refill(std::deque<Message> msgs) {
    for (auto it = msgs.rbegin(); it != msgs.rend(); ++it) {
      total_bytes_ += it->payload_bytes();
      msgs_.push_front(std::move(*it));
    }
    if (!msgs_.empty()) waiters_.wake_all();
  }

 private:
  static bool matches(const Message& m, std::int32_t src_raw,
                      std::int32_t tag) {
    return (src_raw == kAny || m.src.raw() == src_raw) &&
           (tag == kAny || m.tag == tag);
  }

  sim::Engine* eng_;
  std::deque<Message> msgs_;
  std::size_t total_bytes_ = 0;
  sim::WaitQueue waiters_;
};

}  // namespace cpe::pvm
