// The PVM virtual machine: per-host daemons (pvmd), the task registry,
// message routing, the group server, and the extension points the migration
// systems hook into.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/flat_map.hpp"

#include "calib/costs.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "os/host.hpp"
#include "pvm/task.hpp"
#include "sim/channel.hpp"
#include "sim/trace.hpp"

namespace cpe::pvm {

class PvmSystem;

/// Well-known datagram port of every pvmd.
inline constexpr std::uint16_t kPvmdPort = 1023;

/// Message tags >= kControlTagBase are reserved for the run-time systems
/// (MPVM flush/restart, UPVM transport, ADM events use their own ranges).
inline constexpr int kControlTagBase = 1 << 20;

/// VM-wide resource-bound knobs (validated at set_tuning).
struct PvmTuning {
  /// Hard cap on frames a receiver holds per sender stream while waiting
  /// for a sequence gap to fill (Task::accept).  On overflow the gap is
  /// abandoned immediately — same semantics as the gap timeout, counted in
  /// pvm.seq.window_evicted — so an adversarial or wedged peer cannot grow
  /// the reorder buffer without bound.
  std::size_t reorder_window_cap = 256;
};

/// Per-call library costs pluggable by the migration systems: MPVM installs
/// a shim charging re-entrancy-flag and tid-remap overhead (paper §4.1.1).
class LibraryShim {
 public:
  virtual ~LibraryShim() = default;
  /// Extra CPU per pvm_send / pvm_recv call.
  [[nodiscard]] virtual sim::Time send_overhead(const Task&) const {
    return 0;
  }
  [[nodiscard]] virtual sim::Time recv_overhead(const Task&) const {
    return 0;
  }
};

/// One PVM daemon per host: local task table, outgoing message pump (the
/// single-threaded pvmd serializes everything leaving its host), local
/// delivery, and task spawning.
class Pvmd {
 public:
  Pvmd(PvmSystem& sys, os::Host& host, std::uint32_t index);
  Pvmd(const Pvmd&) = delete;
  Pvmd& operator=(const Pvmd&) = delete;
  ~Pvmd();

  [[nodiscard]] os::Host& host() const noexcept { return *host_; }
  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] PvmSystem& system() const noexcept { return *sys_; }

  [[nodiscard]] Tid allocate_tid() {
    return Tid::make(index_, next_task_num_++);
  }

  void attach(Task& t);
  void detach(Task& t);
  [[nodiscard]] Task* local_by_current(Tid current) const;
  [[nodiscard]] std::size_t local_task_count() const noexcept {
    return local_.size();
  }

  /// Queue a message for a remote host; the pump sends in FIFO order.
  void enqueue_remote(Message m, net::NodeId dst_node);

  /// Deliver to a task on this host (charges the local-socket hop).
  /// `hops` guards against forwarding loops.
  void deliver_local(Message m, int hops = 0);

  /// Bytes queued behind the outgoing pump (diagnostics).
  [[nodiscard]] std::size_t outgoing_backlog() const noexcept {
    return outgoing_.size();
  }

 private:
  struct Outgoing {
    Message msg;
    net::NodeId dst_node = 0;
    Outgoing() {}
    Outgoing(Message m, net::NodeId n) : msg(std::move(m)), dst_node(n) {}
  };

  struct Inbound {
    Message msg;
    sim::Time cost = 0;
    int hops = 0;
    Inbound() {}
    Inbound(Message m, sim::Time c, int h) : msg(std::move(m)), cost(c),
                                             hops(h) {}
  };

  [[nodiscard]] sim::Co<void> pump();
  [[nodiscard]] sim::Co<void> inbound_pump();
  void receive_datagram(net::Datagram d);
  void dispatch(Message m, int hops);

  PvmSystem* sys_;
  os::Host* host_;
  net::NodeId node_ = 0;  ///< cached: valid even after the Host is destroyed
  std::uint32_t index_;
  std::uint32_t next_task_num_ = 1;
  util::FlatMap<std::int32_t, Task*> local_;
  sim::Channel<Outgoing> outgoing_;
  sim::Channel<Inbound> inbound_;
  sim::ProcHandle pump_proc_;
  sim::ProcHandle inbound_proc_;
};

/// Central coordinator for dynamic groups (the pvmgs task in real PVM).
/// Round-trip costs are charged per operation; membership is by logical tid.
class GroupServer {
 public:
  GroupServer(sim::Engine& eng, sim::Time rtt) : eng_(eng), rtt_(rtt) {}

  [[nodiscard]] sim::Co<int> join(const std::string& group, Tid member);
  [[nodiscard]] sim::Co<void> leave(const std::string& group, Tid member);
  [[nodiscard]] sim::Co<void> barrier(const std::string& group, int count);
  [[nodiscard]] std::vector<Tid> members(const std::string& group) const;
  [[nodiscard]] int instance_of(const std::string& group, Tid member) const;
  [[nodiscard]] std::size_t size(const std::string& group) const;

 private:
  struct Group {
    std::vector<Tid> members;  ///< index == instance number
    int barrier_arrived = 0;
    std::unique_ptr<sim::Trigger> barrier_release;
  };
  Group& get(const std::string& name);

  sim::Engine& eng_;
  sim::Time rtt_;
  std::unordered_map<std::string, Group> groups_;
};

class PvmSystem {
 public:
  PvmSystem(sim::Engine& eng, net::Network& net,
            calib::CostModel costs = calib::hp720_testbed());
  PvmSystem(const PvmSystem&) = delete;
  PvmSystem& operator=(const PvmSystem&) = delete;
  /// Halts every live task program first, so coroutines parked in mailboxes
  /// and gates unwind before those structures are destroyed.
  ~PvmSystem();

  [[nodiscard]] sim::Engine& engine() const noexcept { return eng_; }
  [[nodiscard]] net::Network& network() const noexcept { return *net_; }
  [[nodiscard]] const calib::CostModel& costs() const noexcept {
    return costs_;
  }
  [[nodiscard]] sim::TraceLog& trace() noexcept { return trace_; }
  /// VM-wide metric store.  Every subsystem (MPVM/UPVM/ADM/GS) records its
  /// counters and stage histograms here; a pull collector snapshots the
  /// net:: transport totals at export time.  See DESIGN.md §9.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// Causal span tracer (DESIGN.md §10): migration protocols record their
  /// stage spans here; routing stamps trace contexts onto messages and
  /// advances the per-host Lamport clocks.
  [[nodiscard]] obs::SpanTracer& spans() noexcept { return spans_; }
  [[nodiscard]] const obs::SpanTracer& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] GroupServer& groups() noexcept { return groups_; }

  /// Add a workstation to the virtual machine (starts its pvmd).
  Pvmd& add_host(os::Host& host);
  [[nodiscard]] const std::vector<std::unique_ptr<Pvmd>>& daemons()
      const noexcept {
    return daemons_;
  }
  [[nodiscard]] Pvmd* daemon_on(const os::Host& host) const;
  [[nodiscard]] Pvmd* daemon_at(net::NodeId node) const;

  /// Register an executable: what pvm_spawn("name", ...) starts.
  void register_program(const std::string& name, TaskMain main);
  [[nodiscard]] bool has_program(const std::string& name) const;

  /// Spawn from outside the VM (the PVM console).  `where`: host name, or
  /// empty for round-robin placement.
  [[nodiscard]] sim::Co<std::vector<Tid>> spawn(const std::string& program,
                                                int count,
                                                const std::string& where = {},
                                                Tid parent = Tid());

  // -- Task registry --------------------------------------------------------
  [[nodiscard]] Task* find_logical(Tid logical) const;
  [[nodiscard]] Task* find_current(Tid current) const;
  /// Follow the forwarding chain from a possibly-stale routing tid.
  [[nodiscard]] Tid resolve_current(Tid maybe_stale) const;
  /// Every registered task, sorted by logical tid (a stable order: the GS
  /// victim scans and checkpoint sweeps iterate this, and determinism
  /// invariant 8 extends to "same decision every run").
  [[nodiscard]] std::vector<Task*> all_tasks() const;

  // -- Routing --------------------------------------------------------------
  /// Hand a message from `from` to the transport (the back half of
  /// pvm_send, after the library-side costs were charged).
  void route(Task& from, Message m);

  /// True when a send from `from` to `dst` stays on the sender's host (the
  /// library charges the sender-side local-socket copy in that case).
  [[nodiscard]] bool is_local(const Task& from, Tid dst) const;

  // -- Migration support (library level) -------------------------------------
  /// Re-home `task` onto `new_host`'s pvmd: allocates a new routing tid,
  /// installs forwarding from the old one, and updates the daemon tables.
  /// Returns the new routing tid.  The caller moves the os::Process.
  Tid retid(Task& task, os::Host& new_host);

  /// Relocation (fencing) epoch of `logical`: bumped once per completed
  /// relocation — MPVM restart or checkpoint restart/recovery — and carried
  /// by every message announcing the new mapping, so a peer can drop
  /// announcements from superseded relocations (Task::learn_mapping).
  std::uint64_t bump_relocation_epoch(Tid logical) {
    return ++reloc_epoch_[logical.raw()];
  }
  [[nodiscard]] std::uint64_t relocation_epoch(Tid logical) const {
    auto it = reloc_epoch_.find(logical.raw());
    return it == reloc_epoch_.end() ? 0 : it->second;
  }

  // -- Adversarial-network defenses (DESIGN.md §7) ---------------------------
  /// Frame checksums on the daemon wire path (default on): the sending pump
  /// stamps a CRC-32 of the body onto every frame; corruption injected by
  /// the fabric is detected against it and recovered by retransmission.
  /// Turning this off reproduces the undefended stack — injected corruption
  /// reaches applications as garbled payloads.
  void set_wire_checksums(bool on) noexcept { wire_checksums_ = on; }
  [[nodiscard]] bool wire_checksums() const noexcept {
    return wire_checksums_;
  }
  /// How long a receiving task holds out-of-order frames before declaring
  /// the missing ones lost and skipping the gap (Task::accept).  Must
  /// comfortably exceed the transport's retransmission recovery (default
  /// retry budget: 20 × 50 ms).
  void set_reorder_gap_timeout(sim::Time t) noexcept {
    CPE_EXPECTS(t > 0);
    reorder_gap_timeout_ = t;
  }
  [[nodiscard]] sim::Time reorder_gap_timeout() const noexcept {
    return reorder_gap_timeout_;
  }
  // Not noexcept: CPE_EXPECTS throws ContractError on a bad knob.
  void set_tuning(const PvmTuning& t) {
    CPE_EXPECTS(t.reorder_window_cap > 0);
    tuning_ = t;
  }
  [[nodiscard]] const PvmTuning& tuning() const noexcept { return tuning_; }

  /// Per-call overhead shim (installed by MPVM).
  void set_shim(std::unique_ptr<LibraryShim> shim) { shim_ = std::move(shim); }
  [[nodiscard]] const LibraryShim* shim() const noexcept {
    return shim_.get();
  }

  /// Invoked for every newly spawned task, before its program starts.  The
  /// migration systems use this to link their handlers into each task — the
  /// paper's "signal handlers that are transparently linked into the
  /// application".
  void set_task_observer(std::function<void(Task&)> obs) {
    task_observer_ = std::move(obs);
  }

  /// Invoked when a daemon forwards a message for a task that no longer
  /// lives on it (the message raced the task's migration).  Arguments: the
  /// message about to be forwarded, the task it is for (already re-homed),
  /// and the daemon doing the forwarding.  MPVM's residual-forwarding stub
  /// hangs off this to trace forwards and teach stale senders the new
  /// mapping (MOSIX home-node style).
  using ForwardObserver = std::function<void(const Message&, Task&, Pvmd&)>;
  void set_forward_observer(ForwardObserver obs) {
    forward_observer_ = std::move(obs);
  }

  // -- Lifecycle ------------------------------------------------------------
  void on_task_exit(Task& t);

  /// Host-crash fallout at the VM level: tasks whose process died are marked
  /// exited (firing pvm_notify watches); crash-recoverable tasks are left
  /// registered but stranded, awaiting checkpoint-driven recovery.
  /// Registered automatically as a Host observer by add_host().
  void handle_host_crash(os::Host& host);

  /// pvm_kill: forcibly terminate a task (its program aborts at the current
  /// suspension point).  Returns false when the tid is unknown or already
  /// exited.
  bool kill(Tid logical);

  /// pvm_notify(PvmTaskExit): when `observed` exits (or is killed), deliver
  /// a message with tag `tag` to `observer`.  Body: the observed tid, then
  /// an int that is 1 when the task was lost in a host crash, 0 for a
  /// normal exit or kill.  Fires immediately if the task has already exited.
  void notify_exit(Tid observer, Tid observed, int tag);
  [[nodiscard]] sim::Co<void> wait_exit(Tid logical);
  [[nodiscard]] sim::Co<void> wait_all_exited();
  [[nodiscard]] std::size_t live_task_count() const noexcept {
    return live_tasks_;
  }

  // -- Stats ----------------------------------------------------------------
  [[nodiscard]] std::uint64_t messages_routed() const noexcept {
    return messages_routed_;
  }
  [[nodiscard]] std::uint64_t bytes_routed() const noexcept {
    return bytes_routed_;
  }

 private:
  friend class Pvmd;
  friend class Task;

  [[nodiscard]] sim::Co<Task*> spawn_one(const std::string& program,
                                         Pvmd& pvmd, Tid parent);
  void fire_exit_watches(Task& t, bool crashed = false);

  sim::Engine& eng_;
  net::Network* net_;
  calib::CostModel costs_;
  sim::TraceLog trace_;
  obs::MetricsRegistry metrics_;
  obs::SpanTracer spans_;
  /// Cached hot-path counters (route() runs per message; no map lookups).
  obs::Counter* msgs_routed_ctr_ = nullptr;
  obs::Counter* bytes_routed_ctr_ = nullptr;
  obs::Counter* seq_duplicates_ctr_ = nullptr;
  obs::Counter* seq_held_ctr_ = nullptr;
  obs::Counter* seq_gaps_ctr_ = nullptr;
  obs::Counter* seq_window_evicted_ctr_ = nullptr;
  obs::Counter* crc_dropped_ctr_ = nullptr;
  bool wire_checksums_ = true;
  sim::Time reorder_gap_timeout_ = 2.0;
  PvmTuning tuning_;
  /// Dice for picking which payload bit an injected corruption flips
  /// (deterministic: the corrupt hook must not perturb the network's
  /// random streams).
  sim::Rng corrupt_rng_{0x5eedc0de};
  GroupServer groups_;
  std::vector<std::unique_ptr<Pvmd>> daemons_;
  std::unordered_map<std::string, TaskMain> programs_;
  // Flat open-addressing registries (util::FlatMap): looked up per routed
  // message.  Iteration order is unspecified; all_tasks() sorts.
  util::FlatMap<std::int32_t, std::unique_ptr<Task>> by_logical_;
  util::FlatMap<std::int32_t, std::int32_t> current_to_logical_;
  util::FlatMap<std::int32_t, std::int32_t> forward_;
  util::FlatMap<std::int32_t, std::uint64_t> reloc_epoch_;
  std::unique_ptr<LibraryShim> shim_;
  std::function<void(Task&)> task_observer_;
  ForwardObserver forward_observer_;
  std::size_t next_spawn_host_ = 0;
  std::size_t live_tasks_ = 0;
  struct ExitWatch {
    std::int32_t observer = 0;
    std::int32_t observed = 0;
    int tag = 0;
  };
  std::vector<ExitWatch> exit_watches_;
  sim::Trigger all_exited_;
  std::uint64_t messages_routed_ = 0;
  std::uint64_t bytes_routed_ = 0;
};

}  // namespace cpe::pvm
