// PVM message buffers: typed pack/unpack with real encoding.
//
// Mirrors the pvm_pk*/pvm_upk* interface.  Data is actually encoded into
// bytes (XDR-style big-endian for Encoding::kDefault, host layout for kRaw),
// so round-trips are functionally exercised: what a task unpacks is exactly
// what its peer packed, byte for byte.  Unpacking is sequential and
// type/length-checked, as PVM's is (mismatches raise Error, PVM's PvmBadMsg).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/assert.hpp"

namespace cpe::pvm {

/// pvm_initsend encodings.
enum class Encoding : std::uint8_t {
  kDefault = 0,  ///< PvmDataDefault: XDR, heterogeneity-safe
  kRaw = 1,      ///< PvmDataRaw: host byte order, cheaper
  kInPlace = 2,  ///< PvmDataInPlace: no copy at pack time
};

[[nodiscard]] constexpr const char* to_string(Encoding e) {
  switch (e) {
    case Encoding::kDefault: return "Default(XDR)";
    case Encoding::kRaw: return "Raw";
    case Encoding::kInPlace: return "InPlace";
  }
  return "?";
}

class Buffer {
 public:
  /// Every packed item travels with a header: a 4-byte type tag word plus a
  /// 4-byte element-count word (XDR strings' length word is that same count
  /// word).  Charged uniformly by every pack path so `bytes()` — and
  /// therefore System::bytes_routed() — matches real wire traffic.  The
  /// calib cost model's msg_header_bytes covers the per-*message* envelope
  /// only; per-item headers are accounted here.
  static constexpr std::size_t kItemHeaderBytes = 8;

  explicit Buffer(Encoding enc = Encoding::kDefault) : enc_(enc) {}

  [[nodiscard]] Encoding encoding() const noexcept { return enc_; }

  /// Encoded size: what travels on the wire.
  [[nodiscard]] std::size_t bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::size_t item_count() const noexcept {
    return items_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  // -- Packing ------------------------------------------------------------
  void pk_int(std::span<const std::int32_t> v);
  void pk_uint(std::span<const std::uint32_t> v);
  void pk_long(std::span<const std::int64_t> v);
  void pk_float(std::span<const float> v);
  void pk_double(std::span<const double> v);
  void pk_byte(std::span<const std::byte> v);
  void pk_str(std::string_view s);

  void pk_int(std::int32_t v) { pk_int(std::span<const std::int32_t>(&v, 1)); }
  void pk_uint(std::uint32_t v) {
    pk_uint(std::span<const std::uint32_t>(&v, 1));
  }
  void pk_long(std::int64_t v) {
    pk_long(std::span<const std::int64_t>(&v, 1));
  }
  void pk_float(float v) { pk_float(std::span<const float>(&v, 1)); }
  void pk_double(double v) { pk_double(std::span<const double>(&v, 1)); }

  // -- Unpacking (sequential, checked) --------------------------------------
  void upk_int(std::span<std::int32_t> out);
  void upk_uint(std::span<std::uint32_t> out);
  void upk_long(std::span<std::int64_t> out);
  void upk_float(std::span<float> out);
  void upk_double(std::span<double> out);
  void upk_byte(std::span<std::byte> out);
  [[nodiscard]] std::string upk_str();

  [[nodiscard]] std::int32_t upk_int() {
    std::int32_t v;
    upk_int(std::span<std::int32_t>(&v, 1));
    return v;
  }
  [[nodiscard]] std::uint32_t upk_uint() {
    std::uint32_t v;
    upk_uint(std::span<std::uint32_t>(&v, 1));
    return v;
  }
  [[nodiscard]] std::int64_t upk_long() {
    std::int64_t v;
    upk_long(std::span<std::int64_t>(&v, 1));
    return v;
  }
  [[nodiscard]] float upk_float() {
    float v;
    upk_float(std::span<float>(&v, 1));
    return v;
  }
  [[nodiscard]] double upk_double() {
    double v;
    upk_double(std::span<double>(&v, 1));
    return v;
  }

  /// Length (elements) of the next item, or 0 when exhausted.  Lets a
  /// receiver size its arrays before unpacking (PVM's pvm_bufinfo idiom).
  [[nodiscard]] std::size_t next_count() const noexcept;

  /// CRC-32 (IEEE 802.3 polynomial) over the wire image: every item's type
  /// tag, element count, and encoded bytes in pack order.  This is the frame
  /// checksum stamped onto Message wire frames by the sending daemon
  /// (DESIGN.md §7): recomputed on receipt, a mismatch rejects the frame.
  [[nodiscard]] std::uint32_t crc32() const noexcept;

  /// Fault injection: flip one bit of the encoded payload (`bit_index` wraps
  /// modulo the total encoded size).  Type tags and counts are left intact —
  /// the damage is to data, detectable only by a content checksum.  No-op on
  /// a buffer with no encoded bytes.
  void corrupt_bit(std::size_t bit_index) noexcept;

  /// Reset the unpack cursor to the first item.
  void rewind() noexcept { cursor_ = 0; }

  /// Items remaining to unpack.
  [[nodiscard]] bool exhausted() const noexcept {
    return cursor_ >= items_.size();
  }

 private:
  enum class Tag : std::uint8_t {
    kInt,
    kUint,
    kLong,
    kFloat,
    kDouble,
    kByte,
    kStr
  };
  static constexpr const char* tag_name(Tag t);

  /// Item payloads live in one contiguous arena (`data_`), appended in pack
  /// order; each Item records only its [offset, offset+size) window.  One
  /// allocation amortized across all items instead of one vector per item,
  /// and the arena IS the pack-order concatenation of encoded bytes — so
  /// crc32() and corrupt_bit() index it directly.
  struct Item {
    Tag tag;
    std::size_t count;   ///< elements
    std::size_t offset;  ///< into data_
    std::size_t size;    ///< encoded byte length
  };

  /// Grow the arena by `n` bytes, returning a pointer to the new region.
  std::byte* append(std::size_t n) {
    const std::size_t off = data_.size();
    data_.resize(off + n);
    return data_.data() + off;
  }
  [[nodiscard]] const std::byte* payload(const Item& it) const noexcept {
    return data_.data() + it.offset;
  }

  template <class T>
  void pack_scalar_array(Tag tag, std::span<const T> v);
  template <class T>
  void unpack_scalar_array(Tag tag, std::span<T> out);
  const Item& expect(Tag tag, std::size_t count);

  Encoding enc_;
  std::vector<Item> items_;
  std::vector<std::byte> data_;  ///< all encoded bytes, pack order
  std::size_t cursor_ = 0;
  std::size_t total_bytes_ = 0;
};

}  // namespace cpe::pvm
