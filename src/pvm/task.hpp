// The PVM task: the virtual processor of a PVM application, and the
// run-time-library context its program uses (pvm_send, pvm_recv, pvm_spawn,
// groups...).
//
// Identity: a task is born with a *logical* tid that never changes — it is
// what the application sees (pvm_mytid, spawn results, message sources).  Its
// *current* tid encodes where it physically runs and changes when MPVM
// migrates it; the library re-maps between the two on every send/receive,
// exactly as the paper describes (§4.1.1), and the re-mapping cost is charged
// through the installed LibraryShim.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/tcp.hpp"
#include "os/host.hpp"
#include "sim/channel.hpp"
#include "pvm/message.hpp"
#include "util/flat_map.hpp"

namespace cpe::pvm {

class PvmSystem;
class Pvmd;
class Task;

/// A task program: the application code run by each VP.
using TaskMain = std::function<sim::Co<void>(Task&)>;

class Task {
 public:
  Task(PvmSystem& sys, Pvmd& pvmd, os::Process& proc, Tid tid, Tid parent,
       std::string program);
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  // -- Identity -------------------------------------------------------------
  /// The application-visible tid (pvm_mytid): stable across migrations.
  [[nodiscard]] Tid tid() const noexcept { return logical_; }
  /// The routing tid: changes when the task migrates.
  [[nodiscard]] Tid current_tid() const noexcept { return current_; }
  [[nodiscard]] Tid parent() const noexcept { return parent_; }
  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }
  [[nodiscard]] os::Process& process() const noexcept { return *proc_; }
  [[nodiscard]] Pvmd& pvmd() const noexcept { return *pvmd_; }
  [[nodiscard]] PvmSystem& system() const noexcept { return *sys_; }
  [[nodiscard]] bool exited() const noexcept { return exited_; }

  // -- Sending --------------------------------------------------------------
  /// pvm_initsend: clear the send buffer and set its encoding.
  Buffer& initsend(Encoding enc = Encoding::kDefault);
  /// The active send buffer (pack into this).
  [[nodiscard]] Buffer& sbuf();

  /// pvm_send: hand the send buffer to the transport.  Returns when the
  /// message is safely on its way (handed to the daemon), NOT when it is
  /// delivered — like the real call.  Blocks only when the destination is
  /// mid-migration (MPVM closes the send gate, §2.1 stage 2).
  [[nodiscard]] sim::Co<void> send(Tid dst, int tag);

  /// pvm_mcast: send the buffer to several tasks.
  [[nodiscard]] sim::Co<void> mcast(std::span<const Tid> dsts, int tag);

  // -- Receiving ------------------------------------------------------------
  /// pvm_recv: blocking receive; kAny wildcards.  Returns the message and
  /// loads a working copy of its body into rbuf() for unpacking.
  [[nodiscard]] sim::Co<Message> recv(std::int32_t src = kAny,
                                      std::int32_t tag = kAny);
  /// pvm_trecv: receive with timeout.
  [[nodiscard]] sim::Co<std::optional<Message>> trecv(std::int32_t src,
                                                      std::int32_t tag,
                                                      sim::Time timeout);
  /// pvm_nrecv: non-blocking receive.
  [[nodiscard]] std::optional<Message> nrecv(std::int32_t src,
                                             std::int32_t tag);
  /// pvm_probe.
  [[nodiscard]] bool probe(std::int32_t src, std::int32_t tag) const;
  /// Working copy of the last received body (unpack from this).
  [[nodiscard]] Buffer& rbuf();

  // -- Process / VM services -------------------------------------------------
  /// pvm_spawn: start `count` copies of `program`; empty `where` means
  /// round-robin placement across the virtual machine.
  [[nodiscard]] sim::Co<std::vector<Tid>> spawn(const std::string& program,
                                                int count,
                                                const std::string& where = {});

  /// Application computation (not library time): `ref_seconds` of work on
  /// the reference machine, subject to this host's speed and load.
  [[nodiscard]] sim::Co<void> compute(double ref_seconds);

  /// pvm_setopt(PvmRoute, PvmRouteDirect): subsequent sends from this task
  /// to remote tasks travel a direct task-to-task TCP connection instead of
  /// hopping through the daemons — cheaper per byte, one connection per
  /// destination.  Sender-side option, like the real call.
  void set_direct_route(bool on) noexcept { direct_route_ = on; }
  [[nodiscard]] bool direct_route() const noexcept { return direct_route_; }

  /// pvm_tasks: logical tids of every live task in the virtual machine.
  [[nodiscard]] std::vector<Tid> tasks() const;
  /// pvm_config: number of hosts in the virtual machine.
  [[nodiscard]] std::size_t host_count() const;

  // -- Groups ---------------------------------------------------------------
  [[nodiscard]] sim::Co<int> joingroup(const std::string& group);
  [[nodiscard]] sim::Co<void> leavegroup(const std::string& group);
  [[nodiscard]] sim::Co<void> barrier(const std::string& group, int count);
  /// pvm_bcast: send sbuf() to every group member except the caller.
  [[nodiscard]] sim::Co<void> gbcast(const std::string& group, int tag);
  /// pvm_gettid: the member with instance number `inst` (invalid Tid when
  /// out of range).
  [[nodiscard]] Tid gettid(const std::string& group, int inst) const;
  /// pvm_getinst: this task's instance number in `group` (-1 if absent).
  [[nodiscard]] int getinst(const std::string& group) const;
  /// pvm_gsize.
  [[nodiscard]] std::size_t gsize(const std::string& group) const;

  /// pvm_reduce (sum over doubles): every member contributes `values`;
  /// the member with instance `root_inst` receives the element-wise sum in
  /// `values`, others' buffers are left as contributed.  All members must
  /// call with the same vector length and tag.
  [[nodiscard]] sim::Co<void> reduce_sum(const std::string& group,
                                         std::span<double> values, int tag,
                                         int root_inst = 0);

  // =====================================================================
  // Run-time internals (library level; applications do not call these).
  // =====================================================================

  [[nodiscard]] Mailbox& mailbox() noexcept { return mailbox_; }

  /// Senders block on this while `logical_dst` is being migrated.
  [[nodiscard]] sim::Gate& send_gate(Tid logical_dst);

  /// Library-level send used by the migration protocols: bypasses the
  /// application send buffer, the send gates, and CPU accounting (the cost
  /// is the caller's to model).  Travels the normal routed path so control
  /// messages stay FIFO with data messages.
  void runtime_send(Tid dst, int tag, Buffer body);
  /// Extended form: shared body plus a typed sidecar (Message::aux) whose
  /// on-wire size is `extra_bytes`.
  void runtime_send_ex(Tid dst, int tag, std::shared_ptr<const Buffer> body,
                       std::any aux, std::size_t extra_bytes);

  /// Library-level message handlers (MPVM flush/restart, UPVM transport).
  /// A message whose tag has a handler never reaches the mailbox.
  void set_control_handler(int tag, std::function<void(Message)> handler);
  /// Returns true when the message was consumed by a control handler.  A
  /// traced message's context is installed as the task's context for the
  /// handler's duration (and restored after), so replies — flush acks,
  /// transport acks — continue the originating trace.
  bool dispatch_control(const Message& m);

  /// Causal-tracing context (DESIGN.md §10).  Sends stamp it onto outgoing
  /// messages; a receive of a traced message adopts the sender's context,
  /// continuing its trace across hosts.  The migration protocols set it on
  /// the victim for the protocol's duration.
  [[nodiscard]] const obs::TraceContext& trace_context() const noexcept {
    return tctx_;
  }
  void set_trace_context(const obs::TraceContext& ctx) noexcept {
    tctx_ = ctx;
  }
  void clear_trace_context() noexcept { tctx_ = {}; }

  /// This task's view of where other tasks live (tid re-map table).
  /// `epoch` is the subject's migration epoch: a mapping older than what is
  /// already installed is rejected (returns false), so a late restart or
  /// route-update from a superseded migration cannot regress the table.
  bool learn_mapping(Tid logical, Tid current, std::uint64_t epoch = 0);
  [[nodiscard]] Tid translate(Tid logical) const;
  /// Migration epoch of the newest mapping installed for `logical` (0 when
  /// none has been learned).
  [[nodiscard]] std::uint64_t mapping_epoch(Tid logical) const;

  /// Correspondent set (MPVM scoped flush): logical tids this task has
  /// exchanged *application* messages with, recorded in both directions by
  /// PvmSystem::route.  Control traffic is excluded — a flush round must
  /// not inflate the very set it targets.
  void note_peer(Tid logical) {
    if (logical != logical_) peers_.insert(logical.raw());
  }
  [[nodiscard]] const util::FlatSet<std::int32_t>& peers() const noexcept {
    return peers_;
  }

  /// Routing identity update (migration).  Library use only.
  void set_current_tid(Tid t) noexcept { current_ = t; }
  void set_pvmd(Pvmd& d) noexcept { pvmd_ = &d; }

  /// Marks the task exited and fires exit waiters (set by the system when
  /// the program coroutine completes).
  void mark_exited();
  [[nodiscard]] sim::Trigger& exit_trigger() noexcept { return exited_trig_; }

  /// Messages sent per destination (sequence numbers; invariant checks).
  [[nodiscard]] std::uint64_t sends_to(Tid logical) const;

  /// Receiver-side sequencing (DESIGN.md §7): the delivery entry point used
  /// by the daemon dispatch and the direct-route pump instead of pushing
  /// straight into the mailbox.  Per-sender streams dedup replayed frames
  /// (an adversarial duplicate, or a residual-forwarded copy racing the
  /// original) and hold early frames until the gap fills, restoring the
  /// per-pair FIFO the flush protocol assumes.  A gap that never fills
  /// (the sender's daemon gave up on the missing frame) is skipped after
  /// PvmSystem::reorder_gap_timeout so the pair cannot stall forever.
  /// Unsequenced frames (seq 0) bypass the window.
  void accept(Message m);
  /// Held-back out-of-order frames across all senders (tests/invariants).
  [[nodiscard]] std::size_t held_messages() const noexcept {
    std::size_t n = 0;
    for (const auto& [src, w] : inbox_) n += w.pending.size();
    return n;
  }

  /// Route a message over this task's direct connection to `m.dst`,
  /// creating the connection (and its pump) on first use.  Library level;
  /// called by PvmSystem::route when the direct-route option is set.
  void direct_send(Message m);

 private:
  struct DirectLink {
    explicit DirectLink(sim::Engine& eng) : queue(eng) {}
    sim::Channel<Message> queue;
    std::shared_ptr<net::TcpStream> stream;
    net::NodeId src_node = 0;
    net::NodeId dst_node = 0;
    sim::ProcHandle pump;
  };
  [[nodiscard]] static sim::Co<void> direct_pump(Task* self, DirectLink* link,
                                                 Tid dst_logical);

  /// One per-sender reassembly window.  `next` is the next expected seq;
  /// frames beyond it wait in `pending` until the gap fills, the gap timer
  /// (armed at `gap_deadline`) declares the missing frames lost, or the
  /// window hits PvmTuning::reorder_window_cap and is force-drained (a peer
  /// that never fills a gap must not grow this buffer without bound).
  struct SeqWindow {
    std::uint64_t next = 1;
    std::map<std::uint64_t, Message> pending;
    sim::Time gap_deadline = 0;  ///< 0 = no timer armed
  };
  /// Deliver a frame for real: trace the delivery, run control handlers,
  /// else push to the mailbox.
  void release(Message m);
  /// Release consecutive frames now available in `src_raw`'s window and
  /// manage its gap timer.  Re-looks the window up every iteration: a
  /// control handler running inside release() can deliver further messages
  /// and rehash inbox_.
  void drain_ready(std::int32_t src_raw);
  void arm_gap_timer(std::int32_t src_raw);
  void on_gap_timeout(std::int32_t src_raw);
  /// Give up on the gap in `src_raw`'s window now: advance `next` to the
  /// oldest held frame and drain (gap timeout and window-cap eviction).
  void skip_gap(std::int32_t src_raw, const char* why);

  PvmSystem* sys_;
  Pvmd* pvmd_;
  os::Process* proc_;
  Tid logical_;
  Tid current_;
  Tid parent_;
  std::string program_;
  bool exited_ = false;
  sim::Trigger exited_trig_;

  Mailbox mailbox_;
  obs::TraceContext tctx_;
  std::unique_ptr<Buffer> sbuf_;
  std::unique_ptr<Buffer> rbuf_;
  bool direct_route_ = false;
  // Flat open-addressing maps (util::FlatMap): these are the per-send /
  // per-delivery tid and sequence lookups, the hottest tables in the VM.
  // No reference stability across rehash — accept()/drain_ready() re-look
  // windows up after anything that may insert.
  util::FlatMap<std::int32_t, std::unique_ptr<DirectLink>> links_;
  util::FlatMap<std::int32_t, std::unique_ptr<sim::Gate>> gates_;
  std::vector<std::pair<int, std::function<void(Message)>>> control_;
  util::FlatMap<std::int32_t, std::int32_t> tid_map_;
  util::FlatMap<std::int32_t, std::uint64_t> map_epoch_;
  util::FlatSet<std::int32_t> peers_;
  util::FlatMap<std::int32_t, std::uint64_t> next_seq_;
  util::FlatMap<std::int32_t, SeqWindow> inbox_;
};

}  // namespace cpe::pvm
