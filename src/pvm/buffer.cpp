#include "pvm/buffer.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace cpe::pvm {

namespace {

template <class T>
using UintFor = std::conditional_t<
    sizeof(T) == 4, std::uint32_t,
    std::conditional_t<sizeof(T) == 8, std::uint64_t, void>>;

// std::byteswap is C++23; GCC 12 in C++20 mode lacks it.
constexpr std::uint32_t byteswap(std::uint32_t v) {
  return __builtin_bswap32(v);
}
constexpr std::uint64_t byteswap(std::uint64_t v) {
  return __builtin_bswap64(v);
}

/// Encode one value: big-endian for the XDR-style default encoding, host
/// order for raw.  (This host is little-endian x86, so kDefault really does
/// swap — the cost PVM pays for heterogeneity.)
template <class T>
void encode_value(std::byte* out, T v, Encoding enc) {
  auto bits = std::bit_cast<UintFor<T>>(v);
  if (enc == Encoding::kDefault) bits = byteswap(bits);
  std::memcpy(out, &bits, sizeof(bits));
}

template <class T>
[[nodiscard]] T decode_value(const std::byte* in, Encoding enc) {
  UintFor<T> bits;
  std::memcpy(&bits, in, sizeof(bits));
  if (enc == Encoding::kDefault) bits = byteswap(bits);
  return std::bit_cast<T>(bits);
}

// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven.
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    crc = kCrc32Table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc;
}

}  // namespace

std::uint32_t Buffer::crc32() const noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const Item& it : items_) {
    const std::uint8_t tag = static_cast<std::uint8_t>(it.tag);
    const std::uint64_t count = it.count;
    crc = crc32_update(crc, &tag, sizeof(tag));
    crc = crc32_update(crc, &count, sizeof(count));
    crc = crc32_update(crc, payload(it), it.size);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Buffer::corrupt_bit(std::size_t bit_index) noexcept {
  // The arena is the pack-order concatenation of every item's encoded
  // bytes, so the historical "index into the concatenation" semantics are
  // a direct index into data_.
  if (data_.empty()) return;
  const std::size_t byte_index = (bit_index / 8) % data_.size();
  const auto mask = static_cast<std::byte>(1u << (bit_index % 8));
  data_[byte_index] ^= mask;
}

constexpr const char* Buffer::tag_name(Tag t) {
  switch (t) {
    case Tag::kInt: return "int32";
    case Tag::kUint: return "uint32";
    case Tag::kLong: return "int64";
    case Tag::kFloat: return "float";
    case Tag::kDouble: return "double";
    case Tag::kByte: return "byte";
    case Tag::kStr: return "string";
  }
  return "?";
}

template <class T>
void Buffer::pack_scalar_array(Tag tag, std::span<const T> v) {
  const std::size_t nbytes = v.size() * sizeof(T);
  const std::size_t off = data_.size();
  std::byte* enc = append(nbytes);
  for (std::size_t i = 0; i < v.size(); ++i)
    encode_value(enc + i * sizeof(T), v[i], enc_);
  total_bytes_ += kItemHeaderBytes + nbytes;
  items_.push_back(Item{tag, v.size(), off, nbytes});
}

template <class T>
void Buffer::unpack_scalar_array(Tag tag, std::span<T> out) {
  const Item& item = expect(tag, out.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = decode_value<T>(payload(item) + i * sizeof(T), enc_);
}

const Buffer::Item& Buffer::expect(Tag tag, std::size_t count) {
  if (cursor_ >= items_.size())
    throw Error("Buffer: unpack past end of message");
  const Item& item = items_[cursor_];
  if (item.tag != tag)
    throw Error(std::string("Buffer: type mismatch: packed ") +
                tag_name(item.tag) + ", unpacking " + tag_name(tag));
  if (item.count != count)
    throw Error("Buffer: length mismatch: packed " +
                std::to_string(item.count) + " elements, unpacking " +
                std::to_string(count));
  ++cursor_;
  return item;
}

void Buffer::pk_int(std::span<const std::int32_t> v) {
  pack_scalar_array(Tag::kInt, v);
}
void Buffer::pk_uint(std::span<const std::uint32_t> v) {
  pack_scalar_array(Tag::kUint, v);
}
void Buffer::pk_long(std::span<const std::int64_t> v) {
  pack_scalar_array(Tag::kLong, v);
}
void Buffer::pk_float(std::span<const float> v) {
  pack_scalar_array(Tag::kFloat, v);
}
void Buffer::pk_double(std::span<const double> v) {
  pack_scalar_array(Tag::kDouble, v);
}

void Buffer::pk_byte(std::span<const std::byte> v) {
  // Bytes are encoding-invariant: straight copy either way.
  const std::size_t off = data_.size();
  std::byte* enc = append(v.size());
  if (!v.empty()) std::memcpy(enc, v.data(), v.size());
  total_bytes_ += kItemHeaderBytes + v.size();
  items_.push_back(Item{Tag::kByte, v.size(), off, v.size()});
}

void Buffer::pk_str(std::string_view s) {
  const std::size_t off = data_.size();
  std::byte* enc = append(s.size());
  if (!s.empty()) std::memcpy(enc, s.data(), s.size());
  // The XDR length word is the header's count word — no extra charge.
  total_bytes_ += kItemHeaderBytes + s.size();
  items_.push_back(Item{Tag::kStr, s.size(), off, s.size()});
}

void Buffer::upk_int(std::span<std::int32_t> out) {
  unpack_scalar_array(Tag::kInt, out);
}
void Buffer::upk_uint(std::span<std::uint32_t> out) {
  unpack_scalar_array(Tag::kUint, out);
}
void Buffer::upk_long(std::span<std::int64_t> out) {
  unpack_scalar_array(Tag::kLong, out);
}
void Buffer::upk_float(std::span<float> out) {
  unpack_scalar_array(Tag::kFloat, out);
}
void Buffer::upk_double(std::span<double> out) {
  unpack_scalar_array(Tag::kDouble, out);
}

void Buffer::upk_byte(std::span<std::byte> out) {
  const Item& item = expect(Tag::kByte, out.size());
  if (!out.empty()) std::memcpy(out.data(), payload(item), out.size());
}

std::string Buffer::upk_str() {
  if (cursor_ >= items_.size())
    throw Error("Buffer: unpack past end of message");
  const Item& item = items_[cursor_];
  if (item.tag != Tag::kStr)
    throw Error(std::string("Buffer: type mismatch: packed ") +
                tag_name(item.tag) + ", unpacking string");
  ++cursor_;
  std::string s(item.size, '\0');
  if (item.size != 0) std::memcpy(s.data(), payload(item), item.size);
  return s;
}

std::size_t Buffer::next_count() const noexcept {
  return cursor_ < items_.size() ? items_[cursor_].count : 0;
}

}  // namespace cpe::pvm
