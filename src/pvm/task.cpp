#include "pvm/task.hpp"

#include "pvm/body_pool.hpp"
#include "pvm/system.hpp"

namespace cpe::pvm {

namespace {
/// Relative encoder cost: XDR swaps every word; raw is a straight copy;
/// in-place defers the copy to the transport write.
double encoding_cost_factor(Encoding e) {
  switch (e) {
    case Encoding::kDefault: return 1.0;
    case Encoding::kRaw: return 0.5;
    case Encoding::kInPlace: return 0.15;
  }
  return 1.0;
}
}  // namespace

Task::Task(PvmSystem& sys, Pvmd& pvmd, os::Process& proc, Tid tid, Tid parent,
           std::string program)
    : sys_(&sys),
      pvmd_(&pvmd),
      proc_(&proc),
      logical_(tid),
      current_(tid),
      parent_(parent),
      program_(std::move(program)),
      exited_trig_(sys.engine()),
      mailbox_(sys.engine()) {}

Buffer& Task::initsend(Encoding enc) {
  sbuf_ = std::make_unique<Buffer>(enc);
  return *sbuf_;
}

Buffer& Task::sbuf() {
  CPE_EXPECTS(sbuf_ != nullptr);  // pvm_initsend first (PvmNoBuf otherwise)
  return *sbuf_;
}

sim::Co<void> Task::send(Tid dst, int tag) {
  CPE_EXPECTS(sbuf_ != nullptr);
  CPE_EXPECTS(dst.valid());
  const auto& c = sys_->costs().pvm;

  // The buffer leaves the application now; a fresh one replaces it so the
  // program can immediately repack (pvm semantics).
  auto body = make_body(std::move(*sbuf_));
  sbuf_ = std::make_unique<Buffer>(body->encoding());

  sim::Time cpu = c.call_overhead + c.send_fixed +
                  static_cast<double>(body->bytes()) * 8.0 / c.pack_bps *
                      encoding_cost_factor(body->encoding());
  if (sys_->is_local(*this, dst))
    cpu += c.local_send_cpu +
           static_cast<double>(body->bytes()) * 8.0 / c.local_route_bps;
  if (const LibraryShim* shim = sys_->shim())
    cpu += shim->send_overhead(*this);
  {
    auto guard = proc_->enter_library();
    co_await proc_->compute(cpu);
  }

  // MPVM stage 2: while `dst` is being migrated this gate is closed and the
  // send blocks.  Deliberately *outside* the library guard: a blocked sender
  // must itself remain migratable.
  co_await send_gate(dst).wait();

  // Pre-increment: sequence numbers start at 1, leaving seq 0 as the
  // unsequenced sentinel for daemon-forged frames (Task::accept).
  Message m(logical_, dst, tag, std::move(body), ++next_seq_[dst.raw()]);
  sys_->route(*this, std::move(m));
}

sim::Co<void> Task::mcast(std::span<const Tid> dsts, int tag) {
  CPE_EXPECTS(sbuf_ != nullptr);
  const auto& c = sys_->costs().pvm;
  auto body = make_body(std::move(*sbuf_));
  sbuf_ = std::make_unique<Buffer>(body->encoding());

  // Pack once; per-destination fixed cost (plus the sender-side socket
  // copy for each local destination).
  sim::Time cpu = c.call_overhead +
                  static_cast<double>(body->bytes()) * 8.0 / c.pack_bps *
                      encoding_cost_factor(body->encoding()) +
                  c.send_fixed * static_cast<double>(dsts.size());
  for (Tid dst : dsts)
    if (sys_->is_local(*this, dst))
      cpu += c.local_send_cpu +
             static_cast<double>(body->bytes()) * 8.0 / c.local_route_bps;
  if (const LibraryShim* shim = sys_->shim())
    cpu += shim->send_overhead(*this) * static_cast<double>(dsts.size());
  {
    auto guard = proc_->enter_library();
    co_await proc_->compute(cpu);
  }
  for (Tid dst : dsts) {
    CPE_EXPECTS(dst.valid());
    co_await send_gate(dst).wait();
    Message m(logical_, dst, tag, body, ++next_seq_[dst.raw()]);
    sys_->route(*this, std::move(m));
  }
}

sim::Co<Message> Task::recv(std::int32_t src, std::int32_t tag) {
  const auto& c = sys_->costs().pvm;
  sim::Time cpu = c.call_overhead + c.recv_fixed;
  if (const LibraryShim* shim = sys_->shim())
    cpu += shim->recv_overhead(*this);
  {
    auto guard = proc_->enter_library();
    co_await proc_->compute(cpu);
  }

  // Block *outside* the library guard: MPVM re-implemented pvm_recv exactly
  // so that a process blocked here remains migratable (paper §4.1.1).
  const bool will_block = !mailbox_.probe(src, tag);
  Message m = co_await mailbox_.take(src, tag);

  sim::Time post = static_cast<double>(m.payload_bytes()) * 8.0 / c.unpack_bps;
  if (will_block) post += c.wakeup_context_switch;
  {
    auto guard = proc_->enter_library();
    co_await proc_->compute(post);
  }
  rbuf_ = std::make_unique<Buffer>(*m.body);
  if (m.tctx.valid()) tctx_ = m.tctx;  // continue the sender's trace
  co_return m;
}

sim::Co<std::optional<Message>> Task::trecv(std::int32_t src, std::int32_t tag,
                                            sim::Time timeout) {
  const auto& c = sys_->costs().pvm;
  {
    auto guard = proc_->enter_library();
    co_await proc_->compute(c.call_overhead + c.recv_fixed);
  }
  std::optional<Message> m = co_await mailbox_.take_for(src, tag, timeout);
  if (!m.has_value()) co_return std::nullopt;
  {
    auto guard = proc_->enter_library();
    co_await proc_->compute(static_cast<double>(m->payload_bytes()) * 8.0 /
                            c.unpack_bps);
  }
  rbuf_ = std::make_unique<Buffer>(*m->body);
  if (m->tctx.valid()) tctx_ = m->tctx;
  co_return m;
}

std::optional<Message> Task::nrecv(std::int32_t src, std::int32_t tag) {
  std::optional<Message> m = mailbox_.try_take(src, tag);
  if (m.has_value()) {
    rbuf_ = std::make_unique<Buffer>(*m->body);
    if (m->tctx.valid()) tctx_ = m->tctx;
  }
  return m;
}

bool Task::probe(std::int32_t src, std::int32_t tag) const {
  return mailbox_.probe(src, tag);
}

Buffer& Task::rbuf() {
  CPE_EXPECTS(rbuf_ != nullptr);  // nothing received yet
  return *rbuf_;
}

sim::Co<std::vector<Tid>> Task::spawn(const std::string& program, int count,
                                      const std::string& where) {
  co_return co_await sys_->spawn(program, count, where, logical_);
}

sim::Co<void> Task::compute(double ref_seconds) {
  co_await proc_->compute(ref_seconds);
}

std::vector<Tid> Task::tasks() const {
  std::vector<Tid> out;
  for (const Task* t : sys_->all_tasks())
    if (!t->exited()) out.push_back(t->tid());
  return out;
}

std::size_t Task::host_count() const { return sys_->daemons().size(); }

sim::Co<int> Task::joingroup(const std::string& group) {
  co_return co_await sys_->groups().join(group, logical_);
}

sim::Co<void> Task::leavegroup(const std::string& group) {
  co_await sys_->groups().leave(group, logical_);
}

sim::Co<void> Task::barrier(const std::string& group, int count) {
  co_await sys_->groups().barrier(group, count);
}

Tid Task::gettid(const std::string& group, int inst) const {
  const std::vector<Tid> members = sys_->groups().members(group);
  if (inst < 0 || static_cast<std::size_t>(inst) >= members.size())
    return Tid();
  return members[static_cast<std::size_t>(inst)];
}

int Task::getinst(const std::string& group) const {
  return sys_->groups().instance_of(group, logical_);
}

std::size_t Task::gsize(const std::string& group) const {
  return sys_->groups().size(group);
}

sim::Co<void> Task::reduce_sum(const std::string& group,
                               std::span<double> values, int tag,
                               int root_inst) {
  const int me = getinst(group);
  CPE_EXPECTS(me >= 0);  // must have joined the group
  const std::vector<Tid> members = sys_->groups().members(group);
  CPE_EXPECTS(root_inst >= 0 &&
              static_cast<std::size_t>(root_inst) < members.size());
  const Tid root = members[static_cast<std::size_t>(root_inst)];
  if (me != root_inst) {
    initsend().pk_double(std::span<const double>(values));
    co_await send(root, tag);
    co_return;
  }
  // Root: fold in every other member's contribution.
  std::vector<double> partial(values.size());
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {
    co_await recv(kAny, tag);
    rbuf().upk_double(partial);
    for (std::size_t k = 0; k < values.size(); ++k) values[k] += partial[k];
  }
}

sim::Co<void> Task::gbcast(const std::string& group, int tag) {
  std::vector<Tid> members = sys_->groups().members(group);
  std::erase(members, logical_);  // pvm_bcast excludes the caller
  co_await mcast(members, tag);
}

void Task::runtime_send(Tid dst, int tag, Buffer body) {
  CPE_EXPECTS(dst.valid());
  Message m(logical_, dst, tag,
            make_body(std::move(body)),
            ++next_seq_[dst.raw()]);
  sys_->route(*this, std::move(m));
}

void Task::runtime_send_ex(Tid dst, int tag,
                           std::shared_ptr<const Buffer> body, std::any aux,
                           std::size_t extra_bytes) {
  CPE_EXPECTS(dst.valid());
  if (!body) body = make_body();
  Message m(logical_, dst, tag, std::move(body), ++next_seq_[dst.raw()]);
  m.aux = std::move(aux);
  m.extra_bytes = extra_bytes;
  sys_->route(*this, std::move(m));
}

sim::Gate& Task::send_gate(Tid logical_dst) {
  auto& slot = gates_[logical_dst.raw()];
  if (!slot) slot = std::make_unique<sim::Gate>(sys_->engine(), /*open=*/true);
  return *slot;
}

void Task::set_control_handler(int tag, std::function<void(Message)> handler) {
  CPE_EXPECTS(tag >= kControlTagBase);
  for (auto& [t, h] : control_) {
    if (t == tag) {
      h = std::move(handler);
      return;
    }
  }
  control_.emplace_back(tag, std::move(handler));
}

bool Task::dispatch_control(const Message& m) {
  for (auto& [t, h] : control_) {
    if (t == m.tag) {
      if (m.tctx.valid()) {
        // Run the handler under the message's trace context so its replies
        // (flush acks, transport acks) continue the originating trace, then
        // restore: a control interruption must not re-home the task's own
        // ongoing trace.
        const obs::TraceContext saved = tctx_;
        tctx_ = m.tctx;
        h(m);
        tctx_ = saved;
      } else {
        h(m);
      }
      return true;
    }
  }
  return false;
}

bool Task::learn_mapping(Tid logical, Tid current, std::uint64_t epoch) {
  auto it = map_epoch_.find(logical.raw());
  if (it != map_epoch_.end() && epoch < it->second) return false;
  map_epoch_[logical.raw()] = epoch;
  tid_map_[logical.raw()] = current.raw();
  return true;
}

std::uint64_t Task::mapping_epoch(Tid logical) const {
  auto it = map_epoch_.find(logical.raw());
  return it == map_epoch_.end() ? 0 : it->second;
}

Tid Task::translate(Tid logical) const {
  auto it = tid_map_.find(logical.raw());
  return it == tid_map_.end() ? logical : Tid(it->second);
}

void Task::mark_exited() {
  exited_ = true;
  exited_trig_.fire();
}

std::uint64_t Task::sends_to(Tid logical) const {
  auto it = next_seq_.find(logical.raw());
  return it == next_seq_.end() ? 0 : it->second;
}

void Task::release(Message m) {
  // Traced deliveries leave an instant event here — where and when the
  // frame actually reaches the application — so the TraceAuditor's
  // flush-completeness invariant sees held/reordered frames at their real
  // release point, not at wire arrival.
  if (m.tctx.valid() || tctx_.valid()) {
    const obs::SpanId ev =
        sys_->spans().event(m.tctx.valid() ? m.tctx : tctx_, "pvm.deliver",
                            pvmd_->host().name(), logical_.raw());
    sys_->spans().annotate(ev, "task", logical_.str());
  }
  if (!dispatch_control(m)) mailbox_.push(std::move(m));
}

void Task::accept(Message m) {
  if (m.seq == 0) {
    // Unsequenced daemon-forged frame (exit notify, watch fire, stub ack):
    // no stream to order against.
    release(std::move(m));
    return;
  }
  const std::int32_t src_raw = m.src.raw();
  const std::uint64_t seq = m.seq;
  SeqWindow& w = inbox_[src_raw];
  if (seq < w.next) {
    // Behind the window: a duplicated/replayed frame (already released) or
    // a straggler behind an expired gap.  Releasing it now would break
    // exactly-once in-order, so it is dropped either way.
    sys_->seq_duplicates_ctr_->inc();
    sys_->trace().log("pvm", logical_.str() + ": dropping replayed seq " +
                                 std::to_string(seq) + " from " +
                                 m.src.str());
    return;
  }
  if (seq == w.next) {
    ++w.next;
    release(std::move(m));  // may rehash inbox_: w is dead past this point
    drain_ready(src_raw);
    return;
  }
  // Early frame: park it until the gap fills or the gap timer gives up on
  // the missing frames.  A duplicate of an already-parked frame folds away.
  if (!w.pending.emplace(seq, std::move(m)).second) {
    sys_->seq_duplicates_ctr_->inc();
    return;
  }
  sys_->seq_held_ctr_->inc();
  if (w.pending.size() > sys_->tuning().reorder_window_cap) {
    // Window overflow: the peer is pouring frames past a gap that is not
    // filling (adversarial reordering, or its daemon silently dropped the
    // missing frames).  Holding more would grow without bound, so give up
    // on the gap now — identical semantics to the gap timeout, just
    // triggered by memory pressure instead of the clock.  The missing
    // frames, should they straggle in later, are dropped as replays.
    sys_->seq_window_evicted_ctr_->inc();
    skip_gap(src_raw, "window cap");
    return;
  }
  if (w.gap_deadline == 0) arm_gap_timer(src_raw);
}

void Task::skip_gap(std::int32_t src_raw, const char* why) {
  auto it = inbox_.find(src_raw);
  if (it == inbox_.end() || it->second.pending.empty()) return;
  SeqWindow& w = it->second;
  sys_->seq_gaps_ctr_->inc();
  sys_->trace().log("pvm", logical_.str() + ": seq gap " +
                               std::to_string(w.next) + " -> " +
                               std::to_string(w.pending.begin()->first) +
                               " from " + Tid(src_raw).str() +
                               " abandoned (" + why + ")");
  w.next = w.pending.begin()->first;
  w.gap_deadline = 0;
  drain_ready(src_raw);
}

void Task::drain_ready(std::int32_t src_raw) {
  while (true) {
    auto it = inbox_.find(src_raw);
    if (it == inbox_.end()) return;
    SeqWindow& w = it->second;
    auto p = w.pending.find(w.next);
    if (p == w.pending.end()) {
      if (w.pending.empty())
        w.gap_deadline = 0;
      else if (w.gap_deadline == 0)
        arm_gap_timer(src_raw);
      return;
    }
    Message m = std::move(p->second);
    w.pending.erase(p);
    ++w.next;
    release(std::move(m));
  }
}

void Task::arm_gap_timer(std::int32_t src_raw) {
  auto it = inbox_.find(src_raw);
  if (it == inbox_.end()) return;
  it->second.gap_deadline = sys_->engine().now() + sys_->reorder_gap_timeout();
  // Look the task up again at fire time: it may have exited (the Task
  // object lives until VM teardown, so the pointer held via the system map
  // stays valid or lookups return null).
  sys_->engine().schedule_at(
      it->second.gap_deadline, [sys = sys_, me = logical_, src_raw] {
        Task* t = sys->find_logical(me);
        if (t == nullptr || t->exited()) return;
        t->on_gap_timeout(src_raw);
      });
}

void Task::on_gap_timeout(std::int32_t src_raw) {
  auto it = inbox_.find(src_raw);
  if (it == inbox_.end()) return;
  SeqWindow& w = it->second;
  // A later frame may have re-armed the deadline past this firing.
  if (w.gap_deadline == 0 || sys_->engine().now() < w.gap_deadline) return;
  if (w.pending.empty()) {
    w.gap_deadline = 0;
    return;
  }
  // The gap never filled: the missing frames were dropped for good by the
  // sending daemon (peer unreachable past the retry budget).  Skip ahead to
  // the oldest held frame rather than stalling this pair forever.
  skip_gap(src_raw, "timeout");
}

void Task::direct_send(Message m) {
  auto& slot = links_[m.dst.raw()];
  if (!slot) {
    slot = std::make_unique<DirectLink>(sys_->engine());
    slot->pump =
        sim::launch(sys_->engine(), direct_pump(this, slot.get(), m.dst));
  }
  slot->queue.send(std::move(m));
}

sim::Co<void> Task::direct_pump(Task* self, DirectLink* link,
                                Tid dst_logical) {
  PvmSystem& sys = *self->sys_;
  const auto& c = sys.costs().pvm;
  for (;;) {
    Message m = co_await link->queue.recv();
    Task* dst = sys.find_logical(dst_logical);
    if (dst == nullptr || dst->exited()) {
      sys.trace().log("pvm", "direct route: dropping message for dead task " +
                                 dst_logical.str());
      continue;
    }
    const net::NodeId src_node = self->pvmd().host().node();
    const net::NodeId dst_node = dst->pvmd().host().node();
    // (Re)establish the connection when either endpoint moved — a real
    // direct route breaks on migration and the library reconnects.
    if (!link->stream || link->src_node != src_node ||
        link->dst_node != dst_node) {
      if (link->stream)
        sys.trace().log("pvm", "direct route to " + dst_logical.str() +
                                   ": endpoint moved, reconnecting");
      link->stream = co_await net::TcpStream::connect(sys.network(),
                                                      src_node, dst_node);
      link->src_node = src_node;
      link->dst_node = dst_node;
    }
    // A traced message carries its context on the wire (DESIGN.md §10).
    const std::size_t wire =
        m.payload_bytes() + c.msg_header_bytes +
        (m.tctx.valid() ? obs::kTraceContextWireBytes : 0);
    co_await link->stream->send(src_node, wire);
    // Delivered at the peer: re-check residence (it may have migrated while
    // the bytes were in flight) and hand the message over.
    Task* now = sys.find_logical(dst_logical);
    if (now == nullptr || now->exited()) continue;
    if (now->pvmd().host().node() != dst_node) {
      // Landed on the old host: forward through the daemons.
      sys.trace().log("pvm", "direct route: forwarding for " +
                                 dst_logical.str());
      sys.daemon_at(dst_node)->deliver_local(std::move(m), 1);
      continue;
    }
    sys.spans().on_receive(now->pvmd().host().name(), m.lamport);
    // Same sequenced entry point as the daemon path: the (src,dst) stream
    // spans both routes, so a pair switching between direct and daemon
    // routing keeps one FIFO.
    now->accept(std::move(m));
  }
}

}  // namespace cpe::pvm
