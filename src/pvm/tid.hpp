// Task identifiers, PVM3 style.
//
// A tid packs the daemon (host) index and a per-host task number, exactly as
// PVM3 does (18-bit task field).  Wildcards follow the PVM convention: -1
// matches any tid / any tag.
#pragma once

#include <cstdint>
#include <string>

#include "sim/assert.hpp"

namespace cpe::pvm {

/// A PVM task identifier.  Value semantics; 0 is "no task".
class Tid {
 public:
  static constexpr int kTaskBits = 18;
  static constexpr int kTaskMask = (1 << kTaskBits) - 1;

  constexpr Tid() = default;
  constexpr explicit Tid(std::int32_t raw) : raw_(raw) {}
  static constexpr Tid make(std::uint32_t host_index, std::uint32_t task_num) {
    return Tid(static_cast<std::int32_t>(((host_index + 1) << kTaskBits) |
                                         (task_num & kTaskMask)));
  }

  [[nodiscard]] constexpr std::int32_t raw() const noexcept { return raw_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return raw_ > 0; }
  [[nodiscard]] constexpr std::uint32_t host_index() const {
    CPE_EXPECTS(valid());
    return (static_cast<std::uint32_t>(raw_) >> kTaskBits) - 1;
  }
  [[nodiscard]] constexpr std::uint32_t task_num() const {
    CPE_EXPECTS(valid());
    return static_cast<std::uint32_t>(raw_) & kTaskMask;
  }

  [[nodiscard]] constexpr bool operator==(const Tid&) const = default;
  [[nodiscard]] constexpr bool operator<(const Tid& o) const noexcept {
    return raw_ < o.raw_;
  }

  [[nodiscard]] std::string str() const {
    return valid() ? "t" + std::to_string(host_index()) + "." +
                         std::to_string(task_num())
                   : "t<none>";
  }

 private:
  std::int32_t raw_ = 0;
};

/// PVM wildcard for recv/probe filters.
inline constexpr std::int32_t kAny = -1;

}  // namespace cpe::pvm

template <>
struct std::hash<cpe::pvm::Tid> {
  std::size_t operator()(const cpe::pvm::Tid& t) const noexcept {
    return std::hash<std::int32_t>{}(t.raw());
  }
};
