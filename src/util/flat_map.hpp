// Open-addressing hash containers for integer keys on simulator hot paths
// (tid -> task, tid -> sequence counters, node -> handler).
//
// Compared to std::unordered_map: one flat allocation, linear probing with
// Fibonacci hashing, and backward-shift deletion (no tombstones), so lookups
// touch one cache line in the common case and erase never degrades the
// table.  NOT reference-stable: any insert may rehash and move elements, so
// never hold a reference across an insert (unordered_map tolerated that;
// call sites were audited when converting).  Iteration order is unspecified
// and changes across rehash — order-sensitive consumers must sort.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/assert.hpp"

namespace cpe::util {

/// Flat hash map from an integral key to V.  V must be default-constructible
/// and move-assignable (unique_ptr values are fine; erase resets them).
template <class K, class V>
class FlatMap {
  static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                "FlatMap keys must be integers");

 public:
  using value_type = std::pair<K, V>;

  template <bool Const>
  class Iter {
    using Parent = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

   public:
    Iter() = default;
    Iter(Parent* m, std::size_t i) : m_(m), i_(i) { skip(); }

    [[nodiscard]] Ref operator*() const { return m_->slots_[i_]; }
    [[nodiscard]] Ptr operator->() const { return &m_->slots_[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    [[nodiscard]] bool operator==(const Iter& o) const noexcept {
      return i_ == o.i_;
    }
    [[nodiscard]] bool operator!=(const Iter& o) const noexcept {
      return i_ != o.i_;
    }

   private:
    void skip() {
      while (m_ != nullptr && i_ < m_->slots_.size() && !m_->state_[i_]) ++i_;
    }
    Parent* m_ = nullptr;
    std::size_t i_ = 0;
    friend class FlatMap;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] iterator begin() { return iterator(this, 0); }
  [[nodiscard]] iterator end() { return iterator(this, slots_.size()); }
  [[nodiscard]] const_iterator begin() const {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(this, slots_.size());
  }

  void clear() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (state_[i]) slots_[i] = value_type{};
      state_[i] = 0;
    }
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = slots_.empty() ? kInitSlots : slots_.size();
    while (n * 4 > cap * 3) cap *= 2;
    if (cap != slots_.size()) rehash(cap);
  }

  [[nodiscard]] iterator find(K k) {
    const std::size_t i = locate(k);
    return i == kNpos ? end() : iterator(this, i);
  }
  [[nodiscard]] const_iterator find(K k) const {
    const std::size_t i = locate(k);
    return i == kNpos ? end() : const_iterator(this, i);
  }
  [[nodiscard]] bool contains(K k) const { return locate(k) != kNpos; }
  [[nodiscard]] std::size_t count(K k) const { return contains(k) ? 1 : 0; }

  V& operator[](K k) {
    grow_if_needed();
    std::size_t i = home(k);
    while (state_[i]) {
      if (slots_[i].first == k) return slots_[i].second;
      i = (i + 1) & mask_;
    }
    state_[i] = 1;
    slots_[i].first = k;
    slots_[i].second = V{};
    ++size_;
    return slots_[i].second;
  }

  /// Insert (k, v) if absent; returns {iterator, inserted}.
  template <class U>
  std::pair<iterator, bool> emplace(K k, U&& v) {
    grow_if_needed();
    std::size_t i = home(k);
    while (state_[i]) {
      if (slots_[i].first == k) return {iterator(this, i), false};
      i = (i + 1) & mask_;
    }
    state_[i] = 1;
    slots_[i].first = k;
    slots_[i].second = V(std::forward<U>(v));
    ++size_;
    return {iterator(this, i), true};
  }

  template <class U>
  std::pair<iterator, bool> insert_or_assign(K k, U&& v) {
    auto [it, inserted] = emplace(k, std::forward<U>(v));
    if (!inserted) it->second = V(std::forward<U>(v));
    return {it, inserted};
  }

  std::size_t erase(K k) {
    const std::size_t i = locate(k);
    if (i == kNpos) return 0;
    erase_at(i);
    return 1;
  }
  void erase(iterator it) {
    CPE_EXPECTS(it.i_ < slots_.size() && state_[it.i_]);
    erase_at(it.i_);
  }

 private:
  static constexpr std::size_t kInitSlots = 16;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t home(K k) const noexcept {
    // Fibonacci hashing: multiply by 2^64/phi and keep the top bits, which
    // mix even sequential keys (tids are sequential) across the table.
    constexpr std::uint64_t kPhiInverse = 0x9E3779B97F4A7C15ull;
    const std::uint64_t h = static_cast<std::uint64_t>(k) * kPhiInverse;
    return static_cast<std::size_t>(h >> shift_);
  }

  [[nodiscard]] std::size_t locate(K k) const noexcept {
    if (slots_.empty()) return kNpos;
    std::size_t i = home(k);
    while (state_[i]) {
      if (slots_[i].first == k) return i;
      i = (i + 1) & mask_;
    }
    return kNpos;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kInitSlots);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {  // load factor 0.75
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t nslots) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_state = std::move(state_);
    slots_ = std::vector<value_type>(nslots);
    state_.assign(nslots, 0);
    mask_ = nslots - 1;
    shift_ = 64;
    for (std::size_t s = nslots; s > 1; s >>= 1) --shift_;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_state[i]) continue;
      std::size_t j = home(old_slots[i].first);
      while (state_[j]) j = (j + 1) & mask_;
      state_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  void erase_at(std::size_t i) {
    // Backward-shift deletion: pull later chain members into the hole so
    // probes never need tombstones.
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!state_[j]) break;
      const std::size_t h = home(slots_[j].first);
      // j's occupant may fill the hole only if its home position does not
      // lie cyclically inside (i, j] (else the move would break its chain).
      if (((j - h) & mask_) >= ((j - i) & mask_)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    state_[i] = 0;
    slots_[i] = value_type{};  // release owned resources now, not at rehash
    --size_;
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> state_;  // 1 = occupied
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
};

/// Flat hash set of integral keys; iteration yields const K&.
template <class K>
class FlatSet {
 public:
  class iterator {
   public:
    iterator() = default;
    explicit iterator(typename FlatMap<K, std::uint8_t>::const_iterator it)
        : it_(it) {}
    [[nodiscard]] const K& operator*() const { return it_->first; }
    iterator& operator++() {
      ++it_;
      return *this;
    }
    [[nodiscard]] bool operator==(const iterator& o) const noexcept {
      return it_ == o.it_;
    }
    [[nodiscard]] bool operator!=(const iterator& o) const noexcept {
      return it_ != o.it_;
    }

   private:
    typename FlatMap<K, std::uint8_t>::const_iterator it_;
  };
  using const_iterator = iterator;

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  [[nodiscard]] iterator begin() const { return iterator(map_.begin()); }
  [[nodiscard]] iterator end() const { return iterator(map_.end()); }
  [[nodiscard]] bool contains(K k) const { return map_.contains(k); }
  [[nodiscard]] std::size_t count(K k) const { return map_.count(k); }
  bool insert(K k) { return map_.emplace(k, std::uint8_t{1}).second; }
  std::size_t erase(K k) { return map_.erase(k); }
  void clear() { map_.clear(); }

 private:
  FlatMap<K, std::uint8_t> map_;
};

}  // namespace cpe::util
