// Coroutine types for simulation processes.
//
// A simulation "process" (a PVM task, a daemon, the global scheduler...) is a
// C++20 coroutine of type Co<T>.  Sub-operations are awaited Co<U> values with
// symmetric-transfer continuation chaining; blocking operations (delays,
// message receives, CPU service) are custom awaitables that park the coroutine
// and arrange for the Engine to resume it at a later virtual time.
//
// Lifetime rules (important for task-kill and migration support):
//  * An awaited Co<T> is owned by the awaiting frame; destroying a parent
//    frame recursively destroys suspended children.
//  * A top-level process is either spawn()ed (fire-and-forget; self-destroys
//    at completion) or launch()ed, which returns a ProcHandle that can
//    abort() the process — destroying its frame even while suspended.  Every
//    blocking awaitable in this library deregisters itself from wait queues /
//    cancels its wake-up events in its destructor, which makes such aborts
//    safe at any suspension point.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "sim/assert.hpp"
#include "sim/engine.hpp"

namespace cpe::sim {

template <class T>
class Co;
class ProcHandle;

namespace detail {

struct FinalAwaiter;

/// State shared by all Co<T> promises.
struct PromiseBase {
  std::coroutine_handle<> continuation{};  ///< awaiting parent, if any
  std::exception_ptr exception{};
  Engine* engine = nullptr;     ///< set iff top-level (spawned/launched)
  EventId start_event{};        ///< initial resume event of a top-level proc
  ProcHandle* owner = nullptr;  ///< back-pointer to the owning ProcHandle
};

template <class T>
struct CoPromise;

}  // namespace detail

/// Owning handle to a launch()ed top-level process.  Destroying the handle
/// aborts the process (if still running); call detach() to let it run free.
class ProcHandle {
 public:
  ProcHandle() = default;
  ProcHandle(const ProcHandle&) = delete;
  ProcHandle& operator=(const ProcHandle&) = delete;
  ProcHandle(ProcHandle&& o) noexcept { move_from(o); }
  ProcHandle& operator=(ProcHandle&& o) noexcept {
    if (this != &o) {
      abort();
      move_from(o);
    }
    return *this;
  }
  ~ProcHandle() { abort(); }

  /// True while the process has not yet run to completion (or been aborted).
  [[nodiscard]] bool running() const noexcept { return h_ != nullptr; }

  /// Destroy the process frame, wherever it is suspended.  All blocking
  /// awaitables unwind via their destructors (deregistering from wait queues
  /// and cancelling wake-ups).  No-op when already finished.
  void abort() noexcept;

  /// Relinquish ownership: the process keeps running and cleans itself up.
  void detach() noexcept;

 private:
  template <class T>
  friend ProcHandle launch(Engine&, Co<T>&&);
  friend struct detail::FinalAwaiter;

  void move_from(ProcHandle& o) noexcept;
  void on_finished() noexcept { h_ = nullptr; }

  std::coroutine_handle<> h_{};
  detail::PromiseBase* promise_ = nullptr;
};

namespace detail {

struct FinalAwaiter {
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  template <class P>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<P> h) const noexcept {
    PromiseBase& p = h.promise();
    if (p.continuation) return p.continuation;  // resume awaiting parent
    // Top-level process finished: report any escaped exception to the
    // engine, tell the owner (if any), and self-destruct.
    if (p.engine && p.exception) p.engine->report_failure(p.exception);
    if (p.owner) p.owner->on_finished();
    h.destroy();
    return std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <class T>
struct CoPromise : PromiseBase {
  std::optional<T> value;

  Co<T> get_return_object() noexcept;
  [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
    return {};
  }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void return_value(T v) { value.emplace(std::move(v)); }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <>
struct CoPromise<void> : PromiseBase {
  Co<void> get_return_object() noexcept;
  [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
    return {};
  }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void return_void() const noexcept {}
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine yielding a T.  Await it (rvalue) to run it to
/// completion as a sub-operation, or hand it to spawn()/launch() to run it as
/// a top-level process.
template <class T>
class [[nodiscard]] Co {
 public:
  using promise_type = detail::CoPromise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co(Co&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  ~Co() { destroy(); }

  struct Awaiter {
    handle_type h;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> parent) const noexcept {
      h.promise().continuation = parent;
      return h;  // symmetric transfer: start the child immediately
    }
    T await_resume() const {
      auto& p = h.promise();
      if (p.exception) std::rethrow_exception(p.exception);
      if constexpr (!std::is_void_v<T>) return std::move(*p.value);
    }
  };

  /// Awaiting runs the child to completion within the parent's timeline.
  Awaiter operator co_await() && noexcept { return Awaiter{h_}; }

 private:
  friend promise_type;
  template <class U>
  friend ProcHandle launch(Engine&, Co<U>&&);
  template <class U>
  friend void spawn(Engine&, Co<U>&&);

  explicit Co(handle_type h) noexcept : h_(h) {}
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  [[nodiscard]] handle_type release() noexcept { return std::exchange(h_, {}); }

  handle_type h_{};
};

namespace detail {
template <class T>
Co<T> CoPromise<T>::get_return_object() noexcept {
  return Co<T>(std::coroutine_handle<CoPromise<T>>::from_promise(*this));
}
inline Co<void> CoPromise<void>::get_return_object() noexcept {
  return Co<void>(std::coroutine_handle<CoPromise<void>>::from_promise(*this));
}
}  // namespace detail

/// Fire-and-forget: start `co` as a top-level process at the current virtual
/// time.  The frame self-destructs on completion; escaped exceptions are
/// rethrown from Engine::step()/run().
template <class T>
void spawn(Engine& eng, Co<T>&& co) {
  auto h = co.release();
  CPE_EXPECTS(h);
  auto& p = h.promise();
  p.engine = &eng;
  p.start_event = eng.schedule_at(eng.now(), [h] { h.resume(); });
}

/// Start `co` as a top-level process and return an owning handle that can
/// abort it.
template <class T>
ProcHandle launch(Engine& eng, Co<T>&& co) {
  auto h = co.release();
  CPE_EXPECTS(h);
  auto& p = h.promise();
  p.engine = &eng;
  p.start_event = eng.schedule_at(eng.now(), [h] { h.resume(); });
  ProcHandle ph;
  ph.h_ = h;
  ph.promise_ = &p;
  p.owner = &ph;
  return ph;
}

inline void ProcHandle::abort() noexcept {
  if (!h_) return;
  auto h = std::exchange(h_, {});
  auto* p = std::exchange(promise_, nullptr);
  p->owner = nullptr;
  if (p->engine) p->engine->cancel(p->start_event);
  h.destroy();
}

inline void ProcHandle::detach() noexcept {
  if (!h_) return;
  promise_->owner = nullptr;
  h_ = {};
  promise_ = nullptr;
}

inline void ProcHandle::move_from(ProcHandle& o) noexcept {
  h_ = std::exchange(o.h_, {});
  promise_ = std::exchange(o.promise_, nullptr);
  if (promise_) promise_->owner = this;
}

/// Alias used for process bodies that return nothing.
using Proc = Co<void>;

}  // namespace cpe::sim
