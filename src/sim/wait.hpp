// Blocking primitives for simulation coroutines: wait queues, delays,
// triggers, gates, semaphores.
//
// Every awaitable here is abort-safe: if the waiting coroutine frame is
// destroyed while suspended (task killed, process migrated away and replaced,
// simulation torn down), the awaiter's destructor deregisters from the wait
// queue and cancels any scheduled wake-up, so no dangling handle is ever
// resumed.
#pragma once

#include <coroutine>
#include <cstddef>

#include "sim/assert.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace cpe::sim {

/// Suspend the current coroutine for `dt` simulated seconds.
///   co_await Delay{eng, 1.5};
struct [[nodiscard]] Delay {
  Engine& eng;
  Time dt;

  Delay(Engine& e, Time d) : eng(e), dt(d) {}
  Delay(const Delay&) = delete;
  Delay& operator=(const Delay&) = delete;
  ~Delay() { eng.cancel(ev_); }

  [[nodiscard]] bool await_ready() const noexcept { return dt <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    ev_ = eng.schedule_in(dt, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  EventId ev_{};
};

/// An intrusive FIFO queue of suspended coroutines.  Building block for all
/// higher-level primitives; exposed because domain code (mailboxes, CPU
/// schedulers) builds its own blocking structures from it.
class WaitQueue {
 public:
  class Node {
   public:
    Node() = default;
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;
    ~Node() { cleanup(); }

    [[nodiscard]] bool linked() const noexcept { return queue_ != nullptr; }
    /// True when this waiter was woken with the `grant` flag (direct handoff
    /// semantics, e.g. a semaphore unit reserved for this waiter).
    [[nodiscard]] bool granted() const noexcept { return granted_; }

    /// Deregister: unlink from the queue or cancel a pending wake-up.
    void cleanup() noexcept;

   private:
    friend class WaitQueue;
    WaitQueue* queue_ = nullptr;
    Node* prev_ = nullptr;
    Node* next_ = nullptr;
    std::coroutine_handle<> handle_{};
    Engine* eng_ = nullptr;
    EventId wake_ev_{};
    bool granted_ = false;
  };

  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;
  /// Destroying a queue with parked waiters abandons them: their nodes are
  /// detached (so their frames can be destroyed safely later) but they are
  /// never resumed.  This situation only arises during teardown or
  /// exception unwind — asserting here would turn any in-flight exception
  /// into std::terminate.
  ~WaitQueue() {
    while (head_ != nullptr) unlink(*head_);
  }

  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Park `h`, FIFO order.  `n` must live until woken or cleaned up (it lives
  /// in the awaiter on the coroutine frame).
  void enqueue(Engine& eng, Node& n, std::coroutine_handle<> h);

  /// Wake the longest-waiting coroutine (resumes via an engine event at the
  /// current time).  Returns false when the queue is empty.
  bool wake_one(bool grant = false);

  /// Wake every parked coroutine; returns how many.
  std::size_t wake_all();

  /// Timed awaiter: park until woken or until `dt` elapses.  await_resume
  /// returns true when woken, false on timeout.
  class TimedAwaiter {
   public:
    TimedAwaiter(Engine& e, WaitQueue& q, Time dt)
        : eng_(e), q_(q), dt_(dt) {}
    TimedAwaiter(const TimedAwaiter&) = delete;
    TimedAwaiter& operator=(const TimedAwaiter&) = delete;
    ~TimedAwaiter() { eng_.cancel(timeout_ev_); }

    [[nodiscard]] bool await_ready() const noexcept { return dt_ <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      q_.enqueue(eng_, node_, h);
      timeout_ev_ = eng_.schedule_in(dt_, [this, h] {
        timed_out_ = true;
        node_.cleanup();  // leave the queue before resuming
        h.resume();
      });
    }
    [[nodiscard]] bool await_resume() noexcept {
      eng_.cancel(timeout_ev_);
      return !timed_out_;
    }

   private:
    Engine& eng_;
    WaitQueue& q_;
    Time dt_;
    Node node_;
    EventId timeout_ev_{};
    bool timed_out_ = false;
  };

  /// co_await queue.wait_for(eng, dt): true if woken before the deadline.
  [[nodiscard]] TimedAwaiter wait_for(Engine& eng, Time dt) {
    return TimedAwaiter(eng, *this, dt);
  }

  /// Basic awaiter: park until woken.
  class Awaiter {
   public:
    Awaiter(Engine& e, WaitQueue& q) : eng_(e), q_(q) {}
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      q_.enqueue(eng_, node_, h);
    }
    void await_resume() const noexcept {}

   private:
    Engine& eng_;
    WaitQueue& q_;
    Node node_;
  };

  /// co_await queue.wait(eng): park until the next wake_one/wake_all.
  [[nodiscard]] Awaiter wait(Engine& eng) { return Awaiter(eng, *this); }

 private:
  void unlink(Node& n) noexcept;

  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
};

/// Broadcast event: fire() wakes everyone currently waiting.
class Trigger {
 public:
  explicit Trigger(Engine& eng) : eng_(eng) {}

  [[nodiscard]] WaitQueue::Awaiter wait() { return waiters_.wait(eng_); }
  /// Timed wait: true when fired before the deadline, false on timeout.
  [[nodiscard]] WaitQueue::TimedAwaiter wait_for(Time dt) {
    return waiters_.wait_for(eng_, dt);
  }
  std::size_t fire() { return waiters_.wake_all(); }
  [[nodiscard]] std::size_t waiting() const noexcept {
    return waiters_.size();
  }

 private:
  Engine& eng_;
  WaitQueue waiters_;
};

/// Level-triggered gate.  wait() passes immediately while open; while closed,
/// waiters park until open() is called.  Used e.g. to block senders to a
/// migrating MPVM task.
class Gate {
 public:
  explicit Gate(Engine& eng, bool open = true) : eng_(eng), open_(open) {}

  [[nodiscard]] bool is_open() const noexcept { return open_; }
  void close() noexcept { open_ = false; }
  void open() {
    open_ = true;
    waiters_.wake_all();
  }

  /// co_await gate.wait(): returns once the gate is (or becomes) open.
  [[nodiscard]] Co<void> wait() {
    while (!open_) co_await waiters_.wait(eng_);
  }

  [[nodiscard]] std::size_t waiting() const noexcept {
    return waiters_.size();
  }

 private:
  Engine& eng_;
  bool open_;
  WaitQueue waiters_;
};

/// Counting semaphore with FIFO direct handoff (no barging): a released unit
/// is reserved for the longest waiter.  A Semaphore with count 1 models a
/// serially-reusable resource such as a shared Ethernet medium.
class Semaphore {
 public:
  Semaphore(Engine& eng, std::size_t initial)
      : eng_(eng), available_(initial) {}

  [[nodiscard]] std::size_t available() const noexcept { return available_; }
  [[nodiscard]] std::size_t waiting() const noexcept {
    return waiters_.size();
  }

  [[nodiscard]] Co<void> acquire() {
    if (available_ > 0 && waiters_.empty()) {
      --available_;
      co_return;
    }
    Acquire aw(eng_, waiters_);
    co_await aw;
  }

  void release() {
    // Direct handoff: hand the unit to the longest waiter, if any.
    if (!waiters_.wake_one(/*grant=*/true)) ++available_;
  }

 private:
  struct Acquire {
    Acquire(Engine& e, WaitQueue& q) : eng_(e), q_(q) {}
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      q_.enqueue(eng_, node_, h);
    }
    void await_resume() const { CPE_ASSERT(node_.granted()); }
    Engine& eng_;
    WaitQueue& q_;
    WaitQueue::Node node_;
  };

  Engine& eng_;
  std::size_t available_;
  WaitQueue waiters_;
};

/// RAII helper that runs a callable on scope exit (Core Guidelines E.19).
template <class F>
class [[nodiscard]] ScopeExit {
 public:
  explicit ScopeExit(F f) : f_(std::move(f)) {}
  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;
  ~ScopeExit() {
    if (armed_) f_();
  }
  void dismiss() noexcept { armed_ = false; }

 private:
  F f_;
  bool armed_ = true;
};

}  // namespace cpe::sim
