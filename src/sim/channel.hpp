// Unbounded FIFO channel between simulation coroutines.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "sim/coro.hpp"
#include "sim/wait.hpp"

namespace cpe::sim {

/// Multi-producer / multi-consumer FIFO of T.  send() never blocks; recv()
/// parks until an item is available.  Receivers are served in FIFO order.
template <class T>
class Channel {
 public:
  explicit Channel(Engine& eng) : eng_(eng) {}

  /// Enqueue an item and wake the longest-waiting receiver, if any.
  void send(T item) {
    items_.push_back(std::move(item));
    waiters_.wake_one();
  }

  /// Dequeue the next item, parking until one is available.
  [[nodiscard]] Co<T> recv() {
    while (items_.empty()) co_await waiters_.wait(eng_);
    T v = std::move(items_.front());
    items_.pop_front();
    // If items remain and more receivers wait, cascade a wake-up so a burst
    // of sends eventually unparks every eligible receiver.
    if (!items_.empty()) waiters_.wake_one();
    co_return v;
  }

  /// Non-blocking receive.
  [[nodiscard]] std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

 private:
  Engine& eng_;
  std::deque<T> items_;
  WaitQueue waiters_;
};

}  // namespace cpe::sim
