// Discrete-event simulation engine: a cancellable, deterministic event queue
// driving virtual time.
//
// Determinism: events with equal timestamps fire in schedule order (a strictly
// increasing sequence number breaks ties), so a simulation with a fixed seed
// replays the exact same trace every run (DESIGN.md invariant 8).
//
// Throughput (DESIGN.md §13): the pending set lives in a calendar queue (a
// hashed timing wheel with an active-window min-heap) instead of a binary
// heap, cancelled timers are removed lazily and compacted in bulk once stale
// entries outnumber live ones, and event callbacks are stored in a pooled
// small-buffer arena so scheduling performs no heap allocation for captures
// up to EventFn::kInlineBytes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace cpe::sim {

/// Handle to a scheduled event.  Cheap to copy; stale handles (already fired
/// or cancelled) are detected via a generation counter, so cancel() is always
/// safe to call.
struct EventId {
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t gen = 0;

  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
  [[nodiscard]] bool valid() const noexcept { return slot != kInvalidSlot; }
};

namespace detail {

/// Type-erased event callback with small-buffer storage.  Captures up to
/// kInlineBytes live inline in the engine's slot arena (recycled with the
/// slot, so the steady-state schedule/fire cycle never touches the heap);
/// larger or throwing-move captures fall back to a single heap node whose
/// pointer is stored in the buffer.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  EventFn(EventFn&& o) noexcept { move_from(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  ~EventFn() { reset(); }

  template <class F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>,
                  "event callback must be invocable as void()");
    reset();
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      D* p = new D(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof(p));
      ops_ = &kHeapOps<D>;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() {
    CPE_ASSERT(ops_ != nullptr);
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <class D>
  static const Ops kInlineOps;
  template <class D>
  static const Ops kHeapOps;

  template <class D>
  static D* heap_ptr(void* buf) noexcept {
    D* p;
    std::memcpy(&p, buf, sizeof(p));
    return p;
  }

  void move_from(EventFn& o) noexcept {
    if (o.ops_ != nullptr) {
      ops_ = o.ops_;
      ops_->relocate(o.buf_, buf_);
      o.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
};

template <class D>
inline const EventFn::Ops EventFn::kInlineOps = {
    /*invoke=*/[](void* p) { (*static_cast<D*>(p))(); },
    /*relocate=*/
    [](void* from, void* to) noexcept {
      D* f = static_cast<D*>(from);
      ::new (to) D(std::move(*f));
      f->~D();
    },
    /*destroy=*/[](void* p) noexcept { static_cast<D*>(p)->~D(); },
};

template <class D>
inline const EventFn::Ops EventFn::kHeapOps = {
    /*invoke=*/[](void* buf) { (*heap_ptr<D>(buf))(); },
    /*relocate=*/
    [](void* from, void* to) noexcept { std::memcpy(to, from, sizeof(D*)); },
    /*destroy=*/[](void* buf) noexcept { delete heap_ptr<D>(buf); },
};

/// One pending (or stale) occupant of the calendar queue.
struct Entry {
  Time t;
  std::uint64_t seq;
  std::uint32_t slot;
  std::uint32_t gen;
};

/// Comparator giving std::push_heap/pop_heap a min-heap on (t, seq): "a fires
/// after b".  The seq tiebreak is what preserves determinism invariant 8.
struct EntryAfter {
  [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const noexcept {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  }
};

/// Calendar queue (hashed timing wheel) over Entry, ordered by (t, seq).
///
/// Entries are hashed into buckets by virtual bucket number floor(t/width)
/// modulo the bucket count.  The *active window* is one virtual bucket wide;
/// its due entries are kept in a small binary heap (cur_heap_) which resolves
/// both the within-window order and the FIFO tiebreak at equal timestamps —
/// so the determinism argument reduces to the binary-heap one.  Invariant:
/// whenever cur_heap_ is non-empty its top is the global minimum; every
/// bucketed entry has t >= bucket_top_ (pushes below bucket_top_ go straight
/// into the heap, which is safe because the engine never schedules into the
/// past).  A full fruitless lap of the wheel falls back to a direct search
/// for the minimum and re-anchors the window there, so sparse queues skip
/// empty years in O(buckets) instead of sweeping time.
class CalendarQueue {
 public:
  void push(Entry e);

  /// Smallest entry, or nullptr when empty.  Positions the active window.
  [[nodiscard]] const Entry* peek();

  /// Remove and return the smallest entry.  Pre: !empty().
  Entry pop();

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Best-effort peek at the *next* minimum after a pop, without positioning
  /// work: non-null only while the active-window heap is non-empty.  Used by
  /// Engine::step to prefetch the next event's slot while the current
  /// callback runs.
  [[nodiscard]] const Entry* next_hint() const noexcept {
    return cur_heap_.empty() ? nullptr : cur_heap_.data();
  }

  /// In-place bulk removal of entries failing `alive`; never allocates, so
  /// it is callable from noexcept paths (Engine::cancel's compaction).
  template <class Pred>
  void retain(Pred alive) noexcept {
    const auto filter = [&](std::vector<Entry>& v) noexcept {
      std::size_t w = 0;
      for (std::size_t r = 0; r < v.size(); ++r) {
        if (alive(v[r])) v[w++] = v[r];
      }
      count_ -= v.size() - w;
      v.resize(w);
    };
    filter(cur_heap_);
    std::make_heap(cur_heap_.begin(), cur_heap_.end(), EntryAfter{});
    for (std::vector<Entry>& b : buckets_) filter(b);
    filter(overflow_);
    std::make_heap(overflow_.begin(), overflow_.end(), EntryAfter{});
  }

 private:
  // Virtual buckets past this never index the wheel: their timestamps are so
  // far out (t/width >= 2^62) that double->uint64 conversion would be lossy
  // or undefined.  They wait in overflow_ until a direct search adopts one.
  static constexpr double kMaxVirtualBucket = 4.6e18;
  static constexpr std::size_t kMinBuckets = 16;

  void init_if_needed();
  /// Route one entry to the heap, a bucket, or overflow.  No bookkeeping.
  void place(Entry e);
  /// Park a far-future entry in the overflow min-heap.
  void push_overflow(Entry e);
  /// Move overflow entries now due before bucket_top_ into cur_heap_ —
  /// mandatory after any window advance, or pops could go back in time.
  void adopt_due_overflow();
  [[nodiscard]] Time estimate_width(const std::vector<Entry>& all) const;
  /// Ensure cur_heap_ holds the global minimum; false when the queue is
  /// empty.  Sweeps the wheel forward, with a direct-search fallback after a
  /// fruitless lap.
  bool position();
  /// Move entries due in the active window from its bucket into cur_heap_.
  /// Returns true when the heap is non-empty afterwards.
  bool sweep_bucket();
  void rebuild(std::size_t nbuckets);
  void maybe_grow();
  void maybe_shrink();

  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> cur_heap_;   // min-heap (EntryAfter) of the active window
  std::vector<Entry> overflow_;   // min-heap: t too far for the wheel mapping
  std::size_t mask_ = 0;          // buckets_.size() - 1 (power of two)
  Time width_ = 1.0;              // virtual bucket width in seconds
  Time inv_width_ = 1.0;          // 1/width_: place() multiplies, not divides
  std::uint64_t vcur_ = 0;        // virtual bucket of the active window
  Time bucket_top_ = 0;           // exclusive upper bound of the window
  std::size_t count_ = 0;
};

}  // namespace detail

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now()).  Callables whose
  /// captures fit EventFn::kInlineBytes are stored inline in the recycled
  /// slot arena: no heap allocation in steady state.
  template <class F>
  EventId schedule_at(Time t, F&& fn) {
    if (t < now_) t = now_;
    const std::uint32_t slot = alloc_slot();
    try {
      slots_[slot].fn.emplace(std::forward<F>(fn));
      return commit_slot(slot, t);
    } catch (...) {
      slots_[slot].fn.reset();
      free_slots_.push_back(slot);
      throw;
    }
  }

  /// Schedule `fn` to run `dt` seconds from now.  Negative delays are clamped
  /// to "immediately" (still after the current event completes).
  template <class F>
  EventId schedule_in(Time dt, F&& fn) {
    return schedule_at(now_ + (dt > 0 ? dt : 0), std::forward<F>(fn));
  }

  /// Cancel a scheduled event.  No-op when the event already fired, was
  /// already cancelled, or `id` is invalid.  Never allocates: the free list's
  /// capacity is grown in lock-step with the slot arena.
  void cancel(EventId id) noexcept;

  /// True while the event is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool pending(EventId id) const noexcept;

  /// Number of scheduled events not yet fired or cancelled.
  [[nodiscard]] std::size_t pending_count() const noexcept { return live_; }

  /// Run one event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `max_events` fired; returns events fired.
  /// Throws Error if `max_events` is hit (runaway-simulation guard).
  std::size_t run(std::size_t max_events = kDefaultEventBudget);

  /// Run until simulated time would exceed `t` (events at exactly `t` fire).
  /// Returns events fired.  Time advances to `t` even if the queue drains.
  std::size_t run_until(Time t, std::size_t max_events = kDefaultEventBudget);

  /// Record an asynchronous failure (e.g. an exception escaping a detached
  /// coroutine).  The next step()/run() call rethrows it.
  void report_failure(std::exception_ptr e) noexcept { failures_.push_back(e); }

  static constexpr std::size_t kDefaultEventBudget = 500'000'000;

 private:
  struct Slot {
    std::uint32_t gen = 0;
    detail::EventFn fn;
  };

  // Compaction trigger: once cancelled-but-unpopped queue entries outnumber
  // live ones (and exceed a floor that keeps tiny queues out of the game),
  // sweep them all in one O(pending) pass.  Bounds queue memory at 2x live.
  static constexpr std::size_t kCompactFloor = 64;

  std::uint32_t alloc_slot();
  EventId commit_slot(std::uint32_t slot, Time t);
  void compact_queue() noexcept;
  void rethrow_pending_failure();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;  // stale entries still occupying the queue
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  detail::CalendarQueue queue_;
  std::deque<std::exception_ptr> failures_;

  friend struct EngineTestPeer;  // tests poke slot generations (wraparound)
};

}  // namespace cpe::sim
