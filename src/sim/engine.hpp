// Discrete-event simulation engine: a cancellable, deterministic event queue
// driving virtual time.
//
// Determinism: events with equal timestamps fire in schedule order (a strictly
// increasing sequence number breaks ties), so a simulation with a fixed seed
// replays the exact same trace every run (DESIGN.md invariant 8).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace cpe::sim {

/// Handle to a scheduled event.  Cheap to copy; stale handles (already fired
/// or cancelled) are detected via a generation counter, so cancel() is always
/// safe to call.
struct EventId {
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t gen = 0;

  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
  [[nodiscard]] bool valid() const noexcept { return slot != kInvalidSlot; }
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedule `fn` to run `dt` seconds from now.  Negative delays are clamped
  /// to "immediately" (still after the current event completes).
  EventId schedule_in(Time dt, std::function<void()> fn) {
    return schedule_at(now_ + (dt > 0 ? dt : 0), std::move(fn));
  }

  /// Cancel a scheduled event.  No-op when the event already fired, was
  /// already cancelled, or `id` is invalid.
  void cancel(EventId id) noexcept;

  /// True while the event is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool pending(EventId id) const noexcept;

  /// Number of scheduled events not yet fired or cancelled.
  [[nodiscard]] std::size_t pending_count() const noexcept { return live_; }

  /// Run one event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `max_events` fired; returns events fired.
  /// Throws Error if `max_events` is hit (runaway-simulation guard).
  std::size_t run(std::size_t max_events = kDefaultEventBudget);

  /// Run until simulated time would exceed `t` (events at exactly `t` fire).
  /// Returns events fired.  Time advances to `t` even if the queue drains.
  std::size_t run_until(Time t, std::size_t max_events = kDefaultEventBudget);

  /// Record an asynchronous failure (e.g. an exception escaping a detached
  /// coroutine).  The next step()/run() call rethrows it.
  void report_failure(std::exception_ptr e) noexcept { failures_.push_back(e); }

  static constexpr std::size_t kDefaultEventBudget = 500'000'000;

 private:
  struct Slot {
    std::uint32_t gen = 0;
    std::function<void()> fn;
  };
  struct QueueEntry {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    // Min-heap on (time, seq): earliest time first, FIFO within a timestamp.
    [[nodiscard]] bool operator>(const QueueEntry& o) const noexcept {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  void rethrow_pending_failure();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::vector<std::exception_ptr> failures_;
};

}  // namespace cpe::sim
