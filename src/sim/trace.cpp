#include "sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/assert.hpp"
#include "sim/engine.hpp"

namespace cpe::sim {

void TraceLog::log(std::string_view category, std::string text) {
  while (records_.size() >= capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(
      TraceRecord{eng_->now(), std::string(category), std::move(text)});
  if (echo_ != nullptr) {
    const TraceRecord& r = records_.back();
    if (!echo_filter_ || echo_filter_(r)) {
      *echo_ << "t=" << std::fixed << std::setprecision(6) << r.t << " ["
             << r.category << "] " << r.text << '\n';
    }
  }
}

void TraceLog::set_capacity(std::size_t cap) {
  capacity_ = std::max(cap, kMinCapacity);
  while (records_.size() > capacity_) {
    records_.pop_front();
    ++dropped_;
  }
}

std::vector<TraceRecord> TraceLog::by_category(
    std::string_view category) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_)
    if (r.category == category) out.push_back(r);
  return out;
}

const TraceRecord* TraceLog::find(std::string_view category,
                                  std::string_view needle) const {
  for (const auto& r : records_)
    if (r.category == category && r.text.find(needle) != std::string::npos)
      return &r;
  return nullptr;
}

std::size_t TraceLog::count(std::string_view category) const {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (r.category == category) ++n;
  return n;
}

std::string TraceLog::format(std::string_view category) const {
  std::ostringstream os;
  for (const auto& r : records_) {
    if (!category.empty() && r.category != category) continue;
    os << "t=" << std::fixed << std::setprecision(6) << r.t << " ["
       << r.category << "] " << r.text << '\n';
  }
  return os.str();
}

}  // namespace cpe::sim
